#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace eecs {
namespace {

TEST(Contracts, ViolationThrowsWithLocation) {
  try {
    EECS_EXPECTS(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Contracts, SatisfiedConditionDoesNotThrow) {
  EXPECT_NO_THROW(EECS_EXPECTS(2 + 2 == 4));
  EXPECT_NO_THROW(EECS_ENSURES(true));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(5);
  const auto idx = rng.sample_indices(20, 10);
  ASSERT_EQ(idx.size(), 10u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : idx) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(5);
  const auto idx = rng.sample_indices(6, 6);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // Child and parent should not produce the same stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i32(-42);
  w.write_f32(3.5f);
  w.write_f64(-2.25);
  w.write_string("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RoundTripVectors) {
  ByteWriter w;
  const std::vector<float> vf{1.0f, -2.0f, 0.5f};
  const std::vector<double> vd{3.14, 2.71};
  w.write_f32_vector(vf);
  w.write_f64_vector(vd);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), vf);
  EXPECT_EQ(r.read_f64_vector(), vd);
}

TEST(Bytes, UnderrunThrowsDecodeError) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_u32(), ByteReader::DecodeError);
}

TEST(Bytes, StringUnderrunThrows) {
  ByteWriter w;
  w.write_u32(1000);  // Claims 1000 bytes follow but none do.
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_string(), ByteReader::DecodeError);
}

TEST(Bytes, SizeTracksWrites) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write_u32(1);
  EXPECT_EQ(w.size(), 4u);
  w.write_f64(1.0);
  EXPECT_EQ(w.size(), 12u);
}

TEST(Strings, FormatBehavesLikePrintf) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, ToFixed) {
  EXPECT_EQ(to_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(to_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, PadWidens) {
  EXPECT_EQ(pad("ab", 4), "ab  ");
  EXPECT_EQ(pad("abcdef", 3), "abc");
}

TEST(Strings, RenderTableAlignsColumns) {
  const std::string t = render_table({"a", "bb"}, {{"ccc", "d"}});
  EXPECT_NE(t.find("ccc"), std::string::npos);
  EXPECT_NE(t.find("---"), std::string::npos);
}

TEST(Logging, SinkCapturesPassingMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  {
    const ScopedLogSink sink([&](LogLevel level, const std::string& msg) {
      captured.emplace_back(level, msg);
    });
    EECS_WARN << "wire " << 42;
    EECS_DEBUG << "below threshold";  // Default level Warn: filtered out.
    log_message(LogLevel::Error, "direct");
  }
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "wire 42");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
  EXPECT_EQ(captured[1].second, "direct");
  // Sink removed at scope exit: this must not reach `captured`.
  EECS_WARN << "after removal";
  EXPECT_EQ(captured.size(), 2u);
}

TEST(Logging, SinkRespectsLevelThreshold) {
  int count = 0;
  const ScopedLogSink sink([&](LogLevel, const std::string&) { ++count; });
  set_log_level(LogLevel::Off);
  EECS_ERROR << "suppressed";
  EXPECT_EQ(count, 0);
  set_log_level(LogLevel::Warn);  // Restore the suite default.
  EECS_WARN << "passes";
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace eecs
