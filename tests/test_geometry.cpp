#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "geometry/camera.hpp"
#include "geometry/homography.hpp"
#include "geometry/vec.hpp"

namespace eecs::geometry {
namespace {

TEST(Vec, BasicOps) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_NEAR(dot(a, b), 32.0, 1e-12);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
  EXPECT_NEAR((Vec3{3, 4, 0}).normalized().norm(), 1.0, 1e-12);
}

TEST(Vec, Distance2d) {
  EXPECT_NEAR(distance({0, 0}, {3, 4}), 5.0, 1e-12);
}

TEST(Homography, IdentityMapsPointsToThemselves) {
  const Homography h;
  const auto p = h.apply({3.5, -2.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 3.5, 1e-12);
  EXPECT_NEAR(p->y, -2.0, 1e-12);
}

TEST(Homography, TranslationAndScale) {
  const Homography h({{{2, 0, 5}, {0, 2, -1}, {0, 0, 1}}});
  const auto p = h.apply({1, 1});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 7.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Homography, InverseRoundTrips) {
  const Homography h({{{1.2, 0.1, 3.0}, {-0.2, 0.9, 1.0}, {0.001, -0.002, 1.0}}});
  const Homography inv = h.inverse();
  for (const Vec2 p : {Vec2{0, 0}, Vec2{10, 5}, Vec2{-3, 7}}) {
    const auto fwd = h.apply(p);
    ASSERT_TRUE(fwd.has_value());
    const auto back = inv.apply(*fwd);
    ASSERT_TRUE(back.has_value());
    EXPECT_NEAR(back->x, p.x, 1e-9);
    EXPECT_NEAR(back->y, p.y, 1e-9);
  }
}

TEST(Homography, CompositionAppliesRightFirst) {
  const Homography scale({{{2, 0, 0}, {0, 2, 0}, {0, 0, 1}}});
  const Homography shift({{{1, 0, 1}, {0, 1, 0}, {0, 0, 1}}});
  // (scale * shift)(p) = scale(shift(p)).
  const auto p = (scale * shift).apply({1, 1});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 4.0, 1e-12);
  EXPECT_NEAR(p->y, 2.0, 1e-12);
}

TEST(Homography, PointAtInfinityReturnsNullopt) {
  // Third row makes the denominator vanish at x = 1.
  const Homography h({{{1, 0, 0}, {0, 1, 0}, {-1, 0, 1}}});
  EXPECT_FALSE(h.apply({1.0, 0.0}).has_value());
}

TEST(Dlt, RecoversKnownHomography) {
  const Homography truth({{{1.5, 0.2, 10}, {-0.1, 1.1, -5}, {0.0005, 0.0002, 1}}});
  std::vector<PointPair> pairs;
  for (double x : {0.0, 50.0, 120.0, 200.0, 33.0}) {
    for (double y : {0.0, 40.0, 90.0, 180.0}) {
      const auto q = truth.apply({x, y});
      ASSERT_TRUE(q.has_value());
      pairs.push_back({{x, y}, *q});
    }
  }
  const Homography est = estimate_homography_dlt(pairs);
  for (const Vec2 p : {Vec2{25, 60}, Vec2{140, 10}, Vec2{199, 175}}) {
    const auto qt = truth.apply(p);
    const auto qe = est.apply(p);
    ASSERT_TRUE(qt && qe);
    EXPECT_NEAR(qe->x, qt->x, 1e-6);
    EXPECT_NEAR(qe->y, qt->y, 1e-6);
  }
}

TEST(Dlt, RejectsTooFewPairs) {
  std::vector<PointPair> pairs{{{0, 0}, {1, 1}}, {{1, 0}, {2, 1}}, {{0, 1}, {1, 2}}};
  EXPECT_THROW((void)estimate_homography_dlt(pairs), std::runtime_error);
}

TEST(Ransac, RobustToOutliers) {
  Rng rng(99);
  const Homography truth({{{0.9, 0.05, 4}, {0.02, 1.05, -2}, {0.0002, -0.0001, 1}}});
  std::vector<PointPair> pairs;
  // 30 inliers with small noise.
  for (int i = 0; i < 30; ++i) {
    const Vec2 p{rng.uniform(0, 300), rng.uniform(0, 200)};
    const auto q = truth.apply(p);
    ASSERT_TRUE(q.has_value());
    pairs.push_back({p, {q->x + rng.normal() * 0.3, q->y + rng.normal() * 0.3}});
  }
  // 15 gross outliers.
  for (int i = 0; i < 15; ++i) {
    pairs.push_back({{rng.uniform(0, 300), rng.uniform(0, 200)},
                     {rng.uniform(0, 300), rng.uniform(0, 200)}});
  }
  const RansacResult result = estimate_homography_ransac(pairs, rng);
  EXPECT_GE(result.inlier_indices.size(), 25u);
  // Estimated model close to truth on fresh points.
  for (const Vec2 p : {Vec2{50, 50}, Vec2{250, 150}}) {
    const auto qt = truth.apply(p);
    const auto qe = result.homography.apply(p);
    ASSERT_TRUE(qt && qe);
    EXPECT_NEAR(qe->x, qt->x, 1.0);
    EXPECT_NEAR(qe->y, qt->y, 1.0);
  }
}

TEST(Ransac, ThrowsWhenNoConsensus) {
  Rng rng(5);
  std::vector<PointPair> pairs;
  for (int i = 0; i < 12; ++i) {
    pairs.push_back({{rng.uniform(0, 100), rng.uniform(0, 100)},
                     {rng.uniform(0, 100), rng.uniform(0, 100)}});
  }
  RansacOptions opts;
  opts.iterations = 50;
  opts.inlier_threshold = 0.01;
  opts.min_inliers = 8;
  EXPECT_THROW((void)estimate_homography_ransac(pairs, rng, opts), std::runtime_error);
}

TEST(Camera, ProjectsCenterTargetToImageCenter) {
  CameraIntrinsics intr;
  intr.focal_px = 300;
  intr.width = 360;
  intr.height = 288;
  const PinholeCamera cam({0, 0, 2.0}, {5, 5, 1.0}, intr);
  const auto px = cam.project({5, 5, 1.0});
  ASSERT_TRUE(px.has_value());
  EXPECT_NEAR(px->x, 180.0, 1e-9);
  EXPECT_NEAR(px->y, 144.0, 1e-9);
}

TEST(Camera, PointsBehindCameraAreRejected) {
  const PinholeCamera cam({0, 0, 2.0}, {5, 0, 2.0}, {});
  EXPECT_FALSE(cam.project({-5, 0, 1.0}).has_value());
  EXPECT_LT(cam.depth({-5, 0, 1.0}), 0.0);
}

TEST(Camera, HigherWorldPointsProjectHigherInImage) {
  const PinholeCamera cam({0, 0, 2.0}, {6, 0, 1.0}, {});
  const auto foot = cam.project({6, 0, 0.0});
  const auto head = cam.project({6, 0, 1.8});
  ASSERT_TRUE(foot && head);
  EXPECT_LT(head->y, foot->y);  // Image y grows downward.
}

TEST(Camera, NearerObjectsAppearLarger) {
  const PinholeCamera cam({0, 0, 2.0}, {8, 0, 1.0}, {});
  const auto near_foot = cam.project({3, 0, 0.0});
  const auto near_head = cam.project({3, 0, 1.8});
  const auto far_foot = cam.project({7, 0, 0.0});
  const auto far_head = cam.project({7, 0, 1.8});
  ASSERT_TRUE(near_foot && near_head && far_foot && far_head);
  EXPECT_GT(near_foot->y - near_head->y, far_foot->y - far_head->y);
}

TEST(Camera, GroundHomographyMatchesProjection) {
  CameraIntrinsics intr;
  intr.focal_px = 320;
  intr.width = 360;
  intr.height = 288;
  const PinholeCamera cam({-1, -1, 2.3}, {4, 4, 0.9}, intr);
  const Homography h = cam.ground_homography();
  for (const Vec2 g : {Vec2{2, 3}, Vec2{5, 5}, Vec2{7, 1}, Vec2{0.5, 6.5}}) {
    const auto direct = cam.project({g.x, g.y, 0.0});
    const auto via_h = h.apply(g);
    ASSERT_TRUE(direct && via_h);
    EXPECT_NEAR(via_h->x, direct->x, 1e-6);
    EXPECT_NEAR(via_h->y, direct->y, 1e-6);
  }
}

TEST(Camera, PlaneHomographyMatchesProjectionAtHeight) {
  CameraIntrinsics intr;
  intr.focal_px = 320;
  intr.width = 360;
  intr.height = 288;
  const PinholeCamera cam({-1, -1, 2.3}, {4, 4, 0.9}, intr);
  for (const double z : {0.0, 0.9, 1.6, 1.92}) {
    const Homography h = cam.plane_homography(z);
    for (const Vec2 g : {Vec2{2, 3}, Vec2{5, 5}, Vec2{7, 1}}) {
      const auto direct = cam.project({g.x, g.y, z});
      const auto via_h = h.apply(g);
      ASSERT_TRUE(direct && via_h) << "z=" << z;
      EXPECT_NEAR(via_h->x, direct->x, 1e-6);
      EXPECT_NEAR(via_h->y, direct->y, 1e-6);
    }
  }
}

TEST(Camera, PlaneHomographyAtZeroEqualsGroundHomography) {
  const PinholeCamera cam({-1.2, -1.2, 2.3}, {4, 4, 0.9}, {});
  const Homography ground = cam.ground_homography();
  const Homography plane0 = cam.plane_homography(0.0);
  for (const Vec2 g : {Vec2{1, 1}, Vec2{4, 4}, Vec2{6.5, 2.5}}) {
    const auto a = ground.apply(g);
    const auto b = plane0.apply(g);
    ASSERT_TRUE(a && b);
    EXPECT_NEAR(a->x, b->x, 1e-9);
    EXPECT_NEAR(a->y, b->y, 1e-9);
  }
}

TEST(Camera, HeadPlaneProjectsAboveGroundPlane) {
  // The (ground, head) plane pair bounds an upright person's pixel height —
  // the context gate's feasibility oracle. Head pixels must sit above (lower
  // image y) the foot pixels everywhere both project.
  CameraIntrinsics intr;
  intr.focal_px = 320;
  const PinholeCamera cam({-1.2, -1.2, 2.3}, {4, 4, 0.9}, intr);
  const Homography feet = cam.plane_homography(0.0);
  const Homography heads = cam.plane_homography(1.7);
  for (const Vec2 g : {Vec2{2, 2}, Vec2{4, 4}, Vec2{6, 3}}) {
    const auto foot = feet.apply(g);
    const auto head = heads.apply(g);
    ASSERT_TRUE(foot && head);
    EXPECT_LT(head->y, foot->y);
  }
}

TEST(Camera, CrossCameraGroundTransferIsConsistent) {
  // A ground point seen in camera A maps to the correct pixel in camera B via
  // H_B * H_A^{-1} — the re-identification mechanism of §IV-C.
  CameraIntrinsics intr;
  const PinholeCamera cam_a({-1, -1, 2.3}, {4, 4, 0.9}, intr);
  const PinholeCamera cam_b({9, -1, 2.3}, {4, 4, 0.9}, intr);
  const Homography transfer = cam_b.ground_homography() * cam_a.ground_homography().inverse();
  const Vec2 ground{3.0, 4.0};
  const auto px_a = cam_a.project({ground.x, ground.y, 0});
  const auto px_b = cam_b.project({ground.x, ground.y, 0});
  ASSERT_TRUE(px_a && px_b);
  const auto mapped = transfer.apply(*px_a);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_NEAR(mapped->x, px_b->x, 1e-6);
  EXPECT_NEAR(mapped->y, px_b->y, 1e-6);
}

TEST(Camera, VerticalViewDirectionViolatesContract) {
  EXPECT_THROW(PinholeCamera({0, 0, 5}, {0, 0, 0}, {}), ContractViolation);
}

TEST(Camera, InImageBounds) {
  CameraIntrinsics intr;
  intr.width = 100;
  intr.height = 80;
  const PinholeCamera cam({0, 0, 2}, {5, 0, 1}, intr);
  EXPECT_TRUE(cam.in_image({0, 0}));
  EXPECT_TRUE(cam.in_image({99.9, 79.9}));
  EXPECT_FALSE(cam.in_image({100, 40}));
  EXPECT_FALSE(cam.in_image({50, -0.1}));
}

// RANSAC estimation of the calibration homography from noisy landmarks, as
// the paper's offline calibration step does (§IV-C).
TEST(Ransac, RecoversCameraGroundHomographyFromLandmarks) {
  Rng rng(7);
  CameraIntrinsics intr;
  intr.focal_px = 320;
  const PinholeCamera cam({-1.2, -1.2, 2.3}, {4, 4, 0.9}, intr);
  std::vector<PointPair> landmarks;
  for (int i = 0; i < 25; ++i) {
    const Vec2 g{rng.uniform(0.5, 7.5), rng.uniform(0.5, 7.5)};
    const auto px = cam.project({g.x, g.y, 0});
    if (!px) continue;
    landmarks.push_back({g, {px->x + rng.normal() * 0.5, px->y + rng.normal() * 0.5}});
  }
  ASSERT_GE(landmarks.size(), 10u);
  RansacOptions opts;
  opts.inlier_threshold = 3.0;
  const RansacResult result = estimate_homography_ransac(landmarks, rng, opts);
  const auto truth_px = cam.project({4.2, 3.1, 0});
  const auto est_px = result.homography.apply({4.2, 3.1});
  ASSERT_TRUE(truth_px && est_px);
  EXPECT_NEAR(est_px->x, truth_px->x, 2.0);
  EXPECT_NEAR(est_px->y, truth_px->y, 2.0);
}

}  // namespace
}  // namespace eecs::geometry
