// Cross-dataset property sweeps: invariants that must hold for every
// environment preset and camera, exercised with parameterized gtest.
#include <gtest/gtest.h>

#include "core/offline.hpp"
#include "detect/detector.hpp"
#include "energy/model.hpp"
#include "features/frame_feature.hpp"
#include "imaging/io.hpp"
#include "video/scene.hpp"

namespace eecs {
namespace {

// ---------------------------------------------------------------- scene sweep

class ScenePropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int dataset() const { return std::get<0>(GetParam()); }
  int camera() const { return std::get<1>(GetParam()); }
};

TEST_P(ScenePropertyTest, GroundTruthBoxesLieInsideTheFrame) {
  video::SceneSimulator sim(video::dataset_by_id(dataset()), 4242);
  sim.skip(200);
  for (int f = 0; f < 5; ++f) {
    for (const auto& gt : sim.ground_truth(camera())) {
      EXPECT_GE(gt.box.x, -1e-9);
      EXPECT_GE(gt.box.y, -1e-9);
      EXPECT_LE(gt.box.right(), sim.environment().image_width + 1e-9);
      EXPECT_LE(gt.box.bottom(), sim.environment().image_height + 1e-9);
      EXPECT_GE(gt.visibility, 0.0);
      EXPECT_LE(gt.visibility, 1.0);
      EXPECT_GT(gt.in_image_fraction, 0.0);
      EXPECT_LE(gt.in_image_fraction, 1.0 + 1e-9);
    }
    sim.skip(100);
  }
}

TEST_P(ScenePropertyTest, PixelsAreInUnitRange) {
  video::SceneSimulator sim(video::dataset_by_id(dataset()), 4242);
  const imaging::Image frame = sim.next_frame_single(camera());
  for (float v : frame.data()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

TEST_P(ScenePropertyTest, GroundHomographyRoundTripsFootPoints) {
  video::SceneSimulator sim(video::dataset_by_id(dataset()), 4242);
  const auto& cam = sim.cameras()[static_cast<std::size_t>(camera())];
  const geometry::Homography to_image = cam.ground_homography();
  const geometry::Homography to_world = to_image.inverse();
  for (double gx : {1.0, 3.5, 6.0}) {
    for (double gy : {1.0, 4.0, 6.5}) {
      const auto px = to_image.apply({gx, gy});
      ASSERT_TRUE(px.has_value());
      const auto back = to_world.apply(*px);
      ASSERT_TRUE(back.has_value());
      EXPECT_NEAR(back->x, gx, 1e-6);
      EXPECT_NEAR(back->y, gy, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFeeds, ScenePropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)),
                         [](const auto& info) {
                           return "D" + std::to_string(std::get<0>(info.param)) + "C" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ------------------------------------------------------------- detector sweep

class DetectorEnergyTest : public ::testing::TestWithParam<int> {
 protected:
  static const core::DetectorBank& bank() {
    static const core::DetectorBank detectors = detect::make_trained_detectors(777);
    return detectors;
  }
};

TEST_P(DetectorEnergyTest, EnergyGrowsWithResolution) {
  const auto& detector = *bank()[static_cast<std::size_t>(GetParam())];
  const energy::CpuEnergyModel model;
  video::SceneSimulator small(video::dataset1_lab(), 5);   // 360x288.
  video::SceneSimulator large(video::dataset2_chap(), 5);  // 1024x768.
  energy::CostCounter cost_small, cost_large;
  (void)detector.detect(small.next_frame_single(0), &cost_small);
  (void)detector.detect(large.next_frame_single(0), &cost_large);
  EXPECT_GT(model.joules(cost_large), model.joules(cost_small))
      << detect::to_string(detector.id());
}

TEST_P(DetectorEnergyTest, DetectionsCarryFiniteGeometry) {
  const auto& detector = *bank()[static_cast<std::size_t>(GetParam())];
  video::SceneSimulator sim(video::dataset1_lab(), 6);
  for (const auto& d : detector.detect(sim.next_frame_single(1))) {
    EXPECT_GT(d.box.w, 0.0);
    EXPECT_GT(d.box.h, 0.0);
    // Person-shaped: taller than wide.
    EXPECT_GT(d.box.h, d.box.w);
    EXPECT_TRUE(std::isfinite(d.score));
  }
}

TEST_P(DetectorEnergyTest, DeterministicAcrossCalls) {
  const auto& detector = *bank()[static_cast<std::size_t>(GetParam())];
  video::SceneSimulator sim(video::dataset1_lab(), 7);
  const imaging::Image frame = sim.next_frame_single(0);
  const auto a = detector.detect(frame);
  const auto b = detector.detect(frame);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].score, b[i].score);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DetectorEnergyTest, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(detect::to_string(
                               static_cast<detect::AlgorithmId>(info.param)));
                         });

// ---------------------------------------------------------------- imaging I/O

TEST(ImageIo, WritesPpmAndPgm) {
  imaging::Image color(8, 4, 3);
  color.fill(0.5f);
  imaging::Image gray(8, 4, 1);
  const std::string ppm = "/tmp/eecs_test_io.ppm";
  const std::string pgm = "/tmp/eecs_test_io.pgm";
  EXPECT_NO_THROW(imaging::write_image(color, ppm));
  EXPECT_NO_THROW(imaging::write_image(gray, pgm));
  // P6 header, 8x4, then 8*4*3 bytes.
  std::FILE* f = std::fopen(ppm.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P6");
  std::fclose(f);
}

TEST(ImageIo, WriteToBadPathThrows) {
  imaging::Image img(2, 2, 1);
  EXPECT_THROW(imaging::write_image(img, "/nonexistent-dir/x.pgm"), std::runtime_error);
}

TEST(ImageIo, BoxOutlineStaysInBounds) {
  imaging::Image img(10, 10, 3);
  EXPECT_NO_THROW(imaging::draw_box_outline(img, {-5, -5, 30, 30}, {1, 0, 0}));
  EXPECT_NO_THROW(imaging::draw_box_outline(img, {2, 2, 4, 4}, {0, 1, 0}));
  EXPECT_EQ(img.at(2, 2, 1), 1.0f);  // Outline drawn.
  EXPECT_EQ(img.at(4, 4, 1), 0.0f);  // Interior untouched.
}

// ------------------------------------------------------ frame-feature sweep

TEST(FrameFeatureSweep, FeaturesAreFiniteAcrossDatasets) {
  std::vector<imaging::Image> vocab;
  for (int ds = 1; ds <= 3; ++ds) {
    video::SceneSimulator sim(video::dataset_by_id(ds), 10 + static_cast<std::uint64_t>(ds));
    vocab.push_back(sim.next_frame_single(0));
  }
  Rng rng(1);
  features::FrameFeatureParams params;
  params.bow_words = 16;
  const features::FrameFeatureExtractor extractor(vocab, params, rng);
  for (const auto& frame : vocab) {
    const auto feat = extractor.extract(frame);
    ASSERT_EQ(static_cast<int>(feat.size()), extractor.dimension());
    for (float v : feat) ASSERT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace eecs
