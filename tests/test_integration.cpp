// End-to-end integration: offline training -> camera registration via GFK ->
// assessment -> greedy selection (+ downgrade) -> operation, on a short slice
// of dataset #1. Uses reduced sampling so the whole file runs in ~a minute.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "obs/telemetry.hpp"

namespace eecs::core {
namespace {

class EecsIntegration : public ::testing::Test {
 protected:
  static const DetectorBank& bank() {
    static const DetectorBank detectors = detect::make_trained_detectors(1234);
    return detectors;
  }

  static OfflineOptions options() {
    OfflineOptions opts;
    opts.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
    opts.frames_per_item = 4;
    return opts;
  }

  static const OfflineKnowledge& knowledge() {
    static const OfflineKnowledge k = run_offline_training(bank(), {1}, 42, options());
    return k;
  }

  static EecsSimulationConfig config(SelectionMode mode) {
    EecsSimulationConfig cfg;
    cfg.dataset = 1;
    cfg.mode = mode;
    cfg.budget_per_frame = 3.0;
    cfg.controller.algorithms = options().algorithms;
    cfg.models = options();
    cfg.end_frame = 1900;  // One recalibration round.
    return cfg;
  }
};

TEST_F(EecsIntegration, OfflineTrainingProfilesAllItemsAndAlgorithms) {
  ASSERT_EQ(knowledge().profiles().size(), 4u);  // 1 dataset x 4 cameras.
  for (const auto& item : knowledge().profiles()) {
    ASSERT_EQ(item.algorithms.size(), 2u);
    // Rank order: descending f-score.
    EXPECT_GE(item.algorithms[0].accuracy.f_score, item.algorithms[1].accuracy.f_score);
    for (const auto& p : item.algorithms) {
      EXPECT_GT(p.cpu_joules_per_frame, 0.0);
      EXPECT_GE(p.accuracy.f_score, 0.0);
      EXPECT_LE(p.accuracy.f_score, 1.0);
    }
  }
}

TEST_F(EecsIntegration, Dataset1PrefersHogOverAcf) {
  // The paper's Table II/IV property: on the low-resolution indoor set, HOG
  // outranks ACF (which misses small people).
  int hog_best = 0;
  for (const auto& item : knowledge().profiles()) {
    hog_best += (item.algorithms.front().id == detect::AlgorithmId::Hog);
  }
  EXPECT_GE(hog_best, 3);  // At least 3 of 4 cameras.
}

TEST_F(EecsIntegration, AcfIsCheaperThanHog) {
  for (const auto& item : knowledge().profiles()) {
    const auto* hog = item.find(detect::AlgorithmId::Hog);
    const auto* acf = item.find(detect::AlgorithmId::Acf);
    ASSERT_NE(hog, nullptr);
    ASSERT_NE(acf, nullptr);
    EXPECT_LT(acf->total_joules_per_frame(), hog->total_joules_per_frame());
  }
}

TEST_F(EecsIntegration, AllBestRunsEveryCamera) {
  const SimulationResult result = run_eecs_simulation(bank(), knowledge(), config(SelectionMode::AllBest));
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_EQ(result.rounds.front().stats.cameras_active, 4);
  EXPECT_GT(result.humans_present, 0);
  EXPECT_GT(result.humans_detected, 0);
  EXPECT_GT(result.total_joules(), 0.0);
}

TEST_F(EecsIntegration, SubsetSavesEnergyAtBoundedAccuracyLoss) {
  const SimulationResult baseline =
      run_eecs_simulation(bank(), knowledge(), config(SelectionMode::AllBest));
  const SimulationResult subset =
      run_eecs_simulation(bank(), knowledge(), config(SelectionMode::SubsetOnly));
  const SimulationResult downgraded =
      run_eecs_simulation(bank(), knowledge(), config(SelectionMode::SubsetDowngrade));

  // Energy ordering: downgrade <= subset <= baseline (allowing equality when
  // the selection cannot be reduced).
  EXPECT_LE(subset.total_joules(), baseline.total_joules() * 1.001);
  EXPECT_LE(downgraded.total_joules(), subset.total_joules() * 1.001);
  // The paper's headline: large savings at a bounded accuracy hit.
  EXPECT_LT(downgraded.total_joules(), baseline.total_joules() * 0.95);
  EXPECT_GT(static_cast<double>(downgraded.humans_detected),
            0.70 * static_cast<double>(baseline.humans_detected));

  // Selection logs are populated and respect gamma constraints.
  for (const auto& round : subset.rounds) {
    EXPECT_GE(round.stats.n_est, 0.85 * round.stats.n_star - 1e-9);
  }
}

TEST_F(EecsIntegration, RegistrationMatchesCamerasToOwnFeed) {
  // The controller's GFK match should send every camera to a dataset-1 item.
  video::SceneSimulator sim(video::dataset1_lab(), 777);
  reid::ReIdentifier reid = make_reidentifier(sim);
  EecsController controller(knowledge(), std::move(reid), {});
  sim.skip(1200);
  std::vector<imaging::Image> frames;
  for (int i = 0; i < 12; ++i) {
    frames.push_back(sim.next_frame_single(2));
    sim.skip(24);
  }
  linalg::Matrix features(static_cast<int>(frames.size()), knowledge().extractor().dimension());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto f = knowledge().extractor().extract(frames[i]);
    for (int c = 0; c < features.cols(); ++c) {
      features(static_cast<int>(i), c) = f[static_cast<std::size_t>(c)];
    }
  }
  controller.register_camera(2, features, 3.0);
  const int matched = controller.matched_item(2);
  ASSERT_GE(matched, 0);
  EXPECT_EQ(knowledge().profile(matched).dataset, 1);
  EXPECT_EQ(knowledge().profile(matched).camera, 2);  // Exact feed match.
  ASSERT_NE(controller.best_entry(2), nullptr);
}

TEST_F(EecsIntegration, TightBudgetExcludesExpensiveAlgorithms) {
  video::SceneSimulator sim(video::dataset1_lab(), 777);
  EecsController controller(knowledge(), make_reidentifier(sim), {});
  sim.skip(1200);
  std::vector<imaging::Image> frames;
  for (int i = 0; i < 12; ++i) {
    frames.push_back(sim.next_frame_single(0));
    sim.skip(24);
  }
  linalg::Matrix features(static_cast<int>(frames.size()), knowledge().extractor().dimension());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto f = knowledge().extractor().extract(frames[i]);
    for (int c = 0; c < features.cols(); ++c) {
      features(static_cast<int>(i), c) = f[static_cast<std::size_t>(c)];
    }
  }
  // Budget below HOG's cost: only ACF affordable.
  controller.register_camera(0, features, 0.8);
  ASSERT_NE(controller.best_entry(0), nullptr);
  EXPECT_EQ(controller.best_entry(0)->id, detect::AlgorithmId::Acf);
  EXPECT_EQ(controller.entry(0, detect::AlgorithmId::Hog), nullptr);
}

TEST_F(EecsIntegration, FaultAndTimingViewsMatchRegistry) {
  // FaultCounters/StageTimings are views assigned once from the obs registry;
  // in a fresh session the run's deltas equal the absolute metric values.
  obs::ScopedTelemetry telemetry;
  const SimulationResult result =
      run_eecs_simulation(bank(), knowledge(), config(SelectionMode::SubsetDowngrade));
  auto& metrics = telemetry.session().metrics();
  const auto count = [&](const char* name) {
    return static_cast<long>(metrics.counter(name).value());
  };
  EXPECT_EQ(result.faults.messages_sent, count("net.messages.sent"));
  EXPECT_EQ(result.faults.messages_lost, count("net.messages.lost"));
  EXPECT_EQ(result.faults.assignments_retried, count("protocol.assignments.retried"));
  EXPECT_EQ(result.faults.assignments_abandoned, count("protocol.assignments.abandoned"));
  EXPECT_EQ(result.faults.registrations_lost, count("protocol.registrations.lost"));
  EXPECT_EQ(result.faults.decode_errors, count("protocol.decode_errors"));
  EXPECT_EQ(result.faults.cameras_failed, static_cast<int>(count("liveness.cameras.failed")));
  EXPECT_EQ(result.faults.cameras_recovered,
            static_cast<int>(count("liveness.cameras.recovered")));
  EXPECT_EQ(result.faults.midround_reselections,
            static_cast<int>(count("liveness.midround_reselections")));
  EXPECT_EQ(result.faults.frames_skipped_exhausted, count("battery.frames_skipped"));
  const auto gauge = [&](const char* name) {
    return metrics.gauge(name, obs::Determinism::WallClock).value();
  };
  EXPECT_DOUBLE_EQ(result.timings.render_s, gauge("stage.render_s"));
  EXPECT_DOUBLE_EQ(result.timings.detect_s, gauge("stage.detect_s"));
  EXPECT_DOUBLE_EQ(result.timings.features_s, gauge("stage.features_s"));
  EXPECT_DOUBLE_EQ(result.timings.controller_s, gauge("stage.controller_s"));
  EXPECT_DOUBLE_EQ(result.timings.net_s, gauge("stage.net_s"));
  EXPECT_GT(result.faults.messages_sent, 0);  // The run actually exercised the net.
}

// Property: the energy-audit ledger balances bit-exactly against the result
// accumulators and battery residuals under heavy fault injection — lossy
// links, a mid-run blackout, camera crashes — and across a checkpointed
// crash plus resume (the resumed ledger is restored from the snapshot, so it
// must still cover the WHOLE run). Conservation is vacuous under
// EECS_OBS_OFF (check() reports "obs-off" and passes), so this compiles and
// runs in both build flavours.
TEST_F(EecsIntegration, LedgerConservationSurvivesFaultsAndResume) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  cfg.uplink.loss_probability = 0.15;
  cfg.downlink.loss_probability = 0.2;
  cfg.battery_joules = 120.0;  // Small enough that cameras run dry mid-run.
  cfg.end_frame = 2200;        // Two rounds, so a round-1 checkpoint resumes mid-run.
  cfg.faults.add_blackout(1450, 1520);
  cfg.faults.add_crash(1, 1600, 1750);  // Camera 0 is network node 1.
  cfg.runtime.round_deadline_gt_frames = 3.0;
  cfg.runtime.degradation.enabled = true;
  cfg.runtime.degradation.anomaly_advisory = true;

  const auto conservation_of = [&](const EecsSimulationConfig& run_cfg) {
    obs::ScopedTelemetry telemetry;
    const SimulationResult r = run_eecs_simulation(bank(), knowledge(), run_cfg);
    return telemetry.session().ledger().check(r.cpu_joules, r.radio_joules, r.battery_residual);
  };

  const auto uninterrupted = conservation_of(cfg);
  EXPECT_TRUE(uninterrupted.ok) << uninterrupted.detail;

  const std::string snapshot = "test_ledger_conservation.snap";
  EecsSimulationConfig crash = cfg;
  crash.runtime.checkpoint_every_rounds = 1;
  crash.runtime.checkpoint_path = snapshot;
  crash.runtime.stop_after_rounds = 1;
  const auto crashed = conservation_of(crash);
  EXPECT_TRUE(crashed.ok) << crashed.detail;  // Partial run, partial ledger.

  EecsSimulationConfig resume = cfg;
  resume.runtime.resume_from = snapshot;
  const auto resumed = conservation_of(resume);
  EXPECT_TRUE(resumed.ok) << resumed.detail;
}

TEST_F(EecsIntegration, DeterministicMetricsInvariantAcrossThreadWidths) {
  // Force the lazily-trained fixtures now, so neither scoped session below
  // absorbs the offline-training detector invocations.
  const DetectorBank& detectors = bank();
  const OfflineKnowledge& trained = knowledge();
  const auto snapshot_at = [&](int threads) {
    obs::ScopedTelemetry telemetry;
    EecsSimulationConfig cfg = config(SelectionMode::SubsetDowngrade);
    cfg.threads = threads;
    (void)run_eecs_simulation(detectors, trained, cfg);
    return telemetry.session().metrics().deterministic_snapshot();
  };
  const auto serial = snapshot_at(1);
  const auto wide = snapshot_at(4);
  EXPECT_FALSE(serial.empty());
  // Render both through the %.17g reporter: equal strings == bit-identical.
  EXPECT_EQ(obs::MetricsRegistry::diff_report({}, serial),
            obs::MetricsRegistry::diff_report({}, wide));
}

}  // namespace
}  // namespace eecs::core
