#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/offline.hpp"

namespace eecs::core {
namespace {

video::GroundTruthBox gt(int person, double x, double y, double w, double h,
                         double visibility = 1.0, double in_image = 1.0) {
  video::GroundTruthBox box;
  box.person_id = person;
  box.box = {x, y, w, h};
  box.visibility = visibility;
  box.in_image_fraction = in_image;
  box.fully_in_image = in_image >= 0.95;
  return box;
}

detect::Detection det(double x, double y, double w, double h, double score) {
  detect::Detection d;
  d.box = {x, y, w, h};
  d.score = score;
  return d;
}

TEST(Metrics, PerfectMatch) {
  const auto result = match_detections({det(10, 10, 20, 40, 1.0)}, {gt(0, 10, 10, 20, 40)});
  EXPECT_EQ(result.counts.true_positives, 1);
  EXPECT_EQ(result.counts.false_positives, 0);
  EXPECT_EQ(result.counts.false_negatives, 0);
  ASSERT_EQ(result.matched_person_ids.size(), 1u);
  EXPECT_EQ(result.matched_person_ids[0], 0);
}

TEST(Metrics, LowIouIsFalsePositiveAndFalseNegative) {
  const auto result = match_detections({det(100, 100, 20, 40, 1.0)}, {gt(0, 10, 10, 20, 40)});
  EXPECT_EQ(result.counts.true_positives, 0);
  EXPECT_EQ(result.counts.false_positives, 1);
  EXPECT_EQ(result.counts.false_negatives, 1);
}

TEST(Metrics, OneDetectionPerGroundTruth) {
  // Two overlapping detections on one person: one TP, one FP.
  const auto result = match_detections(
      {det(10, 10, 20, 40, 1.0), det(11, 11, 20, 40, 0.9)}, {gt(0, 10, 10, 20, 40)});
  EXPECT_EQ(result.counts.true_positives, 1);
  EXPECT_EQ(result.counts.false_positives, 1);
}

TEST(Metrics, HigherScoreWinsTheMatch) {
  const auto result = match_detections(
      {det(10, 10, 20, 40, 0.2), det(12, 10, 20, 40, 0.9)}, {gt(0, 11, 10, 20, 40)});
  EXPECT_EQ(result.counts.true_positives, 1);
  ASSERT_EQ(result.matched_detections.size(), 1u);
  EXPECT_DOUBLE_EQ(result.matched_detections[0].score, 0.9);
}

TEST(Metrics, OccludedGroundTruthIsIgnoredNotMissed) {
  // Heavily occluded person: no FN for missing it, no FP for hitting it.
  const auto missed = match_detections({}, {gt(0, 10, 10, 20, 40, /*visibility=*/0.2)});
  EXPECT_EQ(missed.counts.false_negatives, 0);
  const auto hit = match_detections({det(10, 10, 20, 40, 1.0)},
                                    {gt(0, 10, 10, 20, 40, /*visibility=*/0.2)});
  EXPECT_EQ(hit.counts.false_positives, 0);
  EXPECT_EQ(hit.counts.true_positives, 0);
}

TEST(Metrics, MostlyOutOfFrameIsIgnored) {
  const auto result = match_detections({}, {gt(0, 0, 0, 20, 40, 1.0, /*in_image=*/0.4)});
  EXPECT_EQ(result.counts.false_negatives, 0);
}

TEST(Metrics, ComputePrEdgeCases) {
  EXPECT_DOUBLE_EQ(compute_pr({0, 0, 0}).f_score, 0.0);
  const auto perfect = compute_pr({10, 0, 0});
  EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
  EXPECT_DOUBLE_EQ(perfect.f_score, 1.0);
  const auto half = compute_pr({5, 5, 5});
  EXPECT_DOUBLE_EQ(half.precision, 0.5);
  EXPECT_DOUBLE_EQ(half.recall, 0.5);
  EXPECT_DOUBLE_EQ(half.f_score, 0.5);
}

TEST(Metrics, FScoreFormulaMatchesPaper) {
  // f = 2 * P * R / (P + R).
  const auto pr = compute_pr({6, 2, 4});  // P = 0.75, R = 0.6.
  EXPECT_NEAR(pr.f_score, 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(Metrics, ApplyThresholdFilters) {
  const auto kept = apply_threshold({det(0, 0, 1, 1, 0.5), det(0, 0, 1, 1, 0.2)}, 0.4);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.5);
}

TEST(Metrics, ThresholdSweepPicksFMaximizer) {
  // One true person; detections: a high-scoring TP and a low-scoring FP.
  // Any threshold between them yields f = 1; the sweep must find it.
  std::vector<FrameEvaluation> frames(1);
  frames[0].detections = {det(10, 10, 20, 40, 2.0), det(100, 100, 20, 40, 0.5)};
  frames[0].truth = {gt(0, 10, 10, 20, 40)};
  const auto sweep = sweep_threshold(frames);
  EXPECT_GT(sweep.best_threshold, 0.5);
  EXPECT_LE(sweep.best_threshold, 2.0);
  EXPECT_DOUBLE_EQ(sweep.best.f_score, 1.0);
}

TEST(Metrics, ThresholdSweepEmptyFramesSafe) {
  const auto sweep = sweep_threshold({});
  EXPECT_DOUBLE_EQ(sweep.best.f_score, 0.0);
}

TEST(Metrics, SweepPrecisionRecallTradeoff) {
  // Lower thresholds add a second TP but also two FPs; check the sweep picks
  // the better operating point by f-score.
  std::vector<FrameEvaluation> frames(1);
  frames[0].detections = {det(10, 10, 20, 40, 2.0), det(50, 10, 20, 40, 1.0),
                          det(100, 100, 20, 40, 0.9), det(150, 100, 20, 40, 0.9)};
  frames[0].truth = {gt(0, 10, 10, 20, 40), gt(1, 50, 10, 20, 40)};
  const auto sweep = sweep_threshold(frames);
  // Best: threshold in (0.9, 1.0]: 2 TP, 0 FP -> f = 1.
  EXPECT_DOUBLE_EQ(sweep.best.f_score, 1.0);
  EXPECT_EQ(sweep.counts_at_best.true_positives, 2);
}

TEST(OfflineProfiles, BestAffordableRespectsBudget) {
  TrainingItemProfile item;
  AlgorithmProfile expensive;
  expensive.id = detect::AlgorithmId::Hog;
  expensive.accuracy.f_score = 0.9;
  expensive.cpu_joules_per_frame = 1.0;
  AlgorithmProfile cheap;
  cheap.id = detect::AlgorithmId::Acf;
  cheap.accuracy.f_score = 0.6;
  cheap.cpu_joules_per_frame = 0.1;
  item.algorithms = {expensive, cheap};  // Sorted by f.

  EXPECT_EQ(item.best_affordable(2.0)->id, detect::AlgorithmId::Hog);
  EXPECT_EQ(item.best_affordable(0.5)->id, detect::AlgorithmId::Acf);
  EXPECT_EQ(item.best_affordable(0.01), nullptr);
  EXPECT_EQ(item.find(detect::AlgorithmId::Acf)->accuracy.f_score, 0.6);
  EXPECT_EQ(item.find(detect::AlgorithmId::C4), nullptr);
}

TEST(OfflineProfiles, FPerJouleOrdersDowngradeCandidates) {
  AlgorithmProfile a;
  a.accuracy.f_score = 0.9;
  a.cpu_joules_per_frame = 1.0;
  AlgorithmProfile b;
  b.accuracy.f_score = 0.6;
  b.cpu_joules_per_frame = 0.1;
  EXPECT_GT(b.f_per_joule(), a.f_per_joule());
}

}  // namespace
}  // namespace eecs::core
