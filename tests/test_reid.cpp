#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "features/color_feature.hpp"
#include "reid/reid.hpp"
#include "video/scene.hpp"

namespace eecs::reid {
namespace {

TEST(Fusion, MatchesEquationSix) {
  // P = 1 - prod(1 - P_ij).
  EXPECT_NEAR(fuse_probabilities({0.5, 0.5}), 0.75, 1e-12);
  EXPECT_NEAR(fuse_probabilities({0.9}), 0.9, 1e-12);
  EXPECT_NEAR(fuse_probabilities({}), 0.0, 1e-12);
  EXPECT_NEAR(fuse_probabilities({1.0, 0.1}), 1.0, 1e-12);
}

TEST(Fusion, MoreViewsNeverDecreaseConfidence) {
  const double one = fuse_probabilities({0.6});
  const double two = fuse_probabilities({0.6, 0.3});
  const double three = fuse_probabilities({0.6, 0.3, 0.2});
  EXPECT_GE(two, one);
  EXPECT_GE(three, two);
}

std::vector<float> color_vec(float r, float g, float b) {
  std::vector<float> f(40, 0.0f);
  for (int band = 0; band < 5; ++band) {
    f[static_cast<std::size_t>(band * 6)] = r;
    f[static_cast<std::size_t>(band * 6 + 1)] = g;
    f[static_cast<std::size_t>(band * 6 + 2)] = b;
  }
  return f;
}

ColorGate make_gate(Rng& rng) {
  // Two objects with distinct colors, several noisy observations each.
  std::vector<std::vector<float>> feats;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    auto a = color_vec(0.8f, 0.1f, 0.1f);
    auto b = color_vec(0.1f, 0.1f, 0.8f);
    for (auto& v : a) v += static_cast<float>(rng.normal()) * 0.02f;
    for (auto& v : b) v += static_cast<float>(rng.normal()) * 0.02f;
    feats.push_back(a);
    labels.push_back(0);
    feats.push_back(b);
    labels.push_back(1);
  }
  return ColorGate(feats, labels);
}

TEST(ColorGate, SameObjectWithinThresholdDifferentBeyond) {
  Rng rng(1);
  const ColorGate gate = make_gate(rng);
  ASSERT_TRUE(gate.fitted());
  const auto red1 = color_vec(0.8f, 0.1f, 0.1f);
  const auto red2 = color_vec(0.82f, 0.12f, 0.1f);
  const auto blue = color_vec(0.1f, 0.1f, 0.8f);
  EXPECT_LT(gate.distance(red1, red2), gate.threshold());
  EXPECT_GT(gate.distance(red1, blue), gate.threshold());
}

TEST(ColorGate, RequiresSameObjectPairs) {
  std::vector<std::vector<float>> feats{color_vec(1, 0, 0), color_vec(0, 1, 0),
                                        color_vec(0, 0, 1), color_vec(1, 1, 0)};
  std::vector<int> labels{0, 1, 2, 3};  // No same-label pair.
  EXPECT_THROW(ColorGate(feats, labels), ContractViolation);
}

/// Two "cameras" whose image coordinates ARE ground coordinates (identity
/// homographies): foot points can be placed directly.
ReIdentifier identity_reid(const ReIdParams& params = {}) {
  return ReIdentifier({geometry::Homography(), geometry::Homography()}, params);
}

ViewDetection make_det(int camera, double x, double foot_y, double prob) {
  ViewDetection vd;
  vd.camera = camera;
  vd.detection.box = {x - 5, foot_y - 20, 10, 20};
  vd.detection.probability = prob;
  return vd;
}

TEST(ReIdentifier, MergesNearbyCrossCameraDetections) {
  ReIdParams params;
  params.use_color_gate = false;
  const ReIdentifier reid = identity_reid(params);
  const std::vector<ViewDetection> dets{make_det(0, 5.0, 5.0, 0.6), make_det(1, 5.3, 5.2, 0.7)};
  const auto groups = reid.group(dets);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].member_indices.size(), 2u);
  EXPECT_NEAR(groups[0].fused_probability, 1 - 0.4 * 0.3, 1e-9);
}

TEST(ReIdentifier, KeepsDistantDetectionsApart) {
  ReIdParams params;
  params.use_color_gate = false;
  const ReIdentifier reid = identity_reid(params);
  const std::vector<ViewDetection> dets{make_det(0, 0.0, 0.0, 0.5), make_det(1, 10.0, 10.0, 0.5)};
  EXPECT_EQ(reid.group(dets).size(), 2u);
}

TEST(ReIdentifier, NeverMergesSameCameraDetections) {
  ReIdParams params;
  params.use_color_gate = false;
  const ReIdentifier reid = identity_reid(params);
  const std::vector<ViewDetection> dets{make_det(0, 5.0, 5.0, 0.5), make_det(0, 5.1, 5.1, 0.5)};
  EXPECT_EQ(reid.group(dets).size(), 2u);
}

TEST(ReIdentifier, ColorGateBlocksMismatchedAppearance) {
  Rng rng(2);
  ReIdentifier reid = identity_reid();
  reid.set_color_gate(make_gate(rng));
  auto red = make_det(0, 5.0, 5.0, 0.5);
  red.color_feature = color_vec(0.8f, 0.1f, 0.1f);
  auto blue = make_det(1, 5.2, 5.1, 0.5);
  blue.color_feature = color_vec(0.1f, 0.1f, 0.8f);
  EXPECT_EQ(reid.group({red, blue}).size(), 2u);  // Same spot, different person.

  auto red2 = make_det(1, 5.2, 5.1, 0.5);
  red2.color_feature = color_vec(0.81f, 0.11f, 0.1f);
  EXPECT_EQ(reid.group({red, red2}).size(), 1u);
}

TEST(ReIdentifier, GroundPointUsesFootOfBox) {
  const ReIdentifier reid = identity_reid();
  ViewDetection vd = make_det(0, 7.0, 9.0, 0.5);
  const auto ground = reid.ground_point(vd);
  ASSERT_TRUE(ground.has_value());
  EXPECT_NEAR(ground->x, 7.0, 1e-9);
  EXPECT_NEAR(ground->y, 9.0, 1e-9);
}

// Integration with the scene simulator: re-id of ground-truth boxes across
// the four real cameras should recover roughly the true person count, and
// merge precision should be high (paper: > 90%).
TEST(ReIdentifier, SceneGroundTruthGroupsApproximatePersonCount) {
  video::SceneSimulator sim(video::dataset1_lab(), 31);
  reid::ReIdentifier reid = core::make_reidentifier(sim);
  reid.set_color_gate(core::fit_color_gate(1, 32, 4));

  sim.skip(500);
  int total_groups = 0, total_persons = 0;
  long correct_pairs = 0, total_pairs = 0;
  for (int f = 0; f < 5; ++f) {
    const video::MultiViewFrame frame = sim.next_frame();
    std::vector<ViewDetection> dets;
    std::vector<int> person_of;
    std::set<int> persons;
    for (std::size_t cam = 0; cam < frame.views.size(); ++cam) {
      for (const auto& gt : frame.truth[cam]) {
        if (gt.visibility < 0.7 || gt.in_image_fraction < 0.9) continue;
        ViewDetection vd;
        vd.camera = static_cast<int>(cam);
        vd.detection.box = gt.box;
        vd.detection.probability = 0.9;
        vd.color_feature = features::color_feature(frame.views[cam], gt.box);
        dets.push_back(std::move(vd));
        person_of.push_back(gt.person_id);
        persons.insert(gt.person_id);
      }
    }
    const auto groups = reid.group(dets);
    total_groups += static_cast<int>(groups.size());
    total_persons += static_cast<int>(persons.size());
    for (const auto& g : groups) {
      for (std::size_t i = 0; i < g.member_indices.size(); ++i) {
        for (std::size_t j = i + 1; j < g.member_indices.size(); ++j) {
          ++total_pairs;
          correct_pairs += (person_of[static_cast<std::size_t>(g.member_indices[i])] ==
                            person_of[static_cast<std::size_t>(g.member_indices[j])]);
        }
      }
    }
    sim.skip(99);
  }
  // Group count within 60% of the true person count (over-splitting bounded).
  EXPECT_LT(total_groups, static_cast<int>(1.6 * total_persons) + 1);
  EXPECT_GE(total_groups, total_persons / 2);
  if (total_pairs > 0) {
    EXPECT_GT(static_cast<double>(correct_pairs) / static_cast<double>(total_pairs), 0.9);
  }
}

}  // namespace
}  // namespace eecs::reid
