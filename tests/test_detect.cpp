#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "detect/acf_detector.hpp"
#include "detect/batch_precompute.hpp"
#include "detect/boosting.hpp"
#include "detect/c4_detector.hpp"
#include "detect/calibration.hpp"
#include "detect/detector.hpp"
#include "detect/frame_cache.hpp"
#include "detect/hog_detector.hpp"
#include "detect/linear_svm.hpp"
#include "detect/lsvm_detector.hpp"
#include "detect/nms.hpp"
#include "detect/sweep_scheduler.hpp"
#include "video/scene.hpp"
#include "video/sprite.hpp"

namespace eecs::detect {
namespace {

TEST(Nms, SuppressesOverlappingLowerScores) {
  std::vector<Detection> dets{{{0, 0, 10, 20}, 1.0, 0}, {{1, 1, 10, 20}, 0.9, 0},
                              {{100, 100, 10, 20}, 0.5, 0}};
  const auto kept = non_max_suppression(dets, 0.45);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].score, 1.0);
  EXPECT_EQ(kept[1].score, 0.5);
}

TEST(Nms, KeepsDisjointDetections) {
  std::vector<Detection> dets{{{0, 0, 10, 10}, 1.0, 0}, {{50, 50, 10, 10}, 0.8, 0}};
  EXPECT_EQ(non_max_suppression(dets).size(), 2u);
}

TEST(Nms, OutputSortedByScore) {
  std::vector<Detection> dets{{{0, 0, 5, 5}, 0.2, 0}, {{20, 0, 5, 5}, 0.9, 0},
                              {{40, 0, 5, 5}, 0.5, 0}};
  const auto kept = non_max_suppression(dets);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].score, kept[1].score);
  EXPECT_GE(kept[1].score, kept[2].score);
}

TEST(LinearSvm, SeparatesLinearlySeparableData) {
  Rng rng(1);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const float cls = (i % 2 == 0) ? 1.0f : -1.0f;
    x.push_back({cls * 2.0f + static_cast<float>(rng.normal()) * 0.3f,
                 static_cast<float>(rng.normal())});
    y.push_back(i % 2 == 0 ? 1 : -1);
  }
  const LinearModel model = train_linear_svm(x, y, rng);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += ((model.score(x[i]) > 0) == (y[i] > 0));
  }
  EXPECT_GT(correct, 190);
}

TEST(LinearSvm, RejectsSingleClassData) {
  Rng rng(1);
  std::vector<std::vector<float>> x{{1, 2}, {3, 4}};
  std::vector<int> y{1, 1};
  EXPECT_THROW((void)train_linear_svm(x, y, rng), ContractViolation);
}

TEST(LinearSvm, RejectsBadLabels) {
  Rng rng(1);
  std::vector<std::vector<float>> x{{1, 2}, {3, 4}};
  std::vector<int> y{1, 0};
  EXPECT_THROW((void)train_linear_svm(x, y, rng), ContractViolation);
}

TEST(Boosting, SeparatesThresholdStructuredData) {
  Rng rng(2);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    std::vector<float> f(10);
    for (auto& v : f) v = static_cast<float>(rng.normal());
    const bool pos = i % 2 == 0;
    // Positives: feature 3 high AND feature 7 low-ish.
    if (pos) {
      f[3] += 2.0f;
      f[7] -= 1.5f;
    }
    x.push_back(f);
    y.push_back(pos ? 1 : -1);
  }
  BoostOptions options;
  options.rounds = 60;
  options.features_per_round = 10;
  const BoostedModel model = train_adaboost(x, y, rng, options);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += ((model.score(x[i]) > 0) == (y[i] > 0));
  }
  EXPECT_GT(correct, 280);
}

TEST(Boosting, AlphasArePositive) {
  Rng rng(3);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({static_cast<float>(i % 2) + static_cast<float>(rng.normal()) * 0.1f});
    y.push_back(i % 2 == 0 ? -1 : 1);
  }
  const BoostedModel model = train_adaboost(x, y, rng, {20, 1});
  ASSERT_FALSE(model.stumps.empty());
  for (const auto& st : model.stumps) EXPECT_GT(st.alpha, 0.0f);
}

TEST(Platt, ProbabilityMonotonicInScore) {
  const PlattScaling platt = fit_platt({2.0, 3.0, 2.5, 4.0}, {-2.0, -1.0, -3.0, -1.5});
  EXPECT_LT(platt.probability(-2.0), platt.probability(0.0));
  EXPECT_LT(platt.probability(0.0), platt.probability(3.0));
  EXPECT_GT(platt.probability(3.0), 0.7);
  EXPECT_LT(platt.probability(-2.0), 0.3);
}

TEST(Platt, OutputsAreProbabilities) {
  const PlattScaling platt = fit_platt({1.0, 2.0}, {-1.0, -2.0});
  for (double s : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    const double p = platt.probability(s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Platt, RequiresBothClasses) {
  EXPECT_THROW((void)fit_platt({}, {1.0}), ContractViolation);
}

TEST(Training, GeneratesRequestedCounts) {
  Rng rng(4);
  TrainingSetOptions options;
  options.num_positives = 20;
  options.num_negatives = 30;
  const TrainingSet set = generate_training_set(rng, options);
  EXPECT_EQ(set.positives.size(), 20u);
  EXPECT_EQ(set.negatives.size(), 30u);
  for (const auto& img : set.positives) {
    EXPECT_EQ(img.width(), kWindowWidth);
    EXPECT_EQ(img.height(), kWindowHeight);
    EXPECT_EQ(img.channels(), 3);
  }
}

TEST(Training, DeterministicForSameSeed) {
  Rng a(5), b(5);
  TrainingSetOptions options;
  options.num_positives = 3;
  options.num_negatives = 3;
  const TrainingSet sa = generate_training_set(a, options);
  const TrainingSet sb = generate_training_set(b, options);
  EXPECT_EQ(sa.positives[0].at(10, 20, 1), sb.positives[0].at(10, 20, 1));
}

TEST(Detector, WindowToPersonBoxShrinks) {
  const imaging::Rect person = window_to_person_box({0, 0, 48, 96});
  EXPECT_GT(person.x, 0.0);
  EXPECT_LT(person.w, 48.0);
  EXPECT_LT(person.h, 96.0);
  EXPECT_NEAR(person.center_x(), 24.0, 1e-9);
}

TEST(Detector, PyramidScalesAreGeometric) {
  const auto scales = pyramid_scales(0.25, 1.0, 2.0);
  ASSERT_EQ(scales.size(), 3u);
  EXPECT_DOUBLE_EQ(scales[0], 1.0);
  EXPECT_DOUBLE_EQ(scales[1], 0.5);
  EXPECT_DOUBLE_EQ(scales[2], 0.25);
}

TEST(Detector, PyramidRejectsBadArguments) {
  EXPECT_THROW((void)pyramid_scales(0.5, 0.25, 2.0), ContractViolation);
  EXPECT_THROW((void)pyramid_scales(0.5, 1.0, 1.0), ContractViolation);
}

TEST(Detector, FactoryCoversAllAlgorithms) {
  for (AlgorithmId id : all_algorithms()) {
    const auto detector = make_detector(id);
    ASSERT_NE(detector, nullptr);
    EXPECT_EQ(detector->id(), id);
    EXPECT_FALSE(detector->trained());
  }
}

TEST(Detector, UntrainedDetectViolatesContract) {
  const auto detector = make_detector(AlgorithmId::Hog);
  EXPECT_THROW((void)detector->detect(imaging::Image(64, 96, 3)), ContractViolation);
}

// Shared trained bank for the (slow) end-to-end detector checks.
const std::vector<std::unique_ptr<Detector>>& trained_bank() {
  static const auto detectors = make_trained_detectors(777);
  return detectors;
}

class TrainedDetectors : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<std::unique_ptr<Detector>>& bank() { return trained_bank(); }

  /// A frame with one big, clearly visible person on a plain background.
  static imaging::Image person_frame() {
    imaging::Image img(160, 200, 3);
    img.fill(0.55f);
    video::PersonAppearance appearance;
    appearance.shirt = {0.8f, 0.2f, 0.2f};
    appearance.pants = {0.1f, 0.1f, 0.5f};
    video::draw_person_sprite(img, {60, 40, 40, 120}, appearance, {});
    return img;
  }
};

TEST_P(TrainedDetectors, FindsAnObviousPerson) {
  const auto& detector = *bank()[static_cast<std::size_t>(GetParam())];
  ASSERT_TRUE(detector.trained());
  energy::CostCounter cost;
  const auto detections = detector.detect(person_frame(), &cost);
  ASSERT_FALSE(detections.empty()) << detect::to_string(detector.id());
  // The top detection overlaps the drawn person.
  const imaging::Rect person{60, 40, 40, 120};
  double best_iou = 0.0;
  for (const auto& d : detections) best_iou = std::max(best_iou, imaging::iou(d.box, person));
  EXPECT_GT(best_iou, 0.4) << detect::to_string(detector.id());
  EXPECT_GT(cost.compute_ops(), 0u);
}

TEST_P(TrainedDetectors, ProbabilitiesAreCalibrated) {
  const auto& detector = *bank()[static_cast<std::size_t>(GetParam())];
  for (const auto& d : detector.detect(person_frame())) {
    EXPECT_GE(d.probability, 0.0);
    EXPECT_LE(d.probability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TrainedDetectors, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(to_string(static_cast<AlgorithmId>(info.param)));
                         });

// --- Golden-detection regression: the optimized path (shared FramePrecompute
// + score maps) must be bit-identical to the legacy per-window path and to
// the captured goldens. Any perf PR that changes a single float fails here.

struct GoldenDetection {
  imaging::Rect box;
  double score = 0.0;
  double probability = 0.0;
};

/// [dataset-1][algorithm] golden lists, flattened dataset-major.
const std::array<std::vector<GoldenDetection>, 8>& golden_lists() {
  static const std::array<std::vector<GoldenDetection>, 8> lists = {{
#include "golden_detections.inc"
  }};
  return lists;
}

/// Fixed-seed frame per environment; must stay in lockstep with
/// tools/golden_detections (which regenerates the .inc lists).
imaging::Image golden_frame(int dataset) {
  video::SceneSimulator sim(video::dataset_by_id(dataset), 4242);
  sim.skip(100);
  imaging::Image frame = sim.next_frame_single(0);
  if (dataset == 2) frame = frame.crop(320, 240, 384, 288);
  return frame;
}

void expect_golden(int dataset) {
  const auto& detectors = trained_bank();
  const imaging::Image frame = golden_frame(dataset);
  // One cache across all four detectors, exercising cross-detector reuse
  // (HOG and LSVM share block grids at coinciding pyramid levels).
  FramePrecompute shared(frame);
  for (std::size_t a = 0; a < detectors.size(); ++a) {
    SCOPED_TRACE(to_string(detectors[a]->id()));
    energy::CostCounter cached_cost;
    const auto got = detectors[a]->detect(shared, &cached_cost);

    FramePrecompute naive(frame, /*force_naive=*/true);
    energy::CostCounter naive_cost;
    const auto ref = detectors[a]->detect(naive, &naive_cost);

    // The per-algorithm op model must not notice the cache at all.
    EXPECT_TRUE(cached_cost == naive_cost);

    const auto& want = golden_lists()[static_cast<std::size_t>(dataset - 1) * 4 + a];
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(ref.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE("detection " + std::to_string(i));
      EXPECT_EQ(got[i].box.x, want[i].box.x);
      EXPECT_EQ(got[i].box.y, want[i].box.y);
      EXPECT_EQ(got[i].box.w, want[i].box.w);
      EXPECT_EQ(got[i].box.h, want[i].box.h);
      EXPECT_EQ(got[i].score, want[i].score);
      EXPECT_EQ(got[i].probability, want[i].probability);
      EXPECT_EQ(ref[i].box.x, want[i].box.x);
      EXPECT_EQ(ref[i].box.y, want[i].box.y);
      EXPECT_EQ(ref[i].score, want[i].score);
      EXPECT_EQ(ref[i].probability, want[i].probability);
    }
  }
}

TEST(GoldenDetections, Dataset1BitExact) { expect_golden(1); }

TEST(GoldenDetections, Dataset2BitExact) { expect_golden(2); }


// --- BatchPrecompute: the stage-major prewarm must be invisible — same
// detections, same replayed energy charges as a cold per-camera cache.

TEST(BatchPrecompute, PrewarmedDetectionsAndCostsMatchOnDemand) {
  const auto& detectors = trained_bank();
  // Two same-sized frames (shared resize plans) plus one odd-sized frame
  // (its own plan group).
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  sim.skip(100);
  const imaging::Image frame_a = sim.next_frame_single(0);
  const imaging::Image frame_b = sim.next_frame_single(1);
  const imaging::Image frame_c = frame_a.crop(16, 8, frame_a.width() - 48, frame_a.height() - 24);
  const imaging::Image* frames[] = {&frame_a, &frame_b, &frame_c};

  BatchPrecompute batch(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto& detector : detectors) batch.plan(i, *frames[i], *detector);
  }
  batch.prewarm();
  batch.prewarm();  // Idempotent: a second call must not disturb anything.

  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE("frame " + std::to_string(i));
    FramePrecompute cold(*frames[i]);
    for (const auto& detector : detectors) {
      SCOPED_TRACE(to_string(detector->id()));
      energy::CostCounter batched_cost;
      const auto batched = detector->detect(batch.at(i), &batched_cost);
      energy::CostCounter cold_cost;
      const auto want = detector->detect(cold, &cold_cost);
      EXPECT_TRUE(batched_cost == cold_cost);
      ASSERT_EQ(batched.size(), want.size());
      for (std::size_t d = 0; d < want.size(); ++d) {
        EXPECT_EQ(batched[d].box.x, want[d].box.x);
        EXPECT_EQ(batched[d].box.y, want[d].box.y);
        EXPECT_EQ(batched[d].box.w, want[d].box.w);
        EXPECT_EQ(batched[d].box.h, want[d].box.h);
        EXPECT_EQ(batched[d].score, want[d].score);
        EXPECT_EQ(batched[d].probability, want[d].probability);
      }
    }
  }
}

// --- SweepScheduler: with the gate off, the scheduler-owned work-list is
// pure reordering — detections and replayed costs must be bit-identical to a
// cold per-frame cache AND to the legacy per-window path, on awkward frame
// geometries (odd dims, barely-one-window, census-crop-guard sizes) included.

TEST(SweepScheduler, GateOffMatchesNaivePathOnOddGeometries) {
  const auto& detectors = trained_bank();
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  sim.skip(100);
  const imaging::Image base = sim.next_frame_single(0);
  const imaging::Image odd = base.crop(7, 5, 177, 143);    // Odd dims, odd origin.
  const imaging::Image tight = base.crop(0, 0, 49, 97);    // Barely one window.
  const imaging::Image census = base.crop(3, 1, 51, 99);   // C4 crop-guard edge.
  const imaging::Image* frames[] = {&base, &odd, &tight, &census};

  SweepScheduler sched(4);
  EXPECT_FALSE(sched.gating());  // No gate options: never gates.
  for (std::size_t i = 0; i < 4; ++i) {
    for (const auto& detector : detectors) sched.plan(i, *frames[i], *detector);
  }
  sched.prewarm();
  sched.prewarm();  // Idempotent.
  EXPECT_EQ(sched.tiles_pruned(), 0u);

  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("frame " + std::to_string(i));
    for (const auto& detector : detectors) {
      SCOPED_TRACE(to_string(detector->id()));
      energy::CostCounter sched_cost;
      const auto got = detector->detect(sched.at(i), &sched_cost);
      FramePrecompute naive(*frames[i], /*force_naive=*/true);
      energy::CostCounter naive_cost;
      const auto want = detector->detect(naive, &naive_cost);
      EXPECT_TRUE(sched_cost == naive_cost);
      EXPECT_EQ(sched_cost.windows_pruned, 0u);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t d = 0; d < want.size(); ++d) {
        EXPECT_EQ(got[d].box.x, want[d].box.x);
        EXPECT_EQ(got[d].box.y, want[d].box.y);
        EXPECT_EQ(got[d].box.w, want[d].box.w);
        EXPECT_EQ(got[d].box.h, want[d].box.h);
        EXPECT_EQ(got[d].score, want[d].score);
        EXPECT_EQ(got[d].probability, want[d].probability);
      }
    }
  }
}

// With the gate on, every pruned window is accounted: evaluated + pruned must
// equal the ungated evaluated count exactly (the EnergyLedger conservation
// argument rests on this identity), and the geometric gate must actually
// engage on a standard scene camera.

TEST(SweepScheduler, ContextGateAccountingClosesExactly) {
  const auto& detectors = trained_bank();
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  sim.skip(100);
  const imaging::Image frame = sim.next_frame_single(0);
  const geometry::PinholeCamera& camera = sim.cameras()[0];

  ContextGateOptions gate;
  gate.enabled = true;
  SweepScheduler sched(1, gate, /*round_phase=*/1);
  for (const auto& detector : detectors) sched.plan(0, frame, *detector, &camera);
  sched.prewarm();
  ASSERT_TRUE(sched.gating());
  EXPECT_GT(sched.tiles_pruned(), 0u);
  EXPECT_LT(sched.tiles_pruned(), sched.tiles_planned());

  bool any_pruned = false;
  for (const auto& detector : detectors) {
    SCOPED_TRACE(to_string(detector->id()));
    energy::CostCounter off_cost;
    FramePrecompute cold(frame);
    (void)detector->detect(cold, &off_cost);
    EXPECT_EQ(off_cost.windows_pruned, 0u);

    energy::CostCounter on_cost;
    (void)detector->detect(sched.at(0), &on_cost);
    EXPECT_EQ(on_cost.windows_evaluated + on_cost.windows_pruned, off_cost.windows_evaluated);
    any_pruned = any_pruned || on_cost.windows_pruned > 0;
  }
  EXPECT_TRUE(any_pruned);
}

TEST(SweepScheduler, SingleRowBandsKeepTheAccountingIdentity) {
  // band_rows=1 is the finest tiling the gate supports — the widen-to-band
  // rounding disappears and the feasible interval is exact per row.
  const auto& detectors = trained_bank();
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  sim.skip(100);
  const imaging::Image frame = sim.next_frame_single(0);
  const geometry::PinholeCamera& camera = sim.cameras()[0];

  ContextGateOptions coarse;
  coarse.enabled = true;
  ContextGateOptions fine = coarse;
  fine.band_rows = 1;
  SweepScheduler sched_coarse(1, coarse, 1);
  SweepScheduler sched_fine(1, fine, 1);
  for (const auto& detector : detectors) {
    sched_coarse.plan(0, frame, *detector, &camera);
    sched_fine.plan(0, frame, *detector, &camera);
  }
  sched_coarse.prewarm();
  sched_fine.prewarm();

  for (const auto& detector : detectors) {
    SCOPED_TRACE(to_string(detector->id()));
    energy::CostCounter off_cost;
    FramePrecompute cold(frame);
    (void)detector->detect(cold, &off_cost);
    energy::CostCounter coarse_cost;
    (void)detector->detect(sched_coarse.at(0), &coarse_cost);
    energy::CostCounter fine_cost;
    (void)detector->detect(sched_fine.at(0), &fine_cost);
    // Identity holds at both granularities; the fine gate prunes at least as
    // much as the band-16 gate (its intervals are subsets of the widened ones).
    EXPECT_EQ(fine_cost.windows_evaluated + fine_cost.windows_pruned,
              off_cost.windows_evaluated);
    EXPECT_EQ(coarse_cost.windows_evaluated + coarse_cost.windows_pruned,
              off_cost.windows_evaluated);
    EXPECT_GE(fine_cost.windows_pruned, coarse_cost.windows_pruned);
  }
}

TEST(SweepScheduler, RecoveryRoundsSweepUngatedBitExactly) {
  ContextGateOptions gate;
  gate.enabled = true;
  gate.recovery_every = 8;
  // Gated from round 0; every 8th round thereafter is an ungated recovery.
  EXPECT_TRUE(SweepScheduler(1, gate, 0).gating());
  EXPECT_TRUE(SweepScheduler(1, gate, 1).gating());
  EXPECT_TRUE(SweepScheduler(1, gate, 7).gating());
  EXPECT_FALSE(SweepScheduler(1, gate, 8).gating());
  EXPECT_TRUE(SweepScheduler(1, gate, 9).gating());
  EXPECT_FALSE(SweepScheduler(1, gate, 16).gating());
  ContextGateOptions every_round = gate;
  every_round.recovery_every = 1;
  EXPECT_TRUE(SweepScheduler(1, every_round, 8).gating());
  ContextGateOptions off;
  EXPECT_FALSE(SweepScheduler(1, off, 1).gating());

  // A recovery-round scheduler with a camera attached behaves exactly like
  // gate-off: same detections, same costs, nothing pruned.
  const auto& detectors = trained_bank();
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  sim.skip(100);
  const imaging::Image frame = sim.next_frame_single(0);
  const geometry::PinholeCamera& camera = sim.cameras()[0];
  SweepScheduler recovery(1, gate, /*round_phase=*/8);
  for (const auto& detector : detectors) recovery.plan(0, frame, *detector, &camera);
  recovery.prewarm();
  EXPECT_EQ(recovery.tiles_pruned(), 0u);
  for (const auto& detector : detectors) {
    SCOPED_TRACE(to_string(detector->id()));
    energy::CostCounter rec_cost;
    const auto got = detector->detect(recovery.at(0), &rec_cost);
    FramePrecompute cold(frame);
    energy::CostCounter cold_cost;
    const auto want = detector->detect(cold, &cold_cost);
    EXPECT_TRUE(rec_cost == cold_cost);
    EXPECT_EQ(rec_cost.windows_pruned, 0u);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t d = 0; d < want.size(); ++d) {
      EXPECT_EQ(got[d].score, want[d].score);
      EXPECT_EQ(got[d].box.x, want[d].box.x);
      EXPECT_EQ(got[d].box.y, want[d].box.y);
    }
  }
}

TEST(SweepGate, FeasibleRowsAreAProperSubrangeOnASceneCamera) {
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  const geometry::PinholeCamera& camera = sim.cameras()[0];
  ContextGateOptions opts;
  opts.enabled = true;
  const int w = camera.intrinsics().width;
  const int h = camera.intrinsics().height;
  const SweepGate gate(camera, opts, w, h);
  ASSERT_TRUE(gate.valid());
  // Full resolution: the far-field rows above the feasibility band are cut.
  const RowInterval full = gate.top_rows(w, h);
  ASSERT_FALSE(full.empty());
  EXPECT_GT(full.lo, 0);
  // A deep pyramid level implies a person too large for any row: all pruned.
  EXPECT_TRUE(gate.top_rows(w / 3, h / 3).empty());
  // Band alignment: the interval is widened outward to band_rows boundaries.
  EXPECT_EQ(full.lo % opts.band_rows, 0);
}

TEST(SweepGate, NullGateAndDegenerateCalibrationNeverPrune) {
  // Null gate: the full anchor range, whatever the stride/offset.
  const RowInterval all = gated_anchor_rows(nullptr, 360, 288, 8, 0, 23);
  EXPECT_EQ(all.lo, 0);
  EXPECT_EQ(all.hi, 23);
  EXPECT_TRUE(gated_anchor_rows(nullptr, 360, 288, 8, 0, -1).empty());

  // A camera mounted ON the ground plane sees it edge-on: the ground
  // homography collapses to a line, its inverse throws, and the gate must
  // come out invalid -> full range, never pruning.
  geometry::CameraIntrinsics intr;
  const geometry::PinholeCamera grounded({0, 0, 0.0}, {8, 0, 0.5}, intr);
  ContextGateOptions opts;
  opts.enabled = true;
  const SweepGate gate(grounded, opts, intr.width, intr.height);
  EXPECT_FALSE(gate.valid());
  const RowInterval rows = gate.top_rows(intr.width, intr.height);
  EXPECT_EQ(rows.lo, 0);
  EXPECT_EQ(rows.hi, intr.height - kWindowHeight);
}

TEST(SweepGate, AnchorConversionRespectsStrideAndOffset) {
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  const geometry::PinholeCamera& camera = sim.cameras()[0];
  ContextGateOptions opts;
  opts.enabled = true;
  const int w = camera.intrinsics().width;
  const int h = camera.intrinsics().height;
  const SweepGate gate(camera, opts, w, h);
  ASSERT_TRUE(gate.valid());
  const RowInterval rows = gate.top_rows(w, h);
  ASSERT_FALSE(rows.empty());
  for (const int stride : {4, 8}) {
    for (const int offset : {0, 4}) {
      const int max_anchor = (h - offset - kWindowHeight) / stride;
      const RowInterval a = gated_anchor_rows(&gate, w, h, stride, offset, max_anchor);
      ASSERT_FALSE(a.empty());
      // Every kept anchor's window top lies inside the feasible interval, and
      // the anchors just outside fall off it.
      EXPECT_GE(a.lo * stride + offset, rows.lo);
      EXPECT_LE(a.hi * stride + offset, rows.hi);
      if (a.lo > 0) {
        EXPECT_LT((a.lo - 1) * stride + offset, rows.lo);
      }
      if (a.hi < max_anchor) {
        EXPECT_GT((a.hi + 1) * stride + offset, rows.hi);
      }
    }
  }
}

TEST(BatchPrecompute, UnplannedSlotsAreReported) {
  BatchPrecompute batch(2);
  EXPECT_FALSE(batch.planned(0));
  EXPECT_FALSE(batch.planned(5));  // Out of range, not a crash.
  const auto& detectors = trained_bank();
  video::SceneSimulator sim(video::dataset_by_id(1), 4242);
  const imaging::Image frame = sim.next_frame_single(0);
  batch.plan(1, frame, *detectors[0]);
  EXPECT_FALSE(batch.planned(0));
  EXPECT_TRUE(batch.planned(1));
}

}  // namespace
}  // namespace eecs::detect
