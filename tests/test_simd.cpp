#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "common/atan2.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "detect/acf_detector.hpp"
#include "detect/block_grid.hpp"
#include "detect/c4_detector.hpp"
#include "detect/linear_svm.hpp"
#include "features/census.hpp"
#include "features/hog.hpp"
#include "imaging/filter.hpp"
#include "imaging/image.hpp"
#include "imaging/integral.hpp"
#include "linalg/matrix.hpp"

namespace eecs {
namespace {

// Values chosen to stress rounding edges: negatives, non-representable
// fractions, exact powers of two, halfway cases for floor, and zeros.
const float kTrickyF[] = {0.0f,  -0.0f, 1.0f,      -1.0f,   0.1f,     -0.1f,  2.5f,
                          -2.5f, 3.0f,  -3.0f,     1e-8f,   -1e-8f,   1e8f,   -1e8f,
                          0.3f,  7.25f, -1048576.0f, 1048575.5f, 0.5f, -0.5f, 1.5f};

template <class T>
void expect_bits_eq(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0);
}

/// Runs `f` under the given SIMD mode and returns its result.
template <class F>
auto with_simd(int mode, F&& f) {
  const simd::ScopedSimd scoped(mode);
  return f();
}

imaging::Image random_image(int w, int h, int channels, Rng& rng) {
  imaging::Image img(w, h, channels);
  for (float& v : img.data()) v = static_cast<float>(rng.uniform());
  return img;
}

// ---------------------------------------------------------------------------
// Pack-level exactness: the native packs must reproduce the scalar emulation
// (the reference semantics) bit for bit on every lane.
// ---------------------------------------------------------------------------

TEST(SimdPacks, F32ArithmeticMatchesEmulationBitwise) {
  for (float a : kTrickyF) {
    for (float b : kTrickyF) {
      const simd::F32x4 na = simd::F32x4::set(a, b, a + b, a - b);
      const simd::F32x4 nb = simd::F32x4::set(b, a, b * 2.0f, 1.0f);
      const simd::F32x4Emul ea = simd::F32x4Emul::set(a, b, a + b, a - b);
      const simd::F32x4Emul eb = simd::F32x4Emul::set(b, a, b * 2.0f, 1.0f);
      float n[4];
      float e[4];
      const auto check = [&](simd::F32x4 nv, simd::F32x4Emul ev) {
        nv.store(n);
        ev.store(e);
        expect_bits_eq<float>(n, e);
      };
      check(na + nb, ea + eb);
      check(na - nb, ea - eb);
      check(na * nb, ea * eb);
      check(na / nb, ea / eb);
      check(simd::F32x4::min(na, nb), simd::F32x4Emul::min(ea, eb));
      check(simd::F32x4::max(na, nb), simd::F32x4Emul::max(ea, eb));
      check(simd::F32x4::floor(na), simd::F32x4Emul::floor(ea));
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(simd::F32x4::gt(na, nb).extract(j), simd::F32x4Emul::gt(ea, eb).extract(j));
      }
    }
  }
}

TEST(SimdPacks, F32SqrtIsCorrectlyRounded) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float a = static_cast<float>(rng.uniform() * 1e6);
    const float b = static_cast<float>(rng.uniform());
    const simd::F32x4 s = simd::F32x4::sqrt(simd::F32x4::set(a, b, a * b, a + b));
    EXPECT_EQ(s.extract(0), std::sqrt(a));
    EXPECT_EQ(s.extract(1), std::sqrt(b));
    EXPECT_EQ(s.extract(2), std::sqrt(a * b));
    EXPECT_EQ(s.extract(3), std::sqrt(a + b));
  }
}

TEST(SimdPacks, F32FloorMatchesStdFloorIncludingNegatives) {
  for (float v : {-2.5f, -2.0f, -1.0000001f, -0.5f, -0.0f, 0.0f, 0.5f, 2.0f, 2.5f, 1e7f, -1e7f}) {
    const simd::F32x4 f = simd::F32x4::floor(simd::F32x4::broadcast(v));
    for (int j = 0; j < 4; ++j) EXPECT_EQ(f.extract(j), std::floor(v)) << "v=" << v;
  }
}

TEST(SimdPacks, Transpose4MatchesEmulation) {
  float rows[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) rows[r][c] = static_cast<float>(r * 10 + c);
  }
  simd::F32x4 na = simd::F32x4::load(rows[0]);
  simd::F32x4 nb = simd::F32x4::load(rows[1]);
  simd::F32x4 nc = simd::F32x4::load(rows[2]);
  simd::F32x4 nd = simd::F32x4::load(rows[3]);
  transpose4(na, nb, nc, nd);
  const simd::F32x4* cols[4] = {&na, &nb, &nc, &nd};
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) EXPECT_EQ(cols[c]->extract(r), rows[r][c]);
  }
}

TEST(SimdPacks, F64ArithmeticAndGatherMatchEmulation) {
  const float strided[8] = {0.25f, 1.5f, -3.0f, 7.125f, 0.1f, -0.1f, 42.0f, 1e-8f};
  for (std::size_t stride : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    const simd::F64x2 ng = simd::F64x2::gather2f(strided, stride);
    const simd::F64x2Emul eg = simd::F64x2Emul::gather2f(strided, stride);
    EXPECT_EQ(ng.extract(0), eg.extract(0));
    EXPECT_EQ(ng.extract(1), eg.extract(1));
  }
  const double vals[] = {0.0, -0.0, 0.1, -0.1, 1e300, -1e-300, 3.5, -2.25};
  for (double a : vals) {
    for (double b : vals) {
      const simd::F64x2 na = simd::F64x2::set(a, b);
      const simd::F64x2 nb = simd::F64x2::set(b, a);
      const simd::F64x2Emul ea = simd::F64x2Emul::set(a, b);
      const simd::F64x2Emul eb = simd::F64x2Emul::set(b, a);
      double n[2];
      double e[2];
      const auto check = [&](simd::F64x2 nv, simd::F64x2Emul ev) {
        nv.store(n);
        ev.store(e);
        expect_bits_eq<double>(n, e);
      };
      check(na + nb, ea + eb);
      check(na - nb, ea - eb);
      check(na * nb, ea * eb);
    }
  }
}

TEST(SimdPacks, U32MaskOps) {
  const simd::U32x4 a = simd::U32x4::broadcast(0xF0F0F0F0u);
  const simd::U32x4 b = simd::U32x4::broadcast(0x0FF000FFu);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ((a & b).extract(j), 0xF0F0F0F0u & 0x0FF000FFu);
    EXPECT_EQ((a | b).extract(j), 0xF0F0F0F0u | 0x0FF000FFu);
  }
}

// ---------------------------------------------------------------------------
// Runtime switch semantics.
// ---------------------------------------------------------------------------

TEST(SimdSwitch, ScopedOverrideRestoresPreviousState) {
  const bool before = simd::enabled();
  {
    const simd::ScopedSimd off(0);
    EXPECT_FALSE(simd::enabled());
    EXPECT_STREQ(simd::dispatch_name(), "scalar");
    {
      const simd::ScopedSimd on(1);
      EXPECT_TRUE(simd::enabled());
      if (simd::kNativeBackend) {
        EXPECT_STREQ(simd::dispatch_name(), simd::isa_name());
      }
    }
    EXPECT_FALSE(simd::enabled());
  }
  EXPECT_EQ(simd::enabled(), before);
}

TEST(SimdSwitch, NegativeModeLeavesSwitchUntouched) {
  const simd::ScopedSimd off(0);
  const simd::ScopedSimd noop(-1);
  EXPECT_FALSE(simd::enabled());
}

// ---------------------------------------------------------------------------
// Kernel A/B: every ported kernel must produce bit-identical output with
// native packs and scalar emulation, across geometries that exercise the
// vector body, the scalar tails, and degenerate 1-pixel shapes.
// ---------------------------------------------------------------------------

const int kWidths[] = {1, 2, 3, 5, 7, 8, 9, 13, 16, 17};
const int kHeights[] = {1, 3, 8, 17};

TEST(SimdKernels, ResizeBitIdenticalAcrossOddGeometries) {
  Rng rng(11);
  for (int w : kWidths) {
    for (int h : kHeights) {
      const imaging::Image src = random_image(w, h, 3, rng);
      for (auto [nw, nh] : {std::pair{1, 1}, {w, h}, {2 * w + 1, h + 2}, {5, 9}}) {
        const auto on = with_simd(1, [&] { return imaging::resize(src, nw, nh); });
        const auto off = with_simd(0, [&] { return imaging::resize(src, nw, nh); });
        expect_bits_eq<float>(on.data(), off.data());
      }
    }
  }
}

TEST(SimdKernels, BlurAndGradientsBitIdenticalAcrossOddGeometries) {
  Rng rng(13);
  for (int w : kWidths) {
    for (int h : kHeights) {
      const imaging::Image src = random_image(w, h, 1, rng);
      const auto blur_on = with_simd(1, [&] { return imaging::gaussian_blur(src, 1.3f); });
      const auto blur_off = with_simd(0, [&] { return imaging::gaussian_blur(src, 1.3f); });
      expect_bits_eq<float>(blur_on.data(), blur_off.data());

      const auto grads_on = with_simd(1, [&] { return imaging::compute_gradients(src); });
      const auto grads_off = with_simd(0, [&] { return imaging::compute_gradients(src); });
      expect_bits_eq<float>(grads_on.magnitude.data(), grads_off.magnitude.data());
      expect_bits_eq<float>(grads_on.orientation.data(), grads_off.orientation.data());
    }
  }
}

TEST(SimdKernels, IntegralImageBitIdenticalAcrossOddGeometries) {
  Rng rng(17);
  for (int w : kWidths) {
    for (int h : kHeights) {
      const imaging::Image src = random_image(w, h, 1, rng);
      const imaging::IntegralImage on =
          with_simd(1, [&] { return imaging::IntegralImage(src); });
      const imaging::IntegralImage off =
          with_simd(0, [&] { return imaging::IntegralImage(src); });
      for (int y1 = 0; y1 <= h; ++y1) {
        for (int x1 = 0; x1 <= w; ++x1) {
          const double a = on.rect_sum(0, 0, x1, y1);
          const double b = off.rect_sum(0, 0, x1, y1);
          ASSERT_EQ(a, b) << "rect (0,0)-(" << x1 << "," << y1 << ")";
        }
      }
    }
  }
}

TEST(SimdKernels, CensusTransformBitIdenticalAcrossOddGeometries) {
  Rng rng(19);
  for (int w : kWidths) {
    for (int h : kHeights) {
      const imaging::Image src = random_image(w, h, 1, rng);
      const auto on = with_simd(1, [&] { return features::census_transform(src); });
      const auto off = with_simd(0, [&] { return features::census_transform(src); });
      expect_bits_eq<std::uint8_t>(on, off);
    }
  }
}

TEST(SimdKernels, HogGridBitIdenticalIncludingOddCellSizes) {
  Rng rng(23);
  // cell_size 5 leaves a 1-pixel lane tail per cell row; 8 divides evenly.
  for (int cell : {5, 8}) {
    features::HogParams params;
    params.cell_size = cell;
    const imaging::Image src = random_image(4 * cell + 3, 3 * cell + 1, 1, rng);
    const auto on = with_simd(1, [&] { return features::compute_hog_grid(src, params); });
    const auto off = with_simd(0, [&] { return features::compute_hog_grid(src, params); });
    ASSERT_EQ(on.cells_x(), off.cells_x());
    ASSERT_EQ(on.cells_y(), off.cells_y());
    for (int cy = 0; cy < on.cells_y(); ++cy) {
      for (int cx = 0; cx < on.cells_x(); ++cx) {
        expect_bits_eq<float>(on.cell(cx, cy), off.cell(cx, cy));
      }
    }
  }
}

TEST(SimdKernels, AcfChannelsBitIdenticalAcrossOddGeometries) {
  Rng rng(29);
  // Widths straddling multiples of 4 aggregated cells (aw = w/4): tails of
  // 0..3 output blocks plus sub-block leftover source columns.
  for (int w : {4, 7, 16, 17, 23, 36}) {
    for (int h : {4, 9, 24}) {
      const imaging::Image src = random_image(w, h, 3, rng);
      const auto on = with_simd(1, [&] { return detect::compute_acf_channels(src); });
      const auto off = with_simd(0, [&] { return detect::compute_acf_channels(src); });
      ASSERT_EQ(on.width, off.width);
      ASSERT_EQ(on.height, off.height);
      expect_bits_eq<float>(on.data, off.data);
    }
  }
}

TEST(SimdKernels, BlockGridScoreMapBitIdenticalAndMatchesWindowScore) {
  Rng rng(31);
  const imaging::Image src = random_image(96, 80, 1, rng);
  const features::HogParams params;
  const int wcx = 6;
  const int wcy = 6;
  detect::LinearModel model;
  const int wbx = wcx - params.block_size + 1;
  const int wby = wcy - params.block_size + 1;
  model.weights.resize(static_cast<std::size_t>(wbx * wby * params.block_size *
                                                params.block_size * params.bins));
  for (float& w : model.weights) w = static_cast<float>(rng.uniform(-1.0, 1.0));
  model.bias = 0.125f;

  const detect::BlockGrid grid = with_simd(1, [&] { return detect::BlockGrid(src, params); });
  const detect::ScoreMap on = with_simd(1, [&] { return grid.score_map(model, wcx, wcy); });
  const detect::ScoreMap off = with_simd(0, [&] { return grid.score_map(model, wcx, wcy); });
  ASSERT_EQ(on.width, off.width);
  ASSERT_EQ(on.height, off.height);
  ASSERT_GT(on.width % 4, 0) << "geometry must exercise the anchor tail";
  expect_bits_eq<float>(on.scores, off.scores);
  for (int ay = 0; ay < on.height; ++ay) {
    for (int ax = 0; ax < on.width; ++ax) {
      ASSERT_EQ(on.at(ax, ay), grid.window_score(model, ax, ay, wcx, wcy)) << ax << "," << ay;
    }
  }
}

TEST(SimdKernels, CensusWindowScoresRowBitIdenticalAndMatchesWindowScore) {
  Rng rng(37);
  // 12x13 cells -> a 7-window row: one 4-wide vector group plus a 3-tail.
  const imaging::Image src = random_image(12 * detect::kCensusCell, 13 * detect::kCensusCell, 1, rng);
  detect::LinearModel model;
  model.weights.resize(static_cast<std::size_t>(detect::kCensusCellsX * detect::kCensusCellsY *
                                                detect::kCensusBins));
  for (float& w : model.weights) w = static_cast<float>(rng.uniform(-1.0, 1.0));
  model.bias = -0.25f;

  const detect::CensusCellGrid grid =
      with_simd(1, [&] { return detect::CensusCellGrid(src); });
  const int count = grid.cells_x() - detect::kCensusCellsX + 1;
  ASSERT_EQ(count, 7);
  std::vector<float> on(static_cast<std::size_t>(count));
  std::vector<float> off(static_cast<std::size_t>(count));
  with_simd(1, [&] {
    grid.window_scores_row(model, 0, 0, count, on.data(), nullptr);
    return 0;
  });
  with_simd(0, [&] {
    grid.window_scores_row(model, 0, 0, count, off.data(), nullptr);
    return 0;
  });
  expect_bits_eq<float>(on, off);
  for (int j = 0; j < count; ++j) {
    ASSERT_EQ(on[static_cast<std::size_t>(j)], grid.window_score(model, j, 0, nullptr)) << j;
  }
}

TEST(SimdKernels, MatrixProductsBitIdenticalAcrossOddDims) {
  Rng rng(41);
  for (auto [m, k, n] : {std::tuple{1, 1, 1}, {3, 5, 7}, {7, 13, 5}, {16, 17, 9}}) {
    linalg::Matrix a(m, k);
    linalg::Matrix b(k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < k; ++j) a(i, j) = rng.uniform() < 0.3 ? 0.0 : rng.uniform(-2.0, 2.0);
    }
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < n; ++j) b(i, j) = rng.uniform(-2.0, 2.0);
    }
    const linalg::Matrix on = with_simd(1, [&] { return a * b; });
    const linalg::Matrix off = with_simd(0, [&] { return a * b; });
    for (int i = 0; i < m; ++i) expect_bits_eq<double>(on.row(i), off.row(i));

    linalg::Matrix at(k, m);
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < m; ++j) at(i, j) = a(j, i);
    }
    const linalg::Matrix ton = with_simd(1, [&] { return linalg::transpose_times(at, b); });
    const linalg::Matrix toff = with_simd(0, [&] { return linalg::transpose_times(at, b); });
    for (int i = 0; i < m; ++i) {
      expect_bits_eq<double>(ton.row(i), toff.row(i));
      // transpose_times(at, b) == a * b entry-wise by construction.
      expect_bits_eq<double>(ton.row(i), on.row(i));
    }
  }
}

TEST(SimdKernels, LinearSvmTrainingBitIdentical) {
  Rng data_rng(43);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 24; ++i) {
    std::vector<float> f(11);  // Odd dim: 2 vector groups + 3-lane tail.
    const int label = i % 2 == 0 ? 1 : -1;
    for (float& v : f) {
      v = static_cast<float>(data_rng.uniform() + (label == 1 ? 0.5 : -0.5));
    }
    x.push_back(std::move(f));
    y.push_back(label);
  }
  const auto train = [&] {
    Rng rng(4242);
    return detect::train_linear_svm(x, y, rng);
  };
  const detect::LinearModel on = with_simd(1, train);
  const detect::LinearModel off = with_simd(0, train);
  EXPECT_EQ(on.bias, off.bias);
  expect_bits_eq<float>(on.weights, off.weights);
}

// Operand bit patterns that exercise every atan2f path: signed zeros,
// denormals, infinities, quiet/signalling NaNs, each atanf reduction
// boundary with its neighbors, and the exponent-gap guard thresholds.
constexpr std::uint32_t kAtanSpecialBits[] = {
    0x00000000u, 0x80000000u, 0x00000001u, 0x80000001u, 0x007FFFFFu, 0x807FFFFFu,
    0x00800000u, 0x3F800000u, 0xBF800000u, 0x7F7FFFFFu, 0xFF7FFFFFu, 0x7F800000u,
    0xFF800000u, 0x7FC00000u, 0xFFC00001u, 0x7F800001u, 0x7FFFFFFFu, 0x30FFFFFFu,
    0x31000000u, 0x3EDFFFFFu, 0x3EE00000u, 0x3F300000u, 0x3F980000u, 0x401C0000u,
    0x4BFFFFFFu, 0x4C000000u, 0x4C800000u, 0x5DFFFFFFu, 0x5E000000u, 0x0DA24260u,
    0x40490FDBu, 0xC0490FDBu, 0x3FC90FDBu, 0x61800000u, 0xE1800000u,
};

// Anchor values computed by glibc 2.36's fdlibm atan2f (the libm the
// committed goldens were recorded against). These hold on EVERY host — they
// pin the vendored replica itself, independent of the host libm.
TEST(Atan2Portable, MatchesRecordedFdlibmAnchors) {
  const struct {
    std::uint32_t y, x, want;
  } kAnchors[] = {
      {0x3F800000u, 0x3F800000u, 0x3F490FDBu},  // atan2(1, 1) = pi/4
      {0xBF800000u, 0x3F800000u, 0xBF490FDBu},  // atan2(-1, 1) = -pi/4
      {0x3F800000u, 0xBF800000u, 0x4016CBE4u},  // atan2(1, -1) = 3pi/4
      {0xBF800000u, 0xBF800000u, 0xC016CBE4u},  // atan2(-1, -1) = -3pi/4
      {0x3F800000u, 0x40000000u, 0x3EED6338u},  // atan2(1, 2)
      {0x40490FDBu, 0x402DF854u, 0x3F5B85E5u},  // atan2(pi, e)
      {0x3DCCCCCDu, 0x3F800000u, 0x3DCC1F14u},  // atan2(0.1, 1)
      {0x42C80000u, 0x3F800000u, 0x3FC7C82Fu},  // atan2(100, 1)
      {0x7F800000u, 0x7F800000u, 0x3F490FDBu},  // atan2(inf, inf) = pi/4
      {0x00000000u, 0xBF800000u, 0x40490FDBu},  // atan2(+0, -1) = pi
      {0x80000001u, 0x7F7FFFFFu, 0x80000000u},  // quotient underflows to -0
  };
  for (const auto& a : kAnchors) {
    const float got = simd::atan2f_portable(std::bit_cast<float>(a.y), std::bit_cast<float>(a.x));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got), a.want)
        << "y=" << std::hex << a.y << " x=" << a.x;
  }
}

// On hosts whose libm IS classic fdlibm, the replica must agree bit-for-bit
// on a broad sample. Skipped elsewhere (glibc >= 2.39 rounds correctly,
// which fdlibm does not) — there the anchors above carry the contract;
// tools/atan2_exhaustive has the full 2^32 sweep.
TEST(Atan2Portable, MatchesHostLibmWhenHostIsFdlibm) {
  for (std::uint32_t by : kAtanSpecialBits) {
    for (std::uint32_t bx : kAtanSpecialBits) {
      const float y = std::bit_cast<float>(by);
      const float x = std::bit_cast<float>(bx);
      if (std::bit_cast<std::uint32_t>(simd::atan2f_portable(y, x)) !=
          std::bit_cast<std::uint32_t>(std::atan2(y, x))) {
        GTEST_SKIP() << "host libm is not fdlibm; vendored values pinned by anchors instead";
      }
    }
  }
  Rng rng(77);
  for (int i = 0; i < 200000; ++i) {
    const auto y = std::bit_cast<float>(static_cast<std::uint32_t>(rng.next_u64() >> 32));
    const auto x = std::bit_cast<float>(static_cast<std::uint32_t>(rng.next_u64() >> 32));
    ASSERT_EQ(std::bit_cast<std::uint32_t>(simd::atan2f_portable(y, x)),
              std::bit_cast<std::uint32_t>(std::atan2(y, x)))
        << "y=" << std::hexfloat << y << " x=" << x;
  }
}

// The pack kernel must reproduce the scalar replica in every lane, in both
// the native and emulated backends, including the special-operand fallback.
template <class F4>
void expect_pack_matches_scalar(int random_iters = 100000) {
  constexpr int W = F4::kLanes;
  const auto check = [](const float* ys, const float* xs) {
    float out[W];
    simd::atan2f_pack<F4>(F4::load(ys), F4::load(xs)).store(out);
    for (int i = 0; i < W; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                std::bit_cast<std::uint32_t>(simd::atan2f_portable(ys[i], xs[i])))
          << "lane " << i << " y=" << std::hexfloat << ys[i] << " x=" << xs[i];
    }
  };
  Rng rng(78);
  const auto rand_bits = [&] {
    return std::bit_cast<float>(static_cast<std::uint32_t>(rng.next_u64() >> 32));
  };
  for (std::uint32_t by : kAtanSpecialBits) {
    for (std::uint32_t bx : kAtanSpecialBits) {
      // Specials mixed with random lanes: the fallback must patch exactly
      // the special lanes and leave the vector lanes untouched.
      float ys[W];
      float xs[W];
      for (int j = 0; j < W; ++j) {
        const bool special = j == 0 || j == W - 1;
        ys[j] = special ? std::bit_cast<float>(by) : rand_bits();
        xs[j] = special ? std::bit_cast<float>(bx) : rand_bits();
      }
      check(ys, xs);
    }
  }
  for (int i = 0; i < random_iters; ++i) {
    float ys[W];
    float xs[W];
    for (int j = 0; j < W; ++j) {
      ys[j] = rand_bits();
      xs[j] = rand_bits();
    }
    check(ys, xs);
  }
  // Gradient-realistic small magnitudes (the hot kernel's actual operands).
  for (int i = 0; i < random_iters; ++i) {
    float ys[W];
    float xs[W];
    for (int j = 0; j < W; ++j) {
      ys[j] = static_cast<float>(rng.uniform() * 4.0 - 2.0);
      xs[j] = static_cast<float>(rng.uniform() * 4.0 - 2.0);
    }
    check(ys, xs);
  }
}

TEST(Atan2Pack, NativeMatchesScalarReplica) { expect_pack_matches_scalar<simd::F32x4>(); }

TEST(Atan2Pack, EmulationMatchesScalarReplica) { expect_pack_matches_scalar<simd::F32x4Emul>(); }

// Every wider backend (native when compiled in + CPU-supported, and the
// always-present emulation twins) must agree with the scalar replica on
// every lane; the 128-bit pair is pinned by the two tests above.
TEST(Atan2Pack, WidePacksMatchScalarReplica) {
  simd::for_each_isa([](auto isa) {
    using F = typename decltype(isa)::F32;
    if constexpr (F::kLanes > 4) {
      SCOPED_TRACE(testing::Message() << "lanes=" << F::kLanes
                                      << " native=" << decltype(isa)::kIsNative);
      expect_pack_matches_scalar<F>(25000);
    }
  });
}


// ---------------------------------------------------------------------------
// Virtual-width sweep: every mode the EECS_SIMD knob accepts must reproduce
// the scalar baseline bit for bit — native tiers and their forced-emulation
// twins alike — on geometries whose tails are odd for 4, 8, AND 16 lanes.
// ---------------------------------------------------------------------------

TEST(SimdWidths, ModesResolveToDocumentedDispatch) {
  {
    const simd::ScopedSimd m(0);
    EXPECT_STREQ(simd::dispatch_name(), "scalar");
    EXPECT_EQ(simd::dispatch_width(), 128);
    EXPECT_FALSE(simd::enabled());
  }
  {
    const simd::ScopedSimd m(-256);
    EXPECT_STREQ(simd::dispatch_name(), "emul256");
    EXPECT_EQ(simd::dispatch_width(), 256);
    EXPECT_FALSE(simd::enabled());
  }
  {
    const simd::ScopedSimd m(-512);
    EXPECT_STREQ(simd::dispatch_name(), "emul512");
    EXPECT_EQ(simd::dispatch_width(), 512);
    EXPECT_FALSE(simd::enabled());
  }
  {
    // Width requests always honour the width; whether the backend is native
    // depends on what this build + CPU offer.
    const simd::ScopedSimd m(256);
    EXPECT_EQ(simd::dispatch_width(), 256);
  }
  {
    const simd::ScopedSimd m(512);
    EXPECT_EQ(simd::dispatch_width(), 512);
  }
}

/// One pass of every lane-blocked kernel on fixed inputs; byte streams are
/// concatenated so a single bitwise compare covers the whole battery. The
/// geometries leave non-multiple-of-lane tails at every width (69 = 16*4+5
/// source columns, aw = 17 aggregated blocks, 7-window census rows).
struct KernelBattery {
  std::vector<float> f32;
  std::vector<double> f64;
  std::vector<std::uint8_t> u8;
};

KernelBattery run_kernel_battery() {
  KernelBattery out;
  Rng rng(97);
  const imaging::Image rgb = random_image(69, 43, 3, rng);
  const imaging::Image gray = random_image(69, 43, 1, rng);
  const auto take_f32 = [&](std::span<const float> v) {
    out.f32.insert(out.f32.end(), v.begin(), v.end());
  };

  const imaging::Image resized = imaging::resize(rgb, 37, 21);
  take_f32(resized.data());
  take_f32(imaging::gaussian_blur(gray, 1.3f).data());
  const imaging::Gradients grads = imaging::compute_gradients(gray);
  take_f32(grads.magnitude.data());
  take_f32(grads.orientation.data());

  const std::vector<std::uint8_t> codes = features::census_transform(gray);
  out.u8.insert(out.u8.end(), codes.begin(), codes.end());

  const detect::ChannelMap acf = detect::compute_acf_channels(rgb);
  take_f32(acf.data);

  features::HogParams hog_params;
  hog_params.cell_size = 5;  // 1-pixel lane tail per cell row.
  const features::HogGrid hog = features::compute_hog_grid(gray, hog_params);
  for (int cy = 0; cy < hog.cells_y(); ++cy) {
    for (int cx = 0; cx < hog.cells_x(); ++cx) take_f32(hog.cell(cx, cy));
  }

  {
    const features::HogParams params;
    detect::LinearModel model;
    const int wbx = 6 - params.block_size + 1;
    model.weights.resize(static_cast<std::size_t>(wbx * wbx * params.block_size *
                                                  params.block_size * params.bins));
    for (float& w : model.weights) w = static_cast<float>(rng.uniform(-1.0, 1.0));
    model.bias = 0.125f;
    const detect::BlockGrid grid(gray, params);
    const detect::ScoreMap map = grid.score_map(model, 6, 6);
    take_f32(map.scores);
  }
  {
    detect::LinearModel model;
    model.weights.resize(static_cast<std::size_t>(detect::kCensusCellsX *
                                                  detect::kCensusCellsY * detect::kCensusBins));
    for (float& w : model.weights) w = static_cast<float>(rng.uniform(-1.0, 1.0));
    model.bias = -0.25f;
    // 30x13 cells: a 25-window row — full blocks plus a tail at every width.
    const detect::CensusCellGrid grid(random_image(245, 107, 1, rng));
    const int count = grid.cells_x() - detect::kCensusCellsX + 1;
    std::vector<float> row(static_cast<std::size_t>(count));
    grid.window_scores_row(model, 0, 0, count, row.data(), nullptr);
    take_f32(row);
  }

  const imaging::IntegralImage integral(gray);
  for (int x1 : {1, 17, 43, 69}) out.f64.push_back(integral.rect_sum(0, 0, x1, 43));

  linalg::Matrix a(7, 13);
  linalg::Matrix b(13, 5);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 13; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
  }
  for (int i = 0; i < 13; ++i) {
    for (int j = 0; j < 5; ++j) b(i, j) = rng.uniform(-2.0, 2.0);
  }
  const linalg::Matrix prod = a * b;
  for (int i = 0; i < 7; ++i) {
    out.f64.insert(out.f64.end(), prod.row(i).begin(), prod.row(i).end());
  }
  return out;
}

TEST(SimdWidths, KernelBatteryBitIdenticalAcrossAllModes) {
  const KernelBattery ref = with_simd(0, run_kernel_battery);
  ASSERT_FALSE(ref.f32.empty());
  for (int mode : {1, 128, 256, 512, -128, -256, -512}) {
    SCOPED_TRACE(testing::Message() << "mode=" << mode);
    const KernelBattery got = with_simd(mode, run_kernel_battery);
    expect_bits_eq<float>(ref.f32, got.f32);
    expect_bits_eq<double>(ref.f64, got.f64);
    expect_bits_eq<std::uint8_t>(ref.u8, got.u8);
  }
}

TEST(SimdWidths, ResizeBatchBitIdenticalToPerImageResize) {
  Rng rng(101);
  const imaging::Image a = random_image(69, 43, 3, rng);
  const imaging::Image b = random_image(69, 43, 3, rng);
  const imaging::Image c = random_image(69, 43, 3, rng);
  for (int mode : {0, 1, -256, -512}) {
    SCOPED_TRACE(testing::Message() << "mode=" << mode);
    const simd::ScopedSimd scoped(mode);
    const imaging::Image* frames[] = {&a, &b, &c};
    const std::vector<imaging::Image> batch = imaging::resize_batch(frames, 37, 21);
    ASSERT_EQ(batch.size(), 3u);
    expect_bits_eq<float>(batch[0].data(), imaging::resize(a, 37, 21).data());
    expect_bits_eq<float>(batch[1].data(), imaging::resize(b, 37, 21).data());
    expect_bits_eq<float>(batch[2].data(), imaging::resize(c, 37, 21).data());
  }
}

// Pack-level A/B at every width: each available native backend against its
// same-width emulation twin, on the rounding-edge value grid.
TEST(SimdPacks, AllIsaF32OpsMatchSameWidthEmulation) {
  simd::for_each_isa([](auto isa) {
    using F = typename decltype(isa)::F32;
    using E = simd::F32xEmul<F::kLanes>;
    constexpr int W = F::kLanes;
    SCOPED_TRACE(testing::Message() << "lanes=" << W << " native=" << decltype(isa)::kIsNative);
    constexpr int N = static_cast<int>(std::size(kTrickyF));
    for (int base = 0; base < N; ++base) {
      float va[W];
      float vb[W];
      for (int j = 0; j < W; ++j) {
        va[j] = kTrickyF[(base + j) % N];
        vb[j] = kTrickyF[(base + 2 * j + 1) % N];
      }
      const F na = F::load(va);
      const F nb = F::load(vb);
      const E ea = E::load(va);
      const E eb = E::load(vb);
      float n[W];
      float e[W];
      const auto check = [&](F nv, E ev) {
        nv.store(n);
        ev.store(e);
        expect_bits_eq<float>(n, e);
      };
      check(na + nb, ea + eb);
      check(na - nb, ea - eb);
      check(na * nb, ea * eb);
      check(na / nb, ea / eb);
      check(F::min(na, nb), E::min(ea, eb));
      check(F::max(na, nb), E::max(ea, eb));
      check(F::floor(na), E::floor(ea));
      check(F::abs(na), E::abs(ea));
      check(F::select(F::gt(na, nb), na, nb), E::select(E::gt(ea, eb), ea, eb));
      for (int j = 0; j < W; ++j) {
        EXPECT_EQ(F::gt(na, nb).extract(j), E::gt(ea, eb).extract(j));
        EXPECT_EQ(F::lt(na, nb).extract(j), E::lt(ea, eb).extract(j));
        EXPECT_EQ(F::ge(na, nb).extract(j), E::ge(ea, eb).extract(j));
      }
    }
    // Gathers: indexed, strided, and the float->double strided form.
    float src[4 * W + 3];
    for (int i = 0; i < 4 * W + 3; ++i) src[i] = kTrickyF[i % N];
    int idx[W];
    for (int j = 0; j < W; ++j) idx[j] = (j * 3 + 1) % (4 * W);
    float n[W];
    float e[W];
    F::gather(src, idx).store(n);
    E::gather(src, idx).store(e);
    expect_bits_eq<float>(n, e);
    F::gather_stride(src, 3).store(n);
    E::gather_stride(src, 3).store(e);
    expect_bits_eq<float>(n, e);
    using D = typename decltype(isa)::F64;
    using ED = simd::F64xEmul<D::kLanes>;
    double dn[D::kLanes];
    double de[D::kLanes];
    D::gather2f(src, 3).store(dn);
    ED::gather2f(src, 3).store(de);
    expect_bits_eq<double>(dn, de);
  });
}

}  // namespace
}  // namespace eecs
