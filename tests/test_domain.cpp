#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "domain/comparator.hpp"
#include "domain/gfk.hpp"
#include "linalg/decomp.hpp"

namespace eecs::domain {
namespace {

using linalg::Matrix;

/// Feature matrix of k samples drawn from a Gaussian around `center`.
Matrix gaussian_features(int k, int dim, std::span<const double> center, double spread, Rng& rng) {
  Matrix m(k, dim);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < dim; ++c) {
      m(r, c) = center[static_cast<std::size_t>(c)] + spread * rng.normal();
    }
  }
  return m;
}

std::vector<double> unit_center(int dim, int axis, double scale = 1.0) {
  std::vector<double> c(static_cast<std::size_t>(dim), 0.0);
  c[static_cast<std::size_t>(axis)] = scale;
  return c;
}

TEST(BuildSubspace, BasisIsOrthonormal) {
  Rng rng(1);
  const auto c = unit_center(20, 0);
  const VideoSubspace s = build_subspace(gaussian_features(15, 20, c, 0.2, rng), 5);
  const Matrix gram = linalg::transpose_times(s.basis, s.basis);
  EXPECT_LT(linalg::max_abs_diff(gram, Matrix::identity(5)), 1e-8);
  // Complement orthogonal to the basis.
  EXPECT_LT(linalg::transpose_times(s.basis, s.complement).frobenius_norm(), 1e-8);
}

TEST(BuildSubspace, ContractsOnDimensions) {
  Rng rng(1);
  const auto c = unit_center(10, 0);
  const Matrix feats = gaussian_features(6, 10, c, 0.1, rng);
  EXPECT_THROW((void)build_subspace(feats, 0), ContractViolation);
  EXPECT_THROW((void)build_subspace(feats, 10), ContractViolation);
  EXPECT_THROW((void)build_subspace(feats, 7), ContractViolation);  // > rows.
}

TEST(Gfk, IdenticalSubspacesGiveDoubledProjector) {
  // For theta = 0 everywhere, W = 2 * B B^T on the subspace (lambda1 = 2).
  Rng rng(2);
  const auto c = unit_center(16, 2, 2.0);
  const VideoSubspace s = build_subspace(gaussian_features(12, 16, c, 0.3, rng), 4);
  const Matrix w = geodesic_flow_kernel(s.basis, s.complement, s.basis);
  const Matrix proj2 = 2.0 * (s.basis * s.basis.transposed());
  EXPECT_LT(linalg::max_abs_diff(w, proj2), 1e-6);
}

TEST(Gfk, KernelIsSymmetric) {
  Rng rng(3);
  const auto c1 = unit_center(16, 0);
  const auto c2 = unit_center(16, 5);
  const VideoSubspace a = build_subspace(gaussian_features(12, 16, c1, 0.4, rng), 4);
  const VideoSubspace b = build_subspace(gaussian_features(12, 16, c2, 0.4, rng), 4);
  const Matrix w = geodesic_flow_kernel(a.basis, a.complement, b.basis);
  EXPECT_LT(linalg::max_abs_diff(w, w.transposed()), 1e-8);
}

TEST(Gfk, KernelIsPositiveSemidefinite) {
  Rng rng(4);
  const auto c1 = unit_center(12, 0);
  const auto c2 = unit_center(12, 3);
  const VideoSubspace a = build_subspace(gaussian_features(10, 12, c1, 0.5, rng), 3);
  const VideoSubspace b = build_subspace(gaussian_features(10, 12, c2, 0.5, rng), 3);
  const Matrix w = geodesic_flow_kernel(a.basis, a.complement, b.basis);
  const auto eig = linalg::eig_symmetric(w);
  for (double lambda : eig.eigenvalues) EXPECT_GT(lambda, -1e-8);
}

TEST(Gfk, PrincipalAnglesIdenticalAndOrthogonal) {
  const Matrix eye = Matrix::identity(6);
  const Matrix a = eye.slice_cols(0, 2);
  const Matrix b = eye.slice_cols(2, 4);
  for (double theta : principal_angles(a, a)) EXPECT_NEAR(theta, 0.0, 1e-9);
  for (double theta : principal_angles(a, b)) EXPECT_NEAR(theta, 1.5707963, 1e-6);
}

TEST(Gfk, KernelDistanceOfIdenticalFramesIsZero) {
  Rng rng(5);
  const auto c = unit_center(12, 1);
  const VideoSubspace s = build_subspace(gaussian_features(8, 12, c, 0.3, rng), 3);
  const Matrix w = geodesic_flow_kernel(s.basis, s.complement, s.basis);
  const Matrix k = kernel_distance_matrix(s.features, s.features, w);
  for (int i = 0; i < k.rows(); ++i) EXPECT_NEAR(k(i, i), 0.0, 1e-8);
}

TEST(Gfk, SimilarityRangeAndMonotonicity) {
  EXPECT_NEAR(similarity_from_distance(0.0), 1.0, 1e-12);
  EXPECT_GT(similarity_from_distance(0.5), similarity_from_distance(1.0));
  EXPECT_LT(similarity_from_distance(4.0), 0.02);
  // Negative distances clamp to similarity 1.
  EXPECT_NEAR(similarity_from_distance(-1.0), 1.0, 1e-12);
}

TEST(Gfk, SelfSimilarityExceedsCrossSimilarity) {
  Rng rng(6);
  const int dim = 24;
  const auto center_a = unit_center(dim, 0, 2.0);
  const auto center_b = unit_center(dim, 10, 2.0);
  const VideoSubspace train_a = build_subspace(gaussian_features(14, dim, center_a, 0.3, rng), 6);
  const VideoSubspace train_b = build_subspace(gaussian_features(14, dim, center_b, 0.3, rng), 6);
  const VideoSubspace test_a = build_subspace(gaussian_features(14, dim, center_a, 0.3, rng), 6);

  const double self_sim = video_similarity(train_a, test_a);
  const double cross_sim = video_similarity(train_b, test_a);
  EXPECT_GT(self_sim, cross_sim);
}

TEST(Comparator, BestMatchPicksClosestDistribution) {
  Rng rng(7);
  const int dim = 24;
  ComparatorParams params;
  params.subspace_dim = 5;
  VideoComparator comparator(params);
  for (int axis : {0, 6, 12, 18}) {
    const auto center = unit_center(dim, axis, 2.0);
    comparator.add_training_item(gaussian_features(12, dim, center, 0.3, rng),
                                 "axis" + std::to_string(axis));
  }
  const auto incoming_center = unit_center(dim, 12, 2.0);
  const auto match = comparator.best_match(gaussian_features(12, dim, incoming_center, 0.3, rng));
  EXPECT_EQ(match.best_index, 2);
  EXPECT_EQ(comparator.label(match.best_index), "axis12");
  EXPECT_EQ(match.similarities.size(), 4u);
}

TEST(Comparator, SimilaritiesAreInUnitInterval) {
  Rng rng(8);
  const int dim = 16;
  ComparatorParams params;
  params.subspace_dim = 4;
  VideoComparator comparator(params);
  comparator.add_training_item(gaussian_features(10, dim, unit_center(dim, 0), 0.5, rng));
  const auto match = comparator.best_match(gaussian_features(10, dim, unit_center(dim, 3), 0.5, rng));
  for (double s : match.similarities) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Comparator, EmptyComparatorViolatesContract) {
  Rng rng(9);
  VideoComparator comparator({4, 1.0});
  EXPECT_THROW((void)comparator.best_match(gaussian_features(10, 16, unit_center(16, 0), 0.5, rng)),
               ContractViolation);
}

// Parameterized sweep: the GFK identity-subspace property holds across
// subspace dimensions.
class GfkDimTest : public ::testing::TestWithParam<int> {};

TEST_P(GfkDimTest, SelfKernelEqualsDoubleProjector) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const int beta = GetParam();
  const auto c = unit_center(20, 1, 1.5);
  const VideoSubspace s = build_subspace(gaussian_features(16, 20, c, 0.4, rng), beta);
  const Matrix w = geodesic_flow_kernel(s.basis, s.complement, s.basis);
  const Matrix proj2 = 2.0 * (s.basis * s.basis.transposed());
  EXPECT_LT(linalg::max_abs_diff(w, proj2), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, GfkDimTest, ::testing::Values(1, 2, 4, 8, 12));

}  // namespace
}  // namespace eecs::domain
