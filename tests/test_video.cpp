#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "video/environment.hpp"
#include "video/person.hpp"
#include "video/scene.hpp"

namespace eecs::video {
namespace {

TEST(Environment, PresetsMatchPaperParameters) {
  const Environment d1 = dataset1_lab();
  EXPECT_EQ(d1.image_width, 360);
  EXPECT_EQ(d1.image_height, 288);
  EXPECT_EQ(d1.num_people, 6);
  EXPECT_EQ(d1.num_clutter, 0);
  EXPECT_EQ(d1.ground_truth_stride, 25);

  const Environment d2 = dataset2_chap();
  EXPECT_EQ(d2.image_width, 1024);
  EXPECT_EQ(d2.image_height, 768);
  EXPECT_GT(d2.num_clutter, 0);
  EXPECT_EQ(d2.ground_truth_stride, 10);

  const Environment d3 = dataset3_terrace();
  EXPECT_EQ(d3.num_people, 8);
  EXPECT_TRUE(d3.outdoor);
}

TEST(Environment, DatasetByIdDispatchesAndValidates) {
  EXPECT_EQ(dataset_by_id(1).name, "dataset1-lab");
  EXPECT_EQ(dataset_by_id(2).name, "dataset2-chap");
  EXPECT_EQ(dataset_by_id(3).name, "dataset3-terrace");
  EXPECT_THROW((void)dataset_by_id(0), ContractViolation);
  EXPECT_THROW((void)dataset_by_id(4), ContractViolation);
}

TEST(Person, RandomAppearanceWithinPhysicalRanges) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const PersonAppearance a = random_appearance(rng);
    EXPECT_GE(a.height_m, 1.60);
    EXPECT_LE(a.height_m, 1.92);
    EXPECT_GE(a.width_m, 0.48);
    EXPECT_LE(a.width_m, 0.62);
    for (float v : a.shirt) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Person, WalksTowardWaypointAndStaysInRoom) {
  Rng rng(2);
  Person p(0, random_appearance(rng), {4, 4}, rng, 8, 8, 1.0);
  for (int i = 0; i < 2000; ++i) {
    p.step(0.1, rng);
    EXPECT_GE(p.position().x, 0.0);
    EXPECT_LE(p.position().x, 8.0);
    EXPECT_GE(p.position().y, 0.0);
    EXPECT_LE(p.position().y, 8.0);
  }
}

TEST(Person, MovesOverTime) {
  Rng rng(3);
  Person p(0, random_appearance(rng), {4, 4}, rng, 8, 8, 1.0);
  const auto start = p.position();
  for (int i = 0; i < 50; ++i) p.step(0.1, rng);
  EXPECT_GT(geometry::distance(start, p.position()), 0.5);
}

TEST(Person, PhaseAdvancesWhileWalking) {
  Rng rng(4);
  Person p(0, random_appearance(rng), {1, 1}, rng, 8, 8, 1.0);
  const double phase0 = p.phase();
  for (int i = 0; i < 10; ++i) p.step(0.1, rng);
  EXPECT_NE(p.phase(), phase0);
}

TEST(Scene, HasFourCamerasObservingTheRoom) {
  SceneSimulator sim(dataset1_lab(), 7);
  ASSERT_EQ(sim.cameras().size(), 4u);
  // Every camera sees the room center.
  for (const auto& cam : sim.cameras()) {
    const auto px = cam.project({4, 4, 0.9});
    ASSERT_TRUE(px.has_value());
    EXPECT_TRUE(cam.in_image(*px));
  }
}

TEST(Scene, RendersFramesOfConfiguredSize) {
  SceneSimulator sim(dataset1_lab(), 7);
  const MultiViewFrame frame = sim.next_frame();
  ASSERT_EQ(frame.views.size(), 4u);
  for (const auto& img : frame.views) {
    EXPECT_EQ(img.width(), 360);
    EXPECT_EQ(img.height(), 288);
    EXPECT_EQ(img.channels(), 3);
  }
  EXPECT_EQ(frame.index, 0);
  EXPECT_EQ(sim.frame_index(), 1);
}

TEST(Scene, DeterministicForSameSeed) {
  SceneSimulator a(dataset1_lab(), 42), b(dataset1_lab(), 42);
  const MultiViewFrame fa = a.next_frame();
  const MultiViewFrame fb = b.next_frame();
  // Identical pixel content.
  const auto da = fa.views[0].data();
  const auto db = fb.views[0].data();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); i += 997) EXPECT_EQ(da[i], db[i]);
  ASSERT_EQ(fa.truth[0].size(), fb.truth[0].size());
}

TEST(Scene, DifferentSeedsDiffer) {
  SceneSimulator a(dataset1_lab(), 1), b(dataset1_lab(), 2);
  const auto fa = a.next_frame();
  const auto fb = b.next_frame();
  int diffs = 0;
  const auto da = fa.views[0].data();
  const auto db = fb.views[0].data();
  for (std::size_t i = 0; i < da.size(); i += 97) diffs += (da[i] != db[i]);
  EXPECT_GT(diffs, 10);
}

TEST(Scene, GroundTruthHasPeopleInView) {
  SceneSimulator sim(dataset1_lab(), 7);
  const auto truth = sim.ground_truth(0);
  EXPECT_GE(truth.size(), 2u);  // Most of the 6 people visible from a corner cam.
  for (const auto& gt : truth) {
    EXPECT_GE(gt.person_id, 0);
    EXPECT_LT(gt.person_id, 6);
    EXPECT_GT(gt.box.area(), 0.0);
    EXPECT_GE(gt.visibility, 0.0);
    EXPECT_LE(gt.visibility, 1.0);
  }
}

TEST(Scene, PeopleActuallyRenderedBrighterOrDarkerThanBackground) {
  // The pixels inside a fully visible ground-truth box must differ from the
  // pre-baked background (i.e. the sprite was drawn).
  SceneSimulator sim(dataset1_lab(), 11);
  const MultiViewFrame frame = sim.next_frame();
  SceneSimulator bg_only(dataset1_lab(), 11);  // Same scene; compare vs its own render.
  int checked = 0;
  for (const auto& gt : frame.truth[0]) {
    if (gt.visibility < 0.95 || !gt.fully_in_image) continue;
    double diff = 0.0;
    int n = 0;
    const int x0 = static_cast<int>(gt.box.x), x1 = static_cast<int>(gt.box.right());
    const int y0 = static_cast<int>(gt.box.y), y1 = static_cast<int>(gt.box.bottom());
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        if (x < 0 || y < 0 || x >= frame.views[0].width() || y >= frame.views[0].height()) continue;
        diff += std::abs(frame.views[0].at(x, y, 0) - 0.55f);
        ++n;
      }
    }
    if (n > 0) {
      EXPECT_GT(diff / n, 0.02) << "sprite did not change pixels";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Scene, SkipAdvancesWithoutRendering) {
  SceneSimulator a(dataset1_lab(), 5), b(dataset1_lab(), 5);
  a.skip(10);
  for (int i = 0; i < 10; ++i) (void)b.next_frame();
  EXPECT_EQ(a.frame_index(), b.frame_index());
  // Scene state evolved identically: ground truth boxes coincide.
  const auto ta = a.ground_truth(1);
  const auto tb = b.ground_truth(1);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_NEAR(ta[i].box.x, tb[i].box.x, 1e-9);
    EXPECT_NEAR(ta[i].box.y, tb[i].box.y, 1e-9);
  }
}

TEST(Scene, GroundTruthCadenceFollowsDataset) {
  SceneSimulator sim1(dataset1_lab(), 1);
  EXPECT_TRUE(sim1.has_ground_truth(0));
  EXPECT_FALSE(sim1.has_ground_truth(13));
  EXPECT_TRUE(sim1.has_ground_truth(25));
  SceneSimulator sim2(dataset2_chap(), 1);
  EXPECT_TRUE(sim2.has_ground_truth(10));
  EXPECT_FALSE(sim2.has_ground_truth(25));
}

TEST(Scene, SingleViewRenderMatchesConfiguredCamera) {
  SceneSimulator sim(dataset3_terrace(), 9);
  std::vector<GroundTruthBox> truth;
  const imaging::Image img = sim.next_frame_single(2, &truth);
  EXPECT_EQ(img.width(), 360);
  EXPECT_EQ(sim.frame_index(), 1);
}

TEST(Scene, InvalidCameraIndexViolatesContract) {
  SceneSimulator sim(dataset1_lab(), 9);
  EXPECT_THROW((void)sim.ground_truth(4), ContractViolation);
  EXPECT_THROW((void)sim.next_frame_single(-1), ContractViolation);
}

TEST(Scene, Dataset2ContainsClutterOccluders) {
  SceneSimulator sim(dataset2_chap(), 3);
  // Run a while; at least sometimes a person should be partially occluded or
  // clutter must exist in the scene (visibility < 1 happens).
  bool any_occlusion = false;
  for (int i = 0; i < 40 && !any_occlusion; ++i) {
    for (int cam = 0; cam < 4; ++cam) {
      for (const auto& gt : sim.ground_truth(cam)) {
        if (gt.visibility < 0.98) any_occlusion = true;
      }
    }
    sim.skip(10);
  }
  EXPECT_TRUE(any_occlusion);
}

TEST(Scene, WorldPositionsTrackPeople) {
  SceneSimulator sim(dataset1_lab(), 21);
  const MultiViewFrame frame = sim.next_frame();
  EXPECT_EQ(frame.world_positions.size(), 6u);
  for (const auto& p : frame.world_positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 8.0);
  }
}

TEST(Scene, GroundTruthBoxesAgreeWithGroundHomography) {
  // The foot point of each GT box should map near the person's world position
  // through the inverse ground homography — the datasets' calibration
  // property EECS relies on.
  SceneSimulator sim(dataset1_lab(), 33);
  const MultiViewFrame frame = sim.next_frame();
  const auto& cam = sim.cameras()[0];
  const geometry::Homography to_world = cam.ground_homography().inverse();
  for (const auto& gt : frame.truth[0]) {
    if (!gt.fully_in_image) continue;
    const auto world = to_world.apply({gt.box.foot_x(), gt.box.foot_y()});
    ASSERT_TRUE(world.has_value());
    const auto& truth_pos = frame.world_positions[static_cast<std::size_t>(gt.person_id)];
    EXPECT_NEAR(world->x, truth_pos.x, 0.25);
    EXPECT_NEAR(world->y, truth_pos.y, 0.25);
  }
}

}  // namespace
}  // namespace eecs::video
