// Robustness of the closed loop under injected faults: lossy links, camera
// crashes (with and without reboot), assignment retry/abandon, liveness-driven
// mid-round re-selection, and battery exhaustion. All faulted runs are
// deterministic in (config, seed).
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace eecs::core {
namespace {

class FaultTolerance : public ::testing::Test {
 protected:
  static const DetectorBank& bank() {
    static const DetectorBank detectors = detect::make_trained_detectors(1234);
    return detectors;
  }

  static OfflineOptions options() {
    OfflineOptions opts;
    opts.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
    opts.frames_per_item = 4;
    return opts;
  }

  static const OfflineKnowledge& knowledge() {
    static const OfflineKnowledge k = run_offline_training(bank(), {1}, 42, options());
    return k;
  }

  static EecsSimulationConfig config(SelectionMode mode) {
    EecsSimulationConfig cfg;
    cfg.dataset = 1;
    cfg.mode = mode;
    cfg.budget_per_frame = 3.0;
    cfg.controller.algorithms = options().algorithms;
    cfg.models = options();
    cfg.end_frame = 1900;  // One recalibration round: assess 1300-1400, operate 1400-1900.
    return cfg;
  }

  // Shared fault-free baseline (AllBest keeps every camera active, making
  // degradation comparisons tight).
  static const SimulationResult& baseline() {
    static const SimulationResult r =
        run_eecs_simulation(bank(), knowledge(), config(SelectionMode::AllBest));
    return r;
  }

  static EecsSimulationConfig crash_config() {
    EecsSimulationConfig cfg = config(SelectionMode::AllBest);
    // 10% uplink loss, and camera 2 (network node 3) dies mid-operation
    // without rebooting.
    cfg.uplink.loss_probability = 0.1;
    cfg.faults.add_crash(3, 1500.0, 1.0e9);
    return cfg;
  }

  static const SimulationResult& crash_result() {
    static const SimulationResult r = run_eecs_simulation(bank(), knowledge(), crash_config());
    return r;
  }
};

TEST_F(FaultTolerance, ZeroFaultRunHasCleanCounters) {
  const SimulationResult& r = baseline();
  EXPECT_GT(r.faults.messages_sent, 0);
  EXPECT_EQ(r.faults.messages_lost, 0);
  EXPECT_EQ(r.faults.assignments_retried, 0);
  EXPECT_EQ(r.faults.assignments_abandoned, 0);
  EXPECT_EQ(r.faults.registrations_lost, 0);
  EXPECT_EQ(r.faults.decode_errors, 0);
  EXPECT_EQ(r.faults.cameras_failed, 0);
  EXPECT_EQ(r.faults.cameras_recovered, 0);
  EXPECT_EQ(r.faults.midround_reselections, 0);
  EXPECT_EQ(r.faults.frames_skipped_exhausted, 0);
  for (const auto& round : r.rounds) EXPECT_FALSE(round.midround_recovery);
  ASSERT_EQ(r.battery_residual.size(), 4u);
  for (double residual : r.battery_residual) {
    EXPECT_GT(residual, 0.0);
    EXPECT_LT(residual, 1.0e5);  // Something was spent.
  }
}

TEST_F(FaultTolerance, FaultedRunIsDeterministic) {
  const SimulationResult again = run_eecs_simulation(bank(), knowledge(), crash_config());
  const SimulationResult& first = crash_result();
  EXPECT_EQ(again.cpu_joules, first.cpu_joules);
  EXPECT_EQ(again.radio_joules, first.radio_joules);
  EXPECT_EQ(again.humans_detected, first.humans_detected);
  EXPECT_EQ(again.humans_present, first.humans_present);
  EXPECT_EQ(again.faults.messages_sent, first.faults.messages_sent);
  EXPECT_EQ(again.faults.messages_lost, first.faults.messages_lost);
  EXPECT_EQ(again.faults.cameras_failed, first.faults.cameras_failed);
  EXPECT_EQ(again.faults.midround_reselections, first.faults.midround_reselections);
  EXPECT_EQ(again.rounds.size(), first.rounds.size());
  EXPECT_EQ(again.battery_residual, first.battery_residual);
}

TEST_F(FaultTolerance, UplinkLossDegradesDetectionsButRunCompletes) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  cfg.uplink.loss_probability = 0.1;
  const SimulationResult r = run_eecs_simulation(bank(), knowledge(), cfg);
  EXPECT_GT(r.faults.messages_lost, 0);
  // Detections the controller never receives do not count, so a lossy uplink
  // strictly degrades the detection rate; CPU spend is unchanged (the camera
  // still did the work).
  EXPECT_GT(r.humans_detected, 0);
  EXPECT_LT(r.humans_detected, baseline().humans_detected);
  EXPECT_EQ(r.humans_present, baseline().humans_present);
  EXPECT_EQ(r.gt_frames_processed, baseline().gt_frames_processed);
}

TEST_F(FaultTolerance, DownlinkLossTriggersAssignmentRetries) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  cfg.end_frame = 2400;  // Two rounds: more assignment pushes.
  cfg.downlink.loss_probability = 0.5;
  const SimulationResult r = run_eecs_simulation(bank(), knowledge(), cfg);
  EXPECT_GT(r.faults.messages_lost, 0);
  EXPECT_GT(r.faults.assignments_retried, 0);
  // Even with half the assignments lost, retries keep the loop productive.
  EXPECT_GT(r.humans_detected, 0);
}

TEST_F(FaultTolerance, CameraCrashTriggersMidRoundReselection) {
  const SimulationResult& r = crash_result();
  EXPECT_GT(r.faults.messages_lost, 0);
  EXPECT_EQ(r.faults.cameras_failed, 1);
  EXPECT_EQ(r.faults.cameras_recovered, 0);
  EXPECT_EQ(r.faults.midround_reselections, 1);

  // The recovery round log shows the controller re-selecting over the three
  // survivors (the baseline round ran all four cameras).
  const RoundLog* recovery = nullptr;
  for (const auto& round : r.rounds) {
    if (round.midround_recovery) recovery = &round;
  }
  ASSERT_NE(recovery, nullptr);
  EXPECT_GT(recovery->start_frame, 1500);
  EXPECT_EQ(recovery->stats.cameras_active, 3);
  EXPECT_EQ(r.rounds.front().stats.cameras_active, 4);

  // A dark camera does no work; overlapping views can still cover its people,
  // so the unique-person count may hold while energy strictly drops.
  EXPECT_LE(r.humans_detected, baseline().humans_detected);
  EXPECT_LT(r.cpu_joules, baseline().cpu_joules);
  EXPECT_LT(r.radio_joules, baseline().radio_joules);
}

TEST_F(FaultTolerance, RebootedCameraIsHeardAgain) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  cfg.faults.add_crash(3, 1500.0, 1600.0);  // Camera 2 reboots at frame 1600.
  const SimulationResult r = run_eecs_simulation(bank(), knowledge(), cfg);
  EXPECT_EQ(r.faults.cameras_failed, 1);
  EXPECT_EQ(r.faults.cameras_recovered, 1);
  EXPECT_EQ(r.faults.midround_reselections, 1);
  // The reboot preserves the last-known-good assignment, so the camera
  // resumes detecting: it spends strictly more energy than staying dark
  // forever (and never fewer unique detections).
  EXPECT_GE(r.humans_detected, crash_result().humans_detected);
  EXPECT_GT(r.cpu_joules, crash_result().cpu_joules);
}

TEST_F(FaultTolerance, UplinkBlackoutAbandonsNothingButLosesUploads) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  // Total blackout across the whole assessment window: the controller must
  // select from an empty assessment (estimates collapse to zero) yet the run
  // completes without throwing.
  cfg.faults.add_blackout(1300.0, 1400.0);
  const SimulationResult r = run_eecs_simulation(bank(), knowledge(), cfg);
  EXPECT_GT(r.faults.messages_lost, 0);
  EXPECT_EQ(r.gt_frames_processed, baseline().gt_frames_processed);
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_EQ(r.rounds.front().stats.n_star, 0.0);
}

TEST_F(FaultTolerance, BatteryExhaustionStopsCamerasMidRun) {
  EecsSimulationConfig cfg = config(SelectionMode::AllBest);
  cfg.battery_joules = 15.0;  // Registration + a few operation frames.
  const SimulationResult r = run_eecs_simulation(bank(), knowledge(), cfg);
  EXPECT_GT(r.faults.frames_skipped_exhausted, 0);
  EXPECT_LT(r.humans_detected, baseline().humans_detected);
  EXPECT_LT(r.cpu_joules, baseline().cpu_joules);
  for (double residual : r.battery_residual) EXPECT_LE(residual, 15.0);
}

TEST_F(FaultTolerance, FixedComboEnforcesBatteries) {
  const FixedCombo combo{{{0, detect::AlgorithmId::Hog},
                          {1, detect::AlgorithmId::Hog},
                          {2, detect::AlgorithmId::Acf},
                          {3, detect::AlgorithmId::Acf}}};
  FixedComboConfig cfg;
  cfg.models = options();
  cfg.end_frame = 1400;

  const SimulationResult unconstrained = run_fixed_combo(bank(), knowledge(), combo, cfg);
  EXPECT_EQ(unconstrained.faults.frames_skipped_exhausted, 0);

  cfg.battery_joules = 2.0;
  const SimulationResult constrained = run_fixed_combo(bank(), knowledge(), combo, cfg);
  EXPECT_GT(constrained.faults.frames_skipped_exhausted, 0);
  EXPECT_LT(constrained.humans_detected, unconstrained.humans_detected);
  EXPECT_LT(constrained.radio_joules, unconstrained.radio_joules);
  EXPECT_LT(constrained.cpu_joules, unconstrained.cpu_joules);
  ASSERT_EQ(constrained.battery_residual.size(), 4u);
  for (double residual : constrained.battery_residual) EXPECT_LE(residual, 2.0);
}

}  // namespace
}  // namespace eecs::core
