#include <gtest/gtest.h>

#include <span>

#include "common/rng.hpp"
#include "energy/cost.hpp"
#include "energy/model.hpp"
#include "net/fault.hpp"
#include "net/messages.hpp"
#include "net/network.hpp"

namespace eecs {
namespace {

TEST(CostCounter, AccumulatesAndAdds) {
  energy::CostCounter a;
  a.add_pixels(100);
  a.add_features(50);
  a.add_classifier(25);
  a.add_bytes(10);
  EXPECT_EQ(a.compute_ops(), 175u);

  energy::CostCounter b;
  b.add_pixels(1);
  const energy::CostCounter c = a + b;
  EXPECT_EQ(c.pixel_ops, 101u);
  EXPECT_EQ(c.bytes_tx, 10u);
}

TEST(CpuEnergyModel, JoulesGrowWithWork) {
  const energy::CpuEnergyModel model;
  energy::CostCounter small, large;
  small.add_features(1000);
  large.add_features(1000000);
  EXPECT_GT(model.joules(large), model.joules(small));
  EXPECT_GE(model.joules({}), model.joules_fixed_per_frame);
  EXPECT_GT(model.seconds(large), model.seconds(small));
}

TEST(RadioModel, PerByteAndPerMessageCosts) {
  const energy::RadioModel radio;
  const double one = radio.tx_joules(1);
  const double big = radio.tx_joules(1000000);
  EXPECT_GT(big, one);
  EXPECT_GT(one, radio.joules_per_message * 0.99);
  EXPECT_GT(radio.tx_seconds(1000000), radio.tx_seconds(1000));
}

TEST(Battery, DrainClampsAtEmpty) {
  energy::Battery battery(10.0);
  EXPECT_DOUBLE_EQ(battery.drain(4.0), 4.0);
  EXPECT_DOUBLE_EQ(battery.residual(), 6.0);
  EXPECT_DOUBLE_EQ(battery.drain(100.0), 6.0);
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.consumed(), 10.0);
}

TEST(Battery, RejectsNegativeDrainAndCapacity) {
  energy::Battery battery(5.0);
  EXPECT_THROW((void)battery.drain(-1.0), ContractViolation);
  EXPECT_THROW(energy::Battery(0.0), ContractViolation);
}

TEST(BudgetPlan, PaperArithmetic) {
  // 6 hours at one frame per 2 seconds -> 10800 frames.
  energy::BudgetPlan plan;
  plan.operation_hours = 6.0;
  plan.seconds_per_frame = 2.0;
  EXPECT_EQ(plan.frames_remaining(), 10800);
  EXPECT_NEAR(plan.per_frame_budget(10800.0), 1.0, 1e-9);
}

TEST(Messages, FeatureUploadRoundTrip) {
  net::FeatureUploadMsg msg;
  msg.camera_id = 3;
  msg.frame_index = 1200;
  msg.feature_dim = 2;
  msg.features = {1.0f, 2.0f, 3.0f, 4.0f};
  msg.energy_budget = 1.5;
  const auto bytes = encode(msg);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::FeatureUpload);
  const auto decoded = net::decode_feature_upload(bytes);
  EXPECT_EQ(decoded.camera_id, 3);
  EXPECT_EQ(decoded.features, msg.features);
  EXPECT_DOUBLE_EQ(decoded.energy_budget, 1.5);
}

TEST(Messages, DetectionMetadataRoundTripAndWireSize) {
  net::DetectionMetadataMsg msg;
  msg.camera_id = 1;
  msg.frame_index = 42;
  msg.algorithm = 2;
  net::ObjectMetadata obj;
  obj.x = 10;
  obj.y = 20;
  obj.w = 30;
  obj.h = 60;
  obj.probability = 0.75f;
  obj.color_feature.assign(40, 0.25f);
  msg.objects.push_back(obj);
  const auto bytes = encode(msg);
  // Header (1 type + 4 cam + 4 frame + 1 alg + 4 count) + 172 per object.
  EXPECT_EQ(bytes.size(), 14u + 172u);
  const auto decoded = net::decode_detection_metadata(bytes);
  ASSERT_EQ(decoded.objects.size(), 1u);
  EXPECT_EQ(decoded.objects[0].h, 60);
  EXPECT_FLOAT_EQ(decoded.objects[0].probability, 0.75f);
  EXPECT_EQ(decoded.objects[0].color_feature, obj.color_feature);
}

TEST(Messages, AssignmentAndEnergyReportRoundTrip) {
  net::AlgorithmAssignmentMsg assign;
  assign.camera_id = 2;
  assign.algorithm = 1;
  assign.threshold = -0.5f;
  assign.active = 0;
  const auto a = net::decode_algorithm_assignment(encode(assign));
  EXPECT_EQ(a.camera_id, 2);
  EXPECT_EQ(a.active, 0);
  EXPECT_FLOAT_EQ(a.threshold, -0.5f);

  net::EnergyReportMsg report;
  report.camera_id = 3;
  report.residual_joules = 123.5;
  const auto r = net::decode_energy_report(encode(report));
  EXPECT_DOUBLE_EQ(r.residual_joules, 123.5);
}

TEST(Messages, WrongTypeThrows) {
  const auto bytes = encode(net::EnergyReportMsg{1, 2.0});
  EXPECT_THROW((void)net::decode_feature_upload(bytes), ByteReader::DecodeError);
}

TEST(Messages, ColorFeatureMustBe40d) {
  net::DetectionMetadataMsg msg;
  net::ObjectMetadata obj;
  obj.color_feature.assign(39, 0.0f);
  msg.objects.push_back(obj);
  EXPECT_THROW((void)encode(msg), ContractViolation);
}

TEST(Network, DeliversInTimeOrder) {
  net::Network network({}, 1);
  const int controller = network.add_node({});
  net::LinkQuality fast;
  fast.latency_s = 0.001;
  net::LinkQuality slow;
  slow.latency_s = 0.5;
  const int cam_fast = network.add_node(fast);
  const int cam_slow = network.add_node(slow);

  (void)network.send(cam_slow, controller, {1});
  (void)network.send(cam_fast, controller, {2});
  const auto deliveries = network.advance_to(1.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].payload[0], 2);  // Fast link first.
  EXPECT_EQ(deliveries[1].payload[0], 1);
}

TEST(Network, UndeliveredUntilTimeAdvances) {
  net::Network network({}, 1);
  const int controller = network.add_node({});
  net::LinkQuality link;
  link.latency_s = 2.0;
  const int camera = network.add_node(link);
  (void)network.send(camera, controller, {7});
  EXPECT_TRUE(network.advance_to(1.0).empty());
  EXPECT_EQ(network.advance_to(3.0).size(), 1u);
}

TEST(Network, LossChargesEnergyButDropsPayload) {
  net::Network network({}, 3);
  const int controller = network.add_node({});
  net::LinkQuality lossy;
  lossy.loss_probability = 1.0;
  const int camera = network.add_node(lossy);
  const auto tx = network.send(camera, controller, std::vector<std::uint8_t>(100, 0));
  EXPECT_FALSE(tx.delivered);
  EXPECT_GT(tx.tx_joules, 0.0);
  EXPECT_TRUE(network.advance_to(10.0).empty());
  EXPECT_GT(network.radio_joules(camera), 0.0);
  EXPECT_EQ(network.bytes_sent(camera), 100u);
}

TEST(Network, RadioEnergyScalesWithBytes) {
  net::Network network({}, 4);
  const int controller = network.add_node({});
  const int camera = network.add_node({});
  const auto small = network.send(camera, controller, std::vector<std::uint8_t>(10, 0));
  const auto large = network.send(camera, controller, std::vector<std::uint8_t>(100000, 0));
  EXPECT_GT(large.tx_joules, small.tx_joules);
  EXPECT_GT(large.tx_seconds, small.tx_seconds);
}

TEST(Network, LossProbabilityIsStatisticallyHonored) {
  net::Network network({}, 99);
  const int controller = network.add_node({});
  net::LinkQuality lossy;
  lossy.loss_probability = 0.5;
  const int camera = network.add_node(lossy);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    if (network.send(camera, controller, {1}).delivered) ++delivered;
  }
  // Binomial(1000, 0.5): +-100 is > 6 sigma, so this never flakes.
  EXPECT_GT(delivered, 400);
  EXPECT_LT(delivered, 600);
  EXPECT_EQ(network.advance_to(100.0).size(), static_cast<std::size_t>(delivered));
}

TEST(Network, SimultaneousDeliveriesAreFifoBySendOrder) {
  net::Network network({}, 5);
  const int controller = network.add_node({});
  const int cam_a = network.add_node({});
  const int cam_b = network.add_node({});
  // Same payload size and identical links: identical delivery times.
  (void)network.send(cam_b, controller, {9});
  (void)network.send(cam_a, controller, {8});
  (void)network.send(cam_b, controller, {7});
  const auto deliveries = network.advance_to(1.0);
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].payload[0], 9);
  EXPECT_EQ(deliveries[1].payload[0], 8);
  EXPECT_EQ(deliveries[2].payload[0], 7);
}

TEST(Network, ControlClassChargesNoEnergyButIsStillLossy) {
  net::Network network({}, 6);
  const int controller = network.add_node({});
  const int camera = network.add_node({});
  const auto tx =
      network.send(camera, controller, std::vector<std::uint8_t>(50, 1), net::TxClass::Control);
  EXPECT_TRUE(tx.delivered);
  EXPECT_DOUBLE_EQ(tx.tx_joules, 0.0);
  EXPECT_DOUBLE_EQ(network.radio_joules(camera), 0.0);
  EXPECT_EQ(network.bytes_sent(camera), 0u);
  EXPECT_EQ(network.advance_to(1.0).size(), 1u);

  net::Network lossy_net({}, 7);
  (void)lossy_net.add_node({});
  net::LinkQuality dead;
  dead.loss_probability = 1.0;
  const int cam = lossy_net.add_node(dead);
  EXPECT_FALSE(lossy_net.send(cam, 0, {1}, net::TxClass::Control).delivered);
}

TEST(FaultPlan, EmptyPlanReturnsBaseLossBitExactly) {
  const net::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  // Must be the same double, not a reconstruction through 1 - (1 - x).
  const double base = 0.1234567890123456789;
  EXPECT_EQ(plan.loss_probability(1, 0, 50.0, base), base);
  EXPECT_FALSE(plan.node_down(1, 0.0));
}

TEST(FaultPlan, DirectionalLossAndWindows) {
  net::FaultPlan plan;
  plan.uplink_loss = 0.5;
  EXPECT_DOUBLE_EQ(plan.loss_probability(1, 0, 10.0, 0.0), 0.5);  // Camera -> controller.
  EXPECT_DOUBLE_EQ(plan.loss_probability(0, 1, 10.0, 0.0), 0.0);  // Controller -> camera.
  // Independent sources combine: 1 - (1-0.5)(1-0.5).
  EXPECT_DOUBLE_EQ(plan.loss_probability(1, 0, 10.0, 0.5), 0.75);

  net::FaultPlan blackout;
  blackout.add_blackout(100.0, 200.0);
  EXPECT_DOUBLE_EQ(blackout.loss_probability(1, 0, 150.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(blackout.loss_probability(1, 0, 200.0, 0.0), 0.0);  // End-exclusive.
  EXPECT_DOUBLE_EQ(blackout.loss_probability(1, 0, 99.9, 0.0), 0.0);

  net::FaultPlan targeted;
  targeted.loss_windows.push_back({0.0, 10.0, 1.0, 2});
  EXPECT_DOUBLE_EQ(targeted.loss_probability(2, 0, 5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(targeted.loss_probability(1, 0, 5.0, 0.0), 0.0);  // Other sender untouched.
}

TEST(FaultPlan, CrashWindows) {
  net::FaultPlan plan;
  plan.add_crash(3, 100.0, 200.0);
  EXPECT_FALSE(plan.node_down(3, 99.9));
  EXPECT_TRUE(plan.node_down(3, 100.0));
  EXPECT_TRUE(plan.node_down(3, 199.9));
  EXPECT_FALSE(plan.node_down(3, 200.0));  // Rebooted.
  EXPECT_FALSE(plan.node_down(2, 150.0));
}

TEST(Network, CrashedSenderTransmitsNothingAndPaysNothing) {
  net::FaultPlan plan;
  plan.add_crash(1, 0.0, 10.0);
  net::Network network({}, 8);
  network.set_fault_plan(plan);
  const int controller = network.add_node({});
  const int camera = network.add_node({});
  const auto tx = network.send(camera, controller, std::vector<std::uint8_t>(100, 0));
  EXPECT_FALSE(tx.delivered);
  EXPECT_DOUBLE_EQ(tx.tx_joules, 0.0);
  EXPECT_EQ(network.bytes_sent(camera), 0u);
  EXPECT_TRUE(network.node_down(camera));
}

TEST(Network, CrashedReceiverDropsDeliveries) {
  net::FaultPlan plan;
  plan.add_crash(2, 0.0, 100.0);
  net::Network network({}, 9);
  network.set_fault_plan(plan);
  (void)network.add_node({});
  const int cam_ok = network.add_node({});
  (void)network.add_node({});  // Node 2, crashed.
  const auto tx = network.send(0, 2, {5});
  EXPECT_TRUE(tx.delivered);  // The sender cannot know.
  EXPECT_TRUE(network.advance_to(50.0).empty());
  EXPECT_EQ(network.rx_dropped(), 1u);
  (void)network.send(0, cam_ok, {6});
  EXPECT_EQ(network.advance_to(60.0).size(), 1u);
  EXPECT_EQ(network.rx_dropped(), 1u);
}

// ---- Decoder hardening: a malformed payload must either decode or throw
// DecodeError; it must never read out of bounds (verified under ASan/UBSan)
// or allocate from an unvalidated length prefix.

void expect_graceful_decode(std::span<const std::uint8_t> bytes) {
  try {
    switch (net::peek_type(bytes)) {
      case net::MessageType::FeatureUpload:
        (void)net::decode_feature_upload(bytes);
        break;
      case net::MessageType::DetectionMetadata:
        (void)net::decode_detection_metadata(bytes);
        break;
      case net::MessageType::AlgorithmAssignment:
        (void)net::decode_algorithm_assignment(bytes);
        break;
      case net::MessageType::EnergyReport:
        (void)net::decode_energy_report(bytes);
        break;
      case net::MessageType::AssignmentAck:
        (void)net::decode_assignment_ack(bytes);
        break;
    }
  } catch (const ByteReader::DecodeError&) {
    // Rejected cleanly: acceptable. Anything else fails the test.
  }
}

std::vector<std::vector<std::uint8_t>> sample_messages() {
  net::FeatureUploadMsg upload;
  upload.camera_id = 1;
  upload.feature_dim = 3;
  upload.features = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  upload.energy_budget = 2.5;

  net::DetectionMetadataMsg meta;
  meta.camera_id = 2;
  meta.frame_index = 1500;
  meta.algorithm = 1;
  net::ObjectMetadata obj;
  obj.color_feature.assign(40, 0.5f);
  meta.objects.assign(3, obj);

  net::AlgorithmAssignmentMsg assign;
  assign.camera_id = 3;
  assign.sequence = 7;
  assign.threshold = -1.25;

  return {encode(upload), encode(meta), encode(assign),
          encode(net::EnergyReportMsg{4, 55.0}), encode(net::AssignmentAckMsg{5, 9})};
}

TEST(MessageHardening, EveryTruncationThrowsDecodeError) {
  for (const auto& bytes : sample_messages()) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(bytes.data(), len);
      if (len == 0) {
        EXPECT_THROW((void)net::peek_type(prefix), ByteReader::DecodeError);
        continue;
      }
      try {
        switch (net::peek_type(prefix)) {
          case net::MessageType::FeatureUpload:
            EXPECT_THROW((void)net::decode_feature_upload(prefix), ByteReader::DecodeError);
            break;
          case net::MessageType::DetectionMetadata:
            EXPECT_THROW((void)net::decode_detection_metadata(prefix), ByteReader::DecodeError);
            break;
          case net::MessageType::AlgorithmAssignment:
            EXPECT_THROW((void)net::decode_algorithm_assignment(prefix), ByteReader::DecodeError);
            break;
          case net::MessageType::EnergyReport:
            EXPECT_THROW((void)net::decode_energy_report(prefix), ByteReader::DecodeError);
            break;
          case net::MessageType::AssignmentAck:
            EXPECT_THROW((void)net::decode_assignment_ack(prefix), ByteReader::DecodeError);
            break;
        }
      } catch (const ByteReader::DecodeError&) {
        // peek_type itself rejecting the prefix is also a clean rejection.
      }
    }
  }
}

TEST(MessageHardening, RandomByteCorruptionNeverEscapesDecodeError) {
  Rng rng(20260805);
  for (const auto& bytes : sample_messages()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::vector<std::uint8_t> corrupt = bytes;
      const int flips = rng.uniform_int(1, 4);
      for (int i = 0; i < flips; ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(corrupt.size()) - 1));
        corrupt[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      expect_graceful_decode(corrupt);
    }
  }
}

TEST(MessageHardening, LengthPrefixBombIsRejectedWithoutAllocating) {
  // FeatureUpload: tag(1) camera(4) frame(4) dim(4) budget(8) veclen(4)...
  net::FeatureUploadMsg upload;
  upload.feature_dim = 1;
  upload.features = {1.0f};
  auto bytes = encode(upload);
  for (std::size_t i = 21; i < 25; ++i) bytes[i] = 0xff;  // veclen = 2^32 - 1.
  EXPECT_THROW((void)net::decode_feature_upload(bytes), ByteReader::DecodeError);

  // DetectionMetadata: tag(1) camera(4) frame(4) alg(1) count(4)...
  net::DetectionMetadataMsg meta;
  net::ObjectMetadata obj;
  obj.color_feature.assign(40, 0.0f);
  meta.objects.push_back(obj);
  auto mbytes = encode(meta);
  for (std::size_t i = 10; i < 14; ++i) mbytes[i] = 0xff;  // count = 2^32 - 1.
  EXPECT_THROW((void)net::decode_detection_metadata(mbytes), ByteReader::DecodeError);
}

TEST(MessageHardening, PeekTypeRejectsUnknownTag) {
  EXPECT_THROW((void)net::peek_type(std::vector<std::uint8_t>{0}), ByteReader::DecodeError);
  EXPECT_THROW((void)net::peek_type(std::vector<std::uint8_t>{6}), ByteReader::DecodeError);
  EXPECT_THROW((void)net::peek_type(std::vector<std::uint8_t>{0xff}), ByteReader::DecodeError);
}

TEST(Messages, AssignmentSequenceAndAckRoundTrip) {
  net::AlgorithmAssignmentMsg assign;
  assign.camera_id = 1;
  assign.sequence = 0xdeadbeef;
  assign.threshold = 0.123456789012345678;  // Must survive the wire exactly.
  const auto a = net::decode_algorithm_assignment(encode(assign));
  EXPECT_EQ(a.sequence, 0xdeadbeefu);
  EXPECT_EQ(a.threshold, assign.threshold);

  net::AssignmentAckMsg ack;
  ack.camera_id = 4;
  ack.sequence = 12345;
  const auto bytes = encode(ack);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::AssignmentAck);
  const auto decoded = net::decode_assignment_ack(bytes);
  EXPECT_EQ(decoded.camera_id, 4);
  EXPECT_EQ(decoded.sequence, 12345u);
}

}  // namespace
}  // namespace eecs
