#include <gtest/gtest.h>

#include "energy/cost.hpp"
#include "energy/model.hpp"
#include "net/messages.hpp"
#include "net/network.hpp"

namespace eecs {
namespace {

TEST(CostCounter, AccumulatesAndAdds) {
  energy::CostCounter a;
  a.add_pixels(100);
  a.add_features(50);
  a.add_classifier(25);
  a.add_bytes(10);
  EXPECT_EQ(a.compute_ops(), 175u);

  energy::CostCounter b;
  b.add_pixels(1);
  const energy::CostCounter c = a + b;
  EXPECT_EQ(c.pixel_ops, 101u);
  EXPECT_EQ(c.bytes_tx, 10u);
}

TEST(CpuEnergyModel, JoulesGrowWithWork) {
  const energy::CpuEnergyModel model;
  energy::CostCounter small, large;
  small.add_features(1000);
  large.add_features(1000000);
  EXPECT_GT(model.joules(large), model.joules(small));
  EXPECT_GE(model.joules({}), model.joules_fixed_per_frame);
  EXPECT_GT(model.seconds(large), model.seconds(small));
}

TEST(RadioModel, PerByteAndPerMessageCosts) {
  const energy::RadioModel radio;
  const double one = radio.tx_joules(1);
  const double big = radio.tx_joules(1000000);
  EXPECT_GT(big, one);
  EXPECT_GT(one, radio.joules_per_message * 0.99);
  EXPECT_GT(radio.tx_seconds(1000000), radio.tx_seconds(1000));
}

TEST(Battery, DrainClampsAtEmpty) {
  energy::Battery battery(10.0);
  EXPECT_DOUBLE_EQ(battery.drain(4.0), 4.0);
  EXPECT_DOUBLE_EQ(battery.residual(), 6.0);
  EXPECT_DOUBLE_EQ(battery.drain(100.0), 6.0);
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.consumed(), 10.0);
}

TEST(Battery, RejectsNegativeDrainAndCapacity) {
  energy::Battery battery(5.0);
  EXPECT_THROW((void)battery.drain(-1.0), ContractViolation);
  EXPECT_THROW(energy::Battery(0.0), ContractViolation);
}

TEST(BudgetPlan, PaperArithmetic) {
  // 6 hours at one frame per 2 seconds -> 10800 frames.
  energy::BudgetPlan plan;
  plan.operation_hours = 6.0;
  plan.seconds_per_frame = 2.0;
  EXPECT_EQ(plan.frames_remaining(), 10800);
  EXPECT_NEAR(plan.per_frame_budget(10800.0), 1.0, 1e-9);
}

TEST(Messages, FeatureUploadRoundTrip) {
  net::FeatureUploadMsg msg;
  msg.camera_id = 3;
  msg.frame_index = 1200;
  msg.feature_dim = 2;
  msg.features = {1.0f, 2.0f, 3.0f, 4.0f};
  msg.energy_budget = 1.5;
  const auto bytes = encode(msg);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::FeatureUpload);
  const auto decoded = net::decode_feature_upload(bytes);
  EXPECT_EQ(decoded.camera_id, 3);
  EXPECT_EQ(decoded.features, msg.features);
  EXPECT_DOUBLE_EQ(decoded.energy_budget, 1.5);
}

TEST(Messages, DetectionMetadataRoundTripAndWireSize) {
  net::DetectionMetadataMsg msg;
  msg.camera_id = 1;
  msg.frame_index = 42;
  msg.algorithm = 2;
  net::ObjectMetadata obj;
  obj.x = 10;
  obj.y = 20;
  obj.w = 30;
  obj.h = 60;
  obj.probability = 0.75f;
  obj.color_feature.assign(40, 0.25f);
  msg.objects.push_back(obj);
  const auto bytes = encode(msg);
  // Header (1 type + 4 cam + 4 frame + 1 alg + 4 count) + 172 per object.
  EXPECT_EQ(bytes.size(), 14u + 172u);
  const auto decoded = net::decode_detection_metadata(bytes);
  ASSERT_EQ(decoded.objects.size(), 1u);
  EXPECT_EQ(decoded.objects[0].h, 60);
  EXPECT_FLOAT_EQ(decoded.objects[0].probability, 0.75f);
  EXPECT_EQ(decoded.objects[0].color_feature, obj.color_feature);
}

TEST(Messages, AssignmentAndEnergyReportRoundTrip) {
  net::AlgorithmAssignmentMsg assign;
  assign.camera_id = 2;
  assign.algorithm = 1;
  assign.threshold = -0.5f;
  assign.active = 0;
  const auto a = net::decode_algorithm_assignment(encode(assign));
  EXPECT_EQ(a.camera_id, 2);
  EXPECT_EQ(a.active, 0);
  EXPECT_FLOAT_EQ(a.threshold, -0.5f);

  net::EnergyReportMsg report;
  report.camera_id = 3;
  report.residual_joules = 123.5;
  const auto r = net::decode_energy_report(encode(report));
  EXPECT_DOUBLE_EQ(r.residual_joules, 123.5);
}

TEST(Messages, WrongTypeThrows) {
  const auto bytes = encode(net::EnergyReportMsg{1, 2.0});
  EXPECT_THROW((void)net::decode_feature_upload(bytes), ByteReader::DecodeError);
}

TEST(Messages, ColorFeatureMustBe40d) {
  net::DetectionMetadataMsg msg;
  net::ObjectMetadata obj;
  obj.color_feature.assign(39, 0.0f);
  msg.objects.push_back(obj);
  EXPECT_THROW((void)encode(msg), ContractViolation);
}

TEST(Network, DeliversInTimeOrder) {
  net::Network network({}, 1);
  const int controller = network.add_node({});
  net::LinkQuality fast;
  fast.latency_s = 0.001;
  net::LinkQuality slow;
  slow.latency_s = 0.5;
  const int cam_fast = network.add_node(fast);
  const int cam_slow = network.add_node(slow);

  (void)network.send(cam_slow, controller, {1});
  (void)network.send(cam_fast, controller, {2});
  const auto deliveries = network.advance_to(1.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].payload[0], 2);  // Fast link first.
  EXPECT_EQ(deliveries[1].payload[0], 1);
}

TEST(Network, UndeliveredUntilTimeAdvances) {
  net::Network network({}, 1);
  const int controller = network.add_node({});
  net::LinkQuality link;
  link.latency_s = 2.0;
  const int camera = network.add_node(link);
  (void)network.send(camera, controller, {7});
  EXPECT_TRUE(network.advance_to(1.0).empty());
  EXPECT_EQ(network.advance_to(3.0).size(), 1u);
}

TEST(Network, LossChargesEnergyButDropsPayload) {
  net::Network network({}, 3);
  const int controller = network.add_node({});
  net::LinkQuality lossy;
  lossy.loss_probability = 1.0;
  const int camera = network.add_node(lossy);
  const auto tx = network.send(camera, controller, std::vector<std::uint8_t>(100, 0));
  EXPECT_FALSE(tx.delivered);
  EXPECT_GT(tx.tx_joules, 0.0);
  EXPECT_TRUE(network.advance_to(10.0).empty());
  EXPECT_GT(network.radio_joules(camera), 0.0);
  EXPECT_EQ(network.bytes_sent(camera), 100u);
}

TEST(Network, RadioEnergyScalesWithBytes) {
  net::Network network({}, 4);
  const int controller = network.add_node({});
  const int camera = network.add_node({});
  const auto small = network.send(camera, controller, std::vector<std::uint8_t>(10, 0));
  const auto large = network.send(camera, controller, std::vector<std::uint8_t>(100000, 0));
  EXPECT_GT(large.tx_joules, small.tx_joules);
  EXPECT_GT(large.tx_seconds, small.tx_seconds);
}

}  // namespace
}  // namespace eecs
