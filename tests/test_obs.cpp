#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace eecs::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("a.count");
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);
  // Same name returns the same metric.
  EXPECT_EQ(&registry.counter("a.count"), &c);

  Gauge& g = registry.gauge("a.gauge");
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Metrics, ReRegistrationKindMismatchViolatesContract) {
  MetricsRegistry registry;
  (void)registry.counter("same.name");
  EXPECT_THROW((void)registry.gauge("same.name"), ContractViolation);
  EXPECT_THROW((void)registry.counter("same.name", Determinism::WallClock), ContractViolation);
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {0, 1, 4});
  h.observe(0.0);   // le_0: boundary value lands in its own bucket (le).
  h.observe(-2.0);  // le_0.
  h.observe(1.0);   // le_1: equality at bound.
  h.observe(0.5);   // le_1.
  h.observe(4.0);   // le_4.
  h.observe(4.5);   // overflow.
  h.observe(100.0); // overflow.
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 2u);  // Overflow bucket.
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 - 2.0 + 1.0 + 0.5 + 4.0 + 4.5 + 100.0);
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  const common::ScopedThreads threads(4);
  MetricsRegistry registry;
  Counter& c = registry.counter("par.count");
  Histogram& h = registry.histogram("par.hist", {10, 100});
  constexpr std::size_t kN = 10000;
  common::parallel_for_each(kN, [&](std::size_t i) {
    c.inc();
    h.observe(static_cast<double>(i % 7));  // Integer-valued: sum stays exact.
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.bucket(0), kN);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) expected_sum += static_cast<double>(i % 7);
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
}

TEST(Metrics, DeterministicSnapshotExcludesWallClock) {
  MetricsRegistry registry;
  registry.counter("det.count").inc(2);
  registry.gauge("wall.s", Determinism::WallClock).set(1.25);
  registry.histogram("det.hist", {1}).observe(1.0);
  const auto snap = registry.deterministic_snapshot();
  EXPECT_EQ(snap.count("wall.s"), 0u);
  EXPECT_DOUBLE_EQ(snap.at("det.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.le_1"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.overflow"), 0.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.sum"), 1.0);
}

TEST(Metrics, DiffReportCoversKeyUnion) {
  MetricsRegistry::Snapshot before{{"only.before", 2.0}, {"both", 5.0}};
  MetricsRegistry::Snapshot after{{"both", 7.5}, {"only.after", 3.0}};
  EXPECT_EQ(MetricsRegistry::diff_report(before, after),
            "both=2.5\nonly.after=3\nonly.before=-2\n");
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = "e" + std::to_string(i);
    tracer.record(std::move(e));
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // Oldest surviving.
  EXPECT_EQ(events.back().name, "e5");
}

TEST(Tracer, JsonlGoldenWithInjectedClock) {
  Tracer tracer(8);
  std::uint64_t fake_now = 100;
  tracer.set_clock([&] { return fake_now; });

  TraceEvent instant;
  instant.cat = "round";
  instant.name = "round.select";
  instant.sim_time = 1200;
  instant.num_args = {{"cameras_active", 3}};
  tracer.record(std::move(instant));

  fake_now = 250;
  TraceEvent span;
  span.phase = 'X';
  span.wall_us = 100;  // Pre-stamped start, as ScopedSpan does.
  span.dur_us = 150;
  span.cat = "stage";
  span.name = "stage.detect";
  tracer.record(std::move(span));

  EXPECT_EQ(tracer.to_jsonl(),
            "{\"wall_us\": 100, \"ph\": \"i\", \"cat\": \"round\", \"name\": \"round.select\", "
            "\"args\": {\"sim_time\": 1200, \"cameras_active\": 3}}\n"
            "{\"wall_us\": 100, \"dur_us\": 150, \"ph\": \"X\", \"cat\": \"stage\", "
            "\"name\": \"stage.detect\", \"args\": {\"sim_time\": -1}}\n");
}

TEST(Tracer, ChromeTraceGoldenWithInjectedClock) {
  Tracer tracer(8);
  tracer.set_clock([] { return std::uint64_t{42}; });
  TraceEvent e;
  e.cat = "camera";
  e.name = "camera.dead";
  e.sim_time = 1500;
  e.num_args = {{"camera", 2}};
  tracer.record(std::move(e));

  EXPECT_EQ(tracer.to_chrome_trace(),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"camera.dead\", \"cat\": \"camera\", \"ph\": \"i\", \"ts\": 42, "
            "\"s\": \"g\", \"pid\": 1, \"tid\": 1, "
            "\"args\": {\"sim_time\": 1500, \"camera\": 2}}\n"
            "]}\n");
}

TEST(Span, AccumulatesIntoGaugeAndEmitsCompleteEvent) {
  ScopedTelemetry telemetry;
  std::uint64_t fake_now = 100;
  telemetry.session().tracer().set_clock([&] { return fake_now; });
  Gauge& acc = telemetry.session().metrics().gauge("stage.test_s", Determinism::WallClock);
  {
    const ScopedSpan span("stage.test", "stage", acc, 7.0);
    fake_now = 1000;
  }
  EXPECT_GE(acc.value(), 0.0);  // Wall clock: only sign is portable.
  if constexpr (kEnabled) {
    const auto events = telemetry.session().tracer().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[0].name, "stage.test");
    EXPECT_EQ(events[0].wall_us, 100u);
    EXPECT_EQ(events[0].dur_us, 900u);
    EXPECT_DOUBLE_EQ(events[0].sim_time, 7.0);
  }
}

TEST(Telemetry, ScopedSessionSwapsCurrentAndRestores) {
  Telemetry& original = current();
  {
    ScopedTelemetry scoped;
    EXPECT_EQ(&current(), &scoped.session());
    current().metrics().counter("scoped.count").inc();
    EXPECT_EQ(scoped.session().metrics().counter("scoped.count").value(), 1u);
  }
  EXPECT_EQ(&current(), &original);
}

}  // namespace
}  // namespace eecs::obs
