#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "obs/anomaly.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace eecs::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("a.count");
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);
  // Same name returns the same metric.
  EXPECT_EQ(&registry.counter("a.count"), &c);

  Gauge& g = registry.gauge("a.gauge");
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Metrics, ReRegistrationKindMismatchViolatesContract) {
  MetricsRegistry registry;
  (void)registry.counter("same.name");
  EXPECT_THROW((void)registry.gauge("same.name"), ContractViolation);
  EXPECT_THROW((void)registry.counter("same.name", Determinism::WallClock), ContractViolation);
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {0, 1, 4});
  h.observe(0.0);   // le_0: boundary value lands in its own bucket (le).
  h.observe(-2.0);  // le_0.
  h.observe(1.0);   // le_1: equality at bound.
  h.observe(0.5);   // le_1.
  h.observe(4.0);   // le_4.
  h.observe(4.5);   // overflow.
  h.observe(100.0); // overflow.
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 2u);  // Overflow bucket.
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 - 2.0 + 1.0 + 0.5 + 4.0 + 4.5 + 100.0);
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  const common::ScopedThreads threads(4);
  MetricsRegistry registry;
  Counter& c = registry.counter("par.count");
  Histogram& h = registry.histogram("par.hist", {10, 100});
  constexpr std::size_t kN = 10000;
  common::parallel_for_each(kN, [&](std::size_t i) {
    c.inc();
    h.observe(static_cast<double>(i % 7));  // Integer-valued: sum stays exact.
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.bucket(0), kN);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) expected_sum += static_cast<double>(i % 7);
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
}

TEST(Metrics, DeterministicSnapshotExcludesWallClock) {
  MetricsRegistry registry;
  registry.counter("det.count").inc(2);
  registry.gauge("wall.s", Determinism::WallClock).set(1.25);
  registry.histogram("det.hist", {1}).observe(1.0);
  const auto snap = registry.deterministic_snapshot();
  EXPECT_EQ(snap.count("wall.s"), 0u);
  EXPECT_DOUBLE_EQ(snap.at("det.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.le_1"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.overflow"), 0.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("det.hist.sum"), 1.0);
}

TEST(Metrics, DiffReportCoversKeyUnion) {
  MetricsRegistry::Snapshot before{{"only.before", 2.0}, {"both", 5.0}};
  MetricsRegistry::Snapshot after{{"both", 7.5}, {"only.after", 3.0}};
  EXPECT_EQ(MetricsRegistry::diff_report(before, after),
            "both=2.5\nonly.after=3\nonly.before=-2\n");
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = "e" + std::to_string(i);
    tracer.record(std::move(e));
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // Oldest surviving.
  EXPECT_EQ(events.back().name, "e5");
}

TEST(Tracer, JsonlGoldenWithInjectedClock) {
  Tracer tracer(8);
  std::uint64_t fake_now = 100;
  tracer.set_clock([&] { return fake_now; });

  TraceEvent instant;
  instant.cat = "round";
  instant.name = "round.select";
  instant.sim_time = 1200;
  instant.num_args = {{"cameras_active", 3}};
  tracer.record(std::move(instant));

  fake_now = 250;
  TraceEvent span;
  span.phase = 'X';
  span.wall_us = 100;  // Pre-stamped start, as ScopedSpan does.
  span.dur_us = 150;
  span.cat = "stage";
  span.name = "stage.detect";
  tracer.record(std::move(span));

  EXPECT_EQ(tracer.to_jsonl(),
            "{\"wall_us\": 100, \"ph\": \"i\", \"cat\": \"round\", \"name\": \"round.select\", "
            "\"args\": {\"sim_time\": 1200, \"cameras_active\": 3}}\n"
            "{\"wall_us\": 100, \"dur_us\": 150, \"ph\": \"X\", \"cat\": \"stage\", "
            "\"name\": \"stage.detect\", \"args\": {\"sim_time\": -1}}\n");
}

TEST(Tracer, ChromeTraceGoldenWithInjectedClock) {
  Tracer tracer(8);
  tracer.set_clock([] { return std::uint64_t{42}; });
  TraceEvent e;
  e.cat = "camera";
  e.name = "camera.dead";
  e.sim_time = 1500;
  e.num_args = {{"camera", 2}};
  tracer.record(std::move(e));

  EXPECT_EQ(tracer.to_chrome_trace(),
            "{\"traceEvents\": [\n"
            "  {\"name\": \"camera.dead\", \"cat\": \"camera\", \"ph\": \"i\", \"ts\": 42, "
            "\"s\": \"g\", \"pid\": 1, \"tid\": 1, "
            "\"args\": {\"sim_time\": 1500, \"camera\": 2}}\n"
            "]}\n");
}

TEST(Span, AccumulatesIntoGaugeAndEmitsCompleteEvent) {
  ScopedTelemetry telemetry;
  std::uint64_t fake_now = 100;
  telemetry.session().tracer().set_clock([&] { return fake_now; });
  Gauge& acc = telemetry.session().metrics().gauge("stage.test_s", Determinism::WallClock);
  {
    const ScopedSpan span("stage.test", "stage", acc, 7.0);
    fake_now = 1000;
  }
  EXPECT_GE(acc.value(), 0.0);  // Wall clock: only sign is portable.
  if constexpr (kEnabled) {
    const auto events = telemetry.session().tracer().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[0].name, "stage.test");
    EXPECT_EQ(events[0].wall_us, 100u);
    EXPECT_EQ(events[0].dur_us, 900u);
    EXPECT_DOUBLE_EQ(events[0].sim_time, 7.0);
  }
}

TEST(Telemetry, ScopedSessionSwapsCurrentAndRestores) {
  Telemetry& original = current();
  {
    ScopedTelemetry scoped;
    EXPECT_EQ(&current(), &scoped.session());
    current().metrics().counter("scoped.count").inc();
    EXPECT_EQ(scoped.session().metrics().counter("scoped.count").value(), 1u);
  }
  EXPECT_EQ(&current(), &original);
}

TEST(Quantile, EmptyHistogramIsNaN) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q.empty", {1, 2});
  EXPECT_TRUE(std::isnan(histogram_quantile(h, 0.5)));
}

TEST(Quantile, ExactBoundaryRankReturnsBucketBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q.boundary", {1, 2, 4});
  for (int i = 0; i < 4; ++i) h.observe(0.5);  // le_1.
  for (int i = 0; i < 4; ++i) h.observe(1.5);  // le_2.
  // rank = 0.5 * 8 = 4, exactly the first bucket's cumulative count: the
  // interpolation reaches the bucket's upper bound exactly.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.25), 0.5);  // Mid-first-bucket.
}

TEST(Quantile, SingleBucketInterpolatesFromZero) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q.single", {10});
  for (int i = 0; i < 5; ++i) h.observe(3.0);
  // rank = 2.5 of 5, all in [0, 10): 10 * 2.5/5.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 5.0);
}

TEST(Quantile, OverflowBucketClampsToHighestFiniteBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q.inf", {1, 2});
  h.observe(0.5);
  h.observe(50.0);
  h.observe(100.0);
  // p99 rank lands in the +Inf bucket; PromQL clamps to the last bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 2.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.5), 2.0);
}

TEST(Quantile, NoFiniteBoundsFallsBackToMean) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q.meanonly", {});
  h.observe(3.0);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.9), 4.0);
}

TEST(Exposition, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_name("net.tx.sent"), "net_tx_sent");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name("2fast"), "_2fast");
  EXPECT_EQ(prometheus_name("ns:metric"), "ns:metric");  // Colons are legal.
}

TEST(Exposition, TextFormatCoversAllKindsCumulatively) {
  MetricsRegistry registry;
  registry.counter("net.tx.sent").inc(4);
  registry.gauge("battery.residual").set(2.5);
  Histogram& h = registry.histogram("debit.joules", {1, 2});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE net_tx_sent counter\nnet_tx_sent 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE battery_residual gauge\nbattery_residual 2.5\n"),
            std::string::npos);
  // Buckets are cumulative and end with the mandatory +Inf bucket == count.
  EXPECT_NE(text.find("debit_joules_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("debit_joules_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("debit_joules_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("debit_joules_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("debit_joules_count 3\n"), std::string::npos);
}

/// Debit one camera the way the loop does: ledger and the result-style
/// accumulators see the same doubles in the same order, then the battery
/// drain mirrors with the summed debit.
void energy_like_debit(EnergyLedger& ledger, int camera, double cpu_j, double radio_j,
                       double& cpu_total, double& radio_total) {
  ledger.debit_cpu(camera, EnergyStage::Operation, 0, EnergyCause::Detect, cpu_j);
  ledger.debit_radio(camera, EnergyStage::Operation, 0, EnergyCause::Tx, radio_j);
  cpu_total += cpu_j;
  radio_total += radio_j;
  ledger.drain(camera, cpu_j + radio_j);
}

TEST(Ledger, ExactSumIsOrderIndependent) {
  const std::vector<double> values = {1.0e-7, 3.25, 0.125, 1.0e6, 2.5e-3, 42.0};
  ExactJoules forward;
  for (const double v : values) forward.add(v);
  ExactJoules backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.add(*it);
  EXPECT_EQ(forward, backward);
  EXPECT_FALSE(forward.inexact);
  // Zero adds are identity (the heartbeat/control-plane debits).
  ExactJoules with_zeros = forward;
  with_zeros.add(0.0);
  EXPECT_EQ(with_zeros, forward);
  // Negative / non-finite values poison the flag, not the sum.
  ExactJoules bad;
  bad.add(-1.0);
  EXPECT_TRUE(bad.inexact);
}

TEST(Ledger, ConservationHoldsAndFlagsDrift) {
  if constexpr (!kEnabled) GTEST_SKIP() << "ledger compiled out (EECS_OBS_OFF)";
  EnergyLedger ledger;
  ledger.begin_run({10.0, 10.0});
  ledger.set_round(0);
  double cpu = 0.0;
  double radio = 0.0;
  energy_like_debit(ledger, 0, 1.25, 0.5, cpu, radio);
  energy_like_debit(ledger, 1, 2.0, 0.25, cpu, radio);
  std::vector<double> residual = {10.0 - (1.25 + 0.5), 10.0 - (2.0 + 0.25)};
  EXPECT_TRUE(ledger.check(cpu, radio, residual).ok);
  // Any drift in any of the three views is reported.
  const auto drifted = ledger.check(cpu + 1e-9, radio, residual);
  EXPECT_FALSE(drifted.ok);
  EXPECT_NE(drifted.detail.find("cpu"), std::string::npos);
  residual[1] = 0.0;
  EXPECT_FALSE(ledger.check(cpu, radio, residual).ok);
}

TEST(Ledger, DrainClampMirrorsBattery) {
  if constexpr (!kEnabled) GTEST_SKIP() << "ledger compiled out (EECS_OBS_OFF)";
  EnergyLedger ledger;
  ledger.begin_run({1.0});
  ledger.drain(0, 0.75);
  EXPECT_DOUBLE_EQ(ledger.mirror_residual(0), 0.25);
  ledger.drain(0, 5.0);  // Over-drain clamps at zero, like energy::Battery.
  EXPECT_DOUBLE_EQ(ledger.mirror_residual(0), 0.0);
  ledger.restore_residual(0, 99.0);  // Restore clamps to capacity.
  EXPECT_DOUBLE_EQ(ledger.mirror_residual(0), 1.0);
}

TEST(Ledger, ExportImportRoundtripPreservesReport) {
  if constexpr (!kEnabled) GTEST_SKIP() << "ledger compiled out (EECS_OBS_OFF)";
  EnergyLedger ledger;
  ledger.begin_run({5.0});
  ledger.set_round(2);
  ledger.debit_cpu(0, EnergyStage::Operation, 1, EnergyCause::Detect, 1.5);
  ledger.debit_radio(0, EnergyStage::Operation, 1, EnergyCause::Tx, 0.125);
  ledger.drain(0, 1.625);
  EnergyLedger restored;
  restored.import_state(ledger.export_state());
  EXPECT_EQ(restored.report(), ledger.report());
  EXPECT_EQ(restored.cpu_total(), ledger.cpu_total());
  EXPECT_EQ(restored.mirror_residual(0), ledger.mirror_residual(0));
}

TEST(Flight, RingKeepsNewestRoundsOldestFirst) {
  FlightRecorder ring(3);
  for (int i = 0; i < 5; ++i) {
    FlightRound r;
    r.round = i;
    ring.record(r);
  }
  const std::vector<FlightRound> rounds = ring.rounds();
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0].round, 2);
  EXPECT_EQ(rounds[1].round, 3);
  EXPECT_EQ(rounds[2].round, 4);
}

TEST(Flight, JsonlRoundtripPreservesEveryField) {
  FlightRecorder ring(4);
  FlightRound r;
  r.round = 7;
  r.sim_time_s = 1234.5;
  r.selected = 3;
  r.assignments = 4;
  r.pending = 1;
  r.deadline_misses = 2;
  r.watchdog_strikes = 5;
  r.messages_sent = 200;
  r.messages_lost = 40;
  r.cpu_joules = 85.035178699999959;  // Full-precision survives %.17g.
  r.radio_joules = 0.22526239999999992;
  r.anomalies = 1;
  r.rungs = {0, 2, 1};
  r.residual_j = {93.760678967999979, 0.0, 42.5};
  ring.record(r);
  const FlightDump dump = parse_flight_jsonl(ring.to_jsonl("watchdog_strike"));
  EXPECT_EQ(dump.version, 1);
  EXPECT_EQ(dump.reason, "watchdog_strike");
  EXPECT_EQ(dump.capacity, 4);
  ASSERT_EQ(dump.rounds.size(), 1u);
  const FlightRound& p = dump.rounds[0];
  EXPECT_EQ(p.round, r.round);
  EXPECT_EQ(p.sim_time_s, r.sim_time_s);
  EXPECT_EQ(p.selected, r.selected);
  EXPECT_EQ(p.assignments, r.assignments);
  EXPECT_EQ(p.pending, r.pending);
  EXPECT_EQ(p.deadline_misses, r.deadline_misses);
  EXPECT_EQ(p.watchdog_strikes, r.watchdog_strikes);
  EXPECT_EQ(p.messages_sent, r.messages_sent);
  EXPECT_EQ(p.messages_lost, r.messages_lost);
  EXPECT_EQ(p.cpu_joules, r.cpu_joules);  // Bit-exact through the JSONL.
  EXPECT_EQ(p.radio_joules, r.radio_joules);
  EXPECT_EQ(p.anomalies, r.anomalies);
  EXPECT_EQ(p.rungs, r.rungs);
  EXPECT_EQ(p.residual_j, r.residual_j);
}

TEST(Flight, MalformedDumpThrows) {
  EXPECT_THROW((void)parse_flight_jsonl(""), common::JsonError);
  EXPECT_THROW((void)parse_flight_jsonl("{\"not\": \"a header\"}\n"), common::JsonError);
  EXPECT_THROW(
      (void)parse_flight_jsonl("{\"flight\": 2, \"reason\": \"x\", \"capacity\": 1, \"rounds\": 0}\n"),
      common::JsonError);
}

TEST(Anomaly, BurnRateNeedsFullWindowThenFlags) {
  if (!kEnabled) GTEST_SKIP() << "detector compiled out (EECS_OBS_OFF)";
  AnomalyOptions options;
  options.window_rounds = 2;
  options.burn_rate_milli = 3000;  // 3x the window mean.
  AnomalyDetector detector(options, 1);
  RoundObservation ob;
  ob.camera_joules = {1.0};
  ob.round = 0;
  EXPECT_TRUE(detector.observe(ob).empty());  // Window not full yet.
  ob.round = 1;
  EXPECT_TRUE(detector.observe(ob).empty());
  ob.round = 2;
  ob.camera_joules = {10.0};  // 10x the mean of {1, 1}.
  const std::vector<Anomaly> findings = detector.observe(ob);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, Anomaly::Kind::BurnRate);
  EXPECT_EQ(findings[0].camera, 0);
  EXPECT_TRUE(detector.flagged(0));
  // A calm round clears the advisory flag.
  ob.round = 3;
  ob.camera_joules = {1.0};
  (void)detector.observe(ob);
  EXPECT_FALSE(detector.flagged(0));
}

TEST(Anomaly, LossRateNeedsMinimumTraffic) {
  if (!kEnabled) GTEST_SKIP() << "detector compiled out (EECS_OBS_OFF)";
  AnomalyOptions options;
  options.loss_rate_milli = 500;
  options.loss_min_messages = 8;
  AnomalyDetector detector(options, 0);
  RoundObservation ob;
  ob.round = 0;
  ob.messages_sent = 4;
  ob.messages_lost = 4;  // 100% loss but below the traffic floor.
  EXPECT_TRUE(detector.observe(ob).empty());
  ob.round = 1;
  ob.messages_sent = 10;
  ob.messages_lost = 9;  // Window: 13/14 lost, over the floor now.
  const std::vector<Anomaly> findings = detector.observe(ob);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, Anomaly::Kind::LossRate);
  EXPECT_EQ(findings[0].camera, -1);  // Network-wide.
}

TEST(Anomaly, LatencyCountsWindowMisses) {
  if (!kEnabled) GTEST_SKIP() << "detector compiled out (EECS_OBS_OFF)";
  AnomalyOptions options;
  options.latency_miss_rounds = 2;
  AnomalyDetector detector(options, 0);
  RoundObservation ob;
  ob.round = 0;
  ob.deadline_misses = 1;
  EXPECT_TRUE(detector.observe(ob).empty());
  ob.round = 1;
  const std::vector<Anomaly> findings = detector.observe(ob);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, Anomaly::Kind::Latency);
  EXPECT_DOUBLE_EQ(findings[0].value, 2.0);
}

TEST(Anomaly, ExportImportReplaysIdenticalFindings) {
  if (!kEnabled) GTEST_SKIP() << "detector compiled out (EECS_OBS_OFF)";
  AnomalyOptions options;
  options.window_rounds = 2;
  AnomalyDetector a(options, 1);
  RoundObservation ob;
  ob.camera_joules = {1.0};
  for (int round = 0; round < 2; ++round) {
    ob.round = round;
    (void)a.observe(ob);
  }
  AnomalyDetector b(options, 1);
  b.import_state(a.export_state());
  ob.round = 2;
  ob.camera_joules = {25.0};
  const auto from_a = a.observe(ob);
  const auto from_b = b.observe(ob);
  ASSERT_EQ(from_a.size(), from_b.size());
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_a[0].value, from_b[0].value);
  EXPECT_EQ(from_a[0].threshold, from_b[0].threshold);
  EXPECT_EQ(a.flagged(0), b.flagged(0));
}

}  // namespace
}  // namespace eecs::obs
