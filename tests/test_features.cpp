#include <gtest/gtest.h>

#include <cmath>

#include "features/bow.hpp"
#include "features/census.hpp"
#include "features/color_feature.hpp"
#include "features/frame_feature.hpp"
#include "features/hog.hpp"
#include "features/keypoints.hpp"
#include "imaging/draw.hpp"
#include "imaging/filter.hpp"

namespace eecs::features {
namespace {

using imaging::Color;
using imaging::Image;

double l2(std::span<const float> v) {
  double s = 0;
  for (float x : v) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

Image edge_image(int w = 64, int h = 64) {
  Image img(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) img.at(x, y) = 1.0f;
  }
  return img;
}

TEST(Hog, GridDimensionsFollowCellSize) {
  const HogGrid grid = compute_hog_grid(Image(64, 48, 1));
  EXPECT_EQ(grid.cells_x(), 8);
  EXPECT_EQ(grid.cells_y(), 6);
  EXPECT_EQ(grid.bins(), 9);
}

TEST(Hog, FlatImageHasEmptyHistograms) {
  Image img(32, 32, 1);
  img.fill(0.5f);
  const HogGrid grid = compute_hog_grid(img);
  for (float v : grid.cell(1, 1)) EXPECT_EQ(v, 0.0f);
}

TEST(Hog, VerticalEdgeActivatesHorizontalGradientBin) {
  const HogGrid grid = compute_hog_grid(edge_image());
  // The edge at x=32 falls into cells at cx=3/4; gradient is horizontal,
  // orientation ~0 -> first/last bins.
  const auto hist = grid.cell(3, 3);
  float edge_mass = hist[0] + hist[8];
  float mid_mass = hist[4];
  EXPECT_GT(edge_mass, mid_mass);
  EXPECT_GT(edge_mass, 0.0f);
}

TEST(Hog, WindowDescriptorSizeFormula) {
  EXPECT_EQ(window_descriptor_size(6, 12), 5 * 11 * 4 * 9);
  EXPECT_EQ(window_descriptor_size(2, 2), 1 * 1 * 4 * 9);
}

TEST(Hog, WindowDescriptorBlocksAreL2HysNormalized) {
  const HogGrid grid = compute_hog_grid(edge_image());
  const auto desc = window_descriptor(grid, 0, 0, 4, 4);
  ASSERT_EQ(static_cast<int>(desc.size()), window_descriptor_size(4, 4));
  // Each 36-float block has norm <= 1 (plus epsilon); after the clip-and-
  // renormalize of L2-hys individual entries stay within [0, 1].
  for (std::size_t b = 0; b < desc.size() / 36; ++b) {
    const std::span<const float> block(desc.data() + b * 36, 36);
    EXPECT_LE(l2(block), 1.0 + 1e-4);
    for (float v : block) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Hog, WindowOutsideGridViolatesContract) {
  const HogGrid grid = compute_hog_grid(Image(64, 64, 1));
  EXPECT_THROW((void)window_descriptor(grid, 5, 5, 6, 6), ContractViolation);
}

TEST(Hog, GlobalDescriptorIsUnitNorm) {
  const auto desc = global_descriptor(edge_image(), 4, 4);
  EXPECT_EQ(desc.size(), 4u * 4u * 9u);
  EXPECT_NEAR(l2(desc), 1.0, 1e-4);
}

TEST(Hog, CostCounterCharged) {
  energy::CostCounter cost;
  (void)compute_hog_grid(Image(64, 64, 1), {}, &cost);
  EXPECT_GT(cost.pixel_ops, 0u);
  EXPECT_GT(cost.feature_ops, 0u);
}

TEST(Keypoints, BlobIsDetected) {
  Image img(64, 64, 1);
  img.fill(0.2f);
  imaging::fill_ellipse(img, {28, 28, 10, 10}, Color{1, 1, 1});
  const auto kps = detect_keypoints(img);
  ASSERT_FALSE(kps.empty());
  // Strongest keypoint near the blob.
  EXPECT_NEAR(kps.front().x, 33.0, 8.0);
  EXPECT_NEAR(kps.front().y, 33.0, 8.0);
}

TEST(Keypoints, FlatImageHasNone) {
  Image img(64, 64, 1);
  img.fill(0.5f);
  EXPECT_TRUE(detect_keypoints(img).empty());
}

TEST(Keypoints, DescriptorIsUnitNormAnd64d) {
  Image img(64, 64, 1);
  img.fill(0.2f);
  imaging::fill_rect(img, {20, 20, 12, 20}, Color{0.9f, 0.9f, 0.9f});
  const auto desc = describe_keypoint(img, {26, 30, 2, 1});
  ASSERT_EQ(desc.size(), static_cast<std::size_t>(kDescriptorDim));
  EXPECT_NEAR(l2(desc), 1.0, 1e-4);
}

TEST(Keypoints, MaxKeypointsCapRespected) {
  Image img(128, 128, 1);
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) img.at(x, y) = imaging::hash_noise(x / 4, y / 4, 1u);
  }
  KeypointParams params;
  params.max_keypoints = 10;
  EXPECT_LE(detect_keypoints(img, params).size(), 10u);
}

TEST(Bow, EncodeIsL1NormalizedHistogram) {
  Rng rng(1);
  std::vector<std::vector<float>> descriptors;
  for (int i = 0; i < 40; ++i) {
    std::vector<float> d(8, 0.0f);
    d[static_cast<std::size_t>(i % 4)] = 1.0f;
    d[4] = 0.01f * static_cast<float>(i);
    descriptors.push_back(d);
  }
  const BowVocabulary vocab(descriptors, 4, rng);
  EXPECT_EQ(vocab.words(), 4);
  const auto hist = vocab.encode(descriptors);
  float sum = 0;
  for (float v : hist) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(Bow, EmptyDescriptorsGiveZeroHistogram) {
  Rng rng(1);
  std::vector<std::vector<float>> descriptors(10, std::vector<float>(8, 1.0f));
  descriptors[3][2] = -1.0f;
  const BowVocabulary vocab(descriptors, 2, rng);
  const auto hist = vocab.encode({});
  for (float v : hist) EXPECT_EQ(v, 0.0f);
}

TEST(Census, FlatRegionsCollapseToZeroCode) {
  Image img(16, 16, 1);
  img.fill(0.5f);
  const auto codes = census_transform(img);
  for (auto c : codes) EXPECT_EQ(c, 0);
}

TEST(Census, EdgeProducesStructuredCodes) {
  const auto codes = census_transform(edge_image(16, 16));
  bool any_nonzero = false;
  for (auto c : codes) any_nonzero |= (c != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Census, OnePixelAndOddWidthImages) {
  // Edge clamping must hold for widths that leave 0..3 tail columns after the
  // 4-lane interior, including the degenerate 1x1 image (all neighbors clamp
  // to the center pixel, so every comparison fails and the code is 0).
  for (int w : {1, 2, 3, 5, 6, 7, 9}) {
    Image img(w, 3, 1);
    img.fill(0.25f);
    const auto flat = census_transform(img);
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(w) * 3);
    for (auto c : flat) EXPECT_EQ(c, 0);

    // A bright last column: its left neighbors see a brighter pixel to the
    // right, so the (1,0) bit (value 16) must be set in column w-2.
    if (w >= 2) {
      Image edge(w, 3, 1);
      edge.fill(0.25f);
      for (int y = 0; y < 3; ++y) edge.at(w - 1, y) = 1.0f;
      const auto codes = census_transform(edge);
      EXPECT_NE(codes[static_cast<std::size_t>(w) + static_cast<std::size_t>(w - 2)] & 16u, 0u);
    }
  }
}

TEST(Hog, OddCellSizeBinsAllPixels) {
  // cell_size 5 exercises the 1-pixel lane tail in the cell-row binning; the
  // histogram mass of each cell equals the sum of its pixel magnitudes.
  HogParams params;
  params.cell_size = 5;
  const Image img = edge_image(15, 10);
  const auto grads = imaging::compute_gradients(img);
  const HogGrid grid = compute_hog_grid(img, params);
  ASSERT_EQ(grid.cells_x(), 3);
  ASSERT_EQ(grid.cells_y(), 2);
  for (int cy = 0; cy < grid.cells_y(); ++cy) {
    for (int cx = 0; cx < grid.cells_x(); ++cx) {
      double mass = 0.0;
      for (float v : grid.cell(cx, cy)) mass += v;
      double mag = 0.0;
      for (int dy = 0; dy < 5; ++dy) {
        for (int dx = 0; dx < 5; ++dx) {
          const float m = grads.magnitude.at(cx * 5 + dx, cy * 5 + dy);
          if (m > 0.0f) mag += m;
        }
      }
      EXPECT_NEAR(mass, mag, 1e-4) << cx << "," << cy;
    }
  }
}

TEST(Census, WindowDescriptorNormalizedAndSized) {
  const Image img = edge_image(64, 96);
  const auto codes = census_transform(img);
  const auto desc = census_window_descriptor(codes, 64, 96, 0, 0, 48, 96);
  ASSERT_EQ(static_cast<int>(desc.size()), census_descriptor_size());
  EXPECT_NEAR(l2(desc), 1.0, 1e-4);
}

TEST(ColorFeature, DimensionAndRange) {
  Image img(40, 80, 3);
  img.fill_channel(0, 0.8f);
  img.fill_channel(1, 0.2f);
  const auto feat = color_feature(img, {0, 0, 40, 80});
  ASSERT_EQ(feat.size(), static_cast<std::size_t>(kColorFeatureDim));
  // First band mean R should be ~0.8, mean G ~0.2, stddevs ~0.
  EXPECT_NEAR(feat[0], 0.8f, 1e-4);
  EXPECT_NEAR(feat[1], 0.2f, 1e-4);
  EXPECT_NEAR(feat[3], 0.0f, 1e-4);
}

TEST(ColorFeature, HistogramSumsToOne) {
  Image img(20, 20, 3);
  img.fill(0.5f);
  const auto feat = color_feature(img, {0, 0, 20, 20});
  float sum = 0;
  for (int b = 30; b < 40; ++b) sum += feat[static_cast<std::size_t>(b)];
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(ColorFeature, EmptyRegionIsZero) {
  Image img(20, 20, 3);
  img.fill(0.5f);
  const auto feat = color_feature(img, {30, 30, 5, 5});
  for (float v : feat) EXPECT_EQ(v, 0.0f);
}

TEST(ColorFeature, DistinguishesShirtColors) {
  Image red(20, 40, 3), blue(20, 40, 3);
  red.fill_channel(0, 0.9f);
  blue.fill_channel(2, 0.9f);
  const auto fr = color_feature(red, {0, 0, 20, 40});
  const auto fb = color_feature(blue, {0, 0, 20, 40});
  double diff = 0;
  for (std::size_t i = 0; i < fr.size(); ++i) diff += std::abs(fr[i] - fb[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(FrameFeature, DimensionMatchesConfiguration) {
  Rng rng(3);
  std::vector<Image> vocab_frames;
  for (int i = 0; i < 2; ++i) {
    Image img(96, 96, 3);
    for (int y = 0; y < 96; ++y) {
      for (int x = 0; x < 96; ++x) {
        const float v = imaging::hash_noise(x / 3, y / 3, static_cast<unsigned>(i));
        for (int c = 0; c < 3; ++c) img.at(x, y, c) = v;
      }
    }
    vocab_frames.push_back(img);
  }
  FrameFeatureParams params;
  params.bow_words = 8;
  const FrameFeatureExtractor extractor(vocab_frames, params, rng);
  EXPECT_EQ(extractor.dimension(), 4 * 4 * 9 + 8 + 16);
  const auto feat = extractor.extract(vocab_frames[0]);
  EXPECT_EQ(static_cast<int>(feat.size()), extractor.dimension());
}

}  // namespace
}  // namespace eecs::features
