#include <gtest/gtest.h>

#include <cmath>

#include "imaging/draw.hpp"
#include "imaging/filter.hpp"
#include "imaging/image.hpp"
#include "imaging/integral.hpp"
#include "imaging/jpeg_model.hpp"
#include "imaging/rect.hpp"

namespace eecs::imaging {
namespace {

TEST(Rect, BasicGeometry) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.right(), 40.0);
  EXPECT_EQ(r.bottom(), 60.0);
  EXPECT_EQ(r.area(), 1200.0);
  EXPECT_EQ(r.center_x(), 25.0);
  EXPECT_EQ(r.foot_y(), 60.0);
  EXPECT_TRUE(r.contains(15, 25));
  EXPECT_FALSE(r.contains(45, 25));
}

TEST(Rect, EmptyRectHasZeroArea) {
  EXPECT_EQ(Rect{}.area(), 0.0);
  EXPECT_EQ((Rect{0, 0, -5, 10}).area(), 0.0);
}

TEST(Rect, IntersectionOfOverlapping) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  const Rect i = intersect(a, b);
  EXPECT_EQ(i.x, 5.0);
  EXPECT_EQ(i.y, 5.0);
  EXPECT_EQ(i.w, 5.0);
  EXPECT_EQ(i.h, 5.0);
}

TEST(Rect, DisjointIntersectionIsEmpty) {
  EXPECT_EQ(intersect({0, 0, 5, 5}, {6, 6, 5, 5}).area(), 0.0);
}

TEST(Rect, IouProperties) {
  const Rect a{0, 0, 10, 10};
  EXPECT_NEAR(iou(a, a), 1.0, 1e-12);
  EXPECT_EQ(iou(a, {20, 20, 5, 5}), 0.0);
  // Half-overlap: inter=50, union=150.
  EXPECT_NEAR(iou(a, {5, 0, 10, 10}), 50.0 / 150.0, 1e-12);
}

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  img.fill(0.5f);
  EXPECT_EQ(img.at(2, 1, 2), 0.5f);
  img.fill_channel(0, 1.0f);
  EXPECT_EQ(img.at(0, 0, 0), 1.0f);
  EXPECT_EQ(img.at(0, 0, 1), 0.5f);
}

TEST(Image, InvalidChannelCountViolatesContract) {
  EXPECT_THROW(Image(2, 2, 2), ContractViolation);
  EXPECT_THROW(Image(2, 2, 0), ContractViolation);
}

TEST(Image, ClampedAccessAtBorders) {
  Image img(2, 2, 1);
  img.at(0, 0) = 1.0f;
  img.at(1, 1) = 2.0f;
  EXPECT_EQ(img.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(img.at_clamped(10, 10), 2.0f);
}

TEST(Image, CropClampsToBounds) {
  Image img(10, 10, 1);
  img.at(9, 9) = 3.0f;
  const Image c = img.crop(8, 8, 5, 5);
  EXPECT_EQ(c.width(), 2);
  EXPECT_EQ(c.height(), 2);
  EXPECT_EQ(c.at(1, 1), 3.0f);
}

TEST(Image, ToGrayUsesLumaWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 1.0f;  // Pure red.
  const Image g = to_gray(img);
  EXPECT_EQ(g.channels(), 1);
  EXPECT_NEAR(g.at(0, 0), 0.299f, 1e-6);
}

TEST(Image, AdjustBrightnessClamps) {
  Image img(1, 1, 1);
  img.at(0, 0) = 0.8f;
  EXPECT_EQ(adjust_brightness(img, 2.0f, 0.0f).at(0, 0), 1.0f);
  EXPECT_EQ(adjust_brightness(img, 1.0f, -1.0f).at(0, 0), 0.0f);
  EXPECT_NEAR(adjust_brightness(img, 0.5f, 0.1f).at(0, 0), 0.5f, 1e-6);
}

TEST(Filter, BoxBlurPreservesConstantImage) {
  Image img(8, 8, 1);
  img.fill(0.25f);
  const Image b = box_blur(img, 2);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_NEAR(b.at(x, y), 0.25f, 1e-6);
  }
}

TEST(Filter, GaussianBlurSmoothsImpulse) {
  Image img(9, 9, 1);
  img.at(4, 4) = 1.0f;
  const Image b = gaussian_blur(img, 1.0f);
  EXPECT_LT(b.at(4, 4), 1.0f);
  EXPECT_GT(b.at(4, 4), b.at(3, 4));
  EXPECT_GT(b.at(3, 4), 0.0f);
  // Symmetric response.
  EXPECT_NEAR(b.at(3, 4), b.at(5, 4), 1e-6);
  EXPECT_NEAR(b.at(4, 3), b.at(4, 5), 1e-6);
}

TEST(Filter, GradientOfVerticalEdge) {
  // Left half dark, right half bright: gradient is horizontal.
  Image img(10, 10, 1);
  for (int y = 0; y < 10; ++y) {
    for (int x = 5; x < 10; ++x) img.at(x, y) = 1.0f;
  }
  const Gradients g = compute_gradients(img);
  EXPECT_GT(g.magnitude.at(5, 5), 0.3f);
  EXPECT_NEAR(g.magnitude.at(2, 5), 0.0f, 1e-6);
  // Horizontal gradient direction => orientation ~0 (mod pi).
  const float theta = g.orientation.at(5, 5);
  EXPECT_TRUE(theta < 0.1f || theta > 3.0f) << theta;
}

TEST(Filter, ResizePreservesConstant) {
  Image img(6, 4, 3);
  img.fill(0.7f);
  const Image r = resize(img, 13, 9);
  EXPECT_EQ(r.width(), 13);
  EXPECT_EQ(r.height(), 9);
  EXPECT_NEAR(r.at(6, 4, 1), 0.7f, 1e-6);
}

TEST(Filter, ResizeDownPreservesMeanApproximately) {
  Image img(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.at(x, y) = static_cast<float>(x) / 15.0f;
  }
  const Image r = resize(img, 8, 8);
  EXPECT_NEAR(channel_mean(r, 0), channel_mean(img, 0), 0.02f);
}

TEST(Filter, BlockDownsampleAverages) {
  Image img(4, 4, 1);
  img.at(0, 0) = 1.0f;
  img.at(1, 0) = 1.0f;
  img.at(0, 1) = 1.0f;
  img.at(1, 1) = 1.0f;
  const Image d = block_downsample(img, 2);
  EXPECT_EQ(d.width(), 2);
  EXPECT_EQ(d.height(), 2);
  EXPECT_NEAR(d.at(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(d.at(1, 1), 0.0f, 1e-6);
}

TEST(Filter, ResizeOnePixelImageBroadcasts) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 0.2f;
  img.at(0, 0, 1) = 0.4f;
  img.at(0, 0, 2) = 0.9f;
  const Image r = resize(img, 7, 5);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 5; ++y) {
      // All four bilinear corners are the same pixel; the weighted sum can
      // round in the last ulp, so near-equality is the contract here.
      for (int x = 0; x < 7; ++x) EXPECT_NEAR(r.at(x, y, c), img.at(0, 0, c), 1e-6f);
    }
  }
}

TEST(Filter, ResizeOddWidthsInterpolateWithinRange) {
  // Tail-lane geometries: output widths around the 4-lane boundary must stay
  // within the convex hull of the source values (bilinear property).
  Image img(9, 3, 1);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 9; ++x) img.at(x, y) = static_cast<float>(x) / 8.0f;
  }
  for (int nw : {1, 2, 3, 5, 6, 7}) {
    const Image r = resize(img, nw, 3);
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < nw; ++x) {
        EXPECT_GE(r.at(x, y), 0.0f);
        EXPECT_LE(r.at(x, y), 1.0f);
      }
    }
    // Monotone source rows stay monotone under bilinear resampling.
    for (int x = 1; x < nw; ++x) EXPECT_LE(r.at(x - 1, 0), r.at(x, 0));
  }
}

TEST(Filter, GradientsOfOnePixelImageAreZero) {
  Image img(1, 1, 1);
  img.at(0, 0) = 0.6f;
  const Gradients g = compute_gradients(img);
  EXPECT_EQ(g.magnitude.at(0, 0), 0.0f);
}

TEST(Integral, RectSumMatchesBruteForce) {
  Image img(7, 5, 1);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) img.at(x, y) = static_cast<float>(x + 10 * y);
  }
  const IntegralImage ii(img);
  double brute = 0.0;
  for (int y = 1; y < 4; ++y) {
    for (int x = 2; x < 6; ++x) brute += img.at(x, y);
  }
  EXPECT_NEAR(ii.rect_sum(2, 1, 6, 4), brute, 1e-9);
}

TEST(Integral, FullImageSum) {
  Image img(3, 3, 1);
  img.fill(2.0f);
  const IntegralImage ii(img);
  EXPECT_NEAR(ii.rect_sum(0, 0, 3, 3), 18.0, 1e-9);
}

TEST(Integral, OutOfBoundsClampsAndEmptyIsZero) {
  Image img(3, 3, 1);
  img.fill(1.0f);
  const IntegralImage ii(img);
  EXPECT_NEAR(ii.rect_sum(-5, -5, 10, 10), 9.0, 1e-9);
  EXPECT_EQ(ii.rect_sum(2, 2, 2, 2), 0.0);
  EXPECT_EQ(ii.rect_mean(3, 3, 2, 2), 0.0);
}

TEST(Integral, RectMean) {
  Image img(4, 4, 1);
  img.fill(0.5f);
  const IntegralImage ii(img);
  EXPECT_NEAR(ii.rect_mean(0, 0, 4, 2), 0.5, 1e-9);
}

TEST(Integral, OddAndDegenerateGeometries) {
  // Widths/heights around the 2-row lane blocking, including 1-pixel images.
  for (int w : {1, 2, 3, 5, 17}) {
    for (int h : {1, 2, 3, 5, 17}) {
      Image img(w, h, 1);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) img.at(x, y) = static_cast<float>(1 + x + y * w);
      }
      const IntegralImage ii(img);
      double brute = 0.0;
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) brute += img.at(x, y);
      }
      EXPECT_NEAR(ii.rect_sum(0, 0, w, h), brute, 1e-9) << w << "x" << h;
      EXPECT_NEAR(ii.rect_sum(0, 0, 1, 1), img.at(0, 0), 1e-12);
    }
  }
}

TEST(Draw, FillRectCoversExactPixels) {
  Image img(10, 10, 3);
  fill_rect(img, {2, 3, 4, 2}, Color{1.0f, 0.0f, 0.0f});
  EXPECT_EQ(img.at(2, 3, 0), 1.0f);
  EXPECT_EQ(img.at(5, 4, 0), 1.0f);
  EXPECT_EQ(img.at(6, 4, 0), 0.0f);
  EXPECT_EQ(img.at(2, 2, 0), 0.0f);
}

TEST(Draw, AlphaBlending) {
  Image img(2, 2, 1);
  img.fill(0.0f);
  fill_rect(img, {0, 0, 2, 2}, Color{1.0f, 1.0f, 1.0f}, 0.5f);
  EXPECT_NEAR(img.at(0, 0), 0.5f, 1e-6);
}

TEST(Draw, EllipseStaysWithinBoundingBox) {
  Image img(20, 20, 1);
  fill_ellipse(img, {5, 5, 10, 10}, Color{1, 1, 1});
  EXPECT_GT(img.at(10, 10), 0.9f);   // Center.
  EXPECT_EQ(img.at(5, 5), 0.0f);     // Box corner is outside the ellipse.
  EXPECT_EQ(img.at(4, 10), 0.0f);    // Outside the box entirely.
}

TEST(Draw, ClipsToImageBounds) {
  Image img(4, 4, 1);
  EXPECT_NO_THROW(fill_rect(img, {-10, -10, 100, 100}, Color{1, 1, 1}));
  EXPECT_EQ(img.at(3, 3), 1.0f);
}

TEST(Draw, HashNoiseDeterministicAndBounded) {
  for (int i = 0; i < 100; ++i) {
    const float v = hash_noise(i, 2 * i, 7u);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    EXPECT_EQ(v, hash_noise(i, 2 * i, 7u));
  }
  EXPECT_NE(hash_noise(1, 1, 1u), hash_noise(1, 1, 2u));
}

TEST(Draw, FractalNoiseBounded) {
  for (int i = 0; i < 50; ++i) {
    const float v = fractal_noise(static_cast<float>(i) * 0.37f, static_cast<float>(i) * 0.11f, 3u);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Draw, TextureModulatesRegionOnly) {
  Image img(10, 10, 1);
  img.fill(0.5f);
  apply_texture(img, {0, 0, 5, 10}, 1u, 0.8f, 3.0f);
  // Right half untouched.
  for (int y = 0; y < 10; ++y) EXPECT_EQ(img.at(7, y), 0.5f);
  // Left half modified somewhere.
  bool changed = false;
  for (int y = 0; y < 10 && !changed; ++y) {
    for (int x = 0; x < 5 && !changed; ++x) changed = std::abs(img.at(x, y) - 0.5f) > 1e-4f;
  }
  EXPECT_TRUE(changed);
}

TEST(JpegModel, FlatImageSmallerThanTexturedImage) {
  const JpegModel model;
  Image flat(64, 64, 1);
  flat.fill(0.5f);
  Image textured = flat;
  apply_texture(textured, {0, 0, 64, 64}, 5u, 1.5f, 2.0f);
  EXPECT_LT(model.frame_bytes(flat), model.frame_bytes(textured));
}

TEST(JpegModel, BytesScaleWithResolution) {
  const JpegModel model;
  Image small(32, 32, 1);
  Image large(128, 128, 1);
  small.fill(0.5f);
  large.fill(0.5f);
  apply_texture(small, {0, 0, 32, 32}, 5u, 1.0f, 2.0f);
  apply_texture(large, {0, 0, 128, 128}, 5u, 1.0f, 2.0f);
  EXPECT_GT(model.frame_bytes(large), 4 * (model.frame_bytes(small) - model.header_bytes));
}

TEST(JpegModel, RegionBytesSmallerThanFrame) {
  const JpegModel model;
  Image img(100, 100, 3);
  img.fill(0.3f);
  apply_texture(img, {0, 0, 100, 100}, 9u, 1.0f, 4.0f);
  EXPECT_LT(model.region_bytes(img, {10, 10, 20, 20}), model.frame_bytes(img));
}

}  // namespace
}  // namespace eecs::imaging
