// Durable-runtime layer: snapshot container integrity, checkpoint
// encode/decode hardening (truncation + corruption fuzz), deterministic
// retry backoff with jitter, ack semantics (late acks counted, never
// re-applied), liveness, the round watchdog, the graceful-degradation
// ladder, FaultPlan validation, and end-to-end checkpoint/resume
// bit-exactness of the closed loop.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/simulation.hpp"
#include "net/fault.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/deadline.hpp"
#include "runtime/degradation.hpp"
#include "runtime/protocol.hpp"
#include "runtime/snapshot.hpp"

namespace eecs {
namespace {

using runtime::AssignmentRetryQueue;
using runtime::DegradationLadder;
using runtime::DegradationPolicy;
using runtime::DegradationRung;
using runtime::LivenessTracker;
using runtime::RetryPolicy;
using runtime::RoundWatchdog;
using runtime::SimulationCheckpoint;
using runtime::SnapshotError;

// ---------------------------------------------------------------- Snapshot

TEST(Snapshot, SectionRoundtripPreservesPayloads) {
  runtime::SnapshotWriter w;
  w.section("alpha").write_u32(0xdeadbeef);
  ByteWriter& beta = w.section("beta");
  beta.write_f64(3.25);
  beta.write_string("hello");
  const std::vector<std::uint8_t> bytes = w.finish();

  const runtime::SnapshotReader r(bytes);
  EXPECT_EQ(r.version(), runtime::kSnapshotVersion);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  ByteReader alpha = r.open("alpha");
  EXPECT_EQ(alpha.read_u32(), 0xdeadbeefu);
  ByteReader b = r.open("beta");
  EXPECT_EQ(b.read_f64(), 3.25);
  EXPECT_EQ(b.read_string(), "hello");
  EXPECT_THROW((void)r.open("gamma"), SnapshotError);
}

TEST(Snapshot, UnknownSectionsAreSkippedForForwardCompatibility) {
  runtime::SnapshotWriter w;
  w.section("known").write_i32(7);
  w.section("from_the_future").write_u64(0x123456789abcdef0ull);
  const std::vector<std::uint8_t> bytes = w.finish();
  const runtime::SnapshotReader r(bytes);
  EXPECT_EQ(r.open("known").read_i32(), 7);
}

TEST(Snapshot, BadMagicAndFutureVersionAreRejected) {
  runtime::SnapshotWriter w;
  w.section("s").write_u8(1);
  std::vector<std::uint8_t> bytes = w.finish();

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(runtime::SnapshotReader{bad_magic}, SnapshotError);

  std::vector<std::uint8_t> future = bytes;
  future[4] = static_cast<std::uint8_t>(runtime::kSnapshotVersion + 1);
  EXPECT_THROW(runtime::SnapshotReader{future}, SnapshotError);
}

TEST(Snapshot, PayloadCorruptionFailsTheSectionCrc) {
  runtime::SnapshotWriter w;
  ByteWriter& s = w.section("data");
  for (int i = 0; i < 64; ++i) s.write_u8(static_cast<std::uint8_t>(i));
  std::vector<std::uint8_t> bytes = w.finish();
  bytes.back() ^= 0x01;  // Last payload byte.
  EXPECT_THROW(runtime::SnapshotReader{bytes}, SnapshotError);
}

TEST(Snapshot, MissingFileThrowsSnapshotError) {
  EXPECT_THROW((void)runtime::read_snapshot_file("does_not_exist.snap"), SnapshotError);
}

// -------------------------------------------------------------- Checkpoint

SimulationCheckpoint sample_checkpoint() {
  SimulationCheckpoint ck;
  ck.guard = {1, 777, 0, 1000, 2950, 4, 20, 1, 2, 3.0, 1.0e5};
  ck.frame_index = 1600;
  ck.rounds_completed = 1;
  ck.cpu_joules = 12.5;
  ck.radio_joules = 0.75;
  ck.humans_detected = 42;
  ck.humans_present = 50;
  ck.gt_frames_processed = 24;
  ck.windows_evaluated = 716720;
  ck.windows_pruned = 348144;
  ck.rounds.push_back({1400, 10.5, 0.9, 10.0, 0.88, 2, "cam0:HOG cam1:ACF", 0});
  ck.fault_counters = {10, 2, 1, 0, 0, 0, 0, 0, 0, 0, 4, 3, 0, 0, 1, 0, 0, 0, 0, 0};
  ck.cameras.push_back({55.0, 1, 1, 0, -1.25, 3, 0, {0, 0, 0}});
  ck.cameras.push_back({44.0, 1, 0, 1, 0.5, 4, 1, {1, 2, 0}});
  ck.registrations.push_back({0, 0, 3.0});
  ck.registrations.push_back({1, 1, 3.0});
  ck.liveness.last_heard = {1599.5, 1580.5};
  ck.liveness.presumed_alive = {1, 1};
  ck.controller_active = {0, 1};
  SimulationCheckpoint::PendingEntry pending;
  pending.camera = 1;
  pending.entry.payload = {1, 2, 3, 4};
  pending.entry.sequence = 4;
  pending.entry.attempts = 2;
  pending.entry.next_retry = 1712.5;
  ck.pending.push_back(pending);
  ck.next_sequence = 5;
  ck.network.now = 1600.0;
  ck.network.sequence = 99;
  ck.network.rx_dropped = 3;
  ck.network.rng = {{1, 2, 3, 4}, false, 0.0};
  ck.network.node_radio_joules = {0.0, 0.5, 0.25};
  ck.network.node_bytes = {0, 1024, 512};
  ck.network.queue.push_back({1600.25, 98, 1, 0, {9, 8, 7}});
  return ck;
}

TEST(Checkpoint, EncodeDecodeRoundtripIsLossless) {
  const SimulationCheckpoint ck = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = ck.encode();
  const SimulationCheckpoint back = SimulationCheckpoint::decode(bytes);

  EXPECT_TRUE(back.guard == ck.guard);
  EXPECT_EQ(back.frame_index, ck.frame_index);
  EXPECT_EQ(back.rounds_completed, ck.rounds_completed);
  EXPECT_EQ(back.cpu_joules, ck.cpu_joules);
  EXPECT_EQ(back.radio_joules, ck.radio_joules);
  EXPECT_EQ(back.windows_evaluated, ck.windows_evaluated);
  EXPECT_EQ(back.windows_pruned, ck.windows_pruned);
  ASSERT_EQ(back.rounds.size(), 1u);
  EXPECT_EQ(back.rounds[0].summary, "cam0:HOG cam1:ACF");
  EXPECT_EQ(back.fault_counters, ck.fault_counters);
  ASSERT_EQ(back.cameras.size(), 2u);
  EXPECT_EQ(back.cameras[1].threshold, 0.5);
  EXPECT_EQ(back.cameras[1].ladder.stress_rung, 2);
  ASSERT_EQ(back.pending.size(), 1u);
  EXPECT_EQ(back.pending[0].entry.payload, ck.pending[0].entry.payload);
  EXPECT_EQ(back.network.rng.words, ck.network.rng.words);
  ASSERT_EQ(back.network.queue.size(), 1u);
  EXPECT_EQ(back.network.queue[0].payload, ck.network.queue[0].payload);

  // The decoded checkpoint must re-encode to the exact same bytes (resume
  // sees everything the writer saved).
  EXPECT_EQ(back.encode(), bytes);
}

TEST(Checkpoint, EveryTruncationThrowsSnapshotError) {
  const std::vector<std::uint8_t> bytes = sample_checkpoint().encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)SimulationCheckpoint::decode(prefix), SnapshotError) << "len=" << len;
  }
}

TEST(Checkpoint, RandomCorruptionNeverEscapesSnapshotError) {
  const std::vector<std::uint8_t> bytes = sample_checkpoint().encode();
  Rng rng(20260809);
  for (int trial = 0; trial < 600; ++trial) {
    std::vector<std::uint8_t> corrupt = bytes;
    const int flips = rng.uniform_int(1, 4);
    for (int i = 0; i < flips; ++i) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(corrupt.size()) - 1));
      corrupt[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      (void)SimulationCheckpoint::decode(corrupt);  // Unflipped flip: fine.
    } catch (const SnapshotError&) {
      // Rejected cleanly: acceptable. Anything else fails the test.
    }
  }
}

TEST(Checkpoint, CameraCountMismatchIsRejected) {
  SimulationCheckpoint ck = sample_checkpoint();
  ck.guard.num_cameras = 3;  // But only 2 camera states.
  EXPECT_THROW((void)SimulationCheckpoint::decode(ck.encode()), SnapshotError);
}

// ------------------------------------------------------------ Retry policy

TEST(RetryPolicyTest, DefaultsReproduceTheLegacySchedule) {
  const RetryPolicy policy;
  const double stride = 25.0;
  // Initial push timeout (attempts = 0), then base + attempts capped at 6.5.
  // The loop's resend path passes attempts = 2, 3, 4 -> 4.5, 5.5, 6.5.
  EXPECT_EQ(policy.backoff(0, 0, stride), 2.5 * stride);
  EXPECT_EQ(policy.backoff(0, 1, stride), 3.5 * stride);
  EXPECT_EQ(policy.backoff(0, 2, stride), 4.5 * stride);
  EXPECT_EQ(policy.backoff(0, 3, stride), 5.5 * stride);
  EXPECT_EQ(policy.backoff(0, 4, stride), 6.5 * stride);
  EXPECT_EQ(policy.backoff(0, 40, stride), 6.5 * stride);  // Capped.
  // No jitter: identical across cameras.
  EXPECT_EQ(policy.backoff(0, 2, stride), policy.backoff(7, 2, stride));
}

TEST(RetryPolicyTest, JitterIsDeterministicBoundedAndPerCamera) {
  RetryPolicy policy;
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 1234;
  const double stride = 25.0;

  RetryPolicy same = policy;
  bool any_differs_across_cameras = false;
  for (int camera = 0; camera < 8; ++camera) {
    for (int attempts = 0; attempts <= 5; ++attempts) {
      const double base = RetryPolicy{}.backoff(camera, attempts, stride);
      const double jittered = policy.backoff(camera, attempts, stride);
      // Reproducible from the seed.
      EXPECT_EQ(jittered, same.backoff(camera, attempts, stride));
      // Bounded: [base, base * (1 + fraction)).
      EXPECT_GE(jittered, base);
      EXPECT_LT(jittered, base * (1.0 + policy.jitter_fraction));
      if (camera > 0 && jittered != policy.backoff(0, attempts, stride)) {
        any_differs_across_cameras = true;
      }
    }
  }
  EXPECT_TRUE(any_differs_across_cameras);

  RetryPolicy other_seed = policy;
  other_seed.jitter_seed = 4321;
  EXPECT_NE(policy.backoff(1, 1, stride), other_seed.backoff(1, 1, stride));
}

// ------------------------------------------------------- Retry queue + acks

TEST(RetryQueue, AckedStaleAndLateOutcomes) {
  AssignmentRetryQueue queue{RetryPolicy{}};
  EXPECT_FALSE(queue.push(3, {1, 2, 3}, 10, 1000.0, 25.0));
  EXPECT_EQ(queue.ack(3, 10), AssignmentRetryQueue::AckOutcome::Acked);
  EXPECT_TRUE(queue.empty());

  // Ack after the entry is gone: Late — counted by the caller, the queue is
  // untouched, the assignment is never re-applied.
  EXPECT_EQ(queue.ack(3, 10), AssignmentRetryQueue::AckOutcome::Late);
  EXPECT_TRUE(queue.empty());

  // A newer push supersedes an unacked older one; the old ack goes Stale.
  EXPECT_FALSE(queue.push(5, {1}, 20, 1000.0, 25.0));
  EXPECT_TRUE(queue.push(5, {2}, 21, 1010.0, 25.0));  // Replaced.
  EXPECT_EQ(queue.ack(5, 20), AssignmentRetryQueue::AckOutcome::Stale);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.ack(5, 21), AssignmentRetryQueue::AckOutcome::Acked);
  EXPECT_TRUE(queue.empty());
}

TEST(RetryQueue, LegacyResendScheduleAndAbandon) {
  AssignmentRetryQueue queue{RetryPolicy{}};
  const double stride = 25.0;
  queue.push(0, {7}, 1, 0.0, stride);

  std::vector<double> resend_times;
  std::vector<double> abandon_times;
  for (double now = 0.0; now <= 600.0; now += 12.5) {
    queue.process_due(
        now, stride, [&](int, const AssignmentRetryQueue::Entry&) { resend_times.push_back(now); },
        [&](int, const AssignmentRetryQueue::Entry&) { abandon_times.push_back(now); });
  }
  // Push at t=0 with initial timeout 2.5 GT frames: max_retries = 3 resends
  // at +2.5, then +4.5, then +5.5 GT frames; the +6.5 wait ends in abandon.
  const std::vector<double> expected = {62.5, 62.5 + 112.5, 62.5 + 112.5 + 137.5};
  EXPECT_EQ(resend_times, expected);
  ASSERT_EQ(abandon_times.size(), 1u);
  EXPECT_EQ(abandon_times[0], 62.5 + 112.5 + 137.5 + 162.5);
  EXPECT_TRUE(queue.empty());
}

TEST(RetryQueue, DropStopsRetryingIntoTheVoid) {
  AssignmentRetryQueue queue{RetryPolicy{}};
  queue.push(2, {1}, 1, 0.0, 25.0);
  EXPECT_TRUE(queue.drop(2));
  EXPECT_FALSE(queue.drop(2));
  int resends = 0;
  queue.process_due(
      1.0e9, 25.0, [&](int, const AssignmentRetryQueue::Entry&) { ++resends; },
      [&](int, const AssignmentRetryQueue::Entry&) { ++resends; });
  EXPECT_EQ(resends, 0);
}

// ---------------------------------------------------------------- Liveness

TEST(Liveness, SilenceKillsAndMessagesRecover) {
  LivenessTracker tracker(3, 50.0);
  tracker.mark_heard(0, 100.0);
  tracker.mark_heard(1, 100.0);
  tracker.mark_heard(2, 130.0);

  EXPECT_TRUE(tracker.sweep(140.0).empty());
  const std::vector<int> dead = tracker.sweep(160.0);
  EXPECT_EQ(dead, (std::vector<int>{0, 1}));
  EXPECT_FALSE(tracker.alive(0));
  EXPECT_TRUE(tracker.alive(2));
  EXPECT_EQ(tracker.alive_set(), (std::set<int>{2}));
  // Already dead: not reported again.
  EXPECT_TRUE(tracker.sweep(170.0).empty());

  EXPECT_TRUE(tracker.mark_heard(0, 180.0));   // Recovered.
  EXPECT_FALSE(tracker.mark_heard(0, 181.0));  // Just alive.
  EXPECT_TRUE(tracker.alive(0));
}

// ---------------------------------------------------------------- Watchdog

TEST(Watchdog, DisabledWatchdogNeverMissesOrFails) {
  RoundWatchdog watchdog({0.0, 2}, 4);
  watchdog.arm(0.0, 25.0, {0, 1, 2, 3});
  EXPECT_TRUE(watchdog.close().empty());
  EXPECT_TRUE(watchdog.failed_set().empty());
}

TEST(Watchdog, StrikesAccumulateAndClearOnReport) {
  RoundWatchdog watchdog({3.0, 2}, 3);  // Deadline 3 GT frames, fail at 2.

  // Round 1: camera 1 reports in time, camera 2 reports late, camera 0 never.
  watchdog.arm(1000.0, 25.0, {0, 1, 2});
  watchdog.report(1, 1050.0);
  watchdog.report(2, 1100.0);  // After 1000 + 3*25.
  std::vector<RoundWatchdog::Miss> misses = watchdog.close();
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0].camera, 0);
  EXPECT_EQ(misses[0].strikes, 1);
  EXPECT_FALSE(misses[0].failed);
  EXPECT_EQ(misses[1].camera, 2);
  EXPECT_TRUE(watchdog.failed_set().empty());

  // Round 2: camera 0 misses again and fails out; camera 2 reports in time
  // and its strike clears.
  watchdog.arm(1600.0, 25.0, {0, 1, 2});
  watchdog.report(1, 1610.0);
  watchdog.report(2, 1620.0);
  misses = watchdog.close();
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].camera, 0);
  EXPECT_EQ(misses[0].strikes, 2);
  EXPECT_TRUE(misses[0].failed);
  EXPECT_EQ(watchdog.failed_set(), (std::set<int>{0}));
  EXPECT_EQ(watchdog.strikes(2), 0);

  // Reports outside an armed round are ignored.
  watchdog.report(0, 1700.0);
  EXPECT_EQ(watchdog.strikes(0), 2);
}

// ------------------------------------------------------------------ Ladder

TEST(Ladder, DisabledLadderIsAlwaysFull) {
  DegradationLadder ladder(DegradationPolicy{}, 2);
  EXPECT_FALSE(ladder.enabled());
  EXPECT_TRUE(ladder.on_round(0, 0.001, true, true).empty());
  EXPECT_EQ(ladder.rung(0), DegradationRung::Full);
}

DegradationPolicy enabled_policy() {
  DegradationPolicy policy;
  policy.enabled = true;
  return policy;
}

TEST(Ladder, BatteryFloorIsMonotoneEvenIfTheReadingImproves) {
  DegradationLadder ladder(enabled_policy(), 1);
  EXPECT_EQ(ladder.battery_rung(0.5), DegradationRung::Full);
  EXPECT_EQ(ladder.battery_rung(0.2), DegradationRung::CheapAlgorithm);
  EXPECT_EQ(ladder.battery_rung(0.08), DegradationRung::SkipFrames);
  EXPECT_EQ(ladder.battery_rung(0.03), DegradationRung::MetadataOnly);
  EXPECT_EQ(ladder.battery_rung(0.01), DegradationRung::Parked);

  auto transitions = ladder.on_round(0, 0.08, false, false);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, DegradationRung::SkipFrames);
  EXPECT_EQ(transitions[0].trigger, DegradationLadder::Trigger::Battery);

  // A (hypothetically) improved reading never raises the floor back up.
  EXPECT_TRUE(ladder.on_round(0, 0.9, false, false).empty());
  EXPECT_EQ(ladder.rung(0), DegradationRung::SkipFrames);
}

TEST(Ladder, StressStepsDownPerTriggerAndRecoversAfterCleanRounds) {
  DegradationLadder ladder(enabled_policy(), 1);

  // Deadline miss and fault storm in one round: two steps down.
  auto transitions = ladder.on_round(0, 1.0, true, true);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].to, DegradationRung::CheapAlgorithm);
  EXPECT_EQ(transitions[0].trigger, DegradationLadder::Trigger::Deadline);
  EXPECT_EQ(transitions[1].to, DegradationRung::SkipFrames);
  EXPECT_EQ(transitions[1].trigger, DegradationLadder::Trigger::FaultStorm);
  EXPECT_EQ(ladder.rung(0), DegradationRung::SkipFrames);

  // Default recovery_rounds = 2: first clean round holds, second steps up.
  EXPECT_TRUE(ladder.on_round(0, 1.0, false, false).empty());
  transitions = ladder.on_round(0, 1.0, false, false);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, DegradationRung::SkipFrames);
  EXPECT_EQ(transitions[0].to, DegradationRung::CheapAlgorithm);
  EXPECT_EQ(transitions[0].trigger, DegradationLadder::Trigger::Recovery);

  // Two more clean rounds: back to Full; further clean rounds are no-ops.
  EXPECT_TRUE(ladder.on_round(0, 1.0, false, false).empty());
  transitions = ladder.on_round(0, 1.0, false, false);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, DegradationRung::Full);
  EXPECT_TRUE(ladder.on_round(0, 1.0, false, false).empty());
  EXPECT_TRUE(ladder.on_round(0, 1.0, false, false).empty());
  EXPECT_EQ(ladder.rung(0), DegradationRung::Full);
}

// --------------------------------------------------------- FaultPlan checks

TEST(FaultPlanValidation, AcceptsAWellFormedPlan) {
  net::FaultPlan plan;
  plan.uplink_loss = 0.1;
  plan.downlink_loss = 0.05;
  plan.loss_windows.push_back({100.0, 200.0, 1.0, -1});
  plan.add_crash(1, 300.0, 400.0);
  plan.add_crash(1, 500.0, 600.0);  // Same node, disjoint: fine.
  plan.add_crash(2, 350.0, 450.0);  // Overlaps node 1's window: fine.
  EXPECT_NO_THROW(plan.validate());
  EXPECT_NO_THROW(plan.validate(3));
}

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  {
    net::FaultPlan plan;
    plan.uplink_loss = 1.5;
    EXPECT_THROW(plan.validate(), net::FaultPlan::ValidationError);
  }
  {
    net::FaultPlan plan;
    plan.loss_windows.push_back({200.0, 100.0, 0.5, -1});  // Inverted window.
    EXPECT_THROW(plan.validate(), net::FaultPlan::ValidationError);
  }
  {
    net::FaultPlan plan;
    plan.loss_windows.push_back({100.0, 200.0, -0.25, -1});  // Negative probability.
    EXPECT_THROW(plan.validate(), net::FaultPlan::ValidationError);
  }
  {
    net::FaultPlan plan;
    plan.add_crash(-1, 100.0, 200.0);  // Crashes need a concrete node.
    EXPECT_THROW(plan.validate(), net::FaultPlan::ValidationError);
  }
  {
    net::FaultPlan plan;
    plan.add_crash(5, 100.0, 200.0);
    EXPECT_NO_THROW(plan.validate());  // Node count unknown: allowed.
    EXPECT_THROW(plan.validate(5), net::FaultPlan::ValidationError);
  }
  {
    net::FaultPlan plan;
    plan.add_crash(1, 100.0, 300.0);
    plan.add_crash(1, 200.0, 400.0);  // Same-node overlap.
    EXPECT_THROW(plan.validate(), net::FaultPlan::ValidationError);
  }
}

// ----------------------------------------------- Closed-loop resume exactness

class RuntimeResume : public ::testing::Test {
 protected:
  static const core::DetectorBank& bank() {
    static const core::DetectorBank detectors = detect::make_trained_detectors(1234);
    return detectors;
  }

  static core::OfflineOptions options() {
    core::OfflineOptions opts;
    opts.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
    opts.frames_per_item = 4;
    return opts;
  }

  static const core::OfflineKnowledge& knowledge() {
    static const core::OfflineKnowledge k = core::run_offline_training(bank(), {1}, 42, options());
    return k;
  }

  static core::EecsSimulationConfig config() {
    core::EecsSimulationConfig cfg;
    cfg.dataset = 1;
    cfg.mode = core::SelectionMode::AllBest;
    cfg.budget_per_frame = 3.0;
    cfg.controller.algorithms = options().algorithms;
    cfg.models = options();
    cfg.end_frame = 2500;  // Two recalibration rounds after registration.
    // Non-trivial runtime state in the snapshot: lossy links, jittered
    // retries, a round deadline.
    cfg.uplink.loss_probability = 0.1;
    cfg.downlink.loss_probability = 0.2;
    cfg.protocol.retry_jitter_fraction = 0.25;
    cfg.runtime.round_deadline_gt_frames = 3.0;
    return cfg;
  }
};

TEST_F(RuntimeResume, CheckpointThenResumeIsBitIdenticalToUninterrupted) {
  const core::SimulationResult uninterrupted = run_eecs_simulation(bank(), knowledge(), config());

  const char* path = "test_runtime_resume.snap";
  core::EecsSimulationConfig crash = config();
  crash.runtime.checkpoint_every_rounds = 1;
  crash.runtime.checkpoint_path = path;
  crash.runtime.stop_after_rounds = 1;
  const core::SimulationResult partial = run_eecs_simulation(bank(), knowledge(), crash);
  EXPECT_LT(partial.gt_frames_processed, uninterrupted.gt_frames_processed);

  core::EecsSimulationConfig resume = config();
  resume.runtime.resume_from = path;
  const core::SimulationResult resumed = run_eecs_simulation(bank(), knowledge(), resume);

  EXPECT_EQ(resumed.cpu_joules, uninterrupted.cpu_joules);
  EXPECT_EQ(resumed.radio_joules, uninterrupted.radio_joules);
  EXPECT_EQ(resumed.humans_detected, uninterrupted.humans_detected);
  EXPECT_EQ(resumed.humans_present, uninterrupted.humans_present);
  EXPECT_EQ(resumed.gt_frames_processed, uninterrupted.gt_frames_processed);
  ASSERT_EQ(resumed.rounds.size(), uninterrupted.rounds.size());
  for (std::size_t i = 0; i < resumed.rounds.size(); ++i) {
    EXPECT_EQ(resumed.rounds[i].start_frame, uninterrupted.rounds[i].start_frame);
    EXPECT_EQ(resumed.rounds[i].stats.n_est, uninterrupted.rounds[i].stats.n_est);
    EXPECT_EQ(resumed.rounds[i].stats.summary, uninterrupted.rounds[i].stats.summary);
  }
  ASSERT_EQ(resumed.battery_residual.size(), uninterrupted.battery_residual.size());
  for (std::size_t c = 0; c < resumed.battery_residual.size(); ++c) {
    EXPECT_EQ(resumed.battery_residual[c], uninterrupted.battery_residual[c]);
  }
  EXPECT_EQ(resumed.faults.messages_sent, uninterrupted.faults.messages_sent);
  EXPECT_EQ(resumed.faults.messages_lost, uninterrupted.faults.messages_lost);
  EXPECT_EQ(resumed.faults.assignments_retried, uninterrupted.faults.assignments_retried);
  EXPECT_EQ(resumed.faults.assignments_pushed, uninterrupted.faults.assignments_pushed);
  EXPECT_EQ(resumed.faults.assignments_acked, uninterrupted.faults.assignments_acked);
  EXPECT_EQ(resumed.faults.deadline_misses, uninterrupted.faults.deadline_misses);

  // Both ways, every pushed assignment is accounted for.
  for (const core::SimulationResult* r : {&uninterrupted, &resumed}) {
    EXPECT_EQ(r->faults.assignments_pushed,
              r->faults.assignments_acked + r->faults.assignments_abandoned +
                  r->faults.assignments_dropped + r->faults.assignments_replaced +
                  r->faults.assignments_pending_at_exit);
  }

  // Resuming under a mismatched configuration is refused.
  core::EecsSimulationConfig wrong = config();
  wrong.runtime.resume_from = path;
  wrong.seed = 778;
  EXPECT_THROW((void)run_eecs_simulation(bank(), knowledge(), wrong), SnapshotError);
}

}  // namespace
}  // namespace eecs
