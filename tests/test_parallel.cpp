// Contract tests for the deterministic task-parallel layer (common/parallel):
// index coverage, slot ordering, deterministic exception propagation, the
// nested-use inline rule, per-task RNG streams, and the width knob — plus an
// end-to-end check that the closed-loop simulation is bit-identical across
// thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/simulation.hpp"

namespace eecs::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run_chunks(kN, 64, 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsEntirelyOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::size_t covered = 0;
  pool.run_chunks(100, 10, 8, [&](std::size_t begin, std::size_t end) {
    // No workers -> no data race on the plain counter.
    covered += end - begin;
    EXPECT_FALSE(ThreadPool::on_worker_thread());
  });
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, ShutdownWithQueuedWorkJoinsCleanly) {
  // Construct/use/destroy repeatedly; the destructor must drain and join
  // without hanging or dropping chunks.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2);
    std::atomic<std::size_t> sum{0};
    pool.run_chunks(1'000, 16, 3, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1'000u * 999u / 2u);
  }
}

TEST(ThreadPool, RethrowsLowestFailingChunkDeterministically) {
  ThreadPool pool(3);
  // Every chunk throws its begin index; the propagated exception must always
  // be the lowest-indexed one, regardless of which thread ran what first.
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.run_chunks(1'000, 100, 4, [](std::size_t begin, std::size_t) {
        throw std::runtime_error(std::to_string(begin));
      });
      FAIL() << "run_chunks should have thrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ParallelFor, ExceptionsAlsoPropagateThroughGlobalPool) {
  const ScopedThreads width(4);
  EXPECT_THROW(parallel_for(1'000, 1,
                            [](std::size_t, std::size_t) -> void {
                              throw std::logic_error("boom");
                            }),
               std::logic_error);
}

TEST(ParallelMap, SlotsAreIndexOrdered) {
  const ScopedThreads width(4);
  const std::vector<std::size_t> out =
      parallel_map<std::size_t>(5'000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 5'000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i) << "slot " << i;
  }
}

TEST(ParallelFor, WidthOneIsSingleInlineRange) {
  const ScopedThreads width(1);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for(1'000, 1, [&](std::size_t begin, std::size_t end) {
    ranges.emplace_back(begin, end);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 1'000}));
}

TEST(ParallelFor, NestedCallsRunInlineOnWorkers) {
  const ScopedThreads width(4);
  // A nested parallel_for on a pool worker must run inline as one range (the
  // no-deadlock contract for composed kernels). The outer caller also drains
  // chunks but is not a worker, so its nested calls may split — count only
  // the nested invocations seen on worker threads.
  std::atomic<int> nested_split{0};
  parallel_for(64, 1, [&](std::size_t, std::size_t) {
    if (!ThreadPool::on_worker_thread()) return;
    std::atomic<int> ranges{0};
    parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
      ranges.fetch_add(1);
      if (begin != 0 || end != 100) nested_split.fetch_add(1);
    });
    if (ranges.load() != 1) nested_split.fetch_add(1);
  });
  EXPECT_EQ(nested_split.load(), 0);
}

TEST(TaskRng, StreamsDependOnlyOnSeedAndIndex) {
  Rng a = task_rng(1234, 7);
  Rng b = task_rng(1234, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  // Adjacent task indices must give decorrelated streams.
  Rng c = task_rng(1234, 8);
  EXPECT_NE(task_rng(1234, 7).next_u64(), c.next_u64());
}

TEST(ScopedThreads, OverridesAndRestoresWidth) {
  const int before = max_threads();
  {
    const ScopedThreads width(3);
    EXPECT_EQ(max_threads(), 3);
    {
      const ScopedThreads inner(0);  // n <= 0: no-op.
      EXPECT_EQ(max_threads(), 3);
    }
    EXPECT_EQ(max_threads(), 3);
  }
  EXPECT_EQ(max_threads(), before);
}

// End-to-end: the closed loop produces bit-identical results at every thread
// count. Timings are wall-clock observability and are the one exempt field.
TEST(ThreadInvariance, SimulationIsBitIdenticalAcrossWidths) {
  using namespace eecs::core;
  const DetectorBank detectors = detect::make_trained_detectors(1234);
  OfflineOptions opts;
  opts.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
  opts.frames_per_item = 4;
  const OfflineKnowledge knowledge = run_offline_training(detectors, {1}, 42, opts);

  EecsSimulationConfig cfg;
  cfg.dataset = 1;
  cfg.mode = SelectionMode::SubsetDowngrade;
  cfg.budget_per_frame = 3.0;
  cfg.controller.algorithms = opts.algorithms;
  cfg.models = opts;
  cfg.end_frame = 1700;  // One assessment window plus a short operation span.

  cfg.threads = 1;
  const SimulationResult serial = run_eecs_simulation(detectors, knowledge, cfg);
  cfg.threads = 4;
  const SimulationResult parallel = run_eecs_simulation(detectors, knowledge, cfg);

  EXPECT_EQ(serial.cpu_joules, parallel.cpu_joules);
  EXPECT_EQ(serial.radio_joules, parallel.radio_joules);
  EXPECT_EQ(serial.humans_detected, parallel.humans_detected);
  EXPECT_EQ(serial.humans_present, parallel.humans_present);
  EXPECT_EQ(serial.gt_frames_processed, parallel.gt_frames_processed);
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].start_frame, parallel.rounds[i].start_frame);
    EXPECT_EQ(serial.rounds[i].midround_recovery, parallel.rounds[i].midround_recovery);
  }
  EXPECT_EQ(serial.faults.messages_sent, parallel.faults.messages_sent);
  EXPECT_EQ(serial.faults.messages_lost, parallel.faults.messages_lost);
  EXPECT_EQ(serial.faults.frames_skipped_exhausted, parallel.faults.frames_skipped_exhausted);
  ASSERT_EQ(serial.battery_residual.size(), parallel.battery_residual.size());
  for (std::size_t c = 0; c < serial.battery_residual.size(); ++c) {
    EXPECT_EQ(serial.battery_residual[c], parallel.battery_residual[c]) << "camera " << c;
  }
}

}  // namespace
}  // namespace eecs::common
