#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/decomp.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pca.hpp"

namespace eecs::linalg {
namespace {

Matrix random_matrix(int rows, int cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = scale * rng.normal();
  }
  return m;
}

bool is_orthonormal_columns(const Matrix& m, double tol = 1e-8) {
  const Matrix gram = transpose_times(m, m);
  return max_abs_diff(gram, Matrix::identity(m.cols())) < tol;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Matrix, OutOfBoundsAccessViolatesContract) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), ContractViolation);
  EXPECT_THROW((void)m(0, -1), ContractViolation);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), ContractViolation);
}

TEST(Matrix, TransposeTimesEqualsExplicitTranspose) {
  Rng rng(1);
  const Matrix a = random_matrix(7, 4, rng);
  const Matrix b = random_matrix(7, 5, rng);
  EXPECT_LT(max_abs_diff(transpose_times(a, b), a.transposed() * b), 1e-12);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Rng rng(2);
  const Matrix a = random_matrix(4, 4, rng);
  EXPECT_LT(max_abs_diff(a * Matrix::identity(4), a), 1e-12);
  EXPECT_LT(max_abs_diff(Matrix::identity(4) * a, a), 1e-12);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5.0);
  const Matrix diff = sum - b;
  EXPECT_LT(max_abs_diff(diff, a), 1e-15);
  const Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 1), 8.0);
}

TEST(Matrix, SliceColsAndRows) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix c = m.slice_cols(1, 3);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_EQ(c(1, 0), 5.0);
  const Matrix r = m.slice_rows(1, 2);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r(0, 2), 6.0);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 0, 2}, {0, 1, -1}};
  const std::vector<double> x{1, 2, 3};
  const auto y = a * std::span<const double>(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 7.0);
  EXPECT_EQ(y[1], -1.0);
}

TEST(Qr, ReconstructsInput) {
  Rng rng(3);
  for (const auto& [m, n] : {std::pair{6, 4}, std::pair{4, 6}, std::pair{5, 5}}) {
    const Matrix a = random_matrix(m, n, rng);
    const QrResult qr = qr_decompose(a);
    EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-9) << m << "x" << n;
    EXPECT_TRUE(is_orthonormal_columns(qr.q));
  }
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(4);
  const Matrix a = random_matrix(5, 3, rng);
  const QrResult qr = qr_decompose(a);
  for (int i = 0; i < qr.r.rows(); ++i) {
    for (int j = 0; j < std::min(i, qr.r.cols()); ++j) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

TEST(OrthogonalComplement, SpansRemainingSpace) {
  Rng rng(5);
  const Matrix a = random_matrix(8, 3, rng);
  // Orthonormalize via QR first (precondition of orthogonal_complement).
  const Matrix basis = qr_decompose(a).q.slice_cols(0, 3);
  const Matrix comp = orthogonal_complement(basis);
  ASSERT_EQ(comp.rows(), 8);
  ASSERT_EQ(comp.cols(), 5);
  EXPECT_TRUE(is_orthonormal_columns(comp));
  // basis^T comp == 0 (the paper's x~^T x = 0 property).
  const Matrix cross = transpose_times(basis, comp);
  EXPECT_LT(cross.frobenius_norm(), 1e-8);
}

TEST(OrthogonalComplement, FullBasisYieldsEmpty) {
  const Matrix eye = Matrix::identity(4);
  const Matrix comp = orthogonal_complement(eye);
  EXPECT_EQ(comp.cols(), 0);
}

TEST(Svd, ReconstructsInputTallAndWide) {
  Rng rng(6);
  for (const auto& [m, n] : {std::pair{8, 5}, std::pair{5, 8}, std::pair{6, 6}}) {
    const Matrix a = random_matrix(m, n, rng);
    const SvdResult svd = svd_decompose(a);
    Matrix s(static_cast<int>(svd.singular_values.size()), static_cast<int>(svd.singular_values.size()));
    for (std::size_t i = 0; i < svd.singular_values.size(); ++i)
      s(static_cast<int>(i), static_cast<int>(i)) = svd.singular_values[i];
    const Matrix recon = svd.u * s * svd.v.transposed();
    EXPECT_LT(max_abs_diff(recon, a), 1e-8) << m << "x" << n;
  }
}

TEST(Svd, SingularValuesSortedAndNonNegative) {
  Rng rng(7);
  const Matrix a = random_matrix(10, 6, rng);
  const SvdResult svd = svd_decompose(a);
  for (std::size_t i = 0; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd.singular_values[i], svd.singular_values[i - 1]);
    }
  }
}

TEST(Svd, FactorsAreOrthonormal) {
  Rng rng(8);
  const Matrix a = random_matrix(9, 4, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_TRUE(is_orthonormal_columns(svd.u));
  EXPECT_TRUE(is_orthonormal_columns(svd.v));
}

TEST(Svd, KnownDiagonalCase) {
  const Matrix a{{3, 0}, {0, -2}};
  const SvdResult svd = svd_decompose(a);
  EXPECT_NEAR(svd.singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-12);
}

TEST(Svd, RankDeficientMatrixHasZeroSingularValue) {
  // Second column is 2x the first.
  const Matrix a{{1, 2}, {2, 4}, {3, 6}};
  const SvdResult svd = svd_decompose(a);
  EXPECT_GT(svd.singular_values[0], 1.0);
  EXPECT_NEAR(svd.singular_values[1], 0.0, 1e-10);
}

TEST(Eig, DiagonalizesSymmetricMatrix) {
  Rng rng(9);
  const Matrix g = random_matrix(6, 6, rng);
  const Matrix sym = transpose_times(g, g);  // SPD.
  const EigResult eig = eig_symmetric(sym);
  // sym * v_i == lambda_i * v_i.
  for (int i = 0; i < 6; ++i) {
    const auto v = eig.eigenvectors.col(i);
    const auto sv = sym * std::span<const double>(v);
    for (int r = 0; r < 6; ++r) {
      EXPECT_NEAR(sv[static_cast<std::size_t>(r)],
                  eig.eigenvalues[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(r)], 1e-8);
    }
  }
}

TEST(Eig, EigenvaluesDescending) {
  Rng rng(10);
  const Matrix g = random_matrix(5, 5, rng);
  const EigResult eig = eig_symmetric(transpose_times(g, g));
  for (std::size_t i = 1; i < eig.eigenvalues.size(); ++i) {
    EXPECT_LE(eig.eigenvalues[i], eig.eigenvalues[i - 1]);
  }
}

TEST(SolveSpd, SolvesKnownSystem) {
  const Matrix a{{4, 1}, {1, 3}};
  const std::vector<double> b{1, 2};
  const auto x = solve_spd(a, b);
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RejectsIndefiniteMatrix) {
  const Matrix a{{0, 0}, {0, -1}};
  const std::vector<double> b{1, 1};
  EXPECT_THROW((void)solve_spd(a, b), std::runtime_error);
}

TEST(InvertSpd, ProducesInverse) {
  Rng rng(11);
  const Matrix g = random_matrix(5, 5, rng);
  Matrix spd = transpose_times(g, g);
  for (int i = 0; i < 5; ++i) spd(i, i) += 0.5;  // Well-conditioned.
  const Matrix inv = invert_spd(spd);
  EXPECT_LT(max_abs_diff(spd * inv, Matrix::identity(5)), 1e-8);
}

TEST(Pca, RecoversDominantDirection) {
  // Points spread along (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(12);
  Matrix data(200, 2);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.normal() * 5.0;
    const double n = rng.normal() * 0.1;
    data(i, 0) = t + n;
    data(i, 1) = t - n;
  }
  const Pca pca(data, 1);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const double d0 = std::abs(pca.basis()(0, 0));
  const double d1 = std::abs(pca.basis()(1, 0));
  EXPECT_NEAR(d0, inv_sqrt2, 0.02);
  EXPECT_NEAR(d1, inv_sqrt2, 0.02);
  EXPECT_GT(pca.explained_variance()[0], 10.0);
}

TEST(Pca, BasisIsOrthonormal) {
  Rng rng(13);
  const Matrix data = random_matrix(50, 8, rng);
  const Pca pca(data, 4);
  EXPECT_TRUE(is_orthonormal_columns(pca.basis()));
}

TEST(Pca, VarianceDescending) {
  Rng rng(14);
  const Matrix data = random_matrix(60, 6, rng);
  const Pca pca(data, 6);
  for (std::size_t i = 1; i < pca.explained_variance().size(); ++i) {
    EXPECT_LE(pca.explained_variance()[i], pca.explained_variance()[i - 1] + 1e-12);
  }
}

TEST(Pca, TransformCentersData) {
  Rng rng(15);
  Matrix data = random_matrix(40, 3, rng);
  for (int i = 0; i < data.rows(); ++i) data(i, 1) += 10.0;  // Shifted feature.
  const Pca pca(data, 2);
  // Mean of transformed data should be ~0.
  const Matrix t = pca.transform_rows(data);
  const auto mean = column_mean(t);
  for (double m : mean) EXPECT_NEAR(m, 0.0, 1e-9);
}

TEST(Pca, InvalidComponentCountViolatesContract) {
  Rng rng(16);
  const Matrix data = random_matrix(10, 3, rng);
  EXPECT_THROW(Pca(data, 0), ContractViolation);
  EXPECT_THROW(Pca(data, 4), ContractViolation);
}

TEST(CovarianceAndMahalanobis, IdentityCovarianceIsEuclidean) {
  const Matrix inv_cov = Matrix::identity(2);
  const std::vector<double> a{0, 0}, b{3, 4};
  EXPECT_NEAR(mahalanobis(a, b, inv_cov), 5.0, 1e-12);
}

TEST(CovarianceAndMahalanobis, CovarianceOfKnownData) {
  // Two perfectly correlated variables.
  Matrix data(3, 2);
  data(0, 0) = 1; data(0, 1) = 2;
  data(1, 0) = 2; data(1, 1) = 4;
  data(2, 0) = 3; data(2, 1) = 6;
  const Matrix cov = covariance(data);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
}

TEST(Kmeans, SeparatesWellSeparatedClusters) {
  Rng rng(17);
  Matrix data(60, 2);
  for (int i = 0; i < 60; ++i) {
    const int cluster = i % 3;
    data(i, 0) = 10.0 * cluster + rng.normal() * 0.2;
    data(i, 1) = -5.0 * cluster + rng.normal() * 0.2;
  }
  const KmeansResult result = kmeans(data, 3, rng);
  // All members of a true cluster share an assignment.
  for (int i = 3; i < 60; ++i) {
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)],
              result.assignment[static_cast<std::size_t>(i % 3)]);
  }
  EXPECT_LT(result.inertia, 60.0);
}

TEST(Kmeans, SingleClusterCentroidIsMean) {
  Rng rng(18);
  const Matrix data = random_matrix(30, 3, rng);
  const KmeansResult result = kmeans(data, 1, rng);
  const auto mean = column_mean(data);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(result.centroids(0, c), mean[static_cast<std::size_t>(c)], 1e-9);
}

TEST(Kmeans, InertiaNonIncreasingWithMoreClusters) {
  Rng rng(19);
  const Matrix data = random_matrix(80, 4, rng);
  double prev = 1e18;
  for (int k : {1, 2, 4, 8}) {
    Rng local(19);
    const KmeansResult result = kmeans(data, k, local);
    EXPECT_LE(result.inertia, prev * 1.05);  // Allow small non-monotonicity from local minima.
    prev = result.inertia;
  }
}

TEST(Kmeans, NearestCentroidFindsClosest) {
  Matrix centroids(2, 2);
  centroids(0, 0) = 0; centroids(0, 1) = 0;
  centroids(1, 0) = 10; centroids(1, 1) = 10;
  const std::vector<double> x{9.0, 9.5};
  EXPECT_EQ(nearest_centroid(centroids, x), 1);
}

TEST(Kmeans, InvalidKViolatesContract) {
  Rng rng(20);
  const Matrix data = random_matrix(5, 2, rng);
  EXPECT_THROW((void)kmeans(data, 0, rng), ContractViolation);
  EXPECT_THROW((void)kmeans(data, 6, rng), ContractViolation);
}

// Property sweep: SVD reconstruction across shapes.
class SvdShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapeTest, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n));
  const Matrix a = random_matrix(m, n, rng);
  const SvdResult svd = svd_decompose(a);
  Matrix s(static_cast<int>(svd.singular_values.size()), static_cast<int>(svd.singular_values.size()));
  for (std::size_t i = 0; i < svd.singular_values.size(); ++i)
    s(static_cast<int>(i), static_cast<int>(i)) = svd.singular_values[i];
  EXPECT_LT(max_abs_diff(svd.u * s * svd.v.transposed(), a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 7}, std::pair{7, 2},
                                           std::pair{16, 16}, std::pair{3, 12}, std::pair{20, 5},
                                           std::pair{5, 20}, std::pair{30, 30}));

}  // namespace
}  // namespace eecs::linalg
