// Scenario: a camera is redeployed into an unknown environment. The
// controller compares a short feature upload against its training library
// using the geodesic flow kernel (§III) and assigns the detection algorithm
// of the closest match — the paper's "domain adaptation" step, isolated.
#include <cstdio>

#include "core/offline.hpp"

int main() {
  using namespace eecs;
  using namespace eecs::core;

  std::printf("training detectors and offline library over all three environments...\n");
  const DetectorBank bank = detect::make_trained_detectors(1);
  OfflineOptions options;
  options.frames_per_item = 6;  // Keep this demo quick.
  const OfflineKnowledge knowledge = run_offline_training(bank, {1, 2, 3}, 7, options);

  std::printf("\ntraining library (most accurate algorithm per item):\n");
  for (const auto& item : knowledge.profiles()) {
    std::printf("  %-6s -> %-5s (f=%.2f)\n", item.label.c_str(),
                detect::to_string(item.algorithms.front().id),
                item.algorithms.front().accuracy.f_score);
  }

  // A "new" camera comes online in each environment: capture a short clip,
  // extract features, and ask the controller what to run.
  for (int dataset : {1, 2, 3}) {
    video::SceneSimulator scene(video::dataset_by_id(dataset), /*seed=*/5555);
    scene.skip(1500);  // Unseen part of the feed.
    std::vector<imaging::Image> clip;
    for (int i = 0; i < 12; ++i) {
      clip.push_back(scene.next_frame_single(/*camera_index=*/1));
      scene.skip(30);
    }
    linalg::Matrix features(static_cast<int>(clip.size()), knowledge.extractor().dimension());
    for (std::size_t i = 0; i < clip.size(); ++i) {
      const auto f = knowledge.extractor().extract(clip[i]);
      for (int c = 0; c < features.cols(); ++c) {
        features(static_cast<int>(i), c) = f[static_cast<std::size_t>(c)];
      }
    }
    const auto match = knowledge.match(features);
    const auto& item = knowledge.profile(match.best_index);
    std::printf("\ncamera in environment #%d: closest training item %s (Sim=%.2f)\n", dataset,
                item.label.c_str(), match.best_similarity);
    std::printf("  -> assigned algorithm %s with threshold %.2f\n",
                detect::to_string(item.algorithms.front().id), item.algorithms.front().threshold);
  }
  std::printf("\nThe same camera hardware runs HOG in one room and ACF in another, purely\n"
              "from the manifold similarity of what it currently sees.\n");
  return 0;
}
