// Quickstart: the smallest useful EECS program.
//
//   1. Simulate a 4-camera scene (stand-in for a real camera network).
//   2. Train the four detection algorithms.
//   3. Detect humans in one frame with each algorithm and compare their
//      accuracy and energy — the trade-off EECS optimizes.
#include <cstdio>

#include "core/metrics.hpp"
#include "detect/detector.hpp"
#include "energy/model.hpp"
#include "video/scene.hpp"

int main() {
  using namespace eecs;

  // A 360x288 indoor scene with six walking people, observed by 4 cameras.
  video::SceneSimulator scene(video::dataset1_lab(), /*seed=*/2024);

  // The four pedestrian detectors (HOG, ACF, C4, LSVM), trained from scratch
  // on synthetic data. Deterministic for a fixed seed; takes a few seconds.
  std::printf("training detectors...\n");
  const auto detectors = detect::make_trained_detectors(/*seed=*/1);

  // Grab one annotated frame from camera 0.
  std::vector<video::GroundTruthBox> truth;
  const imaging::Image frame = scene.next_frame_single(/*camera_index=*/0, &truth);
  std::printf("frame 0 of camera 0: %dx%d, %zu people annotated\n\n", frame.width(),
              frame.height(), truth.size());

  const energy::CpuEnergyModel energy_model;
  for (const auto& detector : detectors) {
    energy::CostCounter cost;
    auto detections = detector->detect(frame, &cost);
    // Keep confident candidates; production use sweeps this operating
    // threshold per scene (see core::sweep_threshold).
    std::erase_if(detections, [](const auto& d) { return d.probability < 0.5; });

    // Score the result against the annotations (IoU >= 0.5 matching).
    const core::MatchResult match = core::match_detections(detections, truth);
    std::printf("%-5s %2zu detections | TP=%d FP=%d FN=%d | %.2f J, %.2f s (phone-equivalent)\n",
                detect::to_string(detector->id()), detections.size(),
                match.counts.true_positives, match.counts.false_positives,
                match.counts.false_negatives, energy_model.joules(cost),
                energy_model.seconds(cost));
  }

  std::printf("\nNote the spread: the cheapest algorithm costs a fraction of the most\n"
              "accurate one. EECS picks per-camera algorithms to exploit exactly that.\n");
  return 0;
}
