// Scenario: the closed loop under real-world network failures (§I's disaster
// settings: lossy wireless links, cameras dying mid-mission). Sweeps the
// uplink loss rate to show graceful degradation of the detection rate, then
// injects a camera crash and shows the controller's liveness tracker
// declaring it dead and re-selecting mid-round over the survivors — all
// deterministic from (config, seed).
#include <cstdio>

#include "core/simulation.hpp"

int main() {
  using namespace eecs;
  using namespace eecs::core;

  std::printf("training detectors + offline profiles (indoor lab scene)...\n\n");
  const DetectorBank bank = detect::make_trained_detectors(1234);
  OfflineOptions options;
  options.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
  options.frames_per_item = 4;
  const OfflineKnowledge knowledge = run_offline_training(bank, {1}, 42, options);

  EecsSimulationConfig base;
  base.dataset = 1;
  base.mode = SelectionMode::AllBest;
  base.budget_per_frame = 3.0;
  base.controller.algorithms = options.algorithms;
  base.models = options;
  base.end_frame = 1900;  // One recalibration round.

  // --- Graceful degradation: sweep the uplink loss rate. Detections the
  // controller never receives do not count, but lost transmissions still cost
  // the camera energy, so efficiency falls with the loss rate.
  std::printf("uplink loss | detected | msgs lost/sent | retries | radio J\n");
  for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
    EecsSimulationConfig config = base;
    config.uplink.loss_probability = loss;
    config.downlink.loss_probability = loss;
    const SimulationResult r = run_eecs_simulation(bank, knowledge, config);
    std::printf("   %4.0f %%   | %3d/%3d  |  %5ld/%5ld   |  %4ld   | %.4f\n", 100.0 * loss,
                r.humans_detected, r.humans_present, r.faults.messages_lost,
                r.faults.messages_sent, r.faults.assignments_retried, r.radio_joules);
  }

  // --- Crash and recovery: camera 2 (network node 3) dies at frame 1500 and
  // reboots at 1700 with its last-known-good assignment still in flash.
  std::printf("\ncamera 2 crashes at frame 1500, reboots at 1700...\n");
  EecsSimulationConfig config = base;
  config.faults.add_crash(3, 1500.0, 1700.0);
  const SimulationResult crashed = run_eecs_simulation(bank, knowledge, config);

  for (const auto& round : crashed.rounds) {
    std::printf("  frame %4d: %s%d cameras active  (n*=%.2f, n_est=%.2f)  %s\n",
                round.start_frame,
                round.midround_recovery ? "mid-round re-selection -> " : "scheduled round   -> ",
                round.stats.cameras_active, round.stats.n_star, round.stats.n_est,
                round.stats.summary.c_str());
  }
  std::printf("  cameras declared dead: %d, recovered: %d\n", crashed.faults.cameras_failed,
              crashed.faults.cameras_recovered);

  const SimulationResult intact = run_eecs_simulation(bank, knowledge, base);
  std::printf("\ndetections: intact network %d, with crash+reboot %d (of %d present)\n",
              intact.humans_detected, crashed.humans_detected, crashed.humans_present);
  std::printf("\nThe loop survives silent cameras: the liveness tracker times the camera\n"
              "out, the controller re-selects over the survivors, and the rebooted node\n"
              "rejoins with its last-known-good assignment.\n");
  return 0;
}
