// Scenario: capacity planning for a surveillance installation. Sweeps the
// per-frame energy budget and shows which algorithms become affordable at
// each level and what accuracy/energy EECS achieves — the "knob" an operator
// would tune before deployment (§VI, "we use different budget values to
// evaluate how EECS adaptively chooses different algorithms").
#include <cstdio>

#include "common/strings.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace eecs;
  using namespace eecs::core;

  std::printf("training detectors + offline profiles (indoor lab scene)...\n");
  const DetectorBank bank = detect::make_trained_detectors(1);
  OfflineOptions options;
  options.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf,
                        detect::AlgorithmId::C4};
  const OfflineKnowledge knowledge = run_offline_training(bank, {1}, 7, options);

  // What each algorithm costs on this scene (camera 0's profile).
  std::printf("\nPer-frame cost of each algorithm on this scene:\n");
  for (const auto& p : knowledge.profile(0).algorithms) {
    std::printf("  %-5s f-score %.2f at %.2f J/frame\n", detect::to_string(p.id),
                p.accuracy.f_score, p.total_joules_per_frame());
  }

  std::vector<std::vector<std::string>> rows;
  for (const double budget : {0.2, 0.8, 3.0, 10.0}) {
    EecsSimulationConfig config;
    config.dataset = 1;
    config.mode = SelectionMode::SubsetDowngrade;
    config.budget_per_frame = budget;
    config.controller.algorithms = options.algorithms;
    config.models = options;
    config.end_frame = 2000;  // One recalibration round is enough here.

    // Which algorithms fit this budget anywhere?
    std::string affordable;
    for (const auto& p : knowledge.profile(0).algorithms) {
      if (p.total_joules_per_frame() <= budget) {
        affordable += detect::to_string(p.id);
        affordable += " ";
      }
    }
    if (affordable.empty()) {
      rows.push_back({to_fixed(budget, 1), "(none)", "-", "-", "-"});
      continue;
    }
    const SimulationResult result = run_eecs_simulation(bank, knowledge, config);
    rows.push_back({to_fixed(budget, 1), affordable, to_fixed(result.total_joules(), 1),
                    format("%d/%d", result.humans_detected, result.humans_present),
                    result.rounds.empty() ? "-" : result.rounds.front().stats.summary});
  }

  std::printf("\nBudget sweep (dataset #1, frames 1000-2000, subset+downgrade):\n%s\n",
              render_table({"Budget J", "Affordable", "Energy J", "Humans", "Selection"}, rows)
                  .c_str());
  std::printf("Higher budgets admit more accurate algorithms; EECS spends only as much of\n"
              "the allowance as the accuracy target needs.\n");
  return 0;
}
