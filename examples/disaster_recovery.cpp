// Scenario: a search-and-rescue deployment (the paper's §I motivation).
// Battery-powered cameras are dropped around an outdoor area and must keep
// detecting people for a 6-hour operation. This example uses the §VI budget
// arithmetic to derive each camera's per-frame energy budget from the
// desired operation time, runs the EECS loop, and reports projected battery
// life with and without coordination.
#include <cstdio>

#include "core/simulation.hpp"

int main() {
  using namespace eecs;
  using namespace eecs::core;

  // Mission parameters: 6 hours of operation, one processed frame per 2 s,
  // a 2000 J battery reserve per node (a fraction of a phone battery).
  energy::BudgetPlan plan;
  plan.operation_hours = 6.0;
  plan.seconds_per_frame = 2.0;
  const double battery_joules = 2000.0;
  const double budget = plan.per_frame_budget(battery_joules);
  std::printf("Mission: %.0f h, frame every %.0f s -> %ld frames to cover\n",
              plan.operation_hours, plan.seconds_per_frame, plan.frames_remaining());
  std::printf("Battery %.0f J -> per-frame budget B_j = %.3f J\n\n", battery_joules, budget);

  std::printf("training detectors + offline profiles (outdoor terrace scene)...\n");
  const DetectorBank bank = detect::make_trained_detectors(1);
  OfflineOptions options;
  options.algorithms = {detect::AlgorithmId::Hog, detect::AlgorithmId::Acf};
  const OfflineKnowledge knowledge = run_offline_training(bank, {3}, 7, options);

  for (const auto& item : knowledge.profiles()) {
    const AlgorithmProfile* affordable = item.best_affordable(budget);
    std::printf("%s: best affordable algorithm under B_j: %s\n", item.label.c_str(),
                affordable != nullptr ? detect::to_string(affordable->id) : "(none!)");
  }

  // Run the adaptive loop on a slice of the mission.
  EecsSimulationConfig config;
  config.dataset = 3;
  config.mode = SelectionMode::SubsetDowngrade;
  config.budget_per_frame = budget;
  config.controller.algorithms = options.algorithms;
  config.models = options;
  config.end_frame = 2200;
  const SimulationResult eecs = run_eecs_simulation(bank, knowledge, config);

  config.mode = SelectionMode::AllBest;
  const SimulationResult baseline = run_eecs_simulation(bank, knowledge, config);

  auto report = [&](const char* name, const SimulationResult& r) {
    const double joules_per_frame = r.total_joules() / std::max(1, r.gt_frames_processed) / 4.0;
    const double hours = battery_joules / std::max(1e-9, joules_per_frame) *
                         plan.seconds_per_frame / 3600.0;
    std::printf("%-28s %.1f J over %d frames | found %d/%d people | projected battery life"
                " %.1f h\n",
                name, r.total_joules(), r.gt_frames_processed, r.humans_detected,
                r.humans_present, hours);
  };
  std::printf("\n");
  report("all cameras, best algorithm:", baseline);
  report("EECS coordination:", eecs);
  std::printf("\nEECS stretches the same batteries over a longer mission while still\n"
              "finding nearly all the people in the scene.\n");
  return 0;
}
