// Controller-side video comparison: holds the subspace summaries of the
// training items and matches incoming feature uploads against them (§IV-B.2,
// "Rank ordering the detection algorithms").
#pragma once

#include <string>
#include <vector>

#include "domain/gfk.hpp"

namespace eecs::domain {

struct ComparatorParams {
  int subspace_dim = 10;       ///< beta.
  double distance_scale = 1.0; ///< See video_similarity.
};

class VideoComparator {
 public:
  explicit VideoComparator(const ComparatorParams& params = {}) : params_(params) {}

  /// Register a training item from its k x alpha frame-feature matrix;
  /// returns the item's index. All items must share alpha.
  int add_training_item(const linalg::Matrix& frame_features, std::string label = {});

  [[nodiscard]] int item_count() const { return static_cast<int>(items_.size()); }
  [[nodiscard]] const std::string& label(int index) const;

  /// Similarity between training item `index` and an incoming feature matrix.
  [[nodiscard]] double similarity(int index, const linalg::Matrix& incoming_features) const;

  struct Match {
    int best_index = -1;
    double best_similarity = 0.0;
    std::vector<double> similarities;  ///< Per training item.
  };

  /// Similarities against every training item; best_index is T_i* (§IV-B.2).
  /// Requires at least one registered item.
  [[nodiscard]] Match best_match(const linalg::Matrix& incoming_features) const;

  [[nodiscard]] const ComparatorParams& params() const { return params_; }

 private:
  ComparatorParams params_;
  std::vector<VideoSubspace> items_;
  std::vector<std::string> labels_;
};

}  // namespace eecs::domain
