#include "domain/gfk.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decomp.hpp"
#include "linalg/pca.hpp"

namespace eecs::domain {

using linalg::Matrix;

VideoSubspace build_subspace(const Matrix& frame_features, int subspace_dim) {
  EECS_EXPECTS(frame_features.rows() >= 2);
  EECS_EXPECTS(subspace_dim >= 1 && subspace_dim < frame_features.cols());
  // The uncentered SVD yields at most min(k, alpha) directions.
  EECS_EXPECTS(subspace_dim <= frame_features.rows());
  // Uncentered SVD: the leading direction is (near) the mean frame feature,
  // so each video's subspace captures where its features *live*, not only how
  // they vary. This matters because the geodesic kernel weights directions
  // outside both subspaces by zero — with centered PCA the mean offset
  // between two different scenes would be invisible to the distance.
  const linalg::SvdResult svd = linalg::svd_decompose(frame_features);
  linalg::Matrix basis = svd.v.slice_cols(0, subspace_dim);
  linalg::Matrix complement = linalg::orthogonal_complement(basis);
  return {frame_features, std::move(basis), std::move(complement)};
}

namespace {

/// Lambda integrals of the geodesic flow (Gong et al., closed form):
///   l1 = 1 + sin(2t)/(2t), l2 = (cos(2t) - 1)/(2t), l3 = 1 - sin(2t)/(2t),
/// with the t -> 0 limits (2, 0, 0) evaluated by series.
struct Lambdas {
  double l1, l2, l3;
};

Lambdas lambda_integrals(double theta) {
  constexpr double kEps = 1e-7;
  if (theta < kEps) {
    // sin(2t)/(2t) ~ 1 - (2t)^2/6; (cos(2t)-1)/(2t) ~ -t.
    return {2.0 - 2.0 * theta * theta / 3.0, -theta, 2.0 * theta * theta / 3.0};
  }
  const double s = std::sin(2.0 * theta) / (2.0 * theta);
  const double c = (std::cos(2.0 * theta) - 1.0) / (2.0 * theta);
  return {1.0 + s, c, 1.0 - s};
}

}  // namespace

std::vector<double> principal_angles(const Matrix& basis_x, const Matrix& basis_z) {
  EECS_EXPECTS(basis_x.rows() == basis_z.rows() && basis_x.cols() == basis_z.cols());
  const linalg::SvdResult svd = linalg::svd_decompose(linalg::transpose_times(basis_x, basis_z));
  std::vector<double> angles;
  angles.reserve(svd.singular_values.size());
  // Singular values are cosines, descending -> angles ascending.
  for (double g : svd.singular_values) angles.push_back(std::acos(std::clamp(g, -1.0, 1.0)));
  return angles;
}

Matrix geodesic_flow_kernel(const Matrix& basis_x, const Matrix& basis_z) {
  // x~: orthogonal complement of the source basis (Table I).
  return geodesic_flow_kernel(basis_x, linalg::orthogonal_complement(basis_x), basis_z);
}

Matrix geodesic_flow_kernel(const Matrix& basis_x, const Matrix& complement,
                            const Matrix& basis_z) {
  EECS_EXPECTS(basis_x.rows() == basis_z.rows() && basis_x.cols() == basis_z.cols());
  EECS_EXPECTS(complement.rows() == basis_x.rows());
  EECS_EXPECTS(complement.cols() == basis_x.rows() - basis_x.cols());
  const int alpha = basis_x.rows();
  const int beta = basis_x.cols();
  EECS_EXPECTS(beta >= 1 && beta < alpha);

  // Generalized SVD pieces: x^T z = U1 Gamma V^T, x~^T z = -U2 Sigma V^T
  // (shared right factor V). U2 is recovered column-wise from B V / -sigma.
  const Matrix a = linalg::transpose_times(basis_x, basis_z);       // beta x beta
  const linalg::SvdResult svd = linalg::svd_decompose(a);
  const Matrix& u1 = svd.u;
  const Matrix& v = svd.v;

  const Matrix b = linalg::transpose_times(complement, basis_z);  // (alpha-beta) x beta
  const Matrix bv = b * v;

  Matrix u2(complement.cols(), beta);
  std::vector<double> thetas(static_cast<std::size_t>(beta));
  for (int i = 0; i < beta; ++i) {
    const double gamma = std::clamp(svd.singular_values[static_cast<std::size_t>(i)], 0.0, 1.0);
    double sigma = 0.0;
    for (int r = 0; r < bv.rows(); ++r) sigma += bv(r, i) * bv(r, i);
    sigma = std::sqrt(sigma);
    thetas[static_cast<std::size_t>(i)] = std::atan2(sigma, gamma);
    if (sigma > 1e-10) {
      for (int r = 0; r < bv.rows(); ++r) u2(r, i) = -bv(r, i) / sigma;
    }
    // sigma ~ 0: the angle is ~0 and lambda2/lambda3 vanish, so the zero
    // column contributes nothing.
  }

  // G = [x U1, x~ U2] [L1 L2; L2 L3] [ (x U1)^T; (x~ U2)^T ].
  const Matrix p1 = basis_x * u1;      // alpha x beta
  const Matrix p2 = complement * u2;   // alpha x beta

  Matrix g(alpha, alpha);
  for (int i = 0; i < beta; ++i) {
    const Lambdas lam = lambda_integrals(thetas[static_cast<std::size_t>(i)]);
    for (int r = 0; r < alpha; ++r) {
      const double p1r = p1(r, i);
      const double p2r = p2(r, i);
      const double row1 = lam.l1 * p1r + lam.l2 * p2r;
      const double row2 = lam.l2 * p1r + lam.l3 * p2r;
      if (row1 == 0.0 && row2 == 0.0) continue;
      auto grow = g.row(r);
      for (int c = 0; c < alpha; ++c) {
        grow[static_cast<std::size_t>(c)] += row1 * p1(c, i) + row2 * p2(c, i);
      }
    }
  }
  return g;
}

Matrix kernel_distance_matrix(const Matrix& t_features, const Matrix& v_features,
                              const Matrix& w) {
  EECS_EXPECTS(t_features.cols() == w.rows() && v_features.cols() == w.rows());
  EECS_EXPECTS(w.rows() == w.cols());
  const int k1 = t_features.rows();
  const int k2 = v_features.rows();

  // Precompute W-weighted feature products.
  const Matrix tw = t_features * w;  // k1 x alpha
  const Matrix vw = v_features * w;  // k2 x alpha

  std::vector<double> t_quad(static_cast<std::size_t>(k1));
  for (int i = 0; i < k1; ++i) t_quad[static_cast<std::size_t>(i)] = linalg::dot(tw.row(i), t_features.row(i));
  std::vector<double> v_quad(static_cast<std::size_t>(k2));
  for (int j = 0; j < k2; ++j) v_quad[static_cast<std::size_t>(j)] = linalg::dot(vw.row(j), v_features.row(j));

  Matrix k(k1, k2);
  for (int i = 0; i < k1; ++i) {
    for (int j = 0; j < k2; ++j) {
      const double cross = linalg::dot(tw.row(i), v_features.row(j));
      k(i, j) = t_quad[static_cast<std::size_t>(i)] + v_quad[static_cast<std::size_t>(j)] -
                2.0 * cross;
    }
  }
  return k;
}

double mean_manifold_distance(const Matrix& kernel_distances) {
  EECS_EXPECTS(!kernel_distances.empty());
  double sum = 0.0;
  for (int i = 0; i < kernel_distances.rows(); ++i) {
    for (int j = 0; j < kernel_distances.cols(); ++j) sum += kernel_distances(i, j);
  }
  return sum / (static_cast<double>(kernel_distances.rows()) *
                static_cast<double>(kernel_distances.cols()));
}

double similarity_from_distance(double mean_distance) {
  return std::exp(-std::max(0.0, mean_distance));
}

double video_similarity(const VideoSubspace& t, const VideoSubspace& v, double distance_scale) {
  const Matrix w = t.complement.empty() ? geodesic_flow_kernel(t.basis, v.basis)
                                        : geodesic_flow_kernel(t.basis, t.complement, v.basis);
  const Matrix k = kernel_distance_matrix(t.features, v.features, w);
  return similarity_from_distance(distance_scale * mean_manifold_distance(k));
}

}  // namespace eecs::domain
