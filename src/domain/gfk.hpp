// Geodesic flow kernel on the Grassmann manifold (Gong et al. CVPR'12 — the
// paper's [2]), implementing §III equations (1)-(5): video feeds are reduced
// to PCA subspaces, projected on Gr(beta, R^alpha), and compared through the
// closed-form geodesic kernel W_ij.
#pragma once

#include "linalg/matrix.hpp"

namespace eecs::domain {

/// PCA subspace summary of one video item: row-major frame features plus the
/// orthonormal basis x_i (Table I) of their top-beta principal directions.
struct VideoSubspace {
  linalg::Matrix features;    ///< k x alpha frame features (t_i / v_j rows).
  linalg::Matrix basis;       ///< alpha x beta orthonormal (x_i / z_j).
  linalg::Matrix complement;  ///< alpha x (alpha-beta), x~ with x~^T x = 0 (cached).
};

/// Build the subspace of a video item from its per-frame features (rows).
/// Requires at least 2 frames and 1 <= subspace_dim < alpha.
[[nodiscard]] VideoSubspace build_subspace(const linalg::Matrix& frame_features,
                                           int subspace_dim);

/// The geodesic flow kernel W_ij (Eq. 2): an alpha x alpha PSD matrix such
/// that t W v equals the integral (Eq. 1) of inner products along the
/// geodesic between the two subspaces. Bases must have equal shapes.
[[nodiscard]] linalg::Matrix geodesic_flow_kernel(const linalg::Matrix& basis_x,
                                                  const linalg::Matrix& basis_z);

/// Same, with a precomputed orthogonal complement of basis_x (avoids an
/// alpha x alpha QR per comparison).
[[nodiscard]] linalg::Matrix geodesic_flow_kernel(const linalg::Matrix& basis_x,
                                                  const linalg::Matrix& complement_x,
                                                  const linalg::Matrix& basis_z);

/// Kernel distance matrix K(T_i, V_j) (Eq. 3): element (m1, m2) is the
/// squared kernel distance between frame m1 of T and frame m2 of V under W.
[[nodiscard]] linalg::Matrix kernel_distance_matrix(const linalg::Matrix& t_features,
                                                    const linalg::Matrix& v_features,
                                                    const linalg::Matrix& w);

/// Mean manifold distance M_d (Eq. 4): mean of all entries of K.
[[nodiscard]] double mean_manifold_distance(const linalg::Matrix& kernel_distances);

/// Similarity Sim = exp(-M_d) (Eq. 5), in [0, 1] for M_d >= 0.
[[nodiscard]] double similarity_from_distance(double mean_distance);

/// Full pipeline: Sim(T, V) between two subspace summaries. `distance_scale`
/// multiplies M_d before the exponential, setting the dynamic range of the
/// similarity table (the paper's Table V sits in ~[0.34, 0.81]).
[[nodiscard]] double video_similarity(const VideoSubspace& t, const VideoSubspace& v,
                                      double distance_scale = 1.0);

/// Principal angles between two equal-shape orthonormal bases, ascending.
[[nodiscard]] std::vector<double> principal_angles(const linalg::Matrix& basis_x,
                                                   const linalg::Matrix& basis_z);

}  // namespace eecs::domain
