#include "domain/comparator.hpp"

namespace eecs::domain {

int VideoComparator::add_training_item(const linalg::Matrix& frame_features, std::string label) {
  if (!items_.empty()) {
    EECS_EXPECTS(frame_features.cols() == items_.front().features.cols());
  }
  items_.push_back(build_subspace(frame_features, params_.subspace_dim));
  labels_.push_back(std::move(label));
  return static_cast<int>(items_.size()) - 1;
}

const std::string& VideoComparator::label(int index) const {
  EECS_EXPECTS(index >= 0 && index < item_count());
  return labels_[static_cast<std::size_t>(index)];
}

double VideoComparator::similarity(int index, const linalg::Matrix& incoming_features) const {
  EECS_EXPECTS(index >= 0 && index < item_count());
  const VideoSubspace incoming = build_subspace(incoming_features, params_.subspace_dim);
  return video_similarity(items_[static_cast<std::size_t>(index)], incoming,
                          params_.distance_scale);
}

VideoComparator::Match VideoComparator::best_match(const linalg::Matrix& incoming_features) const {
  EECS_EXPECTS(!items_.empty());
  const VideoSubspace incoming = build_subspace(incoming_features, params_.subspace_dim);
  Match match;
  match.similarities.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const double sim = video_similarity(items_[i], incoming, params_.distance_scale);
    match.similarities.push_back(sim);
    if (sim > match.best_similarity) {
      match.best_similarity = sim;
      match.best_index = static_cast<int>(i);
    }
  }
  return match;
}

}  // namespace eecs::domain
