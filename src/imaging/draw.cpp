#include "imaging/draw.hpp"

#include <algorithm>
#include <cmath>

namespace eecs::imaging {

namespace {

struct PixelRange {
  int x0, y0, x1, y1;
};

PixelRange clip_to_image(const Image& img, const Rect& r) {
  return {std::clamp(static_cast<int>(std::floor(r.x)), 0, img.width()),
          std::clamp(static_cast<int>(std::floor(r.y)), 0, img.height()),
          std::clamp(static_cast<int>(std::ceil(r.right())), 0, img.width()),
          std::clamp(static_cast<int>(std::ceil(r.bottom())), 0, img.height())};
}

void blend(Image& img, int x, int y, const Color& color, float alpha) {
  for (int c = 0; c < img.channels(); ++c) {
    const float src = img.channels() == 3 ? color[static_cast<std::size_t>(c)]
                                          : (color[0] + color[1] + color[2]) / 3.0f;
    float& dst = img.at(x, y, c);
    dst = std::clamp((1.0f - alpha) * dst + alpha * src, 0.0f, 1.0f);
  }
}

}  // namespace

void fill_rect(Image& img, const Rect& r, const Color& color, float alpha) {
  const PixelRange p = clip_to_image(img, r);
  for (int y = p.y0; y < p.y1; ++y) {
    for (int x = p.x0; x < p.x1; ++x) blend(img, x, y, color, alpha);
  }
}

void fill_ellipse(Image& img, const Rect& r, const Color& color, float alpha) {
  if (r.w <= 0 || r.h <= 0) return;
  const PixelRange p = clip_to_image(img, r);
  const double cx = r.center_x();
  const double cy = r.center_y();
  const double rx = r.w / 2.0;
  const double ry = r.h / 2.0;
  for (int y = p.y0; y < p.y1; ++y) {
    for (int x = p.x0; x < p.x1; ++x) {
      const double dx = (static_cast<double>(x) + 0.5 - cx) / rx;
      const double dy = (static_cast<double>(y) + 0.5 - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) blend(img, x, y, color, alpha);
    }
  }
}

float hash_noise(int x, int y, unsigned seed) {
  unsigned h = static_cast<unsigned>(x) * 374761393u + static_cast<unsigned>(y) * 668265263u + seed * 2246822519u;
  h = (h ^ (h >> 13)) * 1274126177u;
  h ^= h >> 16;
  return static_cast<float>(h & 0xffffffu) / static_cast<float>(0xffffffu);
}

float fractal_noise(float x, float y, unsigned seed, int octaves) {
  float total = 0.0f;
  float amplitude = 1.0f;
  float norm = 0.0f;
  float fx = x, fy = y;
  for (int o = 0; o < octaves; ++o) {
    // Bilinear interpolation of lattice hash noise.
    const int ix = static_cast<int>(std::floor(fx));
    const int iy = static_cast<int>(std::floor(fy));
    const float tx = fx - static_cast<float>(ix);
    const float ty = fy - static_cast<float>(iy);
    const float v00 = hash_noise(ix, iy, seed + static_cast<unsigned>(o));
    const float v10 = hash_noise(ix + 1, iy, seed + static_cast<unsigned>(o));
    const float v01 = hash_noise(ix, iy + 1, seed + static_cast<unsigned>(o));
    const float v11 = hash_noise(ix + 1, iy + 1, seed + static_cast<unsigned>(o));
    const float v = (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 + (1 - tx) * ty * v01 + tx * ty * v11;
    total += amplitude * v;
    norm += amplitude;
    amplitude *= 0.5f;
    fx *= 2.0f;
    fy *= 2.0f;
  }
  return total / norm;
}

void apply_texture(Image& img, const Rect& r, unsigned seed, float amplitude, float scale) {
  const PixelRange p = clip_to_image(img, r);
  for (int y = p.y0; y < p.y1; ++y) {
    for (int x = p.x0; x < p.x1; ++x) {
      const float n = fractal_noise(static_cast<float>(x) / scale, static_cast<float>(y) / scale, seed);
      const float gain = 1.0f + amplitude * (n - 0.5f);
      for (int c = 0; c < img.channels(); ++c) {
        float& v = img.at(x, y, c);
        v = std::clamp(v * gain, 0.0f, 1.0f);
      }
    }
  }
}

}  // namespace eecs::imaging
