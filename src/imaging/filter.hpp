// Separable filters, gradients, and image pyramids.
#pragma once

#include <span>
#include <vector>

#include "imaging/image.hpp"

namespace eecs::imaging {

/// Separable box blur with the given (odd) kernel radius per channel.
[[nodiscard]] Image box_blur(const Image& img, int radius);

/// Separable Gaussian blur; kernel radius derived from sigma (3*sigma).
[[nodiscard]] Image gaussian_blur(const Image& img, float sigma);

/// Additive zero-mean Gaussian pixel noise, clamped to [0, 1].
class Rng;

struct Gradients {
  Image magnitude;    ///< Single channel.
  Image orientation;  ///< Single channel, radians in [0, pi) (unsigned).
};

/// Central-difference gradients of a grayscale image (converts if needed).
[[nodiscard]] Gradients compute_gradients(const Image& img);

/// Magnitude + orientation of pixel rows [y0, y1) of a single-channel image,
/// written row-major into caller buffers of width gray.width(). One fused
/// pass per row; every per-pixel value is bit-identical to the same rows of
/// compute_gradients(). Lets band-oriented consumers (the HOG cell binning
/// tile sweep) stream gradients through an L1-resident scratch instead of
/// materializing whole planes.
void gradient_band(const Image& gray, int y0, int y1, float* mag, float* ori);

/// Bilinear resize to the exact target size.
[[nodiscard]] Image resize(const Image& img, int new_width, int new_height);

/// Bilinear resize of a whole batch of same-sized images to one target size.
/// Bit-identical to calling resize() per image (same per-pixel arithmetic);
/// the per-column source index/weight tables are computed once and streamed
/// across every image, so a round's cameras share the planning work. Images
/// must all have the same dimensions and channel count.
[[nodiscard]] std::vector<Image> resize_batch(std::span<const Image* const> imgs, int new_width,
                                              int new_height);

/// Downsample by an integer factor using block averaging (used by ACF).
[[nodiscard]] Image block_downsample(const Image& img, int factor);

}  // namespace eecs::imaging
