// Axis-aligned rectangle in pixel coordinates. Used for detections, ground
// truth boxes, and drawing.
#pragma once

#include <algorithm>

namespace eecs::imaging {

struct Rect {
  double x = 0.0;  ///< Left edge.
  double y = 0.0;  ///< Top edge.
  double w = 0.0;
  double h = 0.0;

  [[nodiscard]] double right() const { return x + w; }
  [[nodiscard]] double bottom() const { return y + h; }
  [[nodiscard]] double area() const { return (w > 0 && h > 0) ? w * h : 0.0; }
  [[nodiscard]] double center_x() const { return x + w / 2.0; }
  [[nodiscard]] double center_y() const { return y + h / 2.0; }
  /// Center of the bottom edge — the "foot point" assumed to lie on the
  /// ground plane (paper §IV-C).
  [[nodiscard]] double foot_x() const { return center_x(); }
  [[nodiscard]] double foot_y() const { return bottom(); }

  [[nodiscard]] bool contains(double px, double py) const {
    return px >= x && px < right() && py >= y && py < bottom();
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

[[nodiscard]] inline Rect intersect(const Rect& a, const Rect& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.right(), b.right());
  const double y1 = std::min(a.bottom(), b.bottom());
  if (x1 <= x0 || y1 <= y0) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

/// Intersection-over-union; 0 when either box is empty.
[[nodiscard]] inline double iou(const Rect& a, const Rect& b) {
  const double inter = intersect(a, b).area();
  const double uni = a.area() + b.area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace eecs::imaging
