// JPEG compressed-size model. The testbed transfers JPEG-compressed frames
// over WiFi (paper §VI, "Computing energy costs and budget"); we do not need
// the actual codec, only a faithful byte count, because the radio energy
// model charges per byte. Compressed size is estimated from image activity
// (mean gradient magnitude), which is what drives JPEG entropy in practice.
#pragma once

#include <cstddef>

#include "imaging/image.hpp"
#include "imaging/rect.hpp"

namespace eecs::imaging {

struct JpegModel {
  /// Bits per pixel for a completely flat image at quality ~80.
  double base_bpp = 0.18;
  /// Additional bits per pixel per unit of mean gradient magnitude.
  double activity_bpp = 7.0;
  /// Fixed header/metadata bytes.
  std::size_t header_bytes = 600;

  /// Estimated compressed size of the whole frame in bytes.
  [[nodiscard]] std::size_t frame_bytes(const Image& img) const;

  /// Estimated compressed size of a cropped region (sensors upload only the
  /// detected-object crops in EECS).
  [[nodiscard]] std::size_t region_bytes(const Image& img, const Rect& region) const;
};

}  // namespace eecs::imaging
