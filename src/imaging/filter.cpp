#include "imaging/filter.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/atan2.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace eecs::imaging {

namespace {

/// Row-partition grain: pixel rows are cheap, so only images tall enough to
/// amortize task handoff are split. Each (channel, row) writes its own output
/// row — bit-identical at any thread count.
constexpr std::size_t kRowGrain = 48;

/// Parallel loop over every (channel, row) pair of a `channels` x `height`
/// plane set.
void parallel_rows(int channels, int height, const std::function<void(int, int)>& body) {
  common::parallel_for(static_cast<std::size_t>(channels) * static_cast<std::size_t>(height),
                       kRowGrain, [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           body(static_cast<int>(i / static_cast<std::size_t>(height)),
                                static_cast<int>(i % static_cast<std::size_t>(height)));
                         }
                       });
}

// The filter/resize/gradient kernels below are lane-blocked over OUTPUT
// pixels: each lane owns one output element and accumulates its own chain in
// the same term order as the scalar loop, so the native and emulated pack
// instantiations (and the scalar edge/tail code) are bit-identical by
// construction. See common/simd.hpp and DESIGN.md "SIMD & portability".

/// Horizontal tap pass of one row: dst[x] = sum_k kernel[k] * row[clamp(x+k)].
template <class F4>
void filter_row_horizontal(const float* row, int w, std::span<const float> kernel, int radius,
                           float* dst) {
  const int taps = static_cast<int>(kernel.size());
  const auto clamped = [&](int x) { return row[x < 0 ? 0 : (x >= w ? w - 1 : x)]; };
  const int lo = std::min(radius, w);
  const int hi = std::max(lo, w - radius);
  int x = 0;
  for (; x < lo; ++x) {
    float s = 0.0f;
    for (int k = 0; k < taps; ++k) s += kernel[static_cast<std::size_t>(k)] * clamped(x + k - radius);
    dst[x] = s;
  }
  for (; x + F4::kLanes <= hi; x += F4::kLanes) {
    F4 acc = F4::broadcast(0.0f);
    const float* base = row + x - radius;
    for (int k = 0; k < taps; ++k) {
      acc = acc + F4::broadcast(kernel[static_cast<std::size_t>(k)]) * F4::load(base + k);
    }
    acc.store(dst + x);
  }
  for (; x < w; ++x) {
    float s = 0.0f;
    for (int k = 0; k < taps; ++k) s += kernel[static_cast<std::size_t>(k)] * clamped(x + k - radius);
    dst[x] = s;
  }
}

/// Vertical tap pass of one output row: dst[x] = sum_k kernel[k] * rows[k][x],
/// where rows[k] is the clamped source row y + k - radius.
template <class F4>
void filter_row_vertical(const float* const* rows, int w, std::span<const float> kernel,
                         float* dst) {
  const int taps = static_cast<int>(kernel.size());
  int x = 0;
  for (; x + F4::kLanes <= w; x += F4::kLanes) {
    F4 acc = F4::broadcast(0.0f);
    for (int k = 0; k < taps; ++k) {
      acc = acc + F4::broadcast(kernel[static_cast<std::size_t>(k)]) * F4::load(rows[k] + x);
    }
    acc.store(dst + x);
  }
  for (; x < w; ++x) {
    float s = 0.0f;
    for (int k = 0; k < taps; ++k) s += kernel[static_cast<std::size_t>(k)] * rows[k][x];
    dst[x] = s;
  }
}

/// Horizontal then vertical pass with an arbitrary normalized kernel.
Image separable_filter(const Image& img, std::span<const float> kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  const int w = img.width();
  const int h = img.height();
  Image tmp = Image::uninitialized(w, h, img.channels());
  Image out = Image::uninitialized(w, h, img.channels());
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    parallel_rows(img.channels(), h, [&](int c, int y) {
      const float* row =
          img.plane(c).data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      float* dst = tmp.plane(c).data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      filter_row_horizontal<F4>(row, w, kernel, radius, dst);
    });
    parallel_rows(img.channels(), h, [&](int c, int y) {
      const float* src = tmp.plane(c).data();
      std::vector<const float*> rows(kernel.size());
      for (int k = 0; k < static_cast<int>(kernel.size()); ++k) {
        const int yy = std::clamp(y + k - radius, 0, h - 1);
        rows[static_cast<std::size_t>(k)] =
            src + static_cast<std::size_t>(yy) * static_cast<std::size_t>(w);
      }
      float* dst = out.plane(c).data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      filter_row_vertical<F4>(rows.data(), w, kernel, dst);
    });
  });
  return out;
}

/// Magnitude and orientation of one row in a single fused pass: the gx/gy
/// subtractions are computed once and feed both the sqrt chain and the
/// vendored fdlibm atan2f (bit-exact with the libm values the goldens were
/// recorded against, see common/atan2.hpp), folded into [0, pi) with mask
/// blends. Per-pixel values are identical to running the two passes
/// separately — only the duplicate loads/subtractions are gone.
template <class F4>
void gradient_row_fused(const float* row, const float* up, const float* dn, int w, float* mrow,
                        float* orow) {
  constexpr float kPi = std::numbers::pi_v<float>;
  const auto scalar_px = [&](int x) {
    const int xl = x > 0 ? x - 1 : 0;
    const int xr = x + 1 < w ? x + 1 : w - 1;
    const float gx = row[xr] - row[xl];
    const float gy = dn[x] - up[x];
    mrow[x] = std::sqrt(gx * gx + gy * gy);
    float theta = simd::atan2f_portable(gy, gx);  // [-pi, pi]
    if (theta < 0.0f) theta += kPi;
    if (theta >= kPi) theta -= kPi;
    orow[x] = theta;
  };
  if (w == 0) return;
  scalar_px(0);
  const F4 pi = F4::broadcast(kPi);
  const F4 zero = F4::broadcast(0.0f);
  int x = 1;
  using U = typename F4::Mask;
  for (; x + F4::kLanes <= w - 1; x += F4::kLanes) {
    const F4 gx = F4::load(row + x + 1) - F4::load(row + x - 1);
    const F4 gy = F4::load(dn + x) - F4::load(up + x);
    // Flat-region fast path: when every lane has gx = gy = +0.0 (equal
    // neighbors subtract to +0 in round-to-nearest), sqrt(+0) is +0,
    // atan2f(+0, +0) is +0 and the [0, pi) fold keeps it — store zeros and
    // skip the polynomial. Bit-identical, and common in synthetic scenes
    // with flat backgrounds.
    if (!U::any(F4::to_bits(gx) | F4::to_bits(gy))) {
      zero.store(mrow + x);
      zero.store(orow + x);
      continue;
    }
    const F4 mag = F4::sqrt(gx * gx + gy * gy);
    mag.store(mrow + x);
    const F4 theta = simd::atan2f_pack<F4>(gy, gx);
    const F4 shifted = F4::select(F4::lt(theta, zero), theta + pi, theta);
    const F4 wrapped = F4::select(F4::ge(shifted, pi), shifted - pi, shifted);
    wrapped.store(orow + x);
  }
  for (; x < w; ++x) scalar_px(x);
}

/// One output row of the bilinear resize: lanes gather their own four source
/// corners (per-column indices precomputed by the caller) and evaluate the
/// identical ((t00 + t10) + t01) + t11 chain as the scalar tail.
template <class F4>
void resize_row(const float* r0, const float* r1, const int* col0, const int* col1,
                const float* colw, int new_width, float wy, float* dst) {
  const float one_m_wy = 1.0f - wy;
  const F4 wyv = F4::broadcast(wy);
  const F4 one_m_wyv = F4::broadcast(one_m_wy);
  const F4 onev = F4::broadcast(1.0f);
  int x = 0;
  for (; x + F4::kLanes <= new_width; x += F4::kLanes) {
    const F4 v00 = F4::gather(r0, col0 + x);
    const F4 v10 = F4::gather(r0, col1 + x);
    const F4 v01 = F4::gather(r1, col0 + x);
    const F4 v11 = F4::gather(r1, col1 + x);
    const F4 wx = F4::load(colw + x);
    const F4 one_m_wx = onev - wx;
    const F4 s = (one_m_wx * one_m_wyv) * v00 + (wx * one_m_wyv) * v10 + (one_m_wx * wyv) * v01 +
                 (wx * wyv) * v11;
    s.store(dst + x);
  }
  for (; x < new_width; ++x) {
    const float wx = colw[x];
    const std::size_t x0 = static_cast<std::size_t>(col0[x]);
    const std::size_t x1 = static_cast<std::size_t>(col1[x]);
    const float v00 = r0[x0];
    const float v10 = r0[x1];
    const float v01 = r1[x0];
    const float v11 = r1[x1];
    dst[x] = (1 - wx) * (1 - wy) * v00 + wx * (1 - wy) * v10 +
             (1 - wx) * wy * v01 + wx * wy * v11;
  }
}

}  // namespace

Image box_blur(const Image& img, int radius) {
  EECS_EXPECTS(radius >= 0);
  if (radius == 0 || img.empty()) return img;
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1),
                            1.0f / static_cast<float>(2 * radius + 1));
  return separable_filter(img, kernel);
}

Image gaussian_blur(const Image& img, float sigma) {
  EECS_EXPECTS(sigma >= 0.0f);
  if (sigma <= 0.0f || img.empty()) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = std::exp(-0.5f * static_cast<float>(k) * static_cast<float>(k) / (sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;
  return separable_filter(img, kernel);
}

Gradients compute_gradients(const Image& img) {
  const Image gray = to_gray(img);
  Gradients g{Image::uninitialized(gray.width(), gray.height(), 1),
              Image::uninitialized(gray.width(), gray.height(), 1)};
  const int w = gray.width();
  const int h = gray.height();
  const float* src = gray.plane(0).data();
  float* mag = g.magnitude.plane(0).data();
  float* ori = g.orientation.plane(0).data();
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    parallel_rows(1, h, [&](int, int y) {
      const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      const float* up =
          src + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * static_cast<std::size_t>(w);
      const float* dn =
          src + static_cast<std::size_t>(y + 1 < h ? y + 1 : h - 1) * static_cast<std::size_t>(w);
      float* mrow = mag + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      float* orow = ori + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      gradient_row_fused<F4>(row, up, dn, w, mrow, orow);
    });
  });
  return g;
}

void gradient_band(const Image& gray, int y0, int y1, float* mag, float* ori) {
  EECS_EXPECTS(gray.channels() == 1);
  EECS_EXPECTS(y0 >= 0 && y0 <= y1 && y1 <= gray.height());
  const int w = gray.width();
  const int h = gray.height();
  const float* src = gray.plane(0).data();
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    for (int y = y0; y < y1; ++y) {
      const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      const float* up =
          src + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * static_cast<std::size_t>(w);
      const float* dn =
          src + static_cast<std::size_t>(y + 1 < h ? y + 1 : h - 1) * static_cast<std::size_t>(w);
      const std::size_t off = static_cast<std::size_t>(y - y0) * static_cast<std::size_t>(w);
      gradient_row_fused<F4>(row, up, dn, w, mag + off, ori + off);
    }
  });
}

namespace {

/// Per-output-column source indices and blend weights, plus the vertical
/// scale. A plan depends only on (source dims, target dims), so a batch of
/// same-sized images shares one plan.
struct ResizePlan {
  std::vector<int> col0;
  std::vector<int> col1;
  std::vector<float> colw;
  float sy = 0.0f;
};

ResizePlan plan_resize(int src_width, int src_height, int new_width, int new_height) {
  ResizePlan plan;
  const float sx = static_cast<float>(src_width) / static_cast<float>(new_width);
  plan.sy = static_cast<float>(src_height) / static_cast<float>(new_height);
  // The horizontal sample position is a pure function of the output column;
  // compute each column's source indices and blend weight once (the same
  // arithmetic the per-pixel form used, so the outputs are bit-identical)
  // instead of per (channel, row, column).
  plan.col0.resize(static_cast<std::size_t>(new_width));
  plan.col1.resize(static_cast<std::size_t>(new_width));
  plan.colw.resize(static_cast<std::size_t>(new_width));
  const int xlim = src_width - 1;
  for (int x = 0; x < new_width; ++x) {
    const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
    const int x0 = static_cast<int>(std::floor(fx));
    plan.colw[static_cast<std::size_t>(x)] = fx - static_cast<float>(x0);
    plan.col0[static_cast<std::size_t>(x)] = std::clamp(x0, 0, xlim);
    plan.col1[static_cast<std::size_t>(x)] = std::clamp(x0 + 1, 0, xlim);
  }
  return plan;
}

/// Resize one image through a shared plan (dims already validated).
Image resize_with_plan(const Image& img, const ResizePlan& plan, int new_width, int new_height) {
  Image out = Image::uninitialized(new_width, new_height, img.channels());
  const int ylim = img.height() - 1;
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    parallel_rows(img.channels(), new_height, [&](int c, int y) {
      const float fy = (static_cast<float>(y) + 0.5f) * plan.sy - 0.5f;
      const int y0 = static_cast<int>(std::floor(fy));
      const float wy = fy - static_cast<float>(y0);
      const float* src = img.plane(c).data();
      const float* r0 = src + static_cast<std::size_t>(std::clamp(y0, 0, ylim)) *
                                  static_cast<std::size_t>(img.width());
      const float* r1 = src + static_cast<std::size_t>(std::clamp(y0 + 1, 0, ylim)) *
                                  static_cast<std::size_t>(img.width());
      float* dst = out.plane(c).data() +
                   static_cast<std::size_t>(y) * static_cast<std::size_t>(new_width);
      resize_row<F4>(r0, r1, plan.col0.data(), plan.col1.data(), plan.colw.data(), new_width, wy,
                     dst);
    });
  });
  return out;
}

}  // namespace

Image resize(const Image& img, int new_width, int new_height) {
  EECS_EXPECTS(new_width >= 1 && new_height >= 1);
  EECS_EXPECTS(!img.empty());
  const ResizePlan plan = plan_resize(img.width(), img.height(), new_width, new_height);
  return resize_with_plan(img, plan, new_width, new_height);
}

std::vector<Image> resize_batch(std::span<const Image* const> imgs, int new_width,
                                int new_height) {
  EECS_EXPECTS(new_width >= 1 && new_height >= 1);
  std::vector<Image> out;
  out.reserve(imgs.size());
  if (imgs.empty()) return out;
  const Image& first = *imgs.front();
  EECS_EXPECTS(!first.empty());
  for (const Image* img : imgs) {
    EECS_EXPECTS(img != nullptr && img->width() == first.width() &&
                 img->height() == first.height() && img->channels() == first.channels());
  }
  const ResizePlan plan = plan_resize(first.width(), first.height(), new_width, new_height);
  for (const Image* img : imgs) {
    out.push_back(resize_with_plan(*img, plan, new_width, new_height));
  }
  return out;
}

Image block_downsample(const Image& img, int factor) {
  EECS_EXPECTS(factor >= 1);
  if (factor == 1) return img;
  const int nw = std::max(1, img.width() / factor);
  const int nh = std::max(1, img.height() / factor);
  Image out = Image::uninitialized(nw, nh, img.channels());
  const float inv = 1.0f / static_cast<float>(factor * factor);
  parallel_rows(img.channels(), nh, [&](int c, int y) {
    for (int x = 0; x < nw; ++x) {
      float s = 0.0f;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          s += img.at_clamped(x * factor + dx, y * factor + dy, c);
        }
      }
      out.at(x, y, c) = s * inv;
    }
  });
  return out;
}

}  // namespace eecs::imaging
