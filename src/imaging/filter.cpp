#include "imaging/filter.hpp"

#include <cmath>
#include <numbers>

#include "common/parallel.hpp"

namespace eecs::imaging {

namespace {

/// Row-partition grain: pixel rows are cheap, so only images tall enough to
/// amortize task handoff are split. Each (channel, row) writes its own output
/// row — bit-identical at any thread count.
constexpr std::size_t kRowGrain = 48;

/// Parallel loop over every (channel, row) pair of a `channels` x `height`
/// plane set.
void parallel_rows(int channels, int height, const std::function<void(int, int)>& body) {
  common::parallel_for(static_cast<std::size_t>(channels) * static_cast<std::size_t>(height),
                       kRowGrain, [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           body(static_cast<int>(i / static_cast<std::size_t>(height)),
                                static_cast<int>(i % static_cast<std::size_t>(height)));
                         }
                       });
}

/// Horizontal then vertical pass with an arbitrary normalized kernel.
Image separable_filter(const Image& img, std::span<const float> kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  Image tmp(img.width(), img.height(), img.channels());
  Image out(img.width(), img.height(), img.channels());
  parallel_rows(img.channels(), img.height(), [&](int c, int y) {
    for (int x = 0; x < img.width(); ++x) {
      float s = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        s += kernel[static_cast<std::size_t>(k + radius)] * img.at_clamped(x + k, y, c);
      }
      tmp.at(x, y, c) = s;
    }
  });
  parallel_rows(img.channels(), img.height(), [&](int c, int y) {
    for (int x = 0; x < img.width(); ++x) {
      float s = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        s += kernel[static_cast<std::size_t>(k + radius)] * tmp.at_clamped(x, y + k, c);
      }
      out.at(x, y, c) = s;
    }
  });
  return out;
}

}  // namespace

Image box_blur(const Image& img, int radius) {
  EECS_EXPECTS(radius >= 0);
  if (radius == 0 || img.empty()) return img;
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1),
                            1.0f / static_cast<float>(2 * radius + 1));
  return separable_filter(img, kernel);
}

Image gaussian_blur(const Image& img, float sigma) {
  EECS_EXPECTS(sigma >= 0.0f);
  if (sigma <= 0.0f || img.empty()) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = std::exp(-0.5f * static_cast<float>(k) * static_cast<float>(k) / (sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;
  return separable_filter(img, kernel);
}

Gradients compute_gradients(const Image& img) {
  const Image gray = to_gray(img);
  Gradients g{Image(gray.width(), gray.height(), 1), Image(gray.width(), gray.height(), 1)};
  const int w = gray.width();
  const int h = gray.height();
  const float* src = gray.plane(0).data();
  float* mag = g.magnitude.plane(0).data();
  float* ori = g.orientation.plane(0).data();
  parallel_rows(1, h, [&](int, int y) {
    const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
    const float* up = src + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * static_cast<std::size_t>(w);
    const float* dn =
        src + static_cast<std::size_t>(y + 1 < h ? y + 1 : h - 1) * static_cast<std::size_t>(w);
    float* mrow = mag + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
    float* orow = ori + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
    for (int x = 0; x < w; ++x) {
      const int xl = x > 0 ? x - 1 : 0;
      const int xr = x + 1 < w ? x + 1 : w - 1;
      const float gx = row[xr] - row[xl];
      const float gy = dn[x] - up[x];
      mrow[x] = std::sqrt(gx * gx + gy * gy);
      float theta = std::atan2(gy, gx);  // [-pi, pi]
      if (theta < 0.0f) theta += std::numbers::pi_v<float>;
      if (theta >= std::numbers::pi_v<float>) theta -= std::numbers::pi_v<float>;
      orow[x] = theta;
    }
  });
  return g;
}

Image resize(const Image& img, int new_width, int new_height) {
  EECS_EXPECTS(new_width >= 1 && new_height >= 1);
  EECS_EXPECTS(!img.empty());
  Image out(new_width, new_height, img.channels());
  const float sx = static_cast<float>(img.width()) / static_cast<float>(new_width);
  const float sy = static_cast<float>(img.height()) / static_cast<float>(new_height);
  // The horizontal sample position is a pure function of the output column;
  // compute each column's source indices and blend weight once (the same
  // arithmetic the per-pixel form used, so the outputs are bit-identical)
  // instead of per (channel, row, column).
  std::vector<int> col0(static_cast<std::size_t>(new_width));
  std::vector<int> col1(static_cast<std::size_t>(new_width));
  std::vector<float> colw(static_cast<std::size_t>(new_width));
  const int xlim = img.width() - 1;
  for (int x = 0; x < new_width; ++x) {
    const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
    const int x0 = static_cast<int>(std::floor(fx));
    colw[static_cast<std::size_t>(x)] = fx - static_cast<float>(x0);
    col0[static_cast<std::size_t>(x)] = std::clamp(x0, 0, xlim);
    col1[static_cast<std::size_t>(x)] = std::clamp(x0 + 1, 0, xlim);
  }
  const int ylim = img.height() - 1;
  parallel_rows(img.channels(), new_height, [&](int c, int y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = fy - static_cast<float>(y0);
    const float* src = img.plane(c).data();
    const float* r0 = src + static_cast<std::size_t>(std::clamp(y0, 0, ylim)) *
                                static_cast<std::size_t>(img.width());
    const float* r1 = src + static_cast<std::size_t>(std::clamp(y0 + 1, 0, ylim)) *
                                static_cast<std::size_t>(img.width());
    float* dst = out.plane(c).data() +
                 static_cast<std::size_t>(y) * static_cast<std::size_t>(new_width);
    for (int x = 0; x < new_width; ++x) {
      const float wx = colw[static_cast<std::size_t>(x)];
      const std::size_t x0 = static_cast<std::size_t>(col0[static_cast<std::size_t>(x)]);
      const std::size_t x1 = static_cast<std::size_t>(col1[static_cast<std::size_t>(x)]);
      const float v00 = r0[x0];
      const float v10 = r0[x1];
      const float v01 = r1[x0];
      const float v11 = r1[x1];
      dst[x] = (1 - wx) * (1 - wy) * v00 + wx * (1 - wy) * v10 +
               (1 - wx) * wy * v01 + wx * wy * v11;
    }
  });
  return out;
}

Image block_downsample(const Image& img, int factor) {
  EECS_EXPECTS(factor >= 1);
  if (factor == 1) return img;
  const int nw = std::max(1, img.width() / factor);
  const int nh = std::max(1, img.height() / factor);
  Image out(nw, nh, img.channels());
  const float inv = 1.0f / static_cast<float>(factor * factor);
  parallel_rows(img.channels(), nh, [&](int c, int y) {
    for (int x = 0; x < nw; ++x) {
      float s = 0.0f;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          s += img.at_clamped(x * factor + dx, y * factor + dy, c);
        }
      }
      out.at(x, y, c) = s * inv;
    }
  });
  return out;
}

}  // namespace eecs::imaging
