#include "imaging/filter.hpp"

#include <cmath>
#include <numbers>

#include "common/parallel.hpp"

namespace eecs::imaging {

namespace {

/// Row-partition grain: pixel rows are cheap, so only images tall enough to
/// amortize task handoff are split. Each (channel, row) writes its own output
/// row — bit-identical at any thread count.
constexpr std::size_t kRowGrain = 48;

/// Parallel loop over every (channel, row) pair of a `channels` x `height`
/// plane set.
void parallel_rows(int channels, int height, const std::function<void(int, int)>& body) {
  common::parallel_for(static_cast<std::size_t>(channels) * static_cast<std::size_t>(height),
                       kRowGrain, [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           body(static_cast<int>(i / static_cast<std::size_t>(height)),
                                static_cast<int>(i % static_cast<std::size_t>(height)));
                         }
                       });
}

/// Horizontal then vertical pass with an arbitrary normalized kernel.
Image separable_filter(const Image& img, std::span<const float> kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  Image tmp(img.width(), img.height(), img.channels());
  Image out(img.width(), img.height(), img.channels());
  parallel_rows(img.channels(), img.height(), [&](int c, int y) {
    for (int x = 0; x < img.width(); ++x) {
      float s = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        s += kernel[static_cast<std::size_t>(k + radius)] * img.at_clamped(x + k, y, c);
      }
      tmp.at(x, y, c) = s;
    }
  });
  parallel_rows(img.channels(), img.height(), [&](int c, int y) {
    for (int x = 0; x < img.width(); ++x) {
      float s = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        s += kernel[static_cast<std::size_t>(k + radius)] * tmp.at_clamped(x, y + k, c);
      }
      out.at(x, y, c) = s;
    }
  });
  return out;
}

}  // namespace

Image box_blur(const Image& img, int radius) {
  EECS_EXPECTS(radius >= 0);
  if (radius == 0 || img.empty()) return img;
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1),
                            1.0f / static_cast<float>(2 * radius + 1));
  return separable_filter(img, kernel);
}

Image gaussian_blur(const Image& img, float sigma) {
  EECS_EXPECTS(sigma >= 0.0f);
  if (sigma <= 0.0f || img.empty()) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = std::exp(-0.5f * static_cast<float>(k) * static_cast<float>(k) / (sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;
  return separable_filter(img, kernel);
}

Gradients compute_gradients(const Image& img) {
  const Image gray = to_gray(img);
  Gradients g{Image(gray.width(), gray.height(), 1), Image(gray.width(), gray.height(), 1)};
  parallel_rows(1, gray.height(), [&](int, int y) {
    for (int x = 0; x < gray.width(); ++x) {
      const float gx = gray.at_clamped(x + 1, y) - gray.at_clamped(x - 1, y);
      const float gy = gray.at_clamped(x, y + 1) - gray.at_clamped(x, y - 1);
      g.magnitude.at(x, y) = std::sqrt(gx * gx + gy * gy);
      float theta = std::atan2(gy, gx);  // [-pi, pi]
      if (theta < 0.0f) theta += std::numbers::pi_v<float>;
      if (theta >= std::numbers::pi_v<float>) theta -= std::numbers::pi_v<float>;
      g.orientation.at(x, y) = theta;
    }
  });
  return g;
}

Image resize(const Image& img, int new_width, int new_height) {
  EECS_EXPECTS(new_width >= 1 && new_height >= 1);
  EECS_EXPECTS(!img.empty());
  Image out(new_width, new_height, img.channels());
  const float sx = static_cast<float>(img.width()) / static_cast<float>(new_width);
  const float sy = static_cast<float>(img.height()) / static_cast<float>(new_height);
  parallel_rows(img.channels(), new_height, [&](int c, int y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = fy - static_cast<float>(y0);
    for (int x = 0; x < new_width; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const int x0 = static_cast<int>(std::floor(fx));
      const float wx = fx - static_cast<float>(x0);
      const float v00 = img.at_clamped(x0, y0, c);
      const float v10 = img.at_clamped(x0 + 1, y0, c);
      const float v01 = img.at_clamped(x0, y0 + 1, c);
      const float v11 = img.at_clamped(x0 + 1, y0 + 1, c);
      out.at(x, y, c) = (1 - wx) * (1 - wy) * v00 + wx * (1 - wy) * v10 +
                        (1 - wx) * wy * v01 + wx * wy * v11;
    }
  });
  return out;
}

Image block_downsample(const Image& img, int factor) {
  EECS_EXPECTS(factor >= 1);
  if (factor == 1) return img;
  const int nw = std::max(1, img.width() / factor);
  const int nh = std::max(1, img.height() / factor);
  Image out(nw, nh, img.channels());
  const float inv = 1.0f / static_cast<float>(factor * factor);
  parallel_rows(img.channels(), nh, [&](int c, int y) {
    for (int x = 0; x < nw; ++x) {
      float s = 0.0f;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          s += img.at_clamped(x * factor + dx, y * factor + dy, c);
        }
      }
      out.at(x, y, c) = s * inv;
    }
  });
  return out;
}

}  // namespace eecs::imaging
