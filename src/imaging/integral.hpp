// Summed-area table over a single-channel image. Used by the keypoint
// detector (box-filter Hessian) and by fast region statistics.
#pragma once

#include <vector>

#include "imaging/image.hpp"

namespace eecs::imaging {

class IntegralImage {
 public:
  /// Builds from channel 0 of the given image.
  explicit IntegralImage(const Image& img);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Sum of pixels in [x0, x1) x [y0, y1); coordinates are clamped.
  [[nodiscard]] double rect_sum(int x0, int y0, int x1, int y1) const;

  /// Mean over the same rectangle; 0 for empty rectangles.
  [[nodiscard]] double rect_mean(int x0, int y0, int x1, int y1) const;

 private:
  [[nodiscard]] double table_at(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_ + 1) +
                  static_cast<std::size_t>(x)];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;  ///< (w+1) x (h+1), row-major, leading zeros.
};

}  // namespace eecs::imaging
