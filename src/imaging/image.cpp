#include "imaging/image.hpp"

#include <algorithm>

#include "common/simd.hpp"

namespace eecs::imaging {

Image::Image(int width, int height, int channels, Uninit)
    : width_(width),
      height_(height),
      channels_(channels),
      size_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
            static_cast<std::size_t>(channels)),
      data_(std::make_unique_for_overwrite<float[]>(size_)) {
  EECS_EXPECTS(width >= 0 && height >= 0);
  EECS_EXPECTS(channels == 1 || channels == 3);
}

Image::Image(int width, int height, int channels) : Image(width, height, channels, Uninit{}) {
  std::fill(data_.get(), data_.get() + size_, 0.0f);
}

Image Image::uninitialized(int width, int height, int channels) {
  return Image(width, height, channels, Uninit{});
}

Image::Image(const Image& other)
    : width_(other.width_),
      height_(other.height_),
      channels_(other.channels_),
      size_(other.size_),
      data_(std::make_unique_for_overwrite<float[]>(other.size_)) {
  std::copy(other.data_.get(), other.data_.get() + size_, data_.get());
}

Image& Image::operator=(const Image& other) {
  if (this != &other) {
    if (size_ != other.size_) data_ = std::make_unique_for_overwrite<float[]>(other.size_);
    width_ = other.width_;
    height_ = other.height_;
    channels_ = other.channels_;
    size_ = other.size_;
    std::copy(other.data_.get(), other.data_.get() + size_, data_.get());
  }
  return *this;
}

std::span<float> Image::plane(int c) {
  EECS_EXPECTS(c >= 0 && c < channels_);
  return {data_.get() + static_cast<std::size_t>(c) * pixel_count(), pixel_count()};
}

std::span<const float> Image::plane(int c) const {
  EECS_EXPECTS(c >= 0 && c < channels_);
  return {data_.get() + static_cast<std::size_t>(c) * pixel_count(), pixel_count()};
}

void Image::fill(float value) { std::fill(data_.get(), data_.get() + size_, value); }

void Image::fill_channel(int c, float value) {
  auto p = plane(c);
  std::fill(p.begin(), p.end(), value);
}

Image Image::crop(int x0, int y0, int w, int h) const {
  const int cx0 = std::clamp(x0, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cx1 = std::clamp(x0 + w, cx0, width_);
  const int cy1 = std::clamp(y0 + h, cy0, height_);
  Image out = Image::uninitialized(cx1 - cx0, cy1 - cy0, channels_);
  const int ow = cx1 - cx0;
  for (int c = 0; c < channels_; ++c) {
    const float* src = plane(c).data();
    float* dst = out.plane(c).data();
    for (int y = cy0; y < cy1; ++y) {
      const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                         static_cast<std::size_t>(cx0);
      std::copy(row, row + ow, dst);
      dst += ow;
    }
  }
  return out;
}

Image to_gray(const Image& img) {
  if (img.channels() == 1) return img;
  Image out = Image::uninitialized(img.width(), img.height(), 1);
  const auto r = img.plane(0);
  const auto g = img.plane(1);
  const auto b = img.plane(2);
  auto o = out.plane(0);
  // Lane-blocked over pixels: each output is its own (0.299r + 0.587g) +
  // 0.114b chain, identical to the scalar tail's expression.
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    const F4 cr = F4::broadcast(0.299f);
    const F4 cg = F4::broadcast(0.587f);
    const F4 cb = F4::broadcast(0.114f);
    std::size_t i = 0;
    for (; i + F4::kLanes <= o.size(); i += F4::kLanes) {
      const F4 v = cr * F4::load(r.data() + i) + cg * F4::load(g.data() + i) +
                   cb * F4::load(b.data() + i);
      v.store(o.data() + i);
    }
    for (; i < o.size(); ++i) {
      o[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
    }
  });
  return out;
}

Image adjust_brightness(const Image& img, float gain, float offset) {
  Image out = img;
  for (auto& v : out.data()) v = std::clamp(gain * v + offset, 0.0f, 1.0f);
  return out;
}

float channel_mean(const Image& img, int c) {
  EECS_EXPECTS(!img.empty());
  const auto p = img.plane(c);
  double s = 0.0;
  for (float v : p) s += v;
  return static_cast<float>(s / static_cast<double>(p.size()));
}

}  // namespace eecs::imaging
