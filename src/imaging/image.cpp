#include "imaging/image.hpp"

#include <algorithm>

namespace eecs::imaging {

Image::Image(int width, int height, int channels)
    : width_(width),
      height_(height),
      channels_(channels),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                static_cast<std::size_t>(channels),
            0.0f) {
  EECS_EXPECTS(width >= 0 && height >= 0);
  EECS_EXPECTS(channels == 1 || channels == 3);
}

std::span<float> Image::plane(int c) {
  EECS_EXPECTS(c >= 0 && c < channels_);
  return {data_.data() + static_cast<std::size_t>(c) * pixel_count(), pixel_count()};
}

std::span<const float> Image::plane(int c) const {
  EECS_EXPECTS(c >= 0 && c < channels_);
  return {data_.data() + static_cast<std::size_t>(c) * pixel_count(), pixel_count()};
}

void Image::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Image::fill_channel(int c, float value) {
  auto p = plane(c);
  std::fill(p.begin(), p.end(), value);
}

Image Image::crop(int x0, int y0, int w, int h) const {
  const int cx0 = std::clamp(x0, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cx1 = std::clamp(x0 + w, cx0, width_);
  const int cy1 = std::clamp(y0 + h, cy0, height_);
  Image out(cx1 - cx0, cy1 - cy0, channels_);
  const int ow = cx1 - cx0;
  for (int c = 0; c < channels_; ++c) {
    const float* src = plane(c).data();
    float* dst = out.plane(c).data();
    for (int y = cy0; y < cy1; ++y) {
      const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                         static_cast<std::size_t>(cx0);
      std::copy(row, row + ow, dst);
      dst += ow;
    }
  }
  return out;
}

Image to_gray(const Image& img) {
  if (img.channels() == 1) return img;
  Image out(img.width(), img.height(), 1);
  const auto r = img.plane(0);
  const auto g = img.plane(1);
  const auto b = img.plane(2);
  auto o = out.plane(0);
  for (std::size_t i = 0; i < o.size(); ++i) {
    o[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
  }
  return out;
}

Image adjust_brightness(const Image& img, float gain, float offset) {
  Image out = img;
  for (auto& v : out.data()) v = std::clamp(gain * v + offset, 0.0f, 1.0f);
  return out;
}

float channel_mean(const Image& img, int c) {
  EECS_EXPECTS(!img.empty());
  const auto p = img.plane(c);
  double s = 0.0;
  for (float v : p) s += v;
  return static_cast<float>(s / static_cast<double>(p.size()));
}

}  // namespace eecs::imaging
