#include "imaging/jpeg_model.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/filter.hpp"

namespace eecs::imaging {

namespace {

double mean_gradient(const Image& img) {
  const Gradients g = compute_gradients(img);
  double s = 0.0;
  for (float v : g.magnitude.plane(0)) s += v;
  return g.magnitude.pixel_count() > 0 ? s / static_cast<double>(g.magnitude.pixel_count()) : 0.0;
}

}  // namespace

std::size_t JpegModel::frame_bytes(const Image& img) const {
  if (img.empty()) return header_bytes;
  const double bpp = base_bpp + activity_bpp * mean_gradient(img);
  const double bits = bpp * static_cast<double>(img.pixel_count());
  return header_bytes + static_cast<std::size_t>(std::llround(bits / 8.0));
}

std::size_t JpegModel::region_bytes(const Image& img, const Rect& region) const {
  const Image crop = img.crop(static_cast<int>(region.x), static_cast<int>(region.y),
                              static_cast<int>(region.w), static_cast<int>(region.h));
  return frame_bytes(crop);
}

}  // namespace eecs::imaging
