// Drawing primitives used by the synthetic scene renderer.
#pragma once

#include <array>

#include "imaging/image.hpp"
#include "imaging/rect.hpp"

namespace eecs::imaging {

using Color = std::array<float, 3>;  ///< RGB in [0, 1].

/// Fill a rectangle, alpha-blending over the existing content.
void fill_rect(Image& img, const Rect& r, const Color& color, float alpha = 1.0f);

/// Fill an axis-aligned ellipse inscribed in `r`.
void fill_ellipse(Image& img, const Rect& r, const Color& color, float alpha = 1.0f);

/// Deterministic value noise in [0, 1] from integer coordinates and a seed;
/// used for procedural background texture (no RNG state required).
[[nodiscard]] float hash_noise(int x, int y, unsigned seed);

/// Smooth multi-octave value noise in [0, 1].
[[nodiscard]] float fractal_noise(float x, float y, unsigned seed, int octaves = 3);

/// Overlay multiplicative texture on a region: pixel *= (1 + amplitude*(n-0.5)).
void apply_texture(Image& img, const Rect& r, unsigned seed, float amplitude, float scale);

}  // namespace eecs::imaging
