#include "imaging/io.hpp"

#include <vector>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace eecs::imaging {

void write_image(const Image& img, const std::string& path) {
  EECS_EXPECTS(!img.empty());
  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "wb"));
  if (!file) throw std::runtime_error("write_image: cannot open " + path);

  const bool color = img.channels() == 3;
  std::fprintf(file.get(), "%s\n%d %d\n255\n", color ? "P6" : "P5", img.width(), img.height());
  std::vector<unsigned char> row(static_cast<std::size_t>(img.width()) * (color ? 3 : 1));
  for (int y = 0; y < img.height(); ++y) {
    std::size_t k = 0;
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        row[k++] = static_cast<unsigned char>(
            std::lround(std::clamp(img.at(x, y, c), 0.0f, 1.0f) * 255.0f));
      }
    }
    if (std::fwrite(row.data(), 1, row.size(), file.get()) != row.size()) {
      throw std::runtime_error("write_image: short write to " + path);
    }
  }
}

void draw_box_outline(Image& img, const Rect& box, const std::array<float, 3>& color) {
  auto put = [&](int x, int y) {
    if (x < 0 || y < 0 || x >= img.width() || y >= img.height()) return;
    for (int c = 0; c < img.channels(); ++c) {
      img.at(x, y, c) = img.channels() == 3 ? color[static_cast<std::size_t>(c)]
                                            : (color[0] + color[1] + color[2]) / 3.0f;
    }
  };
  const int x0 = static_cast<int>(box.x);
  const int y0 = static_cast<int>(box.y);
  const int x1 = static_cast<int>(box.right());
  const int y1 = static_cast<int>(box.bottom());
  for (int x = x0; x <= x1; ++x) {
    put(x, y0);
    put(x, y1);
  }
  for (int y = y0; y <= y1; ++y) {
    put(x0, y);
    put(x1, y);
  }
}

}  // namespace eecs::imaging
