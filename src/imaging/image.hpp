// Planar float image (1 or 3 channels, values nominally in [0, 1]). Planar
// storage keeps per-channel passes (gradients, channel pooling) cache-friendly.
#pragma once

#include <memory>
#include <span>

#include "common/contracts.hpp"

namespace eecs::imaging {

class Image {
 public:
  Image() = default;

  /// Black image of the given size. channels must be 1 or 3.
  Image(int width, int height, int channels);

  /// Same shape, but the pixel storage is left uninitialized. Only for
  /// producers that provably write every element before the image escapes
  /// (resize, to_gray, gradients, crop, ...): the zero-fill of the ordinary
  /// constructor is a full memory pass over buffers those kernels immediately
  /// overwrite, and on the pyramid-heavy detector paths that pass was pure
  /// overhead.
  [[nodiscard]] static Image uninitialized(int width, int height, int channels);

  Image(const Image& other);
  Image& operator=(const Image& other);
  Image(Image&&) noexcept = default;
  Image& operator=(Image&&) noexcept = default;
  ~Image() = default;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] bool empty() const { return width_ == 0 || height_ == 0; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  [[nodiscard]] float& at(int x, int y, int c = 0) {
    EECS_EXPECTS(x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 && c < channels_);
    return data_[index(x, y, c)];
  }
  [[nodiscard]] float at(int x, int y, int c = 0) const {
    EECS_EXPECTS(x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 && c < channels_);
    return data_[index(x, y, c)];
  }

  /// Clamped access: coordinates outside the image read the nearest edge.
  /// Inline: this sits on per-pixel hot paths (resize, gradients, census).
  [[nodiscard]] float at_clamped(int x, int y, int c = 0) const {
    const int cx = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    const int cy = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[index(cx, cy, c)];
  }

  /// One full channel plane.
  [[nodiscard]] std::span<float> plane(int c);
  [[nodiscard]] std::span<const float> plane(int c) const;

  void fill(float value);
  void fill_channel(int c, float value);

  /// Crop to the integer rectangle [x0, x0+w) x [y0, y0+h), clamped to bounds.
  [[nodiscard]] Image crop(int x0, int y0, int w, int h) const;

  [[nodiscard]] std::span<const float> data() const { return {data_.get(), size_}; }
  [[nodiscard]] std::span<float> data() { return {data_.get(), size_}; }

 private:
  struct Uninit {};
  Image(int width, int height, int channels, Uninit);

  [[nodiscard]] std::size_t index(int x, int y, int c) const {
    return static_cast<std::size_t>(c) * pixel_count() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::size_t size_ = 0;
  std::unique_ptr<float[]> data_;
};

/// Luma conversion (Rec. 601 weights); identity for single-channel input.
[[nodiscard]] Image to_gray(const Image& img);

/// Per-pixel gain/offset with clamping to [0, 1]: out = gain * in + offset.
[[nodiscard]] Image adjust_brightness(const Image& img, float gain, float offset);

/// Mean of all pixels in a channel.
[[nodiscard]] float channel_mean(const Image& img, int c);

}  // namespace eecs::imaging
