#include "imaging/integral.hpp"

#include <algorithm>

namespace eecs::imaging {

IntegralImage::IntegralImage(const Image& img)
    : width_(img.width()),
      height_(img.height()),
      table_(static_cast<std::size_t>(width_ + 1) * static_cast<std::size_t>(height_ + 1), 0.0) {
  for (int y = 0; y < height_; ++y) {
    double row_sum = 0.0;
    for (int x = 0; x < width_; ++x) {
      row_sum += img.at(x, y, 0);
      table_[static_cast<std::size_t>(y + 1) * static_cast<std::size_t>(width_ + 1) +
             static_cast<std::size_t>(x + 1)] = table_at(x + 1, y) + row_sum;
    }
  }
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, 0, height_);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  return table_at(x1, y1) - table_at(x0, y1) - table_at(x1, y0) + table_at(x0, y0);
}

double IntegralImage::rect_mean(int x0, int y0, int x1, int y1) const {
  const int cx0 = std::clamp(x0, 0, width_);
  const int cx1 = std::clamp(x1, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cy1 = std::clamp(y1, 0, height_);
  const long long area = static_cast<long long>(cx1 - cx0) * static_cast<long long>(cy1 - cy0);
  if (area <= 0) return 0.0;
  return rect_sum(cx0, cy0, cx1, cy1) / static_cast<double>(area);
}

}  // namespace eecs::imaging
