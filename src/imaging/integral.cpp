#include "imaging/integral.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace eecs::imaging {

namespace {

/// Horizontal prefix pass over rows [y0, y1): each table row y+1 gets its
/// row's running double sum. A prefix sum is one serial chain per row, so the
/// lanes run across ROWS — each lane owns one row's accumulator and the
/// per-row order is untouched (bit-identical to the serial loop at any lane
/// or thread blocking).
template <class D2>
void prefix_rows(const float* src, int width, std::size_t w1, double* table, std::size_t y0,
                 std::size_t y1) {
  std::size_t y = y0;
  for (; y + D2::kLanes <= y1; y += D2::kLanes) {
    D2 row_sum = D2::broadcast(0.0);
    const float* in = src + y * static_cast<std::size_t>(width);
    double* outs[D2::kLanes];
    for (int l = 0; l < D2::kLanes; ++l) {
      outs[l] = table + (y + static_cast<std::size_t>(l) + 1) * w1 + 1;
    }
    for (int x = 0; x < width; ++x) {
      row_sum = row_sum + D2::gather2f(in + x, static_cast<std::size_t>(width));
      double tmp[D2::kLanes];
      row_sum.store(tmp);
      for (int l = 0; l < D2::kLanes; ++l) outs[l][x] = tmp[l];
    }
  }
  for (; y < y1; ++y) {
    double row_sum = 0.0;
    const float* in = src + y * static_cast<std::size_t>(width);
    double* out = table + (y + 1) * w1 + 1;
    for (int x = 0; x < width; ++x) {
      row_sum += in[x];
      out[x] = row_sum;
    }
  }
}

/// Vertical accumulation over columns [x0, x1): table[y+1][x+1] +=
/// table[y][x+1] in increasing y. Columns are independent chains, so the
/// lanes run across columns (contiguous double loads/stores).
template <class D2>
void accumulate_columns(double* table, int height, std::size_t w1, std::size_t x0,
                        std::size_t x1) {
  for (int y = 1; y < height; ++y) {
    double* cur = table + static_cast<std::size_t>(y + 1) * w1 + 1;
    const double* prev = table + static_cast<std::size_t>(y) * w1 + 1;
    std::size_t x = x0;
    for (; x + D2::kLanes <= x1; x += D2::kLanes) {
      (D2::load(cur + x) + D2::load(prev + x)).store(cur + x);
    }
    for (; x < x1; ++x) cur[x] += prev[x];
  }
}

}  // namespace

IntegralImage::IntegralImage(const Image& img)
    : width_(img.width()),
      height_(img.height()),
      table_(static_cast<std::size_t>(width_ + 1) * static_cast<std::size_t>(height_ + 1), 0.0) {
  // Two passes, each parallel over an independent partition, reproducing the
  // serial recurrence table[y+1][x+1] = table[y][x+1] + row_sum bit for bit:
  // the horizontal prefix sums accumulate in x order per row, and the
  // vertical pass adds them in y order per column, so every table entry sees
  // the identical sequence of double additions as the single-threaded loop.
  const std::size_t w1 = static_cast<std::size_t>(width_ + 1);
  const float* src = img.plane(0).data();
  simd::dispatch([&](auto isa) {
    using D2 = typename decltype(isa)::F64;
    common::parallel_for(static_cast<std::size_t>(height_), 64,
                         [&](std::size_t y0, std::size_t y1) {
                           prefix_rows<D2>(src, width_, w1, table_.data(), y0, y1);
                         });
    common::parallel_for(static_cast<std::size_t>(width_), 64,
                         [&](std::size_t x0, std::size_t x1) {
                           accumulate_columns<D2>(table_.data(), height_, w1, x0, x1);
                         });
  });
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, 0, height_);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  return table_at(x1, y1) - table_at(x0, y1) - table_at(x1, y0) + table_at(x0, y0);
}

double IntegralImage::rect_mean(int x0, int y0, int x1, int y1) const {
  const int cx0 = std::clamp(x0, 0, width_);
  const int cx1 = std::clamp(x1, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cy1 = std::clamp(y1, 0, height_);
  const long long area = static_cast<long long>(cx1 - cx0) * static_cast<long long>(cy1 - cy0);
  if (area <= 0) return 0.0;
  return rect_sum(cx0, cy0, cx1, cy1) / static_cast<double>(area);
}

}  // namespace eecs::imaging
