#include "imaging/integral.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace eecs::imaging {

IntegralImage::IntegralImage(const Image& img)
    : width_(img.width()),
      height_(img.height()),
      table_(static_cast<std::size_t>(width_ + 1) * static_cast<std::size_t>(height_ + 1), 0.0) {
  // Two passes, each parallel over an independent partition, reproducing the
  // serial recurrence table[y+1][x+1] = table[y][x+1] + row_sum bit for bit:
  // the horizontal prefix sums accumulate in x order per row, and the
  // vertical pass adds them in y order per column, so every table entry sees
  // the identical sequence of double additions as the single-threaded loop.
  const std::size_t w1 = static_cast<std::size_t>(width_ + 1);
  common::parallel_for(static_cast<std::size_t>(height_), 64, [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      double row_sum = 0.0;
      for (int x = 0; x < width_; ++x) {
        row_sum += img.at(x, static_cast<int>(y), 0);
        table_[(y + 1) * w1 + static_cast<std::size_t>(x + 1)] = row_sum;
      }
    }
  });
  common::parallel_for(static_cast<std::size_t>(width_), 64, [&](std::size_t x0, std::size_t x1) {
    for (int y = 1; y < height_; ++y) {
      for (std::size_t x = x0; x < x1; ++x) {
        table_[static_cast<std::size_t>(y + 1) * w1 + (x + 1)] +=
            table_[static_cast<std::size_t>(y) * w1 + (x + 1)];
      }
    }
  });
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, 0, height_);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  return table_at(x1, y1) - table_at(x0, y1) - table_at(x1, y0) + table_at(x0, y0);
}

double IntegralImage::rect_mean(int x0, int y0, int x1, int y1) const {
  const int cx0 = std::clamp(x0, 0, width_);
  const int cx1 = std::clamp(x1, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cy1 = std::clamp(y1, 0, height_);
  const long long area = static_cast<long long>(cx1 - cx0) * static_cast<long long>(cy1 - cy0);
  if (area <= 0) return 0.0;
  return rect_sum(cx0, cy0, cx1, cy1) / static_cast<double>(area);
}

}  // namespace eecs::imaging
