// Minimal image writing (binary PPM/PGM): lets users dump simulator frames
// and detection overlays for visual inspection without an image library.
#pragma once

#include <string>

#include "imaging/image.hpp"
#include "imaging/rect.hpp"

namespace eecs::imaging {

/// Write as binary PPM (3-channel) or PGM (1-channel). Values are clamped to
/// [0, 1] and quantized to 8 bits. Throws std::runtime_error on I/O failure.
void write_image(const Image& img, const std::string& path);

/// Draw a 1-pixel rectangle outline (e.g. a detection box) clipped to bounds.
void draw_box_outline(Image& img, const Rect& box, const std::array<float, 3>& color);

}  // namespace eecs::imaging
