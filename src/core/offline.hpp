// Offline training at the controller (§IV-A): for every training video item
// and every detection algorithm, measure accuracy (threshold swept to
// maximize f-score), processing energy, and processing time; build the
// GFK comparator over the training items' frame features.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "detect/detector.hpp"
#include "domain/comparator.hpp"
#include "energy/model.hpp"
#include "features/frame_feature.hpp"
#include "imaging/jpeg_model.hpp"
#include "video/scene.hpp"

namespace eecs::core {

/// Measured profile of one algorithm on one training item.
struct AlgorithmProfile {
  detect::AlgorithmId id = detect::AlgorithmId::Hog;
  double threshold = 0.0;       ///< d_t maximizing f-score on the item.
  PrecisionRecall accuracy;     ///< At that threshold.
  double cpu_joules_per_frame = 0.0;
  double comm_joules_per_frame = 0.0;  ///< Algorithm-independent C_j estimate.
  double seconds_per_frame = 0.0;

  [[nodiscard]] double total_joules_per_frame() const {
    return cpu_joules_per_frame + comm_joules_per_frame;
  }
  /// The downgrade rule's figure of merit (§IV-B.4).
  [[nodiscard]] double f_per_joule() const {
    return accuracy.f_score / std::max(1e-9, total_joules_per_frame());
  }
};

/// Everything the controller knows about one training item T_i.
struct TrainingItemProfile {
  std::string label;
  int dataset = 0;
  int camera = 0;
  std::vector<AlgorithmProfile> algorithms;  ///< Sorted by descending f-score.

  /// Most accurate algorithm whose energy fits the per-frame budget; nullptr
  /// if none fits.
  [[nodiscard]] const AlgorithmProfile* best_affordable(double budget_joules) const;

  /// Profile of a specific algorithm; nullptr if absent.
  [[nodiscard]] const AlgorithmProfile* find(detect::AlgorithmId id) const;
};

struct OfflineOptions {
  /// Ground-truth frames sampled per training item (the paper's items are
  /// 1000-frame segments with annotations every 10-25 frames).
  int frames_per_item = 10;
  /// Frames contributing features to the GFK comparison per item.
  int feature_frames_per_item = 12;
  /// Algorithms installed on the cameras.
  std::vector<detect::AlgorithmId> algorithms = detect::all_algorithms();
  energy::CpuEnergyModel cpu_model;
  energy::RadioModel radio_model;
  imaging::JpegModel jpeg_model;
  domain::ComparatorParams comparator;
};

/// Result of the offline phase: per-item profiles + the fitted comparator.
class OfflineKnowledge {
 public:
  OfflineKnowledge(std::vector<TrainingItemProfile> profiles,
                   domain::VideoComparator comparator,
                   std::shared_ptr<const features::FrameFeatureExtractor> extractor)
      : profiles_(std::move(profiles)),
        comparator_(std::move(comparator)),
        extractor_(std::move(extractor)) {}

  [[nodiscard]] const std::vector<TrainingItemProfile>& profiles() const { return profiles_; }
  [[nodiscard]] const TrainingItemProfile& profile(int index) const;
  [[nodiscard]] const domain::VideoComparator& comparator() const { return comparator_; }
  [[nodiscard]] const features::FrameFeatureExtractor& extractor() const { return *extractor_; }

  /// T_i* for an incoming feature matrix (§IV-B.2).
  [[nodiscard]] domain::VideoComparator::Match match(const linalg::Matrix& features) const {
    return comparator_.best_match(features);
  }

 private:
  std::vector<TrainingItemProfile> profiles_;
  domain::VideoComparator comparator_;
  std::shared_ptr<const features::FrameFeatureExtractor> extractor_;
};

/// Shared bank of trained detectors (the algorithms pre-installed on every
/// camera, §IV).
using DetectorBank = std::vector<std::unique_ptr<detect::Detector>>;

/// Run the offline phase over the training segments (frames 0..999) of the
/// given datasets x 4 cameras. Deterministic in `seed`.
[[nodiscard]] OfflineKnowledge run_offline_training(const DetectorBank& detectors,
                                                    const std::vector<int>& dataset_ids,
                                                    std::uint64_t seed,
                                                    const OfflineOptions& options = {});

/// Profile the algorithms on one specific video segment (used by the table
/// benches): sweeps thresholds on `eval_frames`.
[[nodiscard]] std::vector<AlgorithmProfile> profile_segment(
    const DetectorBank& detectors, const std::vector<imaging::Image>& frames,
    const std::vector<std::vector<video::GroundTruthBox>>& truths, const OfflineOptions& options);

/// Same, but with externally fixed thresholds (e.g. Table IV re-uses the
/// thresholds learned on the training segment).
[[nodiscard]] std::vector<AlgorithmProfile> profile_segment_fixed_thresholds(
    const DetectorBank& detectors, const std::vector<imaging::Image>& frames,
    const std::vector<std::vector<video::GroundTruthBox>>& truths,
    const std::vector<double>& thresholds, const OfflineOptions& options);

}  // namespace eecs::core
