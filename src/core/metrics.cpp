#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace eecs::core {

MatchResult match_detections(const std::vector<detect::Detection>& detections,
                             const std::vector<video::GroundTruthBox>& truth,
                             const MatchOptions& options) {
  std::vector<detect::Detection> sorted = detections;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });

  // Partition truth into countable targets and ignore regions.
  std::vector<const video::GroundTruthBox*> targets, ignores;
  for (const auto& gt : truth) {
    const bool countable = gt.visibility >= options.min_visibility &&
                           gt.in_image_fraction >= options.min_in_image;
    (countable ? targets : ignores).push_back(&gt);
  }

  MatchResult result;
  std::vector<bool> taken(targets.size(), false);
  for (const auto& det : sorted) {
    double best_iou = options.iou_threshold;
    int best_idx = -1;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (taken[i]) continue;
      const double overlap = imaging::iou(det.box, targets[i]->box);
      if (overlap >= best_iou) {
        best_iou = overlap;
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx >= 0) {
      taken[static_cast<std::size_t>(best_idx)] = true;
      ++result.counts.true_positives;
      result.matched_person_ids.push_back(targets[static_cast<std::size_t>(best_idx)]->person_id);
      result.matched_detections.push_back(det);
      continue;
    }
    // Does it hit an ignore region? Then discard silently.
    bool ignored = false;
    for (const auto* ign : ignores) {
      if (imaging::iou(det.box, ign->box) >= options.iou_threshold) {
        ignored = true;
        break;
      }
    }
    if (!ignored) ++result.counts.false_positives;
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!taken[i]) ++result.counts.false_negatives;
  }
  return result;
}

PrecisionRecall compute_pr(const MatchCounts& counts) {
  PrecisionRecall pr;
  const int detected = counts.true_positives + counts.false_positives;
  const int actual = counts.true_positives + counts.false_negatives;
  pr.precision = detected > 0 ? static_cast<double>(counts.true_positives) / detected : 0.0;
  pr.recall = actual > 0 ? static_cast<double>(counts.true_positives) / actual : 0.0;
  pr.f_score = (pr.precision + pr.recall) > 0.0
                   ? 2.0 * pr.precision * pr.recall / (pr.precision + pr.recall)
                   : 0.0;
  return pr;
}

std::vector<detect::Detection> apply_threshold(const std::vector<detect::Detection>& detections,
                                               double threshold) {
  std::vector<detect::Detection> out;
  for (const auto& d : detections) {
    if (d.score >= threshold) out.push_back(d);
  }
  return out;
}

MatchCounts counts_at_threshold(const std::vector<FrameEvaluation>& frames, double threshold,
                                const MatchOptions& options) {
  MatchCounts total;
  for (const auto& frame : frames) {
    total += match_detections(apply_threshold(frame.detections, threshold), frame.truth, options)
                 .counts;
  }
  return total;
}

ThresholdSweepResult sweep_threshold(const std::vector<FrameEvaluation>& frames,
                                     const MatchOptions& options, int grid_size) {
  // Candidate thresholds: quantiles of all observed scores, plus one below
  // the minimum (keep everything).
  std::vector<double> scores;
  for (const auto& frame : frames) {
    for (const auto& d : frame.detections) scores.push_back(d.score);
  }
  ThresholdSweepResult result;
  if (scores.empty()) {
    result.best_threshold = 0.0;
    return result;
  }
  std::sort(scores.begin(), scores.end());
  std::set<double> candidates;
  candidates.insert(scores.front() - 1.0);
  for (int g = 0; g < grid_size; ++g) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(g) / grid_size * static_cast<double>(scores.size() - 1));
    candidates.insert(scores[idx]);
  }
  candidates.insert(scores.back());

  bool first = true;
  for (double threshold : candidates) {
    const MatchCounts counts = counts_at_threshold(frames, threshold, options);
    const PrecisionRecall pr = compute_pr(counts);
    // Prefer strictly better f-score; on ties prefer the higher threshold
    // (fewer detections to transmit).
    if (first || pr.f_score > result.best.f_score ||
        (pr.f_score == result.best.f_score && threshold > result.best_threshold)) {
      result.best_threshold = threshold;
      result.best = pr;
      result.counts_at_best = counts;
      first = false;
    }
  }
  return result;
}

}  // namespace eecs::core
