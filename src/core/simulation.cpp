#include "core/simulation.hpp"

#include <algorithm>
#include <set>

#include "features/color_feature.hpp"
#include "net/messages.hpp"

namespace eecs::core {

namespace {

const detect::Detector& detector_for(const DetectorBank& detectors, detect::AlgorithmId id) {
  for (const auto& d : detectors) {
    if (d->id() == id) return *d;
  }
  throw ContractViolation("detector_for: algorithm not in bank");
}

/// Training-item profile of a (dataset, camera) feed.
const TrainingItemProfile* find_profile(const OfflineKnowledge& knowledge, int dataset,
                                        int camera) {
  for (const auto& p : knowledge.profiles()) {
    if (p.dataset == dataset && p.camera == camera) return &p;
  }
  return nullptr;
}

/// One camera's processing of one frame during operation: detect, extract
/// color features, upload metadata + JPEG crops, and account energy.
struct FrameOutcome {
  std::vector<reid::ViewDetection> detections;
  double cpu_joules = 0.0;
  std::size_t comm_bytes = 0;
};

FrameOutcome process_camera_frame(const detect::Detector& detector, double threshold, int camera,
                                  const imaging::Image& frame, const OfflineOptions& models) {
  FrameOutcome outcome;
  energy::CostCounter cost;
  const auto raw = detector.detect(frame, &cost);
  for (const auto& det : raw) {
    if (det.score < threshold) continue;
    reid::ViewDetection vd;
    vd.camera = camera;
    vd.detection = det;
    vd.color_feature = features::color_feature(frame, det.box, &cost);
    outcome.comm_bytes += 172;  // §V-A metadata per object.
    outcome.comm_bytes += models.jpeg_model.region_bytes(frame, det.box);
    outcome.detections.push_back(std::move(vd));
  }
  outcome.cpu_joules = models.cpu_model.joules(cost);
  return outcome;
}

/// Countable (per metrics defaults) ground truth person ids in one view.
std::set<int> countable_ids(const std::vector<video::GroundTruthBox>& truth) {
  const MatchOptions opts;
  std::set<int> ids;
  for (const auto& gt : truth) {
    if (gt.visibility >= opts.min_visibility && gt.in_image_fraction >= opts.min_in_image) {
      ids.insert(gt.person_id);
    }
  }
  return ids;
}

std::vector<detect::Detection> to_detections(const std::vector<reid::ViewDetection>& views) {
  std::vector<detect::Detection> out;
  out.reserve(views.size());
  for (const auto& v : views) out.push_back(v.detection);
  return out;
}

}  // namespace

reid::ColorGate fit_color_gate(int dataset, std::uint64_t seed, int calibration_frames) {
  video::SceneSimulator sim(video::dataset_by_id(dataset), seed);
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  for (int f = 0; f < calibration_frames; ++f) {
    const video::MultiViewFrame frame = sim.next_frame();
    for (std::size_t cam = 0; cam < frame.views.size(); ++cam) {
      for (const auto& gt : frame.truth[cam]) {
        if (gt.visibility < 0.7 || gt.in_image_fraction < 0.8) continue;
        features.push_back(features::color_feature(frame.views[cam], gt.box));
        // Distinct label per (frame, person): appearance pairs must come from
        // simultaneous views, not the same person at different times.
        labels.push_back(f * 1000 + gt.person_id);
      }
    }
    sim.skip(sim.environment().ground_truth_stride - 1);
  }
  return reid::ColorGate(features, labels);
}

reid::ReIdentifier make_reidentifier(const video::SceneSimulator& sim,
                                     const reid::ReIdParams& params) {
  std::vector<geometry::Homography> image_to_ground;
  image_to_ground.reserve(sim.cameras().size());
  for (const auto& cam : sim.cameras()) {
    image_to_ground.push_back(cam.ground_homography().inverse());
  }
  return reid::ReIdentifier(std::move(image_to_ground), params);
}

SimulationResult run_eecs_simulation(const DetectorBank& detectors,
                                     const OfflineKnowledge& knowledge,
                                     const EecsSimulationConfig& config) {
  EECS_EXPECTS(config.start_frame < config.end_frame);
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  // Network: node 0 is the controller; nodes 1..M the cameras.
  net::Network network(config.models.radio_model, config.seed ^ 0xabcd);
  (void)network.add_node({});
  std::vector<int> net_node(static_cast<std::size_t>(num_cameras));
  std::vector<energy::Battery> batteries;
  for (int c = 0; c < num_cameras; ++c) {
    net_node[static_cast<std::size_t>(c)] = network.add_node({});
    batteries.emplace_back(1.0e5);
  }

  reid::ReIdentifier reidentifier = make_reidentifier(sim);
  reidentifier.set_color_gate(fit_color_gate(config.dataset, config.seed + 17));
  EecsController controller(knowledge, std::move(reidentifier), config.controller);

  SimulationResult result;

  // §IV-B.1: feature upload + registration. Uses early test-segment frames.
  sim.skip(config.start_frame);
  {
    std::vector<std::vector<imaging::Image>> reg_frames(static_cast<std::size_t>(num_cameras));
    for (int f = 0; f < config.upload_feature_frames; ++f) {
      const video::MultiViewFrame frame = sim.next_frame();
      for (int c = 0; c < num_cameras; ++c) {
        reg_frames[static_cast<std::size_t>(c)].push_back(frame.views[static_cast<std::size_t>(c)]);
      }
      sim.skip(stride - 1);
    }
    for (int c = 0; c < num_cameras; ++c) {
      energy::CostCounter cost;
      const auto& frames = reg_frames[static_cast<std::size_t>(c)];
      linalg::Matrix features(static_cast<int>(frames.size()), knowledge.extractor().dimension());
      net::FeatureUploadMsg msg;
      msg.camera_id = c;
      msg.feature_dim = knowledge.extractor().dimension();
      msg.energy_budget = config.budget_per_frame;
      for (std::size_t i = 0; i < frames.size(); ++i) {
        const auto f = knowledge.extractor().extract(frames[i], &cost);
        for (int d = 0; d < features.cols(); ++d) {
          features(static_cast<int>(i), d) = f[static_cast<std::size_t>(d)];
          msg.features.push_back(f[static_cast<std::size_t>(d)]);
        }
      }
      const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg));
      result.cpu_joules += config.models.cpu_model.joules(cost);
      result.radio_joules += tx.tx_joules;
      batteries[static_cast<std::size_t>(c)].drain(config.models.cpu_model.joules(cost) +
                                                   tx.tx_joules);
      controller.register_camera(c, features, config.budget_per_frame);
    }
  }

  // Recalibration rounds.
  while (sim.frame_index() + stride * config.assessment_gt_frames < config.end_frame) {
    // --- Assessment window: every camera runs every affordable algorithm on
    // the next GT frames. (Bookkeeping cost only; the paper's Fig. 5 energy
    // covers the operation phase — see EXPERIMENTS.md.)
    AssessmentData assessment;
    for (int f = 0; f < config.assessment_gt_frames; ++f) {
      const video::MultiViewFrame frame = sim.next_frame();
      for (int c = 0; c < num_cameras; ++c) {
        for (detect::AlgorithmId alg : config.controller.algorithms) {
          const AlgorithmProfile* profile = controller.entry(c, alg);
          if (profile == nullptr) continue;  // Over budget or not ranked.
          const FrameOutcome outcome =
              process_camera_frame(detector_for(detectors, alg), profile->threshold, c,
                                   frame.views[static_cast<std::size_t>(c)], config.models);
          assessment[c][alg].frames.resize(static_cast<std::size_t>(config.assessment_gt_frames));
          assessment[c][alg].frames[static_cast<std::size_t>(f)] = outcome.detections;
        }
      }
      sim.skip(stride - 1);
      if (sim.frame_index() >= config.end_frame) break;
    }

    const EecsController::Selection selection = controller.select(assessment, config.mode);
    result.rounds.push_back({sim.frame_index(), selection.stats});

    // Push assignments to the cameras over the network.
    for (const auto& a : selection.assignments) {
      net::AlgorithmAssignmentMsg msg;
      msg.camera_id = a.camera;
      msg.algorithm = static_cast<std::uint8_t>(a.algorithm);
      msg.threshold = static_cast<float>(a.threshold);
      msg.active = a.active ? 1 : 0;
      (void)network.send(0, net_node[static_cast<std::size_t>(a.camera)], encode(msg));
    }

    // --- Operation window.
    for (int f = 0; f < config.operation_gt_frames; ++f) {
      if (sim.frame_index() >= config.end_frame) break;
      const video::MultiViewFrame frame = sim.next_frame();
      ++result.gt_frames_processed;

      std::set<int> present;
      for (int c = 0; c < num_cameras; ++c) {
        for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
      }
      result.humans_present += static_cast<int>(present.size());

      std::set<int> detected;
      for (const auto& a : selection.assignments) {
        if (!a.active) continue;
        const FrameOutcome outcome = process_camera_frame(
            detector_for(detectors, a.algorithm), a.threshold, a.camera,
            frame.views[static_cast<std::size_t>(a.camera)], config.models);

        net::DetectionMetadataMsg msg;
        msg.camera_id = a.camera;
        msg.frame_index = frame.index;
        msg.algorithm = static_cast<std::uint8_t>(a.algorithm);
        for (const auto& vd : outcome.detections) {
          net::ObjectMetadata obj;
          obj.x = static_cast<std::uint16_t>(std::clamp(vd.detection.box.x, 0.0, 65535.0));
          obj.y = static_cast<std::uint16_t>(std::clamp(vd.detection.box.y, 0.0, 65535.0));
          obj.w = static_cast<std::uint16_t>(std::clamp(vd.detection.box.w, 0.0, 65535.0));
          obj.h = static_cast<std::uint16_t>(std::clamp(vd.detection.box.h, 0.0, 65535.0));
          obj.probability = static_cast<float>(vd.detection.probability);
          obj.color_feature = vd.color_feature;
          msg.objects.push_back(std::move(obj));
        }
        const auto tx = network.send(net_node[static_cast<std::size_t>(a.camera)], 0, encode(msg));
        // JPEG crops of the detected objects ride along (charged per byte).
        const double crop_joules =
            config.models.radio_model.joules_per_byte * static_cast<double>(outcome.comm_bytes);

        result.cpu_joules += outcome.cpu_joules;
        result.radio_joules += tx.tx_joules + crop_joules;
        batteries[static_cast<std::size_t>(a.camera)].drain(outcome.cpu_joules + tx.tx_joules +
                                                            crop_joules);

        const MatchResult match = match_detections(
            to_detections(outcome.detections), frame.truth[static_cast<std::size_t>(a.camera)]);
        for (int id : match.matched_person_ids) detected.insert(id);
      }
      // Only persons actually present count (a matched ignore-region person
      // cannot occur since matching skips them).
      for (int id : detected) {
        if (present.count(id) > 0) ++result.humans_detected;
      }
      sim.skip(stride - 1);
    }
    (void)network.advance_to(network.now() + 1.0);
  }
  return result;
}

SimulationResult run_fixed_combo(const DetectorBank& detectors, const OfflineKnowledge& knowledge,
                                 const FixedCombo& combo, const FixedComboConfig& config) {
  EECS_EXPECTS(!combo.active.empty());
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  SimulationResult result;
  sim.skip(config.start_frame);
  while (sim.frame_index() < config.end_frame) {
    const video::MultiViewFrame frame = sim.next_frame();
    ++result.gt_frames_processed;

    std::set<int> present;
    for (int c = 0; c < num_cameras; ++c) {
      for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
    }
    result.humans_present += static_cast<int>(present.size());

    std::set<int> detected;
    for (const auto& [camera, algorithm] : combo.active) {
      EECS_EXPECTS(camera >= 0 && camera < num_cameras);
      const TrainingItemProfile* item = find_profile(knowledge, config.dataset, camera);
      EECS_EXPECTS(item != nullptr);
      const AlgorithmProfile* profile = item->find(algorithm);
      EECS_EXPECTS(profile != nullptr);

      const FrameOutcome outcome =
          process_camera_frame(detector_for(detectors, algorithm), profile->threshold, camera,
                               frame.views[static_cast<std::size_t>(camera)], config.models);
      result.cpu_joules += outcome.cpu_joules;
      result.radio_joules +=
          config.models.radio_model.tx_joules(outcome.comm_bytes);

      const MatchResult match = match_detections(to_detections(outcome.detections),
                                                 frame.truth[static_cast<std::size_t>(camera)]);
      for (int id : match.matched_person_ids) detected.insert(id);
    }
    for (int id : detected) {
      if (present.count(id) > 0) ++result.humans_detected;
    }
    sim.skip(stride - 1);
  }
  return result;
}

}  // namespace eecs::core
