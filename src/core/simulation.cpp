#include "core/simulation.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <tuple>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "detect/frame_cache.hpp"
#include "detect/sweep_scheduler.hpp"
#include "features/color_feature.hpp"
#include "net/messages.hpp"
#include "obs/flight.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/deadline.hpp"
#include "runtime/protocol.hpp"
#include "runtime/snapshot.hpp"

namespace eecs::core {

namespace {

/// Record an instant ('i') trace event; compiled out under EECS_OBS_OFF.
void trace_instant(const char* name, const char* cat, double sim_time,
                   std::initializer_list<std::pair<const char*, double>> args = {}) {
  if constexpr (obs::kEnabled) {
    obs::TraceEvent event;
    event.phase = 'i';
    event.sim_time = sim_time;
    event.cat = cat;
    event.name = name;
    event.num_args.reserve(args.size());
    for (const auto& [key, value] : args) event.num_args.emplace_back(key, value);
    obs::current().tracer().record(std::move(event));
  }
}

/// Registry substrate of the SimulationResult façades. The loop's semantic
/// counters and stage gauges live in the current obs session; FaultCounters
/// and StageTimings are computed as registry deltas over the run at a single
/// assignment point (finalize), so multiple runs sharing one session (the
/// report/determinism tools) each see only their own activity. Functional
/// under EECS_OBS_OFF too — the façades keep their semantics either way.
struct SimTelemetry {
  explicit SimTelemetry(obs::MetricsRegistry& metrics)
      : messages_sent(metrics.counter("net.messages.sent")),
        messages_lost(metrics.counter("net.messages.lost")),
        assignments_retried(metrics.counter("protocol.assignments.retried")),
        assignments_abandoned(metrics.counter("protocol.assignments.abandoned")),
        registrations_lost(metrics.counter("protocol.registrations.lost")),
        decode_errors(metrics.counter("protocol.decode_errors")),
        cameras_failed(metrics.counter("liveness.cameras.failed")),
        cameras_recovered(metrics.counter("liveness.cameras.recovered")),
        midround_reselections(metrics.counter("liveness.midround_reselections")),
        frames_skipped(metrics.counter("battery.frames_skipped")),
        assignments_pushed(metrics.counter("protocol.assignments.pushed")),
        assignments_acked(metrics.counter("protocol.assignments.acked")),
        acks_late(metrics.counter("protocol.acks.late")),
        assignments_dropped(metrics.counter("protocol.assignments.dropped")),
        assignments_replaced(metrics.counter("protocol.assignments.replaced")),
        assignments_pending(metrics.counter("protocol.assignments.pending_at_exit")),
        deadline_misses(metrics.counter("runtime.deadline.misses")),
        degradation_stepdowns(metrics.counter("runtime.degradation.stepdowns")),
        degradation_stepups(metrics.counter("runtime.degradation.stepups")),
        frames_parked(metrics.counter("battery.frames_parked")),
        windows_evaluated(metrics.counter("detect.windows.evaluated")),
        windows_pruned(metrics.counter("detect.windows.pruned")),
        debit_joules(metrics.histogram("energy.debit_joules",
                                       {0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0})),
        render_s(metrics.gauge("stage.render_s", obs::Determinism::WallClock)),
        detect_s(metrics.gauge("stage.detect_s", obs::Determinism::WallClock)),
        features_s(metrics.gauge("stage.features_s", obs::Determinism::WallClock)),
        controller_s(metrics.gauge("stage.controller_s", obs::Determinism::WallClock)),
        net_s(metrics.gauge("stage.net_s", obs::Determinism::WallClock)) {
    base_counters_ = {messages_sent.value(),       messages_lost.value(),
                      assignments_retried.value(), assignments_abandoned.value(),
                      registrations_lost.value(),  decode_errors.value(),
                      cameras_failed.value(),      cameras_recovered.value(),
                      midround_reselections.value(), frames_skipped.value(),
                      assignments_pushed.value(),  assignments_acked.value(),
                      acks_late.value(),           assignments_dropped.value(),
                      assignments_replaced.value(), assignments_pending.value(),
                      deadline_misses.value(),     degradation_stepdowns.value(),
                      degradation_stepups.value(), frames_parked.value()};
    base_gauges_ = {render_s.value(), detect_s.value(), features_s.value(),
                    controller_s.value(), net_s.value()};
  }

  /// Registry deltas over this run so far; used by finalize() and by the
  /// checkpoint capture (a snapshot stores the deltas at the checkpoint
  /// instant, and a resumed run adds them back after its own finalize()).
  [[nodiscard]] FaultCounters fault_deltas() const {
    const auto d = [](const obs::Counter& c, std::uint64_t base) {
      return static_cast<long>(c.value() - base);
    };
    FaultCounters f;
    f.messages_sent = d(messages_sent, base_counters_[0]);
    f.messages_lost = d(messages_lost, base_counters_[1]);
    f.assignments_retried = d(assignments_retried, base_counters_[2]);
    f.assignments_abandoned = d(assignments_abandoned, base_counters_[3]);
    f.registrations_lost = d(registrations_lost, base_counters_[4]);
    f.decode_errors = d(decode_errors, base_counters_[5]);
    f.cameras_failed = static_cast<int>(d(cameras_failed, base_counters_[6]));
    f.cameras_recovered = static_cast<int>(d(cameras_recovered, base_counters_[7]));
    f.midround_reselections = static_cast<int>(d(midround_reselections, base_counters_[8]));
    f.frames_skipped_exhausted = d(frames_skipped, base_counters_[9]);
    f.assignments_pushed = d(assignments_pushed, base_counters_[10]);
    f.assignments_acked = d(assignments_acked, base_counters_[11]);
    f.acks_late = d(acks_late, base_counters_[12]);
    f.assignments_dropped = d(assignments_dropped, base_counters_[13]);
    f.assignments_replaced = d(assignments_replaced, base_counters_[14]);
    f.assignments_pending_at_exit = d(assignments_pending, base_counters_[15]);
    f.deadline_misses = d(deadline_misses, base_counters_[16]);
    f.degradation_stepdowns = d(degradation_stepdowns, base_counters_[17]);
    f.degradation_stepups = d(degradation_stepups, base_counters_[18]);
    f.frames_parked = d(frames_parked, base_counters_[19]);
    return f;
  }

  /// The single assignment point of the FaultCounters/StageTimings views.
  void finalize(SimulationResult& result) const {
    result.faults = fault_deltas();
    result.timings.render_s = render_s.value() - base_gauges_[0];
    result.timings.detect_s = detect_s.value() - base_gauges_[1];
    result.timings.features_s = features_s.value() - base_gauges_[2];
    result.timings.controller_s = controller_s.value() - base_gauges_[3];
    result.timings.net_s = net_s.value() - base_gauges_[4];
  }

  obs::Counter& messages_sent;
  obs::Counter& messages_lost;
  obs::Counter& assignments_retried;
  obs::Counter& assignments_abandoned;
  obs::Counter& registrations_lost;
  obs::Counter& decode_errors;
  obs::Counter& cameras_failed;
  obs::Counter& cameras_recovered;
  obs::Counter& midround_reselections;
  obs::Counter& frames_skipped;
  obs::Counter& assignments_pushed;
  obs::Counter& assignments_acked;
  obs::Counter& acks_late;
  obs::Counter& assignments_dropped;
  obs::Counter& assignments_replaced;
  obs::Counter& assignments_pending;
  obs::Counter& deadline_misses;
  obs::Counter& degradation_stepdowns;
  obs::Counter& degradation_stepups;
  obs::Counter& frames_parked;
  /// Sliding-window work accounting (not a FaultCounters field: the result
  /// accumulates these directly from FrameOutcomes, the counters are
  /// session-wide telemetry).
  obs::Counter& windows_evaluated;
  obs::Counter& windows_pruned;
  /// Per-debit battery drain sizes (every camera battery debit across all
  /// stages); the source of the p50/p99 quantile columns in the report tools.
  obs::Histogram& debit_joules;
  obs::Gauge& render_s;
  obs::Gauge& detect_s;
  obs::Gauge& features_s;
  obs::Gauge& controller_s;
  obs::Gauge& net_s;

 private:
  std::array<std::uint64_t, 20> base_counters_{};
  std::array<double, 5> base_gauges_{};
};

/// Fixed serialization order of the FaultCounters fields inside a snapshot's
/// "counters" section. Append-only: new fields go at the end so snapshots
/// from older builds (shorter vectors) still resume.
std::vector<std::int64_t> pack_fault_counters(const FaultCounters& f) {
  return {f.messages_sent,
          f.messages_lost,
          f.assignments_retried,
          f.assignments_abandoned,
          f.registrations_lost,
          f.decode_errors,
          f.cameras_failed,
          f.cameras_recovered,
          f.midround_reselections,
          f.frames_skipped_exhausted,
          f.assignments_pushed,
          f.assignments_acked,
          f.acks_late,
          f.assignments_dropped,
          f.assignments_replaced,
          f.assignments_pending_at_exit,
          f.deadline_misses,
          f.degradation_stepdowns,
          f.degradation_stepups,
          f.frames_parked};
}

FaultCounters unpack_fault_counters(const std::vector<std::int64_t>& v) {
  FaultCounters f;
  const auto get = [&](std::size_t i) -> long {
    return i < v.size() ? static_cast<long>(v[i]) : 0;
  };
  f.messages_sent = get(0);
  f.messages_lost = get(1);
  f.assignments_retried = get(2);
  f.assignments_abandoned = get(3);
  f.registrations_lost = get(4);
  f.decode_errors = get(5);
  f.cameras_failed = static_cast<int>(get(6));
  f.cameras_recovered = static_cast<int>(get(7));
  f.midround_reselections = static_cast<int>(get(8));
  f.frames_skipped_exhausted = get(9);
  f.assignments_pushed = get(10);
  f.assignments_acked = get(11);
  f.acks_late = get(12);
  f.assignments_dropped = get(13);
  f.assignments_replaced = get(14);
  f.assignments_pending_at_exit = get(15);
  f.deadline_misses = get(16);
  f.degradation_stepdowns = get(17);
  f.degradation_stepups = get(18);
  f.frames_parked = get(19);
  return f;
}

void add_fault_counters(FaultCounters& dst, const FaultCounters& src) {
  dst.messages_sent += src.messages_sent;
  dst.messages_lost += src.messages_lost;
  dst.assignments_retried += src.assignments_retried;
  dst.assignments_abandoned += src.assignments_abandoned;
  dst.registrations_lost += src.registrations_lost;
  dst.decode_errors += src.decode_errors;
  dst.cameras_failed += src.cameras_failed;
  dst.cameras_recovered += src.cameras_recovered;
  dst.midround_reselections += src.midround_reselections;
  dst.frames_skipped_exhausted += src.frames_skipped_exhausted;
  dst.assignments_pushed += src.assignments_pushed;
  dst.assignments_acked += src.assignments_acked;
  dst.acks_late += src.acks_late;
  dst.assignments_dropped += src.assignments_dropped;
  dst.assignments_replaced += src.assignments_replaced;
  dst.assignments_pending_at_exit += src.assignments_pending_at_exit;
  dst.deadline_misses += src.deadline_misses;
  dst.degradation_stepdowns += src.degradation_stepdowns;
  dst.degradation_stepups += src.degradation_stepups;
  dst.frames_parked += src.frames_parked;
}

/// O(1) algorithm -> detector resolution, hoisted out of the frame loops
/// (the bank scan used to run once per (frame, camera, algorithm)).
class DetectorLookup {
 public:
  explicit DetectorLookup(const DetectorBank& detectors) {
    by_id_.fill(nullptr);
    for (const auto& d : detectors) by_id_[static_cast<std::size_t>(d->id())] = d.get();
  }

  const detect::Detector& operator()(detect::AlgorithmId id) const {
    const detect::Detector* d = by_id_[static_cast<std::size_t>(id)];
    if (d == nullptr) throw ContractViolation("DetectorLookup: algorithm not in bank");
    return *d;
  }

 private:
  std::array<const detect::Detector*, detect::kNumAlgorithms> by_id_;
};

/// Training-item profile of a (dataset, camera) feed.
const TrainingItemProfile* find_profile(const OfflineKnowledge& knowledge, int dataset,
                                        int camera) {
  for (const auto& p : knowledge.profiles()) {
    if (p.dataset == dataset && p.camera == camera) return &p;
  }
  return nullptr;
}

/// One camera's processing of one frame during operation: detect, extract
/// color features, upload metadata + JPEG crops, and account energy. Pure
/// compute on const inputs — safe to fan out per camera. Detections and their
/// color features stay in parallel arrays so detect::Detection is never
/// copied through reid::ViewDetection and back (matching consumes
/// `detections` directly; assessment moves both into ViewDetections once).
struct FrameOutcome {
  std::vector<detect::Detection> detections;         ///< Thresholded, score order.
  std::vector<std::vector<float>> color_features;    ///< Aligned with detections.
  double cpu_joules = 0.0;
  std::size_t comm_bytes = 0;
  std::uint64_t windows_evaluated = 0;  ///< Sliding windows actually scored.
  std::uint64_t windows_pruned = 0;     ///< ... skipped by the context gate.
};

FrameOutcome process_camera_frame(const detect::Detector& detector, double threshold, int camera,
                                  detect::FramePrecompute& pre, const OfflineOptions& models) {
  (void)camera;
  FrameOutcome outcome;
  energy::CostCounter cost;
  auto raw = detector.detect(pre, &cost);
  outcome.windows_evaluated = cost.windows_evaluated;
  outcome.windows_pruned = cost.windows_pruned;
  const imaging::Image& frame = pre.frame();
  outcome.detections.reserve(raw.size());
  outcome.color_features.reserve(raw.size());
  for (auto& det : raw) {
    if (det.score < threshold) continue;
    outcome.color_features.push_back(features::color_feature(frame, det.box, &cost));
    outcome.comm_bytes += 172;  // §V-A metadata per object.
    outcome.comm_bytes += models.jpeg_model.region_bytes(frame, det.box);
    outcome.detections.push_back(det);
  }
  outcome.cpu_joules = models.cpu_model.joules(cost);
  return outcome;
}

/// Assemble the §IV-B assessment sample representation from an outcome,
/// moving (not copying) detections and color features.
std::vector<reid::ViewDetection> to_view_detections(int camera, FrameOutcome&& outcome) {
  std::vector<reid::ViewDetection> views;
  views.reserve(outcome.detections.size());
  for (std::size_t i = 0; i < outcome.detections.size(); ++i) {
    reid::ViewDetection vd;
    vd.camera = camera;
    vd.detection = outcome.detections[i];
    vd.color_feature = std::move(outcome.color_features[i]);
    views.push_back(std::move(vd));
  }
  return views;
}

/// Countable (per metrics defaults) ground truth person ids in one view.
std::set<int> countable_ids(const std::vector<video::GroundTruthBox>& truth) {
  const MatchOptions opts;
  std::set<int> ids;
  for (const auto& gt : truth) {
    if (gt.visibility >= opts.min_visibility && gt.in_image_fraction >= opts.min_in_image) {
      ids.insert(gt.person_id);
    }
  }
  return ids;
}

net::DetectionMetadataMsg make_metadata_msg(int camera, int frame_index,
                                            detect::AlgorithmId algorithm,
                                            const FrameOutcome& outcome) {
  net::DetectionMetadataMsg msg;
  msg.camera_id = camera;
  msg.frame_index = frame_index;
  msg.algorithm = static_cast<std::uint8_t>(algorithm);
  msg.objects.reserve(outcome.detections.size());
  for (std::size_t i = 0; i < outcome.detections.size(); ++i) {
    const detect::Detection& det = outcome.detections[i];
    net::ObjectMetadata obj;
    obj.x = static_cast<std::uint16_t>(std::clamp(det.box.x, 0.0, 65535.0));
    obj.y = static_cast<std::uint16_t>(std::clamp(det.box.y, 0.0, 65535.0));
    obj.w = static_cast<std::uint16_t>(std::clamp(det.box.w, 0.0, 65535.0));
    obj.h = static_cast<std::uint16_t>(std::clamp(det.box.h, 0.0, 65535.0));
    obj.probability = static_cast<float>(det.probability);
    obj.color_feature = outcome.color_features[i];
    msg.objects.push_back(std::move(obj));
  }
  return msg;
}

/// What the camera device itself knows. Assignments are applied only when the
/// controller's message is actually delivered; the last-known-good one
/// survives lost updates and crash/reboot cycles (kept in flash).
struct CameraNode {
  energy::Battery battery;
  bool has_assignment = false;
  bool active = false;
  detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
  double threshold = 0.0;
  std::uint32_t applied_sequence = 0;
};

}  // namespace

reid::ColorGate fit_color_gate(int dataset, std::uint64_t seed, int calibration_frames) {
  video::SceneSimulator sim(video::dataset_by_id(dataset), seed);
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  for (int f = 0; f < calibration_frames; ++f) {
    const video::MultiViewFrame frame = sim.next_frame();
    for (std::size_t cam = 0; cam < frame.views.size(); ++cam) {
      for (const auto& gt : frame.truth[cam]) {
        if (gt.visibility < 0.7 || gt.in_image_fraction < 0.8) continue;
        features.push_back(features::color_feature(frame.views[cam], gt.box));
        // Distinct label per (frame, person): appearance pairs must come from
        // simultaneous views, not the same person at different times.
        labels.push_back(f * 1000 + gt.person_id);
      }
    }
    sim.skip(sim.environment().ground_truth_stride - 1);
  }
  return reid::ColorGate(features, labels);
}

reid::ReIdentifier make_reidentifier(const video::SceneSimulator& sim,
                                     const reid::ReIdParams& params) {
  std::vector<geometry::Homography> image_to_ground;
  image_to_ground.reserve(sim.cameras().size());
  for (const auto& cam : sim.cameras()) {
    image_to_ground.push_back(cam.ground_homography().inverse());
  }
  return reid::ReIdentifier(std::move(image_to_ground), params);
}

SimulationResult run_eecs_simulation(const DetectorBank& detectors,
                                     const OfflineKnowledge& knowledge,
                                     const EecsSimulationConfig& config) {
  EECS_EXPECTS(config.start_frame < config.end_frame);
  const common::ScopedThreads scoped_threads(config.threads);
  const simd::ScopedSimd scoped_simd(config.simd);
  // Dispatch mode is a build/run-environment fact, not a run result: WallClock
  // so determinism snapshots (which diff SIMD-on vs SIMD-off runs) skip it.
  obs::current()
      .metrics()
      .gauge("simd.dispatch.native", obs::Determinism::WallClock)
      .set(simd::enabled() && simd::kNativeBackend ? 1.0 : 0.0);
  const DetectorLookup detector_of(detectors);
  // Context gate: resolved once per run (config knob, EECS_CONTEXT_GATE env
  // override). The recovery cadence is driven by rounds_completed, which the
  // checkpoint restores, so gating resumes bit-exactly.
  const detect::ContextGateOptions gate_opts = detect::resolve_context_gate(config.context_gate);
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  // Network: node 0 is the controller; nodes 1..M the cameras. The network
  // clock is driven with the video frame index (one frame = one clock unit).
  net::Network network(config.models.radio_model, config.seed ^ 0xabcd);
  network.set_fault_plan(config.faults);
  (void)network.add_node(config.downlink);
  std::vector<int> net_node(static_cast<std::size_t>(num_cameras));
  std::vector<CameraNode> cameras;
  for (int c = 0; c < num_cameras; ++c) {
    net_node[static_cast<std::size_t>(c)] = network.add_node(config.uplink);
    cameras.push_back({energy::Battery(config.battery_joules)});
  }
  // Full validation now that the node count is known (set_fault_plan could
  // only do the node-count-free checks).
  config.faults.validate(network.node_count());
  const auto node_camera = [&](int node) { return node - 1; };

  SimulationResult result;
  obs::Telemetry& telemetry = obs::current();
  SimTelemetry st(telemetry.metrics());

  // ---- Energy audit ledger: every joule debited below is attributed to a
  // (camera, round, stage, algorithm, cause) key, with running totals that
  // accumulate the exact same doubles in the same order as the result
  // accumulators and battery mirrors replaying every drain — so conservation
  // against the returned result is bit-exact (see obs/ledger.hpp).
  obs::EnergyLedger& ledger = telemetry.ledger();
  ledger.begin_run(std::vector<double>(static_cast<std::size_t>(num_cameras),
                                       config.battery_joules));

  // ---- Anomaly detection + flight recorder (obs/anomaly.hpp, obs/flight.hpp).
  obs::AnomalyDetector anomaly_detector(config.runtime.anomaly, num_cameras);
  const bool flight_enabled =
      obs::kEnabled && !config.runtime.flight_recorder_path.empty();
  obs::FlightRecorder flight(
      flight_enabled ? static_cast<std::size_t>(std::max(config.runtime.flight_recorder_rounds, 1))
                     : 0);
  obs::Counter* anomaly_counters[obs::kNumAnomalyKinds] = {};
  if constexpr (obs::kEnabled) {
    for (int k = 0; k < obs::kNumAnomalyKinds; ++k) {
      anomaly_counters[k] = &telemetry.metrics().counter(
          std::string("anomaly.") + obs::to_string(static_cast<obs::Anomaly::Kind>(k)));
    }
  }

  // Per-camera energy gauges: battery residual mirrored on every drain, CPU
  // joules accumulated at the serial replay points. Registered once here so
  // the per-frame paths never format metric names.
  std::vector<obs::Gauge*> cpu_gauges(static_cast<std::size_t>(num_cameras), nullptr);
  if constexpr (obs::kEnabled) {
    for (int c = 0; c < num_cameras; ++c) {
      const std::string cam = "cam" + std::to_string(c);
      cameras[static_cast<std::size_t>(c)].battery.bind_residual_gauge(
          &telemetry.metrics().gauge("energy.battery.residual." + cam));
      cpu_gauges[static_cast<std::size_t>(c)] =
          &telemetry.metrics().gauge("energy.cpu_joules." + cam);
    }
  }

  reid::ReIdentifier reidentifier = make_reidentifier(sim);
  {
    const obs::ScopedSpan span("stage.features", "stage", st.features_s);
    reidentifier.set_color_gate(fit_color_gate(config.dataset, config.seed + 17));
  }
  EecsController controller(knowledge, std::move(reidentifier), config.controller);

  // ---- Controller-side protocol state (runtime layer).
  runtime::LivenessTracker liveness(num_cameras,
                                    config.protocol.liveness_timeout_gt_frames * stride);
  runtime::RetryPolicy retry_policy;
  retry_policy.max_retries = config.protocol.max_assignment_retries;
  retry_policy.jitter_fraction = config.protocol.retry_jitter_fraction;
  retry_policy.jitter_seed = config.seed;
  runtime::AssignmentRetryQueue retry_queue(retry_policy);
  runtime::RoundWatchdog watchdog({config.runtime.round_deadline_gt_frames,
                                   config.runtime.deadline_strikes_to_fail},
                                  num_cameras);
  runtime::DegradationLadder ladder(config.runtime.degradation, num_cameras);
  std::set<int> controller_active;
  std::uint32_t next_sequence = 0;
  long rounds_completed = 0;
  AssessmentData assessment;

  // Camera-flash fallback table for the ladder's CheapAlgorithm/SkipFrames
  // rungs: the cheapest allowed in-budget profile of the camera's own feed
  // (the profile data ships with the camera firmware, so no wire traffic is
  // needed to degrade). Computed only when the ladder can engage.
  struct FallbackEntry {
    bool valid = false;
    detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
    double threshold = 0.0;
  };
  std::vector<FallbackEntry> fallback(static_cast<std::size_t>(num_cameras));
  if (ladder.enabled()) {
    for (int c = 0; c < num_cameras; ++c) {
      const TrainingItemProfile* item = find_profile(knowledge, config.dataset, c);
      if (item == nullptr) continue;
      const AlgorithmProfile* cheapest = nullptr;
      for (const auto& profile : item->algorithms) {
        const bool allowed =
            std::find(config.controller.algorithms.begin(), config.controller.algorithms.end(),
                      profile.id) != config.controller.algorithms.end();
        if (!allowed || profile.total_joules_per_frame() > config.budget_per_frame) continue;
        if (cheapest == nullptr ||
            profile.total_joules_per_frame() < cheapest->total_joules_per_frame()) {
          cheapest = &profile;
        }
      }
      if (cheapest != nullptr) {
        fallback[static_cast<std::size_t>(c)] = {true, cheapest->id, cheapest->threshold};
      }
    }
  }
  // Assessment samples in flight: (camera, frame, algorithm) -> (window slot,
  // full-fidelity detections). The wire carries the §V-A-sized payload for
  // loss accounting; the simulator hands the lossless sample to the
  // controller when (and only when) that payload is actually delivered.
  struct InFlightSample {
    int slot = 0;
    std::vector<reid::ViewDetection> detections;
  };
  std::map<std::tuple<int, int, int>, InFlightSample> in_flight;

  const auto mark_heard = [&](int camera, double time) {
    if (camera < 0 || camera >= num_cameras) return;
    if (liveness.mark_heard(camera, time)) {
      st.cameras_recovered.inc();
      trace_instant("camera.recovered", "liveness", time,
                    {{"camera", static_cast<double>(camera)}});
    }
  };

  // Selection eligibility: alive cameras minus those failed by the round
  // watchdog and those degraded past useful detection. With the watchdog and
  // ladder disabled (the defaults) this is exactly the legacy alive set.
  const auto eligible_set = [&]() {
    std::set<int> eligible = liveness.alive_set();
    for (int camera : watchdog.failed_set()) eligible.erase(camera);
    if (ladder.enabled()) {
      for (int c = 0; c < num_cameras; ++c) {
        if (ladder.rung(c) >= runtime::DegradationRung::MetadataOnly) eligible.erase(c);
      }
    }
    return eligible;
  };

  const auto handle_controller_delivery = [&](const net::Network::Delivery& d) {
    switch (net::peek_type(d.payload)) {
      case net::MessageType::FeatureUpload: {
        const auto msg = net::decode_feature_upload(d.payload);
        if (msg.camera_id < 0 || msg.camera_id >= num_cameras || msg.feature_dim <= 0 ||
            msg.features.empty()) {
          return;
        }
        const int rows = static_cast<int>(msg.features.size()) / msg.feature_dim;
        linalg::Matrix features(rows, msg.feature_dim);
        for (int r = 0; r < rows; ++r) {
          for (int col = 0; col < msg.feature_dim; ++col) {
            features(r, col) =
                msg.features[static_cast<std::size_t>(r * msg.feature_dim + col)];
          }
        }
        controller.register_camera(msg.camera_id, features, msg.energy_budget);
        mark_heard(msg.camera_id, d.time);
        return;
      }
      case net::MessageType::DetectionMetadata: {
        const auto msg = net::decode_detection_metadata(d.payload);
        if (msg.camera_id < 0 || msg.camera_id >= num_cameras) return;
        mark_heard(msg.camera_id, d.time);
        watchdog.report(msg.camera_id, d.time);
        const auto it = in_flight.find(
            {msg.camera_id, msg.frame_index, static_cast<int>(msg.algorithm)});
        if (it != in_flight.end()) {
          auto& sample =
              assessment[msg.camera_id][static_cast<detect::AlgorithmId>(msg.algorithm)];
          sample.frames.resize(static_cast<std::size_t>(config.assessment_gt_frames));
          sample.frames[static_cast<std::size_t>(it->second.slot)] =
              std::move(it->second.detections);
          in_flight.erase(it);
        }
        return;
      }
      case net::MessageType::EnergyReport: {
        const auto msg = net::decode_energy_report(d.payload);
        mark_heard(msg.camera_id, d.time);
        return;
      }
      case net::MessageType::AssignmentAck: {
        const auto msg = net::decode_assignment_ack(d.payload);
        mark_heard(msg.camera_id, d.time);
        switch (retry_queue.ack(msg.camera_id, msg.sequence)) {
          case runtime::AssignmentRetryQueue::AckOutcome::Acked:
            st.assignments_acked.inc();
            break;
          case runtime::AssignmentRetryQueue::AckOutcome::Late:
            // The assignment was already closed (acked, abandoned, or
            // dropped): count the straggler, apply nothing.
            st.acks_late.inc();
            break;
          case runtime::AssignmentRetryQueue::AckOutcome::Stale:
            break;  // Ack for a superseded sequence; the newer push retries on.
        }
        return;
      }
      default:
        return;  // An assignment addressed to the controller is a stray.
    }
  };

  const auto handle_camera_delivery = [&](int camera, const net::Network::Delivery& d) {
    if (camera < 0 || camera >= num_cameras) return;
    CameraNode& cam = cameras[static_cast<std::size_t>(camera)];
    if (cam.battery.empty()) return;  // Powered off: cannot receive.
    if (net::peek_type(d.payload) != net::MessageType::AlgorithmAssignment) return;
    const auto msg = net::decode_algorithm_assignment(d.payload);
    if (msg.sequence > cam.applied_sequence || !cam.has_assignment) {
      cam.has_assignment = true;
      cam.applied_sequence = msg.sequence;
      cam.active = msg.active != 0;
      cam.algorithm = static_cast<detect::AlgorithmId>(msg.algorithm);
      cam.threshold = msg.threshold;
    }
    // Always ack — also for stale duplicates, so retransmissions stop. The
    // ack rides the link layer (no application radio energy); cause-tagged as
    // heartbeat traffic for the audit counters.
    net::AssignmentAckMsg ack;
    ack.camera_id = camera;
    ack.sequence = msg.sequence;
    st.messages_sent.inc();
    const auto tx = network.send(net_node[static_cast<std::size_t>(camera)], 0, encode(ack),
                                 net::TxClass::Control, obs::EnergyCause::Heartbeat);
    if (!tx.delivered) st.messages_lost.inc();
  };

  // Drain the network up to `until` and route deliveries. Malformed payloads
  // are rejected by the decoders (DecodeError) without killing the loop.
  const auto pump_network = [&](double until) {
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, until);
    for (const auto& d : network.advance_to(until)) {
      try {
        if (d.to_node == 0) {
          handle_controller_delivery(d);
        } else {
          handle_camera_delivery(node_camera(d.to_node), d);
        }
      } catch (const ByteReader::DecodeError&) {
        st.decode_errors.inc();
      }
    }
  };

  const auto send_heartbeat = [&](int c, obs::EnergyStage stage) {
    net::EnergyReportMsg msg;
    msg.camera_id = c;
    msg.residual_joules = cameras[static_cast<std::size_t>(c)].battery.residual();
    st.messages_sent.inc();
    const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg),
                                 net::TxClass::Control, obs::EnergyCause::Heartbeat);
    // Control-class: zero joules today, but the debit records the attempt in
    // the ledger so heartbeat cost shows up the day the model charges it
    // (x + 0.0 == x keeps the totals bit-equal to the result meanwhile).
    ledger.debit_radio(c, stage, -1, obs::EnergyCause::Heartbeat, tx.tx_joules);
    if (!tx.delivered) st.messages_lost.inc();
  };

  const auto push_assignments = [&](const std::vector<CameraAssignment>& assignments) {
    for (const auto& a : assignments) {
      net::AlgorithmAssignmentMsg msg;
      msg.camera_id = a.camera;
      msg.sequence = ++next_sequence;
      msg.algorithm = static_cast<std::uint8_t>(a.algorithm);
      msg.threshold = a.threshold;
      msg.active = a.active ? 1 : 0;
      std::vector<std::uint8_t> payload = encode(msg);
      st.messages_sent.inc();
      const auto tx = network.send(0, net_node[static_cast<std::size_t>(a.camera)], payload);
      if (!tx.delivered) st.messages_lost.inc();
      trace_instant("camera.assign", "round", network.now(),
                    {{"camera", static_cast<double>(a.camera)},
                     {"algorithm", static_cast<double>(msg.algorithm)},
                     {"active", a.active ? 1.0 : 0.0}});
      st.assignments_pushed.inc();
      if (retry_queue.push(a.camera, std::move(payload), msg.sequence, network.now(), stride)) {
        st.assignments_replaced.inc();
      }
    }
  };

  const auto apply_selection = [&](const EecsController::Selection& selection) {
    controller_active.clear();
    for (const auto& a : selection.assignments) {
      if (a.active) controller_active.insert(a.camera);
    }
    push_assignments(selection.assignments);
  };

  const auto retry_assignments = [&]() {
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, network.now());
    retry_queue.process_due(
        network.now(), stride,
        [&](int camera, const runtime::AssignmentRetryQueue::Entry& entry) {
          st.assignments_retried.inc();
          st.messages_sent.inc();
          trace_instant("assignment.retry", "protocol", network.now(),
                        {{"camera", static_cast<double>(camera)},
                         {"attempt", static_cast<double>(entry.attempts + 1)}});
          const auto tx = network.send(0, net_node[static_cast<std::size_t>(camera)],
                                       entry.payload, net::TxClass::Data,
                                       obs::EnergyCause::Retry);
          if (!tx.delivered) st.messages_lost.inc();
        },
        [&](int camera, const runtime::AssignmentRetryQueue::Entry& entry) {
          // Retry budget exhausted: the camera keeps its last-known-good
          // assignment until the next recalibration round reaches it.
          st.assignments_abandoned.inc();
          trace_instant("assignment.abandoned", "protocol", network.now(),
                        {{"camera", static_cast<double>(camera)},
                         {"attempts", static_cast<double>(entry.attempts)}});
        });
  };

  const auto check_liveness = [&]() {
    bool lost_active_camera = false;
    for (int c : liveness.sweep(network.now())) {
      st.cameras_failed.inc();
      trace_instant("camera.dead", "liveness", network.now(),
                    {{"camera", static_cast<double>(c)},
                     {"last_heard", liveness.last_heard(c)}});
      if (retry_queue.drop(c)) st.assignments_dropped.inc();  // Stop retrying into the void.
      if (controller_active.count(c) > 0) lost_active_camera = true;
    }
    if (lost_active_camera) {
      // Mid-round recovery: re-select over the surviving cameras with this
      // round's assessment data and push fresh assignments.
      const std::set<int> alive = eligible_set();
      const EecsController::Selection selection = [&] {
        const obs::ScopedSpan span("stage.controller", "stage", st.controller_s, network.now());
        return controller.select(assessment, config.mode, &alive);
      }();
      result.rounds.push_back({sim.frame_index(), selection.stats, true});
      st.midround_reselections.inc();
      trace_instant("round.select", "round", sim.frame_index(),
                    {{"midround", 1.0},
                     {"cameras_active", static_cast<double>(selection.stats.cameras_active)},
                     {"n_est", selection.stats.n_est},
                     {"p_est", selection.stats.p_est}});
      apply_selection(selection);
    }
  };

  const auto camera_down = [&](int c) {
    return cameras[static_cast<std::size_t>(c)].battery.empty() ||
           network.node_down(net_node[static_cast<std::size_t>(c)]);
  };

  const auto next_frame_timed = [&]() {
    const obs::ScopedSpan span("stage.render", "stage", st.render_s, sim.frame_index());
    return sim.next_frame();
  };

  // ---- Checkpoint capture: a full snapshot of the loop state, taken at a
  // round boundary (assessment data and in-flight samples are empty there).
  const auto config_guard = [&]() {
    runtime::SimulationCheckpoint::ConfigGuard guard;
    guard.dataset = config.dataset;
    guard.seed = config.seed;
    guard.mode = static_cast<std::int32_t>(config.mode);
    guard.start_frame = config.start_frame;
    guard.end_frame = config.end_frame;
    guard.assessment_gt_frames = config.assessment_gt_frames;
    guard.operation_gt_frames = config.operation_gt_frames;
    guard.gt_frame_step = config.gt_frame_step;
    guard.num_cameras = num_cameras;
    guard.budget_per_frame = config.budget_per_frame;
    guard.battery_joules = config.battery_joules;
    return guard;
  };

  const auto capture_checkpoint = [&]() {
    runtime::SimulationCheckpoint ck;
    ck.guard = config_guard();
    ck.frame_index = sim.frame_index();
    ck.rounds_completed = rounds_completed;
    ck.cpu_joules = result.cpu_joules;
    ck.radio_joules = result.radio_joules;
    ck.humans_detected = result.humans_detected;
    ck.humans_present = result.humans_present;
    ck.gt_frames_processed = result.gt_frames_processed;
    ck.windows_evaluated = result.windows_evaluated;
    ck.windows_pruned = result.windows_pruned;
    ck.rounds.reserve(result.rounds.size());
    for (const RoundLog& round : result.rounds) {
      runtime::SimulationCheckpoint::RoundLogState entry;
      entry.start_frame = round.start_frame;
      entry.n_star = round.stats.n_star;
      entry.p_star = round.stats.p_star;
      entry.n_est = round.stats.n_est;
      entry.p_est = round.stats.p_est;
      entry.cameras_active = round.stats.cameras_active;
      entry.summary = round.stats.summary;
      entry.midround_recovery = round.midround_recovery ? 1 : 0;
      ck.rounds.push_back(std::move(entry));
    }
    ck.fault_counters = pack_fault_counters(st.fault_deltas());
    ck.cameras.reserve(cameras.size());
    for (int c = 0; c < num_cameras; ++c) {
      const CameraNode& cam = cameras[static_cast<std::size_t>(c)];
      runtime::SimulationCheckpoint::CameraState state;
      state.battery_residual = cam.battery.residual();
      state.has_assignment = cam.has_assignment ? 1 : 0;
      state.active = cam.active ? 1 : 0;
      state.algorithm = static_cast<std::int32_t>(cam.algorithm);
      state.threshold = cam.threshold;
      state.applied_sequence = cam.applied_sequence;
      state.deadline_strikes = watchdog.strikes(c);
      state.ladder = ladder.state()[static_cast<std::size_t>(c)];
      ck.cameras.push_back(state);
    }
    for (const auto& reg : controller.registrations()) {
      ck.registrations.push_back({reg.camera, reg.matched_item, reg.budget});
    }
    ck.liveness = liveness.state();
    ck.controller_active.assign(controller_active.begin(), controller_active.end());
    for (const auto& [camera, entry] : retry_queue.entries()) {
      ck.pending.push_back({camera, entry});
    }
    ck.next_sequence = next_sequence;
    ck.network = network.export_state();
    ck.ledger = ledger.export_state();
    ck.anomaly = anomaly_detector.export_state();
    return ck;
  };

  FaultCounters resumed_faults{};
  bool resumed = false;
  if (!config.runtime.resume_from.empty()) {
    const runtime::SimulationCheckpoint ck =
        runtime::SimulationCheckpoint::load(config.runtime.resume_from);
    if (!(ck.guard == config_guard())) {
      throw runtime::SnapshotError(
          "resume: snapshot was taken under a different simulation configuration");
    }
    // The scene is a pure function of (environment, seed, #advances):
    // replaying the advances restores its RNG stream exactly.
    sim.skip(ck.frame_index);
    network.import_state(ck.network);
    for (const auto& reg : ck.registrations) {
      controller.restore_camera(reg.camera, reg.matched_item, reg.budget);
    }
    std::vector<int> strikes(static_cast<std::size_t>(num_cameras), 0);
    std::vector<runtime::DegradationLadder::CameraState> ladder_state(
        static_cast<std::size_t>(num_cameras));
    for (int c = 0; c < num_cameras; ++c) {
      const auto& state = ck.cameras[static_cast<std::size_t>(c)];
      CameraNode& cam = cameras[static_cast<std::size_t>(c)];
      cam.battery.restore_residual(state.battery_residual);
      cam.has_assignment = state.has_assignment != 0;
      cam.active = state.active != 0;
      cam.algorithm = static_cast<detect::AlgorithmId>(state.algorithm);
      cam.threshold = state.threshold;
      cam.applied_sequence = state.applied_sequence;
      strikes[static_cast<std::size_t>(c)] = state.deadline_strikes;
      ladder_state[static_cast<std::size_t>(c)] = state.ladder;
    }
    watchdog.restore(strikes);
    ladder.restore(ladder_state);
    liveness.restore(ck.liveness);
    controller_active =
        std::set<int>(ck.controller_active.begin(), ck.controller_active.end());
    std::map<int, runtime::AssignmentRetryQueue::Entry> pending_entries;
    for (const auto& p : ck.pending) pending_entries[p.camera] = p.entry;
    retry_queue.restore(std::move(pending_entries));
    next_sequence = ck.next_sequence;
    result.cpu_joules = ck.cpu_joules;
    result.radio_joules = ck.radio_joules;
    result.humans_detected = ck.humans_detected;
    result.humans_present = ck.humans_present;
    result.gt_frames_processed = ck.gt_frames_processed;
    result.windows_evaluated = ck.windows_evaluated;
    result.windows_pruned = ck.windows_pruned;
    for (const auto& entry : ck.rounds) {
      RoundLog round;
      round.start_frame = entry.start_frame;
      round.stats.n_star = entry.n_star;
      round.stats.p_star = entry.p_star;
      round.stats.n_est = entry.n_est;
      round.stats.p_est = entry.p_est;
      round.stats.cameras_active = entry.cameras_active;
      round.stats.summary = entry.summary;
      round.midround_recovery = entry.midround_recovery != 0;
      result.rounds.push_back(std::move(round));
    }
    resumed_faults = unpack_fault_counters(ck.fault_counters);
    rounds_completed = ck.rounds_completed;
    // Restore the audit ledger and anomaly windows captured with the
    // snapshot, so the resumed run's conservation check covers the whole run
    // and the detector replays identical findings. Guarded: a snapshot from
    // a pre-ledger build simply restarts both empty.
    if (ck.ledger.mirror_residual.size() == static_cast<std::size_t>(num_cameras)) {
      ledger.import_state(ck.ledger);
      anomaly_detector.import_state(ck.anomaly);
    }
    resumed = true;
    trace_instant("runtime.resume", "runtime", sim.frame_index(),
                  {{"rounds_completed", static_cast<double>(rounds_completed)}});
  }

  // §IV-B.1: feature upload + registration. Uses early test-segment frames.
  // The upload is retried immediately on loss (the camera sees the missing
  // link-layer ack); a camera whose upload never arrives stays unregistered
  // and is simply never selected. A resumed run restores the registration
  // state from the snapshot instead of re-running the upload phase.
  if (!resumed) {
  sim.skip(config.start_frame);
  {
    std::vector<std::vector<imaging::Image>> reg_frames(static_cast<std::size_t>(num_cameras));
    for (int f = 0; f < config.upload_feature_frames; ++f) {
      const video::MultiViewFrame frame = next_frame_timed();
      for (int c = 0; c < num_cameras; ++c) {
        reg_frames[static_cast<std::size_t>(c)].push_back(frame.views[static_cast<std::size_t>(c)]);
      }
      sim.skip(stride - 1);
    }
    // Feature extraction fans out per camera (const extractor, disjoint
    // outputs); the uploads below stay in camera order so the network's
    // RNG/event sequence matches the serial path exactly.
    struct Registration {
      net::FeatureUploadMsg msg;
      double cpu_joules = 0.0;
    };
    std::vector<Registration> registrations;
    {
      const obs::ScopedSpan span("stage.features", "stage", st.features_s, sim.frame_index());
      registrations = common::parallel_map<Registration>(
          static_cast<std::size_t>(num_cameras), [&](std::size_t c) {
            energy::CostCounter cost;
            const auto& frames = reg_frames[c];
            Registration reg;
            reg.msg.camera_id = static_cast<int>(c);
            reg.msg.feature_dim = knowledge.extractor().dimension();
            reg.msg.energy_budget = config.budget_per_frame;
            reg.msg.features.reserve(frames.size() *
                                     static_cast<std::size_t>(reg.msg.feature_dim));
            for (std::size_t i = 0; i < frames.size(); ++i) {
              const auto f = knowledge.extractor().extract(frames[i], &cost);
              for (int d = 0; d < reg.msg.feature_dim; ++d) {
                reg.msg.features.push_back(f[static_cast<std::size_t>(d)]);
              }
            }
            reg.cpu_joules = config.models.cpu_model.joules(cost);
            return reg;
          });
    }
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, sim.frame_index());
    for (int c = 0; c < num_cameras; ++c) {
      const Registration& reg = registrations[static_cast<std::size_t>(c)];
      const std::vector<std::uint8_t> payload = encode(reg.msg);
      double tx_joules = 0.0;
      net::TxResult tx;
      int attempts = 0;
      do {
        ++attempts;
        // First attempt is ordinary tx; every further attempt is retry
        // energy, attributed as such. The result accumulates per attempt so
        // the ledger total folds in the identical doubles in the same order.
        const obs::EnergyCause cause =
            attempts == 1 ? obs::EnergyCause::Tx : obs::EnergyCause::Retry;
        st.messages_sent.inc();
        tx = network.send(net_node[static_cast<std::size_t>(c)], 0, payload,
                          net::TxClass::Data, cause);
        tx_joules += tx.tx_joules;
        result.radio_joules += tx.tx_joules;
        ledger.debit_radio(c, obs::EnergyStage::Registration, -1, cause, tx.tx_joules);
        if (!tx.delivered) st.messages_lost.inc();
      } while (!tx.delivered && attempts <= config.protocol.registration_retries &&
               !network.node_down(net_node[static_cast<std::size_t>(c)]));
      if (!tx.delivered) st.registrations_lost.inc();
      result.cpu_joules += reg.cpu_joules;
      ledger.debit_cpu(c, obs::EnergyStage::Registration, -1, obs::EnergyCause::Features,
                       reg.cpu_joules);
      if (cpu_gauges[static_cast<std::size_t>(c)] != nullptr) {
        cpu_gauges[static_cast<std::size_t>(c)]->add(reg.cpu_joules);
      }
      const double reg_debit = reg.cpu_joules + tx_joules;
      cameras[static_cast<std::size_t>(c)].battery.drain(reg_debit);
      ledger.drain(c, reg_debit);
      st.debit_joules.observe(reg_debit);
    }
  }
  }

  // Recalibration rounds.
  bool stopped_early = false;
  while (sim.frame_index() + stride * config.assessment_gt_frames < config.end_frame) {
    // --- Assessment window: every camera runs every affordable algorithm on
    // the next GT frames. (Bookkeeping cost only; the paper's Fig. 5 energy
    // covers the operation phase — see EXPERIMENTS.md.) Each sample travels
    // as a control message: a lost one leaves a hole and the controller
    // estimates from the partial assessment data it actually received.
    assessment.clear();
    in_flight.clear();
    // Per-round message tallies for fault-storm detection, and the round
    // deadline: cameras owing assessment metadata must land it before
    // `deadline_gt_frames` ground-truth frames elapse.
    const std::uint64_t round_sent_base = st.messages_sent.value();
    const std::uint64_t round_lost_base = st.messages_lost.value();
    // Ledger round context plus energy bases, so the flight recorder and the
    // anomaly detector see this round's deltas at close.
    ledger.set_round(rounds_completed);
    const double round_cpu_base = ledger.cpu_total();
    const double round_radio_base = ledger.radio_total();
    std::vector<double> round_camera_base;
    if constexpr (obs::kEnabled) {
      round_camera_base.resize(static_cast<std::size_t>(num_cameras));
      for (int c = 0; c < num_cameras; ++c) {
        round_camera_base[static_cast<std::size_t>(c)] = ledger.camera_joules(c);
      }
    }
    if (watchdog.enabled()) {
      std::set<int> expected;
      for (int c : eligible_set()) {
        if (controller.best_entry(c) != nullptr) expected.insert(c);
      }
      watchdog.arm(sim.frame_index(), stride, expected);
    }
    for (int f = 0; f < config.assessment_gt_frames; ++f) {
      pump_network(sim.frame_index() + 0.5);
      const video::MultiViewFrame frame = next_frame_timed();
      // Gating depends only on state fixed before any of this frame's
      // transmissions (node_down is clock-driven, batteries are not drained
      // here), so the task lists are built up front. The fan-out is one task
      // per camera: a camera's algorithms run sequentially over one shared
      // FramePrecompute, so the 4-algorithm sweep computes common substrates
      // (resizes, block grids, channels) once instead of once per algorithm.
      struct AssessTask {
        detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
        double threshold = 0.0;
      };
      std::vector<std::vector<AssessTask>> tasks(static_cast<std::size_t>(num_cameras));
      std::vector<char> camera_up(static_cast<std::size_t>(num_cameras), 0);
      for (int c = 0; c < num_cameras; ++c) {
        if (camera_down(c)) continue;
        const runtime::DegradationRung rung = ladder.rung(c);
        if (rung == runtime::DegradationRung::Parked) continue;  // Radio dark.
        camera_up[static_cast<std::size_t>(c)] = 1;
        // MetadataOnly and deeper: heartbeats keep liveness, but the camera
        // spends nothing on assessment detection.
        if (rung >= runtime::DegradationRung::MetadataOnly) continue;
        for (detect::AlgorithmId alg : config.controller.algorithms) {
          const AlgorithmProfile* profile = controller.entry(c, alg);
          if (profile == nullptr) continue;  // Over budget or not ranked.
          tasks[static_cast<std::size_t>(c)].push_back({alg, profile->threshold});
        }
      }
      std::vector<std::vector<FrameOutcome>> outcomes;
      {
        const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
        // One shared cache slot per camera; with batching on, the scheduler
        // prewarms the whole round's work-list stage-major (resizes, then
        // feature substrates, rung-by-rung across all assessed cameras)
        // before the fan-out. The context gate — when engaged this round —
        // prunes infeasible (scale, row band) tiles from the list up front.
        detect::SweepScheduler batch(static_cast<std::size_t>(num_cameras), gate_opts,
                                     static_cast<std::uint64_t>(rounds_completed));
        for (int c = 0; c < num_cameras; ++c) {
          for (const AssessTask& task : tasks[static_cast<std::size_t>(c)]) {
            batch.plan(static_cast<std::size_t>(c), frame.views[static_cast<std::size_t>(c)],
                       detector_of(task.algorithm), &sim.cameras()[static_cast<std::size_t>(c)]);
          }
        }
        if (config.batch_precompute) batch.prewarm();
        outcomes = common::parallel_map<std::vector<FrameOutcome>>(
            static_cast<std::size_t>(num_cameras), [&](std::size_t c) {
              std::vector<FrameOutcome> out;
              if (tasks[c].empty()) return out;
              detect::FramePrecompute& pre = batch.at(c);
              out.reserve(tasks[c].size());
              for (const AssessTask& task : tasks[c]) {
                out.push_back(process_camera_frame(detector_of(task.algorithm), task.threshold,
                                                   static_cast<int>(c), pre, config.models));
              }
              return out;
            });
      }
      // Window accounting, serially in camera order (assessment sweeps count
      // too: the camera really runs them).
      for (const auto& camera_outcomes : outcomes) {
        for (const FrameOutcome& outcome : camera_outcomes) {
          result.windows_evaluated += outcome.windows_evaluated;
          result.windows_pruned += outcome.windows_pruned;
          st.windows_evaluated.inc(outcome.windows_evaluated);
          st.windows_pruned.inc(outcome.windows_pruned);
        }
      }
      if constexpr (obs::kEnabled) {
        double assessed = 0.0;
        for (const auto& camera_tasks : tasks) assessed += camera_tasks.empty() ? 0.0 : 1.0;
        trace_instant("detect.batch", "detect", frame.index,
                      {{"cameras", assessed},
                       {"assessment", 1.0},
                       {"windows_evaluated", static_cast<double>(result.windows_evaluated)},
                       {"windows_pruned", static_cast<double>(result.windows_pruned)}});
      }
      // Sequential transmission phase, in the exact serial-path order:
      // heartbeat(c), then one metadata message per assessed algorithm.
      const obs::ScopedSpan span("stage.net", "stage", st.net_s, frame.index);
      for (int c = 0; c < num_cameras; ++c) {
        if (!camera_up[static_cast<std::size_t>(c)]) continue;
        send_heartbeat(c, obs::EnergyStage::Assessment);
        const auto& camera_tasks = tasks[static_cast<std::size_t>(c)];
        for (std::size_t t = 0; t < camera_tasks.size(); ++t) {
          FrameOutcome& outcome = outcomes[static_cast<std::size_t>(c)][t];
          const net::DetectionMetadataMsg msg =
              make_metadata_msg(c, frame.index, camera_tasks[t].algorithm, outcome);
          st.messages_sent.inc();
          const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg),
                                       net::TxClass::Control);
          // Assessment metadata rides the control plane (zero joules today);
          // the debit keeps the sample traffic visible in the audit.
          ledger.debit_radio(c, obs::EnergyStage::Assessment,
                             static_cast<int>(camera_tasks[t].algorithm),
                             obs::EnergyCause::Tx, tx.tx_joules);
          if (tx.delivered) {
            in_flight[{c, frame.index, static_cast<int>(camera_tasks[t].algorithm)}] = {
                f, to_view_detections(c, std::move(outcome))};
          } else {
            st.messages_lost.inc();
          }
        }
      }
      sim.skip(stride - 1);
      if (sim.frame_index() >= config.end_frame) break;
    }
    // Collect the window's remaining uploads before selecting (everything
    // sent by frame t is delivered well before t + stride).
    pump_network(sim.frame_index());

    // Close the round at the watchdog: cameras whose assessment metadata
    // never landed inside the deadline take a strike; enough strikes fail
    // them out of the selection below and the round closes with the
    // surviving coverage.
    std::set<int> missed_this_round;
    for (const runtime::RoundWatchdog::Miss& miss : watchdog.close()) {
      missed_this_round.insert(miss.camera);
      st.deadline_misses.inc();
      trace_instant("deadline.miss", "runtime", sim.frame_index(),
                    {{"camera", static_cast<double>(miss.camera)},
                     {"strikes", static_cast<double>(miss.strikes)},
                     {"failed", miss.failed ? 1.0 : 0.0}});
    }
    bool rung_descended = false;
    if (ladder.enabled()) {
      // Fault storm: a large fraction of this round's offered messages were
      // lost (both tallies are deterministic, so the flag is too).
      const auto& policy = config.runtime.degradation;
      const long round_sent =
          static_cast<long>(st.messages_sent.value()) - static_cast<long>(round_sent_base);
      const long round_lost =
          static_cast<long>(st.messages_lost.value()) - static_cast<long>(round_lost_base);
      const bool storm = round_sent >= policy.storm_min_messages &&
                         static_cast<double>(round_lost) >=
                             policy.storm_loss_ratio * static_cast<double>(round_sent);
      for (int c = 0; c < num_cameras; ++c) {
        const energy::Battery& battery = cameras[static_cast<std::size_t>(c)].battery;
        const double fraction =
            battery.capacity() > 0.0 ? battery.residual() / battery.capacity() : 0.0;
        // The advisory is last round's burn-rate finding for this camera
        // (observed at the previous round close, restored on resume).
        for (const runtime::DegradationLadder::Transition& t :
             ladder.on_round(c, fraction, missed_this_round.count(c) > 0, storm,
                             anomaly_detector.flagged(c))) {
          if (t.to > t.from) {
            st.degradation_stepdowns.inc();
            rung_descended = true;
          } else {
            st.degradation_stepups.inc();
          }
          trace_instant("degradation.step", "runtime", sim.frame_index(),
                        {{"camera", static_cast<double>(c)},
                         {"from", static_cast<double>(t.from)},
                         {"to", static_cast<double>(t.to)},
                         {"trigger", static_cast<double>(t.trigger)}});
        }
      }
    }

    const std::set<int> alive = eligible_set();
    const EecsController::Selection selection = [&] {
      const obs::ScopedSpan span("stage.controller", "stage", st.controller_s, sim.frame_index());
      return controller.select(assessment, config.mode, &alive);
    }();
    result.rounds.push_back({sim.frame_index(), selection.stats, false});
    trace_instant("round.select", "round", sim.frame_index(),
                  {{"midround", 0.0},
                   {"cameras_active", static_cast<double>(selection.stats.cameras_active)},
                   {"n_est", selection.stats.n_est},
                   {"p_est", selection.stats.p_est}});

    // Push assignments to the cameras over the network (sequence-numbered;
    // acked on delivery, retried with backoff while unacked).
    apply_selection(selection);

    // --- Operation window.
    for (int f = 0; f < config.operation_gt_frames; ++f) {
      if (sim.frame_index() >= config.end_frame) break;
      pump_network(sim.frame_index() + 0.5);
      retry_assignments();
      check_liveness();
      const video::MultiViewFrame frame = next_frame_timed();
      ++result.gt_frames_processed;

      std::set<int> present;
      for (int c = 0; c < num_cameras; ++c) {
        for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
      }
      result.humans_present += static_cast<int>(present.size());

      // Gate each camera exactly as the serial loop would (a camera only
      // drains its own battery, so camera c's gate never depends on c' < c),
      // fan the frame processing out, then replay transmissions and energy
      // accounting sequentially in camera order.
      enum class Act : char { Silent, HeartbeatOnly, Process };
      std::vector<Act> acts(static_cast<std::size_t>(num_cameras), Act::Silent);
      // The detector/threshold a processing camera actually runs this frame:
      // its controller assignment, or the camera-local fallback entry when the
      // ladder has pushed it to CheapAlgorithm or deeper.
      struct Effective {
        detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
        double threshold = 0.0;
      };
      std::vector<Effective> effective(static_cast<std::size_t>(num_cameras));
      std::vector<int> processing;
      for (int c = 0; c < num_cameras; ++c) {
        CameraNode& cam = cameras[static_cast<std::size_t>(c)];
        if (cam.battery.empty()) {
          // Exhausted: the node is dark — no detection, no transmission.
          if (cam.has_assignment && cam.active) st.frames_skipped.inc();
          continue;
        }
        if (network.node_down(net_node[static_cast<std::size_t>(c)])) continue;
        const runtime::DegradationRung rung = ladder.rung(c);
        if (rung == runtime::DegradationRung::Parked) {
          // Deepest rung: radio and detector both off until recovery.
          st.frames_parked.inc();
          continue;
        }
        effective[static_cast<std::size_t>(c)] = {cam.algorithm, cam.threshold};
        if (rung >= runtime::DegradationRung::CheapAlgorithm &&
            fallback[static_cast<std::size_t>(c)].valid) {
          effective[static_cast<std::size_t>(c)] = {fallback[static_cast<std::size_t>(c)].algorithm,
                                                    fallback[static_cast<std::size_t>(c)].threshold};
        }
        // SkipFrames halves the duty cycle: odd GT slots become heartbeats.
        const bool skip_slot = rung == runtime::DegradationRung::SkipFrames &&
                               ((frame.index / stride) & 1) != 0;
        if (cam.has_assignment && cam.active &&
            rung < runtime::DegradationRung::MetadataOnly && !skip_slot) {
          acts[static_cast<std::size_t>(c)] = Act::Process;
          processing.push_back(c);
        } else {
          acts[static_cast<std::size_t>(c)] = Act::HeartbeatOnly;
        }
      }
      std::vector<FrameOutcome> outcomes;
      {
        const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
        detect::SweepScheduler batch(processing.size(), gate_opts,
                                     static_cast<std::uint64_t>(rounds_completed));
        for (std::size_t i = 0; i < processing.size(); ++i) {
          const int c = processing[i];
          const Effective& eff = effective[static_cast<std::size_t>(c)];
          batch.plan(i, frame.views[static_cast<std::size_t>(c)], detector_of(eff.algorithm),
                     &sim.cameras()[static_cast<std::size_t>(c)]);
        }
        if (config.batch_precompute) batch.prewarm();
        outcomes = common::parallel_map<FrameOutcome>(processing.size(), [&](std::size_t i) {
          const int c = processing[i];
          const Effective& eff = effective[static_cast<std::size_t>(c)];
          return process_camera_frame(detector_of(eff.algorithm), eff.threshold, c, batch.at(i),
                                      config.models);
        });
      }
      for (const FrameOutcome& outcome : outcomes) {
        result.windows_evaluated += outcome.windows_evaluated;
        result.windows_pruned += outcome.windows_pruned;
        st.windows_evaluated.inc(outcome.windows_evaluated);
        st.windows_pruned.inc(outcome.windows_pruned);
      }
      trace_instant("detect.batch", "detect", frame.index,
                    {{"cameras", static_cast<double>(processing.size())},
                     {"assessment", 0.0},
                     {"windows_evaluated", static_cast<double>(result.windows_evaluated)},
                     {"windows_pruned", static_cast<double>(result.windows_pruned)}});

      std::set<int> detected;
      const obs::ScopedSpan span("stage.net", "stage", st.net_s, frame.index);
      std::size_t next_outcome = 0;
      for (int c = 0; c < num_cameras; ++c) {
        if (acts[static_cast<std::size_t>(c)] == Act::Silent) continue;
        send_heartbeat(c, obs::EnergyStage::Operation);
        if (acts[static_cast<std::size_t>(c)] != Act::Process) continue;
        CameraNode& cam = cameras[static_cast<std::size_t>(c)];
        const FrameOutcome& outcome = outcomes[next_outcome++];

        const net::DetectionMetadataMsg msg = make_metadata_msg(
            c, frame.index, effective[static_cast<std::size_t>(c)].algorithm, outcome);
        st.messages_sent.inc();
        const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg));
        // JPEG crops of the detected objects ride along (charged per byte).
        const double crop_joules =
            config.models.radio_model.joules_per_byte * static_cast<double>(outcome.comm_bytes);

        const int alg = static_cast<int>(effective[static_cast<std::size_t>(c)].algorithm);
        const double tx_crop = tx.tx_joules + crop_joules;
        result.cpu_joules += outcome.cpu_joules;
        result.radio_joules += tx_crop;
        ledger.debit_cpu(c, obs::EnergyStage::Operation, alg, obs::EnergyCause::Detect,
                         outcome.cpu_joules);
        ledger.debit_radio(c, obs::EnergyStage::Operation, alg, obs::EnergyCause::Tx, tx_crop);
        if (cpu_gauges[static_cast<std::size_t>(c)] != nullptr) {
          cpu_gauges[static_cast<std::size_t>(c)]->add(outcome.cpu_joules);
        }
        const double debit = outcome.cpu_joules + tx.tx_joules + crop_joules;
        cam.battery.drain(debit);
        ledger.drain(c, debit);
        st.debit_joules.observe(debit);
        trace_instant("battery.debit", "energy", frame.index,
                      {{"camera", static_cast<double>(c)},
                       {"joules", debit},
                       {"residual", cam.battery.residual()}});

        if (tx.delivered) {
          const MatchResult match = match_detections(
              outcome.detections, frame.truth[static_cast<std::size_t>(c)]);
          for (int id : match.matched_person_ids) detected.insert(id);
        } else {
          // The controller never sees these detections: they don't count.
          st.messages_lost.inc();
        }
      }
      // Only persons actually present count (a matched ignore-region person
      // cannot occur since matching skips them).
      for (int id : detected) {
        if (present.count(id) > 0) ++result.humans_detected;
      }
      sim.skip(stride - 1);
    }

    // ---- Round close, observability: fold the round into the anomaly
    // detector (whose burn-rate flags advise next round's ladder pass), then
    // record it in the flight recorder and dump the black box if the round
    // tripped a watchdog strike or a ladder descent.
    int round_anomalies = 0;
    if constexpr (obs::kEnabled) {
      obs::RoundObservation ob;
      ob.round = rounds_completed;
      ob.messages_sent = st.messages_sent.value() - round_sent_base;
      ob.messages_lost = st.messages_lost.value() - round_lost_base;
      ob.deadline_misses = static_cast<std::uint32_t>(missed_this_round.size());
      ob.camera_joules.resize(static_cast<std::size_t>(num_cameras));
      for (int c = 0; c < num_cameras; ++c) {
        ob.camera_joules[static_cast<std::size_t>(c)] =
            ledger.camera_joules(c) - round_camera_base[static_cast<std::size_t>(c)];
      }
      static constexpr const char* kAnomalyEvent[obs::kNumAnomalyKinds] = {
          "anomaly.burn_rate", "anomaly.loss_rate", "anomaly.latency"};
      for (const obs::Anomaly& a : anomaly_detector.observe(ob)) {
        ++round_anomalies;
        anomaly_counters[static_cast<int>(a.kind)]->inc();
        trace_instant(kAnomalyEvent[static_cast<int>(a.kind)], "anomaly", sim.frame_index(),
                      {{"camera", static_cast<double>(a.camera)},
                       {"round", static_cast<double>(a.round)},
                       {"value", a.value},
                       {"threshold", a.threshold}});
      }
      if (flight_enabled) {
        obs::FlightRound fr;
        fr.round = rounds_completed;
        fr.sim_time_s = network.now();
        fr.selected = selection.stats.cameras_active;
        fr.assignments = static_cast<std::int32_t>(selection.assignments.size());
        fr.pending = static_cast<std::int32_t>(retry_queue.size());
        fr.deadline_misses = static_cast<std::int32_t>(missed_this_round.size());
        for (int c = 0; c < num_cameras; ++c) fr.watchdog_strikes += watchdog.strikes(c);
        fr.messages_sent = ob.messages_sent;
        fr.messages_lost = ob.messages_lost;
        fr.cpu_joules = ledger.cpu_total() - round_cpu_base;
        fr.radio_joules = ledger.radio_total() - round_radio_base;
        fr.anomalies = round_anomalies;
        fr.rungs.reserve(static_cast<std::size_t>(num_cameras));
        fr.residual_j.reserve(static_cast<std::size_t>(num_cameras));
        for (int c = 0; c < num_cameras; ++c) {
          fr.rungs.push_back(static_cast<std::int8_t>(ladder.rung(c)));
          fr.residual_j.push_back(cameras[static_cast<std::size_t>(c)].battery.residual());
        }
        flight.record(fr);
        if (!missed_this_round.empty()) {
          (void)flight.dump(config.runtime.flight_recorder_path, "watchdog_strike");
        } else if (rung_descended) {
          (void)flight.dump(config.runtime.flight_recorder_path, "ladder_descent");
        }
      }
    }

    ++rounds_completed;
    // Round boundary: snapshot every K completed rounds, then honour a
    // simulated-crash stop. Nothing runs between here and the top of the
    // next iteration, so a resumed run re-enters the loop at exactly this
    // program point.
    if (config.runtime.checkpoint_every_rounds > 0 &&
        rounds_completed % config.runtime.checkpoint_every_rounds == 0 &&
        !config.runtime.checkpoint_path.empty()) {
      capture_checkpoint().save(config.runtime.checkpoint_path);
      trace_instant("runtime.checkpoint", "runtime", sim.frame_index(),
                    {{"rounds_completed", static_cast<double>(rounds_completed)}});
      if (flight_enabled) {
        (void)flight.dump(config.runtime.flight_recorder_path, "checkpoint");
      }
    }
    if (config.runtime.stop_after_rounds > 0 &&
        rounds_completed >= config.runtime.stop_after_rounds) {
      if (flight_enabled) {
        (void)flight.dump(config.runtime.flight_recorder_path, "crash");
      }
      stopped_early = true;
      break;
    }
  }

  if (stopped_early) {
    trace_instant("runtime.stop", "runtime", sim.frame_index(),
                  {{"rounds_completed", static_cast<double>(rounds_completed)}});
  }
  // Assignments still awaiting an ack close the accounting identity:
  // pushed == acked + abandoned + dropped + replaced + pending_at_exit.
  st.assignments_pending.inc(static_cast<std::uint64_t>(retry_queue.size()));
  // Receiver-side drops count as lost protocol messages, exactly like the
  // legacy `faults.messages_lost += rx_dropped` accounting. On a resumed run
  // the restored network state carries the full rx_dropped tally, so this
  // single end-of-run increment never double counts (checkpoint counter
  // deltas exclude it by construction).
  st.messages_lost.inc(network.rx_dropped());
  st.finalize(result);
  if (resumed) add_fault_counters(result.faults, resumed_faults);
  result.battery_residual.reserve(static_cast<std::size_t>(num_cameras));
  for (const auto& cam : cameras) result.battery_residual.push_back(cam.battery.residual());
  return result;
}

SimulationResult run_fixed_combo(const DetectorBank& detectors, const OfflineKnowledge& knowledge,
                                 const FixedCombo& combo, const FixedComboConfig& config) {
  EECS_EXPECTS(!combo.active.empty());
  const common::ScopedThreads scoped_threads(config.threads);
  const simd::ScopedSimd scoped_simd(config.simd);
  obs::current()
      .metrics()
      .gauge("simd.dispatch.native", obs::Determinism::WallClock)
      .set(simd::enabled() && simd::kNativeBackend ? 1.0 : 0.0);
  const DetectorLookup detector_of(detectors);
  const detect::ContextGateOptions gate_opts = detect::resolve_context_gate(config.context_gate);
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  std::vector<energy::Battery> batteries;
  batteries.reserve(static_cast<std::size_t>(num_cameras));
  for (int c = 0; c < num_cameras; ++c) batteries.emplace_back(config.battery_joules);

  // Per-entry profile resolution, hoisted out of the frame loop.
  struct Entry {
    int camera = 0;
    detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
    const detect::Detector* detector = nullptr;
    double threshold = 0.0;
  };
  std::vector<Entry> entries;
  entries.reserve(combo.active.size());
  for (const auto& [camera, algorithm] : combo.active) {
    EECS_EXPECTS(camera >= 0 && camera < num_cameras);
    const TrainingItemProfile* item = find_profile(knowledge, config.dataset, camera);
    EECS_EXPECTS(item != nullptr);
    const AlgorithmProfile* profile = item->find(algorithm);
    EECS_EXPECTS(profile != nullptr);
    entries.push_back({camera, algorithm, &detector_of(algorithm), profile->threshold});
  }

  SimulationResult result;
  SimTelemetry st(obs::current().metrics());
  // Fixed combos have no rounds or protocol: every joule lands in the
  // Operation stage under {Detect, Tx}, still subject to the conservation
  // invariant (ledger totals == result totals, bit-exact).
  obs::EnergyLedger& ledger = obs::current().ledger();
  ledger.begin_run(std::vector<double>(static_cast<std::size_t>(num_cameras),
                                       config.battery_joules));
  sim.skip(config.start_frame);
  while (sim.frame_index() < config.end_frame) {
    const video::MultiViewFrame frame = [&] {
      const obs::ScopedSpan span("stage.render", "stage", st.render_s, sim.frame_index());
      return sim.next_frame();
    }();
    ++result.gt_frames_processed;

    std::set<int> present;
    for (int c = 0; c < num_cameras; ++c) {
      for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
    }
    result.humans_present += static_cast<int>(present.size());

    // Fan out the entries whose battery holds charge at the top of the frame;
    // the sequential replay below re-checks each battery at its legacy
    // sequence point, so an entry drained dark mid-frame (a camera listed
    // twice) discards its speculative outcome exactly like the serial path.
    std::vector<char> compute(entries.size(), 0);
    for (std::size_t e = 0; e < entries.size(); ++e) {
      compute[e] = batteries[static_cast<std::size_t>(entries[e].camera)].empty() ? 0 : 1;
    }
    std::vector<FrameOutcome> outcomes;
    {
      const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
      // One slot per (camera, algorithm) entry — a camera listed twice keeps
      // two independent caches, matching the legacy per-entry work profile.
      // Fixed combos have no rounds; the recovery cadence ticks per GT frame.
      detect::SweepScheduler batch(entries.size(), gate_opts,
                                   static_cast<std::uint64_t>(result.gt_frames_processed));
      for (std::size_t e = 0; e < entries.size(); ++e) {
        if (!compute[e]) continue;
        batch.plan(e, frame.views[static_cast<std::size_t>(entries[e].camera)],
                   *entries[e].detector,
                   &sim.cameras()[static_cast<std::size_t>(entries[e].camera)]);
      }
      if (config.batch_precompute) batch.prewarm();
      outcomes = common::parallel_map<FrameOutcome>(entries.size(), [&](std::size_t e) {
        if (!compute[e]) return FrameOutcome{};
        const Entry& entry = entries[e];
        return process_camera_frame(*entry.detector, entry.threshold, entry.camera, batch.at(e),
                                    config.models);
      });
    }
    for (const FrameOutcome& outcome : outcomes) {
      result.windows_evaluated += outcome.windows_evaluated;
      result.windows_pruned += outcome.windows_pruned;
      st.windows_evaluated.inc(outcome.windows_evaluated);
      st.windows_pruned.inc(outcome.windows_pruned);
    }

    std::set<int> detected;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const Entry& entry = entries[e];
      energy::Battery& battery = batteries[static_cast<std::size_t>(entry.camera)];
      if (battery.empty()) {
        // Exhausted camera: contributes no detections and no radio energy.
        st.frames_skipped.inc();
        continue;
      }
      const FrameOutcome& outcome = outcomes[e];
      const double radio_joules = config.models.radio_model.tx_joules(outcome.comm_bytes);
      result.cpu_joules += outcome.cpu_joules;
      result.radio_joules += radio_joules;
      ledger.debit_cpu(entry.camera, obs::EnergyStage::Operation,
                       static_cast<int>(entry.algorithm), obs::EnergyCause::Detect,
                       outcome.cpu_joules);
      ledger.debit_radio(entry.camera, obs::EnergyStage::Operation,
                         static_cast<int>(entry.algorithm), obs::EnergyCause::Tx, radio_joules);
      const double debit = outcome.cpu_joules + radio_joules;
      battery.drain(debit);
      ledger.drain(entry.camera, debit);
      st.debit_joules.observe(debit);

      const MatchResult match = match_detections(
          outcome.detections, frame.truth[static_cast<std::size_t>(entry.camera)]);
      for (int id : match.matched_person_ids) detected.insert(id);
    }
    for (int id : detected) {
      if (present.count(id) > 0) ++result.humans_detected;
    }
    sim.skip(stride - 1);
  }
  st.finalize(result);
  result.battery_residual.reserve(static_cast<std::size_t>(num_cameras));
  for (const auto& b : batteries) result.battery_residual.push_back(b.residual());
  return result;
}

}  // namespace eecs::core
