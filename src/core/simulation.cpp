#include "core/simulation.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <tuple>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "detect/frame_cache.hpp"
#include "features/color_feature.hpp"
#include "net/messages.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace eecs::core {

namespace {

/// Record an instant ('i') trace event; compiled out under EECS_OBS_OFF.
void trace_instant(const char* name, const char* cat, double sim_time,
                   std::initializer_list<std::pair<const char*, double>> args = {}) {
  if constexpr (obs::kEnabled) {
    obs::TraceEvent event;
    event.phase = 'i';
    event.sim_time = sim_time;
    event.cat = cat;
    event.name = name;
    event.num_args.reserve(args.size());
    for (const auto& [key, value] : args) event.num_args.emplace_back(key, value);
    obs::current().tracer().record(std::move(event));
  }
}

/// Registry substrate of the SimulationResult façades. The loop's semantic
/// counters and stage gauges live in the current obs session; FaultCounters
/// and StageTimings are computed as registry deltas over the run at a single
/// assignment point (finalize), so multiple runs sharing one session (the
/// report/determinism tools) each see only their own activity. Functional
/// under EECS_OBS_OFF too — the façades keep their semantics either way.
struct SimTelemetry {
  explicit SimTelemetry(obs::MetricsRegistry& metrics)
      : messages_sent(metrics.counter("net.messages.sent")),
        messages_lost(metrics.counter("net.messages.lost")),
        assignments_retried(metrics.counter("protocol.assignments.retried")),
        assignments_abandoned(metrics.counter("protocol.assignments.abandoned")),
        registrations_lost(metrics.counter("protocol.registrations.lost")),
        decode_errors(metrics.counter("protocol.decode_errors")),
        cameras_failed(metrics.counter("liveness.cameras.failed")),
        cameras_recovered(metrics.counter("liveness.cameras.recovered")),
        midround_reselections(metrics.counter("liveness.midround_reselections")),
        frames_skipped(metrics.counter("battery.frames_skipped")),
        render_s(metrics.gauge("stage.render_s", obs::Determinism::WallClock)),
        detect_s(metrics.gauge("stage.detect_s", obs::Determinism::WallClock)),
        features_s(metrics.gauge("stage.features_s", obs::Determinism::WallClock)),
        controller_s(metrics.gauge("stage.controller_s", obs::Determinism::WallClock)),
        net_s(metrics.gauge("stage.net_s", obs::Determinism::WallClock)) {
    base_counters_ = {messages_sent.value(),      messages_lost.value(),
                      assignments_retried.value(), assignments_abandoned.value(),
                      registrations_lost.value(),  decode_errors.value(),
                      cameras_failed.value(),      cameras_recovered.value(),
                      midround_reselections.value(), frames_skipped.value()};
    base_gauges_ = {render_s.value(), detect_s.value(), features_s.value(),
                    controller_s.value(), net_s.value()};
  }

  /// The single assignment point of the FaultCounters/StageTimings views.
  void finalize(SimulationResult& result) const {
    const auto d = [](const obs::Counter& c, std::uint64_t base) {
      return static_cast<long>(c.value() - base);
    };
    result.faults.messages_sent = d(messages_sent, base_counters_[0]);
    result.faults.messages_lost = d(messages_lost, base_counters_[1]);
    result.faults.assignments_retried = d(assignments_retried, base_counters_[2]);
    result.faults.assignments_abandoned = d(assignments_abandoned, base_counters_[3]);
    result.faults.registrations_lost = d(registrations_lost, base_counters_[4]);
    result.faults.decode_errors = d(decode_errors, base_counters_[5]);
    result.faults.cameras_failed = static_cast<int>(d(cameras_failed, base_counters_[6]));
    result.faults.cameras_recovered = static_cast<int>(d(cameras_recovered, base_counters_[7]));
    result.faults.midround_reselections =
        static_cast<int>(d(midround_reselections, base_counters_[8]));
    result.faults.frames_skipped_exhausted = d(frames_skipped, base_counters_[9]);
    result.timings.render_s = render_s.value() - base_gauges_[0];
    result.timings.detect_s = detect_s.value() - base_gauges_[1];
    result.timings.features_s = features_s.value() - base_gauges_[2];
    result.timings.controller_s = controller_s.value() - base_gauges_[3];
    result.timings.net_s = net_s.value() - base_gauges_[4];
  }

  obs::Counter& messages_sent;
  obs::Counter& messages_lost;
  obs::Counter& assignments_retried;
  obs::Counter& assignments_abandoned;
  obs::Counter& registrations_lost;
  obs::Counter& decode_errors;
  obs::Counter& cameras_failed;
  obs::Counter& cameras_recovered;
  obs::Counter& midround_reselections;
  obs::Counter& frames_skipped;
  obs::Gauge& render_s;
  obs::Gauge& detect_s;
  obs::Gauge& features_s;
  obs::Gauge& controller_s;
  obs::Gauge& net_s;

 private:
  std::array<std::uint64_t, 10> base_counters_{};
  std::array<double, 5> base_gauges_{};
};

/// O(1) algorithm -> detector resolution, hoisted out of the frame loops
/// (the bank scan used to run once per (frame, camera, algorithm)).
class DetectorLookup {
 public:
  explicit DetectorLookup(const DetectorBank& detectors) {
    by_id_.fill(nullptr);
    for (const auto& d : detectors) by_id_[static_cast<std::size_t>(d->id())] = d.get();
  }

  const detect::Detector& operator()(detect::AlgorithmId id) const {
    const detect::Detector* d = by_id_[static_cast<std::size_t>(id)];
    if (d == nullptr) throw ContractViolation("DetectorLookup: algorithm not in bank");
    return *d;
  }

 private:
  std::array<const detect::Detector*, detect::kNumAlgorithms> by_id_;
};

/// Training-item profile of a (dataset, camera) feed.
const TrainingItemProfile* find_profile(const OfflineKnowledge& knowledge, int dataset,
                                        int camera) {
  for (const auto& p : knowledge.profiles()) {
    if (p.dataset == dataset && p.camera == camera) return &p;
  }
  return nullptr;
}

/// One camera's processing of one frame during operation: detect, extract
/// color features, upload metadata + JPEG crops, and account energy. Pure
/// compute on const inputs — safe to fan out per camera. Detections and their
/// color features stay in parallel arrays so detect::Detection is never
/// copied through reid::ViewDetection and back (matching consumes
/// `detections` directly; assessment moves both into ViewDetections once).
struct FrameOutcome {
  std::vector<detect::Detection> detections;         ///< Thresholded, score order.
  std::vector<std::vector<float>> color_features;    ///< Aligned with detections.
  double cpu_joules = 0.0;
  std::size_t comm_bytes = 0;
};

FrameOutcome process_camera_frame(const detect::Detector& detector, double threshold, int camera,
                                  detect::FramePrecompute& pre, const OfflineOptions& models) {
  (void)camera;
  FrameOutcome outcome;
  energy::CostCounter cost;
  auto raw = detector.detect(pre, &cost);
  const imaging::Image& frame = pre.frame();
  outcome.detections.reserve(raw.size());
  outcome.color_features.reserve(raw.size());
  for (auto& det : raw) {
    if (det.score < threshold) continue;
    outcome.color_features.push_back(features::color_feature(frame, det.box, &cost));
    outcome.comm_bytes += 172;  // §V-A metadata per object.
    outcome.comm_bytes += models.jpeg_model.region_bytes(frame, det.box);
    outcome.detections.push_back(det);
  }
  outcome.cpu_joules = models.cpu_model.joules(cost);
  return outcome;
}

FrameOutcome process_camera_frame(const detect::Detector& detector, double threshold, int camera,
                                  const imaging::Image& frame, const OfflineOptions& models) {
  detect::FramePrecompute pre(frame);
  return process_camera_frame(detector, threshold, camera, pre, models);
}

/// Assemble the §IV-B assessment sample representation from an outcome,
/// moving (not copying) detections and color features.
std::vector<reid::ViewDetection> to_view_detections(int camera, FrameOutcome&& outcome) {
  std::vector<reid::ViewDetection> views;
  views.reserve(outcome.detections.size());
  for (std::size_t i = 0; i < outcome.detections.size(); ++i) {
    reid::ViewDetection vd;
    vd.camera = camera;
    vd.detection = outcome.detections[i];
    vd.color_feature = std::move(outcome.color_features[i]);
    views.push_back(std::move(vd));
  }
  return views;
}

/// Countable (per metrics defaults) ground truth person ids in one view.
std::set<int> countable_ids(const std::vector<video::GroundTruthBox>& truth) {
  const MatchOptions opts;
  std::set<int> ids;
  for (const auto& gt : truth) {
    if (gt.visibility >= opts.min_visibility && gt.in_image_fraction >= opts.min_in_image) {
      ids.insert(gt.person_id);
    }
  }
  return ids;
}

net::DetectionMetadataMsg make_metadata_msg(int camera, int frame_index,
                                            detect::AlgorithmId algorithm,
                                            const FrameOutcome& outcome) {
  net::DetectionMetadataMsg msg;
  msg.camera_id = camera;
  msg.frame_index = frame_index;
  msg.algorithm = static_cast<std::uint8_t>(algorithm);
  msg.objects.reserve(outcome.detections.size());
  for (std::size_t i = 0; i < outcome.detections.size(); ++i) {
    const detect::Detection& det = outcome.detections[i];
    net::ObjectMetadata obj;
    obj.x = static_cast<std::uint16_t>(std::clamp(det.box.x, 0.0, 65535.0));
    obj.y = static_cast<std::uint16_t>(std::clamp(det.box.y, 0.0, 65535.0));
    obj.w = static_cast<std::uint16_t>(std::clamp(det.box.w, 0.0, 65535.0));
    obj.h = static_cast<std::uint16_t>(std::clamp(det.box.h, 0.0, 65535.0));
    obj.probability = static_cast<float>(det.probability);
    obj.color_feature = outcome.color_features[i];
    msg.objects.push_back(std::move(obj));
  }
  return msg;
}

/// What the camera device itself knows. Assignments are applied only when the
/// controller's message is actually delivered; the last-known-good one
/// survives lost updates and crash/reboot cycles (kept in flash).
struct CameraNode {
  energy::Battery battery;
  bool has_assignment = false;
  bool active = false;
  detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
  double threshold = 0.0;
  std::uint32_t applied_sequence = 0;
};

/// Controller-side bookkeeping for an unacked AlgorithmAssignment.
struct PendingAssignment {
  std::vector<std::uint8_t> payload;
  std::uint32_t sequence = 0;
  int attempts = 0;
  double next_retry = 0.0;
};

}  // namespace

reid::ColorGate fit_color_gate(int dataset, std::uint64_t seed, int calibration_frames) {
  video::SceneSimulator sim(video::dataset_by_id(dataset), seed);
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  for (int f = 0; f < calibration_frames; ++f) {
    const video::MultiViewFrame frame = sim.next_frame();
    for (std::size_t cam = 0; cam < frame.views.size(); ++cam) {
      for (const auto& gt : frame.truth[cam]) {
        if (gt.visibility < 0.7 || gt.in_image_fraction < 0.8) continue;
        features.push_back(features::color_feature(frame.views[cam], gt.box));
        // Distinct label per (frame, person): appearance pairs must come from
        // simultaneous views, not the same person at different times.
        labels.push_back(f * 1000 + gt.person_id);
      }
    }
    sim.skip(sim.environment().ground_truth_stride - 1);
  }
  return reid::ColorGate(features, labels);
}

reid::ReIdentifier make_reidentifier(const video::SceneSimulator& sim,
                                     const reid::ReIdParams& params) {
  std::vector<geometry::Homography> image_to_ground;
  image_to_ground.reserve(sim.cameras().size());
  for (const auto& cam : sim.cameras()) {
    image_to_ground.push_back(cam.ground_homography().inverse());
  }
  return reid::ReIdentifier(std::move(image_to_ground), params);
}

SimulationResult run_eecs_simulation(const DetectorBank& detectors,
                                     const OfflineKnowledge& knowledge,
                                     const EecsSimulationConfig& config) {
  EECS_EXPECTS(config.start_frame < config.end_frame);
  const common::ScopedThreads scoped_threads(config.threads);
  const simd::ScopedSimd scoped_simd(config.simd);
  // Dispatch mode is a build/run-environment fact, not a run result: WallClock
  // so determinism snapshots (which diff SIMD-on vs SIMD-off runs) skip it.
  obs::current()
      .metrics()
      .gauge("simd.dispatch.native", obs::Determinism::WallClock)
      .set(simd::enabled() && simd::kNativeBackend ? 1.0 : 0.0);
  const DetectorLookup detector_of(detectors);
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  // Network: node 0 is the controller; nodes 1..M the cameras. The network
  // clock is driven with the video frame index (one frame = one clock unit).
  net::Network network(config.models.radio_model, config.seed ^ 0xabcd);
  network.set_fault_plan(config.faults);
  (void)network.add_node(config.downlink);
  std::vector<int> net_node(static_cast<std::size_t>(num_cameras));
  std::vector<CameraNode> cameras;
  for (int c = 0; c < num_cameras; ++c) {
    net_node[static_cast<std::size_t>(c)] = network.add_node(config.uplink);
    cameras.push_back({energy::Battery(config.battery_joules)});
  }
  const auto node_camera = [&](int node) { return node - 1; };

  SimulationResult result;
  obs::Telemetry& telemetry = obs::current();
  SimTelemetry st(telemetry.metrics());

  // Per-camera energy gauges: battery residual mirrored on every drain, CPU
  // joules accumulated at the serial replay points. Registered once here so
  // the per-frame paths never format metric names.
  std::vector<obs::Gauge*> cpu_gauges(static_cast<std::size_t>(num_cameras), nullptr);
  if constexpr (obs::kEnabled) {
    for (int c = 0; c < num_cameras; ++c) {
      const std::string cam = "cam" + std::to_string(c);
      cameras[static_cast<std::size_t>(c)].battery.bind_residual_gauge(
          &telemetry.metrics().gauge("energy.battery.residual." + cam));
      cpu_gauges[static_cast<std::size_t>(c)] =
          &telemetry.metrics().gauge("energy.cpu_joules." + cam);
    }
  }

  reid::ReIdentifier reidentifier = make_reidentifier(sim);
  {
    const obs::ScopedSpan span("stage.features", "stage", st.features_s);
    reidentifier.set_color_gate(fit_color_gate(config.dataset, config.seed + 17));
  }
  EecsController controller(knowledge, std::move(reidentifier), config.controller);

  // ---- Controller-side protocol state.
  std::vector<double> last_heard(static_cast<std::size_t>(num_cameras), 0.0);
  std::vector<char> presumed_alive(static_cast<std::size_t>(num_cameras), 1);
  std::set<int> controller_active;
  std::map<int, PendingAssignment> pending;
  std::uint32_t next_sequence = 0;
  AssessmentData assessment;
  // Assessment samples in flight: (camera, frame, algorithm) -> (window slot,
  // full-fidelity detections). The wire carries the §V-A-sized payload for
  // loss accounting; the simulator hands the lossless sample to the
  // controller when (and only when) that payload is actually delivered.
  struct InFlightSample {
    int slot = 0;
    std::vector<reid::ViewDetection> detections;
  };
  std::map<std::tuple<int, int, int>, InFlightSample> in_flight;

  const auto mark_heard = [&](int camera, double time) {
    if (camera < 0 || camera >= num_cameras) return;
    last_heard[static_cast<std::size_t>(camera)] = time;
    if (!presumed_alive[static_cast<std::size_t>(camera)]) {
      presumed_alive[static_cast<std::size_t>(camera)] = 1;
      st.cameras_recovered.inc();
      trace_instant("camera.recovered", "liveness", time,
                    {{"camera", static_cast<double>(camera)}});
    }
  };

  const auto alive_set = [&]() {
    std::set<int> alive;
    for (int c = 0; c < num_cameras; ++c) {
      if (presumed_alive[static_cast<std::size_t>(c)]) alive.insert(c);
    }
    return alive;
  };

  const auto handle_controller_delivery = [&](const net::Network::Delivery& d) {
    switch (net::peek_type(d.payload)) {
      case net::MessageType::FeatureUpload: {
        const auto msg = net::decode_feature_upload(d.payload);
        if (msg.camera_id < 0 || msg.camera_id >= num_cameras || msg.feature_dim <= 0 ||
            msg.features.empty()) {
          return;
        }
        const int rows = static_cast<int>(msg.features.size()) / msg.feature_dim;
        linalg::Matrix features(rows, msg.feature_dim);
        for (int r = 0; r < rows; ++r) {
          for (int col = 0; col < msg.feature_dim; ++col) {
            features(r, col) =
                msg.features[static_cast<std::size_t>(r * msg.feature_dim + col)];
          }
        }
        controller.register_camera(msg.camera_id, features, msg.energy_budget);
        mark_heard(msg.camera_id, d.time);
        return;
      }
      case net::MessageType::DetectionMetadata: {
        const auto msg = net::decode_detection_metadata(d.payload);
        if (msg.camera_id < 0 || msg.camera_id >= num_cameras) return;
        mark_heard(msg.camera_id, d.time);
        const auto it = in_flight.find(
            {msg.camera_id, msg.frame_index, static_cast<int>(msg.algorithm)});
        if (it != in_flight.end()) {
          auto& sample =
              assessment[msg.camera_id][static_cast<detect::AlgorithmId>(msg.algorithm)];
          sample.frames.resize(static_cast<std::size_t>(config.assessment_gt_frames));
          sample.frames[static_cast<std::size_t>(it->second.slot)] =
              std::move(it->second.detections);
          in_flight.erase(it);
        }
        return;
      }
      case net::MessageType::EnergyReport: {
        const auto msg = net::decode_energy_report(d.payload);
        mark_heard(msg.camera_id, d.time);
        return;
      }
      case net::MessageType::AssignmentAck: {
        const auto msg = net::decode_assignment_ack(d.payload);
        mark_heard(msg.camera_id, d.time);
        const auto it = pending.find(msg.camera_id);
        if (it != pending.end() && it->second.sequence == msg.sequence) pending.erase(it);
        return;
      }
      default:
        return;  // An assignment addressed to the controller is a stray.
    }
  };

  const auto handle_camera_delivery = [&](int camera, const net::Network::Delivery& d) {
    if (camera < 0 || camera >= num_cameras) return;
    CameraNode& cam = cameras[static_cast<std::size_t>(camera)];
    if (cam.battery.empty()) return;  // Powered off: cannot receive.
    if (net::peek_type(d.payload) != net::MessageType::AlgorithmAssignment) return;
    const auto msg = net::decode_algorithm_assignment(d.payload);
    if (msg.sequence > cam.applied_sequence || !cam.has_assignment) {
      cam.has_assignment = true;
      cam.applied_sequence = msg.sequence;
      cam.active = msg.active != 0;
      cam.algorithm = static_cast<detect::AlgorithmId>(msg.algorithm);
      cam.threshold = msg.threshold;
    }
    // Always ack — also for stale duplicates, so retransmissions stop. The
    // ack rides the link layer (no application radio energy).
    net::AssignmentAckMsg ack;
    ack.camera_id = camera;
    ack.sequence = msg.sequence;
    st.messages_sent.inc();
    const auto tx = network.send(net_node[static_cast<std::size_t>(camera)], 0, encode(ack),
                                 net::TxClass::Control);
    if (!tx.delivered) st.messages_lost.inc();
  };

  // Drain the network up to `until` and route deliveries. Malformed payloads
  // are rejected by the decoders (DecodeError) without killing the loop.
  const auto pump_network = [&](double until) {
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, until);
    for (const auto& d : network.advance_to(until)) {
      try {
        if (d.to_node == 0) {
          handle_controller_delivery(d);
        } else {
          handle_camera_delivery(node_camera(d.to_node), d);
        }
      } catch (const ByteReader::DecodeError&) {
        st.decode_errors.inc();
      }
    }
  };

  const auto send_heartbeat = [&](int c) {
    net::EnergyReportMsg msg;
    msg.camera_id = c;
    msg.residual_joules = cameras[static_cast<std::size_t>(c)].battery.residual();
    st.messages_sent.inc();
    const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg),
                                 net::TxClass::Control);
    if (!tx.delivered) st.messages_lost.inc();
  };

  const auto push_assignments = [&](const std::vector<CameraAssignment>& assignments) {
    for (const auto& a : assignments) {
      net::AlgorithmAssignmentMsg msg;
      msg.camera_id = a.camera;
      msg.sequence = ++next_sequence;
      msg.algorithm = static_cast<std::uint8_t>(a.algorithm);
      msg.threshold = a.threshold;
      msg.active = a.active ? 1 : 0;
      std::vector<std::uint8_t> payload = encode(msg);
      st.messages_sent.inc();
      const auto tx = network.send(0, net_node[static_cast<std::size_t>(a.camera)], payload);
      if (!tx.delivered) st.messages_lost.inc();
      trace_instant("camera.assign", "round", network.now(),
                    {{"camera", static_cast<double>(a.camera)},
                     {"algorithm", static_cast<double>(msg.algorithm)},
                     {"active", a.active ? 1.0 : 0.0}});
      pending[a.camera] =
          {std::move(payload), msg.sequence, 1, network.now() + 2.5 * stride};
    }
  };

  const auto apply_selection = [&](const EecsController::Selection& selection) {
    controller_active.clear();
    for (const auto& a : selection.assignments) {
      if (a.active) controller_active.insert(a.camera);
    }
    push_assignments(selection.assignments);
  };

  const auto retry_assignments = [&]() {
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, network.now());
    for (auto it = pending.begin(); it != pending.end();) {
      PendingAssignment& p = it->second;
      if (network.now() < p.next_retry) {
        ++it;
        continue;
      }
      if (p.attempts > config.protocol.max_assignment_retries) {
        // Retry budget exhausted: the camera keeps its last-known-good
        // assignment until the next recalibration round reaches it.
        st.assignments_abandoned.inc();
        trace_instant("assignment.abandoned", "protocol", network.now(),
                      {{"camera", static_cast<double>(it->first)},
                       {"attempts", static_cast<double>(p.attempts)}});
        it = pending.erase(it);
        continue;
      }
      st.assignments_retried.inc();
      st.messages_sent.inc();
      trace_instant("assignment.retry", "protocol", network.now(),
                    {{"camera", static_cast<double>(it->first)},
                     {"attempt", static_cast<double>(p.attempts + 1)}});
      const auto tx = network.send(0, net_node[static_cast<std::size_t>(it->first)], p.payload);
      if (!tx.delivered) st.messages_lost.inc();
      ++p.attempts;
      p.next_retry = network.now() + (2.5 + p.attempts) * stride;  // Linear backoff.
      ++it;
    }
  };

  const auto check_liveness = [&]() {
    const double timeout = config.protocol.liveness_timeout_gt_frames * stride;
    bool lost_active_camera = false;
    for (int c = 0; c < num_cameras; ++c) {
      if (!presumed_alive[static_cast<std::size_t>(c)]) continue;
      if (network.now() - last_heard[static_cast<std::size_t>(c)] <= timeout) continue;
      presumed_alive[static_cast<std::size_t>(c)] = 0;
      st.cameras_failed.inc();
      trace_instant("camera.dead", "liveness", network.now(),
                    {{"camera", static_cast<double>(c)},
                     {"last_heard", last_heard[static_cast<std::size_t>(c)]}});
      pending.erase(c);  // Stop retrying into the void.
      if (controller_active.count(c) > 0) lost_active_camera = true;
    }
    if (lost_active_camera) {
      // Mid-round recovery: re-select over the surviving cameras with this
      // round's assessment data and push fresh assignments.
      const std::set<int> alive = alive_set();
      const EecsController::Selection selection = [&] {
        const obs::ScopedSpan span("stage.controller", "stage", st.controller_s, network.now());
        return controller.select(assessment, config.mode, &alive);
      }();
      result.rounds.push_back({sim.frame_index(), selection.stats, true});
      st.midround_reselections.inc();
      trace_instant("round.select", "round", sim.frame_index(),
                    {{"midround", 1.0},
                     {"cameras_active", static_cast<double>(selection.stats.cameras_active)},
                     {"n_est", selection.stats.n_est},
                     {"p_est", selection.stats.p_est}});
      apply_selection(selection);
    }
  };

  const auto camera_down = [&](int c) {
    return cameras[static_cast<std::size_t>(c)].battery.empty() ||
           network.node_down(net_node[static_cast<std::size_t>(c)]);
  };

  const auto next_frame_timed = [&]() {
    const obs::ScopedSpan span("stage.render", "stage", st.render_s, sim.frame_index());
    return sim.next_frame();
  };

  // §IV-B.1: feature upload + registration. Uses early test-segment frames.
  // The upload is retried immediately on loss (the camera sees the missing
  // link-layer ack); a camera whose upload never arrives stays unregistered
  // and is simply never selected.
  sim.skip(config.start_frame);
  {
    std::vector<std::vector<imaging::Image>> reg_frames(static_cast<std::size_t>(num_cameras));
    for (int f = 0; f < config.upload_feature_frames; ++f) {
      const video::MultiViewFrame frame = next_frame_timed();
      for (int c = 0; c < num_cameras; ++c) {
        reg_frames[static_cast<std::size_t>(c)].push_back(frame.views[static_cast<std::size_t>(c)]);
      }
      sim.skip(stride - 1);
    }
    // Feature extraction fans out per camera (const extractor, disjoint
    // outputs); the uploads below stay in camera order so the network's
    // RNG/event sequence matches the serial path exactly.
    struct Registration {
      net::FeatureUploadMsg msg;
      double cpu_joules = 0.0;
    };
    std::vector<Registration> registrations;
    {
      const obs::ScopedSpan span("stage.features", "stage", st.features_s, sim.frame_index());
      registrations = common::parallel_map<Registration>(
          static_cast<std::size_t>(num_cameras), [&](std::size_t c) {
            energy::CostCounter cost;
            const auto& frames = reg_frames[c];
            Registration reg;
            reg.msg.camera_id = static_cast<int>(c);
            reg.msg.feature_dim = knowledge.extractor().dimension();
            reg.msg.energy_budget = config.budget_per_frame;
            reg.msg.features.reserve(frames.size() *
                                     static_cast<std::size_t>(reg.msg.feature_dim));
            for (std::size_t i = 0; i < frames.size(); ++i) {
              const auto f = knowledge.extractor().extract(frames[i], &cost);
              for (int d = 0; d < reg.msg.feature_dim; ++d) {
                reg.msg.features.push_back(f[static_cast<std::size_t>(d)]);
              }
            }
            reg.cpu_joules = config.models.cpu_model.joules(cost);
            return reg;
          });
    }
    const obs::ScopedSpan span("stage.net", "stage", st.net_s, sim.frame_index());
    for (int c = 0; c < num_cameras; ++c) {
      const Registration& reg = registrations[static_cast<std::size_t>(c)];
      const std::vector<std::uint8_t> payload = encode(reg.msg);
      double tx_joules = 0.0;
      net::TxResult tx;
      int attempts = 0;
      do {
        ++attempts;
        st.messages_sent.inc();
        tx = network.send(net_node[static_cast<std::size_t>(c)], 0, payload);
        tx_joules += tx.tx_joules;
        if (!tx.delivered) st.messages_lost.inc();
      } while (!tx.delivered && attempts <= config.protocol.registration_retries &&
               !network.node_down(net_node[static_cast<std::size_t>(c)]));
      if (!tx.delivered) st.registrations_lost.inc();
      result.cpu_joules += reg.cpu_joules;
      result.radio_joules += tx_joules;
      if (cpu_gauges[static_cast<std::size_t>(c)] != nullptr) {
        cpu_gauges[static_cast<std::size_t>(c)]->add(reg.cpu_joules);
      }
      cameras[static_cast<std::size_t>(c)].battery.drain(reg.cpu_joules + tx_joules);
    }
  }

  // Recalibration rounds.
  while (sim.frame_index() + stride * config.assessment_gt_frames < config.end_frame) {
    // --- Assessment window: every camera runs every affordable algorithm on
    // the next GT frames. (Bookkeeping cost only; the paper's Fig. 5 energy
    // covers the operation phase — see EXPERIMENTS.md.) Each sample travels
    // as a control message: a lost one leaves a hole and the controller
    // estimates from the partial assessment data it actually received.
    assessment.clear();
    in_flight.clear();
    for (int f = 0; f < config.assessment_gt_frames; ++f) {
      pump_network(sim.frame_index() + 0.5);
      const video::MultiViewFrame frame = next_frame_timed();
      // Gating depends only on state fixed before any of this frame's
      // transmissions (node_down is clock-driven, batteries are not drained
      // here), so the task lists are built up front. The fan-out is one task
      // per camera: a camera's algorithms run sequentially over one shared
      // FramePrecompute, so the 4-algorithm sweep computes common substrates
      // (resizes, block grids, channels) once instead of once per algorithm.
      struct AssessTask {
        detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
        double threshold = 0.0;
      };
      std::vector<std::vector<AssessTask>> tasks(static_cast<std::size_t>(num_cameras));
      std::vector<char> camera_up(static_cast<std::size_t>(num_cameras), 0);
      for (int c = 0; c < num_cameras; ++c) {
        if (camera_down(c)) continue;
        camera_up[static_cast<std::size_t>(c)] = 1;
        for (detect::AlgorithmId alg : config.controller.algorithms) {
          const AlgorithmProfile* profile = controller.entry(c, alg);
          if (profile == nullptr) continue;  // Over budget or not ranked.
          tasks[static_cast<std::size_t>(c)].push_back({alg, profile->threshold});
        }
      }
      std::vector<std::vector<FrameOutcome>> outcomes;
      {
        const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
        outcomes = common::parallel_map<std::vector<FrameOutcome>>(
            static_cast<std::size_t>(num_cameras), [&](std::size_t c) {
              std::vector<FrameOutcome> out;
              if (tasks[c].empty()) return out;
              detect::FramePrecompute pre(frame.views[c]);
              out.reserve(tasks[c].size());
              for (const AssessTask& task : tasks[c]) {
                out.push_back(process_camera_frame(detector_of(task.algorithm), task.threshold,
                                                   static_cast<int>(c), pre, config.models));
              }
              return out;
            });
      }
      if constexpr (obs::kEnabled) {
        double assessed = 0.0;
        for (const auto& camera_tasks : tasks) assessed += camera_tasks.empty() ? 0.0 : 1.0;
        trace_instant("detect.batch", "detect", frame.index,
                      {{"cameras", assessed}, {"assessment", 1.0}});
      }
      // Sequential transmission phase, in the exact serial-path order:
      // heartbeat(c), then one metadata message per assessed algorithm.
      const obs::ScopedSpan span("stage.net", "stage", st.net_s, frame.index);
      for (int c = 0; c < num_cameras; ++c) {
        if (!camera_up[static_cast<std::size_t>(c)]) continue;
        send_heartbeat(c);
        const auto& camera_tasks = tasks[static_cast<std::size_t>(c)];
        for (std::size_t t = 0; t < camera_tasks.size(); ++t) {
          FrameOutcome& outcome = outcomes[static_cast<std::size_t>(c)][t];
          const net::DetectionMetadataMsg msg =
              make_metadata_msg(c, frame.index, camera_tasks[t].algorithm, outcome);
          st.messages_sent.inc();
          const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg),
                                       net::TxClass::Control);
          if (tx.delivered) {
            in_flight[{c, frame.index, static_cast<int>(camera_tasks[t].algorithm)}] = {
                f, to_view_detections(c, std::move(outcome))};
          } else {
            st.messages_lost.inc();
          }
        }
      }
      sim.skip(stride - 1);
      if (sim.frame_index() >= config.end_frame) break;
    }
    // Collect the window's remaining uploads before selecting (everything
    // sent by frame t is delivered well before t + stride).
    pump_network(sim.frame_index());

    const std::set<int> alive = alive_set();
    const EecsController::Selection selection = [&] {
      const obs::ScopedSpan span("stage.controller", "stage", st.controller_s, sim.frame_index());
      return controller.select(assessment, config.mode, &alive);
    }();
    result.rounds.push_back({sim.frame_index(), selection.stats, false});
    trace_instant("round.select", "round", sim.frame_index(),
                  {{"midround", 0.0},
                   {"cameras_active", static_cast<double>(selection.stats.cameras_active)},
                   {"n_est", selection.stats.n_est},
                   {"p_est", selection.stats.p_est}});

    // Push assignments to the cameras over the network (sequence-numbered;
    // acked on delivery, retried with backoff while unacked).
    apply_selection(selection);

    // --- Operation window.
    for (int f = 0; f < config.operation_gt_frames; ++f) {
      if (sim.frame_index() >= config.end_frame) break;
      pump_network(sim.frame_index() + 0.5);
      retry_assignments();
      check_liveness();
      const video::MultiViewFrame frame = next_frame_timed();
      ++result.gt_frames_processed;

      std::set<int> present;
      for (int c = 0; c < num_cameras; ++c) {
        for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
      }
      result.humans_present += static_cast<int>(present.size());

      // Gate each camera exactly as the serial loop would (a camera only
      // drains its own battery, so camera c's gate never depends on c' < c),
      // fan the frame processing out, then replay transmissions and energy
      // accounting sequentially in camera order.
      enum class Act : char { Silent, HeartbeatOnly, Process };
      std::vector<Act> acts(static_cast<std::size_t>(num_cameras), Act::Silent);
      std::vector<int> processing;
      for (int c = 0; c < num_cameras; ++c) {
        CameraNode& cam = cameras[static_cast<std::size_t>(c)];
        if (cam.battery.empty()) {
          // Exhausted: the node is dark — no detection, no transmission.
          if (cam.has_assignment && cam.active) st.frames_skipped.inc();
          continue;
        }
        if (network.node_down(net_node[static_cast<std::size_t>(c)])) continue;
        if (cam.has_assignment && cam.active) {
          acts[static_cast<std::size_t>(c)] = Act::Process;
          processing.push_back(c);
        } else {
          acts[static_cast<std::size_t>(c)] = Act::HeartbeatOnly;
        }
      }
      std::vector<FrameOutcome> outcomes;
      {
        const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
        outcomes = common::parallel_map<FrameOutcome>(processing.size(), [&](std::size_t i) {
          const int c = processing[i];
          const CameraNode& cam = cameras[static_cast<std::size_t>(c)];
          return process_camera_frame(detector_of(cam.algorithm), cam.threshold, c,
                                      frame.views[static_cast<std::size_t>(c)], config.models);
        });
      }
      trace_instant("detect.batch", "detect", frame.index,
                    {{"cameras", static_cast<double>(processing.size())}, {"assessment", 0.0}});

      std::set<int> detected;
      const obs::ScopedSpan span("stage.net", "stage", st.net_s, frame.index);
      std::size_t next_outcome = 0;
      for (int c = 0; c < num_cameras; ++c) {
        if (acts[static_cast<std::size_t>(c)] == Act::Silent) continue;
        send_heartbeat(c);
        if (acts[static_cast<std::size_t>(c)] != Act::Process) continue;
        CameraNode& cam = cameras[static_cast<std::size_t>(c)];
        const FrameOutcome& outcome = outcomes[next_outcome++];

        const net::DetectionMetadataMsg msg =
            make_metadata_msg(c, frame.index, cam.algorithm, outcome);
        st.messages_sent.inc();
        const auto tx = network.send(net_node[static_cast<std::size_t>(c)], 0, encode(msg));
        // JPEG crops of the detected objects ride along (charged per byte).
        const double crop_joules =
            config.models.radio_model.joules_per_byte * static_cast<double>(outcome.comm_bytes);

        result.cpu_joules += outcome.cpu_joules;
        result.radio_joules += tx.tx_joules + crop_joules;
        if (cpu_gauges[static_cast<std::size_t>(c)] != nullptr) {
          cpu_gauges[static_cast<std::size_t>(c)]->add(outcome.cpu_joules);
        }
        cam.battery.drain(outcome.cpu_joules + tx.tx_joules + crop_joules);
        trace_instant("battery.debit", "energy", frame.index,
                      {{"camera", static_cast<double>(c)},
                       {"joules", outcome.cpu_joules + tx.tx_joules + crop_joules},
                       {"residual", cam.battery.residual()}});

        if (tx.delivered) {
          const MatchResult match = match_detections(
              outcome.detections, frame.truth[static_cast<std::size_t>(c)]);
          for (int id : match.matched_person_ids) detected.insert(id);
        } else {
          // The controller never sees these detections: they don't count.
          st.messages_lost.inc();
        }
      }
      // Only persons actually present count (a matched ignore-region person
      // cannot occur since matching skips them).
      for (int id : detected) {
        if (present.count(id) > 0) ++result.humans_detected;
      }
      sim.skip(stride - 1);
    }
  }

  // Receiver-side drops count as lost protocol messages, exactly like the
  // legacy `faults.messages_lost += rx_dropped` accounting.
  st.messages_lost.inc(network.rx_dropped());
  st.finalize(result);
  result.battery_residual.reserve(static_cast<std::size_t>(num_cameras));
  for (const auto& cam : cameras) result.battery_residual.push_back(cam.battery.residual());
  return result;
}

SimulationResult run_fixed_combo(const DetectorBank& detectors, const OfflineKnowledge& knowledge,
                                 const FixedCombo& combo, const FixedComboConfig& config) {
  EECS_EXPECTS(!combo.active.empty());
  const common::ScopedThreads scoped_threads(config.threads);
  const simd::ScopedSimd scoped_simd(config.simd);
  obs::current()
      .metrics()
      .gauge("simd.dispatch.native", obs::Determinism::WallClock)
      .set(simd::enabled() && simd::kNativeBackend ? 1.0 : 0.0);
  const DetectorLookup detector_of(detectors);
  video::SceneSimulator sim(video::dataset_by_id(config.dataset), config.seed);
  const int stride = sim.environment().ground_truth_stride * config.gt_frame_step;
  const int num_cameras = static_cast<int>(sim.cameras().size());

  std::vector<energy::Battery> batteries;
  batteries.reserve(static_cast<std::size_t>(num_cameras));
  for (int c = 0; c < num_cameras; ++c) batteries.emplace_back(config.battery_joules);

  // Per-entry profile resolution, hoisted out of the frame loop.
  struct Entry {
    int camera = 0;
    detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
    const detect::Detector* detector = nullptr;
    double threshold = 0.0;
  };
  std::vector<Entry> entries;
  entries.reserve(combo.active.size());
  for (const auto& [camera, algorithm] : combo.active) {
    EECS_EXPECTS(camera >= 0 && camera < num_cameras);
    const TrainingItemProfile* item = find_profile(knowledge, config.dataset, camera);
    EECS_EXPECTS(item != nullptr);
    const AlgorithmProfile* profile = item->find(algorithm);
    EECS_EXPECTS(profile != nullptr);
    entries.push_back({camera, algorithm, &detector_of(algorithm), profile->threshold});
  }

  SimulationResult result;
  SimTelemetry st(obs::current().metrics());
  sim.skip(config.start_frame);
  while (sim.frame_index() < config.end_frame) {
    const video::MultiViewFrame frame = [&] {
      const obs::ScopedSpan span("stage.render", "stage", st.render_s, sim.frame_index());
      return sim.next_frame();
    }();
    ++result.gt_frames_processed;

    std::set<int> present;
    for (int c = 0; c < num_cameras; ++c) {
      for (int id : countable_ids(frame.truth[static_cast<std::size_t>(c)])) present.insert(id);
    }
    result.humans_present += static_cast<int>(present.size());

    // Fan out the entries whose battery holds charge at the top of the frame;
    // the sequential replay below re-checks each battery at its legacy
    // sequence point, so an entry drained dark mid-frame (a camera listed
    // twice) discards its speculative outcome exactly like the serial path.
    std::vector<char> compute(entries.size(), 0);
    for (std::size_t e = 0; e < entries.size(); ++e) {
      compute[e] = batteries[static_cast<std::size_t>(entries[e].camera)].empty() ? 0 : 1;
    }
    std::vector<FrameOutcome> outcomes;
    {
      const obs::ScopedSpan span("stage.detect", "stage", st.detect_s, frame.index);
      outcomes = common::parallel_map<FrameOutcome>(entries.size(), [&](std::size_t e) {
        if (!compute[e]) return FrameOutcome{};
        const Entry& entry = entries[e];
        return process_camera_frame(*entry.detector, entry.threshold, entry.camera,
                                    frame.views[static_cast<std::size_t>(entry.camera)],
                                    config.models);
      });
    }

    std::set<int> detected;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const Entry& entry = entries[e];
      energy::Battery& battery = batteries[static_cast<std::size_t>(entry.camera)];
      if (battery.empty()) {
        // Exhausted camera: contributes no detections and no radio energy.
        st.frames_skipped.inc();
        continue;
      }
      const FrameOutcome& outcome = outcomes[e];
      const double radio_joules = config.models.radio_model.tx_joules(outcome.comm_bytes);
      result.cpu_joules += outcome.cpu_joules;
      result.radio_joules += radio_joules;
      battery.drain(outcome.cpu_joules + radio_joules);

      const MatchResult match = match_detections(
          outcome.detections, frame.truth[static_cast<std::size_t>(entry.camera)]);
      for (int id : match.matched_person_ids) detected.insert(id);
    }
    for (int id : detected) {
      if (present.count(id) > 0) ++result.humans_detected;
    }
    sim.skip(stride - 1);
  }
  st.finalize(result);
  result.battery_residual.reserve(static_cast<std::size_t>(num_cameras));
  for (const auto& b : batteries) result.battery_residual.push_back(b.residual());
  return result;
}

}  // namespace eecs::core
