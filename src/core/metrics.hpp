// Detection-quality metrics: greedy IoU matching against ground truth,
// precision / recall / f-score (paper §IV-A), and the operating-threshold
// sweep that maximizes f-score per (algorithm, video segment) (§VI-A).
#pragma once

#include <vector>

#include "detect/detection.hpp"
#include "video/scene.hpp"

namespace eecs::core {

struct MatchCounts {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  MatchCounts& operator+=(const MatchCounts& rhs) {
    true_positives += rhs.true_positives;
    false_positives += rhs.false_positives;
    false_negatives += rhs.false_negatives;
    return *this;
  }
};

struct MatchOptions {
  double iou_threshold = 0.5;
  /// Ground truth below this visibility (or mostly out of frame) is an
  /// "ignore region": matching detections are discarded rather than counted,
  /// and missing it is not a false negative — standard practice for heavily
  /// occluded annotations.
  double min_visibility = 0.5;
  double min_in_image = 0.65;
};

/// Match detections (any order) against ground truth, greedily by descending
/// score. Also reports which detections matched which person ids.
struct MatchResult {
  MatchCounts counts;
  /// person_id for each matched detection, aligned with `matched_boxes`.
  std::vector<int> matched_person_ids;
  std::vector<detect::Detection> matched_detections;
};

[[nodiscard]] MatchResult match_detections(const std::vector<detect::Detection>& detections,
                                           const std::vector<video::GroundTruthBox>& truth,
                                           const MatchOptions& options = {});

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
};

/// Precision/recall/f from aggregate counts (0 when undefined).
[[nodiscard]] PrecisionRecall compute_pr(const MatchCounts& counts);

/// One evaluated frame: the detector's raw candidates and the frame's truth.
struct FrameEvaluation {
  std::vector<detect::Detection> detections;  ///< Score-bearing, NMS'd, un-thresholded.
  std::vector<video::GroundTruthBox> truth;
};

struct ThresholdSweepResult {
  double best_threshold = 0.0;
  PrecisionRecall best;
  MatchCounts counts_at_best;
};

/// Sweep the detection-score threshold d_t over the evaluated frames and
/// return the threshold maximizing f-score (ties: higher threshold). The
/// candidate set is a quantile grid over all observed scores.
[[nodiscard]] ThresholdSweepResult sweep_threshold(const std::vector<FrameEvaluation>& frames,
                                                   const MatchOptions& options = {},
                                                   int grid_size = 48);

/// Counts for a fixed threshold across frames.
[[nodiscard]] MatchCounts counts_at_threshold(const std::vector<FrameEvaluation>& frames,
                                              double threshold,
                                              const MatchOptions& options = {});

/// Detections at or above the threshold.
[[nodiscard]] std::vector<detect::Detection> apply_threshold(
    const std::vector<detect::Detection>& detections, double threshold);

}  // namespace eecs::core
