// The EECS central controller (§IV-B, §IV-C): matches each camera's scene to
// a training item via the GFK comparator, estimates the achievable global
// accuracy (N*, P*) from assessment-phase detection metadata, greedily picks
// a camera subset meeting the desired accuracy D = [gamma_n N*, gamma_p P*],
// and then walks the subset in reverse accuracy order downgrading cameras to
// cheaper algorithms while the estimate still meets D.
#pragma once

#include <map>
#include <set>
#include <string>

#include "core/offline.hpp"
#include "reid/reid.hpp"

namespace eecs::core {

enum class SelectionMode {
  AllBest,          ///< Baseline (i): every camera runs its best algorithm.
  SubsetOnly,       ///< (ii): greedy camera subset, best algorithms.
  SubsetDowngrade,  ///< (iii): subset + per-camera algorithm downgrade.
};

struct ControllerParams {
  double gamma_n = 0.85;  ///< Required fraction of N* (§VI-E).
  double gamma_p = 0.80;  ///< Required fraction of P*.
  std::vector<detect::AlgorithmId> algorithms{detect::AlgorithmId::Hog, detect::AlgorithmId::Acf,
                                              detect::AlgorithmId::C4};
};

/// What a camera is told to run until the next recalibration.
struct CameraAssignment {
  int camera = 0;
  bool active = false;
  detect::AlgorithmId algorithm = detect::AlgorithmId::Hog;
  double threshold = 0.0;
  double estimated_f = 0.0;          ///< f-score of the matched profile entry.
  double energy_per_frame = 0.0;     ///< c(A) + C_j of the chosen profile entry.
};

/// Detections of one camera running one algorithm over the assessment frames.
struct AssessmentSample {
  /// Per assessment frame, the thresholded detections with color features.
  std::vector<std::vector<reid::ViewDetection>> frames;
};

/// camera -> algorithm -> sample.
using AssessmentData = std::map<int, std::map<detect::AlgorithmId, AssessmentSample>>;

struct SelectionStats {
  double n_star = 0.0;  ///< Objects detected with all cameras at best algs.
  double p_star = 0.0;  ///< Mean fused probability, same configuration.
  double n_est = 0.0;   ///< Estimate for the chosen configuration.
  double p_est = 0.0;
  int cameras_active = 0;
  std::string summary;  ///< Human-readable, e.g. "cam2:HOG cam0:ACF".
};

class EecsController {
 public:
  EecsController(const OfflineKnowledge& knowledge, reid::ReIdentifier reidentifier,
                 const ControllerParams& params);

  /// §IV-B.1/2: register a camera from its uploaded feature matrix and
  /// per-frame energy budget; matches it to T_i* and stores the rank-ordered
  /// affordable algorithm list.
  void register_camera(int camera, const linalg::Matrix& features, double budget_joules);

  /// Checkpoint restore: re-admit a camera from its saved (matched item,
  /// budget) pair without re-running the GFK match. The affordable list is a
  /// pure function of (knowledge, matched_item, budget, params), so this
  /// reproduces register_camera()'s state bit-exactly.
  void restore_camera(int camera, int matched_item, double budget_joules);

  /// Checkpoint view of the registration state: one (camera, matched item,
  /// budget) triple per registered camera, in camera order.
  struct Registration {
    int camera = 0;
    int matched_item = -1;
    double budget = 0.0;
  };
  [[nodiscard]] std::vector<Registration> registrations() const;

  /// Matched training item index for a camera (-1 if not registered).
  [[nodiscard]] int matched_item(int camera) const;

  /// The most accurate affordable algorithm entry for a camera; nullptr if
  /// nothing fits its budget.
  [[nodiscard]] const AlgorithmProfile* best_entry(int camera) const;

  /// Affordable profile entry for a specific algorithm (nullptr otherwise).
  [[nodiscard]] const AlgorithmProfile* entry(int camera, detect::AlgorithmId id) const;

  /// The cheapest affordable algorithm entry for a camera (lowest
  /// c(A) + C_j); nullptr if nothing fits its budget. The degradation
  /// ladder's CheapAlgorithm rung runs this instead of the assignment.
  [[nodiscard]] const AlgorithmProfile* cheapest_entry(int camera) const;

  /// §IV-B.3/4 + §IV-C: full selection from assessment-phase metadata.
  /// `eligible`, when non-null, restricts the selection to that camera subset
  /// (the liveness tracker's surviving cameras); nullptr considers every
  /// registered camera.
  struct Selection {
    std::vector<CameraAssignment> assignments;
    SelectionStats stats;
  };
  [[nodiscard]] Selection select(const AssessmentData& assessment, SelectionMode mode,
                                 const std::set<int>* eligible = nullptr) const;

  [[nodiscard]] const ControllerParams& params() const { return params_; }
  [[nodiscard]] const reid::ReIdentifier& reidentifier() const { return reid_; }

 private:
  struct CameraState {
    int matched_item = -1;
    double budget = 0.0;
    std::vector<AlgorithmProfile> affordable;  ///< Rank-ordered by f-score.
  };

  /// Mean (over assessment frames) object count and fused probability for a
  /// candidate configuration camera->algorithm.
  struct Estimate {
    double objects = 0.0;
    double mean_probability = 0.0;
  };
  [[nodiscard]] Estimate estimate_config(
      const AssessmentData& assessment,
      const std::map<int, detect::AlgorithmId>& config) const;

  const OfflineKnowledge& knowledge_;
  reid::ReIdentifier reid_;
  ControllerParams params_;
  std::map<int, CameraState> cameras_;
};

}  // namespace eecs::core
