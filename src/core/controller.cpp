#include "core/controller.hpp"

#include <algorithm>
#include <sstream>

#include "obs/telemetry.hpp"

namespace eecs::core {

EecsController::EecsController(const OfflineKnowledge& knowledge, reid::ReIdentifier reidentifier,
                               const ControllerParams& params)
    : knowledge_(knowledge), reid_(std::move(reidentifier)), params_(params) {}

void EecsController::register_camera(int camera, const linalg::Matrix& features,
                                     double budget_joules) {
  const auto match = knowledge_.match(features);
  restore_camera(camera, match.best_index, budget_joules);
}

void EecsController::restore_camera(int camera, int matched_item, double budget_joules) {
  CameraState state;
  state.matched_item = matched_item;
  state.budget = budget_joules;
  // Rank-ordered algorithms of the matched item, filtered to the configured
  // set and the camera's budget constraint c(A) + C_j <= B_j.
  for (const auto& profile : knowledge_.profile(matched_item).algorithms) {
    const bool allowed = std::find(params_.algorithms.begin(), params_.algorithms.end(),
                                   profile.id) != params_.algorithms.end();
    if (allowed && profile.total_joules_per_frame() <= budget_joules) {
      state.affordable.push_back(profile);
    }
  }
  cameras_[camera] = std::move(state);
}

std::vector<EecsController::Registration> EecsController::registrations() const {
  std::vector<Registration> out;
  out.reserve(cameras_.size());
  for (const auto& [camera, state] : cameras_) {
    out.push_back({camera, state.matched_item, state.budget});
  }
  return out;
}

int EecsController::matched_item(int camera) const {
  const auto it = cameras_.find(camera);
  return it == cameras_.end() ? -1 : it->second.matched_item;
}

const AlgorithmProfile* EecsController::best_entry(int camera) const {
  const auto it = cameras_.find(camera);
  if (it == cameras_.end() || it->second.affordable.empty()) return nullptr;
  return &it->second.affordable.front();
}

const AlgorithmProfile* EecsController::entry(int camera, detect::AlgorithmId id) const {
  const auto it = cameras_.find(camera);
  if (it == cameras_.end()) return nullptr;
  for (const auto& p : it->second.affordable) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const AlgorithmProfile* EecsController::cheapest_entry(int camera) const {
  const auto it = cameras_.find(camera);
  if (it == cameras_.end() || it->second.affordable.empty()) return nullptr;
  const AlgorithmProfile* cheapest = &it->second.affordable.front();
  for (const auto& p : it->second.affordable) {
    if (p.total_joules_per_frame() < cheapest->total_joules_per_frame()) cheapest = &p;
  }
  return cheapest;
}

EecsController::Estimate EecsController::estimate_config(
    const AssessmentData& assessment, const std::map<int, detect::AlgorithmId>& config) const {
  // Number of assessment frames: take from any present sample.
  std::size_t num_frames = 0;
  for (const auto& [cam, algs] : assessment) {
    for (const auto& [alg, sample] : algs) num_frames = std::max(num_frames, sample.frames.size());
  }
  if (num_frames == 0) return {};

  double total_objects = 0.0;
  double total_prob = 0.0;
  long prob_count = 0;
  for (std::size_t f = 0; f < num_frames; ++f) {
    std::vector<reid::ViewDetection> detections;
    for (const auto& [camera, algorithm] : config) {
      const auto cam_it = assessment.find(camera);
      if (cam_it == assessment.end()) continue;
      const auto alg_it = cam_it->second.find(algorithm);
      if (alg_it == cam_it->second.end()) continue;
      if (f >= alg_it->second.frames.size()) continue;
      const auto& frame_dets = alg_it->second.frames[f];
      detections.insert(detections.end(), frame_dets.begin(), frame_dets.end());
    }
    const auto groups = reid_.group(detections);
    total_objects += static_cast<double>(groups.size());
    for (const auto& g : groups) {
      total_prob += g.fused_probability;
      ++prob_count;
    }
  }
  Estimate est;
  est.objects = total_objects / static_cast<double>(num_frames);
  est.mean_probability = prob_count > 0 ? total_prob / static_cast<double>(prob_count) : 0.0;
  return est;
}

EecsController::Selection EecsController::select(const AssessmentData& assessment,
                                                 SelectionMode mode,
                                                 const std::set<int>* eligible) const {
  Selection selection;
  const auto is_eligible = [&](int camera) {
    return eligible == nullptr || eligible->count(camera) > 0;
  };

  // Baseline configuration: every eligible registered camera with its best
  // affordable algorithm (cameras with no affordable algorithm stay off).
  std::map<int, detect::AlgorithmId> best_config;
  for (const auto& [camera, state] : cameras_) {
    if (is_eligible(camera) && !state.affordable.empty()) {
      best_config[camera] = state.affordable.front().id;
    }
  }
  const Estimate star = estimate_config(assessment, best_config);
  selection.stats.n_star = star.objects;
  selection.stats.p_star = star.mean_probability;

  const double need_n = params_.gamma_n * star.objects;
  const double need_p = params_.gamma_p * star.mean_probability;

  // Rank cameras by the estimated accuracy of their best algorithm
  // (S_o in §IV-B.3).
  std::vector<int> order;
  for (const auto& [camera, state] : cameras_) {
    if (is_eligible(camera) && !state.affordable.empty()) order.push_back(camera);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return best_entry(a)->accuracy.f_score > best_entry(b)->accuracy.f_score;
  });

  // Greedy subset: activate cameras in rank order until D is met.
  std::map<int, detect::AlgorithmId> config;
  Estimate est;
  std::size_t used = 0;
  if (mode == SelectionMode::AllBest) {
    config = best_config;
    used = order.size();
    est = star;
  } else {
    for (int camera : order) {
      config[camera] = best_config[camera];
      ++used;
      est = estimate_config(assessment, config);
      if (est.objects >= need_n && est.mean_probability >= need_p) break;
    }
  }

  // Downgrade pass (§IV-B.4): walk the selected cameras from least to most
  // accurate; replace the algorithm with a cheaper one of higher
  // f_score/energy, keeping the estimate above D. Stop at the first camera
  // where no such algorithm works.
  if (mode == SelectionMode::SubsetDowngrade) {
    for (std::size_t i = used; i-- > 0;) {
      const int camera = order[i];
      const AlgorithmProfile* current = entry(camera, config[camera]);
      EECS_EXPECTS(current != nullptr);
      const AlgorithmProfile* chosen = nullptr;
      for (const auto& candidate : cameras_.at(camera).affordable) {
        if (candidate.id == current->id) continue;
        if (candidate.total_joules_per_frame() >= current->total_joules_per_frame()) continue;
        if (candidate.f_per_joule() <= current->f_per_joule()) continue;
        std::map<int, detect::AlgorithmId> trial = config;
        trial[camera] = candidate.id;
        const Estimate trial_est = estimate_config(assessment, trial);
        if (trial_est.objects >= need_n && trial_est.mean_probability >= need_p) {
          chosen = &candidate;
          config = std::move(trial);
          est = trial_est;
          break;
        }
      }
      if (chosen == nullptr) break;
      if constexpr (obs::kEnabled) {
        obs::current().metrics().counter("controller.downgrades").inc();
        obs::TraceEvent event;
        event.cat = "round";
        event.name = "controller.downgrade";
        event.num_args = {{"camera", static_cast<double>(camera)},
                          {"from", static_cast<double>(current->id)},
                          {"to", static_cast<double>(chosen->id)}};
        obs::current().tracer().record(std::move(event));
      }
    }
  }

  selection.stats.n_est = est.objects;
  selection.stats.p_est = est.mean_probability;
  selection.stats.cameras_active = static_cast<int>(config.size());

  std::ostringstream summary;
  for (const auto& [camera, state] : cameras_) {
    if (!is_eligible(camera)) continue;
    CameraAssignment assignment;
    assignment.camera = camera;
    const auto it = config.find(camera);
    if (it != config.end()) {
      const AlgorithmProfile* profile = entry(camera, it->second);
      EECS_EXPECTS(profile != nullptr);
      assignment.active = true;
      assignment.algorithm = profile->id;
      assignment.threshold = profile->threshold;
      assignment.estimated_f = profile->accuracy.f_score;
      assignment.energy_per_frame = profile->total_joules_per_frame();
      summary << "cam" << camera << ":" << detect::to_string(profile->id) << " ";
    }
    selection.assignments.push_back(assignment);
  }
  selection.stats.summary = summary.str();
  return selection;
}

}  // namespace eecs::core
