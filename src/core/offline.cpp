#include "core/offline.hpp"

#include <algorithm>

namespace eecs::core {

const AlgorithmProfile* TrainingItemProfile::best_affordable(double budget_joules) const {
  for (const auto& p : algorithms) {
    if (p.total_joules_per_frame() <= budget_joules) return &p;
  }
  return nullptr;
}

const AlgorithmProfile* TrainingItemProfile::find(detect::AlgorithmId id) const {
  for (const auto& p : algorithms) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const TrainingItemProfile& OfflineKnowledge::profile(int index) const {
  EECS_EXPECTS(index >= 0 && index < static_cast<int>(profiles_.size()));
  return profiles_[static_cast<std::size_t>(index)];
}

namespace {

AlgorithmProfile profile_one(const detect::Detector& detector,
                             const std::vector<imaging::Image>& frames,
                             const std::vector<std::vector<video::GroundTruthBox>>& truths,
                             const OfflineOptions& options, const double* fixed_threshold) {
  EECS_EXPECTS(frames.size() == truths.size());
  EECS_EXPECTS(!frames.empty());

  energy::CostCounter cpu_cost;
  std::vector<FrameEvaluation> evals;
  evals.reserve(frames.size());
  std::size_t comm_bytes = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    FrameEvaluation fe;
    fe.detections = detector.detect(frames[i], &cpu_cost);
    fe.truth = truths[i];
    evals.push_back(std::move(fe));
  }

  AlgorithmProfile profile;
  profile.id = detector.id();
  if (fixed_threshold != nullptr) {
    profile.threshold = *fixed_threshold;
    profile.accuracy = compute_pr(counts_at_threshold(evals, profile.threshold));
  } else {
    const ThresholdSweepResult sweep = sweep_threshold(evals);
    profile.threshold = sweep.best_threshold;
    profile.accuracy = sweep.best;
  }

  // Communication cost per frame: metadata (172 B/object) plus the JPEG crop
  // of each detection above threshold.
  for (std::size_t i = 0; i < frames.size(); ++i) {
    for (const auto& det : apply_threshold(evals[i].detections, profile.threshold)) {
      comm_bytes += 172;
      comm_bytes += options.jpeg_model.region_bytes(frames[i], det.box);
    }
  }

  const double n = static_cast<double>(frames.size());
  profile.cpu_joules_per_frame = options.cpu_model.joules(cpu_cost) / n;
  profile.comm_joules_per_frame =
      options.radio_model.tx_joules(comm_bytes / frames.size());
  profile.seconds_per_frame = options.cpu_model.seconds(cpu_cost) / n;
  return profile;
}

std::vector<AlgorithmProfile> profile_all(
    const DetectorBank& detectors, const std::vector<imaging::Image>& frames,
    const std::vector<std::vector<video::GroundTruthBox>>& truths, const OfflineOptions& options,
    const std::vector<double>* fixed_thresholds) {
  std::vector<AlgorithmProfile> profiles;
  for (std::size_t a = 0; a < options.algorithms.size(); ++a) {
    const detect::AlgorithmId id = options.algorithms[a];
    const auto it = std::find_if(detectors.begin(), detectors.end(),
                                 [&](const auto& d) { return d->id() == id; });
    EECS_EXPECTS(it != detectors.end());
    const double* fixed = fixed_thresholds != nullptr ? &(*fixed_thresholds)[a] : nullptr;
    profiles.push_back(profile_one(**it, frames, truths, options, fixed));
  }
  std::sort(profiles.begin(), profiles.end(), [](const auto& x, const auto& y) {
    return x.accuracy.f_score > y.accuracy.f_score;
  });
  return profiles;
}

}  // namespace

std::vector<AlgorithmProfile> profile_segment(
    const DetectorBank& detectors, const std::vector<imaging::Image>& frames,
    const std::vector<std::vector<video::GroundTruthBox>>& truths, const OfflineOptions& options) {
  return profile_all(detectors, frames, truths, options, nullptr);
}

std::vector<AlgorithmProfile> profile_segment_fixed_thresholds(
    const DetectorBank& detectors, const std::vector<imaging::Image>& frames,
    const std::vector<std::vector<video::GroundTruthBox>>& truths,
    const std::vector<double>& thresholds, const OfflineOptions& options) {
  EECS_EXPECTS(thresholds.size() == options.algorithms.size());
  return profile_all(detectors, frames, truths, options, &thresholds);
}

OfflineKnowledge run_offline_training(const DetectorBank& detectors,
                                      const std::vector<int>& dataset_ids, std::uint64_t seed,
                                      const OfflineOptions& options) {
  EECS_EXPECTS(!dataset_ids.empty());
  Rng rng(seed);

  // Pass 1: collect frames. Vocabulary frames come from every feed, as the
  // paper builds its BoW vocabulary from images of the 12 training feeds.
  struct ItemFrames {
    int dataset, camera;
    std::vector<imaging::Image> gt_frames;
    std::vector<std::vector<video::GroundTruthBox>> truths;
    std::vector<imaging::Image> feature_frames;
  };
  std::vector<ItemFrames> items;
  std::vector<imaging::Image> vocab_frames;

  for (int ds : dataset_ids) {
    for (int cam = 0; cam < video::kNumCamerasPerDataset; ++cam) {
      video::SceneSimulator sim(video::dataset_by_id(ds), seed * 131 + static_cast<std::uint64_t>(ds));
      const int stride = sim.environment().ground_truth_stride;
      ItemFrames item;
      item.dataset = ds;
      item.camera = cam;
      // Interleave GT frames (for accuracy) and feature frames across the
      // 1000-frame training segment.
      const int total = std::max(options.frames_per_item, options.feature_frames_per_item);
      const int hop = std::max(1, (video::kTrainFrames / stride) / total) * stride;
      for (int i = 0; i < total; ++i) {
        std::vector<video::GroundTruthBox> truth;
        imaging::Image frame = sim.next_frame_single(cam, &truth);
        if (static_cast<int>(item.gt_frames.size()) < options.frames_per_item) {
          item.gt_frames.push_back(frame);
          item.truths.push_back(std::move(truth));
        }
        if (static_cast<int>(item.feature_frames.size()) < options.feature_frames_per_item) {
          item.feature_frames.push_back(std::move(frame));
        }
        sim.skip(hop - 1);
      }
      vocab_frames.push_back(item.feature_frames.front());
      items.push_back(std::move(item));
    }
  }

  auto extractor =
      std::make_shared<const features::FrameFeatureExtractor>(vocab_frames, features::FrameFeatureParams{}, rng);

  // Pass 2: profiles + comparator items.
  domain::VideoComparator comparator(options.comparator);
  std::vector<TrainingItemProfile> profiles;
  for (const auto& item : items) {
    TrainingItemProfile profile;
    profile.dataset = item.dataset;
    profile.camera = item.camera;
    profile.label = "T" + std::to_string(item.dataset) + "." + std::to_string(item.camera + 1);
    profile.algorithms = profile_segment(detectors, item.gt_frames, item.truths, options);
    profiles.push_back(std::move(profile));

    linalg::Matrix features(static_cast<int>(item.feature_frames.size()), extractor->dimension());
    for (std::size_t i = 0; i < item.feature_frames.size(); ++i) {
      const auto f = extractor->extract(item.feature_frames[i]);
      for (int c = 0; c < features.cols(); ++c) {
        features(static_cast<int>(i), c) = f[static_cast<std::size_t>(c)];
      }
    }
    comparator.add_training_item(features, profiles.back().label);
  }

  return OfflineKnowledge(std::move(profiles), std::move(comparator), std::move(extractor));
}

}  // namespace eecs::core
