// Closed-loop EECS simulation (§VI-E, Figs. 5 and 6) plus the fixed
// camera/algorithm combination runner behind Figs. 3 and 4: camera nodes
// render frames from the scene simulator, detect with their assigned
// algorithm, upload metadata over the simulated network, and the controller
// periodically re-selects cameras and algorithms from assessment metadata.
//
// The loop is message-driven and failure-aware: the controller consumes only
// what the network actually delivers, assignments are sequence-numbered with
// ack + bounded retry, silent cameras are declared dead by a liveness tracker
// (triggering mid-round re-selection over the survivors), and an exhausted
// battery stops a camera from detecting and transmitting. With a zero-loss
// link and an empty FaultPlan the results are bit-identical to the original
// fire-and-forget loop.
#pragma once

#include <string>

#include "core/controller.hpp"
#include "detect/sweep_scheduler.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "obs/anomaly.hpp"
#include "runtime/degradation.hpp"

namespace eecs::core {

/// Reliable-delivery and liveness knobs of the controller<->camera protocol.
struct ProtocolOptions {
  /// Resends of an unacked AlgorithmAssignment after the initial attempt.
  int max_assignment_retries = 3;
  /// Immediate resends of a lost §IV-B.1 feature upload (the camera sees the
  /// missing link-layer ack right away during registration).
  int registration_retries = 3;
  /// Ground-truth frames of silence before a camera is presumed dead.
  double liveness_timeout_gt_frames = 2.5;
  /// Deterministic jitter on the assignment retry backoff (see
  /// runtime::RetryPolicy); 0 keeps the exact legacy schedule.
  double retry_jitter_fraction = 0.0;
};

/// Durable-runtime knobs: round deadlines, graceful degradation, and
/// checkpoint/resume. Every default is "off" and leaves the simulation
/// bit-identical to a build without the runtime layer.
struct RuntimeOptions {
  /// Virtual-time budget per recalibration round, in ground-truth frames;
  /// cameras whose assessment metadata misses it take a strike and enough
  /// strikes fail them out of selection (like a heartbeat loss). 0 disables.
  double round_deadline_gt_frames = 0.0;
  int deadline_strikes_to_fail = 2;
  /// Graceful-degradation ladder (disabled by default).
  runtime::DegradationPolicy degradation;
  /// Write a snapshot to `checkpoint_path` every K completed rounds
  /// (captured at the round boundary, before the assessment window). 0
  /// disables checkpointing.
  int checkpoint_every_rounds = 0;
  std::string checkpoint_path;
  /// Resume from a snapshot written by a previous run with an identical
  /// configuration; the registration phase is skipped and the result is
  /// bit-identical to the uninterrupted run. Empty = start fresh.
  std::string resume_from;
  /// Stop (simulated crash) once this many rounds completed; 0 = run to the
  /// end. The partial result covers only the rounds actually run.
  long stop_after_rounds = 0;
  /// Flight recorder: when `flight_recorder_path` is non-empty the loop keeps
  /// a bounded ring of per-round summaries and dumps it there as a JSONL
  /// black box on watchdog strike, ladder descent, or checkpoint write (see
  /// obs/flight.hpp; replay with tools/eecs_flight). Recording itself never
  /// alters simulation results. No-op under EECS_OBS_OFF.
  std::string flight_recorder_path;
  int flight_recorder_rounds = 64;  ///< Ring capacity (rounds retained).
  /// Anomaly detection over per-round telemetry (obs/anomaly.hpp). Findings
  /// are counted and traced; they only feed back into behaviour when
  /// `degradation.anomaly_advisory` is also set.
  obs::AnomalyOptions anomaly;
};

struct EecsSimulationConfig {
  int dataset = 1;
  std::uint64_t seed = 777;
  /// Parallel width for the per-camera fan-out and the row-partitioned
  /// kernels. 0 = global default (EECS_THREADS env, else hardware
  /// concurrency); 1 = the exact serial legacy path. Results are
  /// bit-identical at every setting (see DESIGN.md "Execution model").
  int threads = 0;
  /// SIMD kernel dispatch. -1 = global default (EECS_SIMD env, else on when a
  /// native backend was compiled in); 0 = scalar packs; 1 = auto-native;
  /// 128/256/512 pick a lane width (native when available, else its
  /// bit-identical emulation twin); -128/-256/-512 force the emulation twin.
  /// Results are bit-identical at every setting (see DESIGN.md "SIMD &
  /// portability").
  int simd = -1;
  /// Stage-major round precompute: gather every camera's frame and run one
  /// shared-plan resize pass per pyramid rung across the whole batch before
  /// the per-camera fan-out (see DESIGN.md "Virtual width & batched
  /// detection"). Bit-identical either way; off = per-camera on-demand.
  bool batch_precompute = true;
  /// Context-aware scale/region pruning (off by default; overridable with the
  /// EECS_CONTEXT_GATE env var — see detect::resolve_context_gate). When
  /// enabled, each camera's ground-plane homography bounds the feasible
  /// person scales per image row and whole tiles of the sliding-window sweep
  /// are pruned before any channel work; every `recovery_every`-th round runs
  /// ungated as a full-sweep recovery pass. Gate-off runs are bit-identical
  /// to builds without the gate.
  detect::ContextGateOptions context_gate;
  SelectionMode mode = SelectionMode::SubsetDowngrade;
  /// Per-frame energy budget B_j (identical cameras); algorithms that do not
  /// fit are not even assessed (§IV).
  double budget_per_frame = 1e9;
  ControllerParams controller;
  /// Test segment (paper: frames 1001..2950).
  int start_frame = 1000;
  int end_frame = 2950;
  /// Ground-truth frames per assessment window (paper: 100 frames at GT
  /// stride 25 -> 4) and per operation window (500 frames -> 20).
  int assessment_gt_frames = 4;
  int operation_gt_frames = 20;
  /// Process every k-th ground-truth frame (runtime knob; 1 = all).
  int gt_frame_step = 1;
  /// Number of frames whose features form the §IV-B.1 upload.
  int upload_feature_frames = 12;
  OfflineOptions models;  ///< Energy/radio/JPEG models shared with offline.

  /// Battery capacity per camera node.
  double battery_joules = 1.0e5;
  /// Camera -> controller link quality (applied to every camera uplink).
  net::LinkQuality uplink;
  /// Controller -> camera link quality.
  net::LinkQuality downlink;
  /// Fault-injection schedule. Times are video frame indices; camera c is
  /// network node c + 1 (node 0 is the controller).
  net::FaultPlan faults;
  ProtocolOptions protocol;
  RuntimeOptions runtime;
};

struct RoundLog {
  int start_frame = 0;
  SelectionStats stats;
  /// True when this entry is a mid-round re-selection around a dead camera
  /// rather than a scheduled recalibration.
  bool midround_recovery = false;
};

/// Robustness counters surfaced by the runners. A view over the obs metrics
/// registry: the loop increments named counters (`net.messages.sent`,
/// `liveness.cameras.failed`, ...) in the current telemetry session and this
/// struct is assigned once, at the end of a run, from the registry deltas
/// over that run. Semantics are identical to the legacy direct counting.
struct FaultCounters {
  long messages_sent = 0;      ///< Protocol messages offered to the network.
  long messages_lost = 0;      ///< ... that the network failed to deliver.
  long assignments_retried = 0;
  long assignments_abandoned = 0;  ///< Retry budget exhausted; the camera
                                   ///< keeps its last-known-good assignment.
  long registrations_lost = 0;     ///< Feature uploads never delivered.
  long decode_errors = 0;          ///< Malformed payloads rejected on receipt.
  int cameras_failed = 0;          ///< Declared dead by the liveness tracker.
  int cameras_recovered = 0;       ///< Heard from again after being presumed dead.
  int midround_reselections = 0;
  long frames_skipped_exhausted = 0;  ///< Camera-frames skipped on empty battery.

  // Durable-runtime accounting. Every pushed assignment ends in exactly one
  // of {acked, abandoned, dropped, replaced} or is still pending at exit:
  //   pushed == acked + abandoned + dropped + replaced + pending_at_exit
  // (the chaos harness asserts this "no lost-forever assignments" identity).
  long assignments_pushed = 0;
  long assignments_acked = 0;
  long acks_late = 0;             ///< Ack arrived after the entry was closed;
                                  ///< counted here, never re-applied.
  long assignments_dropped = 0;   ///< Camera presumed dead; retries stopped.
  long assignments_replaced = 0;  ///< Superseded by a newer push while unacked.
  long assignments_pending_at_exit = 0;
  long deadline_misses = 0;          ///< Round-watchdog misses (per camera-round).
  long degradation_stepdowns = 0;    ///< Ladder transitions to a deeper rung.
  long degradation_stepups = 0;      ///< Recovery transitions back up.
  long frames_parked = 0;            ///< Camera-frames spent at the Parked rung.
};

/// Wall-clock seconds per pipeline stage, for bench observability only.
/// Excluded from determinism comparisons: every other SimulationResult field
/// is bit-identical across runs and thread counts, these are not. A view over
/// the obs registry's `stage.*_s` wall-clock gauges (fed by ScopedSpan),
/// assigned once per run from the gauge deltas.
struct StageTimings {
  double render_s = 0.0;      ///< Scene rendering (sim.next_frame and skips).
  double detect_s = 0.0;      ///< Detection + color features (camera fan-out).
  double features_s = 0.0;    ///< §IV-B.1 registration feature extraction.
  double controller_s = 0.0;  ///< Selection / re-selection.
  double net_s = 0.0;         ///< Network pump, sends, protocol bookkeeping.

  [[nodiscard]] double total() const {
    return render_s + detect_s + features_s + controller_s + net_s;
  }
};

struct SimulationResult {
  double cpu_joules = 0.0;
  double radio_joules = 0.0;
  int humans_detected = 0;  ///< Unique (frame, person) pairs detected.
  int humans_present = 0;   ///< Countable (frame, person) pairs in the scene.
  int gt_frames_processed = 0;
  /// Sliding-window accounting across every operation-phase detect call:
  /// windows actually scored vs. pruned by the context gate. Their sum is
  /// invariant under gating (it always equals the full-sweep window count),
  /// so `windows_evaluated_fraction()` reports the gate's pruning power.
  std::uint64_t windows_evaluated = 0;
  std::uint64_t windows_pruned = 0;
  std::vector<RoundLog> rounds;
  FaultCounters faults;
  std::vector<double> battery_residual;  ///< Per camera, at simulation end.
  StageTimings timings;                  ///< Observability only; see StageTimings.

  [[nodiscard]] double total_joules() const { return cpu_joules + radio_joules; }
  [[nodiscard]] double detection_rate() const {
    return humans_present > 0 ? static_cast<double>(humans_detected) / humans_present : 0.0;
  }
  [[nodiscard]] double windows_evaluated_fraction() const {
    const std::uint64_t total = windows_evaluated + windows_pruned;
    return total > 0 ? static_cast<double>(windows_evaluated) / static_cast<double>(total) : 1.0;
  }
};

/// Fit the controller's appearance gate from annotated training-segment
/// frames (offline calibration, §IV-C).
[[nodiscard]] reid::ColorGate fit_color_gate(int dataset, std::uint64_t seed,
                                             int calibration_frames = 6);

/// Build the re-identifier from the dataset's provided calibration (the
/// analytic ground homographies of the simulator's cameras).
[[nodiscard]] reid::ReIdentifier make_reidentifier(const video::SceneSimulator& sim,
                                                   const reid::ReIdParams& params = {});

/// Run the full adaptive loop.
[[nodiscard]] SimulationResult run_eecs_simulation(const DetectorBank& detectors,
                                                   const OfflineKnowledge& knowledge,
                                                   const EecsSimulationConfig& config);

/// A fixed (camera, algorithm) combination, e.g. Fig. 4's "2HOG+2ACF".
struct FixedCombo {
  std::vector<std::pair<int, detect::AlgorithmId>> active;
};

struct FixedComboConfig {
  int dataset = 1;
  std::uint64_t seed = 777;
  /// Parallel width; see EecsSimulationConfig::threads.
  int threads = 0;
  /// SIMD dispatch; see EecsSimulationConfig::simd.
  int simd = -1;
  /// Stage-major round precompute; see EecsSimulationConfig::batch_precompute.
  bool batch_precompute = true;
  /// Context-aware pruning; see EecsSimulationConfig::context_gate.
  detect::ContextGateOptions context_gate;
  int start_frame = 1000;
  int end_frame = 2950;
  int gt_frame_step = 1;
  OfflineOptions models;
  /// Battery capacity per camera node; an exhausted camera contributes no
  /// detections and no radio energy. The default never empties in practice.
  double battery_joules = 1.0e9;
};

/// Run a fixed combination over the test segment; thresholds come from the
/// offline profiles of the same (dataset, camera).
[[nodiscard]] SimulationResult run_fixed_combo(const DetectorBank& detectors,
                                               const OfflineKnowledge& knowledge,
                                               const FixedCombo& combo,
                                               const FixedComboConfig& config);

}  // namespace eecs::core
