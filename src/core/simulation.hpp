// Closed-loop EECS simulation (§VI-E, Figs. 5 and 6) plus the fixed
// camera/algorithm combination runner behind Figs. 3 and 4: camera nodes
// render frames from the scene simulator, detect with their assigned
// algorithm, upload metadata over the simulated network, and the controller
// periodically re-selects cameras and algorithms from assessment metadata.
#pragma once

#include "core/controller.hpp"
#include "net/network.hpp"

namespace eecs::core {

struct EecsSimulationConfig {
  int dataset = 1;
  std::uint64_t seed = 777;
  SelectionMode mode = SelectionMode::SubsetDowngrade;
  /// Per-frame energy budget B_j (identical cameras); algorithms that do not
  /// fit are not even assessed (§IV).
  double budget_per_frame = 1e9;
  ControllerParams controller;
  /// Test segment (paper: frames 1001..2950).
  int start_frame = 1000;
  int end_frame = 2950;
  /// Ground-truth frames per assessment window (paper: 100 frames at GT
  /// stride 25 -> 4) and per operation window (500 frames -> 20).
  int assessment_gt_frames = 4;
  int operation_gt_frames = 20;
  /// Process every k-th ground-truth frame (runtime knob; 1 = all).
  int gt_frame_step = 1;
  /// Number of frames whose features form the §IV-B.1 upload.
  int upload_feature_frames = 12;
  OfflineOptions models;  ///< Energy/radio/JPEG models shared with offline.
};

struct RoundLog {
  int start_frame = 0;
  SelectionStats stats;
};

struct SimulationResult {
  double cpu_joules = 0.0;
  double radio_joules = 0.0;
  int humans_detected = 0;  ///< Unique (frame, person) pairs detected.
  int humans_present = 0;   ///< Countable (frame, person) pairs in the scene.
  int gt_frames_processed = 0;
  std::vector<RoundLog> rounds;

  [[nodiscard]] double total_joules() const { return cpu_joules + radio_joules; }
  [[nodiscard]] double detection_rate() const {
    return humans_present > 0 ? static_cast<double>(humans_detected) / humans_present : 0.0;
  }
};

/// Fit the controller's appearance gate from annotated training-segment
/// frames (offline calibration, §IV-C).
[[nodiscard]] reid::ColorGate fit_color_gate(int dataset, std::uint64_t seed,
                                             int calibration_frames = 6);

/// Build the re-identifier from the dataset's provided calibration (the
/// analytic ground homographies of the simulator's cameras).
[[nodiscard]] reid::ReIdentifier make_reidentifier(const video::SceneSimulator& sim,
                                                   const reid::ReIdParams& params = {});

/// Run the full adaptive loop.
[[nodiscard]] SimulationResult run_eecs_simulation(const DetectorBank& detectors,
                                                   const OfflineKnowledge& knowledge,
                                                   const EecsSimulationConfig& config);

/// A fixed (camera, algorithm) combination, e.g. Fig. 4's "2HOG+2ACF".
struct FixedCombo {
  std::vector<std::pair<int, detect::AlgorithmId>> active;
};

struct FixedComboConfig {
  int dataset = 1;
  std::uint64_t seed = 777;
  int start_frame = 1000;
  int end_frame = 2950;
  int gt_frame_step = 1;
  OfflineOptions models;
};

/// Run a fixed combination over the test segment; thresholds come from the
/// offline profiles of the same (dataset, camera).
[[nodiscard]] SimulationResult run_fixed_combo(const DetectorBank& detectors,
                                               const OfflineKnowledge& knowledge,
                                               const FixedCombo& combo,
                                               const FixedComboConfig& config);

}  // namespace eecs::core
