#include "linalg/matrix.hpp"

#include <cmath>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace eecs::linalg {

namespace {

/// Products split over output rows: each task owns a disjoint row range and
/// accumulates its entries in the same k order as the serial loop, so results
/// are bit-identical at any thread count. Small products stay serial.
constexpr std::size_t kRowGrain = 16;

/// y[j] += a * x[j]: the matmul microkernel. Every output element is its own
/// accumulation chain (ordered by the caller's k loop), so the lanes run
/// across j and any blocking is bit-identical. No FMA — the pack API emits a
/// separate multiply and add, same rounding as the scalar expression.
template <class D2>
void axpy_row(double a, const double* x, double* y, std::size_t n) {
  const D2 av = D2::broadcast(a);
  std::size_t j = 0;
  for (; j + D2::kLanes <= n; j += D2::kLanes) {
    (D2::load(y + j) + av * D2::load(x + j)).store(y + j);
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

}  // namespace

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
  EECS_EXPECTS(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_));
  for (const auto& r : rows) {
    EECS_EXPECTS(static_cast<int>(r.size()) == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(std::span<const double> v) {
  Matrix m(static_cast<int>(v.size()), 1);
  for (int i = 0; i < m.rows(); ++i) m(i, 0) = v[static_cast<std::size_t>(i)];
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows.front().size()));
  for (int r = 0; r < m.rows(); ++r) {
    EECS_EXPECTS(static_cast<int>(rows[static_cast<std::size_t>(r)].size()) == m.cols());
    for (int c = 0; c < m.cols(); ++c) m(r, c) = rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }
  return m;
}

std::span<double> Matrix::row(int r) {
  EECS_EXPECTS(r >= 0 && r < rows_);
  return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
          static_cast<std::size_t>(cols_)};
}

std::span<const double> Matrix::row(int r) const {
  EECS_EXPECTS(r >= 0 && r < rows_);
  return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
          static_cast<std::size_t>(cols_)};
}

std::vector<double> Matrix::col(int c) const {
  EECS_EXPECTS(c >= 0 && c < cols_);
  std::vector<double> out(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) out[static_cast<std::size_t>(r)] = (*this)(r, c);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  EECS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  EECS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::slice_cols(int c0, int c1) const {
  EECS_EXPECTS(0 <= c0 && c0 <= c1 && c1 <= cols_);
  Matrix out(rows_, c1 - c0);
  for (int r = 0; r < rows_; ++r) {
    for (int c = c0; c < c1; ++c) out(r, c - c0) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::slice_rows(int r0, int r1) const {
  EECS_EXPECTS(0 <= r0 && r0 <= r1 && r1 <= rows_);
  Matrix out(r1 - r0, cols_);
  for (int r = r0; r < r1; ++r) {
    for (int c = 0; c < cols_; ++c) out(r - r0, c) = (*this)(r, c);
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  EECS_EXPECTS(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const std::size_t n = static_cast<std::size_t>(b.cols());
  simd::dispatch([&](auto isa) {
    using D2 = typename decltype(isa)::F64;
    common::parallel_for(static_cast<std::size_t>(a.rows()), kRowGrain,
                         [&](std::size_t i0, std::size_t i1) {
                           for (int i = static_cast<int>(i0); i < static_cast<int>(i1); ++i) {
                             double* orow = out.row(i).data();
                             for (int k = 0; k < a.cols(); ++k) {
                               const double aik = a(i, k);
                               if (aik == 0.0) continue;
                               axpy_row<D2>(aik, b.row(k).data(), orow, n);
                             }
                           }
                         });
  });
  return out;
}

Matrix transpose_times(const Matrix& a, const Matrix& b) {
  EECS_EXPECTS(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  // Output-row-major order (i outer, k inner) instead of the cache-friendlier
  // k-outer walk, so each task owns its rows; per-entry accumulation still
  // runs in increasing k, matching the serial result bit for bit.
  const std::size_t n = static_cast<std::size_t>(b.cols());
  simd::dispatch([&](auto isa) {
    using D2 = typename decltype(isa)::F64;
    common::parallel_for(static_cast<std::size_t>(a.cols()), kRowGrain,
                         [&](std::size_t i0, std::size_t i1) {
                           for (int i = static_cast<int>(i0); i < static_cast<int>(i1); ++i) {
                             double* orow = out.row(i).data();
                             for (int k = 0; k < a.rows(); ++k) {
                               const double aki = a(k, i);
                               if (aki == 0.0) continue;
                               axpy_row<D2>(aki, b.row(k).data(), orow, n);
                             }
                           }
                         });
  });
  return out;
}

std::vector<double> operator*(const Matrix& a, std::span<const double> x) {
  EECS_EXPECTS(a.cols() == static_cast<int>(x.size()));
  std::vector<double> out(static_cast<std::size_t>(a.rows()), 0.0);
  common::parallel_for(static_cast<std::size_t>(a.rows()), 2 * kRowGrain,
                       [&](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i) {
                           out[i] = dot(a.row(static_cast<int>(i)), x);
                         }
                       });
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  EECS_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double max_abs_diff(const Matrix& a, const Matrix& b) {
  EECS_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) m = std::max(m, std::abs(a(r, c) - b(r, c)));
  }
  return m;
}

}  // namespace eecs::linalg
