// Principal component analysis. Used (a) to build the per-video subspaces
// projected onto the Grassmann manifold (paper §III), and (b) to reduce the
// mean-color re-identification features (paper §IV-C).
#pragma once

#include "linalg/matrix.hpp"

namespace eecs::linalg {

class Pca {
 public:
  Pca() = default;

  /// Fit on samples given as rows of `data` (n_samples x dim), keeping the
  /// top `components` principal directions. Requires 1 <= components <= dim.
  Pca(const Matrix& data, int components);

  /// dim x components orthonormal basis (columns are principal directions,
  /// descending variance). This is x_i / z_j in the paper's Table I.
  [[nodiscard]] const Matrix& basis() const { return basis_; }

  /// Per-component variances (descending).
  [[nodiscard]] const std::vector<double>& explained_variance() const { return variance_; }

  /// Mean of the training samples.
  [[nodiscard]] std::span<const double> mean() const { return mean_; }

  [[nodiscard]] int input_dim() const { return basis_.rows(); }
  [[nodiscard]] int components() const { return basis_.cols(); }

  /// Project a sample into the component space (centers by the fitted mean).
  [[nodiscard]] std::vector<double> transform(std::span<const double> x) const;

  /// Project each row of `data`; returns n_samples x components.
  [[nodiscard]] Matrix transform_rows(const Matrix& data) const;

 private:
  Matrix basis_;
  std::vector<double> variance_;
  std::vector<double> mean_;
};

/// Column mean of row-sample matrix.
[[nodiscard]] std::vector<double> column_mean(const Matrix& data);

/// Sample covariance (dim x dim) of row-sample matrix; uses n-1 denominator.
[[nodiscard]] Matrix covariance(const Matrix& data);

/// Mahalanobis distance sqrt((a-b)^T inv_cov (a-b)) given a precomputed
/// inverse covariance.
[[nodiscard]] double mahalanobis(std::span<const double> a, std::span<const double> b,
                                 const Matrix& inv_cov);

}  // namespace eecs::linalg
