#include "linalg/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace eecs::linalg {

namespace {

constexpr int kMaxJacobiSweeps = 60;
constexpr double kJacobiEps = 1e-12;

/// One-sided Jacobi SVD for m >= n. Rotates column pairs of `a` until all are
/// mutually orthogonal, accumulating rotations into `v`.
SvdResult svd_tall(Matrix a) {
  const int m = a.rows();
  const int n = a.cols();
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < kMaxJacobiSweeps; ++sweep) {
    bool rotated = false;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int i = 0; i < m; ++i) {
          const double ap = a(i, p), aq = a(i, q);
          alpha += ap * ap;
          beta += aq * aq;
          gamma += ap * aq;
        }
        if (std::abs(gamma) <= kJacobiEps * std::sqrt(alpha * beta) || gamma == 0.0) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(1.0, zeta) / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < m; ++i) {
          const double ap = a(i, p), aq = a(i, q);
          a(i, p) = c * ap - s * aq;
          a(i, q) = s * ap + c * aq;
        }
        for (int i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Column norms are the singular values.
  std::vector<double> sv(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    sv[static_cast<std::size_t>(j)] = std::sqrt(s);
  }

  // Sort descending.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return sv[static_cast<std::size_t>(i)] > sv[static_cast<std::size_t>(j)]; });

  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.singular_values.resize(static_cast<std::size_t>(n));
  for (int jj = 0; jj < n; ++jj) {
    const int j = order[static_cast<std::size_t>(jj)];
    const double s = sv[static_cast<std::size_t>(j)];
    out.singular_values[static_cast<std::size_t>(jj)] = s;
    if (s > 0.0) {
      for (int i = 0; i < m; ++i) out.u(i, jj) = a(i, j) / s;
    } else {
      // Zero singular value: leave the U column zero; callers that need a
      // full orthonormal basis use orthogonal_complement instead.
      for (int i = 0; i < m; ++i) out.u(i, jj) = 0.0;
    }
    for (int i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  return out;
}

}  // namespace

QrResult qr_decompose(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  Matrix r = a;
  Matrix q = Matrix::identity(m);

  const int steps = std::min(m - 1, n);
  for (int k = 0; k < steps; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_x = 0.0;
    for (int i = k; i < m; ++i) norm_x += r(i, k) * r(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;

    std::vector<double> v(static_cast<std::size_t>(m - k));
    const double alpha = r(k, k) >= 0 ? -norm_x : norm_x;
    v[0] = r(k, k) - alpha;
    for (int i = k + 1; i < m; ++i) v[static_cast<std::size_t>(i - k)] = r(i, k);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) continue;

    // r = (I - 2 v v^T / v^T v) r, applied to rows k..m-1.
    for (int j = k; j < n; ++j) {
      double dot_vr = 0.0;
      for (int i = k; i < m; ++i) dot_vr += v[static_cast<std::size_t>(i - k)] * r(i, j);
      const double f = 2.0 * dot_vr / vnorm2;
      for (int i = k; i < m; ++i) r(i, j) -= f * v[static_cast<std::size_t>(i - k)];
    }
    // q = q (I - 2 v v^T / v^T v), applied to columns k..m-1.
    for (int i = 0; i < m; ++i) {
      double dot_qv = 0.0;
      for (int j = k; j < m; ++j) dot_qv += q(i, j) * v[static_cast<std::size_t>(j - k)];
      const double f = 2.0 * dot_qv / vnorm2;
      for (int j = k; j < m; ++j) q(i, j) -= f * v[static_cast<std::size_t>(j - k)];
    }
  }
  // Zero out numerical noise below the diagonal.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < std::min(i, n); ++j) r(i, j) = 0.0;
  }
  return {std::move(q), std::move(r)};
}

Matrix orthogonal_complement(const Matrix& basis) {
  const int m = basis.rows();
  const int k = basis.cols();
  EECS_EXPECTS(k <= m);
  if (k == m) return Matrix(m, 0);
  // Full Q of the QR factorization of `basis`: its first k columns span the
  // basis, the remaining m-k columns span the complement.
  const QrResult qr = qr_decompose(basis);
  return qr.q.slice_cols(k, m);
}

SvdResult svd_decompose(const Matrix& a) {
  EECS_EXPECTS(!a.empty());
  if (a.rows() >= a.cols()) return svd_tall(a);
  SvdResult t = svd_tall(a.transposed());
  return {std::move(t.v), std::move(t.singular_values), std::move(t.u)};
}

EigResult eig_symmetric(const Matrix& a) {
  EECS_EXPECTS(a.rows() == a.cols());
  const int n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < kMaxJacobiSweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < kJacobiEps * kJacobiEps) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < kJacobiEps) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = std::copysign(1.0, theta) / (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < n; ++i) {
          const double dip = d(i, p), diq = d(i, q);
          d(i, p) = c * dip - s * diq;
          d(i, q) = s * dip + c * diq;
        }
        for (int i = 0; i < n; ++i) {
          const double dpi = d(p, i), dqi = d(q, i);
          d(p, i) = c * dpi - s * dqi;
          d(q, i) = s * dpi + c * dqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int i, int j) { return d(i, i) > d(j, j); });

  EigResult out;
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int jj = 0; jj < n; ++jj) {
    const int j = order[static_cast<std::size_t>(jj)];
    out.eigenvalues[static_cast<std::size_t>(jj)] = d(j, j);
    for (int i = 0; i < n; ++i) out.eigenvectors(i, jj) = v(i, j);
  }
  return out;
}

namespace {

/// Lower-triangular Cholesky factor; throws if not SPD.
Matrix cholesky(const Matrix& a) {
  EECS_EXPECTS(a.rows() == a.cols());
  const int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("cholesky: matrix is not positive definite");
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

}  // namespace

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
  EECS_EXPECTS(a.rows() == static_cast<int>(b.size()));
  const Matrix l = cholesky(a);
  const int n = a.rows();
  // Forward substitution: l y = b.
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (int k = 0; k < i; ++k) s -= l(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  // Back substitution: l^T x = y.
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double s = y[static_cast<std::size_t>(i)];
    for (int k = i + 1; k < n; ++k) s -= l(k, i) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  return x;
}

Matrix invert_spd(const Matrix& a) {
  const int n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1.0;
    const std::vector<double> x = solve_spd(a, e);
    for (int i = 0; i < n; ++i) inv(i, j) = x[static_cast<std::size_t>(i)];
    e[static_cast<std::size_t>(j)] = 0.0;
  }
  return inv;
}

}  // namespace eecs::linalg
