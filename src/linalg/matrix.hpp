// Dense row-major double matrix with value semantics (Core Guidelines C.10,
// C.11). Sized for the workloads in this repository: PCA bases and GFK
// kernels of a few hundred rows/columns.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace eecs::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(int n);
  /// Single-column matrix holding v.
  [[nodiscard]] static Matrix column(std::span<const double> v);
  /// Matrix whose rows are the given equally-sized vectors.
  [[nodiscard]] static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(int r, int c) {
    EECS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double operator()(int r, int c) const {
    EECS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  [[nodiscard]] std::span<double> row(int r);
  [[nodiscard]] std::span<const double> row(int r) const;

  [[nodiscard]] std::vector<double> col(int c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;

  /// Columns [c0, c1) as a new matrix.
  [[nodiscard]] Matrix slice_cols(int c0, int c1) const;
  /// Rows [r0, r1) as a new matrix.
  [[nodiscard]] Matrix slice_rows(int r0, int r1) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix lhs, double s);
[[nodiscard]] Matrix operator*(double s, Matrix rhs);
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// a^T * b without materializing the transpose.
[[nodiscard]] Matrix transpose_times(const Matrix& a, const Matrix& b);

/// Matrix-vector product.
[[nodiscard]] std::vector<double> operator*(const Matrix& a, std::span<const double> x);

/// Dot product. Requires equal sizes.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm(std::span<const double> v);

/// Max |a_ij - b_ij|; matrices must have equal shape.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace eecs::linalg
