#include "linalg/pca.hpp"

#include <cmath>

#include "linalg/decomp.hpp"

namespace eecs::linalg {

Pca::Pca(const Matrix& data, int components) {
  EECS_EXPECTS(data.rows() >= 2);
  EECS_EXPECTS(components >= 1 && components <= data.cols());
  const int n = data.rows();
  const int dim = data.cols();

  mean_ = column_mean(data);
  Matrix centered(n, dim);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < dim; ++c) centered(r, c) = data(r, c) - mean_[static_cast<std::size_t>(c)];
  }

  // SVD of the centered data: right singular vectors are the principal
  // directions; singular values give the variances. Avoids forming the
  // (possibly large) covariance matrix when n < dim.
  const SvdResult svd = svd_decompose(centered);
  basis_ = svd.v.slice_cols(0, components);
  variance_.resize(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) {
    const double s = svd.singular_values[static_cast<std::size_t>(i)];
    variance_[static_cast<std::size_t>(i)] = s * s / static_cast<double>(n - 1);
  }
}

std::vector<double> Pca::transform(std::span<const double> x) const {
  EECS_EXPECTS(static_cast<int>(x.size()) == input_dim());
  std::vector<double> centered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) centered[i] = x[i] - mean_[i];
  std::vector<double> out(static_cast<std::size_t>(components()), 0.0);
  for (int c = 0; c < components(); ++c) {
    double s = 0.0;
    for (int r = 0; r < input_dim(); ++r) s += basis_(r, c) * centered[static_cast<std::size_t>(r)];
    out[static_cast<std::size_t>(c)] = s;
  }
  return out;
}

Matrix Pca::transform_rows(const Matrix& data) const {
  EECS_EXPECTS(data.cols() == input_dim());
  Matrix out(data.rows(), components());
  for (int r = 0; r < data.rows(); ++r) {
    const std::vector<double> t = transform(data.row(r));
    for (int c = 0; c < components(); ++c) out(r, c) = t[static_cast<std::size_t>(c)];
  }
  return out;
}

std::vector<double> column_mean(const Matrix& data) {
  EECS_EXPECTS(data.rows() >= 1);
  std::vector<double> mean(static_cast<std::size_t>(data.cols()), 0.0);
  for (int r = 0; r < data.rows(); ++r) {
    for (int c = 0; c < data.cols(); ++c) mean[static_cast<std::size_t>(c)] += data(r, c);
  }
  for (auto& m : mean) m /= static_cast<double>(data.rows());
  return mean;
}

Matrix covariance(const Matrix& data) {
  EECS_EXPECTS(data.rows() >= 2);
  const std::vector<double> mean = column_mean(data);
  const int dim = data.cols();
  Matrix cov(dim, dim);
  for (int r = 0; r < data.rows(); ++r) {
    for (int i = 0; i < dim; ++i) {
      const double di = data(r, i) - mean[static_cast<std::size_t>(i)];
      for (int j = i; j < dim; ++j) {
        cov(i, j) += di * (data(r, j) - mean[static_cast<std::size_t>(j)]);
      }
    }
  }
  const double denom = static_cast<double>(data.rows() - 1);
  for (int i = 0; i < dim; ++i) {
    for (int j = i; j < dim; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

double mahalanobis(std::span<const double> a, std::span<const double> b, const Matrix& inv_cov) {
  EECS_EXPECTS(a.size() == b.size());
  EECS_EXPECTS(inv_cov.rows() == static_cast<int>(a.size()));
  std::vector<double> d(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) d[i] = a[i] - b[i];
  const std::vector<double> md = inv_cov * std::span<const double>(d);
  double s = dot(d, md);
  return std::sqrt(std::max(0.0, s));
}

}  // namespace eecs::linalg
