// Lloyd's k-means with k-means++ seeding. Used to build the bag-of-words
// visual vocabulary from keypoint descriptors (paper §V-A).
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace eecs::linalg {

struct KmeansResult {
  Matrix centroids;            ///< k x dim.
  std::vector<int> assignment; ///< Per input row, index of nearest centroid.
  double inertia = 0.0;        ///< Sum of squared distances to assigned centroids.
  int iterations = 0;          ///< Lloyd iterations actually run.
};

struct KmeansOptions {
  int max_iterations = 50;
  double tolerance = 1e-6;  ///< Relative inertia improvement for convergence.
};

/// Cluster the rows of `data` into k groups. Requires 1 <= k <= data.rows().
[[nodiscard]] KmeansResult kmeans(const Matrix& data, int k, Rng& rng,
                                  const KmeansOptions& options = {});

/// Index of the centroid (row of `centroids`) nearest to x in L2.
[[nodiscard]] int nearest_centroid(const Matrix& centroids, std::span<const double> x);

}  // namespace eecs::linalg
