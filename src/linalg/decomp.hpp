// Matrix decompositions needed by PCA, the geodesic flow kernel, and
// Mahalanobis metric learning: Householder QR (with full Q, used for
// orthogonal complements), one-sided Jacobi SVD, and a Jacobi eigensolver for
// symmetric matrices. Sizes in this repository are a few hundred at most, so
// O(n^3) with good constants is entirely adequate.
#pragma once

#include "linalg/matrix.hpp"

namespace eecs::linalg {

struct QrResult {
  Matrix q;  ///< m x m orthogonal.
  Matrix r;  ///< m x n upper triangular (same shape as input).
};

/// Householder QR of an m x n matrix (m >= n not required).
[[nodiscard]] QrResult qr_decompose(const Matrix& a);

/// Orthonormal basis of the complement of span(basis): given an m x k matrix
/// with orthonormal columns, returns m x (m-k) such that [basis | complement]
/// is orthogonal. Used for the Grassmann geodesic (x~ in the paper, Table I).
[[nodiscard]] Matrix orthogonal_complement(const Matrix& basis);

struct SvdResult {
  Matrix u;                           ///< m x r with orthonormal columns.
  std::vector<double> singular_values;  ///< r values, descending, non-negative.
  Matrix v;                           ///< n x r with orthonormal columns.
};

/// Thin SVD a = u * diag(s) * v^T via one-sided Jacobi, r = min(m, n).
/// Singular values are sorted descending.
[[nodiscard]] SvdResult svd_decompose(const Matrix& a);

struct EigResult {
  std::vector<double> eigenvalues;  ///< Descending.
  Matrix eigenvectors;              ///< Columns correspond to eigenvalues.
};

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
[[nodiscard]] EigResult eig_symmetric(const Matrix& a);

/// Solve a * x = b for symmetric positive definite a (Cholesky). Throws
/// std::runtime_error if a is not positive definite.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Inverse of a symmetric positive definite matrix via Cholesky.
[[nodiscard]] Matrix invert_spd(const Matrix& a);

}  // namespace eecs::linalg
