#include "linalg/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/parallel.hpp"

namespace eecs::linalg {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// k-means++ seeding: first centroid uniform, the rest proportional to the
/// squared distance to the nearest chosen centroid.
Matrix seed_plus_plus(const Matrix& data, int k, Rng& rng) {
  const int n = data.rows();
  Matrix centroids(k, data.cols());
  std::vector<double> min_d2(static_cast<std::size_t>(n), std::numeric_limits<double>::max());

  int first = rng.uniform_int(0, n - 1);
  for (int c = 0; c < data.cols(); ++c) centroids(0, c) = data(first, c);

  for (int j = 1; j < k; ++j) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d2 = sq_dist(data.row(i), centroids.row(j - 1));
      auto& m = min_d2[static_cast<std::size_t>(i)];
      m = std::min(m, d2);
      total += m;
    }
    int chosen = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (int i = 0; i < n; ++i) {
        r -= min_d2[static_cast<std::size_t>(i)];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
        chosen = i;
      }
    } else {
      chosen = rng.uniform_int(0, n - 1);
    }
    for (int c = 0; c < data.cols(); ++c) centroids(j, c) = data(chosen, c);
  }
  return centroids;
}

}  // namespace

KmeansResult kmeans(const Matrix& data, int k, Rng& rng, const KmeansOptions& options) {
  EECS_EXPECTS(k >= 1 && k <= data.rows());
  const int n = data.rows();

  KmeansResult result;
  result.centroids = seed_plus_plus(data, k, rng);
  result.assignment.assign(static_cast<std::size_t>(n), 0);

  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign: each sample's nearest centroid is independent, so the search
    // partitions across the pool; the inertia reduction is then folded
    // sequentially in sample order to keep the double sum bit-identical to
    // the serial loop.
    std::vector<double> best_d2(static_cast<std::size_t>(n));
    common::parallel_for(static_cast<std::size_t>(n), 64, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        double best = std::numeric_limits<double>::max();
        int best_j = 0;
        for (int j = 0; j < k; ++j) {
          const double d2 = sq_dist(data.row(static_cast<int>(i)), result.centroids.row(j));
          if (d2 < best) {
            best = d2;
            best_j = j;
          }
        }
        result.assignment[i] = best_j;
        best_d2[i] = best;
      }
    });
    double inertia = 0.0;
    for (int i = 0; i < n; ++i) inertia += best_d2[static_cast<std::size_t>(i)];
    result.inertia = inertia;

    // Update.
    Matrix sums(k, data.cols());
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      const int j = result.assignment[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(j)];
      for (int c = 0; c < data.cols(); ++c) sums(j, c) += data(i, c);
    }
    for (int j = 0; j < k; ++j) {
      const int cnt = counts[static_cast<std::size_t>(j)];
      if (cnt == 0) {
        // Re-seed an empty cluster at a random sample.
        const int i = rng.uniform_int(0, n - 1);
        for (int c = 0; c < data.cols(); ++c) result.centroids(j, c) = data(i, c);
        continue;
      }
      for (int c = 0; c < data.cols(); ++c) result.centroids(j, c) = sums(j, c) / cnt;
    }

    if (prev_inertia - inertia <= options.tolerance * std::max(1.0, prev_inertia)) break;
    prev_inertia = inertia;
  }
  return result;
}

int nearest_centroid(const Matrix& centroids, std::span<const double> x) {
  EECS_EXPECTS(centroids.rows() >= 1);
  EECS_EXPECTS(centroids.cols() == static_cast<int>(x.size()));
  double best = std::numeric_limits<double>::max();
  int best_j = 0;
  for (int j = 0; j < centroids.rows(); ++j) {
    const double d2 = sq_dist(centroids.row(j), x);
    if (d2 < best) {
      best = d2;
      best_j = j;
    }
  }
  return best_j;
}

}  // namespace eecs::linalg
