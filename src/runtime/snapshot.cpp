#include "runtime/snapshot.hpp"

#include <array>
#include <cstdio>

namespace eecs::runtime {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

ByteWriter& SnapshotWriter::section(const std::string& name) {
  for (auto& [existing, writer] : sections_) {
    if (existing == name) return writer;
  }
  sections_.emplace_back(name, ByteWriter{});
  return sections_.back().second;
}

std::vector<std::uint8_t> SnapshotWriter::finish() const {
  ByteWriter out;
  out.write_u32(kSnapshotMagic);
  out.write_u32(kSnapshotVersion);
  out.write_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, writer] : sections_) {
    out.write_string(name);
    out.write_u32(static_cast<std::uint32_t>(writer.size()));
    out.write_u32(crc32(writer.bytes()));
    out.write_bytes(writer.bytes());
  }
  return out.take();
}

SnapshotReader::SnapshotReader(std::span<const std::uint8_t> data) {
  try {
    ByteReader reader(data);
    if (reader.read_u32() != kSnapshotMagic) throw SnapshotError("snapshot: bad magic");
    version_ = reader.read_u32();
    if (version_ > kSnapshotVersion) {
      throw SnapshotError("snapshot: version " + std::to_string(version_) +
                          " is newer than supported version " + std::to_string(kSnapshotVersion));
    }
    const std::uint32_t count = reader.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string name = reader.read_string();
      const std::uint32_t length = reader.read_u32();
      const std::uint32_t expected_crc = reader.read_u32();
      if (length > reader.remaining()) {
        throw SnapshotError("snapshot: section '" + name + "' length exceeds file size");
      }
      std::vector<std::uint8_t> payload(length);
      for (std::uint32_t b = 0; b < length; ++b) payload[b] = reader.read_u8();
      if (crc32(payload) != expected_crc) {
        throw SnapshotError("snapshot: section '" + name + "' CRC mismatch");
      }
      // Last occurrence wins; duplicate names cannot occur from SnapshotWriter.
      sections_[name] = std::move(payload);
    }
  } catch (const ByteReader::DecodeError&) {
    throw SnapshotError("snapshot: truncated container framing");
  }
}

ByteReader SnapshotReader::open(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) throw SnapshotError("snapshot: missing section '" + name + "'");
  return ByteReader(it->second);
}

void write_snapshot_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw SnapshotError("snapshot: cannot open '" + path + "' for writing");
  const std::size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !closed) {
    throw SnapshotError("snapshot: short write to '" + path + "'");
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw SnapshotError("snapshot: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 4096> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(got));
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) throw SnapshotError("snapshot: read error on '" + path + "'");
  return bytes;
}

}  // namespace eecs::runtime
