// Seeded chaos-scenario generation for the soak harness. A scenario is an
// ordinary FaultPlan (crash windows, blackout storms, direction loss) plus
// durable-runtime pressure knobs (tight round deadlines, a crash/resume
// round), all derived deterministically from a single seed so any soak
// failure reproduces from its (seed, scene) pair alone.
#pragma once

#include <cstdint>

#include "net/fault.hpp"

namespace eecs::runtime {

/// Fault-intensity envelope for one generated scenario. Times are video
/// frame indices (the network clock), matching FaultPlan conventions.
struct ChaosProfile {
  int crashes = 2;                    ///< Camera crash/reboot cycles.
  double crash_min_frames = 60.0;
  double crash_max_frames = 240.0;
  int blackouts = 1;                  ///< Total-loss windows over all links.
  double blackout_min_frames = 20.0;
  double blackout_max_frames = 80.0;
  double max_uplink_loss = 0.15;      ///< Steady camera->controller loss.
  double max_downlink_loss = 0.10;    ///< Steady controller->camera loss.
  double deadline_min_gt_frames = 3.0;  ///< Round-deadline pressure range.
  double deadline_max_gt_frames = 6.0;
};

/// One generated scenario.
struct ChaosScenario {
  net::FaultPlan faults;
  double round_deadline_gt_frames = 0.0;
  /// Round boundary at which the soak kills the run (checkpoint + stop) and
  /// resumes from the snapshot; at least 1.
  long kill_after_rounds = 1;
};

/// Deterministically derive a scenario from (seed, scene index). The faulted
/// span [fault_start, fault_end) bounds every generated window; the plan is
/// validated before it is returned.
[[nodiscard]] ChaosScenario make_chaos_scenario(std::uint64_t seed, int scene, int num_cameras,
                                                double fault_start, double fault_end,
                                                long total_rounds,
                                                const ChaosProfile& profile = {});

}  // namespace eecs::runtime
