#include "runtime/chaos.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace eecs::runtime {

ChaosScenario make_chaos_scenario(std::uint64_t seed, int scene, int num_cameras,
                                  double fault_start, double fault_end, long total_rounds,
                                  const ChaosProfile& profile) {
  EECS_EXPECTS(num_cameras > 0 && fault_end > fault_start);
  Rng rng(seed ^ (0x6368616F73ULL * (static_cast<std::uint64_t>(scene) + 1)));  // "chaos"
  ChaosScenario scenario;

  scenario.faults.uplink_loss = rng.uniform(0.0, profile.max_uplink_loss);
  scenario.faults.downlink_loss = rng.uniform(0.0, profile.max_downlink_loss);

  // Crash windows are placed one per disjoint time slot, so windows of the
  // same node can never overlap (FaultPlan::validate rejects that).
  if (profile.crashes > 0) {
    const double slot = (fault_end - fault_start) / static_cast<double>(profile.crashes);
    for (int i = 0; i < profile.crashes; ++i) {
      const double slot_start = fault_start + slot * static_cast<double>(i);
      const double length = std::min(
          rng.uniform(profile.crash_min_frames, profile.crash_max_frames), slot - 1.0);
      if (length <= 0.0) continue;
      const double start = rng.uniform(slot_start, slot_start + slot - length);
      const int camera = rng.uniform_int(0, num_cameras - 1);
      scenario.faults.add_crash(camera + 1, start, start + length);  // Node c+1.
    }
  }

  for (int i = 0; i < profile.blackouts; ++i) {
    const double length =
        rng.uniform(profile.blackout_min_frames, profile.blackout_max_frames);
    const double start = rng.uniform(fault_start, std::max(fault_start + 1.0, fault_end - length));
    scenario.faults.add_blackout(start, start + length);
  }

  scenario.round_deadline_gt_frames =
      rng.uniform(profile.deadline_min_gt_frames, profile.deadline_max_gt_frames);
  scenario.kill_after_rounds =
      std::max<long>(1, rng.uniform_int(1, static_cast<int>(std::max<long>(1, total_rounds))));

  scenario.faults.validate(num_cameras + 1);
  return scenario;
}

}  // namespace eecs::runtime
