// Versioned, CRC-checked snapshot container used by checkpoint/resume. A
// snapshot is a flat sequence of named sections, each carrying an opaque
// payload framed through common/bytes: decoders for individual sections stay
// ordinary ByteReader code while the container handles integrity (per-section
// CRC32), versioning (newer-than-us files are rejected, unknown sections are
// skipped for forward compatibility), and bounds checking (a corrupt length
// prefix throws instead of reading out of bounds or allocating gigabytes).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace eecs::runtime {

/// Typed rejection of an unreadable snapshot: bad magic, version from the
/// future, truncated framing, CRC mismatch, or a malformed section payload
/// (ByteReader::DecodeError is rethrown as this type by the decoders).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// IEEE 802.3 CRC32 (reflected, polynomial 0xEDB88320) over a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// "ECSS" little-endian — EECS snapshot container.
inline constexpr std::uint32_t kSnapshotMagic = 0x53534345;
/// Bumped when the container framing itself changes. Adding sections does not
/// bump it (readers skip unknown names); removing or re-encoding one does.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Builds a snapshot: open sections in any order, fill each through the
/// returned ByteWriter, then finish() to frame the container.
class SnapshotWriter {
 public:
  /// Begin (or reopen) a section; bytes written through the returned writer
  /// become the section payload. Section names must be unique.
  ByteWriter& section(const std::string& name);

  /// Frame all sections into the container byte layout:
  ///   magic u32 | version u32 | count u32 |
  ///   per section: name string | payload length u32 | crc32 u32 | payload.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

 private:
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

/// Parses and validates a snapshot container. Construction checks magic,
/// version, framing bounds and every section CRC; section payloads are copied
/// out so the reader does not borrow the input buffer.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] bool has(const std::string& name) const { return sections_.count(name) > 0; }

  /// ByteReader over a section payload; SnapshotError if the section is
  /// missing (a truncated writer or a file from before the section existed).
  [[nodiscard]] ByteReader open(const std::string& name) const;

 private:
  std::uint32_t version_ = 0;
  std::map<std::string, std::vector<std::uint8_t>> sections_;
};

/// Whole-file helpers; both throw SnapshotError on I/O failure.
void write_snapshot_file(const std::string& path, std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> read_snapshot_file(const std::string& path);

}  // namespace eecs::runtime
