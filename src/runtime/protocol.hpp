// Controller-side protocol machinery extracted from the simulation loop:
// the assignment retry queue (sequence-numbered resend with deterministic,
// optionally jittered, capped backoff) and the camera liveness tracker.
// Both are pure bookkeeping — transmission and telemetry stay with the
// caller — and both export/restore their full state for checkpointing.
// At the default RetryPolicy the retry schedule is bit-identical to the
// legacy inline code: initial timeout 2.5 GT frames, then linear backoff
// (2.5 + attempts) capped at 6.5, abandon after max_retries resends.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace eecs::runtime {

/// Resend schedule of an unacked assignment. Backoff is a pure function of
/// (policy, camera, attempts) so a run is reproducible from its seed; the
/// optional jitter decorrelates camera retry instants without randomness.
struct RetryPolicy {
  /// Resends after the initial attempt before the assignment is abandoned.
  int max_retries = 3;
  /// Delay before the first resend, in ground-truth frames.
  double base_gt_frames = 2.5;
  /// Ceiling of the linear backoff (base + attempts), in ground-truth frames.
  double max_backoff_gt_frames = 6.5;
  /// Fractional deterministic jitter: the delay is scaled by
  /// 1 + jitter_fraction * hash01(jitter_seed, camera, attempts). Zero (the
  /// default) reproduces the legacy schedule exactly.
  double jitter_fraction = 0.0;
  std::uint64_t jitter_seed = 0;

  /// Delay in network-clock units before the next resend. `attempts` is the
  /// number of transmissions already made, except the initial push which
  /// passes 0 (legacy convention: first timeout is the base alone).
  [[nodiscard]] double backoff(int camera, int attempts, double stride) const;
};

/// Uniform [0, 1) hash of (seed, camera, attempts); splitmix64 finalizer.
[[nodiscard]] double jitter_hash01(std::uint64_t seed, int camera, int attempts);

/// Unacked AlgorithmAssignment bookkeeping. Entries are keyed by camera and
/// processed in camera order (matching the legacy std::map iteration).
class AssignmentRetryQueue {
 public:
  struct Entry {
    std::vector<std::uint8_t> payload;
    std::uint32_t sequence = 0;
    int attempts = 0;
    double next_retry = 0.0;
  };

  /// How an incoming ack relates to the queue.
  enum class AckOutcome : std::uint8_t {
    Acked,  ///< Matched the pending sequence; entry retired.
    Stale,  ///< Ack for an older sequence while a newer push is pending.
    Late,   ///< No entry pending: the assignment was already acked,
            ///< abandoned, or dropped. Counted by the caller, never
            ///< re-applied — the queue is unchanged.
  };

  explicit AssignmentRetryQueue(const RetryPolicy& policy) : policy_(policy) {}

  /// Track a freshly transmitted assignment. Returns true when it replaced a
  /// still-unacked older entry for the same camera (superseded mid-retry).
  bool push(int camera, std::vector<std::uint8_t> payload, std::uint32_t sequence, double now,
            double stride);

  [[nodiscard]] AckOutcome ack(int camera, std::uint32_t sequence);

  /// Stop retrying into the void (camera presumed dead). Returns true when an
  /// entry was actually dropped.
  bool drop(int camera);

  /// Walk due entries in camera order: abandon those whose retry budget is
  /// exhausted, hand the rest to `resend` (which transmits), then advance
  /// their backoff. Callbacks receive (camera, entry).
  template <typename Resend, typename Abandon>
  void process_due(double now, double stride, Resend&& resend, Abandon&& abandon) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      Entry& entry = it->second;
      if (now < entry.next_retry) {
        ++it;
        continue;
      }
      if (entry.attempts > policy_.max_retries) {
        abandon(it->first, entry);
        it = entries_.erase(it);
        continue;
      }
      resend(it->first, entry);
      ++entry.attempts;
      entry.next_retry = now + policy_.backoff(it->first, entry.attempts, stride);
      ++it;
    }
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::map<int, Entry>& entries() const { return entries_; }
  void restore(std::map<int, Entry> entries) { entries_ = std::move(entries); }

 private:
  RetryPolicy policy_;
  std::map<int, Entry> entries_;
};

/// Declares cameras dead after a silence timeout and recovered on the next
/// message. Sweep order and semantics match the legacy inline scan.
class LivenessTracker {
 public:
  LivenessTracker(int num_cameras, double timeout)
      : timeout_(timeout),
        last_heard_(static_cast<std::size_t>(num_cameras), 0.0),
        presumed_alive_(static_cast<std::size_t>(num_cameras), 1) {}

  /// Record a message from `camera`; returns true when this recovers a
  /// camera previously presumed dead. Out-of-range ids are ignored.
  bool mark_heard(int camera, double time);

  /// Cameras newly presumed dead at `now` (silent past the timeout),
  /// ascending camera order.
  [[nodiscard]] std::vector<int> sweep(double now);

  [[nodiscard]] bool alive(int camera) const {
    return presumed_alive_[static_cast<std::size_t>(camera)] != 0;
  }
  [[nodiscard]] std::set<int> alive_set() const;
  [[nodiscard]] double last_heard(int camera) const {
    return last_heard_[static_cast<std::size_t>(camera)];
  }

  struct State {
    std::vector<double> last_heard;
    std::vector<std::uint8_t> presumed_alive;
  };
  [[nodiscard]] State state() const;
  void restore(const State& state);

 private:
  double timeout_;
  std::vector<double> last_heard_;
  std::vector<char> presumed_alive_;
};

}  // namespace eecs::runtime
