#include "runtime/protocol.hpp"

#include <algorithm>

namespace eecs::runtime {

double jitter_hash01(std::uint64_t seed, int camera, int attempts) {
  std::uint64_t x = seed;
  x ^= 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(camera) + 1);
  x ^= 0xBF58476D1CE4E5B9ull * (static_cast<std::uint64_t>(attempts) + 1);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double RetryPolicy::backoff(int camera, int attempts, double stride) const {
  const double frames =
      std::min(base_gt_frames + static_cast<double>(attempts), max_backoff_gt_frames);
  double delay = frames * stride;
  if (jitter_fraction != 0.0) {
    delay *= 1.0 + jitter_fraction * jitter_hash01(jitter_seed, camera, attempts);
  }
  return delay;
}

bool AssignmentRetryQueue::push(int camera, std::vector<std::uint8_t> payload,
                                std::uint32_t sequence, double now, double stride) {
  const bool replaced = entries_.count(camera) > 0;
  entries_[camera] = {std::move(payload), sequence, 1, now + policy_.backoff(camera, 0, stride)};
  return replaced;
}

AssignmentRetryQueue::AckOutcome AssignmentRetryQueue::ack(int camera, std::uint32_t sequence) {
  const auto it = entries_.find(camera);
  if (it == entries_.end()) return AckOutcome::Late;
  if (it->second.sequence != sequence) return AckOutcome::Stale;
  entries_.erase(it);
  return AckOutcome::Acked;
}

bool AssignmentRetryQueue::drop(int camera) { return entries_.erase(camera) > 0; }

bool LivenessTracker::mark_heard(int camera, double time) {
  if (camera < 0 || camera >= static_cast<int>(last_heard_.size())) return false;
  last_heard_[static_cast<std::size_t>(camera)] = time;
  if (presumed_alive_[static_cast<std::size_t>(camera)] != 0) return false;
  presumed_alive_[static_cast<std::size_t>(camera)] = 1;
  return true;
}

std::vector<int> LivenessTracker::sweep(double now) {
  std::vector<int> newly_dead;
  for (std::size_t c = 0; c < last_heard_.size(); ++c) {
    if (presumed_alive_[c] == 0) continue;
    if (now - last_heard_[c] <= timeout_) continue;
    presumed_alive_[c] = 0;
    newly_dead.push_back(static_cast<int>(c));
  }
  return newly_dead;
}

std::set<int> LivenessTracker::alive_set() const {
  std::set<int> alive;
  for (std::size_t c = 0; c < presumed_alive_.size(); ++c) {
    if (presumed_alive_[c] != 0) alive.insert(static_cast<int>(c));
  }
  return alive;
}

LivenessTracker::State LivenessTracker::state() const {
  State state;
  state.last_heard = last_heard_;
  state.presumed_alive.assign(presumed_alive_.begin(), presumed_alive_.end());
  return state;
}

void LivenessTracker::restore(const State& state) {
  last_heard_ = state.last_heard;
  presumed_alive_.assign(state.presumed_alive.begin(), state.presumed_alive.end());
}

}  // namespace eecs::runtime
