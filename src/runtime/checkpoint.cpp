#include "runtime/checkpoint.hpp"

#include "runtime/snapshot.hpp"

namespace eecs::runtime {

namespace {

void write_payload(ByteWriter& w, const std::vector<std::uint8_t>& payload) {
  w.write_u32(static_cast<std::uint32_t>(payload.size()));
  w.write_bytes(payload);
}

std::vector<std::uint8_t> read_payload(ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  if (n > r.remaining()) throw SnapshotError("checkpoint: payload length exceeds section");
  std::vector<std::uint8_t> payload(n);
  for (std::uint32_t i = 0; i < n; ++i) payload[i] = r.read_u8();
  return payload;
}

/// Bounded element count for a variable-length array: each element needs at
/// least `min_bytes`, so a corrupt count cannot force a huge allocation.
std::uint32_t read_count(ByteReader& r, std::size_t min_bytes) {
  const std::uint32_t n = r.read_u32();
  if (min_bytes > 0 && static_cast<std::size_t>(n) * min_bytes > r.remaining()) {
    throw SnapshotError("checkpoint: element count exceeds section size");
  }
  return n;
}

}  // namespace

std::vector<std::uint8_t> SimulationCheckpoint::encode() const {
  SnapshotWriter snapshot;

  ByteWriter& cfg = snapshot.section("config");
  cfg.write_i32(guard.dataset);
  cfg.write_u64(guard.seed);
  cfg.write_i32(guard.mode);
  cfg.write_i32(guard.start_frame);
  cfg.write_i32(guard.end_frame);
  cfg.write_i32(guard.assessment_gt_frames);
  cfg.write_i32(guard.operation_gt_frames);
  cfg.write_i32(guard.gt_frame_step);
  cfg.write_i32(guard.num_cameras);
  cfg.write_f64(guard.budget_per_frame);
  cfg.write_f64(guard.battery_joules);

  ByteWriter& progress = snapshot.section("progress");
  progress.write_i32(frame_index);
  progress.write_u64(static_cast<std::uint64_t>(rounds_completed));
  progress.write_f64(cpu_joules);
  progress.write_f64(radio_joules);
  progress.write_i32(humans_detected);
  progress.write_i32(humans_present);
  progress.write_i32(gt_frames_processed);

  ByteWriter& gate = snapshot.section("context_gate");
  gate.write_u64(windows_evaluated);
  gate.write_u64(windows_pruned);

  ByteWriter& rounds_w = snapshot.section("rounds");
  rounds_w.write_u32(static_cast<std::uint32_t>(rounds.size()));
  for (const RoundLogState& round : rounds) {
    rounds_w.write_i32(round.start_frame);
    rounds_w.write_f64(round.n_star);
    rounds_w.write_f64(round.p_star);
    rounds_w.write_f64(round.n_est);
    rounds_w.write_f64(round.p_est);
    rounds_w.write_i32(round.cameras_active);
    rounds_w.write_string(round.summary);
    rounds_w.write_u8(round.midround_recovery);
  }

  ByteWriter& counters = snapshot.section("counters");
  counters.write_u32(static_cast<std::uint32_t>(fault_counters.size()));
  for (std::int64_t v : fault_counters) counters.write_u64(static_cast<std::uint64_t>(v));

  ByteWriter& cams = snapshot.section("cameras");
  cams.write_u32(static_cast<std::uint32_t>(cameras.size()));
  for (const CameraState& cam : cameras) {
    cams.write_f64(cam.battery_residual);
    cams.write_u8(cam.has_assignment);
    cams.write_u8(cam.active);
    cams.write_i32(cam.algorithm);
    cams.write_f64(cam.threshold);
    cams.write_u32(cam.applied_sequence);
    cams.write_i32(cam.deadline_strikes);
    cams.write_i32(cam.ladder.battery_floor);
    cams.write_i32(cam.ladder.stress_rung);
    cams.write_i32(cam.ladder.clean_rounds);
  }

  ByteWriter& regs = snapshot.section("registrations");
  regs.write_u32(static_cast<std::uint32_t>(registrations.size()));
  for (const Registration& reg : registrations) {
    regs.write_i32(reg.camera);
    regs.write_i32(reg.matched_item);
    regs.write_f64(reg.budget);
  }

  ByteWriter& live = snapshot.section("liveness");
  live.write_f64_vector(liveness.last_heard);
  live.write_u32(static_cast<std::uint32_t>(liveness.presumed_alive.size()));
  for (std::uint8_t alive : liveness.presumed_alive) live.write_u8(alive);
  live.write_u32(static_cast<std::uint32_t>(controller_active.size()));
  for (std::int32_t camera : controller_active) live.write_i32(camera);

  ByteWriter& pend = snapshot.section("pending");
  pend.write_u32(next_sequence);
  pend.write_u32(static_cast<std::uint32_t>(pending.size()));
  for (const PendingEntry& p : pending) {
    pend.write_i32(p.camera);
    pend.write_u32(p.entry.sequence);
    pend.write_i32(p.entry.attempts);
    pend.write_f64(p.entry.next_retry);
    write_payload(pend, p.entry.payload);
  }

  ByteWriter& net_w = snapshot.section("network");
  net_w.write_f64(network.now);
  net_w.write_u64(network.sequence);
  net_w.write_u64(network.rx_dropped);
  for (std::uint64_t word : network.rng.words) net_w.write_u64(word);
  net_w.write_u8(network.rng.have_cached_normal ? 1 : 0);
  net_w.write_f64(network.rng.cached_normal);
  net_w.write_f64_vector(network.node_radio_joules);
  net_w.write_u32(static_cast<std::uint32_t>(network.node_bytes.size()));
  for (std::uint64_t bytes : network.node_bytes) net_w.write_u64(bytes);
  net_w.write_u32(static_cast<std::uint32_t>(network.queue.size()));
  for (const net::Network::QueuedMessage& msg : network.queue) {
    net_w.write_f64(msg.time);
    net_w.write_u64(msg.sequence);
    net_w.write_i32(msg.from_node);
    net_w.write_i32(msg.to_node);
    write_payload(net_w, msg.payload);
  }

  ByteWriter& led = snapshot.section("obs.ledger");
  led.write_f64(ledger.cpu_total);
  led.write_f64(ledger.radio_total);
  for (std::uint64_t limb : ledger.exact_total.limb) led.write_u64(limb);
  led.write_u8(ledger.exact_total.inexact ? 1 : 0);
  led.write_u64(ledger.debits);
  led.write_f64_vector(ledger.camera_joules);
  led.write_f64_vector(ledger.mirror_residual);
  led.write_f64_vector(ledger.mirror_capacity);
  led.write_u32(static_cast<std::uint32_t>(ledger.entries.size()));
  for (const auto& [key, entry] : ledger.entries) {
    led.write_i32(key.camera);
    led.write_u64(static_cast<std::uint64_t>(key.round));
    led.write_u8(static_cast<std::uint8_t>(key.stage));
    led.write_u8(static_cast<std::uint8_t>(key.algorithm));
    led.write_u8(static_cast<std::uint8_t>(key.cause));
    led.write_f64(entry.joules);
    led.write_u64(entry.debits);
    for (std::uint64_t limb : entry.exact.limb) led.write_u64(limb);
    led.write_u8(entry.exact.inexact ? 1 : 0);
  }

  ByteWriter& anom = snapshot.section("obs.anomaly");
  anom.write_u64(static_cast<std::uint64_t>(anomaly.rounds_seen));
  anom.write_u32(static_cast<std::uint32_t>(anomaly.window_sent.size()));
  for (std::uint64_t v : anomaly.window_sent) anom.write_u64(v);
  anom.write_u32(static_cast<std::uint32_t>(anomaly.window_lost.size()));
  for (std::uint64_t v : anomaly.window_lost) anom.write_u64(v);
  anom.write_u32(static_cast<std::uint32_t>(anomaly.window_misses.size()));
  for (std::uint32_t v : anomaly.window_misses) anom.write_u32(v);
  anom.write_f64_vector(anomaly.window_joules);
  anom.write_u32(static_cast<std::uint32_t>(anomaly.last_flags.size()));
  for (std::uint8_t v : anomaly.last_flags) anom.write_u8(v);

  return snapshot.finish();
}

SimulationCheckpoint SimulationCheckpoint::decode(std::span<const std::uint8_t> bytes) {
  try {
    const SnapshotReader snapshot(bytes);
    SimulationCheckpoint ck;

    ByteReader cfg = snapshot.open("config");
    ck.guard.dataset = cfg.read_i32();
    ck.guard.seed = cfg.read_u64();
    ck.guard.mode = cfg.read_i32();
    ck.guard.start_frame = cfg.read_i32();
    ck.guard.end_frame = cfg.read_i32();
    ck.guard.assessment_gt_frames = cfg.read_i32();
    ck.guard.operation_gt_frames = cfg.read_i32();
    ck.guard.gt_frame_step = cfg.read_i32();
    ck.guard.num_cameras = cfg.read_i32();
    ck.guard.budget_per_frame = cfg.read_f64();
    ck.guard.battery_joules = cfg.read_f64();
    if (ck.guard.num_cameras < 0 || ck.guard.num_cameras > 4096) {
      throw SnapshotError("checkpoint: implausible camera count");
    }

    ByteReader progress = snapshot.open("progress");
    ck.frame_index = progress.read_i32();
    ck.rounds_completed = static_cast<std::int64_t>(progress.read_u64());
    ck.cpu_joules = progress.read_f64();
    ck.radio_joules = progress.read_f64();
    ck.humans_detected = progress.read_i32();
    ck.humans_present = progress.read_i32();
    ck.gt_frames_processed = progress.read_i32();

    // Optional: snapshots from builds before the context gate resume with
    // zero window accounting.
    if (snapshot.has("context_gate")) {
      ByteReader gate = snapshot.open("context_gate");
      ck.windows_evaluated = gate.read_u64();
      ck.windows_pruned = gate.read_u64();
    }

    ByteReader rounds_r = snapshot.open("rounds");
    const std::uint32_t num_rounds = read_count(rounds_r, 41);
    ck.rounds.reserve(num_rounds);
    for (std::uint32_t i = 0; i < num_rounds; ++i) {
      RoundLogState round;
      round.start_frame = rounds_r.read_i32();
      round.n_star = rounds_r.read_f64();
      round.p_star = rounds_r.read_f64();
      round.n_est = rounds_r.read_f64();
      round.p_est = rounds_r.read_f64();
      round.cameras_active = rounds_r.read_i32();
      round.summary = rounds_r.read_string();
      round.midround_recovery = rounds_r.read_u8();
      ck.rounds.push_back(std::move(round));
    }

    ByteReader counters = snapshot.open("counters");
    const std::uint32_t num_counters = read_count(counters, 8);
    ck.fault_counters.reserve(num_counters);
    for (std::uint32_t i = 0; i < num_counters; ++i) {
      ck.fault_counters.push_back(static_cast<std::int64_t>(counters.read_u64()));
    }

    ByteReader cams = snapshot.open("cameras");
    const std::uint32_t num_cameras = read_count(cams, 42);
    for (std::uint32_t i = 0; i < num_cameras; ++i) {
      CameraState cam;
      cam.battery_residual = cams.read_f64();
      cam.has_assignment = cams.read_u8();
      cam.active = cams.read_u8();
      cam.algorithm = cams.read_i32();
      cam.threshold = cams.read_f64();
      cam.applied_sequence = cams.read_u32();
      cam.deadline_strikes = cams.read_i32();
      cam.ladder.battery_floor = cams.read_i32();
      cam.ladder.stress_rung = cams.read_i32();
      cam.ladder.clean_rounds = cams.read_i32();
      ck.cameras.push_back(cam);
    }
    if (ck.cameras.size() != static_cast<std::size_t>(ck.guard.num_cameras)) {
      throw SnapshotError("checkpoint: camera state count disagrees with config guard");
    }

    ByteReader regs = snapshot.open("registrations");
    const std::uint32_t num_regs = read_count(regs, 16);
    for (std::uint32_t i = 0; i < num_regs; ++i) {
      Registration reg;
      reg.camera = regs.read_i32();
      reg.matched_item = regs.read_i32();
      reg.budget = regs.read_f64();
      if (reg.camera < 0 || reg.camera >= ck.guard.num_cameras) {
        throw SnapshotError("checkpoint: registration references unknown camera");
      }
      ck.registrations.push_back(reg);
    }

    ByteReader live = snapshot.open("liveness");
    ck.liveness.last_heard = live.read_f64_vector();
    const std::uint32_t num_alive = read_count(live, 1);
    for (std::uint32_t i = 0; i < num_alive; ++i) {
      ck.liveness.presumed_alive.push_back(live.read_u8());
    }
    const std::uint32_t num_active = read_count(live, 4);
    for (std::uint32_t i = 0; i < num_active; ++i) {
      ck.controller_active.push_back(live.read_i32());
    }
    if (ck.liveness.last_heard.size() != ck.cameras.size() ||
        ck.liveness.presumed_alive.size() != ck.cameras.size()) {
      throw SnapshotError("checkpoint: liveness arrays disagree with camera count");
    }

    ByteReader pend = snapshot.open("pending");
    ck.next_sequence = pend.read_u32();
    const std::uint32_t num_pending = read_count(pend, 20);
    for (std::uint32_t i = 0; i < num_pending; ++i) {
      PendingEntry p;
      p.camera = pend.read_i32();
      p.entry.sequence = pend.read_u32();
      p.entry.attempts = pend.read_i32();
      p.entry.next_retry = pend.read_f64();
      p.entry.payload = read_payload(pend);
      if (p.camera < 0 || p.camera >= ck.guard.num_cameras) {
        throw SnapshotError("checkpoint: pending assignment references unknown camera");
      }
      ck.pending.push_back(std::move(p));
    }

    ByteReader net_r = snapshot.open("network");
    ck.network.now = net_r.read_f64();
    ck.network.sequence = net_r.read_u64();
    ck.network.rx_dropped = net_r.read_u64();
    for (std::uint64_t& word : ck.network.rng.words) word = net_r.read_u64();
    ck.network.rng.have_cached_normal = net_r.read_u8() != 0;
    ck.network.rng.cached_normal = net_r.read_f64();
    ck.network.node_radio_joules = net_r.read_f64_vector();
    const std::uint32_t num_bytes = read_count(net_r, 8);
    for (std::uint32_t i = 0; i < num_bytes; ++i) {
      ck.network.node_bytes.push_back(net_r.read_u64());
    }
    const std::uint32_t num_queued = read_count(net_r, 28);
    for (std::uint32_t i = 0; i < num_queued; ++i) {
      net::Network::QueuedMessage msg;
      msg.time = net_r.read_f64();
      msg.sequence = net_r.read_u64();
      msg.from_node = net_r.read_i32();
      msg.to_node = net_r.read_i32();
      msg.payload = read_payload(net_r);
      ck.network.queue.push_back(std::move(msg));
    }
    // Node 0 is the controller; cameras are nodes 1..num_cameras.
    const std::size_t num_nodes = static_cast<std::size_t>(ck.guard.num_cameras) + 1;
    if (ck.network.node_radio_joules.size() != num_nodes ||
        ck.network.node_bytes.size() != num_nodes) {
      throw SnapshotError("checkpoint: network node arrays disagree with camera count");
    }

    // Observability sections: optional so snapshots from builds before the
    // ledger landed still resume (their ledger simply restarts empty).
    if (snapshot.has("obs.ledger")) {
      ByteReader led = snapshot.open("obs.ledger");
      ck.ledger.cpu_total = led.read_f64();
      ck.ledger.radio_total = led.read_f64();
      for (std::uint64_t& limb : ck.ledger.exact_total.limb) limb = led.read_u64();
      ck.ledger.exact_total.inexact = led.read_u8() != 0;
      ck.ledger.debits = led.read_u64();
      ck.ledger.camera_joules = led.read_f64_vector();
      ck.ledger.mirror_residual = led.read_f64_vector();
      ck.ledger.mirror_capacity = led.read_f64_vector();
      const std::uint32_t num_entries = read_count(led, 56);
      ck.ledger.entries.reserve(num_entries);
      for (std::uint32_t i = 0; i < num_entries; ++i) {
        obs::LedgerKey key;
        key.camera = led.read_i32();
        key.round = static_cast<std::int64_t>(led.read_u64());
        key.stage = static_cast<obs::EnergyStage>(led.read_u8());
        key.algorithm = static_cast<std::int8_t>(led.read_u8());
        key.cause = static_cast<obs::EnergyCause>(led.read_u8());
        obs::LedgerEntry entry;
        entry.joules = led.read_f64();
        entry.debits = led.read_u64();
        for (std::uint64_t& limb : entry.exact.limb) limb = led.read_u64();
        entry.exact.inexact = led.read_u8() != 0;
        ck.ledger.entries.emplace_back(key, entry);
      }
    }
    if (snapshot.has("obs.anomaly")) {
      ByteReader anom = snapshot.open("obs.anomaly");
      ck.anomaly.rounds_seen = static_cast<std::int64_t>(anom.read_u64());
      const std::uint32_t num_sent = read_count(anom, 8);
      for (std::uint32_t i = 0; i < num_sent; ++i) ck.anomaly.window_sent.push_back(anom.read_u64());
      const std::uint32_t num_lost = read_count(anom, 8);
      for (std::uint32_t i = 0; i < num_lost; ++i) ck.anomaly.window_lost.push_back(anom.read_u64());
      const std::uint32_t num_miss = read_count(anom, 4);
      for (std::uint32_t i = 0; i < num_miss; ++i) {
        ck.anomaly.window_misses.push_back(anom.read_u32());
      }
      ck.anomaly.window_joules = anom.read_f64_vector();
      const std::uint32_t num_flags = read_count(anom, 1);
      for (std::uint32_t i = 0; i < num_flags; ++i) {
        ck.anomaly.last_flags.push_back(anom.read_u8());
      }
    }

    return ck;
  } catch (const ByteReader::DecodeError& e) {
    throw SnapshotError(std::string("checkpoint: malformed section: ") + e.what());
  }
}

void SimulationCheckpoint::save(const std::string& path) const {
  write_snapshot_file(path, encode());
}

SimulationCheckpoint SimulationCheckpoint::load(const std::string& path) {
  return decode(read_snapshot_file(path));
}

}  // namespace eecs::runtime
