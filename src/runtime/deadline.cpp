#include "runtime/deadline.hpp"

namespace eecs::runtime {

void RoundWatchdog::arm(double now, double stride, const std::set<int>& expected) {
  if (!enabled()) return;
  armed_ = true;
  deadline_ = now + options_.deadline_gt_frames * stride;
  expected_ = expected;
  reported_.clear();
}

void RoundWatchdog::report(int camera, double time) {
  if (!armed_ || time > deadline_) return;
  if (camera < 0 || camera >= static_cast<int>(strikes_.size())) return;
  reported_.insert(camera);
}

std::vector<RoundWatchdog::Miss> RoundWatchdog::close() {
  std::vector<Miss> misses;
  if (!armed_) return misses;
  armed_ = false;
  for (int camera : expected_) {
    auto& strikes = strikes_[static_cast<std::size_t>(camera)];
    if (reported_.count(camera) > 0) {
      strikes = 0;
      continue;
    }
    ++strikes;
    misses.push_back({camera, strikes, strikes >= options_.strikes_to_fail});
  }
  expected_.clear();
  reported_.clear();
  return misses;
}

std::set<int> RoundWatchdog::failed_set() const {
  std::set<int> failed;
  if (!enabled()) return failed;
  for (std::size_t c = 0; c < strikes_.size(); ++c) {
    if (strikes_[c] >= options_.strikes_to_fail) failed.insert(static_cast<int>(c));
  }
  return failed;
}

}  // namespace eecs::runtime
