// Full-simulation checkpoint: everything the closed loop needs to resume
// bit-identically from a round boundary — progress counters, result
// accumulators, per-camera device state, controller registrations, liveness
// and retry-queue state, the complete network state (clock, RNG stream,
// event queue), and the durable-runtime extensions (watchdog strikes,
// degradation ladder). The struct mirrors the loop's state with plain data
// so the runtime layer stays independent of core; core fills and applies it.
//
// Serialized through the snapshot container (one section per subsystem) so
// integrity is CRC-checked and old readers skip sections they don't know.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/anomaly.hpp"
#include "obs/ledger.hpp"
#include "runtime/degradation.hpp"
#include "runtime/protocol.hpp"

namespace eecs::runtime {

struct SimulationCheckpoint {
  /// Identity of the run this snapshot belongs to. Resume refuses a snapshot
  /// whose guard does not match the resuming configuration — a checkpoint is
  /// only bit-exact against the exact same run setup.
  struct ConfigGuard {
    std::int32_t dataset = 0;
    std::uint64_t seed = 0;
    std::int32_t mode = 0;
    std::int32_t start_frame = 0;
    std::int32_t end_frame = 0;
    std::int32_t assessment_gt_frames = 0;
    std::int32_t operation_gt_frames = 0;
    std::int32_t gt_frame_step = 0;
    std::int32_t num_cameras = 0;
    double budget_per_frame = 0.0;
    double battery_joules = 0.0;

    [[nodiscard]] bool operator==(const ConfigGuard&) const = default;
  };
  ConfigGuard guard;

  // ---- Progress: the snapshot is taken at the top of a recalibration round.
  std::int32_t frame_index = 0;  ///< Scene frames advanced; resume = skip(n).
  std::int64_t rounds_completed = 0;

  // ---- Result accumulators at the checkpoint instant.
  double cpu_joules = 0.0;
  double radio_joules = 0.0;
  std::int32_t humans_detected = 0;
  std::int32_t humans_present = 0;
  std::int32_t gt_frames_processed = 0;
  /// Sliding-window accounting (context gate); optional "context_gate"
  /// section so older snapshots (zeros) still resume.
  std::uint64_t windows_evaluated = 0;
  std::uint64_t windows_pruned = 0;

  struct RoundLogState {
    std::int32_t start_frame = 0;
    double n_star = 0.0;
    double p_star = 0.0;
    double n_est = 0.0;
    double p_est = 0.0;
    std::int32_t cameras_active = 0;
    std::string summary;
    std::uint8_t midround_recovery = 0;
  };
  std::vector<RoundLogState> rounds;

  /// FaultCounters deltas accumulated before the checkpoint, in the field
  /// order of core::FaultCounters (the simulation owns the ordering; the
  /// count prefix lets older snapshots resume into a build with new fields).
  std::vector<std::int64_t> fault_counters;

  // ---- Per-camera device + runtime state.
  struct CameraState {
    double battery_residual = 0.0;
    std::uint8_t has_assignment = 0;
    std::uint8_t active = 0;
    std::int32_t algorithm = 0;
    double threshold = 0.0;
    std::uint32_t applied_sequence = 0;
    std::int32_t deadline_strikes = 0;
    DegradationLadder::CameraState ladder;
  };
  std::vector<CameraState> cameras;

  /// Controller registration state: (camera, matched item, budget) is enough
  /// to rebuild the affordable list deterministically.
  struct Registration {
    std::int32_t camera = 0;
    std::int32_t matched_item = -1;
    double budget = 0.0;
  };
  std::vector<Registration> registrations;

  // ---- Controller-side protocol state.
  LivenessTracker::State liveness;
  std::vector<std::int32_t> controller_active;
  struct PendingEntry {
    std::int32_t camera = 0;
    AssignmentRetryQueue::Entry entry;
  };
  std::vector<PendingEntry> pending;
  std::uint32_t next_sequence = 0;

  // ---- Network substrate.
  net::Network::State network;

  // ---- Observability: energy-audit ledger and anomaly-detector windows, so
  // a resumed run's ledger conserves bit-exactly against the full run and the
  // detector replays identical findings. The flight-recorder ring is NOT
  // checkpointed: dumps written before the crash already persist its history,
  // and a resumed recorder refills within one window of rounds.
  obs::EnergyLedger::State ledger;
  obs::AnomalyDetector::State anomaly;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Throws SnapshotError on any malformed input (bad framing, CRC mismatch,
  /// truncated section, inconsistent per-camera array sizes).
  [[nodiscard]] static SimulationCheckpoint decode(std::span<const std::uint8_t> bytes);

  void save(const std::string& path) const;
  [[nodiscard]] static SimulationCheckpoint load(const std::string& path);
};

}  // namespace eecs::runtime
