// Graceful-degradation ladder. Under stress a camera steps down through
// progressively cheaper operating modes instead of failing outright:
//
//   Full -> CheapAlgorithm -> SkipFrames -> MetadataOnly -> Parked
//
// Two independent pressures select the rung and the effective rung is the
// deeper of the two:
//  - Battery: a monotone floor derived from the residual-charge fraction.
//    Batteries only drain, so the battery floor never steps a camera back
//    up (enforced by contract; the chaos harness asserts it end to end).
//  - Stress: deadline misses and per-round fault storms push one rung down
//    per trigger; `recovery_rounds` consecutive clean rounds step one rung
//    back up.
//
// The ladder is disabled by default: with `enabled == false` every camera
// reports Full forever and the simulation is bit-identical to a build
// without the ladder.
#pragma once

#include <cstdint>
#include <vector>

namespace eecs::runtime {

enum class DegradationRung : std::uint8_t {
  Full = 0,        ///< Assigned algorithm at full frame rate.
  CheapAlgorithm,  ///< Cheapest affordable detector from camera flash.
  SkipFrames,      ///< Cheap detector on every other ground-truth frame.
  MetadataOnly,    ///< Heartbeats and energy reports only; no detection.
  Parked,          ///< Radio and CPU dark; the node rides out the storm.
};
inline constexpr int kNumDegradationRungs = 5;

[[nodiscard]] const char* to_string(DegradationRung rung);

struct DegradationPolicy {
  /// Master switch; false keeps every camera at Full unconditionally.
  bool enabled = false;
  /// Battery-fraction thresholds for the monotone battery floor. A residual
  /// fraction strictly below a threshold selects at least that rung.
  double battery_low = 0.25;       ///< Below: CheapAlgorithm.
  double battery_critical = 0.10;  ///< Below: SkipFrames.
  double battery_severe = 0.05;    ///< Below: MetadataOnly.
  double battery_park = 0.02;      ///< Below: Parked.
  /// Per-round message-loss ratio at or above which the round counts as a
  /// fault storm for every camera (requires storm_min_messages offered).
  double storm_loss_ratio = 0.5;
  long storm_min_messages = 8;
  /// Consecutive clean rounds before one stress rung is recovered.
  int recovery_rounds = 2;
  /// Feed the obs anomaly detector's advisory into the stress rung: a flagged
  /// camera takes one stress step down, exactly like a deadline miss. Off by
  /// default — the advisory is opt-in so existing runs stay bit-identical.
  bool anomaly_advisory = false;
};

class DegradationLadder {
 public:
  enum class Trigger : std::uint8_t { Battery, Deadline, FaultStorm, Anomaly, Recovery };

  struct Transition {
    int camera = 0;
    DegradationRung from = DegradationRung::Full;
    DegradationRung to = DegradationRung::Full;
    Trigger trigger = Trigger::Battery;
  };

  DegradationLadder(const DegradationPolicy& policy, int num_cameras);

  [[nodiscard]] bool enabled() const { return policy_.enabled; }

  /// Effective rung right now: max(battery floor, stress rung). Always Full
  /// when disabled.
  [[nodiscard]] DegradationRung rung(int camera) const;

  /// Rung the battery floor alone selects for a residual fraction.
  [[nodiscard]] DegradationRung battery_rung(double battery_fraction) const;

  /// Round-close update for one camera. Applies the battery floor, then one
  /// stress step down per trigger (deadline miss first, then storm, then the
  /// anomaly advisory — the latter only when `policy.anomaly_advisory` is
  /// set), or one recovery step up after enough clean rounds. Returns every
  /// effective-rung transition in application order; battery transitions
  /// never step up.
  std::vector<Transition> on_round(int camera, double battery_fraction, bool deadline_miss,
                                   bool fault_storm, bool anomaly = false);

  struct CameraState {
    int battery_floor = 0;
    int stress_rung = 0;
    int clean_rounds = 0;
  };
  [[nodiscard]] const std::vector<CameraState>& state() const { return cameras_; }
  void restore(const std::vector<CameraState>& cameras) { cameras_ = cameras; }

 private:
  DegradationPolicy policy_;
  std::vector<CameraState> cameras_;
};

}  // namespace eecs::runtime
