// Per-round deadline watchdog. Each recalibration round gets a virtual-time
// budget; a camera that fails to land any detection metadata at the
// controller before the budget expires takes a strike, and enough
// consecutive strikes exclude it from selection — the controller closes the
// round with surviving coverage, exactly like a heartbeat loss. Everything
// is deterministic: the deadline is computed from the network clock and the
// GT-frame stride, never from wall time.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace eecs::runtime {

class RoundWatchdog {
 public:
  struct Options {
    /// Virtual-time round budget in ground-truth frames; 0 disables the
    /// watchdog entirely (no state, no behaviour change).
    double deadline_gt_frames = 0.0;
    /// Consecutive missed rounds before a camera is failed out of selection.
    int strikes_to_fail = 2;
  };

  RoundWatchdog(const Options& options, int num_cameras)
      : options_(options), strikes_(static_cast<std::size_t>(num_cameras), 0) {}

  [[nodiscard]] bool enabled() const { return options_.deadline_gt_frames > 0.0; }

  /// Open a round: the deadline is `now + deadline_gt_frames * stride` and
  /// `expected` is the set of cameras that owe the controller metadata.
  void arm(double now, double stride, const std::set<int>& expected);

  /// A camera's metadata reached the controller at `time`; counts only while
  /// a round is armed and the deadline has not passed.
  void report(int camera, double time);

  struct Miss {
    int camera = 0;
    int strikes = 0;     ///< Consecutive misses including this one.
    bool failed = false; ///< strikes >= strikes_to_fail: exclude from selection.
  };

  /// Close the round: cameras that owed metadata and never reported in time,
  /// ascending camera order. Reporting cameras get their strikes cleared.
  [[nodiscard]] std::vector<Miss> close();

  /// Cameras currently failed out of selection (strikes at or past the
  /// threshold). Empty when disabled.
  [[nodiscard]] std::set<int> failed_set() const;

  [[nodiscard]] int strikes(int camera) const {
    return strikes_[static_cast<std::size_t>(camera)];
  }

  [[nodiscard]] const std::vector<int>& state() const { return strikes_; }
  void restore(const std::vector<int>& strikes) { strikes_ = strikes; }

 private:
  Options options_;
  std::vector<int> strikes_;
  bool armed_ = false;
  double deadline_ = 0.0;
  std::set<int> expected_;
  std::set<int> reported_;
};

}  // namespace eecs::runtime
