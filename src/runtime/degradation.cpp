#include "runtime/degradation.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace eecs::runtime {

const char* to_string(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::Full:
      return "full";
    case DegradationRung::CheapAlgorithm:
      return "cheap_algorithm";
    case DegradationRung::SkipFrames:
      return "skip_frames";
    case DegradationRung::MetadataOnly:
      return "metadata_only";
    case DegradationRung::Parked:
      return "parked";
  }
  return "unknown";
}

DegradationLadder::DegradationLadder(const DegradationPolicy& policy, int num_cameras)
    : policy_(policy), cameras_(static_cast<std::size_t>(num_cameras)) {}

DegradationRung DegradationLadder::rung(int camera) const {
  if (!policy_.enabled) return DegradationRung::Full;
  const CameraState& cam = cameras_[static_cast<std::size_t>(camera)];
  return static_cast<DegradationRung>(std::max(cam.battery_floor, cam.stress_rung));
}

DegradationRung DegradationLadder::battery_rung(double battery_fraction) const {
  if (battery_fraction < policy_.battery_park) return DegradationRung::Parked;
  if (battery_fraction < policy_.battery_severe) return DegradationRung::MetadataOnly;
  if (battery_fraction < policy_.battery_critical) return DegradationRung::SkipFrames;
  if (battery_fraction < policy_.battery_low) return DegradationRung::CheapAlgorithm;
  return DegradationRung::Full;
}

std::vector<DegradationLadder::Transition> DegradationLadder::on_round(
    int camera, double battery_fraction, bool deadline_miss, bool fault_storm, bool anomaly) {
  std::vector<Transition> transitions;
  if (!policy_.enabled) return transitions;
  CameraState& cam = cameras_[static_cast<std::size_t>(camera)];

  const auto effective = [&] { return std::max(cam.battery_floor, cam.stress_rung); };
  const auto apply = [&](Trigger trigger, auto&& mutate) {
    const int before = effective();
    mutate();
    const int after = effective();
    if (after != before) {
      transitions.push_back({camera, static_cast<DegradationRung>(before),
                             static_cast<DegradationRung>(after), trigger});
    }
  };

  // Battery floor: monotone by construction — the floor only ratchets down
  // the ladder, so a battery transition can never step a camera back up.
  const int battery_now = static_cast<int>(battery_rung(battery_fraction));
  const int floor_before = cam.battery_floor;
  apply(Trigger::Battery, [&] { cam.battery_floor = std::max(cam.battery_floor, battery_now); });
  EECS_EXPECTS(cam.battery_floor >= floor_before);

  if (deadline_miss) {
    apply(Trigger::Deadline, [&] {
      cam.stress_rung = std::min(cam.stress_rung + 1, kNumDegradationRungs - 1);
    });
  }
  if (fault_storm) {
    apply(Trigger::FaultStorm, [&] {
      cam.stress_rung = std::min(cam.stress_rung + 1, kNumDegradationRungs - 1);
    });
  }
  const bool advisory = anomaly && policy_.anomaly_advisory;
  if (advisory) {
    apply(Trigger::Anomaly, [&] {
      cam.stress_rung = std::min(cam.stress_rung + 1, kNumDegradationRungs - 1);
    });
  }
  if (deadline_miss || fault_storm || advisory) {
    cam.clean_rounds = 0;
  } else {
    ++cam.clean_rounds;
    if (cam.clean_rounds >= policy_.recovery_rounds && cam.stress_rung > 0) {
      apply(Trigger::Recovery, [&] { --cam.stress_rung; });
      cam.clean_rounds = 0;
    }
  }
  return transitions;
}

}  // namespace eecs::runtime
