// Minimal JSON value + recursive-descent parser for the repo's own artifacts
// (flight-recorder dumps, BENCH_*.json baselines). Not a general-purpose
// library: numbers are doubles, objects preserve insertion order, and inputs
// are trusted-but-validated — any malformed byte throws JsonError with an
// offset instead of yielding a partial value.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eecs::common {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Parse one complete JSON document; trailing non-whitespace throws.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member that must exist; throws JsonError otherwise.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape a string for embedding in JSON output (shared by the writers).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace eecs::common
