// Deterministic random number generation. Every stochastic component in the
// repository (scene simulation, k-means init, RANSAC, SVM training, ...) takes
// an explicit Rng so experiments are reproducible bit-for-bit across runs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace eecs {

/// xoshiro256** generator seeded via splitmix64. Small, fast, and fully
/// deterministic across platforms (unlike distribution objects in <random>,
/// whose output is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_u64() % i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n). Requires k <= n.
  std::vector<int> sample_indices(int n, int k);

  /// Derive an independent child generator; used to give each subsystem its
  /// own stream without correlation.
  Rng fork();

  /// Full generator state, exposed so checkpoint/restore can serialize a
  /// stream mid-flight (xoshiro words plus the Box-Muller spare).
  struct State {
    std::array<std::uint64_t, 4> words{};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  [[nodiscard]] State state() const;
  /// Resume the stream exactly where `state()` captured it: the next draw
  /// after restore() is bit-identical to the next draw after state().
  void restore(const State& s);

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace eecs
