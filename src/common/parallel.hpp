// Deterministic task-parallel execution layer. A fixed-size thread pool plus
// `parallel_for` split work over contiguous index ranges; every index is
// processed exactly once and writes only its own output slot, so results are
// bit-identical regardless of thread count or scheduling order. Reductions
// that care about floating-point association store per-index values and fold
// them sequentially afterwards (see linalg::kmeans).
//
// Width is controlled by one global knob: `set_max_threads` (the runners'
// `threads` config field, via ScopedThreads) overrides the default of the
// EECS_THREADS environment variable, which overrides hardware concurrency.
// Width 1 bypasses the pool entirely — the body runs inline on the calling
// thread over [0, n) in one piece, the exact legacy serial path.
//
// Nested-use contract: a `parallel_for` issued from inside a pool worker runs
// inline and serially on that worker (no new tasks are queued), so kernels
// may parallelize unconditionally without deadlocking when composed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace eecs::common {

/// Fixed-size worker pool. Most code should use the free `parallel_for` /
/// `parallel_map`, which share one lazily-created global pool; constructing a
/// private pool is for tests and special-purpose tools.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: every run_chunks call then
  /// executes entirely on the caller).
  explicit ThreadPool(int workers);
  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const;

  /// True when called from one of *any* pool's worker threads. Used to run
  /// nested parallel regions inline.
  [[nodiscard]] static bool on_worker_thread();

  /// Execute body(begin, end) over disjoint chunks covering [0, n), using at
  /// most `max_participants` threads (caller included; clamped to
  /// workers() + 1). Chunks are claimed dynamically but outputs are slotted
  /// by index, so results do not depend on the claim order. Blocks until all
  /// chunks finished. If any chunk threw, rethrows the exception of the
  /// lowest-indexed failing chunk (deterministic propagation); the remaining
  /// chunks still run to completion first.
  void run_chunks(std::size_t n, std::size_t chunk_size, int max_participants,
                  const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_;
};

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] int hardware_threads();

/// Current global parallel width: the last set_max_threads(n > 0) value, else
/// EECS_THREADS (when set to a positive integer), else hardware_threads().
[[nodiscard]] int max_threads();

/// Override the global width; n <= 0 resets to the environment/hardware
/// default. Returns the previous width. Not thread-safe against concurrent
/// parallel_for calls — set it from the top of a run, not mid-flight.
int set_max_threads(int n);

/// RAII width override for a scope; the runners apply their `threads` config
/// field with this. n <= 0 leaves the global width untouched.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : active_(n > 0), prev_(active_ ? set_max_threads(n) : 0) {}
  ~ScopedThreads() {
    if (active_) set_max_threads(prev_);
  }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  bool active_;
  int prev_;
};

/// Deterministic parallel loop: body(begin, end) over disjoint ranges that
/// cover [0, n) in pieces of at least `grain` indices. Runs inline (single
/// range [0, n)) when the width is 1, when n <= grain, or when called from a
/// pool worker — the exact serial path.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Per-index convenience overload (grain 1).
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body);

/// Index-ordered map: returns {fn(0), ..., fn(n-1)} with slot i always
/// holding fn(i), independent of scheduling. T must be default-constructible.
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n,
                                          const std::function<T(std::size_t)>& fn,
                                          std::size_t grain = 1) {
  std::vector<T> out(n);
  parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

/// Derive an independent RNG stream for task `task_index` of a job seeded
/// with `base_seed`: a splitmix64 finalization of the pair, so streams are
/// decorrelated and depend only on (seed, index) — never on which thread runs
/// the task or in what order.
[[nodiscard]] Rng task_rng(std::uint64_t base_seed, std::uint64_t task_index);

}  // namespace eecs::common
