#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/contracts.hpp"

namespace eecs::common {

namespace {

thread_local bool tls_on_worker = false;

/// One parallel_for invocation shared between the caller and the workers.
struct ChunkJob {
  std::size_t n = 0;
  std::size_t chunk_size = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_done{0};
  std::vector<std::exception_ptr> errors;  ///< Slot per chunk (disjoint writes).
  std::mutex mutex;
  std::condition_variable done_cv;

  /// Claim and run chunks until none remain. Any participant may run any
  /// chunk; outputs are index-slotted so the interleaving is unobservable.
  void drain() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      try {
        (*body)(begin, end);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      if (chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> threads;
  std::deque<std::shared_ptr<ChunkJob>> queue;
  std::mutex mutex;
  std::condition_variable work_cv;
  bool stopping = false;

  void worker_loop() {
    tls_on_worker = true;
    for (;;) {
      std::shared_ptr<ChunkJob> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        job = queue.front();
        // Leave the job queued until exhausted so every idle worker can join
        // it; drop it once all chunks are claimed.
        if (job->next_chunk.load(std::memory_order_relaxed) >= job->num_chunks) {
          queue.pop_front();
          continue;
        }
      }
      job->drain();
      std::lock_guard<std::mutex> lock(mutex);
      if (!queue.empty() && queue.front() == job &&
          job->next_chunk.load(std::memory_order_relaxed) >= job->num_chunks) {
        queue.pop_front();
      }
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(new Impl) {
  EECS_EXPECTS(workers >= 0);
  impl_->threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

int ThreadPool::workers() const { return static_cast<int>(impl_->threads.size()); }

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::run_chunks(std::size_t n, std::size_t chunk_size, int max_participants,
                            const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunk_size = std::max<std::size_t>(1, chunk_size);
  const int participants =
      std::max(1, std::min(max_participants, workers() + 1));
  if (participants == 1 || n <= chunk_size || tls_on_worker) {
    body(0, n);
    return;
  }

  auto job = std::make_shared<ChunkJob>();
  job->n = n;
  job->chunk_size = chunk_size;
  job->num_chunks = (n + chunk_size - 1) / chunk_size;
  job->body = &body;
  job->errors.resize(job->num_chunks);

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(job);
  }
  // Wake at most the threads that can usefully participate; the rest would
  // only contend on the claim counter.
  if (participants - 1 >= workers()) {
    impl_->work_cv.notify_all();
  } else {
    for (int i = 0; i < participants - 1; ++i) impl_->work_cv.notify_one();
  }

  job->drain();  // The caller is a participant too.
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] {
      return job->chunks_done.load(std::memory_order_acquire) == job->num_chunks;
    });
  }
  for (auto& err : job->errors) {
    if (err) std::rethrow_exception(err);
  }
}

namespace {

int parse_env_threads() {
  const char* env = std::getenv("EECS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : 0;
}

int default_threads() {
  const int env = parse_env_threads();
  return env > 0 ? env : hardware_threads();
}

std::atomic<int>& width_override() {
  static std::atomic<int> width{0};  // 0 = use default_threads().
  return width;
}

ThreadPool& global_pool() {
  // Sized once for the widest request seen at first use; a later
  // set_max_threads beyond this caps at the pool's capacity.
  static ThreadPool pool(std::max(default_threads(), max_threads()) - 1);
  return pool;
}

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int max_threads() {
  const int w = width_override().load(std::memory_order_relaxed);
  return w > 0 ? w : default_threads();
}

int set_max_threads(int n) {
  return width_override().exchange(n > 0 ? n : 0, std::memory_order_relaxed);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const int width = max_threads();
  if (width <= 1 || n <= grain || ThreadPool::on_worker_thread()) {
    body(0, n);  // Exact legacy serial path: one range, caller's thread.
    return;
  }
  // ~4 chunks per participant for load balancing, but never below the grain.
  const std::size_t target_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(width) * 4);
  const std::size_t chunk_size = std::max(grain, (n + target_chunks - 1) / target_chunks);
  global_pool().run_chunks(n, chunk_size, width, body);
}

void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for(n, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

Rng task_rng(std::uint64_t base_seed, std::uint64_t task_index) {
  // splitmix64 finalizer over the combined pair; matches the quality of
  // Rng::fork without touching any shared stream.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Rng(z);
}

}  // namespace eecs::common
