// Lightweight contract checking in the spirit of the Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw ContractViolation so tests can
// assert on misuse without terminating the process.
#pragma once

#include <stdexcept>
#include <string>

namespace eecs {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace eecs

#define EECS_EXPECTS(cond)                                                       \
  do {                                                                           \
    if (!(cond)) ::eecs::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define EECS_ENSURES(cond)                                                       \
  do {                                                                           \
    if (!(cond)) ::eecs::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
