// Minimal leveled logger. Default level is Warn so tests and benches stay
// quiet; simulations raise it to Info when narrating runs. The level is a
// relaxed atomic, so concurrent set_log_level/log_message calls (pool workers
// logging while a test adjusts verbosity) are race-free.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace eecs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded. Thread-safe.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Optional sink hook: when set, passing messages go to the sink instead of
/// stderr (tests capture warnings this way instead of scraping stderr).
/// Install/remove under a mutex shared with message dispatch, so swapping the
/// sink while other threads log is safe. Pass nullptr to restore stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// RAII sink installation for a test scope.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink sink) { set_log_sink(std::move(sink)); }
  ~ScopedLogSink() { set_log_sink(nullptr); }
  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;
};

void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace eecs

#define EECS_LOG(level) \
  if (static_cast<int>(level) < static_cast<int>(::eecs::log_level())) {} else ::eecs::detail::LogLine(level)

#define EECS_DEBUG EECS_LOG(::eecs::LogLevel::Debug)
#define EECS_INFO EECS_LOG(::eecs::LogLevel::Info)
#define EECS_WARN EECS_LOG(::eecs::LogLevel::Warn)
#define EECS_ERROR EECS_LOG(::eecs::LogLevel::Error)
