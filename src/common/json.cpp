#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace eecs::common {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonError("json: " + what + " at offset " + std::to_string(pos));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.string_ = string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::Bool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::Bool;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP codepoint (surrogate pairs are not needed by
          // the repo's own ASCII artifacts; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number_);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      fail(start, "bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("json: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return number_;
}

std::int64_t JsonValue::as_int64() const { return static_cast<std::int64_t>(as_double()); }

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw JsonError("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonError("json: missing key \"" + std::string(key) + "\"");
  return *v;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace eecs::common
