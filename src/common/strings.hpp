// String/formatting helpers used mainly by the bench harnesses to print
// paper-style tables (libstdc++ 12 lacks std::format).
#pragma once

#include <string>
#include <vector>

namespace eecs {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point formatting with the given number of decimals.
[[nodiscard]] std::string to_fixed(double v, int decimals);

/// Pad/truncate to an exact column width (left-aligned).
[[nodiscard]] std::string pad(const std::string& s, std::size_t width);

/// Render a simple ASCII table: header row + data rows, columns sized to fit.
[[nodiscard]] std::string render_table(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows);

}  // namespace eecs
