#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace eecs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 bits of mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EECS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  EECS_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<int> Rng::sample_indices(int n, int k) {
  EECS_EXPECTS(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const int j = uniform_int(i, n - 1);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng::State Rng::state() const {
  State s;
  for (std::size_t i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.have_cached_normal = have_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::restore(const State& s) {
  for (std::size_t i = 0; i < 4; ++i) state_[i] = s.words[i];
  have_cached_normal_ = s.have_cached_normal;
  cached_normal_ = s.cached_normal;
}

}  // namespace eecs
