#include "common/contracts.hpp"

#include <sstream>

namespace eecs::detail {

void contract_fail(const char* kind, const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  throw ContractViolation(os.str());
}

}  // namespace eecs::detail
