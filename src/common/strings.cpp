#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace eecs {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string to_fixed(double v, int decimals) { return format("%.*f", decimals, v); }

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << pad(c < row.size() ? row[c] : "", widths[c]);
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

}  // namespace eecs
