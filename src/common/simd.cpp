#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace eecs::simd {

namespace {

/// Runtime override tri-state: -1 none, 0 forced off, 1 forced on.
std::atomic<int>& mode_override() {
  static std::atomic<int> mode{-1};
  return mode;
}

/// EECS_SIMD environment default, resolved once: 0/1 when set, else the
/// compiled default (on iff a native backend exists).
bool env_default() {
  static const bool value = [] {
    const char* env = std::getenv("EECS_SIMD");
    if (env != nullptr && (env[0] == '0' || env[0] == '1') && env[1] == '\0') {
      return env[0] == '1';
    }
    return kNativeBackend;
  }();
  return value;
}

}  // namespace

const char* isa_name() {
#if defined(EECS_SIMD_SSE2)
  return "sse2";
#elif defined(EECS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

const char* dispatch_name() { return enabled() && kNativeBackend ? isa_name() : "scalar"; }

bool enabled() {
  const int mode = mode_override().load(std::memory_order_relaxed);
  return mode >= 0 ? mode != 0 : env_default();
}

int set_enabled(int mode) {
  return mode_override().exchange(mode >= 0 ? (mode != 0 ? 1 : 0) : -1,
                                  std::memory_order_relaxed);
}

}  // namespace eecs::simd
