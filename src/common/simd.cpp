#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace eecs::simd {

namespace {

/// Normalize a requested mode to the stored encoding: -1 none/reset, 0
/// baseline emulation, 1 auto-native, ±128/±256/±512 width requests. Any
/// other positive value means "on" (historical 0/1 knob), any other negative
/// value resets.
int normalize(int mode) {
  switch (mode) {
    case 0:
    case 1:
    case 128:
    case 256:
    case 512:
    case -128:
    case -256:
    case -512:
      return mode;
    default:
      return mode > 0 ? 1 : -1;
  }
}

/// Runtime override: -1 none (fall through to the environment default), else
/// a normalized mode.
std::atomic<int>& mode_override() {
  static std::atomic<int> mode{-1};
  return mode;
}

/// EECS_SIMD environment default, resolved once: "auto" or a mode number
/// when set and valid, else the compiled default (native-auto iff a native
/// backend exists).
int env_default() {
  static const int value = [] {
    const char* env = std::getenv("EECS_SIMD");
    if (env != nullptr && env[0] != '\0') {
      if (std::strcmp(env, "auto") == 0) return 1;
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0') {
        switch (parsed) {
          case 0:
          case 1:
          case 128:
          case 256:
          case 512:
          case -128:
          case -256:
          case -512:
            return static_cast<int>(parsed);
          default:
            break;  // fall through to the compiled default
        }
      }
    }
    return kNativeBackend ? 1 : 0;
  }();
  return value;
}

/// Runtime CPU support for each compiled native tier. The 128-bit tier is
/// the build baseline (SSE2/NEON), so compiled-in implies supported; the
/// wider x86 tiers may be compiled into a binary that runs on a narrower
/// host, so they are probed.
bool native256_available() {
#if defined(EECS_SIMD_AVX2)
  static const bool value = __builtin_cpu_supports("avx2");
  return value;
#else
  return false;
#endif
}

bool native512_available() {
#if defined(EECS_SIMD_AVX512)
  static const bool value = __builtin_cpu_supports("avx512f");
  return value;
#else
  return false;
#endif
}

int active_mode() {
  const int mode = mode_override().load(std::memory_order_relaxed);
  return mode == -1 ? env_default() : mode;
}

}  // namespace

const char* isa_name() {
#if defined(EECS_SIMD_AVX512)
  return "avx512";
#elif defined(EECS_SIMD_AVX2)
  return "avx2";
#elif defined(EECS_SIMD_SSE2)
  return "sse2";
#elif defined(EECS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

Dispatch current_dispatch() {
  switch (active_mode()) {
    case 0:
      return Dispatch::kEmul128;
    case -128:
      return Dispatch::kEmul128;
    case -256:
      return Dispatch::kEmul256;
    case -512:
      return Dispatch::kEmul512;
    case 128:
      return kNativeBackend ? Dispatch::kNative128 : Dispatch::kEmul128;
    case 256:
      return native256_available() ? Dispatch::kNative256 : Dispatch::kEmul256;
    case 512:
      return native512_available() ? Dispatch::kNative512 : Dispatch::kEmul512;
    default:  // 1 / auto: widest compiled-in tier the CPU supports.
      if (native512_available()) return Dispatch::kNative512;
      if (native256_available()) return Dispatch::kNative256;
      return kNativeBackend ? Dispatch::kNative128 : Dispatch::kEmul128;
  }
}

const char* dispatch_name() {
  switch (current_dispatch()) {
    case Dispatch::kNative512:
      return "avx512";
    case Dispatch::kNative256:
      return "avx2";
    case Dispatch::kNative128:
#if defined(EECS_SIMD_NEON)
      return "neon";
#else
      return "sse2";
#endif
    case Dispatch::kEmul512:
      return "emul512";
    case Dispatch::kEmul256:
      return "emul256";
    case Dispatch::kEmul128:
    default:
      return "scalar";
  }
}

int dispatch_width() {
  switch (current_dispatch()) {
    case Dispatch::kNative512:
    case Dispatch::kEmul512:
      return 512;
    case Dispatch::kNative256:
    case Dispatch::kEmul256:
      return 256;
    default:
      return 128;
  }
}

bool enabled() {
  switch (current_dispatch()) {
    case Dispatch::kNative128:
    case Dispatch::kNative256:
    case Dispatch::kNative512:
      return true;
    default:
      return false;
  }
}

int set_enabled(int mode) {
  return mode_override().exchange(normalize(mode), std::memory_order_relaxed);
}

}  // namespace eecs::simd
