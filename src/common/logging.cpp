#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace eecs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::mutex g_sink_mutex;
LogSink g_sink;  // Guarded by g_sink_mutex.

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink) {
      g_sink(level, msg);
      return;
    }
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace eecs
