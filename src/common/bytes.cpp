#include "common/bytes.hpp"

#include <bit>

namespace eecs {

void ByteWriter::write_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::write_f32(float v) { write_u32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::write_f32_vector(std::span<const float> v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) write_f32(x);
}

void ByteWriter::write_f64_vector(std::span<const double> v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) write_f64(x);
}

void ByteReader::require(std::size_t n) {
  if (remaining() < n) throw DecodeError("ByteReader: buffer underrun");
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

float ByteReader::read_f32() { return std::bit_cast<float>(read_u32()); }

double ByteReader::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string ByteReader::read_string() {
  const std::uint32_t n = read_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> ByteReader::read_f32_vector() {
  const std::uint32_t n = read_u32();
  // Validate the length prefix against the remaining bytes before allocating,
  // so a corrupt prefix throws instead of attempting a multi-GiB allocation.
  require(static_cast<std::size_t>(n) * 4);
  std::vector<float> v(n);
  for (auto& x : v) x = read_f32();
  return v;
}

std::vector<double> ByteReader::read_f64_vector() {
  const std::uint32_t n = read_u32();
  require(static_cast<std::size_t>(n) * 8);
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace eecs
