// Wall-clock stopwatch used only for reporting bench runtimes (never for
// energy accounting, which is counter-based — see src/energy).
#pragma once

#include <chrono>

namespace eecs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eecs
