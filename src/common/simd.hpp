// Bit-exact portable SIMD layer: virtual-width packs (128/256/512 bits).
//
// Every pack type exists at three virtual widths (4/8/16 float lanes, 2/4/8
// double lanes) and in two interchangeable implementations per width with an
// identical API: a native one (SSE2/AVX2/AVX-512 on x86, NEON on AArch64) and
// a scalar emulation twin (`F32xEmul<W>` etc.) that executes the very same
// lane-blocked order with plain scalar IEEE arithmetic. Kernels are written
// once, templated over the pack type, and dispatched at runtime through an
// ISA tag:
//
//   template <class F4> void kernel_impl(...);   // lane-blocked body
//   simd::dispatch([&](auto isa) {
//     using F4 = typename decltype(isa)::F32;
//     kernel_impl<F4>(...);
//   });
//
// The bit-exactness contract (same as the thread-pool layer, DESIGN.md "SIMD
// & portability"): a kernel may vectorize only ACROSS independent output
// chains — one output element (or one accumulator) per lane — and must never
// reassociate a single float/double reduction chain. Every pack operation is
// a deterministic per-lane IEEE-754 operation (add/sub/mul/div/min/max,
// correctly-rounded sqrt, exact floor), so the native and emulated builds,
// every ISA, and every WIDTH produce bit-identical results by construction.
// No FMA is ever emitted through this API (mul and add round separately,
// like the scalar code they replace); arch-enabled builds must compile with
// -ffp-contract=off so the compiler cannot fuse them behind our back.
//
// Runtime control mirrors the threads knob: `config.simd` (runners, via
// ScopedSimd) > `EECS_SIMD` env > compiled default. Modes:
//     0            scalar emulation at the baseline width (4 lanes)
//     1 / "auto"   widest native backend compiled in AND supported by the CPU
//     128/256/512  native packs of that width when compiled in and CPU-
//                  supported, else the bit-identical emulation twin of the
//                  SAME width (so wide code paths run everywhere)
//     -128/-256/-512  forced emulation twin of that width (A/B harnesses)
//     any other negative  reset to the environment/compiled default
// `EECS_SIMD_DISABLE` (CMake option EECS_SIMD_OFF) removes every native
// backend at compile time: the fixed-width names alias the emulation and the
// compiled default flips to off.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(EECS_SIMD_DISABLE)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define EECS_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#if defined(__AVX2__)
#define EECS_SIMD_AVX2 1
#include <immintrin.h>
#endif
#if defined(__AVX512F__)
#define EECS_SIMD_AVX512 1
#include <immintrin.h>
#endif
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define EECS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !EECS_SIMD_DISABLE

namespace eecs::simd {

/// Baseline virtual width: the 128-bit packs carry 4 floats / 2 doubles.
/// Width-generic kernels should use F4::kLanes / D2::kLanes instead.
inline constexpr int kF32Lanes = 4;
inline constexpr int kF64Lanes = 2;

/// True when at least one native backend was compiled in.
#if defined(EECS_SIMD_SSE2) || defined(EECS_SIMD_NEON)
inline constexpr bool kNativeBackend = true;
#else
inline constexpr bool kNativeBackend = false;
#endif

/// Widest native backend compiled in: "avx512", "avx2", "sse2", "neon", or
/// "scalar".
[[nodiscard]] const char* isa_name();

/// Active dispatch backend: "avx512"/"avx2"/"sse2"/"neon" when a native
/// width is selected, "scalar" for baseline emulation, "emul256"/"emul512"
/// for the forced wide emulation twins.
[[nodiscard]] const char* dispatch_name();

/// Virtual width (in bits: 128/256/512) of the active dispatch.
[[nodiscard]] int dispatch_width();

/// True when the active dispatch runs native packs (any width).
[[nodiscard]] bool enabled();

/// Override the runtime switch with one of the mode values documented at the
/// top of this header. Returns the previous override (-1 when none was
/// active) for restore. Not thread-safe against in-flight kernels — set it
/// from the top of a run, like set_max_threads.
int set_enabled(int mode);

/// Resolved dispatch target; `dispatch()` below maps it to an ISA tag.
enum class Dispatch : int {
  kEmul128 = 0,
  kEmul256,
  kEmul512,
  kNative128,
  kNative256,
  kNative512,
};
[[nodiscard]] Dispatch current_dispatch();

/// RAII switch override for a scope; the runners apply their `simd` config
/// field with this. Negative modes other than the forced-emulation widths
/// (-128/-256/-512) leave the global switch untouched.
class ScopedSimd {
 public:
  static constexpr bool is_override(int mode) {
    return mode >= 0 || mode == -128 || mode == -256 || mode == -512;
  }
  explicit ScopedSimd(int mode) : active_(is_override(mode)), prev_(active_ ? set_enabled(mode) : 0) {}
  ~ScopedSimd() {
    if (active_) set_enabled(prev_);
  }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool active_;
  int prev_;
};

// ---------------------------------------------------------------------------
// Scalar emulation packs, templated over the lane count. These ARE the
// reference semantics: the native packs below implement exactly these
// per-lane operations, and every width runs the identical per-lane math.
// ---------------------------------------------------------------------------

template <int W>
struct U32xEmul {
  static constexpr int kLanes = W;
  std::uint32_t lane[W];

  static U32xEmul broadcast(std::uint32_t x) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  [[nodiscard]] std::uint32_t extract(int i) const { return lane[i]; }

  friend U32xEmul operator&(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] & b.lane[i];
    return r;
  }
  friend U32xEmul operator|(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] | b.lane[i];
    return r;
  }
  friend U32xEmul operator^(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] ^ b.lane[i];
    return r;
  }
  /// Wrapping 32-bit subtraction per lane (two's complement, like psubd).
  friend U32xEmul operator-(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  /// All-ones mask per lane where a == b.
  [[nodiscard]] static U32xEmul cmpeq(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] == b.lane[i] ? 0xFFFFFFFFu : 0u;
    return r;
  }
  /// All-ones mask per lane where a > b as SIGNED 32-bit ints (like pcmpgtd).
  [[nodiscard]] static U32xEmul cmpgt_signed(U32xEmul a, U32xEmul b) {
    U32xEmul r{};
    for (int i = 0; i < W; ++i) {
      r.lane[i] = static_cast<std::int32_t>(a.lane[i]) > static_cast<std::int32_t>(b.lane[i])
                      ? 0xFFFFFFFFu
                      : 0u;
    }
    return r;
  }
  /// True when any lane is nonzero (mask "is any lane set").
  [[nodiscard]] static bool any(U32xEmul a) {
    std::uint32_t acc = 0;
    for (int i = 0; i < W; ++i) acc |= a.lane[i];
    return acc != 0u;
  }
};

template <int W>
struct F32xEmul {
  static constexpr int kLanes = W;
  using Mask = U32xEmul<W>;
  float lane[W];

  static F32xEmul load(const float* p) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  static F32xEmul broadcast(float x) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  template <class... T>
  static F32xEmul set(T... v) {
    static_assert(sizeof...(T) == W, "set() takes exactly kLanes values");
    return {{static_cast<float>(v)...}};
  }
  /// Indexed gather: lane i = p[idx[i]] (the resize kernels' column taps).
  static F32xEmul gather(const float* p, const int* idx) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = p[idx[i]];
    return r;
  }
  /// Strided gather: lane i = p[i * stride] (the ACF block-sum taps).
  static F32xEmul gather_stride(const float* p, std::size_t stride) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = p[static_cast<std::size_t>(i) * stride];
    return r;
  }
  void store(float* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  [[nodiscard]] float extract(int i) const { return lane[i]; }

  friend F32xEmul operator+(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend F32xEmul operator-(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend F32xEmul operator*(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend F32xEmul operator/(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }

  /// Correctly-rounded per-lane square root (IEEE-754, matches std::sqrt).
  [[nodiscard]] static F32xEmul sqrt(F32xEmul a) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = std::sqrt(a.lane[i]);
    return r;
  }
  /// Exact per-lane floor; callers keep |x| < 2^31 (the SSE2 emulation goes
  /// through a 32-bit truncating convert).
  [[nodiscard]] static F32xEmul floor(F32xEmul a) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = std::floor(a.lane[i]);
    return r;
  }
  /// min/max use the SSE tie rule — return b unless a is strictly
  /// less/greater — so ties (incl. ±0.0) and unordered operands are bit-exact
  /// in every backend (NEON implements them as compare + select).
  [[nodiscard]] static F32xEmul min(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
  [[nodiscard]] static F32xEmul max(F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
  /// All-ones mask per lane where a > b (ordered, like the scalar >).
  [[nodiscard]] static Mask gt(F32xEmul a, F32xEmul b) {
    Mask r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] > b.lane[i] ? 0xFFFFFFFFu : 0u;
    return r;
  }
  /// All-ones mask per lane where a < b (ordered).
  [[nodiscard]] static Mask lt(F32xEmul a, F32xEmul b) {
    Mask r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? 0xFFFFFFFFu : 0u;
    return r;
  }
  /// All-ones mask per lane where a >= b (ordered).
  [[nodiscard]] static Mask ge(F32xEmul a, F32xEmul b) {
    Mask r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] >= b.lane[i] ? 0xFFFFFFFFu : 0u;
    return r;
  }
  /// Per-lane |x|: clears the sign bit (bitwise, so NaN payloads pass through).
  [[nodiscard]] static F32xEmul abs(F32xEmul a) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) {
      r.lane[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(a.lane[i]) & 0x7FFFFFFFu);
    }
    return r;
  }
  /// Bitwise blend: lanes of a where the mask bits are set, b elsewhere
  /// ((m & a) | (~m & b) on the raw bits, like SSE and/andnot/or or NEON bsl).
  [[nodiscard]] static F32xEmul select(Mask m, F32xEmul a, F32xEmul b) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) {
      r.lane[i] = std::bit_cast<float>((m.lane[i] & std::bit_cast<std::uint32_t>(a.lane[i])) |
                                       (~m.lane[i] & std::bit_cast<std::uint32_t>(b.lane[i])));
    }
    return r;
  }
  /// Raw IEEE-754 bit pattern per lane, and its inverse.
  [[nodiscard]] static Mask to_bits(F32xEmul a) {
    Mask r{};
    for (int i = 0; i < W; ++i) r.lane[i] = std::bit_cast<std::uint32_t>(a.lane[i]);
    return r;
  }
  [[nodiscard]] static F32xEmul from_bits(Mask a) {
    F32xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = std::bit_cast<float>(a.lane[i]);
    return r;
  }
};

template <int W>
struct F64xEmul {
  static constexpr int kLanes = W;
  double lane[W];

  static F64xEmul load(const double* p) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  static F64xEmul broadcast(double x) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  template <class... T>
  static F64xEmul set(T... v) {
    static_assert(sizeof...(T) == W, "set() takes exactly kLanes values");
    return {{static_cast<double>(v)...}};
  }
  /// Strided float loads widened to double: lane i = double(p[i * stride]).
  /// The score-map kernels gather adjacent windows with this (their
  /// descriptors sit `stride` floats apart). The name is historical from the
  /// 2-lane pack; it gathers kLanes values at every width.
  static F64xEmul gather2f(const float* p, std::size_t stride) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) {
      r.lane[i] = static_cast<double>(p[static_cast<std::size_t>(i) * stride]);
    }
    return r;
  }
  /// Contiguous float loads widened to double: lane i = double(p[i]).
  /// Equivalent to gather2f(p, 1) — float->double is exact, so the transposed
  /// score-map layout can swap gathers for these without changing any bit.
  static F64xEmul load2f(const float* p) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = static_cast<double>(p[i]);
    return r;
  }
  /// Lanewise (v > t) ? x : y, false on NaN — the cascade's stump predicate.
  [[nodiscard]] static F64xEmul select_gt(F64xEmul v, F64xEmul t, F64xEmul x, F64xEmul y) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = v.lane[i] > t.lane[i] ? x.lane[i] : y.lane[i];
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  [[nodiscard]] double extract(int i) const { return lane[i]; }

  friend F64xEmul operator+(F64xEmul a, F64xEmul b) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend F64xEmul operator-(F64xEmul a, F64xEmul b) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend F64xEmul operator*(F64xEmul a, F64xEmul b) {
    F64xEmul r{};
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
};

using U32x4Emul = U32xEmul<4>;
using F32x4Emul = F32xEmul<4>;
using F64x2Emul = F64xEmul<2>;
using U32x8Emul = U32xEmul<8>;
using F32x8Emul = F32xEmul<8>;
using F64x4Emul = F64xEmul<4>;
using U32x16Emul = U32xEmul<16>;
using F32x16Emul = F32xEmul<16>;
using F64x8Emul = F64xEmul<8>;

/// In-place 4x4 transpose: rows (a,b,c,d) become columns. Only defined for
/// the 4-lane packs (legacy layout helper; the width-generic kernels use
/// gather_stride instead).
inline void transpose4(F32x4Emul& a, F32x4Emul& b, F32x4Emul& c, F32x4Emul& d) {
  const F32x4Emul ta = {{a.lane[0], b.lane[0], c.lane[0], d.lane[0]}};
  const F32x4Emul tb = {{a.lane[1], b.lane[1], c.lane[1], d.lane[1]}};
  const F32x4Emul tc = {{a.lane[2], b.lane[2], c.lane[2], d.lane[2]}};
  const F32x4Emul td = {{a.lane[3], b.lane[3], c.lane[3], d.lane[3]}};
  a = ta;
  b = tb;
  c = tc;
  d = td;
}

// ---------------------------------------------------------------------------
// Native backends. Each implements the exact per-lane semantics above at its
// width. Wider x86 tiers are only compiled under -march flags that enable
// them (CMake option EECS_ARCH); the dispatcher additionally checks CPU
// support at runtime before selecting them.
// ---------------------------------------------------------------------------

#if defined(EECS_SIMD_SSE2)

struct U32x4 {
  static constexpr int kLanes = 4;
  __m128i v;

  static U32x4 broadcast(std::uint32_t x) { return {_mm_set1_epi32(static_cast<int>(x))}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    alignas(16) std::uint32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }

  friend U32x4 operator&(U32x4 a, U32x4 b) { return {_mm_and_si128(a.v, b.v)}; }
  friend U32x4 operator|(U32x4 a, U32x4 b) { return {_mm_or_si128(a.v, b.v)}; }
  friend U32x4 operator^(U32x4 a, U32x4 b) { return {_mm_xor_si128(a.v, b.v)}; }
  friend U32x4 operator-(U32x4 a, U32x4 b) { return {_mm_sub_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpeq(U32x4 a, U32x4 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpgt_signed(U32x4 a, U32x4 b) { return {_mm_cmpgt_epi32(a.v, b.v)}; }
  [[nodiscard]] static bool any(U32x4 a) {
    return _mm_movemask_epi8(_mm_cmpeq_epi32(a.v, _mm_setzero_si128())) != 0xFFFF;
  }
};

struct F32x4 {
  static constexpr int kLanes = 4;
  using Mask = U32x4;
  __m128 v;

  static F32x4 load(const float* p) { return {_mm_loadu_ps(p)}; }
  static F32x4 broadcast(float x) { return {_mm_set1_ps(x)}; }
  static F32x4 set(float a, float b, float c, float d) { return {_mm_setr_ps(a, b, c, d)}; }
  static F32x4 gather(const float* p, const int* idx) {
    return {_mm_setr_ps(p[idx[0]], p[idx[1]], p[idx[2]], p[idx[3]])};
  }
  static F32x4 gather_stride(const float* p, std::size_t stride) {
    return {_mm_setr_ps(p[0], p[stride], p[2 * stride], p[3 * stride])};
  }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  [[nodiscard]] float extract(int i) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    return tmp[i];
  }

  friend F32x4 operator+(F32x4 a, F32x4 b) { return {_mm_add_ps(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {_mm_div_ps(a.v, b.v)}; }

  [[nodiscard]] static F32x4 sqrt(F32x4 a) { return {_mm_sqrt_ps(a.v)}; }
  [[nodiscard]] static F32x4 floor(F32x4 a) {
#if defined(__SSE4_1__)
    return {_mm_floor_ps(a.v)};
#else
    // trunc(x), then subtract 1 where trunc rounded towards zero past the
    // floor (negative non-integers), then restore the sign bit so
    // floor(-0.0) == -0.0 (a no-op on every other input: the result already
    // carries x's sign when nonzero). Exact for |x| < 2^31.
    const __m128 t = _mm_cvtepi32_ps(_mm_cvttps_epi32(a.v));
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 f = _mm_sub_ps(t, _mm_and_ps(_mm_cmpgt_ps(t, a.v), one));
    const __m128 sign = _mm_set1_ps(-0.0f);
    return {_mm_or_ps(f, _mm_and_ps(a.v, sign))};
#endif
  }
  [[nodiscard]] static F32x4 min(F32x4 a, F32x4 b) { return {_mm_min_ps(a.v, b.v)}; }
  [[nodiscard]] static F32x4 max(F32x4 a, F32x4 b) { return {_mm_max_ps(a.v, b.v)}; }
  [[nodiscard]] static Mask gt(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmpgt_ps(a.v, b.v))};
  }
  [[nodiscard]] static Mask lt(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmplt_ps(a.v, b.v))};
  }
  [[nodiscard]] static Mask ge(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmpge_ps(a.v, b.v))};
  }
  [[nodiscard]] static F32x4 abs(F32x4 a) {
    return {_mm_and_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF)))};
  }
  [[nodiscard]] static F32x4 select(Mask m, F32x4 a, F32x4 b) {
    const __m128 mm = _mm_castsi128_ps(m.v);
#if defined(__SSE4_1__)
    // Masks are full-lane compare results, so sign-bit blendv is exact. One
    // uop versus the three-op and/andnot/or emulation — atan2f_pack blends
    // ~26 times per pack, which made emulated select its single biggest
    // instruction cost on the pre-v2 baseline.
    return {_mm_blendv_ps(b.v, a.v, mm)};
#else
    return {_mm_or_ps(_mm_and_ps(mm, a.v), _mm_andnot_ps(mm, b.v))};
#endif
  }
  [[nodiscard]] static U32x4 to_bits(F32x4 a) { return {_mm_castps_si128(a.v)}; }
  [[nodiscard]] static F32x4 from_bits(U32x4 a) { return {_mm_castsi128_ps(a.v)}; }
};

inline void transpose4(F32x4& a, F32x4& b, F32x4& c, F32x4& d) {
  _MM_TRANSPOSE4_PS(a.v, b.v, c.v, d.v);
}

struct F64x2 {
  static constexpr int kLanes = 2;
  __m128d v;

  static F64x2 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static F64x2 broadcast(double x) { return {_mm_set1_pd(x)}; }
  static F64x2 set(double lo, double hi) { return {_mm_setr_pd(lo, hi)}; }
  static F64x2 gather2f(const float* p, std::size_t stride) {
    return {_mm_setr_pd(static_cast<double>(p[0]), static_cast<double>(p[stride]))};
  }
  static F64x2 load2f(const float* p) {
    return {_mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))))};
  }
  [[nodiscard]] static F64x2 select_gt(F64x2 v, F64x2 t, F64x2 x, F64x2 y) {
    const __m128d m = _mm_cmpgt_pd(v.v, t.v);
#if defined(__SSE4_1__)
    return {_mm_blendv_pd(y.v, x.v, m)};
#else
    return {_mm_or_pd(_mm_and_pd(m, x.v), _mm_andnot_pd(m, y.v))};
#endif
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  [[nodiscard]] double extract(int i) const {
    return i == 0 ? _mm_cvtsd_f64(v) : _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
  }

  friend F64x2 operator+(F64x2 a, F64x2 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend F64x2 operator-(F64x2 a, F64x2 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend F64x2 operator*(F64x2 a, F64x2 b) { return {_mm_mul_pd(a.v, b.v)}; }
};

#elif defined(EECS_SIMD_NEON)

struct U32x4 {
  static constexpr int kLanes = 4;
  uint32x4_t v;

  static U32x4 broadcast(std::uint32_t x) { return {vdupq_n_u32(x)}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    std::uint32_t tmp[4];
    vst1q_u32(tmp, v);
    return tmp[i];
  }

  friend U32x4 operator&(U32x4 a, U32x4 b) { return {vandq_u32(a.v, b.v)}; }
  friend U32x4 operator|(U32x4 a, U32x4 b) { return {vorrq_u32(a.v, b.v)}; }
  friend U32x4 operator^(U32x4 a, U32x4 b) { return {veorq_u32(a.v, b.v)}; }
  friend U32x4 operator-(U32x4 a, U32x4 b) { return {vsubq_u32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpeq(U32x4 a, U32x4 b) { return {vceqq_u32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpgt_signed(U32x4 a, U32x4 b) {
    return {vcgtq_s32(vreinterpretq_s32_u32(a.v), vreinterpretq_s32_u32(b.v))};
  }
  [[nodiscard]] static bool any(U32x4 a) { return vmaxvq_u32(a.v) != 0u; }
};

struct F32x4 {
  static constexpr int kLanes = 4;
  using Mask = U32x4;
  float32x4_t v;

  static F32x4 load(const float* p) { return {vld1q_f32(p)}; }
  static F32x4 broadcast(float x) { return {vdupq_n_f32(x)}; }
  static F32x4 set(float a, float b, float c, float d) {
    const float tmp[4] = {a, b, c, d};
    return {vld1q_f32(tmp)};
  }
  static F32x4 gather(const float* p, const int* idx) {
    return set(p[idx[0]], p[idx[1]], p[idx[2]], p[idx[3]]);
  }
  static F32x4 gather_stride(const float* p, std::size_t stride) {
    return set(p[0], p[stride], p[2 * stride], p[3 * stride]);
  }
  void store(float* p) const { vst1q_f32(p, v); }
  [[nodiscard]] float extract(int i) const {
    float tmp[4];
    vst1q_f32(tmp, v);
    return tmp[i];
  }

  friend F32x4 operator+(F32x4 a, F32x4 b) { return {vaddq_f32(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {vsubq_f32(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {vmulq_f32(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {vdivq_f32(a.v, b.v)}; }

  [[nodiscard]] static F32x4 sqrt(F32x4 a) { return {vsqrtq_f32(a.v)}; }
  [[nodiscard]] static F32x4 floor(F32x4 a) { return {vrndmq_f32(a.v)}; }
  // Compare + select, not vminq/vmaxq: NEON's native min/max disagree with
  // the SSE tie rule on ±0.0 and NaN, and the contract is bit-exactness.
  [[nodiscard]] static F32x4 min(F32x4 a, F32x4 b) {
    return {vbslq_f32(vcltq_f32(a.v, b.v), a.v, b.v)};
  }
  [[nodiscard]] static F32x4 max(F32x4 a, F32x4 b) {
    return {vbslq_f32(vcgtq_f32(a.v, b.v), a.v, b.v)};
  }
  [[nodiscard]] static Mask gt(F32x4 a, F32x4 b) { return {vcgtq_f32(a.v, b.v)}; }
  [[nodiscard]] static Mask lt(F32x4 a, F32x4 b) { return {vcltq_f32(a.v, b.v)}; }
  [[nodiscard]] static Mask ge(F32x4 a, F32x4 b) { return {vcgeq_f32(a.v, b.v)}; }
  // Bitwise sign clear (NOT vabsq_f32: that is also bitwise, but spell the
  // contract out) so NaN payloads pass through unchanged.
  [[nodiscard]] static F32x4 abs(F32x4 a) {
    return {vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(a.v), vdupq_n_u32(0x7FFFFFFFu)))};
  }
  [[nodiscard]] static F32x4 select(Mask m, F32x4 a, F32x4 b) {
    return {vbslq_f32(m.v, a.v, b.v)};
  }
  [[nodiscard]] static U32x4 to_bits(F32x4 a) { return {vreinterpretq_u32_f32(a.v)}; }
  [[nodiscard]] static F32x4 from_bits(U32x4 a) { return {vreinterpretq_f32_u32(a.v)}; }
};

inline void transpose4(F32x4& a, F32x4& b, F32x4& c, F32x4& d) {
  const float32x4x2_t ab = vtrnq_f32(a.v, b.v);
  const float32x4x2_t cd = vtrnq_f32(c.v, d.v);
  a.v = vcombine_f32(vget_low_f32(ab.val[0]), vget_low_f32(cd.val[0]));
  b.v = vcombine_f32(vget_low_f32(ab.val[1]), vget_low_f32(cd.val[1]));
  c.v = vcombine_f32(vget_high_f32(ab.val[0]), vget_high_f32(cd.val[0]));
  d.v = vcombine_f32(vget_high_f32(ab.val[1]), vget_high_f32(cd.val[1]));
}

struct F64x2 {
  static constexpr int kLanes = 2;
  float64x2_t v;

  static F64x2 load(const double* p) { return {vld1q_f64(p)}; }
  static F64x2 broadcast(double x) { return {vdupq_n_f64(x)}; }
  static F64x2 set(double lo, double hi) {
    const double tmp[2] = {lo, hi};
    return {vld1q_f64(tmp)};
  }
  static F64x2 gather2f(const float* p, std::size_t stride) {
    return set(static_cast<double>(p[0]), static_cast<double>(p[stride]));
  }
  static F64x2 load2f(const float* p) { return {vcvt_f64_f32(vld1_f32(p))}; }
  [[nodiscard]] static F64x2 select_gt(F64x2 v, F64x2 t, F64x2 x, F64x2 y) {
    return {vbslq_f64(vcgtq_f64(v.v, t.v), x.v, y.v)};
  }
  void store(double* p) const { vst1q_f64(p, v); }
  [[nodiscard]] double extract(int i) const {
    double tmp[2];
    vst1q_f64(tmp, v);
    return tmp[i];
  }

  friend F64x2 operator+(F64x2 a, F64x2 b) { return {vaddq_f64(a.v, b.v)}; }
  friend F64x2 operator-(F64x2 a, F64x2 b) { return {vsubq_f64(a.v, b.v)}; }
  friend F64x2 operator*(F64x2 a, F64x2 b) { return {vmulq_f64(a.v, b.v)}; }
};

#else  // scalar-only build: the native names alias the emulation.

using U32x4 = U32x4Emul;
using F32x4 = F32x4Emul;
using F64x2 = F64x2Emul;

#endif

#if defined(EECS_SIMD_AVX2)

struct U32x8 {
  static constexpr int kLanes = 8;
  __m256i v;

  static U32x8 broadcast(std::uint32_t x) { return {_mm256_set1_epi32(static_cast<int>(x))}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    alignas(32) std::uint32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }

  friend U32x8 operator&(U32x8 a, U32x8 b) { return {_mm256_and_si256(a.v, b.v)}; }
  friend U32x8 operator|(U32x8 a, U32x8 b) { return {_mm256_or_si256(a.v, b.v)}; }
  friend U32x8 operator^(U32x8 a, U32x8 b) { return {_mm256_xor_si256(a.v, b.v)}; }
  friend U32x8 operator-(U32x8 a, U32x8 b) { return {_mm256_sub_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x8 cmpeq(U32x8 a, U32x8 b) { return {_mm256_cmpeq_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x8 cmpgt_signed(U32x8 a, U32x8 b) {
    return {_mm256_cmpgt_epi32(a.v, b.v)};
  }
  [[nodiscard]] static bool any(U32x8 a) { return _mm256_testz_si256(a.v, a.v) == 0; }
};

struct F32x8 {
  static constexpr int kLanes = 8;
  using Mask = U32x8;
  __m256 v;

  static F32x8 load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static F32x8 broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static F32x8 set(float a, float b, float c, float d, float e, float f, float g, float h) {
    return {_mm256_setr_ps(a, b, c, d, e, f, g, h)};
  }
  static F32x8 gather(const float* p, const int* idx) {
    return {_mm256_i32gather_ps(p, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), 4)};
  }
  static F32x8 gather_stride(const float* p, std::size_t stride) {
    return {_mm256_setr_ps(p[0], p[stride], p[2 * stride], p[3 * stride], p[4 * stride],
                           p[5 * stride], p[6 * stride], p[7 * stride])};
  }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  [[nodiscard]] float extract(int i) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    return tmp[i];
  }

  friend F32x8 operator+(F32x8 a, F32x8 b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend F32x8 operator-(F32x8 a, F32x8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend F32x8 operator*(F32x8 a, F32x8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend F32x8 operator/(F32x8 a, F32x8 b) { return {_mm256_div_ps(a.v, b.v)}; }

  [[nodiscard]] static F32x8 sqrt(F32x8 a) { return {_mm256_sqrt_ps(a.v)}; }
  [[nodiscard]] static F32x8 floor(F32x8 a) { return {_mm256_floor_ps(a.v)}; }
  // AVX vminps/vmaxps keep the SSE tie rule (return b on ties/NaN).
  [[nodiscard]] static F32x8 min(F32x8 a, F32x8 b) { return {_mm256_min_ps(a.v, b.v)}; }
  [[nodiscard]] static F32x8 max(F32x8 a, F32x8 b) { return {_mm256_max_ps(a.v, b.v)}; }
  // _CMP_*_OQ returns the same mask values as the SSE cmpgt/cmplt/cmpge
  // (signaling-ness only affects FP exception flags, never results).
  [[nodiscard]] static Mask gt(F32x8 a, F32x8 b) {
    return {_mm256_castps_si256(_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ))};
  }
  [[nodiscard]] static Mask lt(F32x8 a, F32x8 b) {
    return {_mm256_castps_si256(_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ))};
  }
  [[nodiscard]] static Mask ge(F32x8 a, F32x8 b) {
    return {_mm256_castps_si256(_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ))};
  }
  [[nodiscard]] static F32x8 abs(F32x8 a) {
    return {_mm256_and_ps(a.v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF)))};
  }
  [[nodiscard]] static F32x8 select(Mask m, F32x8 a, F32x8 b) {
    const __m256 mm = _mm256_castsi256_ps(m.v);
    return {_mm256_or_ps(_mm256_and_ps(mm, a.v), _mm256_andnot_ps(mm, b.v))};
  }
  [[nodiscard]] static U32x8 to_bits(F32x8 a) { return {_mm256_castps_si256(a.v)}; }
  [[nodiscard]] static F32x8 from_bits(U32x8 a) { return {_mm256_castsi256_ps(a.v)}; }
};

struct F64x4 {
  static constexpr int kLanes = 4;
  __m256d v;

  static F64x4 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static F64x4 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static F64x4 set(double a, double b, double c, double d) {
    return {_mm256_setr_pd(a, b, c, d)};
  }
  static F64x4 gather2f(const float* p, std::size_t stride) {
    return {_mm256_setr_pd(static_cast<double>(p[0]), static_cast<double>(p[stride]),
                           static_cast<double>(p[2 * stride]),
                           static_cast<double>(p[3 * stride]))};
  }
  static F64x4 load2f(const float* p) { return {_mm256_cvtps_pd(_mm_loadu_ps(p))}; }
  [[nodiscard]] static F64x4 select_gt(F64x4 v, F64x4 t, F64x4 x, F64x4 y) {
    return {_mm256_blendv_pd(y.v, x.v, _mm256_cmp_pd(v.v, t.v, _CMP_GT_OQ))};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  [[nodiscard]] double extract(int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  friend F64x4 operator+(F64x4 a, F64x4 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend F64x4 operator-(F64x4 a, F64x4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend F64x4 operator*(F64x4 a, F64x4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
};

#endif  // EECS_SIMD_AVX2

#if defined(EECS_SIMD_AVX512)

struct U32x16 {
  static constexpr int kLanes = 16;
  __m512i v;

  static U32x16 broadcast(std::uint32_t x) { return {_mm512_set1_epi32(static_cast<int>(x))}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    alignas(64) std::uint32_t tmp[16];
    _mm512_store_si512(tmp, v);
    return tmp[i];
  }

  friend U32x16 operator&(U32x16 a, U32x16 b) { return {_mm512_and_si512(a.v, b.v)}; }
  friend U32x16 operator|(U32x16 a, U32x16 b) { return {_mm512_or_si512(a.v, b.v)}; }
  friend U32x16 operator^(U32x16 a, U32x16 b) { return {_mm512_xor_si512(a.v, b.v)}; }
  friend U32x16 operator-(U32x16 a, U32x16 b) { return {_mm512_sub_epi32(a.v, b.v)}; }
  // AVX-512 compares produce k-masks; expand back to the full-width all-ones
  // vector masks of the narrower ISAs (masks double as DATA in the census
  // and atan2 kernels, so the representation is part of the contract).
  [[nodiscard]] static U32x16 cmpeq(U32x16 a, U32x16 b) {
    return {_mm512_maskz_set1_epi32(_mm512_cmpeq_epi32_mask(a.v, b.v), -1)};
  }
  [[nodiscard]] static U32x16 cmpgt_signed(U32x16 a, U32x16 b) {
    return {_mm512_maskz_set1_epi32(_mm512_cmpgt_epi32_mask(a.v, b.v), -1)};
  }
  [[nodiscard]] static bool any(U32x16 a) { return _mm512_test_epi32_mask(a.v, a.v) != 0; }
};

struct F32x16 {
  static constexpr int kLanes = 16;
  using Mask = U32x16;
  __m512 v;

  static F32x16 load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static F32x16 broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static F32x16 set(float a, float b, float c, float d, float e, float f, float g, float h,
                    float i, float j, float k, float l, float m, float n, float o, float q) {
    return {_mm512_setr_ps(a, b, c, d, e, f, g, h, i, j, k, l, m, n, o, q)};
  }
  static F32x16 gather(const float* p, const int* idx) {
    return {_mm512_i32gather_ps(_mm512_loadu_si512(idx), p, 4)};
  }
  static F32x16 gather_stride(const float* p, std::size_t stride) {
    alignas(64) float tmp[16];
    for (int i = 0; i < 16; ++i) tmp[i] = p[static_cast<std::size_t>(i) * stride];
    return {_mm512_load_ps(tmp)};
  }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  [[nodiscard]] float extract(int i) const {
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, v);
    return tmp[i];
  }

  friend F32x16 operator+(F32x16 a, F32x16 b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend F32x16 operator-(F32x16 a, F32x16 b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend F32x16 operator*(F32x16 a, F32x16 b) { return {_mm512_mul_ps(a.v, b.v)}; }
  friend F32x16 operator/(F32x16 a, F32x16 b) { return {_mm512_div_ps(a.v, b.v)}; }

  [[nodiscard]] static F32x16 sqrt(F32x16 a) { return {_mm512_sqrt_ps(a.v)}; }
  [[nodiscard]] static F32x16 floor(F32x16 a) {
    return {_mm512_roundscale_ps(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
  }
  // AVX-512 vminps/vmaxps keep the SSE tie rule (return b on ties/NaN).
  [[nodiscard]] static F32x16 min(F32x16 a, F32x16 b) { return {_mm512_min_ps(a.v, b.v)}; }
  [[nodiscard]] static F32x16 max(F32x16 a, F32x16 b) { return {_mm512_max_ps(a.v, b.v)}; }
  [[nodiscard]] static Mask gt(F32x16 a, F32x16 b) {
    return {_mm512_maskz_set1_epi32(_mm512_cmp_ps_mask(a.v, b.v, _CMP_GT_OQ), -1)};
  }
  [[nodiscard]] static Mask lt(F32x16 a, F32x16 b) {
    return {_mm512_maskz_set1_epi32(_mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ), -1)};
  }
  [[nodiscard]] static Mask ge(F32x16 a, F32x16 b) {
    return {_mm512_maskz_set1_epi32(_mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ), -1)};
  }
  [[nodiscard]] static F32x16 abs(F32x16 a) {
    return {_mm512_castsi512_ps(
        _mm512_and_si512(_mm512_castps_si512(a.v), _mm512_set1_epi32(0x7FFFFFFF)))};
  }
  // (m & a) | (~m & b) in one ternlog: imm 0xCA selects B where A else C.
  [[nodiscard]] static F32x16 select(Mask m, F32x16 a, F32x16 b) {
    return {_mm512_castsi512_ps(_mm512_ternarylogic_epi32(
        m.v, _mm512_castps_si512(a.v), _mm512_castps_si512(b.v), 0xCA))};
  }
  [[nodiscard]] static U32x16 to_bits(F32x16 a) { return {_mm512_castps_si512(a.v)}; }
  [[nodiscard]] static F32x16 from_bits(U32x16 a) { return {_mm512_castsi512_ps(a.v)}; }
};

struct F64x8 {
  static constexpr int kLanes = 8;
  __m512d v;

  static F64x8 load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static F64x8 broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static F64x8 set(double a, double b, double c, double d, double e, double f, double g,
                   double h) {
    return {_mm512_setr_pd(a, b, c, d, e, f, g, h)};
  }
  static F64x8 gather2f(const float* p, std::size_t stride) {
    alignas(64) double tmp[8];
    for (int i = 0; i < 8; ++i) {
      tmp[i] = static_cast<double>(p[static_cast<std::size_t>(i) * stride]);
    }
    return {_mm512_load_pd(tmp)};
  }
  static F64x8 load2f(const float* p) { return {_mm512_cvtps_pd(_mm256_loadu_ps(p))}; }
  [[nodiscard]] static F64x8 select_gt(F64x8 v, F64x8 t, F64x8 x, F64x8 y) {
    return {_mm512_mask_blend_pd(_mm512_cmp_pd_mask(v.v, t.v, _CMP_GT_OQ), y.v, x.v)};
  }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  [[nodiscard]] double extract(int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }

  friend F64x8 operator+(F64x8 a, F64x8 b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend F64x8 operator-(F64x8 a, F64x8 b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend F64x8 operator*(F64x8 a, F64x8 b) { return {_mm512_mul_pd(a.v, b.v)}; }
};

#endif  // EECS_SIMD_AVX512

// ---------------------------------------------------------------------------
// ISA tags and the runtime dispatcher. A tag bundles the pack types of one
// (width, native-or-emulated) combination; `dispatch(fn)` invokes fn with the
// tag matching the current runtime mode. All tags produce bit-identical
// results — the dispatcher only selects how fast they are computed.
// ---------------------------------------------------------------------------

struct IsaEmul128 {
  using F32 = F32xEmul<4>;
  using U32 = U32xEmul<4>;
  using F64 = F64xEmul<2>;
  static constexpr int kWidthBits = 128;
  static constexpr bool kIsNative = false;
};
struct IsaEmul256 {
  using F32 = F32xEmul<8>;
  using U32 = U32xEmul<8>;
  using F64 = F64xEmul<4>;
  static constexpr int kWidthBits = 256;
  static constexpr bool kIsNative = false;
};
struct IsaEmul512 {
  using F32 = F32xEmul<16>;
  using U32 = U32xEmul<16>;
  using F64 = F64xEmul<8>;
  static constexpr int kWidthBits = 512;
  static constexpr bool kIsNative = false;
};

#if defined(EECS_SIMD_SSE2) || defined(EECS_SIMD_NEON)
struct IsaNative128 {
  using F32 = F32x4;
  using U32 = U32x4;
  using F64 = F64x2;
  static constexpr int kWidthBits = 128;
  static constexpr bool kIsNative = true;
};
#endif
#if defined(EECS_SIMD_AVX2)
struct IsaNative256 {
  using F32 = F32x8;
  using U32 = U32x8;
  using F64 = F64x4;
  static constexpr int kWidthBits = 256;
  static constexpr bool kIsNative = true;
};
#endif
#if defined(EECS_SIMD_AVX512)
struct IsaNative512 {
  using F32 = F32x16;
  using U32 = U32x16;
  using F64 = F64x8;
  static constexpr int kWidthBits = 512;
  static constexpr bool kIsNative = true;
};
#endif

/// Invoke fn with the ISA tag of the current runtime mode. Native cases not
/// compiled into this binary are unreachable (current_dispatch() never
/// returns them); the default keeps the switch total.
template <class Fn>
decltype(auto) dispatch(Fn&& fn) {
  switch (current_dispatch()) {
#if defined(EECS_SIMD_AVX512)
    case Dispatch::kNative512:
      return fn(IsaNative512{});
#endif
#if defined(EECS_SIMD_AVX2)
    case Dispatch::kNative256:
      return fn(IsaNative256{});
#endif
#if defined(EECS_SIMD_SSE2) || defined(EECS_SIMD_NEON)
    case Dispatch::kNative128:
      return fn(IsaNative128{});
#endif
    case Dispatch::kEmul512:
      return fn(IsaEmul512{});
    case Dispatch::kEmul256:
      return fn(IsaEmul256{});
    case Dispatch::kEmul128:
    default:
      return fn(IsaEmul128{});
  }
}

/// Invoke fn once per ISA tag available in this binary (every emulation
/// width plus every compiled native width), regardless of the runtime mode.
/// Test and verification harnesses sweep kernels across widths with this.
template <class Fn>
void for_each_isa(Fn&& fn) {
  fn(IsaEmul128{});
  fn(IsaEmul256{});
  fn(IsaEmul512{});
#if defined(EECS_SIMD_SSE2) || defined(EECS_SIMD_NEON)
  fn(IsaNative128{});
#endif
#if defined(EECS_SIMD_AVX2)
  fn(IsaNative256{});
#endif
#if defined(EECS_SIMD_AVX512)
  fn(IsaNative512{});
#endif
}

}  // namespace eecs::simd
