// Bit-exact portable SIMD layer: fixed-virtual-width 128-bit packs.
//
// Every pack type exists in two interchangeable implementations with an
// identical API: a native one (SSE2 on x86, NEON on AArch64) and a scalar
// emulation (`*Emul`) that executes the very same lane-blocked order with
// plain scalar IEEE arithmetic. Kernels are written once, templated over the
// pack type, and dispatched at runtime on `simd::enabled()`:
//
//   template <class F4> void kernel_impl(...);           // lane-blocked body
//   if (simd::enabled()) kernel_impl<simd::F32x4>(...);  // native packs
//   else                 kernel_impl<simd::F32x4Emul>(...);
//
// The bit-exactness contract (same as the thread-pool layer, DESIGN.md "SIMD
// & portability"): a kernel may vectorize only ACROSS independent output
// chains — one output element (or one accumulator) per lane — and must never
// reassociate a single float/double reduction chain. Every pack operation is
// a deterministic per-lane IEEE-754 operation (add/sub/mul/div/min/max,
// correctly-rounded sqrt, exact floor), so the native and emulated builds,
// and every ISA, produce bit-identical results by construction. No FMA is
// ever emitted through this API (mul and add round separately, like the
// scalar code they replace).
//
// Runtime control mirrors the threads knob: `config.simd` (runners, via
// ScopedSimd) > `EECS_SIMD` env (0 = off, 1 = on) > compiled default (on when
// a native backend was compiled in). `EECS_SIMD_DISABLE` (CMake option
// EECS_SIMD_OFF) removes the native backend at compile time: F32x4 becomes
// the scalar emulation and the compiled default flips to off.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(EECS_SIMD_DISABLE)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define EECS_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define EECS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !EECS_SIMD_DISABLE

namespace eecs::simd {

/// Virtual vector width in bits; every backend packs 4 floats / 2 doubles.
inline constexpr int kF32Lanes = 4;
inline constexpr int kF64Lanes = 2;

/// True when a native (SSE2/NEON) backend was compiled in.
#if defined(EECS_SIMD_SSE2) || defined(EECS_SIMD_NEON)
inline constexpr bool kNativeBackend = true;
#else
inline constexpr bool kNativeBackend = false;
#endif

/// Compiled backend name: "sse2", "neon", or "scalar".
[[nodiscard]] const char* isa_name();

/// Active dispatch mode: `isa_name()` when enabled() and a native backend
/// exists, else "scalar".
[[nodiscard]] const char* dispatch_name();

/// Current runtime switch: the last set_enabled(0/1) override, else the
/// EECS_SIMD environment variable (0/1), else on iff a native backend was
/// compiled in. When no native backend exists this only selects which
/// identical-result code path runs.
[[nodiscard]] bool enabled();

/// Override the runtime switch; mode 1 = native packs, 0 = scalar emulation,
/// < 0 resets to the environment/compiled default. Returns the previous
/// override tri-state (-1 when none was active). Not thread-safe against
/// in-flight kernels — set it from the top of a run, like set_max_threads.
int set_enabled(int mode);

/// RAII switch override for a scope; the runners apply their `simd` config
/// field with this. mode < 0 leaves the global switch untouched.
class ScopedSimd {
 public:
  explicit ScopedSimd(int mode) : active_(mode >= 0), prev_(active_ ? set_enabled(mode) : 0) {}
  ~ScopedSimd() {
    if (active_) set_enabled(prev_);
  }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool active_;
  int prev_;
};

// ---------------------------------------------------------------------------
// Scalar emulation packs. These ARE the reference semantics: the native packs
// below implement exactly these per-lane operations.
// ---------------------------------------------------------------------------

struct U32x4Emul {
  std::uint32_t lane[4];

  static U32x4Emul broadcast(std::uint32_t x) { return {{x, x, x, x}}; }
  [[nodiscard]] std::uint32_t extract(int i) const { return lane[i]; }

  friend U32x4Emul operator&(U32x4Emul a, U32x4Emul b) {
    return {{a.lane[0] & b.lane[0], a.lane[1] & b.lane[1], a.lane[2] & b.lane[2],
             a.lane[3] & b.lane[3]}};
  }
  friend U32x4Emul operator|(U32x4Emul a, U32x4Emul b) {
    return {{a.lane[0] | b.lane[0], a.lane[1] | b.lane[1], a.lane[2] | b.lane[2],
             a.lane[3] | b.lane[3]}};
  }
  friend U32x4Emul operator^(U32x4Emul a, U32x4Emul b) {
    return {{a.lane[0] ^ b.lane[0], a.lane[1] ^ b.lane[1], a.lane[2] ^ b.lane[2],
             a.lane[3] ^ b.lane[3]}};
  }
  /// Wrapping 32-bit subtraction per lane (two's complement, like psubd).
  friend U32x4Emul operator-(U32x4Emul a, U32x4Emul b) {
    return {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1], a.lane[2] - b.lane[2],
             a.lane[3] - b.lane[3]}};
  }
  /// All-ones mask per lane where a == b.
  [[nodiscard]] static U32x4Emul cmpeq(U32x4Emul a, U32x4Emul b) {
    return {{a.lane[0] == b.lane[0] ? 0xFFFFFFFFu : 0u, a.lane[1] == b.lane[1] ? 0xFFFFFFFFu : 0u,
             a.lane[2] == b.lane[2] ? 0xFFFFFFFFu : 0u, a.lane[3] == b.lane[3] ? 0xFFFFFFFFu : 0u}};
  }
  /// All-ones mask per lane where a > b as SIGNED 32-bit ints (like pcmpgtd).
  [[nodiscard]] static U32x4Emul cmpgt_signed(U32x4Emul a, U32x4Emul b) {
    const auto s = [](std::uint32_t u) { return static_cast<std::int32_t>(u); };
    return {{s(a.lane[0]) > s(b.lane[0]) ? 0xFFFFFFFFu : 0u,
             s(a.lane[1]) > s(b.lane[1]) ? 0xFFFFFFFFu : 0u,
             s(a.lane[2]) > s(b.lane[2]) ? 0xFFFFFFFFu : 0u,
             s(a.lane[3]) > s(b.lane[3]) ? 0xFFFFFFFFu : 0u}};
  }
  /// True when any lane is nonzero (mask "is any lane set").
  [[nodiscard]] static bool any(U32x4Emul a) {
    return (a.lane[0] | a.lane[1] | a.lane[2] | a.lane[3]) != 0u;
  }
};

struct F32x4Emul {
  using Mask = U32x4Emul;
  float lane[4];

  static F32x4Emul load(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static F32x4Emul broadcast(float x) { return {{x, x, x, x}}; }
  static F32x4Emul set(float a, float b, float c, float d) { return {{a, b, c, d}}; }
  void store(float* p) const {
    p[0] = lane[0];
    p[1] = lane[1];
    p[2] = lane[2];
    p[3] = lane[3];
  }
  [[nodiscard]] float extract(int i) const { return lane[i]; }

  friend F32x4Emul operator+(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1], a.lane[2] + b.lane[2],
             a.lane[3] + b.lane[3]}};
  }
  friend F32x4Emul operator-(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1], a.lane[2] - b.lane[2],
             a.lane[3] - b.lane[3]}};
  }
  friend F32x4Emul operator*(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1], a.lane[2] * b.lane[2],
             a.lane[3] * b.lane[3]}};
  }
  friend F32x4Emul operator/(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] / b.lane[0], a.lane[1] / b.lane[1], a.lane[2] / b.lane[2],
             a.lane[3] / b.lane[3]}};
  }

  /// Correctly-rounded per-lane square root (IEEE-754, matches std::sqrt).
  [[nodiscard]] static F32x4Emul sqrt(F32x4Emul a) {
    return {{std::sqrt(a.lane[0]), std::sqrt(a.lane[1]), std::sqrt(a.lane[2]),
             std::sqrt(a.lane[3])}};
  }
  /// Exact per-lane floor; callers keep |x| < 2^31 (the SSE2 emulation goes
  /// through a 32-bit truncating convert).
  [[nodiscard]] static F32x4Emul floor(F32x4Emul a) {
    return {{std::floor(a.lane[0]), std::floor(a.lane[1]), std::floor(a.lane[2]),
             std::floor(a.lane[3])}};
  }
  /// min/max use the SSE tie rule — return b unless a is strictly
  /// less/greater — so ties (incl. ±0.0) and unordered operands are bit-exact
  /// in every backend (NEON implements them as compare + select).
  [[nodiscard]] static F32x4Emul min(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] < b.lane[0] ? a.lane[0] : b.lane[0],
             a.lane[1] < b.lane[1] ? a.lane[1] : b.lane[1],
             a.lane[2] < b.lane[2] ? a.lane[2] : b.lane[2],
             a.lane[3] < b.lane[3] ? a.lane[3] : b.lane[3]}};
  }
  [[nodiscard]] static F32x4Emul max(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] > b.lane[0] ? a.lane[0] : b.lane[0],
             a.lane[1] > b.lane[1] ? a.lane[1] : b.lane[1],
             a.lane[2] > b.lane[2] ? a.lane[2] : b.lane[2],
             a.lane[3] > b.lane[3] ? a.lane[3] : b.lane[3]}};
  }
  /// All-ones mask per lane where a > b (ordered, like the scalar >).
  [[nodiscard]] static Mask gt(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] > b.lane[0] ? 0xFFFFFFFFu : 0u, a.lane[1] > b.lane[1] ? 0xFFFFFFFFu : 0u,
             a.lane[2] > b.lane[2] ? 0xFFFFFFFFu : 0u, a.lane[3] > b.lane[3] ? 0xFFFFFFFFu : 0u}};
  }
  /// All-ones mask per lane where a < b (ordered).
  [[nodiscard]] static Mask lt(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] < b.lane[0] ? 0xFFFFFFFFu : 0u, a.lane[1] < b.lane[1] ? 0xFFFFFFFFu : 0u,
             a.lane[2] < b.lane[2] ? 0xFFFFFFFFu : 0u, a.lane[3] < b.lane[3] ? 0xFFFFFFFFu : 0u}};
  }
  /// All-ones mask per lane where a >= b (ordered).
  [[nodiscard]] static Mask ge(F32x4Emul a, F32x4Emul b) {
    return {{a.lane[0] >= b.lane[0] ? 0xFFFFFFFFu : 0u, a.lane[1] >= b.lane[1] ? 0xFFFFFFFFu : 0u,
             a.lane[2] >= b.lane[2] ? 0xFFFFFFFFu : 0u, a.lane[3] >= b.lane[3] ? 0xFFFFFFFFu : 0u}};
  }
  /// Per-lane |x|: clears the sign bit (bitwise, so NaN payloads pass through).
  [[nodiscard]] static F32x4Emul abs(F32x4Emul a) {
    const auto m = [](float f) {
      return std::bit_cast<float>(std::bit_cast<std::uint32_t>(f) & 0x7FFFFFFFu);
    };
    return {{m(a.lane[0]), m(a.lane[1]), m(a.lane[2]), m(a.lane[3])}};
  }
  /// Bitwise blend: lanes of a where the mask bits are set, b elsewhere
  /// ((m & a) | (~m & b) on the raw bits, like SSE and/andnot/or or NEON bsl).
  [[nodiscard]] static F32x4Emul select(Mask m, F32x4Emul a, F32x4Emul b) {
    const auto blend = [](std::uint32_t mm, float fa, float fb) {
      return std::bit_cast<float>((mm & std::bit_cast<std::uint32_t>(fa)) |
                                  (~mm & std::bit_cast<std::uint32_t>(fb)));
    };
    return {{blend(m.lane[0], a.lane[0], b.lane[0]), blend(m.lane[1], a.lane[1], b.lane[1]),
             blend(m.lane[2], a.lane[2], b.lane[2]), blend(m.lane[3], a.lane[3], b.lane[3])}};
  }
  /// Raw IEEE-754 bit pattern per lane, and its inverse.
  [[nodiscard]] static U32x4Emul to_bits(F32x4Emul a) {
    return {{std::bit_cast<std::uint32_t>(a.lane[0]), std::bit_cast<std::uint32_t>(a.lane[1]),
             std::bit_cast<std::uint32_t>(a.lane[2]), std::bit_cast<std::uint32_t>(a.lane[3])}};
  }
  [[nodiscard]] static F32x4Emul from_bits(U32x4Emul a) {
    return {{std::bit_cast<float>(a.lane[0]), std::bit_cast<float>(a.lane[1]),
             std::bit_cast<float>(a.lane[2]), std::bit_cast<float>(a.lane[3])}};
  }
};

/// In-place 4x4 transpose: rows (a,b,c,d) become columns. Used to turn 4
/// contiguous loads into per-lane "one output each" layouts (ACF block sums).
inline void transpose4(F32x4Emul& a, F32x4Emul& b, F32x4Emul& c, F32x4Emul& d) {
  const F32x4Emul ta = {{a.lane[0], b.lane[0], c.lane[0], d.lane[0]}};
  const F32x4Emul tb = {{a.lane[1], b.lane[1], c.lane[1], d.lane[1]}};
  const F32x4Emul tc = {{a.lane[2], b.lane[2], c.lane[2], d.lane[2]}};
  const F32x4Emul td = {{a.lane[3], b.lane[3], c.lane[3], d.lane[3]}};
  a = ta;
  b = tb;
  c = tc;
  d = td;
}

struct F64x2Emul {
  double lane[2];

  static F64x2Emul load(const double* p) { return {{p[0], p[1]}}; }
  static F64x2Emul broadcast(double x) { return {{x, x}}; }
  static F64x2Emul set(double lo, double hi) { return {{lo, hi}}; }
  /// Two strided float loads widened to double: {double(p[0]),
  /// double(p[stride])}. The score-map kernels gather adjacent windows with
  /// this (their descriptors sit `stride` floats apart).
  static F64x2Emul gather2f(const float* p, std::size_t stride) {
    return {{static_cast<double>(p[0]), static_cast<double>(p[stride])}};
  }
  void store(double* p) const {
    p[0] = lane[0];
    p[1] = lane[1];
  }
  [[nodiscard]] double extract(int i) const { return lane[i]; }

  friend F64x2Emul operator+(F64x2Emul a, F64x2Emul b) {
    return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1]}};
  }
  friend F64x2Emul operator-(F64x2Emul a, F64x2Emul b) {
    return {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1]}};
  }
  friend F64x2Emul operator*(F64x2Emul a, F64x2Emul b) {
    return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1]}};
  }
};

// ---------------------------------------------------------------------------
// Native backends. Each implements the exact per-lane semantics above.
// ---------------------------------------------------------------------------

#if defined(EECS_SIMD_SSE2)

struct U32x4 {
  __m128i v;

  static U32x4 broadcast(std::uint32_t x) { return {_mm_set1_epi32(static_cast<int>(x))}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    alignas(16) std::uint32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }

  friend U32x4 operator&(U32x4 a, U32x4 b) { return {_mm_and_si128(a.v, b.v)}; }
  friend U32x4 operator|(U32x4 a, U32x4 b) { return {_mm_or_si128(a.v, b.v)}; }
  friend U32x4 operator^(U32x4 a, U32x4 b) { return {_mm_xor_si128(a.v, b.v)}; }
  friend U32x4 operator-(U32x4 a, U32x4 b) { return {_mm_sub_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpeq(U32x4 a, U32x4 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpgt_signed(U32x4 a, U32x4 b) { return {_mm_cmpgt_epi32(a.v, b.v)}; }
  [[nodiscard]] static bool any(U32x4 a) {
    return _mm_movemask_epi8(_mm_cmpeq_epi32(a.v, _mm_setzero_si128())) != 0xFFFF;
  }
};

struct F32x4 {
  using Mask = U32x4;
  __m128 v;

  static F32x4 load(const float* p) { return {_mm_loadu_ps(p)}; }
  static F32x4 broadcast(float x) { return {_mm_set1_ps(x)}; }
  static F32x4 set(float a, float b, float c, float d) { return {_mm_setr_ps(a, b, c, d)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  [[nodiscard]] float extract(int i) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    return tmp[i];
  }

  friend F32x4 operator+(F32x4 a, F32x4 b) { return {_mm_add_ps(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {_mm_div_ps(a.v, b.v)}; }

  [[nodiscard]] static F32x4 sqrt(F32x4 a) { return {_mm_sqrt_ps(a.v)}; }
  [[nodiscard]] static F32x4 floor(F32x4 a) {
#if defined(__SSE4_1__)
    return {_mm_floor_ps(a.v)};
#else
    // trunc(x), then subtract 1 where trunc rounded towards zero past the
    // floor (negative non-integers), then restore the sign bit so
    // floor(-0.0) == -0.0 (a no-op on every other input: the result already
    // carries x's sign when nonzero). Exact for |x| < 2^31.
    const __m128 t = _mm_cvtepi32_ps(_mm_cvttps_epi32(a.v));
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 f = _mm_sub_ps(t, _mm_and_ps(_mm_cmpgt_ps(t, a.v), one));
    const __m128 sign = _mm_set1_ps(-0.0f);
    return {_mm_or_ps(f, _mm_and_ps(a.v, sign))};
#endif
  }
  [[nodiscard]] static F32x4 min(F32x4 a, F32x4 b) { return {_mm_min_ps(a.v, b.v)}; }
  [[nodiscard]] static F32x4 max(F32x4 a, F32x4 b) { return {_mm_max_ps(a.v, b.v)}; }
  [[nodiscard]] static Mask gt(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmpgt_ps(a.v, b.v))};
  }
  [[nodiscard]] static Mask lt(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmplt_ps(a.v, b.v))};
  }
  [[nodiscard]] static Mask ge(F32x4 a, F32x4 b) {
    return {_mm_castps_si128(_mm_cmpge_ps(a.v, b.v))};
  }
  [[nodiscard]] static F32x4 abs(F32x4 a) {
    return {_mm_and_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF)))};
  }
  [[nodiscard]] static F32x4 select(Mask m, F32x4 a, F32x4 b) {
    const __m128 mm = _mm_castsi128_ps(m.v);
    return {_mm_or_ps(_mm_and_ps(mm, a.v), _mm_andnot_ps(mm, b.v))};
  }
  [[nodiscard]] static U32x4 to_bits(F32x4 a) { return {_mm_castps_si128(a.v)}; }
  [[nodiscard]] static F32x4 from_bits(U32x4 a) { return {_mm_castsi128_ps(a.v)}; }
};

inline void transpose4(F32x4& a, F32x4& b, F32x4& c, F32x4& d) {
  _MM_TRANSPOSE4_PS(a.v, b.v, c.v, d.v);
}

struct F64x2 {
  __m128d v;

  static F64x2 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static F64x2 broadcast(double x) { return {_mm_set1_pd(x)}; }
  static F64x2 set(double lo, double hi) { return {_mm_setr_pd(lo, hi)}; }
  static F64x2 gather2f(const float* p, std::size_t stride) {
    return {_mm_setr_pd(static_cast<double>(p[0]), static_cast<double>(p[stride]))};
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  [[nodiscard]] double extract(int i) const {
    return i == 0 ? _mm_cvtsd_f64(v) : _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
  }

  friend F64x2 operator+(F64x2 a, F64x2 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend F64x2 operator-(F64x2 a, F64x2 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend F64x2 operator*(F64x2 a, F64x2 b) { return {_mm_mul_pd(a.v, b.v)}; }
};

#elif defined(EECS_SIMD_NEON)

struct U32x4 {
  uint32x4_t v;

  static U32x4 broadcast(std::uint32_t x) { return {vdupq_n_u32(x)}; }
  [[nodiscard]] std::uint32_t extract(int i) const {
    std::uint32_t tmp[4];
    vst1q_u32(tmp, v);
    return tmp[i];
  }

  friend U32x4 operator&(U32x4 a, U32x4 b) { return {vandq_u32(a.v, b.v)}; }
  friend U32x4 operator|(U32x4 a, U32x4 b) { return {vorrq_u32(a.v, b.v)}; }
  friend U32x4 operator^(U32x4 a, U32x4 b) { return {veorq_u32(a.v, b.v)}; }
  friend U32x4 operator-(U32x4 a, U32x4 b) { return {vsubq_u32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpeq(U32x4 a, U32x4 b) { return {vceqq_u32(a.v, b.v)}; }
  [[nodiscard]] static U32x4 cmpgt_signed(U32x4 a, U32x4 b) {
    return {vcgtq_s32(vreinterpretq_s32_u32(a.v), vreinterpretq_s32_u32(b.v))};
  }
  [[nodiscard]] static bool any(U32x4 a) { return vmaxvq_u32(a.v) != 0u; }
};

struct F32x4 {
  using Mask = U32x4;
  float32x4_t v;

  static F32x4 load(const float* p) { return {vld1q_f32(p)}; }
  static F32x4 broadcast(float x) { return {vdupq_n_f32(x)}; }
  static F32x4 set(float a, float b, float c, float d) {
    const float tmp[4] = {a, b, c, d};
    return {vld1q_f32(tmp)};
  }
  void store(float* p) const { vst1q_f32(p, v); }
  [[nodiscard]] float extract(int i) const {
    float tmp[4];
    vst1q_f32(tmp, v);
    return tmp[i];
  }

  friend F32x4 operator+(F32x4 a, F32x4 b) { return {vaddq_f32(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {vsubq_f32(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {vmulq_f32(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {vdivq_f32(a.v, b.v)}; }

  [[nodiscard]] static F32x4 sqrt(F32x4 a) { return {vsqrtq_f32(a.v)}; }
  [[nodiscard]] static F32x4 floor(F32x4 a) { return {vrndmq_f32(a.v)}; }
  // Compare + select, not vminq/vmaxq: NEON's native min/max disagree with
  // the SSE tie rule on ±0.0 and NaN, and the contract is bit-exactness.
  [[nodiscard]] static F32x4 min(F32x4 a, F32x4 b) {
    return {vbslq_f32(vcltq_f32(a.v, b.v), a.v, b.v)};
  }
  [[nodiscard]] static F32x4 max(F32x4 a, F32x4 b) {
    return {vbslq_f32(vcgtq_f32(a.v, b.v), a.v, b.v)};
  }
  [[nodiscard]] static Mask gt(F32x4 a, F32x4 b) { return {vcgtq_f32(a.v, b.v)}; }
  [[nodiscard]] static Mask lt(F32x4 a, F32x4 b) { return {vcltq_f32(a.v, b.v)}; }
  [[nodiscard]] static Mask ge(F32x4 a, F32x4 b) { return {vcgeq_f32(a.v, b.v)}; }
  // Bitwise sign clear (NOT vabsq_f32: that is also bitwise, but spell the
  // contract out) so NaN payloads pass through unchanged.
  [[nodiscard]] static F32x4 abs(F32x4 a) {
    return {vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(a.v), vdupq_n_u32(0x7FFFFFFFu)))};
  }
  [[nodiscard]] static F32x4 select(Mask m, F32x4 a, F32x4 b) {
    return {vbslq_f32(m.v, a.v, b.v)};
  }
  [[nodiscard]] static U32x4 to_bits(F32x4 a) { return {vreinterpretq_u32_f32(a.v)}; }
  [[nodiscard]] static F32x4 from_bits(U32x4 a) { return {vreinterpretq_f32_u32(a.v)}; }
};

inline void transpose4(F32x4& a, F32x4& b, F32x4& c, F32x4& d) {
  const float32x4x2_t ab = vtrnq_f32(a.v, b.v);
  const float32x4x2_t cd = vtrnq_f32(c.v, d.v);
  a.v = vcombine_f32(vget_low_f32(ab.val[0]), vget_low_f32(cd.val[0]));
  b.v = vcombine_f32(vget_low_f32(ab.val[1]), vget_low_f32(cd.val[1]));
  c.v = vcombine_f32(vget_high_f32(ab.val[0]), vget_high_f32(cd.val[0]));
  d.v = vcombine_f32(vget_high_f32(ab.val[1]), vget_high_f32(cd.val[1]));
}

struct F64x2 {
  float64x2_t v;

  static F64x2 load(const double* p) { return {vld1q_f64(p)}; }
  static F64x2 broadcast(double x) { return {vdupq_n_f64(x)}; }
  static F64x2 set(double lo, double hi) {
    const double tmp[2] = {lo, hi};
    return {vld1q_f64(tmp)};
  }
  static F64x2 gather2f(const float* p, std::size_t stride) {
    return set(static_cast<double>(p[0]), static_cast<double>(p[stride]));
  }
  void store(double* p) const { vst1q_f64(p, v); }
  [[nodiscard]] double extract(int i) const {
    double tmp[2];
    vst1q_f64(tmp, v);
    return tmp[i];
  }

  friend F64x2 operator+(F64x2 a, F64x2 b) { return {vaddq_f64(a.v, b.v)}; }
  friend F64x2 operator-(F64x2 a, F64x2 b) { return {vsubq_f64(a.v, b.v)}; }
  friend F64x2 operator*(F64x2 a, F64x2 b) { return {vmulq_f64(a.v, b.v)}; }
};

#else  // scalar-only build: the native names alias the emulation.

using U32x4 = U32x4Emul;
using F32x4 = F32x4Emul;
using F64x2 = F64x2Emul;

#endif

}  // namespace eecs::simd
