// Portable, vectorizable atan2f that is bit-exact with the fdlibm float
// atan2 (glibc's sysdeps/ieee754/flt-32 e_atan2f/s_atanf, derived from Sun's
// fdlibm, whose license freely grants use/copy/modify/distribute).
//
// Why vendor a libm function: the gradient-orientation kernel is the hottest
// scalar loop in the detector stack, and std::atan2(float, float) is (a) an
// opaque call the pack layer cannot vectorize and (b) a per-libm-version
// result — glibc switched float transcendentals to correctly-rounded
// implementations after 2.36, so goldens computed through libm would not be
// portable across hosts. Freezing the exact fdlibm evaluation order here
// makes orientation both lane-parallel and host-independent; the committed
// goldens are fdlibm values and stay bit-identical everywhere.
//
// `atan2f_portable` is the scalar reference: the same float operation
// sequence fdlibm executes, boundary-for-boundary (the bit-pattern range
// checks are kept as in the original; they are equivalent to float compares
// for the finite nonnegative reduced argument, which is what the pack kernel
// exploits). `atan2f_pack<F4>` evaluates four quotients at once with
// mask/select lane classification — every lane runs the one polynomial, the
// per-interval argument reductions are blended in, and the rare special
// operands (zeros, infinities, NaNs) fall back to the scalar reference
// per lane. Both entry points produce identical bits for every input pair
// (tests/test_simd.cpp sweeps this; tools/atan2_exhaustive proves the scalar
// replica against a fdlibm host libm over all 2^32 single-argument patterns).
#pragma once

#include <bit>
#include <cstdint>

#include "common/simd.hpp"

namespace eecs::simd {

namespace atan_detail {

inline constexpr float f32(std::uint32_t bits) { return std::bit_cast<float>(bits); }

// atanf coefficients (fdlibm s_atanf): atan_hi/atan_lo anchor values for the
// four reduction intervals, the even-power polynomial aT[0,2,..,10], and the
// odd-power chain, written exactly as fdlibm evaluates it (a fused
// multiply-subtract sequence starting from -aT[9]).
inline constexpr float kAtanHi[4] = {f32(0x3EED6338u), f32(0x3F490FDAu), f32(0x3F7B985Eu),
                                     f32(0x3FC90FDAu)};
inline constexpr float kAtanLo[4] = {f32(0x31AC3769u), f32(0x33222168u), f32(0x33140FB4u),
                                     f32(0x33A22168u)};
inline constexpr float kA0 = f32(0x3EAAAAABu);   // aT[0]  =  3.3333334327e-01
inline constexpr float kA2 = f32(0x3E124925u);   // aT[2]  =  1.4285714924e-01
inline constexpr float kA4 = f32(0x3DBA2E6Eu);   // aT[4]  =  9.0908870101e-02
inline constexpr float kA6 = f32(0x3D886B35u);   // aT[6]  =  6.6610731184e-02
inline constexpr float kA8 = f32(0x3D4BDA59u);   // aT[8]  =  4.9768779427e-02
inline constexpr float kA10 = f32(0x3C8569D7u);  // aT[10] =  1.6285819933e-02
inline constexpr float kB9 = f32(0xBD15A221u);   // -aT[9], the chain's seed
inline constexpr float kB7 = f32(0x3D6EF16Bu);   // -aT[7]
inline constexpr float kB5 = f32(0x3D9D8795u);   // -aT[5]
inline constexpr float kB3 = f32(0x3DE38E38u);   // -aT[3]
inline constexpr float kB1 = f32(0x3E4CCCCDu);   // -aT[1]

// atan2f constants (fdlibm e_atan2f).
inline constexpr float kTiny = f32(0x0DA24260u);       // 1.0e-30
inline constexpr float kPiO4 = f32(0x3F490FDBu);       // pi/4
inline constexpr float kPiO2 = f32(0x3FC90FDBu);       // pi/2
inline constexpr float kPi = f32(0x40490FDBu);         // pi
inline constexpr float kPiLoNeg = f32(0x33BBBD2Eu);    // -pi_lo =  8.7422776573e-08
inline constexpr float kPiLoNegH = f32(0x333BBD2Eu);   // -pi_lo/2

/// fdlibm s_atanf, restricted to the bit-identical op sequence. Handles the
/// full float range including NaN and infinities.
inline float atanf_fdlibm(float x) {
  const std::uint32_t hx = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t ix = hx & 0x7FFFFFFFu;
  if (ix >= 0x4C000000u) {  // |x| >= 2^25: atan saturates (or NaN)
    if (ix > 0x7F800000u) return x + x;
    if ((hx >> 31) == 0u) return kAtanHi[3] + kAtanLo[3];
    return -kAtanHi[3] - kAtanLo[3];
  }
  int id;
  float t;
  if (ix < 0x3EE00000u) {      // |x| < 0.4375
    if (ix <= 0x30FFFFFFu) {   // |x| < 2^-29: atan(x) rounds to x
      return x;
    }
    id = -1;
    t = x;
  } else {
    t = x < 0.0f ? -x : x;
    if (ix < 0x3F300000u) {  // |x| < 0.6875
      id = 0;
      t = ((t + t) - 1.0f) / (2.0f + t);
    } else if (ix < 0x3F980000u) {  // |x| < 1.1875
      id = 1;
      t = (t - 1.0f) / (t + 1.0f);
    } else if (ix < 0x401C0000u) {  // |x| < 2.4375
      id = 2;
      t = (t - 1.5f) / (1.5f * t + 1.0f);
    } else {
      id = 3;
      t = -1.0f / t;
    }
  }
  const float z = t * t;
  const float w = z * z;
  // Odd/even split exactly as fdlibm orders it.
  const float s1 = z * (kA0 + w * (kA2 + w * (kA4 + w * (kA6 + w * (kA8 + w * kA10)))));
  float p = kB9;
  p = p * w - kB7;
  p = p * w - kB5;
  p = p * w - kB3;
  p = p * w - kB1;
  const float s2 = p * w;
  const float poly = (s1 + s2) * t;
  if (id < 0) return t - poly;
  const float r = kAtanHi[id] - ((poly - kAtanLo[id]) - t);
  return (hx >> 31) ? std::bit_cast<float>(std::bit_cast<std::uint32_t>(r) ^ 0x80000000u) : r;
}

}  // namespace atan_detail

/// fdlibm e_atan2f: bit-exact scalar replica over the full float x float
/// domain (zeros, infinities, NaNs, denormals included).
inline float atan2f_portable(float y, float x) {
  using namespace atan_detail;
  const std::uint32_t hx = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t hy = std::bit_cast<std::uint32_t>(y);
  const std::uint32_t ix = hx & 0x7FFFFFFFu;
  const std::uint32_t iy = hy & 0x7FFFFFFFu;
  // NaN operands propagate x's payload first (the addss operand order the
  // glibc build compiled fdlibm's `x+y` into).
  if (ix > 0x7F800000u) return x + x;
  if (iy > 0x7F800000u) return y + y;
  // Quadrant selector: bit 0 = sign(y), bit 1 = sign(x).
  const unsigned m = ((hx >> 30) & 2u) | (hy >> 31);
  if (iy == 0u) {  // y = +-0
    switch (m) {
      case 0u:
      case 1u:
        return y;  // atan(+-0, +anything) = +-0
      case 2u:
        return kPi + kTiny;  // atan(+0, -anything) = pi
      default:
        return -kPi - kTiny;  // atan(-0, -anything) = -pi
    }
  }
  if (ix == 0u) {  // x = +-0, y != 0
    return (hy >> 31) ? -kPiO2 - kTiny : kPiO2 + kTiny;
  }
  if (ix == 0x7F800000u) {  // x infinite
    if (iy == 0x7F800000u) {
      switch (m) {
        case 0u:
          return kPiO4 + kTiny;  // atan(+inf, +inf)
        case 1u:
          return -kPiO4 - kTiny;
        case 2u:
          return 3.0f * kPiO4 + kTiny;  // atan(+inf, -inf)
        default:
          return -3.0f * kPiO4 - kTiny;
      }
    }
    switch (m) {
      case 0u:
        return 0.0f;  // atan(+finite, +inf)
      case 1u:
        return -0.0f;
      case 2u:
        return kPi + kTiny;  // atan(+finite, -inf)
      default:
        return -kPi - kTiny;
    }
  }
  if (iy == 0x7F800000u) {  // y infinite, x finite
    return (hy >> 31) ? -kPiO2 - kTiny : kPiO2 + kTiny;
  }
  // |y/x| as an exponent difference; the quotient itself cannot overflow
  // below because k <= 60 bounds it by ~2^61.
  const int k = static_cast<std::int32_t>(iy - ix) >> 23;
  float z;
  if (k > 60) {
    z = kPiO2 - kPiLoNegH;  // |y/x| > 2^60: atan saturates to pi/2
  } else if ((hx >> 31) && k < -60) {
    z = 0.0f;  // |y| <<< |x| (x < 0): atan underflows to 0
  } else {
    const float q = y / x;
    // fabsf must be a sign-bit clear: the quotient can underflow to -0.0.
    z = atan_detail::atanf_fdlibm(
        std::bit_cast<float>(std::bit_cast<std::uint32_t>(q) & 0x7FFFFFFFu));
  }
  switch (m) {
    case 0u:
      return z;  // atan(+, +)
    case 1u:
      return std::bit_cast<float>(std::bit_cast<std::uint32_t>(z) ^ 0x80000000u);
    case 2u:
      return kPi - (z + kPiLoNeg);  // atan(+, -)
    default:
      return (z + kPiLoNeg) - kPi;  // atan(-, -)
  }
}

/// Four atan2f_portable evaluations per call, bit-identical to the scalar
/// reference in every lane. The pack body classifies the reduced argument
/// with compare masks and blends the per-interval reductions; lanes holding
/// a zero, infinite, or NaN operand are recomputed through the scalar
/// reference (they never occur in the gradient kernels' interiors, so the
/// branch is cold there).
template <class F4>
F4 atan2f_pack(F4 y, F4 x) {
  using namespace atan_detail;
  using U = typename F4::Mask;
  const U abs_mask = U::broadcast(0x7FFFFFFFu);
  const U uy = F4::to_bits(y);
  const U ux = F4::to_bits(x);
  const U iy = uy & abs_mask;
  const U ix = ux & abs_mask;
  // Special lanes needing the scalar reference: infinities and NaNs only.
  // Zero operands — common in the gradient kernels, where flat image regions
  // make gx or gy exactly 0 — are handled with blends below, so they no
  // longer force the per-lane fallback. (All the remaining bit patterns are
  // positive as signed ints, so cmpgt_signed is an unsigned compare here.)
  const U zero_bits = U::broadcast(0u);
  const U max_finite = U::broadcast(0x7F7FFFFFu);
  const U special =
      U::cmpgt_signed(iy, max_finite) | U::cmpgt_signed(ix, max_finite);
  const U y_zero = U::cmpeq(iy, zero_bits);
  const U x_zero = U::cmpeq(ix, zero_bits);

  const F4 one = F4::broadcast(1.0f);
  // Keep the (discarded) special and zero-operand lanes division-safe.
  const F4 x_safe = F4::select(special | y_zero | x_zero, one, x);
  const F4 q = F4::abs(y / x_safe);  // fabsf(y/x), the atanf argument

  // atanf interval classification on q >= 0 — float compares are exactly the
  // fdlibm bit-range tests for finite nonnegative arguments.
  const U lt_04375 = F4::lt(q, F4::broadcast(0.4375f));
  const U lt_06875 = F4::lt(q, F4::broadcast(0.6875f));
  const U lt_11875 = F4::lt(q, F4::broadcast(1.1875f));
  const U lt_24375 = F4::lt(q, F4::broadcast(2.4375f));
  const U huge = F4::ge(q, F4::broadcast(33554432.0f));  // q >= 2^25

  // Blended argument reduction: every lane evaluates its interval's t with
  // the identical scalar op order. The |q| < 2^-29 "return q" shortcut needs
  // no mask — the id=-1 polynomial path reproduces q bit-exactly there (the
  // correction term falls below half an ulp of q).
  const F4 num = F4::select(
      lt_04375, q,
      F4::select(lt_06875, (q + q) - one,
                 F4::select(lt_11875, q - one,
                            F4::select(lt_24375, q - F4::broadcast(1.5f), F4::broadcast(-1.0f)))));
  const F4 den = F4::select(
      lt_04375, one,
      F4::select(lt_06875, F4::broadcast(2.0f) + q,
                 F4::select(lt_11875, q + one,
                            F4::select(lt_24375, F4::broadcast(1.5f) * q + one, q))));
  const F4 t = num / den;

  const F4 z2 = t * t;
  const F4 w = z2 * z2;
  const F4 s1 =
      z2 * (F4::broadcast(kA0) +
            w * (F4::broadcast(kA2) +
                 w * (F4::broadcast(kA4) +
                      w * (F4::broadcast(kA6) +
                           w * (F4::broadcast(kA8) + w * F4::broadcast(kA10))))));
  F4 p = F4::broadcast(kB9);
  p = p * w - F4::broadcast(kB7);
  p = p * w - F4::broadcast(kB5);
  p = p * w - F4::broadcast(kB3);
  p = p * w - F4::broadcast(kB1);
  const F4 s2 = p * w;
  const F4 poly = (s1 + s2) * t;

  const F4 hi = F4::select(
      lt_06875, F4::broadcast(kAtanHi[0]),
      F4::select(lt_11875, F4::broadcast(kAtanHi[1]),
                 F4::select(lt_24375, F4::broadcast(kAtanHi[2]), F4::broadcast(kAtanHi[3]))));
  const F4 lo = F4::select(
      lt_06875, F4::broadcast(kAtanLo[0]),
      F4::select(lt_11875, F4::broadcast(kAtanLo[1]),
                 F4::select(lt_24375, F4::broadcast(kAtanLo[2]), F4::broadcast(kAtanLo[3]))));
  F4 z = F4::select(lt_04375, t - poly, hi - ((poly - lo) - t));
  z = F4::select(huge, F4::broadcast(kAtanHi[3] + kAtanLo[3]), z);

  // fdlibm's exponent-difference guards: |y/x| > ~2^60 saturates to pi/2
  // before the division result could overflow; |y/x| < ~2^-60 with x < 0
  // flushes atan to zero. Two's-complement compares on the raw bits.
  const U expdiff = iy - ix;
  const U k_big = U::cmpgt_signed(expdiff, U::broadcast(0x1E7FFFFFu));
  const U k_small = U::cmpgt_signed(U::broadcast(0xE2000000u), expdiff);  // diff < -60 * 2^23
  const F4 fzero = F4::broadcast(0.0f);
  const U x_neg = F4::lt(x, fzero);
  const U y_neg = F4::lt(y, fzero);
  z = F4::select(k_big, F4::broadcast(kPiO2 - kPiLoNegH), z);
  z = F4::select(k_small & x_neg, fzero, z);

  // Quadrant fix-up, the four fdlibm cases as two nested blends.
  const F4 zpl = z + F4::broadcast(kPiLoNeg);  // z - pi_lo
  const F4 pi = F4::broadcast(kPi);
  const F4 neg_z = F4::from_bits(F4::to_bits(z) ^ U::broadcast(0x80000000u));
  const F4 when_x_neg = F4::select(y_neg, zpl - pi, pi - zpl);
  const F4 when_x_pos = F4::select(y_neg, neg_z, z);
  F4 result = F4::select(x_neg, when_x_neg, when_x_pos);

  // Zero-operand cases, the exact fdlibm results (e_atan2f's iy==0 / ix==0
  // branches). Sign tests use the raw bits so -0.0 counts as negative, as
  // fdlibm's hx>>31 does; -kPi - kTiny == -(kPi + kTiny) exactly, so one
  // blended constant per sign suffices. Lanes that are also infinite/NaN get
  // overwritten by the scalar fallback right after.
  const U x_sign = U::cmpgt_signed(zero_bits, ux);
  const U y_sign = U::cmpgt_signed(zero_bits, uy);
  const U y_nonzero = U::cmpgt_signed(iy, zero_bits);
  const F4 half_signed = F4::select(y_sign, F4::broadcast(-kPiO2 - kTiny),
                                    F4::broadcast(kPiO2 + kTiny));
  result = F4::select(x_zero & y_nonzero, half_signed, result);
  const F4 pi_signed =
      F4::select(y_sign, F4::broadcast(-kPi - kTiny), F4::broadcast(kPi + kTiny));
  result = F4::select(y_zero, F4::select(x_sign, pi_signed, y), result);

  if (U::any(special)) {
    float ys[F4::kLanes];
    float xs[F4::kLanes];
    float rs[F4::kLanes];
    y.store(ys);
    x.store(xs);
    result.store(rs);
    for (int i = 0; i < F4::kLanes; ++i) {
      if (special.extract(i) != 0u) rs[i] = atan2f_portable(ys[i], xs[i]);
    }
    result = F4::load(rs);
  }
  return result;
}

}  // namespace eecs::simd
