// Byte-level serialization used by the network substrate. Fixed little-endian
// wire format so message sizes (and therefore radio energy) are deterministic.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace eecs {

/// Append-only binary encoder.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_f32(float v);
  void write_f64(double v);
  void write_bytes(std::span<const std::uint8_t> bytes);
  void write_string(const std::string& s);
  void write_f32_vector(std::span<const float> v);
  void write_f64_vector(std::span<const double> v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential binary decoder over a borrowed buffer. Throws DecodeError on
/// underrun so malformed messages are detected rather than read out of bounds.
class ByteReader {
 public:
  class DecodeError : public std::runtime_error {
   public:
    using std::runtime_error::runtime_error;
  };

  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<double> read_f64_vector();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void require(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace eecs
