// Environment presets modelling the paper's three evaluation datasets
// (§VI): EPFL "lab" (indoor, empty, 360x288), Graz "chap" (indoor lab with
// furniture, 1024x768), EPFL "terrace" (outdoor, 360x288). Each preset
// controls resolution, scene extent, population, clutter, illumination,
// background texture, and sensor noise — the knobs that make different
// detection algorithms win in different environments.
#pragma once

#include <string>

namespace eecs::video {

struct Environment {
  std::string name;

  // Camera sensor.
  int image_width = 360;
  int image_height = 288;
  double focal_px = 320.0;

  // Ground plane extent in meters (room is [0, room_w] x [0, room_h]).
  double room_w = 8.0;
  double room_h = 8.0;
  double camera_height = 2.3;  ///< Mount height in meters.

  // Population.
  int num_people = 6;
  double person_speed = 1.0;  ///< Mean walking speed, m/s.

  // Furniture-like distractors (vertical structures with person-like
  // gradients but non-skin/clothing colors). Dataset #2's false-positive
  // source (paper: "furniture items ... might cause false positives").
  int num_clutter = 0;

  // Appearance.
  float background_brightness = 0.55f;
  float background_texture_amplitude = 0.15f;  ///< Outdoor scenes are busier.
  float background_texture_scale = 12.0f;
  float illumination_gain = 1.0f;
  float illumination_offset = 0.0f;
  float sensor_noise_sigma = 0.012f;
  bool outdoor = false;
  unsigned texture_seed = 1;

  // Ground-truth cadence, mirroring the datasets (every 25 frames for the
  // EPFL sets, every 10 for Graz chap).
  int ground_truth_stride = 25;
};

/// Dataset #1: EPFL "lab sequences" analog — indoor, empty room, 6 people,
/// 360x288.
[[nodiscard]] Environment dataset1_lab();

/// Dataset #2: Graz "chap" analog — indoor lab, 4-6 people, furniture
/// clutter, 1024x768.
[[nodiscard]] Environment dataset2_chap();

/// Dataset #3: EPFL "terrace sequences" analog — outdoor, 8 people, 360x288.
[[nodiscard]] Environment dataset3_terrace();

/// The preset for a 1-based dataset id (1..3). Throws ContractViolation
/// otherwise.
[[nodiscard]] Environment dataset_by_id(int id);

inline constexpr int kNumCamerasPerDataset = 4;
inline constexpr int kNumDatasets = 3;
inline constexpr int kTrainFrames = 1000;   ///< Paper: first 1000 frames train.
inline constexpr int kTotalFrames = 3000;   ///< Paper: ~3000 frames per feed.

}  // namespace eecs::video
