// Sprite rendering shared by the scene simulator and the detector-training
// patch generator: draws a person or a furniture distractor into a given
// bounding box.
#pragma once

#include "imaging/image.hpp"
#include "imaging/rect.hpp"
#include "video/person.hpp"

namespace eecs::video {

struct SpriteOptions {
  double walk_phase = 0.0;
  float lighting_gain = 1.0f;   ///< Per-instance lighting variation.
  bool ground_shadow = false;   ///< Outdoor soft shadow under the feet.
};

/// Draw a person filling `box` (head at top, feet at bottom).
void draw_person_sprite(imaging::Image& img, const imaging::Rect& box,
                        const PersonAppearance& appearance, const SpriteOptions& options = {});

struct ClutterSprite {
  imaging::Color color{0.45f, 0.36f, 0.27f};
  int shelves = 3;
};

/// Draw a cabinet/locker-like distractor filling `box`.
void draw_clutter_sprite(imaging::Image& img, const imaging::Rect& box,
                         const ClutterSprite& sprite);

}  // namespace eecs::video
