#include "video/sprite.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/draw.hpp"

namespace eecs::video {

using imaging::Color;
using imaging::Rect;

namespace {

Color scaled(const Color& c, float gain) {
  return {std::clamp(c[0] * gain, 0.0f, 1.0f), std::clamp(c[1] * gain, 0.0f, 1.0f),
          std::clamp(c[2] * gain, 0.0f, 1.0f)};
}

}  // namespace

void draw_person_sprite(imaging::Image& img, const Rect& b, const PersonAppearance& ap,
                        const SpriteOptions& options) {
  if (b.w <= 0 || b.h <= 0) return;
  const Color shirt = scaled(ap.shirt, options.lighting_gain);
  const Color pants = scaled(ap.pants, options.lighting_gain);
  const Color skin = scaled(ap.skin, options.lighting_gain);

  if (options.ground_shadow) {
    imaging::fill_ellipse(img, {b.x, b.bottom() - 0.04 * b.h, b.w, 0.07 * b.h},
                          Color{0.1f, 0.1f, 0.1f}, 0.35f);
  }

  // Head (top 16%).
  imaging::fill_ellipse(img, {b.center_x() - 0.28 * b.w, b.y, 0.56 * b.w, 0.16 * b.h}, skin);
  // Torso (16%..56%).
  imaging::fill_rect(img, {b.x + 0.08 * b.w, b.y + 0.16 * b.h, 0.84 * b.w, 0.40 * b.h}, shirt);
  // Arms: thin strips along the torso sides.
  imaging::fill_rect(img, {b.x, b.y + 0.18 * b.h, 0.10 * b.w, 0.34 * b.h}, scaled(shirt, 0.85f));
  imaging::fill_rect(img, {b.right() - 0.10 * b.w, b.y + 0.18 * b.h, 0.10 * b.w, 0.34 * b.h},
                     scaled(shirt, 0.85f));
  // Legs (56%..100%) with walk-cycle swing.
  const double swing = 0.10 * b.w * std::sin(options.walk_phase);
  const double leg_w = 0.30 * b.w;
  const double leg_y = b.y + 0.56 * b.h;
  const double leg_h = 0.44 * b.h;
  imaging::fill_rect(img, {b.center_x() - 0.05 * b.w - leg_w - swing, leg_y, leg_w, leg_h}, pants);
  imaging::fill_rect(img, {b.center_x() + 0.05 * b.w + swing, leg_y, leg_w, leg_h}, pants);
}

void draw_clutter_sprite(imaging::Image& img, const Rect& b, const ClutterSprite& sprite) {
  if (b.w <= 0 || b.h <= 0) return;
  imaging::fill_rect(img, b, sprite.color);
  // Darker outline (strong vertical edges, like a person's silhouette).
  imaging::fill_rect(img, {b.x, b.y, 0.06 * b.w, b.h}, scaled(sprite.color, 0.55f));
  imaging::fill_rect(img, {b.right() - 0.06 * b.w, b.y, 0.06 * b.w, b.h},
                     scaled(sprite.color, 0.55f));
  imaging::fill_rect(img, {b.x, b.y, b.w, 0.05 * b.h}, scaled(sprite.color, 0.6f));
  for (int s = 1; s <= sprite.shelves; ++s) {
    const double y = b.y + b.h * s / (sprite.shelves + 1);
    imaging::fill_rect(img, {b.x + 0.05 * b.w, y, 0.9 * b.w, std::max(1.0, 0.015 * b.h)},
                       scaled(sprite.color, 0.5f));
  }
}

}  // namespace eecs::video
