// Articulated "person" sprite with random-waypoint ground-plane motion.
#pragma once

#include "common/rng.hpp"
#include "geometry/vec.hpp"
#include "imaging/draw.hpp"

namespace eecs::video {

/// Static visual attributes sampled once per person.
struct PersonAppearance {
  imaging::Color shirt{0.6f, 0.2f, 0.2f};
  imaging::Color pants{0.2f, 0.2f, 0.5f};
  imaging::Color skin{0.85f, 0.70f, 0.58f};
  double height_m = 1.75;
  double width_m = 0.55;  ///< Shoulder width.
};

/// Samples plausible clothing colors and body size.
[[nodiscard]] PersonAppearance random_appearance(Rng& rng);

class Person {
 public:
  Person(int id, const PersonAppearance& appearance, const geometry::Vec2& position, Rng& rng,
         double room_w, double room_h, double speed);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const PersonAppearance& appearance() const { return appearance_; }
  [[nodiscard]] const geometry::Vec2& position() const { return position_; }
  /// Walk-cycle phase in radians; drives leg separation when rendering.
  [[nodiscard]] double phase() const { return phase_; }

  /// Advance dt seconds of random-waypoint motion.
  void step(double dt, Rng& rng);

 private:
  void pick_waypoint(Rng& rng);

  int id_;
  PersonAppearance appearance_;
  geometry::Vec2 position_;
  geometry::Vec2 waypoint_;
  double speed_;
  double phase_ = 0.0;
  double room_w_;
  double room_h_;
};

}  // namespace eecs::video
