#include "video/environment.hpp"

#include "common/contracts.hpp"

namespace eecs::video {

Environment dataset1_lab() {
  Environment env;
  env.name = "dataset1-lab";
  env.image_width = 360;
  env.image_height = 288;
  env.focal_px = 320.0;
  env.room_w = 8.0;
  env.room_h = 8.0;
  env.num_people = 6;
  env.num_clutter = 0;
  env.background_brightness = 0.55f;
  env.background_texture_amplitude = 0.10f;
  env.background_texture_scale = 14.0f;
  env.illumination_gain = 1.0f;
  env.illumination_offset = 0.0f;
  env.sensor_noise_sigma = 0.012f;
  env.outdoor = false;
  env.texture_seed = 11;
  env.ground_truth_stride = 25;
  return env;
}

Environment dataset2_chap() {
  Environment env;
  env.name = "dataset2-chap";
  env.image_width = 1024;
  env.image_height = 768;
  env.focal_px = 900.0;
  env.room_w = 7.0;
  env.room_h = 7.0;
  env.num_people = 5;
  env.num_clutter = 7;
  env.background_brightness = 0.50f;
  env.background_texture_amplitude = 0.18f;
  env.background_texture_scale = 26.0f;
  env.illumination_gain = 0.92f;
  env.illumination_offset = -0.02f;
  env.sensor_noise_sigma = 0.010f;
  env.outdoor = false;
  env.texture_seed = 22;
  env.ground_truth_stride = 10;
  return env;
}

Environment dataset3_terrace() {
  Environment env;
  env.name = "dataset3-terrace";
  env.image_width = 360;
  env.image_height = 288;
  env.focal_px = 320.0;
  env.room_w = 10.0;
  env.room_h = 10.0;
  env.num_people = 8;
  env.num_clutter = 0;
  env.background_brightness = 0.68f;
  env.background_texture_amplitude = 0.30f;
  env.background_texture_scale = 7.0f;
  env.illumination_gain = 1.12f;
  env.illumination_offset = 0.04f;
  env.sensor_noise_sigma = 0.016f;
  env.outdoor = true;
  env.texture_seed = 33;
  env.ground_truth_stride = 25;
  return env;
}

Environment dataset_by_id(int id) {
  EECS_EXPECTS(id >= 1 && id <= kNumDatasets);
  switch (id) {
    case 1: return dataset1_lab();
    case 2: return dataset2_chap();
    default: return dataset3_terrace();
  }
}

}  // namespace eecs::video
