#include "video/person.hpp"

namespace eecs::video {

namespace {

/// Clothing palette: saturated, distinct colors so mean-color re-id features
/// carry signal, as they do for real clothing.
imaging::Color random_clothing_color(Rng& rng) {
  const float h = static_cast<float>(rng.uniform());  // Hue-ish selector.
  const float v = static_cast<float>(rng.uniform(0.25, 0.85));
  const float s = static_cast<float>(rng.uniform(0.4, 0.9));
  // Cheap HSV-like conversion over 6 hue sectors.
  const float c = v * s;
  const float x = c * (1.0f - std::abs(std::fmod(h * 6.0f, 2.0f) - 1.0f));
  const float m = v - c;
  float r = 0, g = 0, b = 0;
  switch (static_cast<int>(h * 6.0f) % 6) {
    case 0: r = c; g = x; break;
    case 1: r = x; g = c; break;
    case 2: g = c; b = x; break;
    case 3: g = x; b = c; break;
    case 4: r = x; b = c; break;
    default: r = c; b = x; break;
  }
  return {r + m, g + m, b + m};
}

}  // namespace

PersonAppearance random_appearance(Rng& rng) {
  PersonAppearance a;
  a.shirt = random_clothing_color(rng);
  a.pants = random_clothing_color(rng);
  const float skin_tone = static_cast<float>(rng.uniform(0.45, 0.95));
  a.skin = {skin_tone, skin_tone * 0.82f, skin_tone * 0.68f};
  a.height_m = rng.uniform(1.60, 1.92);
  a.width_m = rng.uniform(0.48, 0.62);
  return a;
}

Person::Person(int id, const PersonAppearance& appearance, const geometry::Vec2& position,
               Rng& rng, double room_w, double room_h, double speed)
    : id_(id),
      appearance_(appearance),
      position_(position),
      speed_(speed * rng.uniform(0.8, 1.2)),
      room_w_(room_w),
      room_h_(room_h) {
  phase_ = rng.uniform(0.0, 6.28);
  pick_waypoint(rng);
}

void Person::pick_waypoint(Rng& rng) {
  // Keep a margin so sprites stay mostly inside every camera's view.
  const double margin_w = 0.12 * room_w_;
  const double margin_h = 0.12 * room_h_;
  waypoint_ = {rng.uniform(margin_w, room_w_ - margin_w), rng.uniform(margin_h, room_h_ - margin_h)};
}

void Person::step(double dt, Rng& rng) {
  const geometry::Vec2 to_target = waypoint_ - position_;
  const double dist = to_target.norm();
  if (dist < 0.2) {
    pick_waypoint(rng);
    return;
  }
  const double move = std::min(speed_ * dt, dist);
  position_ = position_ + (move / dist) * to_target;
  // Leg swing frequency ~ 1.8 strides/second at 1 m/s.
  phase_ += 2.0 * 3.14159265358979 * 1.8 * (speed_ * dt);
}

}  // namespace eecs::video
