#include "video/scene.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "imaging/draw.hpp"
#include "video/sprite.hpp"

namespace eecs::video {

using geometry::PinholeCamera;
using geometry::Vec2;
using geometry::Vec3;
using imaging::Color;
using imaging::Image;
using imaging::Rect;

namespace {

/// Fraction of `box` covered by the union of `occluders`, rasterized on a
/// coarse grid (exact union area is unnecessary for annotation purposes).
double coverage_fraction(const Rect& box, const std::vector<Rect>& occluders) {
  if (box.area() <= 0.0 || occluders.empty()) return 0.0;
  constexpr int kGrid = 12;
  int covered = 0;
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const double px = box.x + (gx + 0.5) * box.w / kGrid;
      const double py = box.y + (gy + 0.5) * box.h / kGrid;
      for (const Rect& occ : occluders) {
        if (occ.contains(px, py)) {
          ++covered;
          break;
        }
      }
    }
  }
  return static_cast<double>(covered) / (kGrid * kGrid);
}

double in_image_fraction(const Rect& box, int width, int height) {
  if (box.area() <= 0.0) return 0.0;
  return intersect(box, Rect{0, 0, static_cast<double>(width), static_cast<double>(height)}).area() /
         box.area();
}

/// Uniform sensor noise with the requested standard deviation, identical
/// across channels (luminance noise), deterministic per (pixel, frame).
void add_sensor_noise(Image& img, float sigma, unsigned frame_seed) {
  if (sigma <= 0.0f) return;
  const float amp = sigma * 3.4641016f;  // Uniform [-a/2, a/2] has sigma = a/sqrt(12).
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const float n = (imaging::hash_noise(x, y, frame_seed) - 0.5f) * amp;
      for (int c = 0; c < img.channels(); ++c) {
        float& v = img.at(x, y, c);
        v = std::clamp(v + n, 0.0f, 1.0f);
      }
    }
  }
}

Color scaled(const Color& c, float gain) {
  return {std::clamp(c[0] * gain, 0.0f, 1.0f), std::clamp(c[1] * gain, 0.0f, 1.0f),
          std::clamp(c[2] * gain, 0.0f, 1.0f)};
}

}  // namespace

SceneSimulator::SceneSimulator(const Environment& env, std::uint64_t seed)
    : env_(env), rng_(seed) {
  // Four cameras just outside the room corners, looking at the room center
  // slightly below head height — overlapping views as in the datasets.
  const double margin = 1.2;
  const Vec3 target{env_.room_w / 2.0, env_.room_h / 2.0, 0.9};
  const Vec3 corners[kNumCamerasPerDataset] = {
      {-margin, -margin, env_.camera_height},
      {env_.room_w + margin, -margin, env_.camera_height},
      {env_.room_w + margin, env_.room_h + margin, env_.camera_height},
      {-margin, env_.room_h + margin, env_.camera_height},
  };
  geometry::CameraIntrinsics intr;
  intr.focal_px = env_.focal_px;
  intr.width = env_.image_width;
  intr.height = env_.image_height;
  for (const Vec3& c : corners) cameras_.emplace_back(c, target, intr);

  for (int i = 0; i < env_.num_people; ++i) {
    const Vec2 pos{rng_.uniform(0.15 * env_.room_w, 0.85 * env_.room_w),
                   rng_.uniform(0.15 * env_.room_h, 0.85 * env_.room_h)};
    people_.emplace_back(i, random_appearance(rng_), pos, rng_, env_.room_w, env_.room_h,
                         env_.person_speed);
  }

  for (int i = 0; i < env_.num_clutter; ++i) {
    ClutterItem item;
    // Keep clutter out of the central walking area but inside all views.
    const double side = rng_.uniform();
    if (side < 0.5) {
      item.position = {rng_.uniform(0.18, 0.38) * env_.room_w, rng_.uniform(0.2, 0.8) * env_.room_h};
    } else {
      item.position = {rng_.uniform(0.62, 0.82) * env_.room_w, rng_.uniform(0.2, 0.8) * env_.room_h};
    }
    item.height_m = rng_.uniform(1.2, 1.8);
    item.width_m = rng_.uniform(0.55, 0.85);
    const float tone = static_cast<float>(rng_.uniform(0.3, 0.55));
    item.color = {tone, tone * 0.85f, tone * 0.62f};  // Wood/metal hues.
    item.shelves = rng_.uniform_int(2, 4);
    clutter_.push_back(item);
  }

  backgrounds_.reserve(cameras_.size());
  for (std::size_t i = 0; i < cameras_.size(); ++i) {
    backgrounds_.push_back(make_background(static_cast<int>(i)));
  }
}

Image SceneSimulator::make_background(int camera_index) const {
  const PinholeCamera& cam = cameras_[static_cast<std::size_t>(camera_index)];
  Image img(env_.image_width, env_.image_height, 3);

  // Horizon: v coordinate of a very distant ground point straight ahead.
  const Vec3 far_ground{env_.room_w / 2.0 + (env_.room_w / 2.0 + 500.0), env_.room_h / 2.0, 0.0};
  double horizon_v = env_.image_height * 0.35;
  // Project a far point along the camera's forward ground direction instead
  // of a fixed world point, so all four corner cameras get a sane horizon.
  const Vec3 probe = cam.position() + 500.0 * (Vec3{env_.room_w / 2.0, env_.room_h / 2.0, cam.position().z} - cam.position()).normalized();
  if (const auto px = cam.project({probe.x, probe.y, 0.0})) horizon_v = px->y;
  (void)far_ground;

  // Per-camera brightness tilt: each camera faces a different wall of the
  // room, so the background tone and features differ per view (as they do in
  // the real multi-camera datasets). This is also what lets the controller
  // tell the four feeds of one dataset apart (Table V diagonal).
  const float cam_gain = 0.90f + 0.07f * static_cast<float>(camera_index);
  const float base = env_.background_brightness * cam_gain;
  const Color wall = env_.outdoor ? Color{base * 1.05f, base * 1.08f, base * 1.15f}
                                  : Color{base, base * 0.98f, base * 0.92f};
  const Color floor = env_.outdoor ? Color{base * 0.85f, base * 0.83f, base * 0.78f}
                                   : Color{base * 0.78f, base * 0.74f, base * 0.70f};
  const int hv = std::clamp(static_cast<int>(horizon_v), 0, env_.image_height);
  imaging::fill_rect(img, {0, 0, static_cast<double>(env_.image_width), static_cast<double>(hv)}, wall);
  imaging::fill_rect(img, {0, static_cast<double>(hv), static_cast<double>(env_.image_width),
                           static_cast<double>(env_.image_height - hv)},
                     floor);

  // A few subtle vertical wall features (door frames / pillars): weak
  // gradient structure present in every environment.
  Rng feature_rng(env_.texture_seed * 97u + static_cast<unsigned>(camera_index));
  const int num_features = (env_.outdoor ? 5 : 3) + camera_index;
  for (int i = 0; i < num_features; ++i) {
    const double x = feature_rng.uniform(0.05, 0.95) * env_.image_width;
    const double w = feature_rng.uniform(0.004, 0.030) * env_.image_width + 1.0;
    imaging::fill_rect(img, {x, 0, w, static_cast<double>(hv)},
                       scaled(wall, static_cast<float>(feature_rng.uniform(0.55, 0.85))),
                       0.85f);
  }
  // A wall poster/window patch unique to this view.
  {
    const double pw = feature_rng.uniform(0.10, 0.22) * env_.image_width;
    const double ph = feature_rng.uniform(0.3, 0.6) * hv;
    const double px = feature_rng.uniform(0.05, 0.75) * env_.image_width;
    const double py = feature_rng.uniform(0.05, 0.35) * hv;
    imaging::fill_rect(img, {px, py, pw, ph},
                       Color{static_cast<float>(feature_rng.uniform(0.2, 0.9)),
                             static_cast<float>(feature_rng.uniform(0.2, 0.9)),
                             static_cast<float>(feature_rng.uniform(0.2, 0.9))},
                       0.7f);
  }

  imaging::apply_texture(img,
                         {0, 0, static_cast<double>(env_.image_width), static_cast<double>(env_.image_height)},
                         env_.texture_seed + static_cast<unsigned>(camera_index) * 131u,
                         env_.background_texture_amplitude, env_.background_texture_scale);
  return img;
}

std::optional<Rect> SceneSimulator::body_box(const PinholeCamera& cam, const Vec2& ground,
                                             double height_m, double width_m) {
  const Vec3 foot3{ground.x, ground.y, 0.0};
  const Vec3 head3{ground.x, ground.y, height_m};
  const auto foot = cam.project(foot3);
  const auto head = cam.project(head3);
  if (!foot || !head) return std::nullopt;
  const double depth = cam.depth(foot3);
  if (depth <= 0.5) return std::nullopt;  // Too close / behind.
  const double width_px = cam.intrinsics().focal_px * width_m / depth;
  const double h = foot->y - head->y;
  if (h < 3.0) return std::nullopt;
  return Rect{foot->x - width_px / 2.0, head->y, width_px, h};
}

void SceneSimulator::render_person(Image& img, const PinholeCamera& cam,
                                   const Person& person) const {
  const auto maybe_box = body_box(cam, person.position(), person.appearance().height_m,
                                  person.appearance().width_m);
  if (!maybe_box) return;
  const Rect b = *maybe_box;
  if (b.right() < 0 || b.x >= img.width() || b.bottom() < 0 || b.y >= img.height()) return;

  SpriteOptions options;
  options.walk_phase = person.phase();
  // Slight per-person lighting variation.
  options.lighting_gain = 0.9f + 0.2f * imaging::hash_noise(person.id(), 0, 4242u);
  options.ground_shadow = env_.outdoor;
  draw_person_sprite(img, b, person.appearance(), options);
}

void SceneSimulator::render_clutter(Image& img, const PinholeCamera& cam,
                                    const ClutterItem& item) const {
  const auto maybe_box = body_box(cam, item.position, item.height_m, item.width_m);
  if (!maybe_box) return;
  draw_clutter_sprite(img, *maybe_box, ClutterSprite{item.color, item.shelves});
}

Image SceneSimulator::render(int camera_index) const {
  const PinholeCamera& cam = cameras_[static_cast<std::size_t>(camera_index)];
  Image img = backgrounds_[static_cast<std::size_t>(camera_index)];

  // Painter's algorithm over people and clutter together.
  struct Drawable {
    double depth;
    bool is_person;
    int index;
  };
  std::vector<Drawable> order;
  order.reserve(people_.size() + clutter_.size());
  for (std::size_t i = 0; i < people_.size(); ++i) {
    const auto& p = people_[i];
    order.push_back({cam.depth({p.position().x, p.position().y, 0}), true, static_cast<int>(i)});
  }
  for (std::size_t i = 0; i < clutter_.size(); ++i) {
    const auto& c = clutter_[i];
    order.push_back({cam.depth({c.position.x, c.position.y, 0}), false, static_cast<int>(i)});
  }
  std::sort(order.begin(), order.end(), [](const Drawable& a, const Drawable& b) {
    return a.depth > b.depth;  // Far first.
  });
  for (const Drawable& d : order) {
    if (d.is_person) {
      render_person(img, cam, people_[static_cast<std::size_t>(d.index)]);
    } else {
      render_clutter(img, cam, clutter_[static_cast<std::size_t>(d.index)]);
    }
  }

  img = imaging::adjust_brightness(img, env_.illumination_gain, env_.illumination_offset);
  add_sensor_noise(img, env_.sensor_noise_sigma,
                   static_cast<unsigned>(frame_index_ * 131 + camera_index * 7 + 1));
  return img;
}

std::vector<GroundTruthBox> SceneSimulator::ground_truth(int camera_index) const {
  EECS_EXPECTS(camera_index >= 0 && camera_index < static_cast<int>(cameras_.size()));
  const PinholeCamera& cam = cameras_[static_cast<std::size_t>(camera_index)];

  struct Candidate {
    int person_id;
    Rect box;
    double depth;
  };
  std::vector<Candidate> candidates;
  for (const Person& p : people_) {
    const auto box = body_box(cam, p.position(), p.appearance().height_m, p.appearance().width_m);
    if (!box) continue;
    candidates.push_back({p.id(), *box, cam.depth({p.position().x, p.position().y, 0})});
  }
  std::vector<std::pair<Rect, double>> clutter_boxes;  // box, depth
  for (const ClutterItem& c : clutter_) {
    const auto box = body_box(cam, c.position, c.height_m, c.width_m);
    if (box) clutter_boxes.emplace_back(*box, cam.depth({c.position.x, c.position.y, 0}));
  }

  std::vector<GroundTruthBox> out;
  for (const Candidate& cand : candidates) {
    std::vector<Rect> occluders;
    for (const Candidate& other : candidates) {
      if (other.person_id != cand.person_id && other.depth < cand.depth) occluders.push_back(other.box);
    }
    for (const auto& [cbox, cdepth] : clutter_boxes) {
      if (cdepth < cand.depth) occluders.push_back(cbox);
    }
    GroundTruthBox gt;
    gt.person_id = cand.person_id;
    gt.visibility = 1.0 - coverage_fraction(cand.box, occluders);
    gt.in_image_fraction = in_image_fraction(cand.box, env_.image_width, env_.image_height);
    gt.fully_in_image = gt.in_image_fraction >= 0.95;
    // Annotations cover the visible extent: clip to the frame.
    gt.box = intersect(cand.box, Rect{0, 0, static_cast<double>(env_.image_width),
                                      static_cast<double>(env_.image_height)});
    if (gt.in_image_fraction >= 0.3) out.push_back(gt);
  }
  return out;
}

void SceneSimulator::advance() {
  for (Person& p : people_) p.step(dt_, rng_);
  ++frame_index_;
}

MultiViewFrame SceneSimulator::next_frame() {
  MultiViewFrame frame;
  frame.index = frame_index_;
  // Each view is rendered from const scene state (per-pixel hash noise, no
  // shared RNG), so the cameras fan out as independent tasks; slots are
  // index-ordered, keeping the frame bit-identical at any thread count.
  frame.views.resize(cameras_.size());
  frame.truth.resize(cameras_.size());
  common::parallel_for_each(cameras_.size(), [&](std::size_t i) {
    frame.views[i] = render(static_cast<int>(i));
    frame.truth[i] = ground_truth(static_cast<int>(i));
  });
  frame.world_positions.reserve(people_.size());
  for (const Person& p : people_) frame.world_positions.push_back(p.position());
  advance();
  return frame;
}

Image SceneSimulator::next_frame_single(int camera_index, std::vector<GroundTruthBox>* truth_out) {
  EECS_EXPECTS(camera_index >= 0 && camera_index < static_cast<int>(cameras_.size()));
  Image img = render(camera_index);
  if (truth_out != nullptr) *truth_out = ground_truth(camera_index);
  advance();
  return img;
}

void SceneSimulator::skip(int n) {
  EECS_EXPECTS(n >= 0);
  for (int i = 0; i < n; ++i) advance();
}

}  // namespace eecs::video
