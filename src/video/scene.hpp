// Multi-camera scene simulator standing in for the paper's evaluation
// datasets. Four overlapping pinhole cameras observe a ground plane on which
// person sprites random-walk among optional furniture distractors. Renders
// per-camera frames and emits per-frame ground truth (world positions and
// per-view bounding boxes with visibility), playing the role of the datasets'
// annotations + calibration.
#pragma once

#include <vector>

#include "geometry/camera.hpp"
#include "imaging/image.hpp"
#include "imaging/rect.hpp"
#include "video/environment.hpp"
#include "video/person.hpp"

namespace eecs::video {

/// A static furniture-like distractor (cabinet/locker silhouette): a vertical
/// structure with person-like gradient statistics but non-clothing color.
struct ClutterItem {
  geometry::Vec2 position;  ///< Ground position.
  double height_m = 1.5;
  double width_m = 0.7;
  imaging::Color color{0.45f, 0.36f, 0.27f};
  int shelves = 3;  ///< Internal horizontal edges.
};

/// Ground-truth annotation of one person in one camera view.
struct GroundTruthBox {
  int person_id = -1;
  imaging::Rect box;  ///< Clipped to the image bounds.
  double visibility = 1.0;        ///< Fraction not occluded by nearer objects.
  double in_image_fraction = 1.0; ///< Area fraction of the unclipped box inside the frame.
  bool fully_in_image = true;
};

/// Everything the harness needs about one time step.
struct MultiViewFrame {
  int index = 0;
  std::vector<imaging::Image> views;                    ///< One per camera.
  std::vector<std::vector<GroundTruthBox>> truth;       ///< Per camera.
  std::vector<geometry::Vec2> world_positions;          ///< Per person, ground plane.
};

class SceneSimulator {
 public:
  SceneSimulator(const Environment& env, std::uint64_t seed);

  [[nodiscard]] const Environment& environment() const { return env_; }
  [[nodiscard]] const std::vector<geometry::PinholeCamera>& cameras() const { return cameras_; }
  [[nodiscard]] int frame_index() const { return frame_index_; }

  /// Render all camera views for the current time step, then advance.
  [[nodiscard]] MultiViewFrame next_frame();

  /// Render only one camera's view for the current step, then advance.
  /// Cheaper when a bench needs a single feed.
  [[nodiscard]] imaging::Image next_frame_single(int camera_index,
                                                 std::vector<GroundTruthBox>* truth_out = nullptr);

  /// Advance n steps without rendering (motion only).
  void skip(int n);

  /// Ground truth for the current (un-advanced) time step.
  [[nodiscard]] std::vector<GroundTruthBox> ground_truth(int camera_index) const;

  /// True if this frame index carries dataset ground truth (stride cadence).
  [[nodiscard]] bool has_ground_truth(int frame_index) const {
    return frame_index % env_.ground_truth_stride == 0;
  }

 private:
  void advance();
  [[nodiscard]] imaging::Image render(int camera_index) const;
  void render_person(imaging::Image& img, const geometry::PinholeCamera& cam,
                     const Person& person) const;
  void render_clutter(imaging::Image& img, const geometry::PinholeCamera& cam,
                      const ClutterItem& item) const;
  [[nodiscard]] imaging::Image make_background(int camera_index) const;

  /// Projected body box of a vertical object (person or clutter) standing at
  /// `ground` with the given physical size; nullopt if behind the camera.
  [[nodiscard]] static std::optional<imaging::Rect> body_box(const geometry::PinholeCamera& cam,
                                                             const geometry::Vec2& ground,
                                                             double height_m, double width_m);

  Environment env_;
  Rng rng_;
  std::vector<geometry::PinholeCamera> cameras_;
  std::vector<Person> people_;
  std::vector<ClutterItem> clutter_;
  std::vector<imaging::Image> backgrounds_;  ///< Pre-baked static content per camera.
  int frame_index_ = 0;
  double dt_ = 0.1;  ///< Seconds per frame (10 fps).
};

}  // namespace eecs::video
