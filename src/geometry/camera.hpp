// Pinhole camera model. The synthetic scene renderer projects 3D world
// points through it, and its analytic ground-plane homography plays the role
// of the calibration data shipped with the paper's datasets.
//
// Conventions: world coordinates in meters, z up, ground plane z = 0.
// Camera frame: x right, y down, z forward; pixels (u, v) with v downward.
#pragma once

#include <optional>

#include "geometry/homography.hpp"
#include "geometry/vec.hpp"

namespace eecs::geometry {

struct CameraIntrinsics {
  double focal_px = 300.0;  ///< Focal length in pixels (fx == fy).
  int width = 360;
  int height = 288;

  [[nodiscard]] double cx() const { return width / 2.0; }
  [[nodiscard]] double cy() const { return height / 2.0; }
};

class PinholeCamera {
 public:
  /// Camera at `position` looking at `target` with the world z axis as up.
  /// Requires position != target and a view direction not parallel to up.
  PinholeCamera(const Vec3& position, const Vec3& target, const CameraIntrinsics& intrinsics);

  [[nodiscard]] const CameraIntrinsics& intrinsics() const { return intrinsics_; }
  [[nodiscard]] const Vec3& position() const { return position_; }

  /// Project a world point to pixel coordinates; nullopt if the point is at
  /// or behind the camera plane.
  [[nodiscard]] std::optional<Vec2> project(const Vec3& world) const;

  /// Depth (camera-frame z) of a world point; negative means behind.
  [[nodiscard]] double depth(const Vec3& world) const;

  /// Analytic homography mapping ground-plane world coordinates (X, Y) to
  /// pixels. This is the "dataset-provided" calibration in the paper's
  /// evaluation (§VI, Ground truth information).
  [[nodiscard]] Homography ground_homography() const;

  /// Analytic homography of the horizontal plane z = `height_m`: maps world
  /// (X, Y) on that plane to pixels. plane_homography(0) == ground_homography.
  /// The pair (ground plane, head plane) bounds the pixel height of an
  /// upright person per image row, which is what the detection scheduler's
  /// context gate uses to rule scales in or out per row band.
  [[nodiscard]] Homography plane_homography(double height_m) const;

  /// True if the pixel is inside the image bounds.
  [[nodiscard]] bool in_image(const Vec2& px) const;

 private:
  Vec3 position_;
  Vec3 right_, down_, forward_;  ///< Rows of the world->camera rotation.
  CameraIntrinsics intrinsics_;
};

}  // namespace eecs::geometry
