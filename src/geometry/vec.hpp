// Small fixed-size vector types for camera geometry.
#pragma once

#include <cmath>

namespace eecs::geometry {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(const Vec2& a, const Vec2& b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(const Vec2& a, const Vec2& b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, const Vec2& v) { return {s * v.x, s * v.y}; }
  friend bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
};

[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3 operator+(const Vec3& a, const Vec3& b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(const Vec3& a, const Vec3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(double s, const Vec3& v) { return {s * v.x, s * v.y, s * v.z}; }
  friend bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

[[nodiscard]] inline double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

[[nodiscard]] inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

}  // namespace eecs::geometry
