#include "geometry/homography.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"

namespace eecs::geometry {

namespace {
constexpr double kDenomEps = 1e-12;
}

Homography::Homography() : m_{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}} {}

Homography::Homography(const std::array<std::array<double, 3>, 3>& h) : m_(h) { normalize(); }

void Homography::normalize() {
  // Scale so the largest-magnitude entry is 1; keeps numbers well-behaved and
  // makes equality comparisons meaningful.
  double max_abs = 0.0;
  for (const auto& row : m_) {
    for (double v : row) max_abs = std::max(max_abs, std::abs(v));
  }
  EECS_EXPECTS(max_abs > 0.0);
  for (auto& row : m_) {
    for (double& v : row) v /= max_abs;
  }
}

std::optional<Vec2> Homography::apply(const Vec2& p) const {
  const double w = m_[2][0] * p.x + m_[2][1] * p.y + m_[2][2];
  if (std::abs(w) < kDenomEps) return std::nullopt;
  return Vec2{(m_[0][0] * p.x + m_[0][1] * p.y + m_[0][2]) / w,
              (m_[1][0] * p.x + m_[1][1] * p.y + m_[1][2]) / w};
}

Homography Homography::inverse() const {
  // Adjugate of the 3x3 matrix.
  const auto& m = m_;
  std::array<std::array<double, 3>, 3> adj;
  adj[0][0] = m[1][1] * m[2][2] - m[1][2] * m[2][1];
  adj[0][1] = m[0][2] * m[2][1] - m[0][1] * m[2][2];
  adj[0][2] = m[0][1] * m[1][2] - m[0][2] * m[1][1];
  adj[1][0] = m[1][2] * m[2][0] - m[1][0] * m[2][2];
  adj[1][1] = m[0][0] * m[2][2] - m[0][2] * m[2][0];
  adj[1][2] = m[0][2] * m[1][0] - m[0][0] * m[1][2];
  adj[2][0] = m[1][0] * m[2][1] - m[1][1] * m[2][0];
  adj[2][1] = m[0][1] * m[2][0] - m[0][0] * m[2][1];
  adj[2][2] = m[0][0] * m[1][1] - m[0][1] * m[1][0];
  const double det = m[0][0] * adj[0][0] + m[0][1] * adj[1][0] + m[0][2] * adj[2][0];
  if (std::abs(det) < kDenomEps) throw std::runtime_error("Homography::inverse: singular matrix");
  return Homography(adj);
}

Homography operator*(const Homography& a, const Homography& b) {
  std::array<std::array<double, 3>, 3> m{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = 0.0;
      for (int k = 0; k < 3; ++k) s += a.at(i, k) * b.at(k, j);
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = s;
    }
  }
  return Homography(m);
}

namespace {

struct Normalization {
  double cx, cy, scale;

  [[nodiscard]] Vec2 apply(const Vec2& p) const { return {scale * (p.x - cx), scale * (p.y - cy)}; }

  /// The 3x3 similarity transform as a Homography.
  [[nodiscard]] Homography as_homography() const {
    return Homography({{{scale, 0, -scale * cx}, {0, scale, -scale * cy}, {0, 0, 1}}});
  }
};

Normalization compute_normalization(const std::vector<PointPair>& pairs, bool use_from) {
  double cx = 0.0, cy = 0.0;
  for (const auto& p : pairs) {
    const Vec2& v = use_from ? p.from : p.to;
    cx += v.x;
    cy += v.y;
  }
  cx /= static_cast<double>(pairs.size());
  cy /= static_cast<double>(pairs.size());
  double mean_dist = 0.0;
  for (const auto& p : pairs) {
    const Vec2& v = use_from ? p.from : p.to;
    mean_dist += std::hypot(v.x - cx, v.y - cy);
  }
  mean_dist /= static_cast<double>(pairs.size());
  const double scale = mean_dist > kDenomEps ? std::sqrt(2.0) / mean_dist : 1.0;
  return {cx, cy, scale};
}

}  // namespace

Homography estimate_homography_dlt(const std::vector<PointPair>& pairs) {
  if (pairs.size() < 4) throw std::runtime_error("estimate_homography_dlt: need >= 4 pairs");

  const Normalization nf = compute_normalization(pairs, /*use_from=*/true);
  const Normalization nt = compute_normalization(pairs, /*use_from=*/false);

  linalg::Matrix a(static_cast<int>(2 * pairs.size()), 9);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Vec2 p = nf.apply(pairs[i].from);
    const Vec2 q = nt.apply(pairs[i].to);
    const int r = static_cast<int>(2 * i);
    // Row for x': [-x -y -1 0 0 0 x'x x'y x'].
    a(r, 0) = -p.x; a(r, 1) = -p.y; a(r, 2) = -1;
    a(r, 6) = q.x * p.x; a(r, 7) = q.x * p.y; a(r, 8) = q.x;
    // Row for y'.
    a(r + 1, 3) = -p.x; a(r + 1, 4) = -p.y; a(r + 1, 5) = -1;
    a(r + 1, 6) = q.y * p.x; a(r + 1, 7) = q.y * p.y; a(r + 1, 8) = q.y;
  }

  // Null vector = eigenvector of A^T A for its smallest eigenvalue. Using the
  // normal equations (rather than a thin SVD of A) guarantees the null-space
  // direction is available even for the minimal 8x9 system.
  const linalg::EigResult eig = linalg::eig_symmetric(linalg::transpose_times(a, a));
  const int last = eig.eigenvectors.cols() - 1;
  std::array<std::array<double, 3>, 3> h{};
  double norm_h = 0.0;
  for (int i = 0; i < 9; ++i) {
    h[static_cast<std::size_t>(i / 3)][static_cast<std::size_t>(i % 3)] = eig.eigenvectors(i, last);
    norm_h += eig.eigenvectors(i, last) * eig.eigenvectors(i, last);
  }
  if (norm_h < kDenomEps) throw std::runtime_error("estimate_homography_dlt: degenerate configuration");

  // Denormalize: H = T_to^{-1} * Hn * T_from.
  const Homography hn(h);
  return nt.as_homography().inverse() * hn * nf.as_homography();
}

RansacResult estimate_homography_ransac(const std::vector<PointPair>& pairs, Rng& rng,
                                        const RansacOptions& options) {
  if (pairs.size() < 4) throw std::runtime_error("estimate_homography_ransac: need >= 4 pairs");

  std::vector<int> best_inliers;
  for (int iter = 0; iter < options.iterations; ++iter) {
    const std::vector<int> sample = rng.sample_indices(static_cast<int>(pairs.size()), 4);
    std::vector<PointPair> minimal;
    minimal.reserve(4);
    for (int idx : sample) minimal.push_back(pairs[static_cast<std::size_t>(idx)]);

    Homography h;
    try {
      h = estimate_homography_dlt(minimal);
    } catch (const std::runtime_error&) {
      continue;  // Degenerate minimal sample; try another.
    }

    std::vector<int> inliers;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto mapped = h.apply(pairs[i].from);
      if (mapped && distance(*mapped, pairs[i].to) <= options.inlier_threshold) {
        inliers.push_back(static_cast<int>(i));
      }
    }
    if (inliers.size() > best_inliers.size()) best_inliers = std::move(inliers);
  }

  if (static_cast<int>(best_inliers.size()) < options.min_inliers) {
    throw std::runtime_error("estimate_homography_ransac: no consensus model found");
  }

  // Refit on all inliers for the final model.
  std::vector<PointPair> inlier_pairs;
  inlier_pairs.reserve(best_inliers.size());
  for (int idx : best_inliers) inlier_pairs.push_back(pairs[static_cast<std::size_t>(idx)]);
  return {estimate_homography_dlt(inlier_pairs), std::move(best_inliers)};
}

}  // namespace eecs::geometry
