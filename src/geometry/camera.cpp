#include "geometry/camera.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace eecs::geometry {

PinholeCamera::PinholeCamera(const Vec3& position, const Vec3& target,
                             const CameraIntrinsics& intrinsics)
    : position_(position), intrinsics_(intrinsics) {
  const Vec3 view = target - position;
  EECS_EXPECTS(view.norm() > 1e-9);
  forward_ = view.normalized();
  const Vec3 world_up{0, 0, 1};
  const Vec3 r = cross(forward_, world_up);
  EECS_EXPECTS(r.norm() > 1e-9);  // View direction must not be vertical.
  right_ = r.normalized();
  down_ = cross(forward_, right_);  // Unit by construction; points toward -z.
}

double PinholeCamera::depth(const Vec3& world) const {
  return dot(forward_, world - position_);
}

std::optional<Vec2> PinholeCamera::project(const Vec3& world) const {
  const Vec3 rel = world - position_;
  const double z = dot(forward_, rel);
  if (z <= 1e-9) return std::nullopt;
  const double x = dot(right_, rel);
  const double y = dot(down_, rel);
  return Vec2{intrinsics_.focal_px * x / z + intrinsics_.cx(),
              intrinsics_.focal_px * y / z + intrinsics_.cy()};
}

Homography PinholeCamera::ground_homography() const { return plane_homography(0.0); }

Homography PinholeCamera::plane_homography(double height_m) const {
  // For a point (X, Y, z) on the plane z = height_m: camera coords =
  // R * ((X, Y, z) - C), so the homogeneous pixel is
  // K [r1 r2 (z*r3 - R C)] (X, Y, 1)^T where r1..r3 are the columns of R.
  // At z = 0 this is the classic ground homography K [r1 r2 -R C].
  const double f = intrinsics_.focal_px;
  const double cx = intrinsics_.cx();
  const double cy = intrinsics_.cy();

  // Columns of R are (right.x, down.x, forward.x) etc.; we need R's first two
  // columns, i.e. the world x and y axes expressed in camera coordinates.
  const Vec3 col_x{right_.x, down_.x, forward_.x};
  const Vec3 col_y{right_.y, down_.y, forward_.y};
  const Vec3 col_z{right_.z, down_.z, forward_.z};
  const Vec3 t{height_m * col_z.x - dot(right_, position_),
               height_m * col_z.y - dot(down_, position_),
               height_m * col_z.z - dot(forward_, position_)};

  std::array<std::array<double, 3>, 3> h{};
  const Vec3 cols[3] = {col_x, col_y, t};
  for (int j = 0; j < 3; ++j) {
    const Vec3& c = cols[j];
    h[0][static_cast<std::size_t>(j)] = f * c.x + cx * c.z;
    h[1][static_cast<std::size_t>(j)] = f * c.y + cy * c.z;
    h[2][static_cast<std::size_t>(j)] = c.z;
  }
  return Homography(h);
}

bool PinholeCamera::in_image(const Vec2& px) const {
  return px.x >= 0 && px.x < intrinsics_.width && px.y >= 0 && px.y < intrinsics_.height;
}

}  // namespace eecs::geometry
