// Plane-to-plane projective mapping. EECS uses ground-plane homographies
// between camera views to re-identify objects across cameras (paper §IV-C).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "geometry/vec.hpp"

namespace eecs::geometry {

class Homography {
 public:
  /// Identity mapping.
  Homography();

  /// From a row-major 3x3 matrix. Throws ContractViolation if h[2][2]
  /// normalization is impossible (all-zero matrix).
  explicit Homography(const std::array<std::array<double, 3>, 3>& h);

  /// Apply to a point. Returns nullopt when the point maps to infinity
  /// (denominator ~ 0).
  [[nodiscard]] std::optional<Vec2> apply(const Vec2& p) const;

  /// Inverse mapping. Throws std::runtime_error for singular homographies.
  [[nodiscard]] Homography inverse() const;

  /// Composition: (a * b)(p) == a(b(p)).
  friend Homography operator*(const Homography& a, const Homography& b);

  [[nodiscard]] double at(int r, int c) const { return m_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]; }

 private:
  std::array<std::array<double, 3>, 3> m_;
  void normalize();
};

/// A landmark correspondence between two planes (e.g. ground point seen in
/// two images, or world ground coordinates vs. image pixels).
struct PointPair {
  Vec2 from;
  Vec2 to;
};

/// Direct linear transform with Hartley normalization. Requires >= 4
/// non-degenerate correspondences; throws std::runtime_error on degeneracy.
[[nodiscard]] Homography estimate_homography_dlt(const std::vector<PointPair>& pairs);

struct RansacOptions {
  int iterations = 500;
  double inlier_threshold = 2.0;  ///< Max reprojection distance in pixels.
  int min_inliers = 4;
};

struct RansacResult {
  Homography homography;
  std::vector<int> inlier_indices;
};

/// RANSAC-robust homography estimation (paper cites Vincent & Laganiere
/// [25]); final model is re-fit on all inliers. Throws std::runtime_error if
/// no model reaches min_inliers.
[[nodiscard]] RansacResult estimate_homography_ransac(const std::vector<PointPair>& pairs,
                                                      Rng& rng, const RansacOptions& options = {});

}  // namespace eecs::geometry
