#include "reid/reid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "linalg/decomp.hpp"

namespace eecs::reid {

ColorGate::ColorGate(const std::vector<std::vector<float>>& features,
                     const std::vector<int>& labels, int pca_components) {
  EECS_EXPECTS(features.size() == labels.size());
  EECS_EXPECTS(features.size() >= 4);
  const int dim = static_cast<int>(features.front().size());
  EECS_EXPECTS(pca_components >= 1 && pca_components <= dim);

  linalg::Matrix data(static_cast<int>(features.size()), dim);
  for (int r = 0; r < data.rows(); ++r) {
    EECS_EXPECTS(static_cast<int>(features[static_cast<std::size_t>(r)].size()) == dim);
    for (int c = 0; c < dim; ++c) data(r, c) = features[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }
  pca_ = linalg::Pca(data, pca_components);

  // Differences of same-object pairs in PCA space -> covariance of the
  // within-object appearance variation.
  std::vector<std::vector<double>> diffs;
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t j = i + 1; j < features.size(); ++j) {
      if (labels[i] != labels[j]) continue;
      std::vector<double> fi(features[i].begin(), features[i].end());
      std::vector<double> fj(features[j].begin(), features[j].end());
      const auto pi = pca_.transform(fi);
      const auto pj = pca_.transform(fj);
      std::vector<double> d(pi.size());
      for (std::size_t k = 0; k < pi.size(); ++k) d[k] = pi[k] - pj[k];
      diffs.push_back(std::move(d));
    }
  }
  EECS_EXPECTS(!diffs.empty());

  linalg::Matrix diff_mat = linalg::Matrix::from_rows(diffs);
  linalg::Matrix cov(pca_components, pca_components);
  // Second moment about zero (differences of same-object pairs center at 0).
  for (int r = 0; r < diff_mat.rows(); ++r) {
    for (int i = 0; i < pca_components; ++i) {
      for (int j = i; j < pca_components; ++j) {
        cov(i, j) += diff_mat(r, i) * diff_mat(r, j);
      }
    }
  }
  for (int i = 0; i < pca_components; ++i) {
    for (int j = i; j < pca_components; ++j) {
      cov(i, j) /= static_cast<double>(diff_mat.rows());
      cov(j, i) = cov(i, j);
    }
  }
  // Regularize so inversion is well-posed even with few pairs.
  double trace = 0.0;
  for (int i = 0; i < pca_components; ++i) trace += cov(i, i);
  const double ridge = std::max(1e-8, 1e-3 * trace / pca_components);
  for (int i = 0; i < pca_components; ++i) cov(i, i) += ridge;
  inv_cov_ = linalg::invert_spd(cov);

  // Threshold at roughly the 95th percentile of same-object distances.
  std::vector<double> dists;
  dists.reserve(diffs.size());
  for (const auto& d : diffs) {
    const std::vector<double> md = inv_cov_ * std::span<const double>(d);
    dists.push_back(std::sqrt(std::max(0.0, linalg::dot(d, md))));
  }
  std::sort(dists.begin(), dists.end());
  threshold_ = dists[static_cast<std::size_t>(0.95 * (dists.size() - 1))] * 1.5;
  fitted_ = true;
}

double ColorGate::distance(std::span<const float> a, std::span<const float> b) const {
  EECS_EXPECTS(fitted_);
  std::vector<double> da(a.begin(), a.end());
  std::vector<double> db(b.begin(), b.end());
  const auto pa = pca_.transform(da);
  const auto pb = pca_.transform(db);
  return linalg::mahalanobis(pa, pb, inv_cov_);
}

ReIdentifier::ReIdentifier(std::vector<geometry::Homography> image_to_ground,
                           const ReIdParams& params)
    : image_to_ground_(std::move(image_to_ground)), params_(params) {
  EECS_EXPECTS(!image_to_ground_.empty());
}

std::optional<geometry::Vec2> ReIdentifier::ground_point(const ViewDetection& det) const {
  EECS_EXPECTS(det.camera >= 0 && det.camera < static_cast<int>(image_to_ground_.size()));
  return image_to_ground_[static_cast<std::size_t>(det.camera)].apply(
      {det.detection.box.foot_x(), det.detection.box.foot_y()});
}

namespace {

/// Disjoint-set forest over detection indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) { std::iota(parent_.begin(), parent_.end(), 0u); }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<ObjectGroup> ReIdentifier::group(const std::vector<ViewDetection>& detections) const {
  std::vector<std::optional<geometry::Vec2>> grounds(detections.size());
  for (std::size_t i = 0; i < detections.size(); ++i) grounds[i] = ground_point(detections[i]);

  UnionFind uf(detections.size());
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (!grounds[i]) continue;
    for (std::size_t j = i + 1; j < detections.size(); ++j) {
      if (!grounds[j]) continue;
      if (detections[i].camera == detections[j].camera) continue;
      if (geometry::distance(*grounds[i], *grounds[j]) > params_.ground_gate_m) continue;
      if (params_.use_color_gate && gate_.fitted() && !detections[i].color_feature.empty() &&
          !detections[j].color_feature.empty()) {
        if (gate_.distance(detections[i].color_feature, detections[j].color_feature) >
            gate_.threshold()) {
          continue;
        }
      }
      uf.unite(i, j);
    }
  }

  // Collect groups.
  std::vector<ObjectGroup> groups;
  std::vector<int> root_to_group(detections.size(), -1);
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (root_to_group[root] < 0) {
      root_to_group[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(root_to_group[root])].member_indices.push_back(
        static_cast<int>(i));
  }

  for (auto& g : groups) {
    geometry::Vec2 mean{0, 0};
    int n = 0;
    std::vector<double> probabilities;
    for (int idx : g.member_indices) {
      probabilities.push_back(detections[static_cast<std::size_t>(idx)].detection.probability);
      if (grounds[static_cast<std::size_t>(idx)]) {
        mean = mean + *grounds[static_cast<std::size_t>(idx)];
        ++n;
      }
    }
    if (n > 0) g.ground = (1.0 / n) * mean;
    g.fused_probability = fuse_probabilities(probabilities);
  }
  return groups;
}

double fuse_probabilities(const std::vector<double>& per_view) {
  double miss = 1.0;
  for (double p : per_view) miss *= (1.0 - std::clamp(p, 0.0, 1.0));
  return 1.0 - miss;
}

}  // namespace eecs::reid
