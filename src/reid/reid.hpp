// Cross-camera object re-identification (§IV-C): detections from different
// views are grouped into physical objects by (1) projecting the bounding
// box's foot point through each camera's ground homography into world
// coordinates and gating on ground distance, and (2) verifying appearance
// with a PCA-reduced mean-color feature under a Mahalanobis metric. Grouped
// detections are fused into a single confidence by Eq. (6).
#pragma once

#include <optional>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/homography.hpp"
#include "linalg/pca.hpp"

namespace eecs::reid {

/// A detection owned by one camera, with its uploaded color feature.
struct ViewDetection {
  int camera = 0;
  detect::Detection detection;
  std::vector<float> color_feature;  ///< 40-d (features::kColorFeatureDim).
};

/// Learned appearance gate: PCA reduction of color features plus a
/// Mahalanobis metric over reduced differences of same-object pairs.
class ColorGate {
 public:
  ColorGate() = default;

  /// Fit from color features and their object labels (same label = same
  /// physical object seen from different cameras). Requires >= 2 labels'
  /// worth of data and at least one same-object pair.
  ColorGate(const std::vector<std::vector<float>>& features, const std::vector<int>& labels,
            int pca_components = 8);

  [[nodiscard]] bool fitted() const { return fitted_; }

  /// Mahalanobis distance between two color features in the reduced space.
  [[nodiscard]] double distance(std::span<const float> a, std::span<const float> b) const;

  /// Distance below which two features are considered the same object;
  /// chosen at fit time from the same-object pair distribution.
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  bool fitted_ = false;
  linalg::Pca pca_;
  linalg::Matrix inv_cov_;
  double threshold_ = 0.0;
};

struct ReIdParams {
  /// Max ground-plane distance (meters) between foot points of the same
  /// object seen from two cameras.
  double ground_gate_m = 1.2;
  /// Use the color gate when fitted (ablation toggle).
  bool use_color_gate = true;
};

/// A group of view-detections attributed to one physical object.
struct ObjectGroup {
  std::vector<int> member_indices;   ///< Indices into the input vector.
  geometry::Vec2 ground;             ///< Mean projected ground position.
  double fused_probability = 0.0;    ///< Eq. (6): 1 - prod(1 - P_ij).
};

class ReIdentifier {
 public:
  /// `image_to_ground[c]` maps camera c's pixels to world ground coordinates
  /// (the inverse of the dataset-provided ground homography).
  ReIdentifier(std::vector<geometry::Homography> image_to_ground, const ReIdParams& params = {});

  void set_color_gate(ColorGate gate) { gate_ = std::move(gate); }
  [[nodiscard]] const ReIdParams& params() const { return params_; }

  /// Project a detection's foot point to the ground plane; nullopt if it
  /// maps to infinity.
  [[nodiscard]] std::optional<geometry::Vec2> ground_point(const ViewDetection& det) const;

  /// Group detections (across cameras) into objects. Detections from the
  /// same camera are never merged.
  [[nodiscard]] std::vector<ObjectGroup> group(const std::vector<ViewDetection>& detections) const;

 private:
  std::vector<geometry::Homography> image_to_ground_;
  ReIdParams params_;
  ColorGate gate_;
};

/// Eq. (6): combined true-positive probability of one object from the
/// per-view probabilities.
[[nodiscard]] double fuse_probabilities(const std::vector<double>& per_view);

}  // namespace eecs::reid
