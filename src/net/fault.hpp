// Deterministic fault-injection schedules for the simulated network (§I's
// disaster-recovery settings: cameras die, links drop packets). A FaultPlan
// describes extra per-direction loss, timed loss windows (blackouts), and
// node crash/reboot windows. Times are in network-clock units; the closed
// loop drives the clock with the video frame index, so a window of
// [1500, 1700) covers video frames 1500..1699. All faults are schedules, not
// random processes, so a faulted run is reproducible from (plan, seed).
#pragma once

#include <stdexcept>
#include <vector>

namespace eecs::net {

/// Extra loss on a link during [start, end). `node == -1` matches every
/// sender; otherwise only messages sent *from* that node are affected.
/// `loss_probability = 1` is a blackout.
struct LossWindow {
  double start = 0.0;
  double end = 0.0;
  double loss_probability = 1.0;
  int node = -1;
};

/// A node is down — neither transmits nor receives — during [start, end).
/// Reboot is modelled by the window ending; node state (e.g. a camera's
/// last-known-good assignment, kept in flash) survives the crash.
struct CrashWindow {
  int node = 0;
  double start = 0.0;
  double end = 0.0;
};

struct FaultPlan {
  /// Typed rejection of a malformed plan (negative/inverted windows, loss
  /// probabilities outside [0, 1], out-of-range node ids, overlapping crash
  /// windows for one node). Thrown by validate(); Network::set_fault_plan
  /// validates what it can before installing a plan, so a bad schedule fails
  /// loudly at construction instead of silently misbehaving mid-run.
  class ValidationError : public std::runtime_error {
   public:
    using std::runtime_error::runtime_error;
  };

  /// Extra loss applied to every camera -> controller send (node 0 is the
  /// controller by convention) on top of the link's own loss_probability.
  double uplink_loss = 0.0;
  /// Extra loss applied to every controller -> camera send.
  double downlink_loss = 0.0;
  std::vector<LossWindow> loss_windows;
  std::vector<CrashWindow> crashes;

  [[nodiscard]] bool empty() const {
    return uplink_loss == 0.0 && downlink_loss == 0.0 && loss_windows.empty() && crashes.empty();
  }

  /// True when `node` is inside one of its crash windows at `time`.
  [[nodiscard]] bool node_down(int node, double time) const;

  /// Effective loss probability of a send at `time`, combining the link's
  /// base loss with the plan's direction loss and any matching windows as
  /// independent loss sources. Returns `base_loss` unchanged (bit-exactly)
  /// when no fault applies.
  [[nodiscard]] double loss_probability(int from_node, int to_node, double time,
                                        double base_loss) const;

  /// Convenience: schedule a total blackout of every link during [start, end).
  void add_blackout(double start, double end) { loss_windows.push_back({start, end, 1.0, -1}); }

  /// Convenience: crash `node` at `start`, rebooting at `end`.
  void add_crash(int node, double start, double end) { crashes.push_back({node, start, end}); }

  /// Throws ValidationError unless the plan is well-formed: direction losses
  /// and window probabilities in [0, 1], every window with 0 <= start < end,
  /// node ids >= -1 (loss) / >= 0 (crash), and no two crash windows of the
  /// same node overlapping (a doubly-crashed node has no defined reboot
  /// instant). Overlapping *loss* windows stay legal — they compose as
  /// independent loss sources (see loss_probability()). When `node_count`
  /// is >= 0 it also bounds every referenced node id.
  void validate(int node_count = -1) const;
};

}  // namespace eecs::net
