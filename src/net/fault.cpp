#include "net/fault.hpp"

#include <algorithm>

namespace eecs::net {

bool FaultPlan::node_down(int node, double time) const {
  return std::any_of(crashes.begin(), crashes.end(), [&](const CrashWindow& w) {
    return w.node == node && time >= w.start && time < w.end;
  });
}

double FaultPlan::loss_probability(int from_node, int to_node, double time,
                                   double base_loss) const {
  double survive = 1.0;
  if (from_node != 0 && to_node == 0) {
    survive *= 1.0 - uplink_loss;
  } else if (from_node == 0) {
    survive *= 1.0 - downlink_loss;
  }
  for (const auto& w : loss_windows) {
    if ((w.node == -1 || w.node == from_node) && time >= w.start && time < w.end) {
      survive *= 1.0 - w.loss_probability;
    }
  }
  // No fault applies: hand back the base loss bit-exactly so fault-free runs
  // draw the same Bernoulli stream as before the fault layer existed.
  if (survive == 1.0) return base_loss;
  return std::clamp(1.0 - survive * (1.0 - base_loss), 0.0, 1.0);
}

}  // namespace eecs::net
