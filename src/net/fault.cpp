#include "net/fault.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace eecs::net {

namespace {

void reject(const std::string& what) { throw FaultPlan::ValidationError("FaultPlan: " + what); }

void check_window(double start, double end, const char* kind) {
  if (!(std::isfinite(start) && std::isfinite(end))) {
    reject(std::string(kind) + " window bounds must be finite");
  }
  if (start < 0.0) reject(std::string(kind) + " window starts at a negative time");
  if (end <= start) reject(std::string(kind) + " window is empty or inverted (end <= start)");
}

}  // namespace

void FaultPlan::validate(int node_count) const {
  const auto check_node = [&](int node, int min_id, const char* kind) {
    if (node < min_id) reject(std::string(kind) + " references node id below " + std::to_string(min_id));
    if (node_count >= 0 && node >= node_count) {
      reject(std::string(kind) + " references node " + std::to_string(node) + " but only " +
             std::to_string(node_count) + " nodes exist");
    }
  };
  if (!(uplink_loss >= 0.0 && uplink_loss <= 1.0)) reject("uplink_loss outside [0, 1]");
  if (!(downlink_loss >= 0.0 && downlink_loss <= 1.0)) reject("downlink_loss outside [0, 1]");
  for (const auto& w : loss_windows) {
    check_window(w.start, w.end, "loss");
    if (!(w.loss_probability >= 0.0 && w.loss_probability <= 1.0)) {
      reject("loss window probability outside [0, 1]");
    }
    check_node(w.node, -1, "loss window");
  }
  for (const auto& w : crashes) {
    check_window(w.start, w.end, "crash");
    check_node(w.node, 0, "crash window");
  }
  // Two crash windows of one node must not overlap: [s1, e1) and [s2, e2)
  // with s1 <= s2 < e1 leave the reboot instant ambiguous.
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      const CrashWindow& a = crashes[i];
      const CrashWindow& b = crashes[j];
      if (a.node == b.node && a.start < b.end && b.start < a.end) {
        reject("overlapping crash windows for node " + std::to_string(a.node));
      }
    }
  }
}

bool FaultPlan::node_down(int node, double time) const {
  return std::any_of(crashes.begin(), crashes.end(), [&](const CrashWindow& w) {
    return w.node == node && time >= w.start && time < w.end;
  });
}

double FaultPlan::loss_probability(int from_node, int to_node, double time,
                                   double base_loss) const {
  double survive = 1.0;
  if (from_node != 0 && to_node == 0) {
    survive *= 1.0 - uplink_loss;
  } else if (from_node == 0) {
    survive *= 1.0 - downlink_loss;
  }
  for (const auto& w : loss_windows) {
    if ((w.node == -1 || w.node == from_node) && time >= w.start && time < w.end) {
      survive *= 1.0 - w.loss_probability;
    }
  }
  // No fault applies: hand back the base loss bit-exactly so fault-free runs
  // draw the same Bernoulli stream as before the fault layer existed.
  if (survive == 1.0) return base_loss;
  return std::clamp(1.0 - survive * (1.0 - base_loss), 0.0, 1.0);
}

}  // namespace eecs::net
