#include "net/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace eecs::net {

int Network::add_node(const LinkQuality& link) {
  links_.push_back(link);
  node_radio_joules_.push_back(0.0);
  node_bytes_.push_back(0);
  return static_cast<int>(links_.size()) - 1;
}

TxResult Network::send(int from_node, int to_node, std::vector<std::uint8_t> payload,
                       TxClass tx_class) {
  EECS_EXPECTS(from_node >= 0 && from_node < node_count());
  EECS_EXPECTS(to_node >= 0 && to_node < node_count());
  const LinkQuality& link = links_[static_cast<std::size_t>(from_node)];

  TxResult result;
  if (faults_.node_down(from_node, now_)) {
    // The radio is off: nothing leaves the node and nothing is charged.
    result.delivered = false;
    return result;
  }

  result.tx_seconds = static_cast<double>(payload.size()) / link.bandwidth_bytes_per_s;
  if (tx_class == TxClass::Data) {
    result.tx_joules = radio_.tx_joules(payload.size());
    node_radio_joules_[static_cast<std::size_t>(from_node)] += result.tx_joules;
    node_bytes_[static_cast<std::size_t>(from_node)] += payload.size();
  }

  const double loss =
      faults_.loss_probability(from_node, to_node, now_, link.loss_probability);
  result.delivered = !rng_.bernoulli(loss);
  if (result.delivered) {
    queue_.push({now_ + result.tx_seconds + link.latency_s, sequence_++, from_node, to_node,
                 std::move(payload)});
  }
  return result;
}

std::vector<Network::Delivery> Network::advance_to(double until_time) {
  EECS_EXPECTS(until_time >= now_);
  std::vector<Delivery> out;
  while (!queue_.empty() && queue_.top().time <= until_time) {
    // priority_queue::top is const; copy is unavoidable without const_cast,
    // and payloads here are small.
    PendingDelivery pending = queue_.top();
    queue_.pop();
    if (faults_.node_down(pending.to_node, pending.time)) {
      ++rx_dropped_;
      continue;
    }
    out.push_back({pending.time, pending.from_node, pending.to_node, std::move(pending.payload)});
  }
  now_ = until_time;
  return out;
}

double Network::radio_joules(int node) const {
  EECS_EXPECTS(node >= 0 && node < node_count());
  return node_radio_joules_[static_cast<std::size_t>(node)];
}

std::uint64_t Network::bytes_sent(int node) const {
  EECS_EXPECTS(node >= 0 && node < node_count());
  return node_bytes_[static_cast<std::size_t>(node)];
}

}  // namespace eecs::net
