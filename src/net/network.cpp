#include "net/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "obs/telemetry.hpp"

namespace eecs::net {

namespace {

/// Counter slot for an encoded payload: its MessageType tag, or 0 for empty
/// or unrecognized payloads (raw-byte tests, future types).
int message_kind(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return 0;
  const std::uint8_t tag = payload.front();
  return tag >= 1 && tag <= 5 ? static_cast<int>(tag) : 0;
}

}  // namespace

Network::Network(const energy::RadioModel& radio, std::uint64_t seed)
    : radio_(radio), rng_(seed) {
  if constexpr (obs::kEnabled) {
    static constexpr const char* kSent[kNumMessageKinds] = {
        "net.tx.other.sent",          "net.tx.feature_upload.sent",
        "net.tx.detection_metadata.sent", "net.tx.algorithm_assignment.sent",
        "net.tx.energy_report.sent",  "net.tx.assignment_ack.sent"};
    static constexpr const char* kLost[kNumMessageKinds] = {
        "net.tx.other.lost",          "net.tx.feature_upload.lost",
        "net.tx.detection_metadata.lost", "net.tx.algorithm_assignment.lost",
        "net.tx.energy_report.lost",  "net.tx.assignment_ack.lost"};
    obs::MetricsRegistry& metrics = obs::current().metrics();
    for (int k = 0; k < kNumMessageKinds; ++k) {
      tx_sent_[k] = &metrics.counter(kSent[k]);
      tx_lost_[k] = &metrics.counter(kLost[k]);
    }
    for (int c = 0; c < obs::kNumEnergyCauses; ++c) {
      const std::string base =
          std::string("net.tx.cause.") + obs::to_string(static_cast<obs::EnergyCause>(c));
      cause_sent_[c] = &metrics.counter(base + ".sent");
      cause_lost_[c] = &metrics.counter(base + ".lost");
    }
    rx_delivered_metric_ = &metrics.counter("net.rx.delivered");
    rx_dropped_metric_ = &metrics.counter("net.rx.dropped");
  }
}

int Network::add_node(const LinkQuality& link) {
  links_.push_back(link);
  node_radio_joules_.push_back(0.0);
  node_bytes_.push_back(0);
  return static_cast<int>(links_.size()) - 1;
}

TxResult Network::send(int from_node, int to_node, std::vector<std::uint8_t> payload,
                       TxClass tx_class, obs::EnergyCause cause) {
  EECS_EXPECTS(from_node >= 0 && from_node < node_count());
  EECS_EXPECTS(to_node >= 0 && to_node < node_count());
  const LinkQuality& link = links_[static_cast<std::size_t>(from_node)];
  const int kind = message_kind(payload);
  const int cause_slot = static_cast<int>(cause);

  TxResult result;
  if (faults_.node_down(from_node, now_)) {
    // The radio is off: nothing leaves the node and nothing is charged.
    // Not counted as sent or lost — the message never reached the air.
    result.delivered = false;
    return result;
  }
  if (tx_sent_[kind] != nullptr) tx_sent_[kind]->inc();
  if (cause_sent_[cause_slot] != nullptr) cause_sent_[cause_slot]->inc();

  result.tx_seconds = static_cast<double>(payload.size()) / link.bandwidth_bytes_per_s;
  if (tx_class == TxClass::Data) {
    result.tx_joules = radio_.tx_joules(payload.size());
    node_radio_joules_[static_cast<std::size_t>(from_node)] += result.tx_joules;
    node_bytes_[static_cast<std::size_t>(from_node)] += payload.size();
  }

  const double loss =
      faults_.loss_probability(from_node, to_node, now_, link.loss_probability);
  result.delivered = !rng_.bernoulli(loss);
  if (result.delivered) {
    queue_.push({now_ + result.tx_seconds + link.latency_s, sequence_++, from_node, to_node,
                 std::move(payload)});
  } else {
    if (tx_lost_[kind] != nullptr) tx_lost_[kind]->inc();
    if (cause_lost_[cause_slot] != nullptr) cause_lost_[cause_slot]->inc();
  }
  return result;
}

std::vector<Network::Delivery> Network::advance_to(double until_time) {
  EECS_EXPECTS(until_time >= now_);
  std::vector<Delivery> out;
  while (!queue_.empty() && queue_.top().time <= until_time) {
    // priority_queue::top is const; copy is unavoidable without const_cast,
    // and payloads here are small.
    PendingDelivery pending = queue_.top();
    queue_.pop();
    if (faults_.node_down(pending.to_node, pending.time)) {
      ++rx_dropped_;
      if (rx_dropped_metric_ != nullptr) rx_dropped_metric_->inc();
      continue;
    }
    if (rx_delivered_metric_ != nullptr) rx_delivered_metric_->inc();
    out.push_back({pending.time, pending.from_node, pending.to_node, std::move(pending.payload)});
  }
  now_ = until_time;
  return out;
}

double Network::radio_joules(int node) const {
  EECS_EXPECTS(node >= 0 && node < node_count());
  return node_radio_joules_[static_cast<std::size_t>(node)];
}

std::uint64_t Network::bytes_sent(int node) const {
  EECS_EXPECTS(node >= 0 && node < node_count());
  return node_bytes_[static_cast<std::size_t>(node)];
}

Network::State Network::export_state() const {
  State state;
  state.now = now_;
  state.sequence = sequence_;
  state.rx_dropped = rx_dropped_;
  state.rng = rng_.state();
  state.node_radio_joules = node_radio_joules_;
  state.node_bytes = node_bytes_;
  // priority_queue has no iteration; drain a copy. Entries come out in
  // delivery order, which import_state re-heapifies identically.
  auto queue_copy = queue_;
  state.queue.reserve(queue_copy.size());
  while (!queue_copy.empty()) {
    const PendingDelivery& p = queue_copy.top();
    state.queue.push_back({p.time, p.sequence, p.from_node, p.to_node, p.payload});
    queue_copy.pop();
  }
  return state;
}

void Network::import_state(State state) {
  EECS_EXPECTS(state.node_radio_joules.size() == node_radio_joules_.size());
  EECS_EXPECTS(state.node_bytes.size() == node_bytes_.size());
  now_ = state.now;
  sequence_ = state.sequence;
  rx_dropped_ = state.rx_dropped;
  rng_.restore(state.rng);
  node_radio_joules_ = std::move(state.node_radio_joules);
  node_bytes_ = std::move(state.node_bytes);
  queue_ = {};
  for (QueuedMessage& m : state.queue) {
    queue_.push({m.time, m.sequence, m.from_node, m.to_node, std::move(m.payload)});
  }
}

}  // namespace eecs::net
