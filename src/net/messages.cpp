#include "net/messages.hpp"

namespace eecs::net {

namespace {

void check_type(ByteReader& reader, MessageType expected) {
  const auto type = static_cast<MessageType>(reader.read_u8());
  if (type != expected) throw ByteReader::DecodeError("unexpected message type");
}

}  // namespace

std::vector<std::uint8_t> encode(const FeatureUploadMsg& msg) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MessageType::FeatureUpload));
  w.write_i32(msg.camera_id);
  w.write_i32(msg.frame_index);
  w.write_i32(msg.feature_dim);
  w.write_f64(msg.energy_budget);
  w.write_f32_vector(msg.features);
  return w.take();
}

std::vector<std::uint8_t> encode(const DetectionMetadataMsg& msg) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MessageType::DetectionMetadata));
  w.write_i32(msg.camera_id);
  w.write_i32(msg.frame_index);
  w.write_u8(msg.algorithm);
  w.write_u32(static_cast<std::uint32_t>(msg.objects.size()));
  for (const auto& obj : msg.objects) {
    w.write_u16(obj.x);
    w.write_u16(obj.y);
    w.write_u16(obj.w);
    w.write_u16(obj.h);
    w.write_f32(obj.probability);
    // Fixed-size color feature: exactly 40 floats (160 bytes) as in §V-A.
    EECS_EXPECTS(obj.color_feature.size() == 40);
    for (float v : obj.color_feature) w.write_f32(v);
  }
  return w.take();
}

std::vector<std::uint8_t> encode(const AlgorithmAssignmentMsg& msg) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MessageType::AlgorithmAssignment));
  w.write_i32(msg.camera_id);
  w.write_u32(msg.sequence);
  w.write_u8(msg.algorithm);
  w.write_f64(msg.threshold);
  w.write_u8(msg.active);
  return w.take();
}

std::vector<std::uint8_t> encode(const EnergyReportMsg& msg) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MessageType::EnergyReport));
  w.write_i32(msg.camera_id);
  w.write_f64(msg.residual_joules);
  return w.take();
}

std::vector<std::uint8_t> encode(const AssignmentAckMsg& msg) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MessageType::AssignmentAck));
  w.write_i32(msg.camera_id);
  w.write_u32(msg.sequence);
  return w.take();
}

MessageType peek_type(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  const std::uint8_t tag = reader.read_u8();
  if (tag < static_cast<std::uint8_t>(MessageType::FeatureUpload) ||
      tag > static_cast<std::uint8_t>(MessageType::AssignmentAck)) {
    throw ByteReader::DecodeError("unknown message type");
  }
  return static_cast<MessageType>(tag);
}

FeatureUploadMsg decode_feature_upload(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::FeatureUpload);
  FeatureUploadMsg msg;
  msg.camera_id = r.read_i32();
  msg.frame_index = r.read_i32();
  msg.feature_dim = r.read_i32();
  msg.energy_budget = r.read_f64();
  msg.features = r.read_f32_vector();
  if (msg.feature_dim < 0) throw ByteReader::DecodeError("negative feature_dim");
  if (msg.feature_dim > 0 && msg.features.size() % static_cast<std::size_t>(msg.feature_dim) != 0) {
    throw ByteReader::DecodeError("feature payload not a multiple of feature_dim");
  }
  return msg;
}

DetectionMetadataMsg decode_detection_metadata(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::DetectionMetadata);
  DetectionMetadataMsg msg;
  msg.camera_id = r.read_i32();
  msg.frame_index = r.read_i32();
  msg.algorithm = r.read_u8();
  const std::uint32_t count = r.read_u32();
  // Each object is exactly 172 wire bytes; a count that cannot fit in the
  // remaining payload is a corrupt length prefix, not a huge allocation.
  if (static_cast<std::size_t>(count) * 172 > r.remaining()) {
    throw ByteReader::DecodeError("object count exceeds payload");
  }
  msg.objects.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ObjectMetadata obj;
    obj.x = r.read_u16();
    obj.y = r.read_u16();
    obj.w = r.read_u16();
    obj.h = r.read_u16();
    obj.probability = r.read_f32();
    obj.color_feature.resize(40);
    for (auto& v : obj.color_feature) v = r.read_f32();
    msg.objects.push_back(std::move(obj));
  }
  return msg;
}

AlgorithmAssignmentMsg decode_algorithm_assignment(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::AlgorithmAssignment);
  AlgorithmAssignmentMsg msg;
  msg.camera_id = r.read_i32();
  msg.sequence = r.read_u32();
  msg.algorithm = r.read_u8();
  msg.threshold = r.read_f64();
  msg.active = r.read_u8();
  return msg;
}

EnergyReportMsg decode_energy_report(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::EnergyReport);
  EnergyReportMsg msg;
  msg.camera_id = r.read_i32();
  msg.residual_joules = r.read_f64();
  return msg;
}

AssignmentAckMsg decode_assignment_ack(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::AssignmentAck);
  AssignmentAckMsg msg;
  msg.camera_id = r.read_i32();
  msg.sequence = r.read_u32();
  return msg;
}

}  // namespace eecs::net
