// Message-level wireless network simulator: per-link bandwidth/latency/loss,
// radio energy accounting, and an event queue delivering messages in time
// order. Camera uplinks charge the sender's radio energy; the controller is
// mains-powered (§IV). An optional FaultPlan injects deterministic link
// degradation and node crashes on top of the base link quality.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "energy/model.hpp"
#include "net/fault.hpp"
#include "obs/ledger.hpp"

namespace eecs::obs {
class Counter;
}

namespace eecs::net {

struct LinkQuality {
  double bandwidth_bytes_per_s = 2.5e6;
  double latency_s = 0.004;
  double loss_probability = 0.0;
};

/// Traffic class of a transmission.
enum class TxClass : std::uint8_t {
  Data,     ///< Application payload: charged radio energy and byte counters.
  Control,  ///< Piggybacked link-layer frame (acks, heartbeats, bookkeeping):
            ///< subject to loss and latency, but charged no application
            ///< radio energy.
};

/// Outcome of one transmission attempt.
struct TxResult {
  bool delivered = true;
  double tx_seconds = 0.0;
  double tx_joules = 0.0;
};

class Network {
 public:
  explicit Network(const energy::RadioModel& radio, std::uint64_t seed);

  /// Register a node; returns its node id. Link quality applies to its
  /// uplink toward the controller (node 0 by convention).
  int add_node(const LinkQuality& link);

  /// Install a fault-injection schedule. An empty plan (the default) leaves
  /// behaviour bit-identical to a network without the fault layer. The plan
  /// is validated on installation (FaultPlan::ValidationError on a malformed
  /// schedule); node ids are range-checked lazily because nodes may be added
  /// after the plan — call fault_plan().validate(node_count()) for that.
  void set_fault_plan(FaultPlan plan) {
    plan.validate();
    faults_ = std::move(plan);
  }
  [[nodiscard]] const FaultPlan& fault_plan() const { return faults_; }

  /// True when `node` is crashed at the current clock.
  [[nodiscard]] bool node_down(int node) const { return faults_.node_down(node, now_); }

  [[nodiscard]] int node_count() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] double now() const { return now_; }

  /// Send bytes from a node; energy is charged per the radio model and the
  /// message is queued for delivery after the serialization + latency delay.
  /// Lost messages still cost the sender transmit energy. A send from a
  /// crashed node is silently dropped and costs nothing (the radio is off).
  /// `cause` tags the attempt for the energy-audit cause counters
  /// (`net.tx.cause.<cause>.sent/.lost`): callers pass Retry for
  /// re-transmissions and Heartbeat for liveness traffic.
  TxResult send(int from_node, int to_node, std::vector<std::uint8_t> payload,
                TxClass tx_class = TxClass::Data,
                obs::EnergyCause cause = obs::EnergyCause::Tx);

  struct Delivery {
    double time = 0.0;
    int from_node = 0;
    int to_node = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Pop all messages deliverable up to (and including) `until_time`,
  /// advancing the clock. Messages arrive in delivery-time order; ties are
  /// broken FIFO by send order. Deliveries to a node that is crashed at the
  /// delivery instant are dropped (counted in rx_dropped()).
  std::vector<Delivery> advance_to(double until_time);

  /// Total radio energy spent by a node so far.
  [[nodiscard]] double radio_joules(int node) const;
  /// Total payload bytes offered by a node (including lost messages).
  [[nodiscard]] std::uint64_t bytes_sent(int node) const;
  /// Messages dropped at the receiver because it was crashed at delivery time.
  [[nodiscard]] std::uint64_t rx_dropped() const { return rx_dropped_; }

  /// A message accepted for delivery but not yet delivered (checkpoint view
  /// of the event queue).
  struct QueuedMessage {
    double time = 0.0;
    std::uint64_t sequence = 0;
    int from_node = 0;
    int to_node = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Full dynamic state for checkpoint/restore: clock, send sequence, RNG
  /// stream, per-node energy/byte tallies, receiver-drop count, and the
  /// undelivered event queue. Links and the fault plan are configuration,
  /// not state — a restored network must be built with the same ones.
  struct State {
    double now = 0.0;
    std::uint64_t sequence = 0;
    std::uint64_t rx_dropped = 0;
    Rng::State rng;
    std::vector<double> node_radio_joules;
    std::vector<std::uint64_t> node_bytes;
    std::vector<QueuedMessage> queue;
  };
  [[nodiscard]] State export_state() const;
  /// Restores export_state()'s capture; requires the same node topology
  /// (node counts must match). Subsequent sends/deliveries are bit-identical
  /// to a network that never went through the save/restore cycle.
  void import_state(State state);

 private:
  struct PendingDelivery {
    double time;
    std::uint64_t sequence;  ///< FIFO tie-break.
    int from_node;
    int to_node;
    std::vector<std::uint8_t> payload;
  };
  struct Later {
    bool operator()(const PendingDelivery& a, const PendingDelivery& b) const {
      return a.time != b.time ? a.time > b.time : a.sequence > b.sequence;
    }
  };

  /// MessageType tags 1..5 plus slot 0 for empty/unknown payloads.
  static constexpr int kNumMessageKinds = 6;

  /// Per-message-type telemetry counters of the obs session current at
  /// construction, hoisted once so send/advance_to never touch the registry
  /// map (null under EECS_OBS_OFF). Keyed by the encoded type tag — the
  /// network stays payload-agnostic and never decodes.
  obs::Counter* tx_sent_[kNumMessageKinds] = {};
  obs::Counter* tx_lost_[kNumMessageKinds] = {};
  /// Same hoisting, keyed by the caller-declared energy cause of the attempt
  /// (tx/retry/heartbeat) — the audit-ledger view of the same traffic.
  obs::Counter* cause_sent_[obs::kNumEnergyCauses] = {};
  obs::Counter* cause_lost_[obs::kNumEnergyCauses] = {};
  obs::Counter* rx_delivered_metric_ = nullptr;
  obs::Counter* rx_dropped_metric_ = nullptr;

  energy::RadioModel radio_;
  Rng rng_;
  FaultPlan faults_;
  std::vector<LinkQuality> links_;
  std::vector<double> node_radio_joules_;
  std::vector<std::uint64_t> node_bytes_;
  std::priority_queue<PendingDelivery, std::vector<PendingDelivery>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  std::uint64_t rx_dropped_ = 0;
};

}  // namespace eecs::net
