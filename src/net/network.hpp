// Message-level wireless network simulator: per-link bandwidth/latency/loss,
// radio energy accounting, and an event queue delivering messages in time
// order. Camera uplinks charge the sender's radio energy; the controller is
// mains-powered (§IV).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "energy/model.hpp"

namespace eecs::net {

struct LinkQuality {
  double bandwidth_bytes_per_s = 2.5e6;
  double latency_s = 0.004;
  double loss_probability = 0.0;
};

/// Outcome of one transmission attempt.
struct TxResult {
  bool delivered = true;
  double tx_seconds = 0.0;
  double tx_joules = 0.0;
};

class Network {
 public:
  explicit Network(const energy::RadioModel& radio, std::uint64_t seed)
      : radio_(radio), rng_(seed) {}

  /// Register a node; returns its node id. Link quality applies to its
  /// uplink toward the controller (node 0 by convention).
  int add_node(const LinkQuality& link);

  [[nodiscard]] int node_count() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] double now() const { return now_; }

  /// Send bytes from a node; energy is charged per the radio model and the
  /// message is queued for delivery after the serialization + latency delay.
  /// Lost messages still cost the sender transmit energy.
  TxResult send(int from_node, int to_node, std::vector<std::uint8_t> payload);

  struct Delivery {
    double time = 0.0;
    int from_node = 0;
    int to_node = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Pop all messages deliverable up to (and including) `until_time`,
  /// advancing the clock. Messages arrive in delivery-time order.
  std::vector<Delivery> advance_to(double until_time);

  /// Total radio energy spent by a node so far.
  [[nodiscard]] double radio_joules(int node) const;
  /// Total payload bytes offered by a node (including lost messages).
  [[nodiscard]] std::uint64_t bytes_sent(int node) const;

 private:
  struct PendingDelivery {
    double time;
    std::uint64_t sequence;  ///< FIFO tie-break.
    int from_node;
    int to_node;
    std::vector<std::uint8_t> payload;
  };
  struct Later {
    bool operator()(const PendingDelivery& a, const PendingDelivery& b) const {
      return a.time != b.time ? a.time > b.time : a.sequence > b.sequence;
    }
  };

  energy::RadioModel radio_;
  Rng rng_;
  std::vector<LinkQuality> links_;
  std::vector<double> node_radio_joules_;
  std::vector<std::uint64_t> node_bytes_;
  std::priority_queue<PendingDelivery, std::vector<PendingDelivery>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
};

}  // namespace eecs::net
