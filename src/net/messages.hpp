// Wire messages between camera sensors and the central controller (Fig. 2 of
// the paper). Sizes follow §V-A: each detected object costs 172 bytes on the
// wire (8 position + 4 probability + 160 color feature).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "detect/detection.hpp"

namespace eecs::net {

enum class MessageType : std::uint8_t {
  FeatureUpload = 1,
  DetectionMetadata = 2,
  AlgorithmAssignment = 3,
  EnergyReport = 4,
  AssignmentAck = 5,
};

/// Camera -> controller: frame features for video comparison (§IV-B.1).
struct FeatureUploadMsg {
  std::int32_t camera_id = 0;
  std::int32_t frame_index = 0;
  std::int32_t feature_dim = 0;
  std::vector<float> features;  ///< num_frames x feature_dim, row-major.
  double energy_budget = 0.0;   ///< B_j, piggybacked on the upload.
};

/// One detected object's metadata (172 bytes payload on the wire).
struct ObjectMetadata {
  std::uint16_t x = 0, y = 0, w = 0, h = 0;  ///< Bounding box (8 bytes).
  float probability = 0.0f;                  ///< Detection probability (4 bytes).
  std::vector<float> color_feature;          ///< 40 floats (160 bytes).
};

/// Camera -> controller: per-frame detection results.
struct DetectionMetadataMsg {
  std::int32_t camera_id = 0;
  std::int32_t frame_index = 0;
  std::uint8_t algorithm = 0;  ///< detect::AlgorithmId.
  std::vector<ObjectMetadata> objects;
};

/// Controller -> camera: the algorithm (and operating threshold) to use.
/// Sequence-numbered so retransmissions and stale duplicates are idempotent;
/// the camera acks the sequence and applies only monotonically newer ones.
struct AlgorithmAssignmentMsg {
  std::int32_t camera_id = 0;
  std::uint32_t sequence = 0;  ///< Monotonic per controller; acked by the camera.
  std::uint8_t algorithm = 0;
  double threshold = 0.0;
  std::uint8_t active = 1;  ///< 0: camera not in the chosen subset.
};

/// Camera -> controller: residual battery energy. Doubles as the liveness
/// heartbeat — a camera silent past the liveness timeout is presumed dead.
struct EnergyReportMsg {
  std::int32_t camera_id = 0;
  double residual_joules = 0.0;
};

/// Camera -> controller: confirms receipt of an AlgorithmAssignmentMsg.
struct AssignmentAckMsg {
  std::int32_t camera_id = 0;
  std::uint32_t sequence = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const FeatureUploadMsg& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const DetectionMetadataMsg& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const AlgorithmAssignmentMsg& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const EnergyReportMsg& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const AssignmentAckMsg& msg);

/// Type tag of an encoded message; throws ByteReader::DecodeError when empty
/// or when the tag is not a known MessageType.
[[nodiscard]] MessageType peek_type(std::span<const std::uint8_t> bytes);

// Decoders are hardened against truncated/corrupt payloads: every one throws
// ByteReader::DecodeError (never reads out of bounds or allocates from an
// unvalidated length prefix) on malformed bytes.
[[nodiscard]] FeatureUploadMsg decode_feature_upload(std::span<const std::uint8_t> bytes);
[[nodiscard]] DetectionMetadataMsg decode_detection_metadata(std::span<const std::uint8_t> bytes);
[[nodiscard]] AlgorithmAssignmentMsg decode_algorithm_assignment(std::span<const std::uint8_t> bytes);
[[nodiscard]] EnergyReportMsg decode_energy_report(std::span<const std::uint8_t> bytes);
[[nodiscard]] AssignmentAckMsg decode_assignment_ack(std::span<const std::uint8_t> bytes);

}  // namespace eecs::net
