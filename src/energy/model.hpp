// Energy models: CPU (counter-based), radio (per-byte + per-message), battery
// accounting, and the per-frame budget arithmetic of §VI ("Computing energy
// costs and budget").
#pragma once

#include <cstddef>

#include "common/contracts.hpp"
#include "energy/cost.hpp"

namespace eecs::obs {
class Gauge;
}

namespace eecs::energy {

/// Converts operation counts to Joules. The default constants are calibrated
/// so the four detectors land near the paper's measured J/frame on dataset #1
/// (Table II); every other ratio (resolution scaling, algorithm ordering)
/// follows from the actual counted work.
struct CpuEnergyModel {
  double joules_per_pixel_op = 6.8e-8;
  double joules_per_feature_op = 6.8e-8;
  double joules_per_classifier_op = 6.8e-8;
  /// Smartphone SoC idle/overhead charge per processed frame.
  double joules_fixed_per_frame = 0.05;

  [[nodiscard]] double joules(const CostCounter& c) const {
    return joules_fixed_per_frame + joules_per_pixel_op * static_cast<double>(c.pixel_ops) +
           joules_per_feature_op * static_cast<double>(c.feature_ops) +
           joules_per_classifier_op * static_cast<double>(c.classifier_ops);
  }

  /// Effective smartphone throughput used to report "processing time per
  /// frame" next to energy (Tables II-IV). Ops per second.
  double ops_per_second = 1.0e7;

  [[nodiscard]] double seconds(const CostCounter& c) const {
    return static_cast<double>(c.compute_ops()) / ops_per_second;
  }
};

/// WiFi radio model: energy to transmit a payload from a camera node to the
/// controller. Per-byte cost plus per-message (wakeup/header) overhead.
struct RadioModel {
  double joules_per_byte = 2.0e-7;
  double joules_per_message = 0.002;
  double bytes_per_second = 2.5e6;  ///< ~20 Mbit/s effective WiFi goodput.

  [[nodiscard]] double tx_joules(std::size_t bytes) const {
    return joules_per_message + joules_per_byte * static_cast<double>(bytes);
  }

  [[nodiscard]] double tx_seconds(std::size_t bytes) const {
    return static_cast<double>(bytes) / bytes_per_second;
  }
};

/// Remaining-charge accounting for one camera node.
class Battery {
 public:
  explicit Battery(double capacity_joules) : capacity_(capacity_joules), residual_(capacity_joules) {
    EECS_EXPECTS(capacity_joules > 0.0);
  }

  /// Drain energy; clamps at empty and returns the amount actually drained.
  double drain(double joules);

  /// Checkpoint restore: set the residual charge directly (clamped to
  /// [0, capacity]) and republish any bound gauge.
  void restore_residual(double joules);

  /// Mirror the residual charge into a telemetry gauge: published immediately
  /// and after every drain. Pass nullptr to unbind. The battery does not own
  /// the gauge; the binder must keep its registry alive.
  void bind_residual_gauge(obs::Gauge* gauge);

  [[nodiscard]] double residual() const { return residual_; }
  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] double consumed() const { return capacity_ - residual_; }
  [[nodiscard]] bool empty() const { return residual_ <= 0.0; }

 private:
  double capacity_;
  double residual_;
  obs::Gauge* residual_gauge_ = nullptr;
};

/// §VI budget arithmetic: an expected operation time and frame-processing
/// period determine how many frames the battery must last for; the residual
/// charge divided by that count is the per-frame energy budget B_j.
struct BudgetPlan {
  double operation_hours = 6.0;
  double seconds_per_frame = 2.0;  ///< One processed frame every N seconds.

  [[nodiscard]] long frames_remaining() const {
    return static_cast<long>(operation_hours * 3600.0 / seconds_per_frame);
  }

  /// Per-frame budget given the node's residual energy.
  [[nodiscard]] double per_frame_budget(double residual_joules) const {
    const long frames = frames_remaining();
    EECS_EXPECTS(frames > 0);
    return residual_joules / static_cast<double>(frames);
  }
};

}  // namespace eecs::energy
