// Operation counting. Detectors and feature extractors never time
// themselves; they report *what they computed* (pixels touched, feature
// multiply-accumulates, classifier evaluations, bytes moved) and the energy
// model converts counts to Joules. This is the repository's substitute for
// the paper's PowerTutor measurements: the ratios between algorithms and
// resolutions come out of real computation counts.
#pragma once

#include <cstdint>

namespace eecs::energy {

struct CostCounter {
  std::uint64_t pixel_ops = 0;       ///< Per-pixel image passes (blur, resize, channels).
  std::uint64_t feature_ops = 0;     ///< Feature multiply-accumulates (HOG bins, census bits...).
  std::uint64_t classifier_ops = 0;  ///< Classifier MACs (SVM dots, tree node visits).
  std::uint64_t bytes_tx = 0;        ///< Radio payload bytes.
  /// Sliding-window accounting (not energy-bearing: the joules of a window
  /// are already in the op counts above; compute_ops() excludes these).
  /// `windows_evaluated` counts anchors actually scored; `windows_pruned`
  /// counts anchors the context gate ruled out before any work. Their sum is
  /// the full-sweep anchor count, so gate-off runs report pruned == 0 and the
  /// exact same evaluated count a pre-gate build did.
  std::uint64_t windows_evaluated = 0;
  std::uint64_t windows_pruned = 0;

  void add_pixels(std::uint64_t n) { pixel_ops += n; }
  void add_features(std::uint64_t n) { feature_ops += n; }
  void add_classifier(std::uint64_t n) { classifier_ops += n; }
  void add_bytes(std::uint64_t n) { bytes_tx += n; }
  void add_windows(std::uint64_t evaluated, std::uint64_t pruned) {
    windows_evaluated += evaluated;
    windows_pruned += pruned;
  }

  CostCounter& operator+=(const CostCounter& rhs) {
    pixel_ops += rhs.pixel_ops;
    feature_ops += rhs.feature_ops;
    classifier_ops += rhs.classifier_ops;
    bytes_tx += rhs.bytes_tx;
    windows_evaluated += rhs.windows_evaluated;
    windows_pruned += rhs.windows_pruned;
    return *this;
  }

  [[nodiscard]] std::uint64_t compute_ops() const {
    return pixel_ops + feature_ops + classifier_ops;
  }

  friend CostCounter operator+(CostCounter lhs, const CostCounter& rhs) { return lhs += rhs; }
  friend bool operator==(const CostCounter&, const CostCounter&) = default;
};

}  // namespace eecs::energy
