#include "energy/model.hpp"

#include <algorithm>

namespace eecs::energy {

double Battery::drain(double joules) {
  EECS_EXPECTS(joules >= 0.0);
  const double drained = std::min(joules, residual_);
  residual_ -= drained;
  return drained;
}

}  // namespace eecs::energy
