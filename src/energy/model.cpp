#include "energy/model.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace eecs::energy {

double Battery::drain(double joules) {
  EECS_EXPECTS(joules >= 0.0);
  const double drained = std::min(joules, residual_);
  residual_ -= drained;
  if (residual_gauge_ != nullptr) residual_gauge_->set(residual_);
  return drained;
}

void Battery::restore_residual(double joules) {
  residual_ = std::clamp(joules, 0.0, capacity_);
  if (residual_gauge_ != nullptr) residual_gauge_->set(residual_);
}

void Battery::bind_residual_gauge(obs::Gauge* gauge) {
  residual_gauge_ = gauge;
  if (residual_gauge_ != nullptr) residual_gauge_->set(residual_);
}

}  // namespace eecs::energy
