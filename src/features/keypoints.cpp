#include "features/keypoints.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/integral.hpp"

namespace eecs::features {

namespace {

/// Box-filter approximations of second derivatives at half-size s.
struct HessianResponses {
  double dxx, dyy, dxy;
};

HessianResponses hessian_at(const imaging::IntegralImage& ii, int x, int y, int s) {
  // Dxx: [-1 2 -1] pattern of three vertical s x 2s boxes.
  const double left = ii.rect_sum(x - 3 * s / 2, y - s, x - s / 2, y + s);
  const double mid = ii.rect_sum(x - s / 2, y - s, x + s / 2, y + s);
  const double right = ii.rect_sum(x + s / 2, y - s, x + 3 * s / 2, y + s);
  const double dxx = mid * 2.0 - left - right;

  const double top = ii.rect_sum(x - s, y - 3 * s / 2, x + s, y - s / 2);
  const double vmid = ii.rect_sum(x - s, y - s / 2, x + s, y + s / 2);
  const double bottom = ii.rect_sum(x - s, y + s / 2, x + s, y + 3 * s / 2);
  const double dyy = vmid * 2.0 - top - bottom;

  // Dxy: four diagonal quadrant boxes.
  const double q1 = ii.rect_sum(x - s, y - s, x, y);
  const double q2 = ii.rect_sum(x, y - s, x + s, y);
  const double q3 = ii.rect_sum(x - s, y, x, y + s);
  const double q4 = ii.rect_sum(x, y, x + s, y + s);
  const double dxy = (q1 + q4) - (q2 + q3);

  // Normalize by filter area so responses are scale-comparable.
  const double area = static_cast<double>(s) * static_cast<double>(s);
  return {dxx / area, dyy / area, dxy / area};
}

}  // namespace

std::vector<Keypoint> detect_keypoints(const imaging::Image& img, const KeypointParams& params,
                                       energy::CostCounter* cost) {
  EECS_EXPECTS(!params.scales.empty());
  const imaging::Image gray = imaging::to_gray(img);
  const imaging::IntegralImage ii(gray);

  // Response map per scale, sampled on a stride-2 lattice for speed.
  constexpr int kStride = 2;
  const int gw = gray.width() / kStride;
  const int gh = gray.height() / kStride;

  std::vector<std::vector<float>> responses(params.scales.size());
  for (std::size_t si = 0; si < params.scales.size(); ++si) {
    const int s = params.scales[si];
    auto& map = responses[si];
    map.assign(static_cast<std::size_t>(gw) * static_cast<std::size_t>(gh), 0.0f);
    for (int gy = 0; gy < gh; ++gy) {
      for (int gx = 0; gx < gw; ++gx) {
        const int x = gx * kStride;
        const int y = gy * kStride;
        if (x < 2 * s || y < 2 * s || x >= gray.width() - 2 * s || y >= gray.height() - 2 * s) continue;
        const HessianResponses h = hessian_at(ii, x, y, s);
        const double det = h.dxx * h.dyy - 0.81 * h.dxy * h.dxy;
        map[static_cast<std::size_t>(gy) * static_cast<std::size_t>(gw) + static_cast<std::size_t>(gx)] =
            static_cast<float>(det);
      }
    }
  }
  if (cost != nullptr) {
    cost->add_pixels(gray.pixel_count());  // Integral image pass.
    cost->add_features(static_cast<std::uint64_t>(gw) * static_cast<std::uint64_t>(gh) *
                       params.scales.size() * 8);  // 8 box sums per response.
  }

  // Local maxima (3x3 neighborhood on the lattice, per scale) above threshold.
  std::vector<Keypoint> keypoints;
  for (std::size_t si = 0; si < params.scales.size(); ++si) {
    const auto& map = responses[si];
    auto at = [&](int gx, int gy) {
      return map[static_cast<std::size_t>(gy) * static_cast<std::size_t>(gw) + static_cast<std::size_t>(gx)];
    };
    for (int gy = 1; gy < gh - 1; ++gy) {
      for (int gx = 1; gx < gw - 1; ++gx) {
        const float v = at(gx, gy);
        if (v < params.response_threshold) continue;
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            if (at(gx + dx, gy + dy) > v) {
              is_max = false;
              break;
            }
          }
        }
        if (is_max) {
          keypoints.push_back({static_cast<float>(gx * kStride), static_cast<float>(gy * kStride),
                               static_cast<float>(params.scales[si]), v});
        }
      }
    }
  }

  // Keep the strongest.
  std::sort(keypoints.begin(), keypoints.end(),
            [](const Keypoint& a, const Keypoint& b) { return a.response > b.response; });
  if (static_cast<int>(keypoints.size()) > params.max_keypoints) {
    keypoints.resize(static_cast<std::size_t>(params.max_keypoints));
  }
  return keypoints;
}

std::vector<float> describe_keypoint(const imaging::Image& img, const Keypoint& kp,
                                     energy::CostCounter* cost) {
  // Avoid a full-image copy when the caller already passes grayscale.
  const imaging::Image gray_storage = img.channels() == 1 ? imaging::Image() : imaging::to_gray(img);
  const imaging::Image& gray = img.channels() == 1 ? img : gray_storage;
  const int half = std::max(5, static_cast<int>(5.0f * kp.scale));
  const int x0 = static_cast<int>(kp.x) - half;
  const int y0 = static_cast<int>(kp.y) - half;
  const int side = 2 * half;
  const int sub = side / 4;  // 4x4 subregions.

  std::vector<float> desc(kDescriptorDim, 0.0f);
  for (int sy = 0; sy < 4; ++sy) {
    for (int sx = 0; sx < 4; ++sx) {
      float sum_dx = 0, sum_dy = 0, sum_adx = 0, sum_ady = 0;
      for (int dy = 0; dy < sub; ++dy) {
        for (int dx = 0; dx < sub; ++dx) {
          const int x = x0 + sx * sub + dx;
          const int y = y0 + sy * sub + dy;
          const float gx = gray.at_clamped(x + 1, y) - gray.at_clamped(x - 1, y);
          const float gy = gray.at_clamped(x, y + 1) - gray.at_clamped(x, y - 1);
          sum_dx += gx;
          sum_dy += gy;
          sum_adx += std::abs(gx);
          sum_ady += std::abs(gy);
        }
      }
      const std::size_t base = static_cast<std::size_t>((sy * 4 + sx) * 4);
      desc[base] = sum_dx;
      desc[base + 1] = sum_dy;
      desc[base + 2] = sum_adx;
      desc[base + 3] = sum_ady;
    }
  }
  double s = 0.0;
  for (float v : desc) s += static_cast<double>(v) * static_cast<double>(v);
  const float n = static_cast<float>(std::sqrt(s) + 1e-9);
  for (auto& v : desc) v /= n;
  if (cost != nullptr) cost->add_features(static_cast<std::uint64_t>(side) * static_cast<std::uint64_t>(side) * 4);
  return desc;
}

std::vector<std::vector<float>> extract_descriptors(const imaging::Image& img,
                                                    const KeypointParams& params,
                                                    energy::CostCounter* cost) {
  const std::vector<Keypoint> kps = detect_keypoints(img, params, cost);
  std::vector<std::vector<float>> descriptors;
  descriptors.reserve(kps.size());
  const imaging::Image gray = imaging::to_gray(img);
  for (const Keypoint& kp : kps) descriptors.push_back(describe_keypoint(gray, kp, cost));
  return descriptors;
}

}  // namespace eecs::features
