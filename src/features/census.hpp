// Census transform (CENTRIST-style) features used by the C4 detector
// (paper's [6]: "real-time human detection using contour cues"). Each pixel
// is encoded by an 8-bit signature comparing it to its 8 neighbors; windows
// are described by histograms of these signatures, which capture local
// contour structure.
#pragma once

#include <vector>

#include "energy/cost.hpp"
#include "imaging/image.hpp"

namespace eecs::features {

/// Default comparison margin of the modified census transform.
inline constexpr float kCensusThreshold = 0.045f;

/// Per-pixel 8-bit census codes of the grayscale image (borders clamped).
/// A bit is set only when the neighbor exceeds the center by `threshold`
/// (modified census transform) so flat, noise-dominated regions collapse to
/// a stable code instead of random bits.
[[nodiscard]] std::vector<std::uint8_t> census_transform(const imaging::Image& img,
                                                         energy::CostCounter* cost = nullptr,
                                                         float threshold = kCensusThreshold);

/// Histogram descriptor of a window over a census-code map: the window is
/// split into blocks_x x blocks_y blocks; each contributes a 16-bin histogram
/// of code high-nibbles (coarse contour orientation). L2-normalized.
[[nodiscard]] std::vector<float> census_window_descriptor(
    const std::vector<std::uint8_t>& codes, int image_width, int image_height, int x0, int y0,
    int window_w, int window_h, int blocks_x = 4, int blocks_y = 8,
    energy::CostCounter* cost = nullptr);

/// Descriptor length for the given block layout.
[[nodiscard]] inline int census_descriptor_size(int blocks_x = 4, int blocks_y = 8) {
  return blocks_x * blocks_y * 16;
}

}  // namespace eecs::features
