// Per-frame feature vector for video comparison (paper §V-A): pooled global
// HOG descriptor concatenated with a BoW keypoint histogram. The paper uses
// 3780-d HOG + 400-word BoW (4180 dims); we default to 144 + 64 = 208 dims so
// the alpha x alpha GFK kernel stays cheap (see DESIGN.md substitutions).
#pragma once

#include <vector>

#include "energy/cost.hpp"
#include "features/bow.hpp"
#include "imaging/image.hpp"

namespace eecs::features {

struct FrameFeatureParams {
  int hog_pool_x = 4;
  int hog_pool_y = 4;  ///< Global HOG dims = pool_x * pool_y * 9.
  int bow_words = 64;
  /// BoW histograms are L1-normalized (tiny entries); this weight brings the
  /// block's L2 norm in line with the unit-norm HOG block.
  float bow_weight = 4.0f;
  /// Intensity-layout block: mean luminance over an intensity_pool^2 grid.
  /// Strongly scene-identifying (illumination, background tone) and nearly
  /// invariant to people moving through the frame.
  int intensity_pool = 4;
  float intensity_weight = 1.5f;
};

class FrameFeatureExtractor {
 public:
  /// Builds the BoW vocabulary from keypoint descriptors of the supplied
  /// sample frames (the paper builds its vocabulary from 12 training feeds).
  FrameFeatureExtractor(const std::vector<imaging::Image>& vocabulary_frames,
                        const FrameFeatureParams& params, Rng& rng);

  [[nodiscard]] int dimension() const;

  /// Extract the combined (HOG ++ BoW) feature for one frame.
  [[nodiscard]] std::vector<float> extract(const imaging::Image& frame,
                                           energy::CostCounter* cost = nullptr) const;

  /// Extract features for a set of frames; one row per frame.
  [[nodiscard]] std::vector<std::vector<float>> extract_all(
      const std::vector<imaging::Image>& frames, energy::CostCounter* cost = nullptr) const;

  [[nodiscard]] const BowVocabulary& vocabulary() const { return vocabulary_; }

 private:
  FrameFeatureParams params_;
  BowVocabulary vocabulary_;
};

}  // namespace eecs::features
