// Histogram-of-oriented-gradients features (Dalal & Triggs, the paper's [3]).
// Two consumers: sliding-window detection (per-window block-normalized
// descriptors) and video comparison (a pooled global frame descriptor).
#pragma once

#include <vector>

#include "energy/cost.hpp"
#include "imaging/image.hpp"

namespace eecs::features {

struct HogParams {
  int cell_size = 8;   ///< Pixels per cell side.
  int block_size = 2;  ///< Cells per block side (block normalization).
  int bins = 9;        ///< Unsigned orientation bins over [0, pi).

  friend bool operator==(const HogParams&, const HogParams&) = default;
};

/// Grid of per-cell orientation histograms.
class HogGrid {
 public:
  HogGrid() = default;
  HogGrid(int cells_x, int cells_y, int bins);

  [[nodiscard]] int cells_x() const { return cells_x_; }
  [[nodiscard]] int cells_y() const { return cells_y_; }
  [[nodiscard]] int bins() const { return bins_; }

  [[nodiscard]] std::span<float> cell(int cx, int cy);
  [[nodiscard]] std::span<const float> cell(int cx, int cy) const;

 private:
  int cells_x_ = 0;
  int cells_y_ = 0;
  int bins_ = 0;
  std::vector<float> data_;
};

/// Compute the cell histogram grid of an image (converted to grayscale).
/// Gradient magnitude is soft-binned into the two nearest orientation bins.
/// Costs are charged to `cost` if provided.
[[nodiscard]] HogGrid compute_hog_grid(const imaging::Image& img, const HogParams& params = {},
                                       energy::CostCounter* cost = nullptr);

/// Block-normalized descriptor of a window of `window_cells_x` x
/// `window_cells_y` cells anchored at (cell_x0, cell_y0). Layout matches
/// Dalal-Triggs: blocks slide by one cell; each block is L2-hys normalized.
/// Window must lie inside the grid. Descriptor size:
/// (wcx-1)*(wcy-1)*block^2*bins for block_size 2.
[[nodiscard]] std::vector<float> window_descriptor(const HogGrid& grid, int cell_x0, int cell_y0,
                                                   int window_cells_x, int window_cells_y,
                                                   const HogParams& params = {},
                                                   energy::CostCounter* cost = nullptr);

/// Descriptor length produced by window_descriptor for the given window.
[[nodiscard]] int window_descriptor_size(int window_cells_x, int window_cells_y,
                                         const HogParams& params = {});

/// Pooled global descriptor for video comparison: the cell grid is average-
/// pooled onto a pool_x x pool_y grid and L2-normalized. Dimension:
/// pool_x * pool_y * bins.
[[nodiscard]] std::vector<float> global_descriptor(const imaging::Image& img, int pool_x = 4,
                                                   int pool_y = 4, const HogParams& params = {},
                                                   energy::CostCounter* cost = nullptr);

}  // namespace eecs::features
