// Bag-of-visual-words encoding (paper §V-A: a 400-word vocabulary built with
// k-means over SURF descriptors; each frame becomes a word histogram). The
// default vocabulary here is smaller (64 words) to keep the GFK kernel
// tractable — see DESIGN.md substitutions.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "energy/cost.hpp"
#include "imaging/image.hpp"
#include "linalg/matrix.hpp"

namespace eecs::features {

class BowVocabulary {
 public:
  BowVocabulary() = default;

  /// Build with k-means(++) over descriptor rows (one descriptor per row).
  BowVocabulary(const std::vector<std::vector<float>>& descriptors, int words, Rng& rng);

  [[nodiscard]] int words() const { return centroids_.rows(); }
  [[nodiscard]] bool trained() const { return centroids_.rows() > 0; }
  [[nodiscard]] const linalg::Matrix& centroids() const { return centroids_; }

  /// Histogram over visual words, L1-normalized (sums to 1 unless there are
  /// no descriptors, in which case it is all-zero).
  [[nodiscard]] std::vector<float> encode(const std::vector<std::vector<float>>& descriptors,
                                          energy::CostCounter* cost = nullptr) const;

 private:
  linalg::Matrix centroids_;
};

/// Full frame pipeline: keypoints -> descriptors -> BoW histogram.
[[nodiscard]] std::vector<float> bow_frame_histogram(const imaging::Image& img,
                                                     const BowVocabulary& vocabulary,
                                                     energy::CostCounter* cost = nullptr);

}  // namespace eecs::features
