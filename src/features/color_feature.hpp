// 40-dimensional mean-color region feature (paper §IV-C / §V-A: 160 bytes =
// 40 floats per detected object) used for cross-camera re-identification:
// 5 horizontal bands x (mean RGB + stddev RGB) = 30 dims, plus a 10-bin
// grayscale histogram of the region.
#pragma once

#include <vector>

#include "energy/cost.hpp"
#include "imaging/image.hpp"
#include "imaging/rect.hpp"

namespace eecs::features {

inline constexpr int kColorFeatureDim = 40;

/// Extract the color feature of a region; the region is clamped to image
/// bounds. Empty regions yield an all-zero feature.
[[nodiscard]] std::vector<float> color_feature(const imaging::Image& img,
                                               const imaging::Rect& region,
                                               energy::CostCounter* cost = nullptr);

}  // namespace eecs::features
