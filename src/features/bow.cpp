#include "features/bow.hpp"

#include "features/keypoints.hpp"
#include "linalg/kmeans.hpp"

namespace eecs::features {

BowVocabulary::BowVocabulary(const std::vector<std::vector<float>>& descriptors, int words,
                             Rng& rng) {
  EECS_EXPECTS(words >= 1);
  EECS_EXPECTS(static_cast<int>(descriptors.size()) >= words);
  linalg::Matrix data(static_cast<int>(descriptors.size()),
                      static_cast<int>(descriptors.front().size()));
  for (int r = 0; r < data.rows(); ++r) {
    const auto& d = descriptors[static_cast<std::size_t>(r)];
    EECS_EXPECTS(static_cast<int>(d.size()) == data.cols());
    for (int c = 0; c < data.cols(); ++c) data(r, c) = d[static_cast<std::size_t>(c)];
  }
  centroids_ = linalg::kmeans(data, words, rng).centroids;
}

std::vector<float> BowVocabulary::encode(const std::vector<std::vector<float>>& descriptors,
                                         energy::CostCounter* cost) const {
  EECS_EXPECTS(trained());
  std::vector<float> hist(static_cast<std::size_t>(words()), 0.0f);
  std::vector<double> buffer(static_cast<std::size_t>(centroids_.cols()));
  for (const auto& d : descriptors) {
    EECS_EXPECTS(static_cast<int>(d.size()) == centroids_.cols());
    for (std::size_t i = 0; i < d.size(); ++i) buffer[i] = d[i];
    const int w = linalg::nearest_centroid(centroids_, buffer);
    hist[static_cast<std::size_t>(w)] += 1.0f;
  }
  const float total = static_cast<float>(descriptors.size());
  if (total > 0.0f) {
    for (auto& v : hist) v /= total;
  }
  if (cost != nullptr) {
    cost->add_features(descriptors.size() * static_cast<std::uint64_t>(words()) *
                       static_cast<std::uint64_t>(centroids_.cols()));
  }
  return hist;
}

std::vector<float> bow_frame_histogram(const imaging::Image& img, const BowVocabulary& vocabulary,
                                       energy::CostCounter* cost) {
  return vocabulary.encode(extract_descriptors(img, {}, cost), cost);
}

}  // namespace eecs::features
