#include "features/frame_feature.hpp"

#include "features/hog.hpp"
#include "features/keypoints.hpp"
#include "imaging/filter.hpp"

namespace eecs::features {

FrameFeatureExtractor::FrameFeatureExtractor(const std::vector<imaging::Image>& vocabulary_frames,
                                             const FrameFeatureParams& params, Rng& rng)
    : params_(params) {
  EECS_EXPECTS(!vocabulary_frames.empty());
  std::vector<std::vector<float>> all_descriptors;
  for (const auto& frame : vocabulary_frames) {
    auto descriptors = extract_descriptors(frame);
    all_descriptors.insert(all_descriptors.end(), std::make_move_iterator(descriptors.begin()),
                           std::make_move_iterator(descriptors.end()));
  }
  EECS_EXPECTS(static_cast<int>(all_descriptors.size()) >= params.bow_words);
  vocabulary_ = BowVocabulary(all_descriptors, params.bow_words, rng);
}

int FrameFeatureExtractor::dimension() const {
  return params_.hog_pool_x * params_.hog_pool_y * HogParams{}.bins + params_.bow_words +
         params_.intensity_pool * params_.intensity_pool;
}

std::vector<float> FrameFeatureExtractor::extract(const imaging::Image& frame,
                                                  energy::CostCounter* cost) const {
  std::vector<float> feat =
      global_descriptor(frame, params_.hog_pool_x, params_.hog_pool_y, {}, cost);
  const std::vector<float> bow = bow_frame_histogram(frame, vocabulary_, cost);
  feat.reserve(static_cast<std::size_t>(dimension()));
  for (float v : bow) feat.push_back(params_.bow_weight * v);

  // Intensity-layout block: block-mean luminance on a coarse grid.
  const imaging::Image gray = imaging::to_gray(frame);
  const int pool = params_.intensity_pool;
  for (int py = 0; py < pool; ++py) {
    for (int px = 0; px < pool; ++px) {
      const int x0 = frame.width() * px / pool;
      const int x1 = frame.width() * (px + 1) / pool;
      const int y0 = frame.height() * py / pool;
      const int y1 = frame.height() * (py + 1) / pool;
      double s = 0.0;
      long n = 0;
      // Sample a sparse lattice: the block mean needs no full pass.
      const int step = std::max(1, (x1 - x0) / 16);
      for (int y = y0; y < y1; y += step) {
        for (int x = x0; x < x1; x += step) {
          s += gray.at(x, y);
          ++n;
        }
      }
      feat.push_back(params_.intensity_weight *
                     static_cast<float>(n > 0 ? s / static_cast<double>(n) : 0.0));
    }
  }
  if (cost != nullptr) cost->add_pixels(frame.pixel_count());
  return feat;
}

std::vector<std::vector<float>> FrameFeatureExtractor::extract_all(
    const std::vector<imaging::Image>& frames, energy::CostCounter* cost) const {
  std::vector<std::vector<float>> out;
  out.reserve(frames.size());
  for (const auto& frame : frames) out.push_back(extract(frame, cost));
  return out;
}

}  // namespace eecs::features
