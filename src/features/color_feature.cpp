#include "features/color_feature.hpp"

#include <algorithm>
#include <cmath>

namespace eecs::features {

std::vector<float> color_feature(const imaging::Image& img, const imaging::Rect& region,
                                 energy::CostCounter* cost) {
  std::vector<float> feat(kColorFeatureDim, 0.0f);
  const int x0 = std::clamp(static_cast<int>(region.x), 0, img.width());
  const int y0 = std::clamp(static_cast<int>(region.y), 0, img.height());
  const int x1 = std::clamp(static_cast<int>(region.right()), x0, img.width());
  const int y1 = std::clamp(static_cast<int>(region.bottom()), y0, img.height());
  if (x1 <= x0 || y1 <= y0) return feat;

  constexpr int kBands = 5;
  constexpr int kHistBins = 10;

  auto channel_value = [&](int x, int y, int c) {
    return img.channels() == 3 ? img.at(x, y, c) : img.at(x, y, 0);
  };

  // Per-band mean and stddev of each channel.
  for (int band = 0; band < kBands; ++band) {
    const int by0 = y0 + (y1 - y0) * band / kBands;
    const int by1 = y0 + (y1 - y0) * (band + 1) / kBands;
    double sum[3] = {0, 0, 0}, sum_sq[3] = {0, 0, 0};
    long n = 0;
    for (int y = by0; y < by1; ++y) {
      for (int x = x0; x < x1; ++x) {
        for (int c = 0; c < 3; ++c) {
          const double v = channel_value(x, y, c);
          sum[c] += v;
          sum_sq[c] += v * v;
        }
        ++n;
      }
    }
    for (int c = 0; c < 3; ++c) {
      const std::size_t base = static_cast<std::size_t>(band * 6);
      if (n > 0) {
        const double mean = sum[c] / static_cast<double>(n);
        const double var = std::max(0.0, sum_sq[c] / static_cast<double>(n) - mean * mean);
        feat[base + static_cast<std::size_t>(c)] = static_cast<float>(mean);
        feat[base + 3 + static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(var));
      }
    }
  }

  // Grayscale histogram over the whole region (last 10 dims), L1-normalized.
  long total = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const float gray = img.channels() == 3
                             ? 0.299f * img.at(x, y, 0) + 0.587f * img.at(x, y, 1) + 0.114f * img.at(x, y, 2)
                             : img.at(x, y, 0);
      const int bin = std::clamp(static_cast<int>(gray * kHistBins), 0, kHistBins - 1);
      feat[static_cast<std::size_t>(30 + bin)] += 1.0f;
      ++total;
    }
  }
  if (total > 0) {
    for (int b = 0; b < kHistBins; ++b) feat[static_cast<std::size_t>(30 + b)] /= static_cast<float>(total);
  }

  if (cost != nullptr) {
    cost->add_features(static_cast<std::uint64_t>(x1 - x0) * static_cast<std::uint64_t>(y1 - y0) * 4);
  }
  return feat;
}

}  // namespace eecs::features
