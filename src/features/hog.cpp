#include "features/hog.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "imaging/filter.hpp"

namespace eecs::features {

namespace {

/// Computes the soft-assignment bin positions (pos = theta/bin_width - 0.5)
/// and their floors for `n` contiguous pixels. Elementwise — per-pixel
/// results are identical no matter how pixels are grouped into lanes, so the
/// whole image row vectorizes at full width (a per-cell 8-pixel run would
/// fall entirely into the scalar tail at 16 lanes) and the pack results are
/// stored to buffers instead of extracted lane by lane.
template <class F4>
void bin_row_positions(const float* theta, int n, float bin_width, float* pos, float* fl) {
  const F4 half = F4::broadcast(0.5f);
  const F4 bw = F4::broadcast(bin_width);
  int x = 0;
  for (; x + F4::kLanes <= n; x += F4::kLanes) {
    const F4 p = F4::load(theta + x) / bw - half;
    p.store(pos + x);
    F4::floor(p).store(fl + x);
  }
  for (; x < n; ++x) {
    pos[x] = theta[x] / bin_width - 0.5f;
    fl[x] = std::floor(pos[x]);
  }
}

/// Precomputes both scatter addends of every pixel in a row: a0 = m*(1-w1)
/// and a1 = m*w1 with w1 = pos - fl. Elementwise (each pixel's products are
/// the exact two the scalar scatter computed), so it lane-blocks at full
/// width and leaves only the bin-index wrap and the two order-sensitive
/// histogram adds in the scalar drain loop.
template <class F4>
void bin_row_addends(const float* mag, const float* pos, const float* fl, int n, float* a0,
                     float* a1) {
  const F4 one = F4::broadcast(1.0f);
  int x = 0;
  for (; x + F4::kLanes <= n; x += F4::kLanes) {
    const F4 m = F4::load(mag + x);
    const F4 w1 = F4::load(pos + x) - F4::load(fl + x);
    (m * (one - w1)).store(a0 + x);
    (m * w1).store(a1 + x);
  }
  for (; x < n; ++x) {
    const float w1 = pos[x] - fl[x];
    a0[x] = mag[x] * (1.0f - w1);
    a1[x] = mag[x] * w1;
  }
}

/// Scatters one pixel's precomputed addends into its two neighboring
/// orientation bins. Callers drain pixels of a cell in (dy, dx) order, so the
/// accumulation order into each histogram — and therefore every float sum —
/// matches the all-scalar loop bit for bit.
inline void bin_scatter(float m, float fl, float a0, float a1, int bins, std::span<float> hist) {
  if (m <= 0.0f) return;
  int b0 = static_cast<int>(fl);
  int b1 = b0 + 1;
  if (b0 < 0) b0 += bins;
  if (b1 >= bins) b1 -= bins;
  hist[static_cast<std::size_t>(b0)] += a0;
  hist[static_cast<std::size_t>(b1)] += a1;
}

}  // namespace

HogGrid::HogGrid(int cells_x, int cells_y, int bins)
    : cells_x_(cells_x),
      cells_y_(cells_y),
      bins_(bins),
      data_(static_cast<std::size_t>(cells_x) * static_cast<std::size_t>(cells_y) *
                static_cast<std::size_t>(bins),
            0.0f) {
  EECS_EXPECTS(cells_x >= 0 && cells_y >= 0 && bins >= 1);
}

std::span<float> HogGrid::cell(int cx, int cy) {
  EECS_EXPECTS(cx >= 0 && cx < cells_x_ && cy >= 0 && cy < cells_y_);
  return {data_.data() +
              (static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
               static_cast<std::size_t>(cx)) *
                  static_cast<std::size_t>(bins_),
          static_cast<std::size_t>(bins_)};
}

std::span<const float> HogGrid::cell(int cx, int cy) const {
  EECS_EXPECTS(cx >= 0 && cx < cells_x_ && cy >= 0 && cy < cells_y_);
  return {data_.data() +
              (static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
               static_cast<std::size_t>(cx)) *
                  static_cast<std::size_t>(bins_),
          static_cast<std::size_t>(bins_)};
}

HogGrid compute_hog_grid(const imaging::Image& img, const HogParams& params,
                         energy::CostCounter* cost) {
  EECS_EXPECTS(params.cell_size >= 2 && params.bins >= 2);
  const imaging::Image gray = imaging::to_gray(img);
  const int cells_x = img.width() / params.cell_size;
  const int cells_y = img.height() / params.cell_size;
  HogGrid grid(cells_x, cells_y, params.bins);

  const float bin_width = std::numbers::pi_v<float> / static_cast<float>(params.bins);
  const int img_w = img.width();
  // Cell rows are independent (each cell bins only its own pixels into its
  // own histogram), so they partition across the pool bit-identically. Within
  // a cell the soft-assignment arithmetic is lane-blocked (see bin_cell_row).
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    common::parallel_for(
        static_cast<std::size_t>(cells_y), 8, [&](std::size_t cy0, std::size_t cy1) {
          // Gradients are streamed one pixel row at a time through an
          // L1-resident scratch (imaging::gradient_band) instead of whole
          // magnitude/orientation planes — per-pixel values are bit-identical
          // by that function's contract. Bin positions are then computed a
          // whole image row at a time (full lane width) and scattered per
          // cell. Interleaving dy across cells is fine: each cell's histogram
          // still receives its own pixels in (dy, dx) ascending order, the
          // same sequence the per-cell loop produced, so every bin sum is
          // bit-identical.
          const int row_px = cells_x * params.cell_size;
          const std::size_t band = static_cast<std::size_t>(params.cell_size);
          std::vector<float> mag(band * static_cast<std::size_t>(img_w));
          std::vector<float> ori(band * static_cast<std::size_t>(img_w));
          std::vector<float> pos(static_cast<std::size_t>(row_px));
          std::vector<float> fl(static_cast<std::size_t>(row_px));
          std::vector<float> a0(static_cast<std::size_t>(row_px));
          std::vector<float> a1(static_cast<std::size_t>(row_px));
          for (int cy = static_cast<int>(cy0); cy < static_cast<int>(cy1); ++cy) {
            const int y0 = cy * params.cell_size;
            imaging::gradient_band(gray, y0, y0 + params.cell_size, mag.data(), ori.data());
            for (int dy = 0; dy < params.cell_size; ++dy) {
              const std::size_t base =
                  static_cast<std::size_t>(dy) * static_cast<std::size_t>(img_w);
              bin_row_positions<F4>(ori.data() + base, row_px, bin_width, pos.data(), fl.data());
              bin_row_addends<F4>(mag.data() + base, pos.data(), fl.data(), row_px, a0.data(),
                                  a1.data());
              for (int cx = 0; cx < cells_x; ++cx) {
                auto hist = grid.cell(cx, cy);
                const int x0 = cx * params.cell_size;
                for (int dx = 0; dx < params.cell_size; ++dx) {
                  const std::size_t x = static_cast<std::size_t>(x0 + dx);
                  bin_scatter(mag[base + x], fl[x], a0[x], a1[x], params.bins, hist);
                }
              }
            }
          }
        });
  });
  if (cost != nullptr) {
    // Gradient pass + binning pass over every pixel.
    cost->add_pixels(2 * img.pixel_count());
    cost->add_features(static_cast<std::uint64_t>(cells_x) * static_cast<std::uint64_t>(cells_y) *
                       static_cast<std::uint64_t>(params.cell_size * params.cell_size));
  }
  return grid;
}

int window_descriptor_size(int window_cells_x, int window_cells_y, const HogParams& params) {
  const int blocks_x = window_cells_x - params.block_size + 1;
  const int blocks_y = window_cells_y - params.block_size + 1;
  return blocks_x * blocks_y * params.block_size * params.block_size * params.bins;
}

std::vector<float> window_descriptor(const HogGrid& grid, int cell_x0, int cell_y0,
                                     int window_cells_x, int window_cells_y,
                                     const HogParams& params, energy::CostCounter* cost) {
  EECS_EXPECTS(cell_x0 >= 0 && cell_y0 >= 0);
  EECS_EXPECTS(cell_x0 + window_cells_x <= grid.cells_x());
  EECS_EXPECTS(cell_y0 + window_cells_y <= grid.cells_y());

  std::vector<float> desc;
  desc.reserve(static_cast<std::size_t>(window_descriptor_size(window_cells_x, window_cells_y, params)));

  const int bs = params.block_size;
  std::vector<float> block(static_cast<std::size_t>(bs * bs * params.bins));
  for (int by = 0; by + bs <= window_cells_y; ++by) {
    for (int bx = 0; bx + bs <= window_cells_x; ++bx) {
      std::size_t k = 0;
      for (int cy = 0; cy < bs; ++cy) {
        for (int cx = 0; cx < bs; ++cx) {
          const auto cell = grid.cell(cell_x0 + bx + cx, cell_y0 + by + cy);
          for (float v : cell) block[k++] = v;
        }
      }
      // L2-hys: normalize, clip at 0.2, renormalize.
      auto l2norm = [](std::span<const float> v) {
        double s = 0.0;
        for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
        return static_cast<float>(std::sqrt(s) + 1e-6);
      };
      float n = l2norm(block);
      for (auto& v : block) v = std::min(v / n, 0.2f);
      n = l2norm(block);
      for (auto& v : block) v /= n;
      desc.insert(desc.end(), block.begin(), block.end());
    }
  }
  if (cost != nullptr) cost->add_features(desc.size() * 3);  // Gather + 2 normalization passes.
  return desc;
}

std::vector<float> global_descriptor(const imaging::Image& img, int pool_x, int pool_y,
                                     const HogParams& params, energy::CostCounter* cost) {
  EECS_EXPECTS(pool_x >= 1 && pool_y >= 1);
  const HogGrid grid = compute_hog_grid(img, params, cost);
  EECS_EXPECTS(grid.cells_x() >= pool_x && grid.cells_y() >= pool_y);

  std::vector<float> desc(static_cast<std::size_t>(pool_x * pool_y * params.bins), 0.0f);
  for (int cy = 0; cy < grid.cells_y(); ++cy) {
    const int py = std::min(cy * pool_y / grid.cells_y(), pool_y - 1);
    for (int cx = 0; cx < grid.cells_x(); ++cx) {
      const int px = std::min(cx * pool_x / grid.cells_x(), pool_x - 1);
      const auto cell = grid.cell(cx, cy);
      float* out = desc.data() + static_cast<std::size_t>((py * pool_x + px) * params.bins);
      for (int b = 0; b < params.bins; ++b) out[b] += cell[static_cast<std::size_t>(b)];
    }
  }
  double s = 0.0;
  for (float v : desc) s += static_cast<double>(v) * static_cast<double>(v);
  const float n = static_cast<float>(std::sqrt(s) + 1e-9);
  for (auto& v : desc) v /= n;
  if (cost != nullptr) cost->add_features(desc.size() * 2);
  return desc;
}

}  // namespace eecs::features
