// SURF-like interest points (paper §V-A uses SURF key-points): blob detection
// via a box-filter determinant-of-Hessian on an integral image, plus 64-d
// gradient-statistics descriptors (4x4 subregions x [sum dx, sum dy, sum |dx|,
// sum |dy|]).
#pragma once

#include <vector>

#include "energy/cost.hpp"
#include "imaging/image.hpp"

namespace eecs::features {

struct Keypoint {
  float x = 0.0f;
  float y = 0.0f;
  float scale = 1.0f;     ///< Filter scale the response peaked at.
  float response = 0.0f;  ///< Determinant-of-Hessian response.
};

inline constexpr int kDescriptorDim = 64;

struct KeypointParams {
  float response_threshold = 4e-4f;
  int max_keypoints = 300;      ///< Strongest responses kept.
  std::vector<int> scales{2, 4, 6};  ///< Box filter half-sizes (pixels).
};

/// Detect keypoints on the grayscale version of `img`.
[[nodiscard]] std::vector<Keypoint> detect_keypoints(const imaging::Image& img,
                                                     const KeypointParams& params = {},
                                                     energy::CostCounter* cost = nullptr);

/// 64-d descriptor of the patch around a keypoint (side = 10 * scale,
/// clamped to the image). Normalized to unit L2 norm.
[[nodiscard]] std::vector<float> describe_keypoint(const imaging::Image& img, const Keypoint& kp,
                                                   energy::CostCounter* cost = nullptr);

/// Convenience: detect and describe; returns one row per keypoint.
[[nodiscard]] std::vector<std::vector<float>> extract_descriptors(
    const imaging::Image& img, const KeypointParams& params = {},
    energy::CostCounter* cost = nullptr);

}  // namespace eecs::features
