#include "features/census.hpp"

#include <cmath>

#include "common/simd.hpp"

namespace eecs::features {

namespace {

/// Census codes of one row. The 8 neighbor comparisons of a pixel are
/// independent single-float compares, so the lanes run across 4 adjacent
/// output pixels: each comparison becomes a masked bit per lane, OR-folded in
/// the same LSB-first neighbor order as the scalar edge code. Pure integer
/// masking after the compares — trivially bit-exact in every backend.
template <class F4>
void census_row(const float* row, const float* up, const float* dn, int w, float threshold,
                std::uint8_t* out) {
  using Mask = typename F4::Mask;
  const auto scalar_code = [&](int x) {
    const int xl = x > 0 ? x - 1 : 0;
    const int xr = x + 1 < w ? x + 1 : w - 1;
    const float t = row[x] + threshold;
    unsigned code = (up[xl] > t) ? 1u : 0u;
    code |= (up[x] > t) ? 2u : 0u;
    code |= (up[xr] > t) ? 4u : 0u;
    code |= (row[xl] > t) ? 8u : 0u;
    code |= (row[xr] > t) ? 16u : 0u;
    code |= (dn[xl] > t) ? 32u : 0u;
    code |= (dn[x] > t) ? 64u : 0u;
    code |= (dn[xr] > t) ? 128u : 0u;
    out[x] = static_cast<std::uint8_t>(code);
  };
  if (w == 0) return;
  scalar_code(0);
  int x = 1;
  const F4 thr = F4::broadcast(threshold);
  for (; x + F4::kLanes <= w - 1; x += F4::kLanes) {
    const F4 t = F4::load(row + x) + thr;
    const auto bit = [&](const float* p, std::uint32_t b) {
      return F4::gt(F4::load(p), t) & Mask::broadcast(b);
    };
    const Mask code = bit(up + x - 1, 1u) | bit(up + x, 2u) | bit(up + x + 1, 4u) |
                      bit(row + x - 1, 8u) | bit(row + x + 1, 16u) | bit(dn + x - 1, 32u) |
                      bit(dn + x, 64u) | bit(dn + x + 1, 128u);
    for (int j = 0; j < F4::kLanes; ++j) {
      out[x + j] = static_cast<std::uint8_t>(code.extract(j));
    }
  }
  for (; x < w; ++x) scalar_code(x);
}

}  // namespace

std::vector<std::uint8_t> census_transform(const imaging::Image& img, energy::CostCounter* cost,
                                           float threshold) {
  const imaging::Image gray = imaging::to_gray(img);
  std::vector<std::uint8_t> codes(gray.pixel_count(), 0);
  const int w = gray.width();
  const int h = gray.height();
  // Neighbor bit layout, LSB first: (-1,-1) (0,-1) (1,-1) (-1,0) (1,0)
  // (-1,1) (0,1) (1,1) — same fixed order as the offset-table form this
  // replaces; each comparison is independent, with edge pixels clamped.
  const float* src = gray.plane(0).data();
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    for (int y = 0; y < h; ++y) {
      const float* row = src + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      const float* up =
          src + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * static_cast<std::size_t>(w);
      const float* dn =
          src + static_cast<std::size_t>(y + 1 < h ? y + 1 : h - 1) * static_cast<std::size_t>(w);
      std::uint8_t* out = codes.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
      census_row<F4>(row, up, dn, w, threshold, out);
    }
  });
  if (cost != nullptr) cost->add_pixels(gray.pixel_count() * 8);
  return codes;
}

std::vector<float> census_window_descriptor(const std::vector<std::uint8_t>& codes,
                                            int image_width, int image_height, int x0, int y0,
                                            int window_w, int window_h, int blocks_x,
                                            int blocks_y, energy::CostCounter* cost) {
  EECS_EXPECTS(image_width > 0 && image_height > 0);
  EECS_EXPECTS(static_cast<std::size_t>(image_width) * static_cast<std::size_t>(image_height) ==
               codes.size());
  EECS_EXPECTS(x0 >= 0 && y0 >= 0 && x0 + window_w <= image_width && y0 + window_h <= image_height);
  EECS_EXPECTS(blocks_x >= 1 && blocks_y >= 1);

  std::vector<float> desc(static_cast<std::size_t>(census_descriptor_size(blocks_x, blocks_y)), 0.0f);
  for (int by = 0; by < blocks_y; ++by) {
    const int wy0 = y0 + window_h * by / blocks_y;
    const int wy1 = y0 + window_h * (by + 1) / blocks_y;
    for (int bx = 0; bx < blocks_x; ++bx) {
      const int wx0 = x0 + window_w * bx / blocks_x;
      const int wx1 = x0 + window_w * (bx + 1) / blocks_x;
      float* hist = desc.data() + static_cast<std::size_t>((by * blocks_x + bx) * 16);
      for (int y = wy0; y < wy1; ++y) {
        for (int x = wx0; x < wx1; ++x) {
          const std::uint8_t code =
              codes[static_cast<std::size_t>(y) * static_cast<std::size_t>(image_width) +
                    static_cast<std::size_t>(x)];
          hist[code >> 4] += 1.0f;
        }
      }
    }
  }
  double s = 0.0;
  for (float v : desc) s += static_cast<double>(v) * static_cast<double>(v);
  const float n = static_cast<float>(std::sqrt(s) + 1e-9);
  for (auto& v : desc) v /= n;
  if (cost != nullptr) {
    cost->add_features(static_cast<std::uint64_t>(window_w) * static_cast<std::uint64_t>(window_h) +
                       desc.size());
  }
  return desc;
}

}  // namespace eecs::features
