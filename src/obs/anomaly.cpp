#include "obs/anomaly.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace eecs::obs {

const char* to_string(Anomaly::Kind kind) {
  switch (kind) {
    case Anomaly::Kind::BurnRate: return "burn_rate";
    case Anomaly::Kind::LossRate: return "loss_rate";
    case Anomaly::Kind::Latency: return "latency";
  }
  return "?";
}

AnomalyDetector::AnomalyDetector(const AnomalyOptions& options, int num_cameras)
    : options_(options),
      num_cameras_(num_cameras),
      last_flags_(static_cast<std::size_t>(num_cameras), 0) {
  EECS_EXPECTS(num_cameras >= 0);
  EECS_EXPECTS(options.window_rounds > 0);
  EECS_EXPECTS(options.latency_miss_rounds >= 0);
}

bool AnomalyDetector::flagged(int camera) const {
  if (camera < 0 || camera >= static_cast<int>(last_flags_.size())) return false;
  return last_flags_[static_cast<std::size_t>(camera)] != 0;
}

std::vector<Anomaly> AnomalyDetector::observe(const RoundObservation& obs) {
  std::vector<Anomaly> findings;
  if constexpr (!kEnabled) return findings;
  if (!options_.enabled) return findings;
  EECS_EXPECTS(static_cast<int>(obs.camera_joules.size()) == num_cameras_);
  std::fill(last_flags_.begin(), last_flags_.end(), std::uint8_t{0});

  const auto window = static_cast<std::size_t>(options_.window_rounds);
  const std::size_t filled = window_sent_.size();

  // Burn rate: compare this round's per-camera energy against the rolling
  // mean of the existing window. Cross-multiplied to avoid a division:
  //   joules * 1000 * n > (burn_rate_milli * window_sum)
  // Both sides are products of the same deterministic doubles in the same
  // order everywhere, so the comparison itself is deterministic.
  if (filled == window) {  // Only judge once a full window of history exists.
    for (int c = 0; c < num_cameras_; ++c) {
      double sum = 0.0;
      for (std::size_t r = 0; r < filled; ++r) {
        sum += window_joules_[r * static_cast<std::size_t>(num_cameras_) +
                              static_cast<std::size_t>(c)];
      }
      const double joules = obs.camera_joules[static_cast<std::size_t>(c)];
      if (sum > 0.0 &&
          joules * 1000.0 * static_cast<double>(filled) >
              static_cast<double>(options_.burn_rate_milli) * sum) {
        findings.push_back({Anomaly::Kind::BurnRate, c, obs.round, joules,
                            static_cast<double>(options_.burn_rate_milli) / 1000.0 * sum /
                                static_cast<double>(filled)});
        last_flags_[static_cast<std::size_t>(c)] = 1;
      }
    }
  }

  // Fold this round in before the window-wide rules so a single catastrophic
  // round can flag immediately rather than one round late.
  window_sent_.push_back(obs.messages_sent);
  window_lost_.push_back(obs.messages_lost);
  window_misses_.push_back(obs.deadline_misses);
  window_joules_.insert(window_joules_.end(), obs.camera_joules.begin(),
                        obs.camera_joules.end());
  if (window_sent_.size() > window) {
    window_sent_.erase(window_sent_.begin());
    window_lost_.erase(window_lost_.begin());
    window_misses_.erase(window_misses_.begin());
    window_joules_.erase(window_joules_.begin(),
                         window_joules_.begin() + num_cameras_);
  }
  ++rounds_seen_;

  // Loss rate over the window: lost * 1000 > loss_rate_milli * sent, pure
  // integer arithmetic (u64 counters stay far below the overflow point).
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  for (std::size_t r = 0; r < window_sent_.size(); ++r) {
    sent += window_sent_[r];
    lost += window_lost_[r];
  }
  if (sent >= options_.loss_min_messages &&
      lost * 1000 > static_cast<std::uint64_t>(options_.loss_rate_milli) * sent) {
    findings.push_back({Anomaly::Kind::LossRate, -1, obs.round,
                        static_cast<double>(lost) / static_cast<double>(sent),
                        static_cast<double>(options_.loss_rate_milli) / 1000.0});
  }

  // Latency: deadline misses accumulated over the window (integer count).
  std::uint64_t misses = 0;
  for (const std::uint32_t m : window_misses_) misses += m;
  if (misses >= static_cast<std::uint64_t>(options_.latency_miss_rounds)) {
    findings.push_back({Anomaly::Kind::Latency, -1, obs.round,
                        static_cast<double>(misses),
                        static_cast<double>(options_.latency_miss_rounds)});
  }

  return findings;
}

AnomalyDetector::State AnomalyDetector::export_state() const {
  State state;
  state.window_sent = window_sent_;
  state.window_lost = window_lost_;
  state.window_misses = window_misses_;
  state.window_joules = window_joules_;
  state.last_flags = last_flags_;
  state.rounds_seen = rounds_seen_;
  return state;
}

void AnomalyDetector::import_state(const State& state) {
  window_sent_ = state.window_sent;
  window_lost_ = state.window_lost;
  window_misses_ = state.window_misses;
  window_joules_ = state.window_joules;
  if (state.last_flags.size() == last_flags_.size()) last_flags_ = state.last_flags;
  rounds_seen_ = state.rounds_seen;
}

}  // namespace eecs::obs
