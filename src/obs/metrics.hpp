// Unified metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer of the EECS loop. Values are cheap atomics
// so hot paths (detector invocations, cache hits, per-message counters) can
// record from inside the PR-2 thread pool; totals are order-independent sums,
// so every metric registered as `Determinism::Deterministic` is bit-identical
// across thread counts and scheduling orders. Wall-clock derived metrics must
// be registered as `Determinism::WallClock` — they are excluded from the
// determinism snapshot that `tools/sim_determinism` diffs between widths.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated lowercase
// `layer.noun.qualifier`, e.g. `net.tx.detection_metadata.sent`,
// `detect.cache.block_grid.hit`, `energy.battery.residual.cam2`. Wall-clock
// metrics end in a unit suffix (`stage.detect_s`).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eecs::obs {

/// Compile-time escape hatch: -DEECS_OBS_OFF strips tracing and the hot-path
/// instrumentation (detector/cache/per-message counters). The registry itself
/// and the loop's serial counters stay functional — SimulationResult's
/// FaultCounters/StageTimings views keep their semantics either way.
#ifdef EECS_OBS_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Determinism contract of a metric (see DESIGN.md "Observability").
enum class Determinism {
  Deterministic,  ///< Derived from sim state only; identical at any width.
  WallClock,      ///< Timing-derived; excluded from determinism comparisons.
};

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (set) or accumulated (add) double. `add` from concurrent
/// threads is exact only for integer-valued increments; the repo's parallel
/// regions never add to gauges (serial replay owns all energy accounting).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound satisfies `value <= bound` (Prometheus `le` semantics); samples above
/// every bound land in the implicit overflow bucket. Bucket counts are
/// atomics, so totals are thread-order independent; `sum` stays exact under
/// concurrency for integer-valued observations (the deterministic use case).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1 slots.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Get-or-create registry of named metrics. Lookups take a mutex (hot paths
/// hoist the returned reference); the returned references stay valid for the
/// registry's lifetime. Re-registering a name with a different kind or
/// determinism class is a contract violation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, Determinism det = Determinism::Deterministic);
  Gauge& gauge(std::string_view name, Determinism det = Determinism::Deterministic);
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       Determinism det = Determinism::Deterministic);

  /// Flat numeric view of every deterministic metric, name-sorted; histograms
  /// expand to `<name>.le_<bound>`, `<name>.overflow`, `<name>.count` and
  /// `<name>.sum`. The unit `tools/sim_determinism` snapshots before/after
  /// each run and diffs across thread widths.
  using Snapshot = std::map<std::string, double>;
  [[nodiscard]] Snapshot deterministic_snapshot() const;

  /// `%.17g` "name=value" lines of `after - before` over the union of keys
  /// (a metric absent from one side reads 0). Identical strings across widths
  /// == identical deterministic telemetry.
  [[nodiscard]] static std::string diff_report(const Snapshot& before, const Snapshot& after);

  /// Full registry as a pretty-printed JSON object (metrics.json): every
  /// metric with kind, determinism class and value(s).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (0.0.4): counters/gauges/histograms
  /// with `# TYPE` headers, dots mapped to underscores, histograms emitted as
  /// `_bucket{le=...}`/`_sum`/`_count` series. Defined in exposition.cpp.
  [[nodiscard]] std::string to_prometheus() const;

  /// Histogram lookup by exact registered name; nullptr when the name is
  /// absent or not a histogram (tools use this to print quantile columns).
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Drop every metric (registrations and values). Callers holding references
  /// must not use them afterwards; prefer a fresh Telemetry session.
  void reset();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Metric {
    Kind kind;
    Determinism det;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& get_or_create(std::string_view name, Kind kind, Determinism det,
                        std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace eecs::obs
