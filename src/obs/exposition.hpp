// Metrics exposition: Prometheus text format for the registry (so ROADMAP
// item 1's fleet server can scrape a node) and histogram quantile estimation
// from the existing cumulative `le` buckets — the same linear interpolation
// Prometheus' histogram_quantile() applies server-side, available locally so
// eecs_trace/eecs_loop_report can print p50/p99 columns without a server.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace eecs::obs {

/// Estimate the q-quantile (q in [0, 1]) of a histogram from its buckets.
///
/// Semantics match PromQL histogram_quantile: find the first bucket whose
/// cumulative count reaches rank = q * count, then interpolate linearly
/// between the bucket's bounds. The overflow bucket has no upper bound, so a
/// rank landing there returns the highest finite bound (Prometheus' clamp).
/// An empty histogram returns NaN. A rank landing in the first bucket
/// interpolates from 0 (Prometheus' lower bound for the first bucket) unless
/// the bound itself is <= 0, in which case the bound is returned.
[[nodiscard]] double histogram_quantile(const Histogram& h, double q);

/// Prometheus text-format name: dots and any other invalid characters map to
/// underscores (`net.tx.sent` -> `net_tx_sent`), a leading digit gains an
/// underscore prefix.
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace eecs::obs
