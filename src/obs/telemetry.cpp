#include "obs/telemetry.hpp"

#include <atomic>

namespace eecs::obs {

namespace {

Telemetry& default_session() {
  static Telemetry session;
  return session;
}

std::atomic<Telemetry*> g_current{nullptr};

}  // namespace

Telemetry& current() {
  Telemetry* t = g_current.load(std::memory_order_acquire);
  return t != nullptr ? *t : default_session();
}

Telemetry* set_current(Telemetry* session) {
  return g_current.exchange(session, std::memory_order_acq_rel);
}

}  // namespace eecs::obs
