// A telemetry session bundles one MetricsRegistry with one Tracer. A
// process-global current session (`obs::current()`) is what the loop, the
// network, the detectors and the energy model record into; tools and tests
// that want an isolated view swap in their own with `ScopedTelemetry`.
//
// Swapping the current session is NOT thread-safe against in-flight parallel
// regions — like `common::set_max_threads`, do it at the top of a run, never
// mid-flight. Recording into the current session is fully thread-safe.
#pragma once

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eecs::obs {

class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(std::size_t trace_capacity) : tracer_(trace_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  /// Energy audit ledger for the session's most recent armed run (the loop
  /// calls `ledger().begin_run(...)` at the top of every simulation).
  [[nodiscard]] EnergyLedger& ledger() { return ledger_; }

  /// Drop all metrics, trace events and ledger entries.
  void reset() {
    metrics_.reset();
    tracer_.clear();
    ledger_ = EnergyLedger{};
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  EnergyLedger ledger_;
};

/// The process-global session every instrumented layer records into.
[[nodiscard]] Telemetry& current();

/// Install `session` as current; returns the previous one. Pass nullptr to
/// restore the process-global default.
Telemetry* set_current(Telemetry* session);

/// RAII: a fresh isolated session for a scope (tools and tests).
class ScopedTelemetry {
 public:
  ScopedTelemetry() : prev_(set_current(&mine_)) {}
  explicit ScopedTelemetry(std::size_t trace_capacity)
      : mine_(trace_capacity), prev_(set_current(&mine_)) {}
  ~ScopedTelemetry() { set_current(prev_); }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

  [[nodiscard]] Telemetry& session() { return mine_; }

 private:
  Telemetry mine_;
  Telemetry* prev_;
};

}  // namespace eecs::obs
