#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/contracts.hpp"

namespace eecs::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  EECS_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t slot = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  EECS_EXPECTS(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

MetricsRegistry::Metric& MetricsRegistry::get_or_create(std::string_view name, Kind kind,
                                                        Determinism det,
                                                        std::vector<double>* bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric metric{kind, det, nullptr, nullptr, nullptr};
    switch (kind) {
      case Kind::Counter: metric.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: metric.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        metric.histogram = std::make_unique<Histogram>(std::move(*bounds));
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(metric)).first;
  }
  // Re-registration must agree on kind and determinism class.
  EECS_EXPECTS(it->second.kind == kind && it->second.det == det);
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Determinism det) {
  return *get_or_create(name, Kind::Counter, det, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Determinism det) {
  return *get_or_create(name, Kind::Gauge, det, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds,
                                      Determinism det) {
  return *get_or_create(name, Kind::Histogram, det, &upper_bounds).histogram;
}

MetricsRegistry::Snapshot MetricsRegistry::deterministic_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, metric] : metrics_) {
    if (metric.det != Determinism::Deterministic) continue;
    switch (metric.kind) {
      case Kind::Counter:
        snap[name] = static_cast<double>(metric.counter->value());
        break;
      case Kind::Gauge:
        snap[name] = metric.gauge->value();
        break;
      case Kind::Histogram: {
        const Histogram& h = *metric.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          snap[name + ".le_" + format_double(h.bounds()[i])] =
              static_cast<double>(h.bucket(i));
        }
        snap[name + ".overflow"] = static_cast<double>(h.bucket(h.bounds().size()));
        snap[name + ".count"] = static_cast<double>(h.count());
        snap[name + ".sum"] = h.sum();
        break;
      }
    }
  }
  return snap;
}

std::string MetricsRegistry::diff_report(const Snapshot& before, const Snapshot& after) {
  std::string out;
  auto b = before.begin();
  auto a = after.begin();
  const auto emit = [&](const std::string& name, double delta) {
    out += name;
    out += '=';
    out += format_double(delta);
    out += '\n';
  };
  while (b != before.end() || a != after.end()) {
    if (a == after.end() || (b != before.end() && b->first < a->first)) {
      emit(b->first, -b->second);
      ++b;
    } else if (b == before.end() || a->first < b->first) {
      emit(a->first, a->second);
      ++a;
    } else {
      emit(a->first, a->second - b->second);
      ++b;
      ++a;
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, metric] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + json_escape(name) + "\": {";
    out += std::string("\"determinism\": \"") +
           (metric.det == Determinism::Deterministic ? "deterministic" : "wall_clock") + "\", ";
    switch (metric.kind) {
      case Kind::Counter:
        out += "\"kind\": \"counter\", \"value\": " +
               std::to_string(metric.counter->value());
        break;
      case Kind::Gauge:
        out += "\"kind\": \"gauge\", \"value\": " + format_double(metric.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *metric.histogram;
        out += "\"kind\": \"histogram\", \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += format_double(h.bounds()[i]);
        }
        out += "], \"buckets\": [";
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(h.bucket(i));
        }
        out += "], \"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + format_double(h.sum());
        break;
      }
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Histogram) return nullptr;
  return it->second.histogram.get();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

}  // namespace eecs::obs
