#include "obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace eecs::obs {

namespace {

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

double histogram_quantile(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::vector<double>& bounds = h.bounds();
  const double rank = q * static_cast<double>(total);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t in_bucket = h.bucket(i);
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double upper = bounds[i];
      const double lower = (i == 0) ? 0.0 : bounds[i - 1];
      if (upper <= lower) return upper;  // Degenerate/non-positive first bound.
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  // Rank lands in the overflow (+Inf) bucket: clamp to the highest finite
  // bound, as PromQL does. With no finite bounds at all there is nothing to
  // clamp to; report the sum/count mean as the only available estimate.
  if (!bounds.empty()) return bounds.back();
  return h.sum() / static_cast<double>(total);
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool valid = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, metric] : metrics_) {
    const std::string prom = prometheus_name(name);
    switch (metric.kind) {
      case Kind::Counter:
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(metric.counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + format_double(metric.gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        const Histogram& h = *metric.histogram;
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out += prom + "_bucket{le=\"" + format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket(h.bounds().size());
        out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += prom + "_sum " + format_double(h.sum()) + "\n";
        out += prom + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace eecs::obs
