#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "common/contracts.hpp"

namespace eecs::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string args_json(const TraceEvent& e) {
  std::string out = "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  sep();
  out += "\"sim_time\": " + format_double(e.sim_time);
  for (const auto& [k, v] : e.num_args) {
    sep();
    out += "\"" + json_escape(k) + "\": " + format_double(v);
  }
  for (const auto& [k, v] : e.str_args) {
    sep();
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  EECS_EXPECTS(capacity > 0);
  ring_.reserve(capacity);
  const auto start = std::chrono::steady_clock::now();
  clock_ = [start] {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - start)
                                          .count());
  };
}

void Tracer::set_clock(std::function<std::uint64_t()> clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

std::uint64_t Tracer::now_us() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return clock_();
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (event.wall_us == 0) event.wall_us = clock_();
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - ring_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& e : events()) {
    out += "{\"wall_us\": " + std::to_string(e.wall_us);
    if (e.phase == 'X') out += ", \"dur_us\": " + std::to_string(e.dur_us);
    out += std::string(", \"ph\": \"") + e.phase + "\"";
    out += ", \"cat\": \"" + json_escape(e.cat) + "\"";
    out += ", \"name\": \"" + json_escape(e.name) + "\"";
    out += ", \"args\": " + args_json(e);
    out += "}\n";
  }
  return out;
}

std::string Tracer::to_chrome_trace() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& e : events()) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": \"" + json_escape(e.name) + "\", \"cat\": \"" + json_escape(e.cat) +
           "\", \"ph\": \"" + e.phase + "\", \"ts\": " + std::to_string(e.wall_us);
    if (e.phase == 'X') out += ", \"dur\": " + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ", \"s\": \"g\"";
    out += ", \"pid\": 1, \"tid\": 1, \"args\": " + args_json(e) + "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace eecs::obs
