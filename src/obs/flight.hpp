// Flight recorder: a bounded ring of per-round loop summaries that the
// simulation dumps as a self-contained JSONL "black box" whenever something
// goes wrong (watchdog strike, degradation-ladder descent, chaos-injected
// crash via checkpoint write) — so a post-mortem can replay the rounds that
// led up to the event without re-running the simulation. Replay/inspection
// lives in tools/eecs_flight.
//
// The ring holds plain values (no pointers into the loop), so a dump is
// always internally consistent; recording is O(1) per round and happens on
// the serial replay path only. Under EECS_OBS_OFF the loop constructs the
// recorder with capacity 0 (recording disabled, zero cost) and dump() is a
// compiled-out no-op; record()/to_jsonl() themselves stay functional so
// tools/eecs_flight can reconstruct dumps in any build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace eecs::obs {

/// One round of loop history, captured after the round's serial replay.
struct FlightRound {
  std::int64_t round = -1;
  double sim_time_s = 0.0;        ///< Loop sim-clock at round close.
  std::int32_t selected = 0;      ///< Cameras selected by the controller.
  std::int32_t assignments = 0;   ///< Operation assignments dispatched.
  std::int32_t pending = 0;       ///< Assignments queued for retry at close.
  std::int32_t deadline_misses = 0;  ///< Cameras that missed this round.
  std::int32_t watchdog_strikes = 0; ///< Cumulative strikes across cameras.
  std::uint64_t messages_sent = 0;   ///< Round delta.
  std::uint64_t messages_lost = 0;   ///< Round delta.
  double cpu_joules = 0.0;           ///< Round delta.
  double radio_joules = 0.0;         ///< Round delta.
  std::int32_t anomalies = 0;        ///< Anomaly-detector findings this round.
  std::vector<std::int8_t> rungs;    ///< Per-camera degradation rung.
  std::vector<double> residual_j;    ///< Per-camera battery residual at close.
};

class FlightRecorder {
 public:
  /// `capacity` bounds the ring (rounds retained); 0 disables recording.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 64;

  void record(const FlightRound& round);
  void clear();

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Rounds oldest-first (reassembled from the ring).
  [[nodiscard]] std::vector<FlightRound> rounds() const;

  /// The black box: header line (format version, dump reason, ring geometry)
  /// followed by one JSON object per retained round, oldest first.
  [[nodiscard]] std::string to_jsonl(std::string_view reason) const;

  /// Write to_jsonl(reason) to `path`, overwriting — the latest dump always
  /// holds the most recent history, which is what a post-mortem wants.
  /// Returns false (and leaves no partial file behind) on I/O failure.
  bool dump(const std::string& path, std::string_view reason) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< Ring write cursor.
  std::vector<FlightRound> ring_;
};

/// Parsed black box (tools/eecs_flight, chaos smoke validation).
struct FlightDump {
  std::int64_t version = 0;
  std::string reason;
  std::int64_t capacity = 0;
  std::vector<FlightRound> rounds;
};

/// Parse a dump produced by FlightRecorder::to_jsonl. Throws
/// common::JsonError on malformed input.
[[nodiscard]] FlightDump parse_flight_jsonl(std::string_view text);

}  // namespace eecs::obs
