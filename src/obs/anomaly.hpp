// Deterministic anomaly detection over the loop's per-round telemetry.
// Three rolling-window rules, all driven by simulation state only (never the
// wall clock, so findings are bit-identical across thread widths and SIMD
// modes and safe to feed back into the degradation ladder):
//
//  - burn rate:  a camera's round energy exceeds `burn_rate_milli`/1000 times
//    its rolling-window mean (needs a full window of history first);
//  - loss rate:  window-wide lost/sent exceeds `loss_rate_milli`/1000, once
//    at least `loss_min_messages` were sent in the window;
//  - latency:    deadline misses in the window reach `latency_miss_rounds`
//    (round "latency" in loop time — wall-clock stage timings stay in
//    WallClock metrics and never reach this detector).
//
// Thresholds are integer milli-units so configurations serialize exactly and
// comparisons cross-multiply in integers where possible — no epsilon tuning.
// The window state is checkpointable (State) so chaos crash/resume replays
// identical findings. Under EECS_OBS_OFF observe() returns no findings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace eecs::obs {

struct AnomalyOptions {
  bool enabled = true;
  std::int32_t window_rounds = 8;        ///< Rolling window length.
  std::uint32_t burn_rate_milli = 3000;  ///< Flag burn > 3.0x window mean.
  std::uint32_t loss_rate_milli = 500;   ///< Flag window loss ratio > 0.5.
  std::uint32_t loss_min_messages = 8;   ///< Ratio needs this many sends.
  std::int32_t latency_miss_rounds = 3;  ///< Misses in window to flag.
};

/// Everything the detector sees about one round (deltas, not totals).
struct RoundObservation {
  std::int64_t round = -1;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint32_t deadline_misses = 0;       ///< Cameras that missed this round.
  std::vector<double> camera_joules;       ///< Per-camera energy this round.
};

struct Anomaly {
  enum class Kind : std::uint8_t { BurnRate = 0, LossRate, Latency };
  Kind kind = Kind::BurnRate;
  std::int32_t camera = -1;  ///< -1 for network-wide findings.
  std::int64_t round = -1;
  double value = 0.0;      ///< Observed magnitude (joules, ratio, misses).
  double threshold = 0.0;  ///< Effective threshold it crossed.
};

inline constexpr int kNumAnomalyKinds = 3;

[[nodiscard]] const char* to_string(Anomaly::Kind kind);

class AnomalyDetector {
 public:
  AnomalyDetector(const AnomalyOptions& options, int num_cameras);

  [[nodiscard]] const AnomalyOptions& options() const { return options_; }

  /// Fold one round in and return this round's findings (deterministic
  /// order: burn-rate by camera, then loss rate, then latency).
  [[nodiscard]] std::vector<Anomaly> observe(const RoundObservation& obs);

  /// True when the most recent observe() flagged `camera` with a burn-rate
  /// anomaly — the per-camera advisory the degradation ladder consumes on the
  /// following round. Network-wide findings (loss rate, latency) never set
  /// it: those pressures already reach the ladder via fault-storm and
  /// deadline triggers. Part of State so resume replays the same advisories.
  [[nodiscard]] bool flagged(int camera) const;

  /// Checkpointable rolling-window state, serialized by runtime/checkpoint
  /// so resumed runs replay identical findings.
  struct State {
    std::vector<std::uint64_t> window_sent;
    std::vector<std::uint64_t> window_lost;
    std::vector<std::uint32_t> window_misses;
    std::vector<double> window_joules;  ///< num_cameras doubles per round.
    std::vector<std::uint8_t> last_flags;  ///< Per-camera advisory flags.
    std::int64_t rounds_seen = 0;
  };
  [[nodiscard]] State export_state() const;
  void import_state(const State& state);

 private:
  AnomalyOptions options_;
  int num_cameras_;
  // Parallel per-round FIFO windows, oldest first, at most window_rounds long.
  std::vector<std::uint64_t> window_sent_;
  std::vector<std::uint64_t> window_lost_;
  std::vector<std::uint32_t> window_misses_;
  std::vector<double> window_joules_;  ///< Flattened [round][camera].
  std::vector<std::uint8_t> last_flags_;
  std::int64_t rounds_seen_ = 0;
};

}  // namespace eecs::obs
