// Energy audit ledger: attributes every joule the simulation debits to a
// (camera, round, stage, algorithm, cause) key, with a hard conservation
// invariant against the SimulationResult accumulators and the per-camera
// battery residuals (see DESIGN.md "Observability" / "Energy ledger").
//
// Bit-exactness contract. Floating-point addition is not associative, so the
// ledger never re-derives totals from its entries with doubles. Instead it
// keeps three mutually checking views:
//
//  1. Running double totals (`cpu_total_`, `radio_total_`) incremented with
//     the *same double values in the same order* as the simulation's
//     `result.cpu_joules`/`result.radio_joules` accumulators — so the totals
//     are bit-identical to the result by construction, and any debit that
//     bypasses the ledger (or is double-counted) breaks the equality.
//  2. Per-camera battery mirrors applying the identical clamped drain
//     sequence as energy::Battery, so `mirror == battery.residual()` holds
//     bitwise at every instant.
//  3. A 192-bit fixed-point exact accumulator (LSB = 2^-128) per entry and
//     globally. Integer addition commutes, so "sum over entries equals the
//     debited total" holds exactly and independently of iteration order —
//     this is what makes the per-key attribution itself auditable rather
//     than approximately-summing.
//
// Debits happen only at the loop's serial replay points (like the energy
// gauges), so no locking is needed. Under EECS_OBS_OFF every mutator is a
// no-op and check() vacuously passes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace eecs::obs {

/// Why a joule was spent. `render` and `idle` are reserved: scene rendering
/// is simulator-side work (never charged to a camera battery), and the SoC
/// fixed per-frame idle charge rides inside the detect debit because
/// splitting one accounting point into two doubles would break the bit-exact
/// totals contract (a+b rounds; see header comment).
enum class EnergyCause : std::uint8_t {
  Detect = 0,  ///< Operation-window detection + color features (incl. SoC fixed charge).
  Features,    ///< §IV-B.1 registration feature extraction.
  Render,      ///< Reserved (simulator-side; never charged today).
  Tx,          ///< First-attempt application radio energy (metadata + crops).
  Retry,       ///< Re-transmission attempts beyond the first.
  Heartbeat,   ///< Liveness traffic (control class: zero joules today).
  Idle,        ///< Reserved (folded into Detect's fixed per-frame charge).
};
inline constexpr int kNumEnergyCauses = 7;

/// Which loop phase debited.
enum class EnergyStage : std::uint8_t { Registration = 0, Assessment, Operation };
inline constexpr int kNumEnergyStages = 3;

[[nodiscard]] const char* to_string(EnergyCause cause);
[[nodiscard]] const char* to_string(EnergyStage stage);

/// 192-bit unsigned fixed-point accumulator, LSB = 2^-128. Exact for any
/// finite non-negative double in [2^-75, 2^63) — every energy debit the
/// models can produce (the smallest nonzero debit is ~1e-7 J). Values outside
/// that range (or negative/non-finite) set `inexact` instead of corrupting
/// the sum; conservation then reports the flag.
struct ExactJoules {
  std::uint64_t limb[3] = {0, 0, 0};  ///< limb[0] holds the lowest bits.
  bool inexact = false;

  void add(double v);
  void add(const ExactJoules& other);
  [[nodiscard]] bool operator==(const ExactJoules&) const = default;
  /// Closest double (diagnostics only — never used for conservation checks).
  [[nodiscard]] double to_double() const;
};

struct LedgerKey {
  std::int32_t camera = -1;
  std::int64_t round = -1;  ///< -1 = registration phase / no round structure.
  EnergyStage stage = EnergyStage::Operation;
  std::int8_t algorithm = -1;  ///< detect::AlgorithmId value, or -1.
  EnergyCause cause = EnergyCause::Detect;

  [[nodiscard]] bool operator==(const LedgerKey&) const = default;
  [[nodiscard]] bool operator<(const LedgerKey& o) const {
    if (camera != o.camera) return camera < o.camera;
    if (round != o.round) return round < o.round;
    if (stage != o.stage) return stage < o.stage;
    if (algorithm != o.algorithm) return algorithm < o.algorithm;
    return cause < o.cause;
  }
};

struct LedgerEntry {
  double joules = 0.0;       ///< Plain double sum (display; entry-local order).
  std::uint64_t debits = 0;  ///< Number of debit calls folded in.
  ExactJoules exact;         ///< Order-independent exact sum.
};

class EnergyLedger {
 public:
  /// Arm the ledger for one run: drops all entries/totals and initializes the
  /// per-camera battery mirrors at full capacity. A telemetry session's
  /// ledger always describes the session's most recent armed run.
  void begin_run(const std::vector<double>& battery_capacity);

  /// Round id attached to subsequent debits (-1 outside round structure).
  void set_round(std::int64_t round);

  void debit_cpu(int camera, EnergyStage stage, int algorithm, EnergyCause cause, double joules);
  void debit_radio(int camera, EnergyStage stage, int algorithm, EnergyCause cause, double joules);

  /// Mirror of energy::Battery::drain — identical clamp, applied at the same
  /// call points with the same double, so mirrors track residuals bitwise.
  void drain(int camera, double joules);
  /// Mirror of Battery::restore_residual (checkpoint resume).
  void restore_residual(int camera, double joules);

  [[nodiscard]] double cpu_total() const { return cpu_total_; }
  [[nodiscard]] double radio_total() const { return radio_total_; }
  /// Per-camera cpu+radio debit stream total (burn-rate input).
  [[nodiscard]] double camera_joules(int camera) const;
  [[nodiscard]] double mirror_residual(int camera) const;
  [[nodiscard]] int num_cameras() const { return static_cast<int>(mirror_residual_.size()); }
  [[nodiscard]] const std::map<LedgerKey, LedgerEntry>& entries() const { return entries_; }

  struct Conservation {
    bool ok = true;
    std::string detail;  ///< Empty when ok; otherwise every violated clause.
  };
  /// The hard invariant: ledger totals bit-equal the result accumulators,
  /// battery mirrors bit-equal the per-camera residuals, and the exact sum
  /// over entries equals the exact debited total (order-independent).
  [[nodiscard]] Conservation check(double result_cpu_joules, double result_radio_joules,
                                   const std::vector<double>& battery_residual) const;

  /// Canonical %.17g dump, one line per entry in key order plus a totals
  /// line — what sim_determinism appends to its cross-mode reports.
  [[nodiscard]] std::string report() const;
  /// JSON array of entries plus totals (tools).
  [[nodiscard]] std::string to_json() const;

  /// Checkpointable state (serialized by runtime/checkpoint as a snapshot
  /// section so chaos resume keeps conservation bit-exact).
  struct State {
    double cpu_total = 0.0;
    double radio_total = 0.0;
    ExactJoules exact_total;
    std::uint64_t debits = 0;
    std::vector<double> camera_joules;
    std::vector<double> mirror_residual;
    std::vector<double> mirror_capacity;
    std::vector<std::pair<LedgerKey, LedgerEntry>> entries;
  };
  [[nodiscard]] State export_state() const;
  void import_state(const State& state);

 private:
  void debit(int camera, EnergyStage stage, int algorithm, EnergyCause cause, double joules,
             double& total);

  std::int64_t round_ = -1;
  double cpu_total_ = 0.0;
  double radio_total_ = 0.0;
  ExactJoules exact_total_;
  std::uint64_t debits_ = 0;
  std::vector<double> camera_joules_;
  std::vector<double> mirror_residual_;
  std::vector<double> mirror_capacity_;
  std::map<LedgerKey, LedgerEntry> entries_;
};

}  // namespace eecs::obs
