// Structured round tracing: the closed loop emits typed per-round events
// (round selection, camera assignment/death, assignment retries, detection
// batches, battery debits) into a fixed-capacity in-memory ring buffer. Two
// exporters serialize the buffer: JSONL (one event object per line, for
// grep/jq pipelines) and the Chrome `trace_event` JSON array format, loadable
// in chrome://tracing and Perfetto (`tools/eecs_trace` writes both).
//
// Events carry two clocks: `wall_us` (microseconds since tracer creation,
// from an injectable clock so tests can pin golden outputs) and `sim_time`
// (the network/frame clock, deterministic). Trace buffers are never part of
// determinism comparisons — the deterministic view of a run is the metrics
// registry.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eecs::obs {

/// One trace event. `phase` follows the Chrome trace_event convention:
/// 'i' = instant event, 'X' = complete event (has `dur_us`).
struct TraceEvent {
  std::uint64_t wall_us = 0;  ///< Stamped by the tracer at record() time.
  double sim_time = -1.0;     ///< Network/frame clock; -1 when not applicable.
  std::uint64_t dur_us = 0;   ///< Duration ('X' events only).
  char phase = 'i';
  std::string cat;   ///< Coarse subsystem: "round", "camera", "net", "stage"...
  std::string name;  ///< Event type, e.g. "round.select", "battery.debit".
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Thread-safe fixed-capacity ring buffer of trace events. Overflow policy:
/// the oldest event is overwritten and `dropped()` is incremented — a long
/// run keeps its most recent window instead of failing or reallocating.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  /// Replace the wall clock (microseconds, monotonic). Tests inject a
  /// deterministic counter to pin exporter golden outputs. The default clock
  /// is steady_clock microseconds since tracer construction.
  void set_clock(std::function<std::uint64_t()> clock);
  [[nodiscard]] std::uint64_t now_us() const;

  /// Stamp `wall_us` (unless the caller pre-set a nonzero stamp, as spans do
  /// with their start time) and append, overwriting the oldest on overflow.
  void record(TraceEvent event);

  /// Events in record order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const;  ///< Total offered, incl. dropped.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

  /// One JSON object per line:
  /// {"wall_us":..,"sim_time":..,"ph":"i","cat":..,"name":..,"args":{..}}.
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}); `ts` is wall_us,
  /// sim_time rides in args. Load via chrome://tracing or ui.perfetto.dev.
  [[nodiscard]] std::string to_chrome_trace() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;          ///< Insertion slot once the ring is full.
  std::uint64_t recorded_ = 0;
  std::function<std::uint64_t()> clock_;
};

}  // namespace eecs::obs
