#include "obs/ledger.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/contracts.hpp"

namespace eecs::obs {

const char* to_string(EnergyCause cause) {
  switch (cause) {
    case EnergyCause::Detect: return "detect";
    case EnergyCause::Features: return "features";
    case EnergyCause::Render: return "render";
    case EnergyCause::Tx: return "tx";
    case EnergyCause::Retry: return "retry";
    case EnergyCause::Heartbeat: return "heartbeat";
    case EnergyCause::Idle: return "idle";
  }
  return "?";
}

const char* to_string(EnergyStage stage) {
  switch (stage) {
    case EnergyStage::Registration: return "registration";
    case EnergyStage::Assessment: return "assessment";
    case EnergyStage::Operation: return "operation";
  }
  return "?";
}

void ExactJoules::add(double v) {
  if (v == 0.0) return;  // Common case (control-class sends): nothing to fold.
  if (!std::isfinite(v) || v < 0.0) {
    inexact = true;
    return;
  }
  int exp = 0;
  const double frac = std::frexp(v, &exp);       // v = frac * 2^exp, frac in [0.5, 1).
  const auto mant = static_cast<std::uint64_t>(  // 53-bit integer mantissa.
      std::ldexp(frac, 53));
  // v = mant * 2^(exp-53); the fixed-point LSB is 2^-128, so the mantissa
  // lands at bit offset (exp - 53) + 128 from the bottom of the 192-bit word.
  const int offset = exp - 53 + 128;
  if (offset < 0 || offset + 53 > 192) {
    inexact = true;
    return;
  }
  ExactJoules addend;
  const int limb = offset / 64;
  const int shift = offset % 64;
  addend.limb[limb] = mant << shift;
  if (shift != 0 && limb + 1 < 3) addend.limb[limb + 1] = mant >> (64 - shift);
  add(addend);
}

void ExactJoules::add(const ExactJoules& other) {
  inexact = inexact || other.inexact;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 3; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(limb[i]) + other.limb[i] + carry;
    limb[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) inexact = true;  // > 2^64 J total: beyond any simulated run.
}

double ExactJoules::to_double() const {
  return std::ldexp(static_cast<double>(limb[2]), 0) +
         std::ldexp(static_cast<double>(limb[1]), -64) +
         std::ldexp(static_cast<double>(limb[0]), -128);
}

void EnergyLedger::begin_run(const std::vector<double>& battery_capacity) {
  round_ = -1;
  cpu_total_ = 0.0;
  radio_total_ = 0.0;
  exact_total_ = ExactJoules{};
  debits_ = 0;
  camera_joules_.assign(battery_capacity.size(), 0.0);
  mirror_residual_ = battery_capacity;
  mirror_capacity_ = battery_capacity;
  entries_.clear();
}

void EnergyLedger::set_round(std::int64_t round) { round_ = round; }

void EnergyLedger::debit(int camera, EnergyStage stage, int algorithm, EnergyCause cause,
                         double joules, double& total) {
  if constexpr (!kEnabled) return;
  total += joules;
  exact_total_.add(joules);
  ++debits_;
  if (camera >= 0 && camera < static_cast<int>(camera_joules_.size())) {
    camera_joules_[static_cast<std::size_t>(camera)] += joules;
  }
  LedgerKey key;
  key.camera = camera;
  key.round = round_;
  key.stage = stage;
  key.algorithm = static_cast<std::int8_t>(algorithm);
  key.cause = cause;
  LedgerEntry& entry = entries_[key];
  entry.joules += joules;
  ++entry.debits;
  entry.exact.add(joules);
}

void EnergyLedger::debit_cpu(int camera, EnergyStage stage, int algorithm, EnergyCause cause,
                             double joules) {
  debit(camera, stage, algorithm, cause, joules, cpu_total_);
}

void EnergyLedger::debit_radio(int camera, EnergyStage stage, int algorithm, EnergyCause cause,
                               double joules) {
  debit(camera, stage, algorithm, cause, joules, radio_total_);
}

void EnergyLedger::drain(int camera, double joules) {
  if constexpr (!kEnabled) return;
  if (camera < 0 || camera >= static_cast<int>(mirror_residual_.size())) return;
  double& residual = mirror_residual_[static_cast<std::size_t>(camera)];
  // Identical arithmetic to energy::Battery::drain so the mirror stays
  // bit-equal to the real residual through every clamped drain.
  const double drained = std::min(joules, residual);
  residual -= drained;
}

void EnergyLedger::restore_residual(int camera, double joules) {
  if (camera < 0 || camera >= static_cast<int>(mirror_residual_.size())) return;
  const double cap = mirror_capacity_[static_cast<std::size_t>(camera)];
  // Mirror of energy::Battery::restore_residual's clamp to [0, capacity].
  mirror_residual_[static_cast<std::size_t>(camera)] = std::clamp(joules, 0.0, cap);
}

double EnergyLedger::camera_joules(int camera) const {
  if (camera < 0 || camera >= static_cast<int>(camera_joules_.size())) return 0.0;
  return camera_joules_[static_cast<std::size_t>(camera)];
}

double EnergyLedger::mirror_residual(int camera) const {
  EECS_EXPECTS(camera >= 0 && camera < static_cast<int>(mirror_residual_.size()));
  return mirror_residual_[static_cast<std::size_t>(camera)];
}

namespace {

// Bitwise double equality (distinguishes -0.0/0.0 and compares NaN payloads);
// %.17g round-trips doubles, but comparing bits directly is stricter still.
bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void append_g17(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

EnergyLedger::Conservation EnergyLedger::check(double result_cpu_joules,
                                               double result_radio_joules,
                                               const std::vector<double>& battery_residual) const {
  Conservation out;
  if constexpr (!kEnabled) {
    out.detail = "obs-off";
    return out;
  }
  auto violate = [&out](const std::string& clause) {
    out.ok = false;
    if (!out.detail.empty()) out.detail += "; ";
    out.detail += clause;
  };
  auto describe = [](double got, double want) {
    std::string s = "got ";
    append_g17(s, got);
    s += " want ";
    append_g17(s, want);
    return s;
  };
  if (!bit_equal(cpu_total_, result_cpu_joules)) {
    violate("cpu total != result.cpu_joules (" + describe(cpu_total_, result_cpu_joules) + ")");
  }
  if (!bit_equal(radio_total_, result_radio_joules)) {
    violate("radio total != result.radio_joules (" +
            describe(radio_total_, result_radio_joules) + ")");
  }
  if (battery_residual.size() != mirror_residual_.size()) {
    violate("battery mirror count mismatch");
  } else {
    for (std::size_t c = 0; c < battery_residual.size(); ++c) {
      if (!bit_equal(mirror_residual_[c], battery_residual[c])) {
        violate("camera " + std::to_string(c) + " mirror residual != battery (" +
                describe(mirror_residual_[c], battery_residual[c]) + ")");
      }
    }
  }
  // Order-independent attribution audit: the fixed-point sum over entries
  // must equal the fixed-point total fed by the debit stream.
  ExactJoules entry_sum;
  std::uint64_t entry_debits = 0;
  for (const auto& [key, entry] : entries_) {
    entry_sum.add(entry.exact);
    entry_debits += entry.debits;
  }
  if (!(entry_sum == exact_total_)) violate("exact entry sum != exact debit total");
  if (entry_debits != debits_) violate("entry debit count != total debit count");
  if (exact_total_.inexact) violate("exact accumulator overflowed (inexact)");
  return out;
}

std::string EnergyLedger::report() const {
  std::string out;
  for (const auto& [key, entry] : entries_) {
    out += "ledger camera=" + std::to_string(key.camera) +
           " round=" + std::to_string(key.round) + " stage=" + to_string(key.stage) +
           " algorithm=" + std::to_string(key.algorithm) + " cause=" + to_string(key.cause) +
           " joules=";
    append_g17(out, entry.joules);
    out += " debits=" + std::to_string(entry.debits) + "\n";
  }
  out += "ledger total cpu=";
  append_g17(out, cpu_total_);
  out += " radio=";
  append_g17(out, radio_total_);
  out += " debits=" + std::to_string(debits_) + " entries=" + std::to_string(entries_.size()) +
         "\n";
  return out;
}

std::string EnergyLedger::to_json() const {
  std::ostringstream out;
  out << "{\n  \"entries\": [\n";
  bool first = true;
  char buf[64];
  for (const auto& [key, entry] : entries_) {
    if (!first) out << ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.17g", entry.joules);
    out << "    {\"camera\": " << key.camera << ", \"round\": " << key.round << ", \"stage\": \""
        << to_string(key.stage) << "\", \"algorithm\": " << static_cast<int>(key.algorithm)
        << ", \"cause\": \"" << to_string(key.cause) << "\", \"joules\": " << buf
        << ", \"debits\": " << entry.debits << "}";
  }
  out << "\n  ],\n";
  std::snprintf(buf, sizeof(buf), "%.17g", cpu_total_);
  out << "  \"cpu_total\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.17g", radio_total_);
  out << "  \"radio_total\": " << buf << ",\n";
  out << "  \"debits\": " << debits_ << "\n}\n";
  return out.str();
}

EnergyLedger::State EnergyLedger::export_state() const {
  State state;
  state.cpu_total = cpu_total_;
  state.radio_total = radio_total_;
  state.exact_total = exact_total_;
  state.debits = debits_;
  state.camera_joules = camera_joules_;
  state.mirror_residual = mirror_residual_;
  state.mirror_capacity = mirror_capacity_;
  state.entries.assign(entries_.begin(), entries_.end());
  return state;
}

void EnergyLedger::import_state(const State& state) {
  cpu_total_ = state.cpu_total;
  radio_total_ = state.radio_total;
  exact_total_ = state.exact_total;
  debits_ = state.debits;
  camera_joules_ = state.camera_joules;
  mirror_residual_ = state.mirror_residual;
  mirror_capacity_ = state.mirror_capacity;
  entries_.clear();
  for (const auto& [key, entry] : state.entries) entries_.emplace(key, entry);
}

}  // namespace eecs::obs
