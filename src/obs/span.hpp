// RAII span profiling. A ScopedSpan times a scope, accumulates the elapsed
// wall-clock seconds into a `Determinism::WallClock` gauge (the substrate of
// the `StageTimings` façade in core/simulation), and emits a Chrome-style 'X'
// complete event into the current tracer. Under EECS_OBS_OFF the gauge
// accumulation remains (it is exactly the legacy StageTimer cost: one clock
// read per scope) but no trace event is allocated.
#pragma once

#include "common/stopwatch.hpp"
#include "obs/telemetry.hpp"

namespace eecs::obs {

class ScopedSpan {
 public:
  /// `name`/`cat` must outlive the span (string literals in practice).
  ScopedSpan(const char* name, const char* cat, Gauge& wall_seconds_acc,
             double sim_time = -1.0)
      : name_(name), cat_(cat), acc_(wall_seconds_acc), sim_time_(sim_time) {
    if constexpr (kEnabled) start_us_ = current().tracer().now_us();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    acc_.add(watch_.seconds());
    if constexpr (kEnabled) {
      Tracer& tracer = current().tracer();
      const std::uint64_t end_us = tracer.now_us();
      TraceEvent event;
      event.phase = 'X';
      event.wall_us = start_us_;
      event.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
      event.sim_time = sim_time_;
      event.cat = cat_;
      event.name = name_;
      tracer.record(std::move(event));
    }
  }

 private:
  const char* name_;
  const char* cat_;
  Gauge& acc_;
  double sim_time_;
  std::uint64_t start_us_ = 0;
  Stopwatch watch_;
};

}  // namespace eecs::obs
