#include "obs/flight.hpp"

#include <cstdio>

#include "common/json.hpp"

namespace eecs::obs {

namespace {

void append_g17(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const FlightRound& round) {
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(round);
  } else {
    ring_[next_] = round;
  }
  next_ = (next_ + 1) % capacity_;
}

void FlightRecorder::clear() {
  ring_.clear();
  next_ = 0;
}

std::vector<FlightRound> FlightRecorder::rounds() const {
  std::vector<FlightRound> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // Ring has not wrapped; insertion order is already oldest-first.
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string FlightRecorder::to_jsonl(std::string_view reason) const {
  std::string out = "{\"flight\": 1, \"reason\": \"";
  out += common::json_escape(reason);
  out += "\", \"capacity\": " + std::to_string(capacity_) +
         ", \"rounds\": " + std::to_string(ring_.size()) + "}\n";
  for (const FlightRound& r : rounds()) {
    out += "{\"round\": " + std::to_string(r.round) + ", \"sim_time_s\": ";
    append_g17(out, r.sim_time_s);
    out += ", \"selected\": " + std::to_string(r.selected) +
           ", \"assignments\": " + std::to_string(r.assignments) +
           ", \"pending\": " + std::to_string(r.pending) +
           ", \"deadline_misses\": " + std::to_string(r.deadline_misses) +
           ", \"watchdog_strikes\": " + std::to_string(r.watchdog_strikes) +
           ", \"messages_sent\": " + std::to_string(r.messages_sent) +
           ", \"messages_lost\": " + std::to_string(r.messages_lost) + ", \"cpu_joules\": ";
    append_g17(out, r.cpu_joules);
    out += ", \"radio_joules\": ";
    append_g17(out, r.radio_joules);
    out += ", \"anomalies\": " + std::to_string(r.anomalies) + ", \"rungs\": [";
    for (std::size_t i = 0; i < r.rungs.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(static_cast<int>(r.rungs[i]));
    }
    out += "], \"residual_j\": [";
    for (std::size_t i = 0; i < r.residual_j.size(); ++i) {
      if (i > 0) out += ", ";
      append_g17(out, r.residual_j[i]);
    }
    out += "]}\n";
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path, std::string_view reason) const {
  if constexpr (!kEnabled) return false;
  const std::string body = to_jsonl(reason);
  // Write to a temp file and rename so a crash mid-dump never leaves a
  // truncated black box where a complete one is expected.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

FlightDump parse_flight_jsonl(std::string_view text) {
  FlightDump dump;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const common::JsonValue v = common::JsonValue::parse(line);
    if (!saw_header) {
      dump.version = v.at("flight").as_int64();
      if (dump.version != 1) {
        throw common::JsonError("flight: unsupported dump version " +
                                std::to_string(dump.version));
      }
      dump.reason = v.at("reason").as_string();
      dump.capacity = v.at("capacity").as_int64();
      saw_header = true;
      continue;
    }
    FlightRound r;
    r.round = v.at("round").as_int64();
    r.sim_time_s = v.at("sim_time_s").as_double();
    r.selected = static_cast<std::int32_t>(v.at("selected").as_int64());
    r.assignments = static_cast<std::int32_t>(v.at("assignments").as_int64());
    r.pending = static_cast<std::int32_t>(v.at("pending").as_int64());
    r.deadline_misses = static_cast<std::int32_t>(v.at("deadline_misses").as_int64());
    r.watchdog_strikes = static_cast<std::int32_t>(v.at("watchdog_strikes").as_int64());
    r.messages_sent = static_cast<std::uint64_t>(v.at("messages_sent").as_int64());
    r.messages_lost = static_cast<std::uint64_t>(v.at("messages_lost").as_int64());
    r.cpu_joules = v.at("cpu_joules").as_double();
    r.radio_joules = v.at("radio_joules").as_double();
    r.anomalies = static_cast<std::int32_t>(v.at("anomalies").as_int64());
    for (const common::JsonValue& rung : v.at("rungs").as_array()) {
      r.rungs.push_back(static_cast<std::int8_t>(rung.as_int64()));
    }
    for (const common::JsonValue& res : v.at("residual_j").as_array()) {
      r.residual_j.push_back(res.as_double());
    }
    dump.rounds.push_back(std::move(r));
  }
  if (!saw_header) throw common::JsonError("flight: missing header line");
  return dump;
}

}  // namespace eecs::obs
