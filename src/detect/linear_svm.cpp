#include "detect/linear_svm.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/simd.hpp"

namespace eecs::detect {

namespace {

/// Elementwise Pegasos step: w *= decay, then (inside the margin) w += step*x.
/// Both loops are pure elementwise float ops — lane-blocked with no
/// reassociation, so scalar and SIMD agree bit for bit. The margin dot product
/// stays scalar in the caller: it is a single serial double chain.
template <class F4>
void pegasos_step(float* w, const float* x, std::size_t dim, float decay, bool update,
                  float step) {
  const F4 dv = F4::broadcast(decay);
  const F4 sv = F4::broadcast(step);
  std::size_t d = 0;
  if (update) {
    for (; d + F4::kLanes <= dim; d += F4::kLanes) {
      (F4::load(w + d) * dv + sv * F4::load(x + d)).store(w + d);
    }
    for (; d < dim; ++d) w[d] = w[d] * decay + step * x[d];
  } else {
    for (; d + F4::kLanes <= dim; d += F4::kLanes) {
      (F4::load(w + d) * dv).store(w + d);
    }
    for (; d < dim; ++d) w[d] *= decay;
  }
}

}  // namespace

float LinearModel::score(std::span<const float> x) const {
  EECS_EXPECTS(x.size() == weights.size());
  double s = bias;
  for (std::size_t i = 0; i < x.size(); ++i) s += static_cast<double>(weights[i]) * static_cast<double>(x[i]);
  return static_cast<float>(s);
}

LinearModel train_linear_svm(const std::vector<std::vector<float>>& x, const std::vector<int>& y,
                             Rng& rng, const SvmOptions& options) {
  EECS_EXPECTS(!x.empty());
  EECS_EXPECTS(x.size() == y.size());
  const std::size_t dim = x.front().size();
  bool has_pos = false, has_neg = false;
  for (std::size_t i = 0; i < y.size(); ++i) {
    EECS_EXPECTS(y[i] == 1 || y[i] == -1);
    EECS_EXPECTS(x[i].size() == dim);
    has_pos |= (y[i] == 1);
    has_neg |= (y[i] == -1);
  }
  EECS_EXPECTS(has_pos && has_neg);

  LinearModel model;
  model.weights.assign(dim, 0.0f);

  long t = 1;
  std::vector<int> order(x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  // Pegasos over the unbiased hyperplane; the bias is set afterwards so the
  // decision threshold sits midway between the class score means (the 1/(λt)
  // schedule makes online bias updates wildly unstable in early steps).
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    for (int idx : order) {
      const double eta = 1.0 / (options.lambda * static_cast<double>(t));
      const auto& xi = x[static_cast<std::size_t>(idx)];
      const double yi = y[static_cast<std::size_t>(idx)];
      double margin = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        margin += static_cast<double>(model.weights[d]) * static_cast<double>(xi[d]);
      }
      margin *= yi;
      // Weight decay (the lambda/2 ||w||^2 term), fused with the margin
      // update when it fires — identical float ops to the two separate loops.
      const float decay = static_cast<float>(std::max(0.0, 1.0 - eta * options.lambda));
      const bool update = margin < 1.0;
      const float step = update ? static_cast<float>(eta * yi) : 0.0f;
      simd::dispatch([&](auto isa) {
        using F4 = typename decltype(isa)::F32;
        pegasos_step<F4>(model.weights.data(), xi.data(), dim, decay, update, step);
      });
      ++t;
    }
  }

  double pos_mean = 0.0, neg_mean = 0.0;
  long pos_n = 0, neg_n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      s += static_cast<double>(model.weights[d]) * static_cast<double>(x[i][d]);
    }
    if (y[i] == 1) {
      pos_mean += s;
      ++pos_n;
    } else {
      neg_mean += s;
      ++neg_n;
    }
  }
  pos_mean /= static_cast<double>(pos_n);
  neg_mean /= static_cast<double>(neg_n);
  model.bias = static_cast<float>(-(pos_mean + neg_mean) / 2.0);
  return model;
}

}  // namespace eecs::detect
