#include "detect/acf_detector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/simd.hpp"
#include "detect/frame_cache.hpp"
#include "detect/nms.hpp"
#include "detect/sweep_scheduler.hpp"
#include "imaging/filter.hpp"

namespace eecs::detect {

namespace {

/// One output row of 4x4 block-averaged color aggregation. Each lane owns
/// one output block: tap dx of lane k sits at source column 4k + dx, so the
/// four strided gathers t0..t3 are the dx taps across kLanes outputs, and
/// the add sequence acc + t0 + t1 + t2 + t3 reproduces the scalar dx
/// accumulation order per lane at every width. Tail outputs run the scalar
/// chain.
template <class F4>
void acf_color_row(const float* src, int iw, int y, int aw, float* dst) {
  static_assert(kAcfShrink == 4, "lane blocking assumes 4x4 aggregation blocks");
  const F4 area = F4::broadcast(static_cast<float>(kAcfShrink * kAcfShrink));
  int x = 0;
  for (; x + F4::kLanes <= aw; x += F4::kLanes) {
    F4 acc = F4::broadcast(0.0f);
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const float* row = src + static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                         static_cast<std::size_t>(x * kAcfShrink);
      const F4 t0 = F4::gather_stride(row + 0, kAcfShrink);
      const F4 t1 = F4::gather_stride(row + 1, kAcfShrink);
      const F4 t2 = F4::gather_stride(row + 2, kAcfShrink);
      const F4 t3 = F4::gather_stride(row + 3, kAcfShrink);
      acc = acc + t0 + t1 + t2 + t3;
    }
    (acc / area).store(dst + y * aw + x);
  }
  for (; x < aw; ++x) {
    float s = 0.0f;
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const float* row = src + static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                         static_cast<std::size_t>(x * kAcfShrink);
      for (int dx = 0; dx < kAcfShrink; ++dx) s += row[dx];
    }
    dst[y * aw + x] = s / (kAcfShrink * kAcfShrink);
  }
}

/// One output row of gradient-magnitude + orientation-channel aggregation.
/// Magnitude sums use the same strided-gather blocking as the color rows (tap
/// dx across kLanes outputs); the orientation bin of every source pixel is
/// computed lane-blocked (floor + min are exact), then scattered scalar in
/// (dy, dx) order into each output's private 6-bin accumulator — the same
/// float order as the scalar loop at every width.
template <class F4>
void acf_gradient_row(const float* mag_src, const float* ori_src, int iw, int y, int aw, int ah,
                      float bin_width, int orientations, float* planes, std::ptrdiff_t plane_stride,
                      float* mag_plane) {
  static_assert(kAcfShrink == 4, "lane blocking assumes 4x4 aggregation blocks");
  const F4 area = F4::broadcast(static_cast<float>(kAcfShrink * kAcfShrink));
  const F4 bw = F4::broadcast(bin_width);
  const F4 top_bin = F4::broadcast(static_cast<float>(orientations - 1));
  (void)ah;
  int x = 0;
  for (; x + F4::kLanes <= aw; x += F4::kLanes) {
    F4 macc = F4::broadcast(0.0f);
    float orient_sum[F4::kLanes][8] = {};
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const std::size_t base = static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                               static_cast<std::size_t>(x * kAcfShrink);
      // Gather dx holds tap dx of every output lane; per output the scatter
      // drains taps in dx order, the scalar chain's order.
      float mvals[kAcfShrink][F4::kLanes];
      float bvals[kAcfShrink][F4::kLanes];
      F4 md[kAcfShrink];
      for (int dx = 0; dx < kAcfShrink; ++dx) {
        md[dx] = F4::gather_stride(mag_src + base + static_cast<std::size_t>(dx), kAcfShrink);
        const F4 o =
            F4::gather_stride(ori_src + base + static_cast<std::size_t>(dx), kAcfShrink);
        const F4 bins = F4::min(top_bin, F4::floor(o / bw));
        md[dx].store(mvals[dx]);
        bins.store(bvals[dx]);
      }
      for (int k = 0; k < F4::kLanes; ++k) {
        for (int dx = 0; dx < kAcfShrink; ++dx) {
          orient_sum[k][static_cast<int>(bvals[dx][k])] += mvals[dx][k];
        }
      }
      macc = macc + md[0] + md[1] + md[2] + md[3];
    }
    (macc / area).store(mag_plane + y * aw + x);
    for (int k = 0; k < F4::kLanes; ++k) {
      for (int o = 0; o < orientations; ++o) {
        planes[static_cast<std::ptrdiff_t>(o) * plane_stride + y * aw + x + k] =
            orient_sum[k][o] / (kAcfShrink * kAcfShrink);
      }
    }
  }
  for (; x < aw; ++x) {
    float mag_sum = 0.0f;
    float orient_sum[8] = {};
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const std::size_t base = static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                               static_cast<std::size_t>(x * kAcfShrink);
      for (int dx = 0; dx < kAcfShrink; ++dx) {
        const float mv = mag_src[base + static_cast<std::size_t>(dx)];
        mag_sum += mv;
        const int bin = std::min(orientations - 1,
                                 static_cast<int>(ori_src[base + static_cast<std::size_t>(dx)] / bin_width));
        orient_sum[bin] += mv;
      }
    }
    mag_plane[y * aw + x] = mag_sum / (kAcfShrink * kAcfShrink);
    for (int o = 0; o < orientations; ++o) {
      planes[static_cast<std::ptrdiff_t>(o) * plane_stride + y * aw + x] =
          orient_sum[o] / (kAcfShrink * kAcfShrink);
    }
  }
}

}  // namespace

ChannelMap compute_acf_channels(const imaging::Image& img, energy::CostCounter* cost) {
  const int aw = img.width() / kAcfShrink;
  const int ah = img.height() / kAcfShrink;
  ChannelMap map;
  map.width = aw;
  map.height = ah;
  map.data.assign(static_cast<std::size_t>(kAcfChannels) * static_cast<std::size_t>(aw) *
                      static_cast<std::size_t>(ah),
                  0.0f);
  if (aw == 0 || ah == 0) return map;

  auto plane = [&](int c) {
    return map.data.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(aw) *
                                 static_cast<std::size_t>(ah);
  };

  // Color channels: block-averaged RGB (grayscale images replicate). Every
  // sample x*kAcfShrink+dx <= aw*kAcfShrink-1 <= width-1 is in bounds, so the
  // aggregation indexes source rows directly; the (dy, dx) sum order matches
  // the clamped-access form this replaces bit for bit.
  const int iw = img.width();
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    for (int c = 0; c < 3; ++c) {
      float* dst = plane(c);
      const float* src = img.plane(img.channels() == 3 ? c : 0).data();
      for (int y = 0; y < ah; ++y) {
        acf_color_row<F4>(src, iw, y, aw, dst);
      }
    }
  });

  // Gradient magnitude + 6 orientation channels, aggregated.
  const imaging::Gradients grads = imaging::compute_gradients(img);
  constexpr int kOrientations = 6;
  const float bin_width = std::numbers::pi_v<float> / kOrientations;
  const float* mag_src = grads.magnitude.plane(0).data();
  const float* ori_src = grads.orientation.plane(0).data();
  const std::ptrdiff_t plane_stride =
      static_cast<std::ptrdiff_t>(aw) * static_cast<std::ptrdiff_t>(ah);
  simd::dispatch([&](auto isa) {
    using F4 = typename decltype(isa)::F32;
    for (int y = 0; y < ah; ++y) {
      acf_gradient_row<F4>(mag_src, ori_src, iw, y, aw, ah, bin_width, kOrientations, plane(4),
                           plane_stride, plane(3));
    }
  });

  if (cost != nullptr) {
    // One gradient pass plus one aggregation pass over all pixels.
    cost->add_pixels(2 * img.pixel_count());
  }
  return map;
}

std::vector<float> acf_window_features(const ChannelMap& channels, int x0, int y0) {
  EECS_EXPECTS(x0 >= 0 && y0 >= 0);
  EECS_EXPECTS(x0 + kAcfWindowX <= channels.width && y0 + kAcfWindowY <= channels.height);
  std::vector<float> feat;
  feat.reserve(static_cast<std::size_t>(kAcfChannels * kAcfWindowX * kAcfWindowY));
  for (int c = 0; c < kAcfChannels; ++c) {
    for (int y = 0; y < kAcfWindowY; ++y) {
      for (int x = 0; x < kAcfWindowX; ++x) feat.push_back(channels.at(x0 + x, y0 + y, c));
    }
  }
  return feat;
}

void AcfDetector::train(const TrainingSet& training_set, Rng& rng) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& p : training_set.positives) {
    x.push_back(acf_window_features(compute_acf_channels(p), 0, 0));
    y.push_back(1);
  }
  for (const auto& n : training_set.negatives) {
    x.push_back(acf_window_features(compute_acf_channels(n), 0, 0));
    y.push_back(-1);
  }
  model_ = train_adaboost(x, y, rng, params_.boost);
  total_alpha_ = 0.0;
  for (const Stump& st : model_.stumps) total_alpha_ += std::abs(static_cast<double>(st.alpha));

  std::vector<double> pos_scores, neg_scores;
  for (std::size_t i = 0; i < x.size(); ++i) {
    (y[i] == 1 ? pos_scores : neg_scores).push_back(model_.score(x[i]));
  }
  fit_score_calibration(pos_scores, neg_scores);
}

void AcfDetector::prewarm_substrates(FramePrecompute& pre, int width, int height) const {
  (void)pre.acf_channels(width, height, nullptr);
}

std::vector<Detection> AcfDetector::run(FramePrecompute& pre, energy::CostCounter* cost) const {
  EECS_EXPECTS(trained());
  std::vector<Detection> candidates;
  const imaging::Image& frame = pre.frame();
  const double total_alpha = total_alpha_;
  const SweepGate* gate = pre.gate();

  for (double scale : scales_) {
    const int sw = static_cast<int>(std::lround(frame.width() * scale));
    const int sh = static_cast<int>(std::lround(frame.height() * scale));
    if (sw < kWindowWidth || sh < kWindowHeight) continue;
    // Anchor geometry from the dims alone (channel maps shrink by
    // kAcfShrink), so fully pruned scales are accounted before any channel
    // work happens.
    const int aw = sw / kAcfShrink;
    const int ah = sh / kAcfShrink;
    const int max_x = aw - kAcfWindowX;
    const int max_y = ah - kAcfWindowY;
    const auto row_windows = max_x >= 0 ? static_cast<std::uint64_t>(max_x) + 1 : 0;
    const auto full_rows = max_y >= 0 ? static_cast<std::uint64_t>(max_y) + 1 : 0;
    const RowInterval anchors = gated_anchor_rows(gate, sw, sh, kAcfShrink, 0, max_y);
    const auto kept_rows =
        anchors.empty() ? 0 : static_cast<std::uint64_t>(anchors.hi - anchors.lo) + 1;
    if (cost != nullptr) {
      cost->add_windows(row_windows * kept_rows, row_windows * (full_rows - kept_rows));
    }
    if (gate != nullptr && anchors.empty()) continue;  // Scale infeasible: no work at all.
    // At scale 1.0 pre.scaled returns the frame itself, matching the old
    // resize-free path; only resized levels are charged as pixel ops.
    const imaging::Image& scaled = pre.scaled(sw, sh);
    if (scale != 1.0 && cost != nullptr) cost->add_pixels(scaled.pixel_count());

    const ChannelMap& channels = pre.acf_channels(sw, sh, cost);
    EECS_EXPECTS(channels.width == aw && channels.height == ah);
    // Each stump's (channel, cell) coordinates are fixed by its feature
    // index; resolve them to a flat offset into this scale's channel map once
    // instead of div/mod per stump per window.
    const std::size_t cw = static_cast<std::size_t>(channels.width);
    std::vector<std::size_t> stump_off(model_.stumps.size());
    for (std::size_t k = 0; k < model_.stumps.size(); ++k) {
      const int feature = model_.stumps[k].feature;
      const int c = feature / (kAcfWindowX * kAcfWindowY);
      const int rem = feature % (kAcfWindowX * kAcfWindowY);
      const int cy = rem / kAcfWindowX;
      const int cx = rem % kAcfWindowX;
      stump_off[k] = static_cast<std::size_t>(c) * cw * static_cast<std::size_t>(channels.height) +
                     static_cast<std::size_t>(cy) * cw + static_cast<std::size_t>(cx);
    }
    const float* map_data = channels.data.data();
    const std::size_t check_every = static_cast<std::size_t>(params_.cascade_check_every);
    const std::size_t n_stumps = model_.stumps.size();
    // Per-stump constants hoisted out of the scan, in the exact doubles the
    // per-window loop produced: the signed weight a = double(alpha) *
    // double(polarity) (its negation is bit-exact because IEEE multiply is
    // sign-symmetric), the threshold widened (float compare == double compare
    // of the exact conversions), and the cascade's `remaining` sequence —
    // identical for every window, built with the same serial subtraction.
    std::vector<double> stump_a(n_stumps), stump_na(n_stumps), stump_thr(n_stumps);
    std::vector<double> remaining_after(n_stumps);
    {
      double r = total_alpha;
      for (std::size_t k = 0; k < n_stumps; ++k) {
        const Stump& st = model_.stumps[k];
        stump_a[k] = static_cast<double>(st.alpha) * static_cast<double>(st.polarity);
        stump_na[k] = -stump_a[k];
        stump_thr[k] = static_cast<double>(st.threshold);
        r -= std::abs(static_cast<double>(st.alpha));
        remaining_after[k] = r;
      }
    }
    const double reject_rhs = static_cast<double>(params_.cascade_margin) * total_alpha;
    const auto emit = [&](int x0, int y0, double s) {
      Detection d;
      d.box = window_to_person_box({x0 * kAcfShrink / scale, y0 * kAcfShrink / scale,
                                    kWindowWidth / scale, kWindowHeight / scale});
      d.score = s;
      d.probability = calibrated_probability(s);
      candidates.push_back(d);
    };
    // Evaluate stumps directly against the channel map (no feature
    // materialization), with soft-cascade early rejection. Lanes run across
    // adjacent x0 anchors: window_base steps by 1 per lane, so every stump
    // reads kLanes contiguous floats. Each lane's score is the same serial
    // sum_k ±a_k chain as the scalar loop, and each lane freezes its own
    // `evaluated` count at the first cascade check it fails (the pack keeps
    // running until all lanes are rejected — extra work, but the per-window
    // op counts the energy model charges are exact). Emission stays in
    // (y0, x0) order.
    simd::dispatch([&](auto isa) {
      using D2 = typename decltype(isa)::F64;
      constexpr int K = D2::kLanes;
      double tmp[K];
      std::size_t eval[K];
      bool rejected[K];
      for (int y0 = anchors.lo; y0 <= anchors.hi; ++y0) {
        int x0 = 0;
        for (; x0 + K <= max_x + 1; x0 += K) {
          const std::size_t window_base =
              static_cast<std::size_t>(y0) * cw + static_cast<std::size_t>(x0);
          D2 s = D2::broadcast(0.0);
          for (int l = 0; l < K; ++l) {
            rejected[l] = false;
            eval[l] = 0;
          }
          int active = K;
          std::size_t until_check = check_every;
          for (std::size_t k = 0; k < n_stumps; ++k) {
            const D2 v = D2::load2f(map_data + stump_off[k] + window_base);
            s = s + D2::select_gt(v, D2::broadcast(stump_thr[k]), D2::broadcast(stump_a[k]),
                                  D2::broadcast(stump_na[k]));
            if (--until_check == 0) {
              until_check = check_every;
              s.store(tmp);
              const double remaining = remaining_after[k];
              for (int l = 0; l < K; ++l) {
                if (!rejected[l] && tmp[l] + remaining < reject_rhs) {
                  rejected[l] = true;
                  eval[l] = k + 1;
                  --active;
                }
              }
              if (active == 0) break;
            }
          }
          s.store(tmp);
          for (int l = 0; l < K; ++l) {
            const std::size_t evaluated = rejected[l] ? eval[l] : n_stumps;
            if (cost != nullptr) cost->add_classifier(2 * evaluated);
            if (rejected[l] || tmp[l] <= params_.score_floor) continue;
            emit(x0 + l, y0, tmp[l]);
          }
        }
        for (; x0 <= max_x; ++x0) {
          const std::size_t window_base =
              static_cast<std::size_t>(y0) * cw + static_cast<std::size_t>(x0);
          double s = 0.0;
          std::size_t evaluated = 0;
          std::size_t until_check = check_every;
          bool was_rejected = false;
          for (std::size_t k = 0; k < n_stumps; ++k) {
            const double v = static_cast<double>(map_data[stump_off[k] + window_base]);
            s += (v > stump_thr[k]) ? stump_a[k] : stump_na[k];
            ++evaluated;
            if (--until_check == 0) {
              until_check = check_every;
              if (s + remaining_after[k] < reject_rhs) {
                was_rejected = true;
                break;
              }
            }
          }
          if (cost != nullptr) cost->add_classifier(2 * evaluated);
          if (was_rejected || s <= params_.score_floor) continue;
          emit(x0, y0, s);
        }
      }
    });
  }
  return non_max_suppression(std::move(candidates), params_.nms_iou);
}

}  // namespace eecs::detect
