#include "detect/acf_detector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/simd.hpp"
#include "detect/frame_cache.hpp"
#include "detect/nms.hpp"
#include "imaging/filter.hpp"

namespace eecs::detect {

namespace {

/// One output row of 4x4 block-averaged color aggregation. kAcfShrink == 4,
/// so the 16 consecutive source floats of one (dy) row feed exactly 4 output
/// blocks; a 4x4 transpose turns the four loads into per-lane "one output
/// each" columns, and the add sequence acc + t0 + t1 + t2 + t3 reproduces the
/// scalar dx accumulation order per lane. Tail outputs run the scalar chain.
template <class F4>
void acf_color_row(const float* src, int iw, int y, int aw, float* dst) {
  static_assert(kAcfShrink == 4, "lane blocking assumes 4x4 aggregation blocks");
  const F4 area = F4::broadcast(static_cast<float>(kAcfShrink * kAcfShrink));
  int x = 0;
  for (; x + simd::kF32Lanes <= aw; x += simd::kF32Lanes) {
    F4 acc = F4::broadcast(0.0f);
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const float* row = src + static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                         static_cast<std::size_t>(x * kAcfShrink);
      F4 t0 = F4::load(row);
      F4 t1 = F4::load(row + 4);
      F4 t2 = F4::load(row + 8);
      F4 t3 = F4::load(row + 12);
      transpose4(t0, t1, t2, t3);
      acc = acc + t0 + t1 + t2 + t3;
    }
    (acc / area).store(dst + y * aw + x);
  }
  for (; x < aw; ++x) {
    float s = 0.0f;
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const float* row = src + static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                         static_cast<std::size_t>(x * kAcfShrink);
      for (int dx = 0; dx < kAcfShrink; ++dx) s += row[dx];
    }
    dst[y * aw + x] = s / (kAcfShrink * kAcfShrink);
  }
}

/// One output row of gradient-magnitude + orientation-channel aggregation.
/// Magnitude sums use the same transpose blocking as the color rows; the
/// orientation bin of every source pixel is computed lane-blocked (floor +
/// min are exact), then scattered scalar in (dy, dx) order into each output's
/// private 6-bin accumulator — the same float order as the scalar loop.
template <class F4>
void acf_gradient_row(const float* mag_src, const float* ori_src, int iw, int y, int aw, int ah,
                      float bin_width, int orientations, float* planes, std::ptrdiff_t plane_stride,
                      float* mag_plane) {
  static_assert(kAcfShrink == 4, "lane blocking assumes 4x4 aggregation blocks");
  const F4 area = F4::broadcast(static_cast<float>(kAcfShrink * kAcfShrink));
  const F4 bw = F4::broadcast(bin_width);
  const F4 top_bin = F4::broadcast(static_cast<float>(orientations - 1));
  (void)ah;
  int x = 0;
  for (; x + simd::kF32Lanes <= aw; x += simd::kF32Lanes) {
    F4 macc = F4::broadcast(0.0f);
    float orient_sum[simd::kF32Lanes][8] = {};
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const std::size_t base = static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                               static_cast<std::size_t>(x * kAcfShrink);
      // Load k covers output x+k's four dx samples (pre-transpose), so bins
      // and magnitudes extract straight into that output's scatter loop.
      F4 m[simd::kF32Lanes];
      F4 bins[simd::kF32Lanes];
      for (int k = 0; k < simd::kF32Lanes; ++k) {
        m[k] = F4::load(mag_src + base + static_cast<std::size_t>(4 * k));
        const F4 o = F4::load(ori_src + base + static_cast<std::size_t>(4 * k));
        bins[k] = F4::min(top_bin, F4::floor(o / bw));
      }
      for (int k = 0; k < simd::kF32Lanes; ++k) {
        for (int j = 0; j < simd::kF32Lanes; ++j) {
          orient_sum[k][static_cast<int>(bins[k].extract(j))] += m[k].extract(j);
        }
      }
      F4 t0 = m[0];
      F4 t1 = m[1];
      F4 t2 = m[2];
      F4 t3 = m[3];
      transpose4(t0, t1, t2, t3);
      macc = macc + t0 + t1 + t2 + t3;
    }
    (macc / area).store(mag_plane + y * aw + x);
    for (int k = 0; k < simd::kF32Lanes; ++k) {
      for (int o = 0; o < orientations; ++o) {
        planes[static_cast<std::ptrdiff_t>(o) * plane_stride + y * aw + x + k] =
            orient_sum[k][o] / (kAcfShrink * kAcfShrink);
      }
    }
  }
  for (; x < aw; ++x) {
    float mag_sum = 0.0f;
    float orient_sum[8] = {};
    for (int dy = 0; dy < kAcfShrink; ++dy) {
      const std::size_t base = static_cast<std::size_t>(y * kAcfShrink + dy) *
                                   static_cast<std::size_t>(iw) +
                               static_cast<std::size_t>(x * kAcfShrink);
      for (int dx = 0; dx < kAcfShrink; ++dx) {
        const float mv = mag_src[base + static_cast<std::size_t>(dx)];
        mag_sum += mv;
        const int bin = std::min(orientations - 1,
                                 static_cast<int>(ori_src[base + static_cast<std::size_t>(dx)] / bin_width));
        orient_sum[bin] += mv;
      }
    }
    mag_plane[y * aw + x] = mag_sum / (kAcfShrink * kAcfShrink);
    for (int o = 0; o < orientations; ++o) {
      planes[static_cast<std::ptrdiff_t>(o) * plane_stride + y * aw + x] =
          orient_sum[o] / (kAcfShrink * kAcfShrink);
    }
  }
}

}  // namespace

ChannelMap compute_acf_channels(const imaging::Image& img, energy::CostCounter* cost) {
  const int aw = img.width() / kAcfShrink;
  const int ah = img.height() / kAcfShrink;
  ChannelMap map;
  map.width = aw;
  map.height = ah;
  map.data.assign(static_cast<std::size_t>(kAcfChannels) * static_cast<std::size_t>(aw) *
                      static_cast<std::size_t>(ah),
                  0.0f);
  if (aw == 0 || ah == 0) return map;

  auto plane = [&](int c) {
    return map.data.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(aw) *
                                 static_cast<std::size_t>(ah);
  };

  // Color channels: block-averaged RGB (grayscale images replicate). Every
  // sample x*kAcfShrink+dx <= aw*kAcfShrink-1 <= width-1 is in bounds, so the
  // aggregation indexes source rows directly; the (dy, dx) sum order matches
  // the clamped-access form this replaces bit for bit.
  const int iw = img.width();
  const bool vec = simd::enabled();
  for (int c = 0; c < 3; ++c) {
    float* dst = plane(c);
    const float* src = img.plane(img.channels() == 3 ? c : 0).data();
    for (int y = 0; y < ah; ++y) {
      if (vec) {
        acf_color_row<simd::F32x4>(src, iw, y, aw, dst);
      } else {
        acf_color_row<simd::F32x4Emul>(src, iw, y, aw, dst);
      }
    }
  }

  // Gradient magnitude + 6 orientation channels, aggregated.
  const imaging::Gradients grads = imaging::compute_gradients(img);
  constexpr int kOrientations = 6;
  const float bin_width = std::numbers::pi_v<float> / kOrientations;
  const float* mag_src = grads.magnitude.plane(0).data();
  const float* ori_src = grads.orientation.plane(0).data();
  const std::ptrdiff_t plane_stride =
      static_cast<std::ptrdiff_t>(aw) * static_cast<std::ptrdiff_t>(ah);
  for (int y = 0; y < ah; ++y) {
    if (vec) {
      acf_gradient_row<simd::F32x4>(mag_src, ori_src, iw, y, aw, ah, bin_width, kOrientations,
                                    plane(4), plane_stride, plane(3));
    } else {
      acf_gradient_row<simd::F32x4Emul>(mag_src, ori_src, iw, y, aw, ah, bin_width, kOrientations,
                                        plane(4), plane_stride, plane(3));
    }
  }

  if (cost != nullptr) {
    // One gradient pass plus one aggregation pass over all pixels.
    cost->add_pixels(2 * img.pixel_count());
  }
  return map;
}

std::vector<float> acf_window_features(const ChannelMap& channels, int x0, int y0) {
  EECS_EXPECTS(x0 >= 0 && y0 >= 0);
  EECS_EXPECTS(x0 + kAcfWindowX <= channels.width && y0 + kAcfWindowY <= channels.height);
  std::vector<float> feat;
  feat.reserve(static_cast<std::size_t>(kAcfChannels * kAcfWindowX * kAcfWindowY));
  for (int c = 0; c < kAcfChannels; ++c) {
    for (int y = 0; y < kAcfWindowY; ++y) {
      for (int x = 0; x < kAcfWindowX; ++x) feat.push_back(channels.at(x0 + x, y0 + y, c));
    }
  }
  return feat;
}

void AcfDetector::train(const TrainingSet& training_set, Rng& rng) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& p : training_set.positives) {
    x.push_back(acf_window_features(compute_acf_channels(p), 0, 0));
    y.push_back(1);
  }
  for (const auto& n : training_set.negatives) {
    x.push_back(acf_window_features(compute_acf_channels(n), 0, 0));
    y.push_back(-1);
  }
  model_ = train_adaboost(x, y, rng, params_.boost);
  total_alpha_ = 0.0;
  for (const Stump& st : model_.stumps) total_alpha_ += std::abs(static_cast<double>(st.alpha));

  std::vector<double> pos_scores, neg_scores;
  for (std::size_t i = 0; i < x.size(); ++i) {
    (y[i] == 1 ? pos_scores : neg_scores).push_back(model_.score(x[i]));
  }
  fit_score_calibration(pos_scores, neg_scores);
}

std::vector<Detection> AcfDetector::run(FramePrecompute& pre, energy::CostCounter* cost) const {
  EECS_EXPECTS(trained());
  std::vector<Detection> candidates;
  const imaging::Image& frame = pre.frame();
  const double total_alpha = total_alpha_;

  for (double scale : scales_) {
    const int sw = static_cast<int>(std::lround(frame.width() * scale));
    const int sh = static_cast<int>(std::lround(frame.height() * scale));
    if (sw < kWindowWidth || sh < kWindowHeight) continue;
    // At scale 1.0 pre.scaled returns the frame itself, matching the old
    // resize-free path; only resized levels are charged as pixel ops.
    const imaging::Image& scaled = pre.scaled(sw, sh);
    if (scale != 1.0 && cost != nullptr) cost->add_pixels(scaled.pixel_count());

    const ChannelMap& channels = pre.acf_channels(sw, sh, cost);
    const int max_x = channels.width - kAcfWindowX;
    const int max_y = channels.height - kAcfWindowY;
    // Each stump's (channel, cell) coordinates are fixed by its feature
    // index; resolve them to a flat offset into this scale's channel map once
    // instead of div/mod per stump per window.
    const std::size_t cw = static_cast<std::size_t>(channels.width);
    std::vector<std::size_t> stump_off(model_.stumps.size());
    for (std::size_t k = 0; k < model_.stumps.size(); ++k) {
      const int feature = model_.stumps[k].feature;
      const int c = feature / (kAcfWindowX * kAcfWindowY);
      const int rem = feature % (kAcfWindowX * kAcfWindowY);
      const int cy = rem / kAcfWindowX;
      const int cx = rem % kAcfWindowX;
      stump_off[k] = static_cast<std::size_t>(c) * cw * static_cast<std::size_t>(channels.height) +
                     static_cast<std::size_t>(cy) * cw + static_cast<std::size_t>(cx);
    }
    const float* map_data = channels.data.data();
    const std::size_t check_every = static_cast<std::size_t>(params_.cascade_check_every);
    for (int y0 = 0; y0 <= max_y; ++y0) {
      for (int x0 = 0; x0 <= max_x; ++x0) {
        // Evaluate stumps directly against the channel map (no feature
        // materialization), with soft-cascade early rejection: bail out as
        // soon as the window provably cannot reach an interesting score.
        const std::size_t window_base =
            static_cast<std::size_t>(y0) * cw + static_cast<std::size_t>(x0);
        double s = 0.0;
        double remaining = total_alpha;
        std::size_t evaluated = 0;
        std::size_t until_check = check_every;
        bool rejected = false;
        for (std::size_t k = 0; k < model_.stumps.size(); ++k) {
          const Stump& st = model_.stumps[k];
          const float v = map_data[stump_off[k] + window_base];
          s += static_cast<double>(st.alpha) * ((v > st.threshold) ? st.polarity : -st.polarity);
          remaining -= std::abs(static_cast<double>(st.alpha));
          ++evaluated;
          if (--until_check == 0) {
            until_check = check_every;
            if (s + remaining < static_cast<double>(params_.cascade_margin) * total_alpha) {
              rejected = true;
              break;
            }
          }
        }
        if (cost != nullptr) cost->add_classifier(2 * evaluated);
        if (rejected || s <= params_.score_floor) continue;
        Detection d;
        d.box = window_to_person_box({x0 * kAcfShrink / scale, y0 * kAcfShrink / scale, kWindowWidth / scale,
                 kWindowHeight / scale});
        d.score = s;
        d.probability = calibrated_probability(s);
        candidates.push_back(d);
      }
    }
  }
  return non_max_suppression(std::move(candidates), params_.nms_iou);
}

}  // namespace eecs::detect
