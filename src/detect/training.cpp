#include "detect/training.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/filter.hpp"
#include "video/scene.hpp"

namespace eecs::detect {

namespace {

/// A generic training environment: parameters randomized around the space of
/// plausible deployments, deliberately distinct from the three evaluation
/// presets. Detectors train on crops of these scenes — the equivalent of the
/// paper's detectors coming pre-trained on generic pedestrian footage.
video::Environment random_training_environment(Rng& rng, int index) {
  video::Environment env;
  env.name = "training";
  env.image_width = 480;
  env.image_height = 360;
  env.focal_px = rng.uniform(320.0, 520.0);
  env.room_w = rng.uniform(6.5, 10.0);
  env.room_h = rng.uniform(6.5, 10.0);
  env.num_people = rng.uniform_int(4, 7);
  env.num_clutter = (index % 2 == 0) ? rng.uniform_int(2, 5) : 0;
  env.background_brightness = static_cast<float>(rng.uniform(0.40, 0.72));
  env.background_texture_amplitude = static_cast<float>(rng.uniform(0.08, 0.32));
  env.background_texture_scale = static_cast<float>(rng.uniform(6.0, 20.0));
  env.illumination_gain = static_cast<float>(rng.uniform(0.88, 1.15));
  env.illumination_offset = static_cast<float>(rng.uniform(-0.03, 0.05));
  env.sensor_noise_sigma = static_cast<float>(rng.uniform(0.008, 0.018));
  env.outdoor = (index % 3 == 2);
  env.texture_seed = static_cast<unsigned>(rng.next_u64());
  return env;
}

/// Expand a ground-truth person box into the detection-window framing (the
/// inverse of window_to_person_box) and resize to the canonical size.
imaging::Image window_crop(const imaging::Image& frame, const imaging::Rect& person_box) {
  const double window_h = person_box.h / 0.88;
  const double window_w = window_h * static_cast<double>(kWindowWidth) / kWindowHeight;
  const int x0 = static_cast<int>(std::lround(person_box.center_x() - window_w / 2.0));
  const int y0 = static_cast<int>(std::lround(person_box.y - 0.06 * window_h));
  const imaging::Image crop =
      frame.crop(x0, y0, static_cast<int>(std::lround(window_w)), static_cast<int>(std::lround(window_h)));
  return imaging::resize(crop, kWindowWidth, kWindowHeight);
}

bool overlaps_any(const imaging::Rect& box, const std::vector<video::GroundTruthBox>& truth,
                  double max_iou) {
  for (const auto& gt : truth) {
    if (imaging::iou(box, gt.box) > max_iou) return true;
  }
  return false;
}

}  // namespace

TrainingSet generate_training_set(Rng& rng, const TrainingSetOptions& options) {
  EECS_EXPECTS(options.num_positives > 0 && options.num_negatives > 0);
  TrainingSet set;

  constexpr int kScenes = 4;
  int scene_index = 0;
  while (static_cast<int>(set.positives.size()) < options.num_positives ||
         static_cast<int>(set.negatives.size()) < options.num_negatives) {
    video::SceneSimulator sim(random_training_environment(rng, scene_index), rng.next_u64());
    ++scene_index;
    const int frames_per_scene = 24;
    for (int f = 0; f < frames_per_scene; ++f) {
      const int camera = rng.uniform_int(0, video::kNumCamerasPerDataset - 1);
      std::vector<video::GroundTruthBox> truth;
      const imaging::Image frame = sim.next_frame_single(camera, &truth);
      sim.skip(12);  // Decorrelate samples.

      // Positives: well-visible people fully inside the frame.
      for (const auto& gt : truth) {
        if (static_cast<int>(set.positives.size()) >= options.num_positives) break;
        if (gt.visibility < 0.75 || gt.in_image_fraction < 0.98) continue;
        if (gt.box.h < 30.0) continue;
        set.positives.push_back(window_crop(frame, gt.box));
      }

      // Negatives: random window-shaped crops that avoid people.
      int attempts = 0;
      const int wanted = options.num_negatives / (kScenes * frames_per_scene) + 2;
      int taken = 0;
      while (taken < wanted && attempts < 60 &&
             static_cast<int>(set.negatives.size()) < options.num_negatives) {
        ++attempts;
        const double h = rng.uniform(45.0, 0.9 * frame.height());
        const double w = h * static_cast<double>(kWindowWidth) / kWindowHeight;
        const double x = rng.uniform(0.0, frame.width() - w);
        const double y = rng.uniform(0.0, frame.height() - h);
        const imaging::Rect candidate{x, y, w, h};
        if (overlaps_any(candidate, truth, 0.15)) continue;
        const imaging::Image crop = frame.crop(static_cast<int>(x), static_cast<int>(y),
                                               static_cast<int>(w), static_cast<int>(h));
        set.negatives.push_back(imaging::resize(crop, kWindowWidth, kWindowHeight));
        ++taken;
      }
    }
    if (scene_index > 16) break;  // Safety valve; never triggers in practice.
  }
  (void)options.clutter_fraction;  // Clutter appears naturally in clutter scenes.
  return set;
}

}  // namespace eecs::detect
