// C4-style contour-cue detector (Wu et al. — the paper's [6]): census
// transform (CENTRIST) cell histograms classified by a linear SVM. Scans a
// dense scale pyramid (finer than HOG's), and the per-pixel census transform
// makes it the most compute-hungry of the gradient-family detectors, mirroring
// its high measured energy in the paper's tables.
#pragma once

#include "detect/detector.hpp"
#include "detect/linear_svm.hpp"

namespace eecs::detect {

inline constexpr int kCensusCell = 8;
inline constexpr int kCensusBins = 16;  ///< High-nibble histogram bins.
inline constexpr int kCensusCellsX = kWindowWidth / kCensusCell;    // 6
inline constexpr int kCensusCellsY = kWindowHeight / kCensusCell;   // 12

struct C4DetectorParams {
  double min_scale = 0.11;
  double max_scale = 1.55;
  double scale_factor = 1.13;  ///< Dense ladder: ~2x the scales of HOG.
  float score_floor = -0.8f;
  double nms_iou = 0.30;
};

/// Grid of per-cell census-code histograms plus per-cell squared norms.
class CensusCellGrid {
 public:
  explicit CensusCellGrid(const imaging::Image& img, energy::CostCounter* cost = nullptr);

  /// Build from precomputed census codes of a width x height image. Charges
  /// only the histogram pass; the caller accounts for the transform itself.
  CensusCellGrid(const std::vector<std::uint8_t>& codes, int width, int height,
                 energy::CostCounter* cost = nullptr);

  [[nodiscard]] int cells_x() const { return cells_x_; }
  [[nodiscard]] int cells_y() const { return cells_y_; }
  [[nodiscard]] std::span<const float> cell(int cx, int cy) const;
  [[nodiscard]] float cell_sq_norm(int cx, int cy) const;

  /// L2-normalized window descriptor (kCensusCellsX x kCensusCellsY cells).
  [[nodiscard]] std::vector<float> window_descriptor(int cell_x0, int cell_y0) const;

  /// w . (x/||x||) computed without materializing the descriptor.
  [[nodiscard]] float window_score(const LinearModel& model, int cell_x0, int cell_y0,
                                   energy::CostCounter* cost = nullptr) const;

  /// Scores `count` horizontally consecutive windows anchored at
  /// (cell_x0 + j, cell_y0) into out[j]. One pass over the model weights
  /// serves four windows at a time on independent accumulator chains, so each
  /// window's sum keeps window_score's exact term order (bit-identical
  /// results) while the strictly-ordered double adds pipeline across windows.
  /// Charges `cost` exactly `count` times what window_score would.
  void window_scores_row(const LinearModel& model, int cell_x0, int cell_y0, int count,
                         float* out, energy::CostCounter* cost = nullptr) const;

 private:
  void build(const std::uint8_t* codes, int width, int height, energy::CostCounter* cost);

  int cells_x_ = 0;
  int cells_y_ = 0;
  std::vector<float> hist_;
  std::vector<float> sq_norm_;
};

class C4Detector final : public Detector {
 public:
  explicit C4Detector(const C4DetectorParams& params = {})
      : params_(params),
        scales_(pyramid_scales(params.min_scale, params.max_scale, params.scale_factor)) {}

  using Detector::detect;

  [[nodiscard]] AlgorithmId id() const override { return AlgorithmId::C4; }
  void train(const TrainingSet& training_set, Rng& rng) override;
  [[nodiscard]] bool trained() const override { return model_.trained(); }

 protected:
  [[nodiscard]] std::vector<std::pair<int, int>> precompute_plan(int frame_width,
                                                                 int frame_height) const override {
    return plan_scaled_dims(scales_, frame_width, frame_height);
  }

  void prewarm_substrates(FramePrecompute& pre, int width, int height) const override;

  [[nodiscard]] std::vector<Detection> run(FramePrecompute& pre,
                                           energy::CostCounter* cost) const override;

 private:
  C4DetectorParams params_;
  std::vector<double> scales_;  ///< Hoisted: pyramid is a pure function of params.
  LinearModel model_;
};

}  // namespace eecs::detect
