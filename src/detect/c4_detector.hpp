// C4-style contour-cue detector (Wu et al. — the paper's [6]): census
// transform (CENTRIST) cell histograms classified by a linear SVM. Scans a
// dense scale pyramid (finer than HOG's), and the per-pixel census transform
// makes it the most compute-hungry of the gradient-family detectors, mirroring
// its high measured energy in the paper's tables.
#pragma once

#include "detect/detector.hpp"
#include "detect/linear_svm.hpp"

namespace eecs::detect {

inline constexpr int kCensusCell = 8;
inline constexpr int kCensusBins = 16;  ///< High-nibble histogram bins.
inline constexpr int kCensusCellsX = kWindowWidth / kCensusCell;    // 6
inline constexpr int kCensusCellsY = kWindowHeight / kCensusCell;   // 12

struct C4DetectorParams {
  double min_scale = 0.11;
  double max_scale = 1.55;
  double scale_factor = 1.13;  ///< Dense ladder: ~2x the scales of HOG.
  float score_floor = -0.8f;
  double nms_iou = 0.30;
};

/// Grid of per-cell census-code histograms plus per-cell squared norms.
class CensusCellGrid {
 public:
  explicit CensusCellGrid(const imaging::Image& img, energy::CostCounter* cost = nullptr);

  [[nodiscard]] int cells_x() const { return cells_x_; }
  [[nodiscard]] int cells_y() const { return cells_y_; }
  [[nodiscard]] std::span<const float> cell(int cx, int cy) const;
  [[nodiscard]] float cell_sq_norm(int cx, int cy) const;

  /// L2-normalized window descriptor (kCensusCellsX x kCensusCellsY cells).
  [[nodiscard]] std::vector<float> window_descriptor(int cell_x0, int cell_y0) const;

  /// w . (x/||x||) computed without materializing the descriptor.
  [[nodiscard]] float window_score(const LinearModel& model, int cell_x0, int cell_y0,
                                   energy::CostCounter* cost = nullptr) const;

 private:
  int cells_x_ = 0;
  int cells_y_ = 0;
  std::vector<float> hist_;
  std::vector<float> sq_norm_;
};

class C4Detector final : public Detector {
 public:
  explicit C4Detector(const C4DetectorParams& params = {}) : params_(params) {}

  [[nodiscard]] AlgorithmId id() const override { return AlgorithmId::C4; }
  void train(const TrainingSet& training_set, Rng& rng) override;
  [[nodiscard]] bool trained() const override { return model_.trained(); }
  [[nodiscard]] std::vector<Detection> detect(const imaging::Image& frame,
                                              energy::CostCounter* cost = nullptr) const override;

 private:
  C4DetectorParams params_;
  LinearModel model_;
};

}  // namespace eecs::detect
