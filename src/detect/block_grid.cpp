#include "detect/block_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/simd.hpp"

namespace eecs::detect {

namespace {

/// Accumulates one weight block's partial dot products into a row of anchor
/// accumulators, reading the feature-major (transposed) layout: per weight
/// index i the kLanes anchor samples are contiguous at trow[i * tstride + ax],
/// so the inner loop issues plain loads instead of stride-block_dim gathers
/// (the gathers were the score-map bottleneck — latency-bound and
/// width-insensitive). Lanes run across anchors (independent chains); each
/// anchor's partial is the same serial sum_i w[i]*b[i] chain as window_score,
/// so any anchor blocking width is bit-identical.
template <class D2>
void accumulate_block_row(const float* w, const float* trow, std::size_t bd,
                          std::size_t tstride, int width, double* acc) {
  constexpr int K = D2::kLanes;
  int ax = 0;
  for (; ax + 2 * K <= width; ax += 2 * K) {
    const float* t0 = trow + static_cast<std::size_t>(ax);
    D2 p01 = D2::broadcast(0.0);
    D2 p23 = D2::broadcast(0.0);
    for (std::size_t i = 0; i < bd; ++i) {
      const D2 wd = D2::broadcast(static_cast<double>(w[i]));
      const float* ti = t0 + i * tstride;
      p01 = p01 + wd * D2::load2f(ti);
      p23 = p23 + wd * D2::load2f(ti + K);
    }
    double t0s[K];
    double t1s[K];
    p01.store(t0s);
    p23.store(t1s);
    for (int l = 0; l < K; ++l) acc[ax + l] += t0s[l];
    for (int l = 0; l < K; ++l) acc[ax + K + l] += t1s[l];
  }
  for (; ax < width; ++ax) {
    double partial = 0.0;
    for (std::size_t i = 0; i < bd; ++i) {
      partial += static_cast<double>(w[i]) *
                 static_cast<double>(trow[i * tstride + static_cast<std::size_t>(ax)]);
    }
    acc[ax] += partial;
  }
}

}  // namespace

BlockGrid::BlockGrid(const imaging::Image& img, const features::HogParams& params,
                     energy::CostCounter* cost)
    : params_(params) {
  const features::HogGrid grid = features::compute_hog_grid(img, params, cost);
  const int bs = params.block_size;
  blocks_x_ = std::max(0, grid.cells_x() - bs + 1);
  blocks_y_ = std::max(0, grid.cells_y() - bs + 1);
  block_dim_ = bs * bs * params.bins;
  data_.assign(static_cast<std::size_t>(blocks_x_) * static_cast<std::size_t>(blocks_y_) *
                   static_cast<std::size_t>(block_dim_),
               0.0f);

  std::vector<float> block(static_cast<std::size_t>(block_dim_));
  for (int by = 0; by < blocks_y_; ++by) {
    for (int bx = 0; bx < blocks_x_; ++bx) {
      std::size_t k = 0;
      for (int cy = 0; cy < bs; ++cy) {
        for (int cx = 0; cx < bs; ++cx) {
          const auto cell = grid.cell(bx + cx, by + cy);
          for (float v : cell) block[k++] = v;
        }
      }
      auto l2norm = [](std::span<const float> v) {
        double s = 0.0;
        for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
        return static_cast<float>(std::sqrt(s) + 1e-6);
      };
      float n = l2norm(block);
      for (auto& v : block) v = std::min(v / n, 0.2f);
      n = l2norm(block);
      float* dst = data_.data() + (static_cast<std::size_t>(by) * static_cast<std::size_t>(blocks_x_) +
                                   static_cast<std::size_t>(bx)) *
                                      static_cast<std::size_t>(block_dim_);
      for (int i = 0; i < block_dim_; ++i) dst[i] = block[static_cast<std::size_t>(i)] / n;
    }
  }
  if (cost != nullptr) {
    cost->add_features(data_.size() * 3);  // Gather + two normalization passes.
  }

  // Feature-major mirror for score_map: same floats, transposed per block row
  // so consecutive anchors are contiguous. Pure data movement — charges
  // nothing and changes no value.
  data_t_.resize(data_.size());
  const std::size_t bd = static_cast<std::size_t>(block_dim_);
  const std::size_t bxs = static_cast<std::size_t>(blocks_x_);
  for (int by = 0; by < blocks_y_; ++by) {
    const float* src = data_.data() + static_cast<std::size_t>(by) * bxs * bd;
    float* dst = data_t_.data() + static_cast<std::size_t>(by) * bd * bxs;
    for (std::size_t bx = 0; bx < bxs; ++bx) {
      for (std::size_t i = 0; i < bd; ++i) dst[i * bxs + bx] = src[bx * bd + i];
    }
  }
}

std::span<const float> BlockGrid::block(int bx, int by) const {
  EECS_EXPECTS(bx >= 0 && bx < blocks_x_ && by >= 0 && by < blocks_y_);
  return {data_.data() + (static_cast<std::size_t>(by) * static_cast<std::size_t>(blocks_x_) +
                          static_cast<std::size_t>(bx)) *
                             static_cast<std::size_t>(block_dim_),
          static_cast<std::size_t>(block_dim_)};
}

float BlockGrid::window_score(const LinearModel& model, int cell_x0, int cell_y0,
                              int window_cells_x, int window_cells_y,
                              energy::CostCounter* cost) const {
  const int bs = params_.block_size;
  const int wbx = window_cells_x - bs + 1;
  const int wby = window_cells_y - bs + 1;
  EECS_EXPECTS(cell_x0 >= 0 && cell_y0 >= 0);
  EECS_EXPECTS(cell_x0 + wbx <= blocks_x_ && cell_y0 + wby <= blocks_y_);
  EECS_EXPECTS(static_cast<int>(model.weights.size()) == wbx * wby * block_dim_);

  double s = model.bias;
  const float* w = model.weights.data();
  for (int by = 0; by < wby; ++by) {
    for (int bx = 0; bx < wbx; ++bx) {
      const std::span<const float> blk = block(cell_x0 + bx, cell_y0 + by);
      double partial = 0.0;
      for (int i = 0; i < block_dim_; ++i) {
        partial += static_cast<double>(w[i]) * static_cast<double>(blk[static_cast<std::size_t>(i)]);
      }
      s += partial;
      w += block_dim_;
    }
  }
  if (cost != nullptr) cost->add_classifier(static_cast<std::uint64_t>(wbx * wby * block_dim_));
  return static_cast<float>(s);
}

ScoreMap BlockGrid::score_map(const LinearModel& model, int window_cells_x,
                              int window_cells_y) const {
  const int bs = params_.block_size;
  const int wbx = window_cells_x - bs + 1;
  const int wby = window_cells_y - bs + 1;
  EECS_EXPECTS(static_cast<int>(model.weights.size()) == wbx * wby * block_dim_);

  ScoreMap map;
  map.width = blocks_x_ - wbx + 1;
  map.height = blocks_y_ - wby + 1;
  if (map.width <= 0 || map.height <= 0) {
    map.width = 0;
    map.height = 0;
    return map;
  }
  map.scores.resize(static_cast<std::size_t>(map.width) * static_cast<std::size_t>(map.height));

  const std::size_t bd = static_cast<std::size_t>(block_dim_);
  // Per-anchor double accumulators for one row of anchors. Each anchor's sum
  // is built in the same order as window_score — bias first, then one double
  // partial per weight block in (by, bx) order — so the final float is
  // bit-identical to the per-window path.
  std::vector<double> acc(static_cast<std::size_t>(map.width));
  simd::dispatch([&](auto isa) {
    using D2 = typename decltype(isa)::F64;
    for (int ay = 0; ay < map.height; ++ay) {
      std::fill(acc.begin(), acc.end(), static_cast<double>(model.bias));
      const float* w = model.weights.data();
      for (int by = 0; by < wby; ++by) {
        for (int bx = 0; bx < wbx; ++bx) {
          // Each weight block streams across the anchor row through the
          // feature-major mirror (consecutive anchors contiguous per weight
          // index); independent accumulator chains per step (lane-blocked
          // across anchors) keep the (non-reassociable) double adds off the
          // critical path without changing any single chain's order.
          const float* trow = data_t_.data() +
                              static_cast<std::size_t>(ay + by) * bd *
                                  static_cast<std::size_t>(blocks_x_) +
                              static_cast<std::size_t>(bx);
          accumulate_block_row<D2>(w, trow, bd, static_cast<std::size_t>(blocks_x_),
                                   map.width, acc.data());
          w += block_dim_;
        }
      }
      float* out =
          map.scores.data() + static_cast<std::size_t>(ay) * static_cast<std::size_t>(map.width);
      for (int ax = 0; ax < map.width; ++ax) {
        out[ax] = static_cast<float>(acc[static_cast<std::size_t>(ax)]);
      }
    }
  });
  return map;
}

std::vector<float> BlockGrid::window_descriptor(int cell_x0, int cell_y0, int window_cells_x,
                                                int window_cells_y) const {
  const int bs = params_.block_size;
  const int wbx = window_cells_x - bs + 1;
  const int wby = window_cells_y - bs + 1;
  EECS_EXPECTS(cell_x0 >= 0 && cell_y0 >= 0);
  EECS_EXPECTS(cell_x0 + wbx <= blocks_x_ && cell_y0 + wby <= blocks_y_);
  std::vector<float> desc;
  desc.reserve(static_cast<std::size_t>(wbx * wby * block_dim_));
  for (int by = 0; by < wby; ++by) {
    for (int bx = 0; bx < wbx; ++bx) {
      const auto blk = block(cell_x0 + bx, cell_y0 + by);
      desc.insert(desc.end(), blk.begin(), blk.end());
    }
  }
  return desc;
}

}  // namespace eecs::detect
